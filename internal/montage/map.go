package montage

import (
	"medley/internal/core"
	"medley/internal/pnvm"
	"medley/internal/structures/fskiplist"
	"medley/internal/structures/mhash"
	"medley/internal/txmap"
)

// Codec converts values to and from payload bytes.
type Codec[V any] struct {
	Enc func(V) []byte
	Dec func([]byte) V
}

// Uint64Codec is the codec used by the paper's microbenchmarks (8-byte
// integer values).
func Uint64Codec() Codec[uint64] {
	return Codec[uint64]{
		Enc: func(v uint64) []byte {
			var b [8]byte
			for i := 0; i < 8; i++ {
				b[i] = byte(v >> (8 * i))
			}
			return b[:]
		},
		Dec: func(b []byte) uint64 {
			var v uint64
			for i := 0; i < 8 && i < len(b); i++ {
				v |= uint64(b[i]) << (8 * i)
			}
			return v
		},
	}
}

// entry is an index entry: the transient value plus its NVM payload id.
type entry[V any] struct {
	val V
	pid uint64
}

// Map is a persistent transactional map: a transient Medley index (skiplist
// or hash table) over NVM payloads, following the nbMontage split of
// "payloads persist, indices rebuild". With the epoch system Attach'ed to
// the TxManager, transactions over Map are fully ACID (txMontage).
type Map[V any] struct {
	idx   txmap.Map[entry[V]]
	es    *EpochSys
	codec Codec[V]
}

var _ txmap.Map[uint64] = (*Map[uint64])(nil)

// NewSkipMap creates a persistent map indexed by a Medley skiplist.
func NewSkipMap[V any](es *EpochSys, codec Codec[V]) *Map[V] {
	return &Map[V]{idx: fskiplist.New[uint64, entry[V]](), es: es, codec: codec}
}

// NewHashMap creates a persistent map indexed by a Medley hash table with
// nbuckets chains.
func NewHashMap[V any](es *EpochSys, codec Codec[V], nbuckets int) *Map[V] {
	return &Map[V]{idx: mhash.NewUint64[entry[V]](nbuckets), es: es, codec: codec}
}

// Get returns the value bound to k, if any. Reads touch only the transient
// index — NVM stays off the read path, as in nbMontage.
func (m *Map[V]) Get(s *core.Session, k uint64) (V, bool) {
	e, ok := m.idx.Get(s, k)
	if !ok {
		var zero V
		return zero, false
	}
	return e.val, true
}

// Put binds k to v, returning the previous value if k was present.
func (m *Map[V]) Put(s *core.Session, k uint64, v V) (V, bool) {
	if !s.InTx() {
		// Run as a single-operation transaction so the payload provably
		// linearizes in its tagged epoch (nbMontage's per-operation epoch
		// check).
		var old V
		var replaced bool
		_ = s.Run(func() error {
			old, replaced = m.Put(s, k, v)
			return nil
		})
		return old, replaced
	}
	epoch := m.es.TxEpoch(s)
	pid := m.es.PNew(s.ID(), k, m.codec.Enc(v), epoch)
	s.OnAbort(func() { m.es.UnNew(pid) })
	old, replaced := m.idx.Put(s, k, entry[V]{val: v, pid: pid})
	if replaced {
		m.retire(s, old.pid, epoch)
		return old.val, true
	}
	var zero V
	return zero, false
}

// Insert adds k→v only if absent, reporting whether insertion happened.
func (m *Map[V]) Insert(s *core.Session, k uint64, v V) bool {
	if !s.InTx() {
		var ok bool
		_ = s.Run(func() error {
			ok = m.Insert(s, k, v)
			return nil
		})
		return ok
	}
	epoch := m.es.TxEpoch(s)
	pid := m.es.PNew(s.ID(), k, m.codec.Enc(v), epoch)
	if !m.idx.Insert(s, k, entry[V]{val: v, pid: pid}) {
		// Key present: the speculative payload is unused either way.
		m.es.UnNew(pid)
		return false
	}
	s.OnAbort(func() { m.es.UnNew(pid) })
	return true
}

// Remove deletes k, returning its value if present.
func (m *Map[V]) Remove(s *core.Session, k uint64) (V, bool) {
	if !s.InTx() {
		var old V
		var ok bool
		_ = s.Run(func() error {
			old, ok = m.Remove(s, k)
			return nil
		})
		return old, ok
	}
	old, ok := m.idx.Remove(s, k)
	if !ok {
		var zero V
		return zero, false
	}
	m.retire(s, old.pid, m.es.TxEpoch(s))
	return old.val, true
}

// retire marks a payload retired as of the transaction's epoch. The mark is
// written in post-commit cleanup, never speculatively: a doomed transaction
// that raced with (and was aborted by) the payload's real retirer must not
// be able to clobber the committed mark. The session's epoch pin is held
// until cleanups finish (core.Session.finish), so the mark always joins the
// transaction's own epoch batch before that batch can flush.
func (m *Map[V]) retire(s *core.Session, pid, epoch uint64) {
	claim := m.es.NewClaim()
	sid := s.ID()
	s.AddToCleanups(func() { m.es.PRetire(sid, pid, epoch, claim) })
}

// RecoverSkipMap rebuilds a skiplist-indexed map from the records surviving
// a crash (pnvm.Device.Recover output). Single-threaded, as in post-crash
// recovery: new threads, quiesced system.
func RecoverSkipMap[V any](es *EpochSys, codec Codec[V], recs []RecordView) *Map[V] {
	m := NewSkipMap[V](es, codec)
	m.rebuild(recs)
	return m
}

// RecoverHashMap is the hash-indexed analogue of RecoverSkipMap.
func RecoverHashMap[V any](es *EpochSys, codec Codec[V], nbuckets int, recs []RecordView) *Map[V] {
	m := NewHashMap[V](es, codec, nbuckets)
	m.rebuild(recs)
	return m
}

// RecordView is a live payload as seen by recovery.
type RecordView struct {
	ID  uint64
	Key uint64
	Val []byte
}

func (m *Map[V]) rebuild(recs []RecordView) {
	s := core.NewTxManager().Session() // plain, non-transactional rebuild
	for _, r := range recs {
		m.idx.Put(s, r.Key, entry[V]{val: m.codec.Dec(r.Val), pid: r.ID})
	}
}

// LiveRecords filters a device recovery dump to live payloads (durable
// creations without a durable retirement), skipping frontier markers. It is
// the single-device recovery filter; multi-device recovery must use
// LiveRecordsAt with the domain's ConsistentCut instead, or retirements
// flushed on one device but not another could tear a transaction.
func LiveRecords(recs []pnvm.Record) []RecordView {
	var out []RecordView
	for _, r := range recs {
		if r.Key != FrontierKey && r.Retire == 0 {
			out = append(out, RecordView{ID: r.ID, Key: r.Key, Val: r.Val})
		}
	}
	return out
}

// Frontier returns the highest epoch fully persisted on a device, judged by
// its durable frontier markers (see EpochSys.Flush). A dump with no marker
// has frontier 0: nothing on it is provably complete.
func Frontier(recs []pnvm.Record) uint64 {
	var f uint64
	for _, r := range recs {
		if r.Key == FrontierKey && r.Epoch > f {
			f = r.Epoch
		}
	}
	return f
}

// ConsistentCut returns the recovery cut of a multi-device domain: the
// highest epoch every device is complete through (the minimum of the
// per-device frontiers). State beyond the cut existed durably on some
// devices but not all, so recovering it would tear cross-device
// transactions; LiveRecordsAt drops it.
func ConsistentCut(dumps [][]pnvm.Record) uint64 {
	cut := ^uint64(0)
	for _, d := range dumps {
		if f := Frontier(d); f < cut {
			cut = f
		}
	}
	if cut == ^uint64(0) {
		return 0
	}
	return cut
}

// LiveRecordsAt filters one device's recovery dump to the payloads live at
// an epoch cut: creations from epochs beyond the cut are dropped, and
// retirement marks from epochs beyond the cut are ignored (the retired
// payload is resurrected), so the result is exactly the state as of the end
// of the cut epoch.
func LiveRecordsAt(recs []pnvm.Record, cut uint64) []RecordView {
	var out []RecordView
	for _, r := range recs {
		if r.Key == FrontierKey || r.Epoch > cut {
			continue
		}
		if r.Retire != 0 && r.Retire <= cut {
			continue
		}
		out = append(out, RecordView{ID: r.ID, Key: r.Key, Val: r.Val})
	}
	return out
}
