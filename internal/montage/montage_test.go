package montage

import (
	"errors"
	"sync"
	"testing"
	"time"

	"medley/internal/core"
	"medley/internal/pnvm"
)

// zero-latency device for unit tests
func testSys() (*EpochSys, *core.TxManager) {
	dev := pnvm.New(pnvm.Latencies{})
	es := NewEpochSys(dev)
	mgr := core.NewTxManager()
	Attach(mgr, es)
	return es, mgr
}

func TestBasicMapOps(t *testing.T) {
	es, mgr := testSys()
	m := NewSkipMap(es, Uint64Codec())
	s := mgr.Session()
	if _, ok := m.Get(s, 1); ok {
		t.Fatal("empty map had key")
	}
	m.Put(s, 1, 10)
	if v, ok := m.Get(s, 1); !ok || v != 10 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	old, replaced := m.Put(s, 1, 11)
	if !replaced || old != 10 {
		t.Fatalf("Put = %d,%v", old, replaced)
	}
	if v, ok := m.Remove(s, 1); !ok || v != 11 {
		t.Fatalf("Remove = %d,%v", v, ok)
	}
	if _, ok := m.Get(s, 1); ok {
		t.Fatal("present after remove")
	}
}

func TestTransactionalAtomicity(t *testing.T) {
	es, mgr := testSys()
	m1 := NewHashMap(es, Uint64Codec(), 64)
	m2 := NewSkipMap(es, Uint64Codec())
	s := mgr.Session()
	m1.Put(s, 1, 100)

	err := s.Run(func() error {
		v, ok := m1.Get(s, 1)
		if !ok {
			return core.ErrTxAborted
		}
		m1.Put(s, 1, v-30)
		m2.Put(s, 2, 30)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := m1.Get(s, 1)
	v2, _ := m2.Get(s, 2)
	if v1 != 70 || v2 != 30 {
		t.Fatalf("balances = %d,%d", v1, v2)
	}
}

func TestAbortUndoesPayloads(t *testing.T) {
	es, mgr := testSys()
	m := NewSkipMap(es, Uint64Codec())
	s := mgr.Session()
	m.Put(s, 1, 10)
	before := es.Device().Live()

	s.TxBegin()
	m.Put(s, 2, 20) // creates payload
	m.Remove(s, 1)  // retires payload
	s.TxAbort()

	if got := es.Device().Live(); got != before {
		t.Fatalf("payload count after abort = %d, want %d", got, before)
	}
	if v, ok := m.Get(s, 1); !ok || v != 10 {
		t.Fatalf("aborted remove took effect: %d,%v", v, ok)
	}
	if _, ok := m.Get(s, 2); ok {
		t.Fatal("aborted insert visible")
	}
}

func TestEpochValidatorAbortsCrossEpochTx(t *testing.T) {
	es, mgr := testSys()
	m := NewSkipMap(es, Uint64Codec())
	s := mgr.Session()

	s.TxBegin()
	m.Put(s, 1, 10)
	// The epoch advances while the transaction is in flight. Advance only
	// waits for transactions pinned to the epoch being flushed (two back),
	// so it must not block on this current-epoch transaction.
	done := make(chan struct{})
	go func() { es.Advance(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Advance blocked on a current-epoch transaction")
	}
	if err := s.TxEnd(); !errors.Is(err, core.ErrTxAborted) {
		t.Fatalf("TxEnd = %v, want abort (epoch moved)", err)
	}
	if _, ok := m.Get(s, 1); ok {
		t.Fatal("cross-epoch tx committed")
	}
}

func TestCrashRecoveryDurableState(t *testing.T) {
	dev := pnvm.New(pnvm.Latencies{})
	es := NewEpochSys(dev)
	mgr := core.NewTxManager()
	Attach(mgr, es)
	m := NewSkipMap(es, Uint64Codec())
	s := mgr.Session()

	for k := uint64(0); k < 100; k++ {
		m.Put(s, k, k*2)
	}
	es.Sync() // make everything durable
	// Post-sync updates that will be lost (not yet flushed).
	m.Put(s, 5, 999)
	m.Remove(s, 6)
	m.Put(s, 200, 1)

	dev.Crash()
	recs := LiveRecords(dev.Recover())
	es2 := NewEpochSys(dev)
	m2 := RecoverSkipMap(es2, Uint64Codec(), recs)
	chk := core.NewTxManager().Session()

	// The synced prefix must be intact…
	for k := uint64(0); k < 100; k++ {
		v, ok := m2.Get(chk, k)
		if !ok || v != k*2 {
			t.Fatalf("recovered Get(%d) = %d,%v want %d", k, v, ok, k*2)
		}
	}
	// …and the unflushed suffix lost (buffered durability).
	if _, ok := m2.Get(chk, 200); ok {
		t.Fatal("unflushed insert survived crash")
	}
	if v, _ := m2.Get(chk, 5); v == 999 {
		t.Fatal("unflushed update survived crash")
	}
	if _, ok := m2.Get(chk, 6); !ok {
		t.Fatal("unflushed remove took effect across crash")
	}
}

// Failure atomicity: a transaction writing to two maps is recovered all or
// nothing, never split (the epoch check guarantees both payloads carry the
// same epoch).
func TestFailureAtomicityAcrossCrash(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		dev := pnvm.New(pnvm.Latencies{})
		es := NewEpochSys(dev)
		mgr := core.NewTxManager()
		Attach(mgr, es)
		ma := NewSkipMap(es, Uint64Codec())
		mb := NewSkipMap(es, Uint64Codec())

		var wg sync.WaitGroup
		stop := make(chan struct{})
		advDone := make(chan struct{})
		// Background advancer racing with transactions.
		go func() {
			defer close(advDone)
			for {
				select {
				case <-stop:
					return
				default:
					es.Advance()
					time.Sleep(200 * time.Microsecond)
				}
			}
		}()
		// Writers: tx i writes (i, i) to both maps atomically.
		const writers = 4
		const perWriter = 200
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				s := mgr.Session()
				for i := 0; i < perWriter; i++ {
					k := uint64(w*perWriter + i)
					_ = s.Run(func() error {
						ma.Put(s, k, k)
						mb.Put(s, k, k)
						return nil
					})
				}
			}(w)
		}
		wg.Wait()
		close(stop)
		<-advDone

		dev.Crash()
		recs := LiveRecords(dev.Recover())
		// Each transaction wrote one payload per map under the same key, in
		// the same epoch. Failure atomicity means a key either survives in
		// both maps (2 live payloads) or in neither (0) — never 1.
		count := map[uint64]int{}
		for _, r := range recs {
			count[r.Key]++
		}
		for k, c := range count {
			if c != 2 {
				t.Fatalf("trial %d: key %d has %d live payloads; tx recovered partially", trial, k, c)
			}
		}
	}
}
