// Package montage implements an nbMontage-style periodic-persistence system
// (Cai et al., DISC 2021) and its integration with Medley — the paper's
// txMontage (Section 4).
//
// Wall-clock time is divided into epochs. Semantically significant data
// ("payloads": key/value records) are written to (simulated) NVM as they are
// created, tagged with the creating operation's epoch; indices live in
// transient memory and are rebuilt on recovery. When the epoch advances from
// e to e+1, all payload activity of epoch e-1 is written back and fenced —
// off the application's critical path. A crash during epoch e therefore
// recovers the state as of the end of epoch e-2 (buffered durable strict
// serializability; Definitions 4–5 of the paper).
//
// The txMontage twist (Section 4.4) is one small hook: every Medley
// transaction pins the epoch it began in and folds "current epoch == pinned
// epoch" into MCNS read validation, so all operations of a transaction
// linearize in one epoch and are recovered (or lost) together — failure
// atomicity "almost for free".
//
// # Sharded persistence
//
// The epoch *counter* and the per-device *batching* are separate concerns:
// an EpochClock carries the counter plus the pinned-session registry, and an
// EpochSys carries one device's pending batches. A single-device system owns
// a private clock (NewEpochSys); a sharded system shares one clock across S
// EpochSys instances (NewEpochSysShared), so every transaction in the domain
// — wherever its shards live — pins the same monotonically advancing epoch
// numbers, and a coordinator advances all devices together
// (AdvanceTogether). Each flush ends with a durable frontier marker on the
// device, so post-crash recovery can compute, per device, the highest epoch
// fully persisted there; the recovery cut of the whole domain is the minimum
// of those frontiers (ConsistentCut), and LiveRecordsAt rebuilds each
// device's logical state at exactly that cut — payloads beyond it are
// dropped and retirements beyond it are ignored, so no transaction is ever
// recovered torn across devices.
package montage

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"medley/internal/chaos"
	"medley/internal/core"
	"medley/internal/pnvm"
)

// Fault-injection points on the epoch flush/advance path. The flush points
// sit inside one device's Flush (batch write-backs, the window between batch
// durability and the frontier marker, and the marker's own volatile window);
// the advance points sit in AdvanceTogether, where a crash tears the domain
// between shards' flushes. All of these sites return nothing, so only
// crash/delay faults are meaningful.
var (
	cpFlushBatch          = chaos.At("txmontage.flush.batch")
	cpFlushPreMarker      = chaos.At("txmontage.flush.pre-marker")
	cpFlushMarkerVolatile = chaos.At("txmontage.flush.marker-volatile")
	cpAdvancePreFlush     = chaos.At("txmontage.advance.pre-flush")
	cpAdvanceMidShard     = chaos.At("txmontage.advance.mid-shard")
)

// firstEpoch leaves room for the e-2 recovery cut arithmetic.
const firstEpoch = 3

// FrontierKey is the reserved payload key of durable frontier markers: a
// record with this key and epoch tag e asserts that every payload batch
// through epoch e has been written back and fenced on its device. Data maps
// must not use it.
const FrontierKey = ^uint64(0)

// EpochClock is the epoch counter plus the registry of sessions pinned to an
// epoch. One clock can be shared by several EpochSys instances (sharded
// txMontage: one device and batch system per shard, one clock), which is
// what lets a cross-shard transaction land in the same epoch cut on every
// shard it touches.
type EpochClock struct {
	epoch atomic.Uint64

	// commitMu serializes epoch advancement against multi-shard commit
	// sequences: an ordered cross-shard commit holds the read side for its
	// whole sub-commit sequence (GuardCommit), so every sub-commit's epoch
	// validator sees the same current epoch and the sequence cannot tear;
	// Tick holds the write side only for the increment itself.
	commitMu sync.RWMutex

	// advanceMu serializes whole advance sequences (tick + straggler wait
	// + flush) against each other. Without it, a Sync racing a background
	// advancer could durably write epoch E's frontier marker before epoch
	// E-1's batch finished write-back, falsifying the marker invariant
	// ("marker at E ⇒ complete through E") that recovery cuts rely on.
	advanceMu sync.Mutex

	mu     sync.Mutex
	active []*atomic.Uint64 // per-session pinned epoch (0 = none)
}

// NewEpochClock creates a clock at the first epoch.
func NewEpochClock() *EpochClock {
	c := &EpochClock{}
	c.epoch.Store(firstEpoch)
	return c
}

// Current returns the current epoch.
func (c *EpochClock) Current() uint64 { return c.epoch.Load() }

// Tick advances the epoch by one and returns the new value. It does not
// wait for stragglers or flush anything — see EpochSys.Advance and
// AdvanceTogether for the full advance protocols.
func (c *EpochClock) Tick() uint64 {
	c.commitMu.Lock()
	e := c.epoch.Add(1)
	c.commitMu.Unlock()
	return e
}

// GuardCommit blocks epoch advancement until release is called and returns
// the epoch that stays current for the whole guarded window. Multi-shard
// commit sequences run under it so all their epoch validators agree.
func (c *EpochClock) GuardCommit() (epoch uint64, release func()) {
	c.commitMu.RLock()
	return c.epoch.Load(), c.commitMu.RUnlock
}

// AdvanceTo raises the clock to at least epoch e. Recovery re-anchoring
// uses it so the fresh clock starts beyond every pre-crash epoch still on
// media — a new transaction must never share an epoch number with an old,
// already-flushed batch. Like Tick, the mutation happens under commitMu's
// write side, so it cannot land inside a commit sequence's GuardCommit
// window (whose epoch must stay current until released).
func (c *EpochClock) AdvanceTo(e uint64) {
	c.commitMu.Lock()
	if c.epoch.Load() < e {
		c.epoch.Store(e)
	}
	c.commitMu.Unlock()
}

// register allocates an active-epoch slot for a session.
func (c *EpochClock) register() *atomic.Uint64 {
	slot := &atomic.Uint64{}
	c.mu.Lock()
	c.active = append(c.active, slot)
	c.mu.Unlock()
	return slot
}

// WaitNotPinnedBelow spins until no session is pinned to an epoch < bound.
func (c *EpochClock) WaitNotPinnedBelow(bound uint64) {
	for {
		c.mu.Lock()
		ok := true
		for _, slot := range c.active {
			if e := slot.Load(); e != 0 && e < bound {
				ok = false
				break
			}
		}
		c.mu.Unlock()
		if ok {
			return
		}
		runtime.Gosched()
	}
}

// EpochSys manages one device's pending persistence batches and its view of
// the (possibly shared) epoch clock. Create with NewEpochSys (private clock)
// or NewEpochSysShared, attach to a TxManager with Attach, and either run
// the background advancer (Start/Stop), call Advance manually (tests), or —
// for shared clocks — let a coordinator drive AdvanceTogether.
type EpochSys struct {
	dev   *pnvm.Device
	clock *EpochClock

	// pending[e % pendSlots] holds record ids touched (created or retired)
	// in epoch e, awaiting write-back. Striped to keep op-path contention
	// low. An epoch's batch is flushed two advances later, so 8 slots are
	// plenty.
	stripes [16]pendStripe

	claims atomic.Uint64 // retire-claim allocator

	// lastMarker is the id of the newest durable frontier marker; each
	// flush deletes the one it supersedes (Frontier takes the max, so only
	// the newest matters) to keep marker count O(1) instead of O(epochs).
	// Written only under the clock's advanceMu, or single-threaded during
	// recovery re-anchoring.
	lastMarker uint64

	stop chan struct{}
	done chan struct{}
}

type pendStripe struct {
	mu   sync.Mutex
	pend map[uint64][]uint64 // epoch → record ids
}

// NewEpochSys creates an epoch system over the given device with a private
// clock.
func NewEpochSys(dev *pnvm.Device) *EpochSys {
	return NewEpochSysShared(dev, NewEpochClock())
}

// NewEpochSysShared creates an epoch system over the given device pinned to
// a shared clock. The caller owns the advance cadence: drive all systems of
// the clock together with AdvanceTogether (or SyncTogether); do not Start
// per-system advancers on a shared clock.
func NewEpochSysShared(dev *pnvm.Device, clock *EpochClock) *EpochSys {
	es := &EpochSys{dev: dev, clock: clock}
	for i := range es.stripes {
		es.stripes[i].pend = make(map[uint64][]uint64)
	}
	return es
}

// Device returns the underlying simulated NVM device.
func (es *EpochSys) Device() *pnvm.Device { return es.dev }

// Clock returns the epoch clock (private or shared).
func (es *EpochSys) Clock() *EpochClock { return es.clock }

// Current returns the current epoch.
func (es *EpochSys) Current() uint64 { return es.clock.Current() }

// NewClaim returns a fresh retire-claim token.
func (es *EpochSys) NewClaim() uint64 { return es.claims.Add(1) }

func (es *EpochSys) pendAdd(sid int, epoch, id uint64) {
	st := &es.stripes[sid%len(es.stripes)]
	st.mu.Lock()
	st.pend[epoch] = append(st.pend[epoch], id)
	st.mu.Unlock()
}

// PNew writes a fresh payload to NVM tagged with epoch, registering it for
// the epoch's persistence batch. Returns the payload id.
func (es *EpochSys) PNew(sid int, key uint64, val []byte, epoch uint64) uint64 {
	if key == FrontierKey {
		panic("montage: payload key 2^64-1 is reserved for frontier markers")
	}
	id, err := es.dev.Write(key, val, epoch)
	if err != nil {
		panic("montage: device crashed during operation: " + err.Error())
	}
	es.pendAdd(sid, epoch, id)
	return id
}

// UnNew deletes a payload created by a transaction that aborted (it was
// never durable: the epoch validator guarantees its batch has not flushed).
func (es *EpochSys) UnNew(id uint64) { es.dev.Delete(id) }

// PRetire marks a payload retired as of epoch, registering the mark for the
// epoch's persistence batch. claim must come from NewClaim.
func (es *EpochSys) PRetire(sid int, id, epoch, claim uint64) {
	if err := es.dev.Retire(id, epoch, claim); err != nil {
		panic("montage: device crashed during operation: " + err.Error())
	}
	es.pendAdd(sid, epoch, id)
}

// UnRetire clears a retire mark written by an aborting transaction.
func (es *EpochSys) UnRetire(id, claim uint64) { es.dev.UnRetire(id, claim) }

// Flush persists the given epoch's batch on this device — write-back of
// every pending record, a fence, and then a durable frontier marker
// asserting the device is complete through that epoch. Callers must ensure
// no session is still pinned at or below the epoch (WaitNotPinnedBelow).
// On a crashed device the flush is a no-op: the records (and the marker)
// are simply lost, which recovery's frontier arithmetic already models.
func (es *EpochSys) Flush(epoch uint64) {
	for i := range es.stripes {
		st := &es.stripes[i]
		st.mu.Lock()
		ids := st.pend[epoch]
		delete(st.pend, epoch)
		st.mu.Unlock()
		cpFlushBatch.Hit() // crash here loses this stripe's (and later stripes') write-backs
		for _, id := range ids {
			es.dev.WriteBack(id)
		}
	}
	es.dev.Fence()
	cpFlushPreMarker.Hit() // crash here: batch durable, marker missing — epoch cut falls before it
	// The frontier marker is only meaningful if it becomes durable after
	// the batch: recovery treats a missing marker as "this epoch never
	// fully persisted here" and cuts before it.
	id, err := es.dev.Write(FrontierKey, nil, epoch)
	if err != nil {
		if errors.Is(err, pnvm.ErrCrashed) {
			return
		}
		panic("montage: frontier marker write failed: " + err.Error())
	}
	cpFlushMarkerVolatile.Hit() // crash here: marker written but never durable
	es.dev.WriteBack(id)
	es.dev.Fence()
	// The new marker durably supersedes the previous one; drop it so
	// markers don't accumulate one per epoch. A crash between the
	// write-back above and this delete leaves both (harmless, Frontier
	// takes the max); a crash *before* the write-back lost the new marker,
	// and then the delete must not erase the old one — pnvm.Device.Delete
	// is a no-op on crashed media, which covers exactly that window.
	if es.lastMarker != 0 {
		es.dev.Delete(es.lastMarker)
	}
	es.lastMarker = id
}

// Advance moves to the next epoch and persists (write-back + fence) the
// batch from two epochs ago, after waiting for straggler transactions still
// pinned to that epoch to finish (their commits are already impossible —
// the epoch validator fails — so the wait is short and bounded by abort
// processing). On a shared clock prefer AdvanceTogether, which flushes
// every device of the domain at the same boundary.
func (es *EpochSys) Advance() {
	AdvanceTogether(es.clock, []*EpochSys{es})
}

// Sync persists everything up to and including the current epoch: it
// advances twice so the current epoch's batch flushes, making all
// previously-committed transactions durable (the paper's wait-free sync,
// here a simple blocking call).
func (es *EpochSys) Sync() {
	es.Advance()
	es.Advance()
}

// AdvanceTogether advances a shared clock once and flushes the newly
// flushable batch on every system of the domain, so all devices reach the
// same epoch boundary before the advance returns. This is the sharded
// engine's coordinator step. Whole advance sequences are serialized per
// clock (a Sync racing the background coordinator must not interleave
// their flushes, or a frontier marker could outrun an older batch's
// write-back).
func AdvanceTogether(clock *EpochClock, systems []*EpochSys) {
	clock.advanceMu.Lock()
	defer clock.advanceMu.Unlock()
	e := clock.Tick()
	clock.WaitNotPinnedBelow(e - 1)
	cpAdvancePreFlush.Hit() // crash here: epoch ticked, nothing flushed
	for _, es := range systems {
		es.Flush(e - 2)
		// Fires between one shard's flush and the next, so a crash tears
		// the domain mid-advance: some devices carry this epoch's marker,
		// the rest don't, and recovery must cut at the minimum frontier.
		cpAdvanceMidShard.Hit()
	}
}

// SyncTogether is Sync for a shared-clock domain: after it returns, every
// transaction committed before the call is durable on its devices at one
// mutually consistent epoch boundary.
func SyncTogether(clock *EpochClock, systems []*EpochSys) {
	AdvanceTogether(clock, systems)
	AdvanceTogether(clock, systems)
}

// ReanchorAll scrubs every reattached device of a (fresh) domain after a
// crash so they can be reused: torn state beyond the recovery cut —
// records created after it, retirement marks stamped after it — is removed
// from media, stale frontier markers are dropped, one fresh durable marker
// per device re-asserts "complete through cut", and the shared clock is
// raised past the cut so no new transaction shares an epoch number with a
// pre-crash batch. Without the scrub a *second* crash would compute its
// frontier from pre-first-crash markers and resurrect exactly the torn
// state the first recovery discarded. Epoch advancement is blocked for the
// duration, so a background advancer already running on the rebuilt engine
// cannot interleave its flushes with the scrub. dumps must be
// index-aligned with systems.
func ReanchorAll(clock *EpochClock, systems []*EpochSys, dumps [][]pnvm.Record, cut uint64) {
	clock.advanceMu.Lock()
	defer clock.advanceMu.Unlock()
	for i, es := range systems {
		es.reanchor(dumps[i], cut)
	}
	clock.AdvanceTo(cut + 2)
}

// reanchor is ReanchorAll's per-device step. Callers hold the clock's
// advanceMu (or run single-threaded), since it writes lastMarker.
func (es *EpochSys) reanchor(recs []pnvm.Record, cut uint64) {
	// Drop every frontier marker by scanning the device itself, not the
	// dump: a background coordinator that ticked between reattachment and
	// recovery has written markers at fresh-clock epochs the dump never
	// saw, and a stale marker surviving here would falsify the next
	// crash's consistent cut.
	es.dev.DeleteKey(FrontierKey)
	for _, r := range recs {
		switch {
		case r.Key == FrontierKey:
			// already gone via DeleteKey
		case r.Epoch > cut:
			es.dev.Delete(r.ID)
		case r.Retire > cut:
			es.dev.ClearRetire(r.ID)
		}
	}
	id, err := es.dev.Write(FrontierKey, nil, cut)
	if err != nil {
		panic("montage: reanchor marker write failed: " + err.Error())
	}
	es.dev.WriteBack(id)
	es.dev.Fence()
	es.lastMarker = id
}

// Start launches the background epoch advancer with the given period
// (nbMontage uses tens of milliseconds). Stop() halts it. Only for systems
// with a private clock; shared-clock domains run one coordinator instead.
func (es *EpochSys) Start(period time.Duration) {
	es.stop = make(chan struct{})
	es.done = make(chan struct{})
	go func() {
		defer close(es.done)
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-es.stop:
				return
			case <-t.C:
				es.Advance()
			}
		}
	}()
}

// Stop halts the background advancer.
func (es *EpochSys) Stop() {
	if es.stop != nil {
		close(es.stop)
		<-es.done
		es.stop = nil
	}
}

// txCtx is the per-transaction epoch context stored in Session.TxData. It
// is embedded in the session's sessExt and reused across transactions —
// only the owning session's goroutine reads or writes its fields.
type txCtx struct {
	epoch uint64
	slot  *atomic.Uint64
}

// sessExt is the per-session epoch state cached in Session.Ext: the pinned
// epoch slot plus a reusable transaction context and validator closure, so
// TxBegin on the txMontage hot path allocates nothing beyond the MCNS
// descriptor itself. The validator reads the atomic pinned slot rather than
// the (owner-only) ctx fields: helpers may evaluate a descriptor's
// validators concurrently with the owner, and while the descriptor can be
// finalized (InProg) the owner is still inside TxEnd, so the slot holds
// exactly the epoch that transaction pinned. A straggling helper that
// evaluates after the owner moved on gets an arbitrary verdict, but its
// status CAS then fails against the already-final descriptor — same as the
// pre-existing helper race.
type sessExt struct {
	slot      *atomic.Uint64
	ctx       txCtx
	validator func() bool
}

// Attach wires the epoch system into a TxManager, turning Medley
// transactions on attached structures into txMontage transactions: TxBegin
// pins the current epoch and registers the epoch validator; transaction end
// releases the pin.
func Attach(mgr *core.TxManager, es *EpochSys) {
	clock := es.clock
	extFor := func(s *core.Session) *sessExt {
		// Sessions are single-goroutine, so the cached ext needs no lock.
		if ext, ok := s.Ext.(*sessExt); ok {
			return ext
		}
		ext := &sessExt{slot: clock.register()}
		ext.validator = func() bool { return clock.Current() == ext.slot.Load() }
		s.Ext = ext
		return ext
	}
	mgr.SetBeginHook(func(s *core.Session) {
		ext := extFor(s)
		e := clock.Current()
		ext.slot.Store(e)
		ext.ctx = txCtx{epoch: e, slot: ext.slot}
		s.TxData = &ext.ctx
		s.Desc().AddValidator(ext.validator)
	})
	mgr.SetEndHook(func(s *core.Session, committed bool) {
		if ctx, ok := s.TxData.(*txCtx); ok {
			ctx.slot.Store(0)
		}
	})
}

// TxEpoch returns the epoch the session's current transaction is pinned to,
// or the current epoch when outside a transaction.
func (es *EpochSys) TxEpoch(s *core.Session) uint64 {
	if e := PinnedEpoch(s); e != 0 {
		return e
	}
	return es.clock.Current()
}

// PinnedEpoch returns the epoch the session's current transaction is pinned
// to, or 0 when the session is outside a transaction (or the manager has no
// epoch system attached). The sharded commit coordinator uses it to check
// that every shard's sub-transaction sits in the same epoch cut before the
// ordered sub-commit sequence starts.
func PinnedEpoch(s *core.Session) uint64 {
	if s != nil && s.InTx() {
		if ctx, ok := s.TxData.(*txCtx); ok {
			return ctx.epoch
		}
	}
	return 0
}
