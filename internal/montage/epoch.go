// Package montage implements an nbMontage-style periodic-persistence system
// (Cai et al., DISC 2021) and its integration with Medley — the paper's
// txMontage (Section 4).
//
// Wall-clock time is divided into epochs. Semantically significant data
// ("payloads": key/value records) are written to (simulated) NVM as they are
// created, tagged with the creating operation's epoch; indices live in
// transient memory and are rebuilt on recovery. When the epoch advances from
// e to e+1, all payload activity of epoch e-1 is written back and fenced —
// off the application's critical path. A crash during epoch e therefore
// recovers the state as of the end of epoch e-2 (buffered durable strict
// serializability; Definitions 4–5 of the paper).
//
// The txMontage twist (Section 4.4) is one small hook: every Medley
// transaction pins the epoch it began in and folds "current epoch == pinned
// epoch" into MCNS read validation, so all operations of a transaction
// linearize in one epoch and are recovered (or lost) together — failure
// atomicity "almost for free".
package montage

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"medley/internal/core"
	"medley/internal/pnvm"
)

// firstEpoch leaves room for the e-2 recovery cut arithmetic.
const firstEpoch = 3

// EpochSys manages epochs, pending persistence batches, and session
// registration. Create with NewEpochSys, attach to a TxManager with Attach,
// and either run the background advancer (Start/Stop) or call Advance
// manually (tests).
type EpochSys struct {
	dev   *pnvm.Device
	epoch atomic.Uint64

	// pending[e % pendSlots] holds record ids touched (created or retired)
	// in epoch e, awaiting write-back. Striped to keep op-path contention
	// low. An epoch's batch is flushed two advances later, so 8 slots are
	// plenty.
	stripes [16]pendStripe

	mu     sync.Mutex
	active []*atomic.Uint64 // per-session pinned epoch (0 = none)

	claims atomic.Uint64 // retire-claim allocator

	stop chan struct{}
	done chan struct{}
}

type pendStripe struct {
	mu   sync.Mutex
	pend map[uint64][]uint64 // epoch → record ids
}

// NewEpochSys creates an epoch system over the given device.
func NewEpochSys(dev *pnvm.Device) *EpochSys {
	es := &EpochSys{dev: dev}
	es.epoch.Store(firstEpoch)
	for i := range es.stripes {
		es.stripes[i].pend = make(map[uint64][]uint64)
	}
	return es
}

// Device returns the underlying simulated NVM device.
func (es *EpochSys) Device() *pnvm.Device { return es.dev }

// Current returns the current epoch.
func (es *EpochSys) Current() uint64 { return es.epoch.Load() }

// NewClaim returns a fresh retire-claim token.
func (es *EpochSys) NewClaim() uint64 { return es.claims.Add(1) }

// registerSession allocates an active-epoch slot for a session.
func (es *EpochSys) registerSession() *atomic.Uint64 {
	slot := &atomic.Uint64{}
	es.mu.Lock()
	es.active = append(es.active, slot)
	es.mu.Unlock()
	return slot
}

func (es *EpochSys) pendAdd(sid int, epoch, id uint64) {
	st := &es.stripes[sid%len(es.stripes)]
	st.mu.Lock()
	st.pend[epoch] = append(st.pend[epoch], id)
	st.mu.Unlock()
}

// PNew writes a fresh payload to NVM tagged with epoch, registering it for
// the epoch's persistence batch. Returns the payload id.
func (es *EpochSys) PNew(sid int, key uint64, val []byte, epoch uint64) uint64 {
	id, err := es.dev.Write(key, val, epoch)
	if err != nil {
		panic("montage: device crashed during operation: " + err.Error())
	}
	es.pendAdd(sid, epoch, id)
	return id
}

// UnNew deletes a payload created by a transaction that aborted (it was
// never durable: the epoch validator guarantees its batch has not flushed).
func (es *EpochSys) UnNew(id uint64) { es.dev.Delete(id) }

// PRetire marks a payload retired as of epoch, registering the mark for the
// epoch's persistence batch. claim must come from NewClaim.
func (es *EpochSys) PRetire(sid int, id, epoch, claim uint64) {
	if err := es.dev.Retire(id, epoch, claim); err != nil {
		panic("montage: device crashed during operation: " + err.Error())
	}
	es.pendAdd(sid, epoch, id)
}

// UnRetire clears a retire mark written by an aborting transaction.
func (es *EpochSys) UnRetire(id, claim uint64) { es.dev.UnRetire(id, claim) }

// Advance moves to the next epoch and persists (write-back + fence) the
// batch from two epochs ago, after waiting for straggler transactions still
// pinned to that epoch to finish (their commits are already impossible —
// the epoch validator fails — so the wait is short and bounded by abort
// processing).
func (es *EpochSys) Advance() {
	e := es.epoch.Add(1)
	flushEpoch := e - 2
	es.waitNotPinnedBelow(flushEpoch + 1)
	for i := range es.stripes {
		st := &es.stripes[i]
		st.mu.Lock()
		ids := st.pend[flushEpoch]
		delete(st.pend, flushEpoch)
		st.mu.Unlock()
		for _, id := range ids {
			es.dev.WriteBack(id)
		}
	}
	es.dev.Fence()
}

// waitNotPinnedBelow spins until no session is pinned to an epoch < bound.
func (es *EpochSys) waitNotPinnedBelow(bound uint64) {
	for {
		es.mu.Lock()
		ok := true
		for _, slot := range es.active {
			if e := slot.Load(); e != 0 && e < bound {
				ok = false
				break
			}
		}
		es.mu.Unlock()
		if ok {
			return
		}
		runtime.Gosched()
	}
}

// Sync persists everything up to and including the current epoch: it
// advances twice so the current epoch's batch flushes, making all
// previously-committed transactions durable (the paper's wait-free sync,
// here a simple blocking call).
func (es *EpochSys) Sync() {
	es.Advance()
	es.Advance()
}

// Start launches the background epoch advancer with the given period
// (nbMontage uses tens of milliseconds). Stop() halts it.
func (es *EpochSys) Start(period time.Duration) {
	es.stop = make(chan struct{})
	es.done = make(chan struct{})
	go func() {
		defer close(es.done)
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-es.stop:
				return
			case <-t.C:
				es.Advance()
			}
		}
	}()
}

// Stop halts the background advancer.
func (es *EpochSys) Stop() {
	if es.stop != nil {
		close(es.stop)
		<-es.done
		es.stop = nil
	}
}

// txCtx is the per-transaction epoch context stored in Session.TxData.
type txCtx struct {
	epoch uint64
	slot  *atomic.Uint64
}

// Attach wires the epoch system into a TxManager, turning Medley
// transactions on attached structures into txMontage transactions: TxBegin
// pins the current epoch and registers the epoch validator; transaction end
// releases the pin.
func Attach(mgr *core.TxManager, es *EpochSys) {
	slotFor := func(s *core.Session) *atomic.Uint64 {
		// Sessions are single-goroutine, so the cached slot needs no lock.
		if sl, ok := s.Ext.(*atomic.Uint64); ok {
			return sl
		}
		sl := es.registerSession()
		s.Ext = sl
		return sl
	}
	mgr.SetBeginHook(func(s *core.Session) {
		sl := slotFor(s)
		e := es.Current()
		sl.Store(e)
		s.TxData = &txCtx{epoch: e, slot: sl}
		s.Desc().AddValidator(func() bool { return es.Current() == e })
	})
	mgr.SetEndHook(func(s *core.Session, committed bool) {
		if ctx, ok := s.TxData.(*txCtx); ok {
			ctx.slot.Store(0)
		}
	})
}

// TxEpoch returns the epoch the session's current transaction is pinned to,
// or the current epoch when outside a transaction.
func (es *EpochSys) TxEpoch(s *core.Session) uint64 {
	if s != nil && s.InTx() {
		if ctx, ok := s.TxData.(*txCtx); ok {
			return ctx.epoch
		}
	}
	return es.Current()
}
