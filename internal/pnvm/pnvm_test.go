package pnvm

import (
	"testing"
	"time"
)

func TestWriteRecoverRoundTrip(t *testing.T) {
	d := New(Latencies{})
	id, err := d.Write(1, []byte{42}, 3)
	if err != nil {
		t.Fatal(err)
	}
	d.WriteBack(id)
	d.Fence()
	d.Crash()
	recs := d.Recover()
	if len(recs) != 1 || recs[0].Key != 1 || recs[0].Val[0] != 42 {
		t.Fatalf("recovered %+v", recs)
	}
}

func TestUnflushedWritesLostOnCrash(t *testing.T) {
	d := New(Latencies{})
	d.Write(1, []byte{1}, 3)
	id2, _ := d.Write(2, []byte{2}, 3)
	d.WriteBack(id2)
	d.Crash()
	recs := d.Recover()
	if len(recs) != 1 || recs[0].Key != 2 {
		t.Fatalf("recovered %+v, want only key 2", recs)
	}
}

func TestRetireSemantics(t *testing.T) {
	d := New(Latencies{})
	id, _ := d.Write(1, []byte{1}, 3)
	d.WriteBack(id)
	// Retire without write-back: lost on crash, record resurrects.
	d.Retire(id, 4, 77)
	d.Crash()
	recs := d.Recover()
	if len(recs) != 1 || recs[0].Retire != 0 {
		t.Fatalf("unflushed retire persisted: %+v", recs)
	}
	// Retire with write-back: survives.
	d.Retire(id, 5, 78)
	d.WriteBack(id)
	d.Crash()
	recs = d.Recover()
	if len(recs) != 1 || recs[0].Retire != 5 {
		t.Fatalf("flushed retire lost: %+v", recs)
	}
}

func TestUnRetireClaimGuard(t *testing.T) {
	d := New(Latencies{})
	id, _ := d.Write(1, []byte{1}, 3)
	d.Retire(id, 4, 100)
	// A different claim must not clear the mark.
	d.UnRetire(id, 999)
	d.WriteBack(id)
	d.Crash()
	recs := d.Recover()
	if recs[0].Retire != 4 {
		t.Fatal("foreign claim cleared retire mark")
	}
	// The owning claim may clear it (fresh mark first).
	d.Retire(id, 6, 101)
	d.UnRetire(id, 101)
	d.WriteBack(id)
	d.Crash()
	recs = d.Recover()
	if recs[0].Retire != 0 {
		t.Fatal("owner could not clear its own retire mark")
	}
}

func TestDeleteRemovesRecord(t *testing.T) {
	d := New(Latencies{})
	id, _ := d.Write(1, []byte{1}, 3)
	d.WriteBack(id)
	d.Delete(id)
	if d.Live() != 0 {
		t.Fatal("record survived delete")
	}
	d.Crash()
	if recs := d.Recover(); len(recs) != 0 {
		t.Fatalf("deleted record recovered: %+v", recs)
	}
}

func TestCrashedDeviceRejectsWrites(t *testing.T) {
	d := New(Latencies{})
	d.Crash()
	if _, err := d.Write(1, nil, 3); err != ErrCrashed {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	d.Recover()
	if _, err := d.Write(1, nil, 3); err != nil {
		t.Fatalf("write after recover: %v", err)
	}
}

func TestLatencyIsCharged(t *testing.T) {
	d := New(Latencies{WriteBack: 200 * time.Microsecond})
	id, _ := d.Write(1, nil, 3)
	t0 := time.Now()
	d.WriteBack(id)
	if el := time.Since(t0); el < 150*time.Microsecond {
		t.Fatalf("write-back took %v, latency not modelled", el)
	}
}

func TestStatsCounters(t *testing.T) {
	d := New(Latencies{})
	id, _ := d.Write(1, nil, 3)
	d.Retire(id, 4, 1)
	d.WriteBack(id)
	d.Fence()
	w, wb, f := d.Stats()
	if w != 2 || wb != 1 || f != 1 {
		t.Fatalf("stats = %d,%d,%d", w, wb, f)
	}
}
