// Package pnvm simulates a byte-addressable nonvolatile memory device.
//
// The Medley paper evaluates txMontage and OneFile on Intel Optane DCPMM.
// This repository has no NVM, so pnvm supplies the closest synthetic
// equivalent that exercises the same code paths:
//
//   - Writes destined for NVM incur a configurable extra latency (Optane
//     media writes cost several times a DRAM write; see Izraelevitz et al.,
//     "Basic Performance Measurements of the Intel Optane DC PMM").
//   - Write-back (clwb) and fence (sfence) instructions are modelled as
//     explicit calls with their own latencies, so persistence strategies
//     that differ only in *when* they flush (eager per-write vs. periodic
//     batches off the critical path) differ in measured cost exactly as on
//     real hardware.
//   - Durability is modelled honestly: a record is durable only after the
//     device has acknowledged a write-back for it. Crash() discards
//     everything else; Recover() returns the survivors. This lets tests
//     verify buffered durable strict serializability end to end.
//
// The record store is sharded so that the simulation itself scales like a
// DIMM (per-line independence) rather than like a global lock.
//
// The device stores opaque records (key, value bytes, epoch tags); the
// montage layer decides what they mean.
package pnvm

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"medley/internal/chaos"
)

// Fault-injection points on the media path. pnvm.write fires inside every
// record store (payloads, retire marks, frontier/commit markers alike), so a
// crash armed there lands at whatever instant of a higher-level protocol
// first touches media; pnvm.writeback fires inside every clwb. WriteBack has
// no error channel, so only crash/delay faults are meaningful there.
var (
	cpWrite     = chaos.At("pnvm.write")
	cpWriteBack = chaos.At("pnvm.writeback")
)

// Latencies configures the simulated device timing. Zero values mean "free"
// (useful in unit tests); NewDefault uses Optane-flavoured defaults.
type Latencies struct {
	Write     time.Duration // extra cost of a store to NVM media
	WriteBack time.Duration // clwb of one cache line
	Fence     time.Duration // sfence
}

// DefaultLatencies approximates the relative costs measured on Optane:
// NVM stores ~2-3x DRAM, clwb ~100ns effective, sfence ~30ns.
func DefaultLatencies() Latencies {
	return Latencies{
		Write:     60 * time.Nanosecond,
		WriteBack: 100 * time.Nanosecond,
		Fence:     30 * time.Nanosecond,
	}
}

// Record is one opaque persistent record.
type Record struct {
	ID     uint64 // allocation id (unique per record)
	Key    uint64
	Val    []byte
	Epoch  uint64 // creation epoch
	Retire uint64 // retirement epoch; 0 = live
}

const nShards = 64

// shard holds a slice of the record space under its own lock, standing in
// for the line-level independence of a real DIMM.
type shard struct {
	mu      sync.Mutex
	records map[uint64]*Record
	durable map[uint64]bool
	// retire marks that reached durability, and the claim that wrote the
	// current (possibly volatile) mark.
	retireDurable map[uint64]uint64
	retireClaim   map[uint64]uint64
}

// Device is a simulated NVM DIMM. All methods are safe for concurrent use.
type Device struct {
	lat    Latencies
	shards [nShards]shard
	nextID atomic.Uint64

	writes     atomic.Uint64
	writeBacks atomic.Uint64
	fences     atomic.Uint64

	crashed atomic.Bool
}

// New creates a device with the given latencies.
func New(lat Latencies) *Device {
	d := &Device{lat: lat}
	for i := range d.shards {
		s := &d.shards[i]
		s.records = make(map[uint64]*Record)
		s.durable = make(map[uint64]bool)
		s.retireDurable = make(map[uint64]uint64)
		s.retireClaim = make(map[uint64]uint64)
	}
	return d
}

// NewDefault creates a device with Optane-flavoured latencies.
func NewDefault() *Device { return New(DefaultLatencies()) }

func (d *Device) shard(id uint64) *shard { return &d.shards[id%nShards] }

// spin models device latency without yielding the processor (matching the
// synchronous nature of clwb/sfence on the store path).
func spin(dur time.Duration) {
	if dur <= 0 {
		return
	}
	t0 := time.Now()
	for time.Since(t0) < dur {
	}
}

// ErrCrashed is returned by operations attempted after Crash.
var ErrCrashed = errors.New("pnvm: device crashed; call Recover")

// Write stores a new record to media (not yet durable) and returns its id.
// Models the NVM store cost.
func (d *Device) Write(key uint64, val []byte, epoch uint64) (uint64, error) {
	if err := cpWrite.Hit(); err != nil {
		return 0, err
	}
	if d.crashed.Load() {
		return 0, ErrCrashed
	}
	spin(d.lat.Write)
	id := d.nextID.Add(1)
	r := &Record{ID: id, Key: key, Val: val, Epoch: epoch}
	s := d.shard(id)
	s.mu.Lock()
	s.records[id] = r
	s.mu.Unlock()
	d.writes.Add(1)
	return id, nil
}

// Retire marks a record retired as of the given epoch (a store to the
// record's metadata; not yet durable). claim identifies the retiring
// transaction so that only it can undo the mark.
func (d *Device) Retire(id uint64, epoch uint64, claim uint64) error {
	if d.crashed.Load() {
		return ErrCrashed
	}
	spin(d.lat.Write)
	s := d.shard(id)
	s.mu.Lock()
	if r, ok := s.records[id]; ok {
		r.Retire = epoch
		s.retireClaim[id] = claim
	}
	s.mu.Unlock()
	d.writes.Add(1)
	return nil
}

// UnRetire clears a retire mark, but only if it is still owned by claim
// (an aborting transaction must not clear a successor's mark). Like Delete
// it is a no-op on crashed media: an abort racing the crash must not scrub
// a mark the crash already froze.
func (d *Device) UnRetire(id uint64, claim uint64) {
	s := d.shard(id)
	s.mu.Lock()
	if r, ok := s.records[id]; ok && !d.crashed.Load() && s.retireClaim[id] == claim {
		r.Retire = 0
		delete(s.retireClaim, id)
		delete(s.retireDurable, id)
	}
	s.mu.Unlock()
}

// ClearRetire unconditionally clears a record's retirement mark. Unlike
// UnRetire it is not claim-gated: it exists for post-crash recovery scrubs,
// where the retiring transaction lies beyond the recovery cut and is being
// discarded wholesale, and the device is quiesced and single-threaded.
func (d *Device) ClearRetire(id uint64) {
	s := d.shard(id)
	s.mu.Lock()
	if r, ok := s.records[id]; ok {
		r.Retire = 0
		delete(s.retireClaim, id)
		delete(s.retireDurable, id)
	}
	s.mu.Unlock()
}

// Delete removes a record outright (used to undo allocations of aborted
// transactions before they are ever durable, and to drop superseded
// metadata). On a crashed device it is a no-op: post-crash media must not
// be mutated until Recover — in particular, a flush racing the crash must
// not erase the durable frontier marker it was about to supersede. The
// check happens under the shard lock, so it is ordered against Crash()'s
// scan of the same shard.
func (d *Device) Delete(id uint64) {
	s := d.shard(id)
	s.mu.Lock()
	if !d.crashed.Load() {
		delete(s.records, id)
		delete(s.durable, id)
		delete(s.retireDurable, id)
		delete(s.retireClaim, id)
	}
	s.mu.Unlock()
}

// WriteBack makes record id durable (clwb). Idempotent.
func (d *Device) WriteBack(id uint64) {
	cpWriteBack.Hit() // no error channel: crash/delay faults only
	spin(d.lat.WriteBack)
	s := d.shard(id)
	s.mu.Lock()
	if r, ok := s.records[id]; ok {
		s.durable[id] = true
		if r.Retire != 0 {
			s.retireDurable[id] = r.Retire
		}
	}
	s.mu.Unlock()
	d.writeBacks.Add(1)
}

// Fence orders prior write-backs (sfence).
func (d *Device) Fence() {
	spin(d.lat.Fence)
	d.fences.Add(1)
}

// Crash simulates a full-system crash: every record or retirement mark that
// was not acknowledged durable is lost. Subsequent Writes fail until
// Recover is called.
func (d *Device) Crash() {
	d.crashed.Store(true)
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.Lock()
		for id, r := range s.records {
			if !s.durable[id] {
				delete(s.records, id)
				continue
			}
			if re, ok := s.retireDurable[id]; ok {
				r.Retire = re
			} else {
				r.Retire = 0
			}
		}
		s.mu.Unlock()
	}
}

// Recover returns the surviving records (durable creations, with durable
// retirement marks applied) and reopens the device for use.
func (d *Device) Recover() []Record {
	var out []Record
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.Lock()
		for _, r := range s.records {
			out = append(out, *r)
		}
		s.mu.Unlock()
	}
	d.crashed.Store(false)
	return out
}

// DeleteKey removes every record stored under key, durable or not. It
// exists for recovery scrubs of reserved-key metadata (montage's frontier
// markers): scanning the live device rather than a crash dump catches
// records written after the dump was taken, e.g. by a background advancer
// that ticked between engine reattachment and recovery.
func (d *Device) DeleteKey(key uint64) {
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.Lock()
		for id, r := range s.records {
			if r.Key == key {
				delete(s.records, id)
				delete(s.durable, id)
				delete(s.retireDurable, id)
				delete(s.retireClaim, id)
			}
		}
		s.mu.Unlock()
	}
}

// DumpAll crashes every device of a multi-device domain and returns their
// post-crash record dumps, index-aligned with devs — the input shape of
// multi-device recovery (txengine.Persister.RecoverUintMap). Crashing the
// whole fleet before recovering any single device models a full-system
// power failure: no device gets to flush after another has already lost
// state.
func DumpAll(devs []*Device) [][]Record {
	for _, d := range devs {
		d.Crash()
	}
	dumps := make([][]Record, len(devs))
	for i, d := range devs {
		dumps[i] = d.Recover()
	}
	return dumps
}

// Live returns the number of records on media (diagnostic).
func (d *Device) Live() int {
	n := 0
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.Lock()
		n += len(s.records)
		s.mu.Unlock()
	}
	return n
}

// Stats reports operation counters.
func (d *Device) Stats() (writes, writeBacks, fences uint64) {
	return d.writes.Load(), d.writeBacks.Load(), d.fences.Load()
}
