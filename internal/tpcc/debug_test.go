package tpcc

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"medley/internal/core"
	"medley/internal/structures/fskiplist"
)

// Minimal reproducer scaffolding for the newOrder spin.
func TestDebugSingleNewOrder(t *testing.T) {
	cfg := smallCfg()
	st, err := NewStore("medley", StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	Load(st, cfg)
	w := st.NewWorker(1)
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 50; i++ {
		attempts := 0
		err := w.RunTx(func(h Handle) error {
			attempts++
			if attempts > 20 {
				t.Fatalf("newOrder %d: %d retries — deterministic abort loop", i, attempts)
			}
			return NewOrder(h, cfg, rng, 1)
		})
		if err != nil {
			t.Fatalf("newOrder %d: %v", i, err)
		}
	}
}

// Direct skiplist reproduction: get+put+get+put on the same key repeatedly
// inside one transaction (as newOrder does to stock rows).
func TestDebugRepeatedGetPutSameTx(t *testing.T) {
	mgr := core.NewTxManager()
	sl := fskiplist.New[uint64, int]()
	s := mgr.Session()
	sl.Put(s, 1, 0)
	sl.Put(s, 2, 0)
	for i := 0; i < 50; i++ {
		attempts := 0
		err := s.Run(func() error {
			attempts++
			if attempts > 20 {
				t.Fatalf("iter %d: deterministic abort loop", i)
			}
			for j := 0; j < 6; j++ {
				k := uint64(1 + j%2)
				v, ok := sl.Get(s, k)
				if !ok {
					return fmt.Errorf("missing key %d", k)
				}
				sl.Put(s, k, v+1)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}
