package tpcc

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"medley/internal/txengine"
)

// Result is one measured TPC-C throughput point.
type Result struct {
	System     string
	Threads    int
	Txns       uint64
	Duration   time.Duration
	Throughput float64        // transactions per second (newOrder + payment)
	Stats      txengine.Stats // engine stats delta over the measured run
}

// Run drives the newOrder:payment 1:1 mix (Figure 9's methodology) with the
// given thread count for dur, and reports aggregate throughput. The store
// must already be loaded.
func Run(st Store, cfg Config, threads int, dur time.Duration) Result {
	base := st.Stats()
	var stop atomic.Bool
	var total atomic.Uint64
	var wg sync.WaitGroup
	var ready, start sync.WaitGroup
	ready.Add(threads)
	start.Add(1)
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			w := st.NewWorker(tid + 1)
			rng := rand.New(rand.NewPCG(uint64(tid)+1, 42))
			var histSeq uint64
			var keyBuf [4]uint64
			n := uint64(0)
			ready.Done()
			start.Wait()
			for !stop.Load() {
				var err error
				if rng.IntN(2) == 0 {
					err = w.RunTx(func(h Handle) error { return NewOrder(h, cfg, rng, tid) })
				} else {
					// Payment's keys are known before the transaction, so
					// draw first and hint them: on sharded engines the
					// cross-shard ones skip discovery and, with latching
					// on, commit under key latches instead of whole-shard
					// locks.
					a := DrawPayment(cfg, rng, tid, &histSeq)
					err = w.RunTxHinted(a.Keys(keyBuf[:0]), func(h Handle) error { return PaymentWith(h, a) })
				}
				if err == nil {
					n++
				}
			}
			total.Add(n)
		}(t)
	}
	ready.Wait()
	t0 := time.Now()
	start.Done()
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	el := time.Since(t0)
	txns := total.Load()
	return Result{
		System: st.Name(), Threads: threads, Txns: txns, Duration: el,
		Throughput: float64(txns) / el.Seconds(),
		Stats:      st.Stats().Delta(base),
	}
}
