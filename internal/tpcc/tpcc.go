// Package tpcc implements the TPC-C subset the Medley paper evaluates in
// Figure 9: the newOrder and payment transactions, run in a 1:1 ratio over
// transactional ordered maps (skiplists), following the methodology of Yu
// et al. (DBx1000) as cited by the paper. Neither transaction performs a
// range query, which is what makes the skiplist representation adequate.
//
// The schema is keyed by composite uint64s; rows are immutable structs
// replaced on update (the natural fit for all four transactional systems
// under test). Scale parameters (items, customers per district) are
// configurable so tests stay fast while cmd/tpccbench can run closer to
// standard cardinalities.
package tpcc

import (
	"errors"
	"math/rand/v2"

	"medley/internal/txengine"
)

// Table identifies one TPC-C table.
type Table int

// Tables used by newOrder and payment.
const (
	TWarehouse Table = iota
	TDistrict
	TCustomer
	TStock
	TItem
	TOrder
	TNewOrder
	TOrderLine
	THistory
	NumTables
)

// Row types. All fields are scaled integers (money in cents).
type (
	// Warehouse row.
	Warehouse struct {
		YTD uint64
		Tax uint64
	}
	// District row.
	District struct {
		NextOID uint64
		YTD     uint64
		Tax     uint64
	}
	// Customer row.
	Customer struct {
		Balance    int64
		YTDPayment uint64
		PaymentCnt uint64
	}
	// Stock row.
	Stock struct {
		Quantity int64
		YTD      uint64
		OrderCnt uint64
	}
	// Item row (read-only after load).
	Item struct {
		Price uint64
	}
	// Order row.
	Order struct {
		CID   uint64
		OLCnt uint64
	}
	// NewOrderRow marks an order as new.
	NewOrderRow struct{}
	// OrderLine row.
	OrderLine struct {
		IID    uint64
		Qty    uint64
		Amount uint64
	}
	// History row.
	History struct {
		Amount uint64
	}
)

// Config sets the (scaled-down) cardinalities.
type Config struct {
	Warehouses   int
	DistPerWh    int // standard: 10
	CustPerDist  int // standard: 3000
	Items        int // standard: 100000
	StockPerWh   int // == Items
	MaxLinesPerO int // standard: 5-15 order lines
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig(warehouses int) Config {
	return Config{
		Warehouses:   warehouses,
		DistPerWh:    10,
		CustPerDist:  300,
		Items:        1000,
		StockPerWh:   1000,
		MaxLinesPerO: 15,
	}
}

// Key encodings (composite → uint64).

// WKey returns the warehouse key.
func WKey(w int) uint64 { return uint64(w) }

// DKey returns the district key.
func DKey(w, d int) uint64 { return uint64(w)*10 + uint64(d) }

// CKey returns the customer key.
func CKey(w, d, c int) uint64 { return (DKey(w, d) << 32) | uint64(c) }

// SKey returns the stock key.
func SKey(w, i int) uint64 { return (uint64(w) << 32) | uint64(i) }

// IKey returns the item key.
func IKey(i int) uint64 { return uint64(i) }

// OKey returns the order key.
func OKey(w, d int, oid uint64) uint64 { return (DKey(w, d) << 36) | oid }

// OLKey returns the order-line key.
func OLKey(w, d int, oid uint64, line int) uint64 {
	return (DKey(w, d) << 44) | (oid << 8) | uint64(line)
}

// HKey returns a unique history key from a per-worker sequence.
func HKey(tid int, seq uint64) uint64 { return (uint64(tid) << 40) | seq }

// Handle is the per-transaction view of the store.
type Handle interface {
	Get(t Table, k uint64) (any, bool)
	Put(t Table, k uint64, v any)
	Insert(t Table, k uint64, v any) bool
	// Abort marks the transaction doomed for business reasons (e.g. 1% of
	// newOrders roll back in standard TPC-C); implementations return an
	// error that their RunTx treats as a no-retry abort.
	Abort() error
}

// Worker executes TPC-C transactions for one thread.
type Worker interface {
	RunTx(fn func(h Handle) error) error
	// RunTxHinted is RunTx with the transaction's key footprint declared
	// up front (payment knows all four of its row keys before it starts).
	// Engines without footprint hints ignore the keys, so drivers can call
	// it unconditionally.
	RunTxHinted(keys []uint64, fn func(h Handle) error) error
}

// Store is one system under test.
type Store interface {
	Name() string
	NewWorker(tid int) Worker
	// Stats snapshots the underlying engine's cumulative transaction
	// outcomes (commits/aborts/retries/fallbacks).
	Stats() txengine.Stats
	Close()
}

// Load populates a store with the initial TPC-C data (single worker,
// unmeasured).
func Load(st Store, cfg Config) {
	w0 := st.NewWorker(0)
	// Batch rows into modest transactions to keep descriptors small.
	batch := func(rows []func(h Handle)) {
		const chunk = 64
		for i := 0; i < len(rows); i += chunk {
			end := min(i+chunk, len(rows))
			if err := w0.RunTx(func(h Handle) error {
				for _, f := range rows[i:end] {
					f(h)
				}
				return nil
			}); err != nil {
				panic("tpcc load: " + err.Error())
			}
		}
	}
	var rows []func(h Handle)
	for w := 0; w < cfg.Warehouses; w++ {
		w := w
		rows = append(rows, func(h Handle) {
			h.Insert(TWarehouse, WKey(w), &Warehouse{Tax: 5})
		})
		for d := 0; d < cfg.DistPerWh; d++ {
			d := d
			rows = append(rows, func(h Handle) {
				h.Insert(TDistrict, DKey(w, d), &District{NextOID: 1, Tax: 7})
			})
			for c := 0; c < cfg.CustPerDist; c++ {
				c := c
				rows = append(rows, func(h Handle) {
					h.Insert(TCustomer, CKey(w, d, c), &Customer{Balance: -1000})
				})
			}
		}
		for i := 0; i < cfg.StockPerWh; i++ {
			i := i
			rows = append(rows, func(h Handle) {
				h.Insert(TStock, SKey(w, i), &Stock{Quantity: 50})
			})
		}
	}
	for i := 0; i < cfg.Items; i++ {
		i := i
		rows = append(rows, func(h Handle) {
			h.Insert(TItem, IKey(i), &Item{Price: uint64(100 + i%900)})
		})
	}
	batch(rows)
}

// ErrRollback is the deliberate 1% newOrder rollback of standard TPC-C.
var ErrRollback = errors.New("tpcc: deliberate rollback")

// NewOrder runs one newOrder transaction on h.
func NewOrder(h Handle, cfg Config, rng *rand.Rand, tid int) error {
	w := rng.IntN(cfg.Warehouses)
	d := rng.IntN(cfg.DistPerWh)
	c := rng.IntN(cfg.CustPerDist)
	nLines := 5 + rng.IntN(cfg.MaxLinesPerO-5+1)

	dv, ok := h.Get(TDistrict, DKey(w, d))
	if !ok {
		return errors.New("tpcc: missing district")
	}
	dist := dv.(*District)
	oid := dist.NextOID
	h.Put(TDistrict, DKey(w, d), &District{NextOID: oid + 1, YTD: dist.YTD, Tax: dist.Tax})

	if _, ok := h.Get(TCustomer, CKey(w, d, c)); !ok {
		return errors.New("tpcc: missing customer")
	}

	var total uint64
	for l := 0; l < nLines; l++ {
		item := rng.IntN(cfg.Items)
		qty := uint64(1 + rng.IntN(10))
		iv, ok := h.Get(TItem, IKey(item))
		if !ok {
			// Standard TPC-C: 1% of newOrders reference an invalid item
			// and roll back. We model it via an out-of-range item below.
			return h.Abort()
		}
		price := iv.(*Item).Price
		// Remote warehouse 1% of the time when multiple warehouses exist.
		sw := w
		if cfg.Warehouses > 1 && rng.IntN(100) == 0 {
			sw = rng.IntN(cfg.Warehouses)
		}
		sv, ok := h.Get(TStock, SKey(sw, item))
		if !ok {
			return errors.New("tpcc: missing stock")
		}
		stock := sv.(*Stock)
		newQty := stock.Quantity - int64(qty)
		if newQty < 10 {
			newQty += 91
		}
		h.Put(TStock, SKey(sw, item), &Stock{
			Quantity: newQty,
			YTD:      stock.YTD + qty,
			OrderCnt: stock.OrderCnt + 1,
		})
		amount := qty * price
		total += amount
		h.Insert(TOrderLine, OLKey(w, d, oid, l), &OrderLine{IID: uint64(item), Qty: qty, Amount: amount})
	}
	h.Insert(TOrder, OKey(w, d, oid), &Order{CID: uint64(c), OLCnt: uint64(nLines)})
	h.Insert(TNewOrder, OKey(w, d, oid), &NewOrderRow{})
	// 1% deliberate rollback.
	if rng.IntN(100) == 0 {
		return h.Abort()
	}
	_ = total
	return nil
}

// PaymentArgs are one payment transaction's pre-drawn inputs. Unlike
// newOrder — which draws its items inside the body and so can only be
// discovered — payment's whole key set (warehouse, district, customer,
// history) is fixed by these draws before the transaction starts, which is
// what lets the driver hint it to sharded engines.
type PaymentArgs struct {
	W, D, C int
	// CW, CD are the customer's warehouse/district (15% remote).
	CW, CD  int
	Amount  uint64
	HistKey uint64
}

// DrawPayment samples one payment's inputs and advances the per-worker
// history sequence. The draws match Payment's: uniform warehouse, district
// and customer; 15% remote customer when multiple warehouses exist.
func DrawPayment(cfg Config, rng *rand.Rand, tid int, seq *uint64) PaymentArgs {
	a := PaymentArgs{
		W:      rng.IntN(cfg.Warehouses),
		D:      rng.IntN(cfg.DistPerWh),
		C:      rng.IntN(cfg.CustPerDist),
		Amount: uint64(100 + rng.IntN(4900)),
	}
	a.CW, a.CD = a.W, a.D
	if cfg.Warehouses > 1 && rng.IntN(100) < 15 {
		a.CW = rng.IntN(cfg.Warehouses)
		a.CD = rng.IntN(cfg.DistPerWh)
	}
	*seq++
	a.HistKey = HKey(tid, *seq)
	return a
}

// Keys appends the four row keys the payment will touch to dst. Keys from
// different tables can collide numerically; for footprint purposes that is
// benign — shard routing is table-independent, and a latch collision only
// over-serializes.
func (a PaymentArgs) Keys(dst []uint64) []uint64 {
	return append(dst, WKey(a.W), DKey(a.W, a.D), CKey(a.CW, a.CD, a.C), a.HistKey)
}

// Payment runs one payment transaction on h, drawing its inputs inline.
// seq supplies a unique history key sequence per worker. The driver's
// measured loop instead draws via DrawPayment and hints the keys; this
// wrapper keeps the draw-inside shape for tests and unhinted callers.
func Payment(h Handle, cfg Config, rng *rand.Rand, tid int, seq *uint64) error {
	return PaymentWith(h, DrawPayment(cfg, rng, tid, seq))
}

// PaymentWith runs one payment transaction on h with pre-drawn inputs.
func PaymentWith(h Handle, a PaymentArgs) error {
	wv, ok := h.Get(TWarehouse, WKey(a.W))
	if !ok {
		return errors.New("tpcc: missing warehouse")
	}
	wh := wv.(*Warehouse)
	h.Put(TWarehouse, WKey(a.W), &Warehouse{YTD: wh.YTD + a.Amount, Tax: wh.Tax})

	dv, ok := h.Get(TDistrict, DKey(a.W, a.D))
	if !ok {
		return errors.New("tpcc: missing district")
	}
	dist := dv.(*District)
	h.Put(TDistrict, DKey(a.W, a.D), &District{NextOID: dist.NextOID, YTD: dist.YTD + a.Amount, Tax: dist.Tax})

	cv, ok := h.Get(TCustomer, CKey(a.CW, a.CD, a.C))
	if !ok {
		return errors.New("tpcc: missing customer")
	}
	cust := cv.(*Customer)
	h.Put(TCustomer, CKey(a.CW, a.CD, a.C), &Customer{
		Balance:    cust.Balance - int64(a.Amount),
		YTDPayment: cust.YTDPayment + a.Amount,
		PaymentCnt: cust.PaymentCnt + 1,
	})
	h.Insert(THistory, a.HistKey, &History{Amount: a.Amount})
	return nil
}
