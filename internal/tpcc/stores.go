package tpcc

import (
	"errors"

	"medley/internal/core"
	"medley/internal/montage"
	"medley/internal/onefile"
	"medley/internal/pnvm"
	"medley/internal/structures/fskiplist"
	"medley/internal/tdsl"
	"medley/internal/txmap"
)

// errUserAbort is the no-retry abort used by Handle.Abort implementations.
var errUserAbort = errors.New("tpcc: business abort")

// ------------------------------------------------------- Medley/txMontage --

// MedleyStore runs TPC-C over Medley skiplists (one per table), optionally
// with txMontage persistence when constructed via NewTxMontageStore.
type MedleyStore struct {
	name   string
	mgr    *core.TxManager
	tables [NumTables]txmap.Map[any]
	es     *montage.EpochSys
}

// NewMedleyStore creates the transient Medley store (skiplist tables).
func NewMedleyStore() *MedleyStore {
	st := &MedleyStore{name: "Medley", mgr: core.NewTxManager()}
	for i := range st.tables {
		st.tables[i] = fskiplist.New[uint64, any]()
	}
	return st
}

// NewTxMontageStore creates the persistent txMontage store: Medley indices
// over NVM payloads with epoch-based periodic persistence.
func NewTxMontageStore(lat pnvm.Latencies) *MedleyStore {
	st := &MedleyStore{name: "txMontage", mgr: core.NewTxManager()}
	es := montage.NewEpochSys(pnvm.New(lat))
	montage.Attach(st.mgr, es)
	st.es = es
	codec := rowCodec()
	for i := range st.tables {
		st.tables[i] = montage.NewSkipMap(es, codec)
	}
	return st
}

// EpochSys exposes the montage epoch system (nil for the transient store).
func (st *MedleyStore) EpochSys() *montage.EpochSys { return st.es }

// Name implements Store.
func (st *MedleyStore) Name() string { return st.name }

// Close implements Store.
func (st *MedleyStore) Close() {}

// NewWorker implements Store.
func (st *MedleyStore) NewWorker(tid int) Worker {
	return &medleyWorker{st: st, s: st.mgr.Session()}
}

type medleyWorker struct {
	st *MedleyStore
	s  *core.Session
}

type medleyHandle struct {
	w *medleyWorker
}

func (w *medleyWorker) RunTx(fn func(h Handle) error) error {
	err := w.s.Run(func() error { return fn(medleyHandle{w}) })
	if errors.Is(err, errUserAbort) {
		return nil // deliberate rollback: counted as completed work
	}
	return err
}

func (h medleyHandle) Get(t Table, k uint64) (any, bool) {
	return h.w.st.tables[t].Get(h.w.s, k)
}
func (h medleyHandle) Put(t Table, k uint64, v any) {
	h.w.st.tables[t].Put(h.w.s, k, v)
}
func (h medleyHandle) Insert(t Table, k uint64, v any) bool {
	return h.w.st.tables[t].Insert(h.w.s, k, v)
}
func (h medleyHandle) Abort() error {
	h.w.s.TxAbort()
	return errUserAbort
}

// ----------------------------------------------------------------- OneFile --

// OneFileStore runs TPC-C over OneFile-lite skiplists.
type OneFileStore struct {
	name   string
	st     *onefile.STM
	tables [NumTables]*onefile.SkipList[any]
}

// NewOneFileStore creates the transient OneFile store.
func NewOneFileStore() *OneFileStore {
	s := &OneFileStore{name: "OneFile", st: onefile.New()}
	for i := range s.tables {
		s.tables[i] = onefile.NewSkipList[any](s.st)
	}
	return s
}

// NewPOneFileStore creates the eagerly-persistent POneFile store.
func NewPOneFileStore(lat pnvm.Latencies) *OneFileStore {
	s := &OneFileStore{name: "POneFile", st: onefile.NewPersistent(pnvm.New(lat))}
	for i := range s.tables {
		s.tables[i] = onefile.NewSkipList[any](s.st)
	}
	return s
}

// Name implements Store.
func (s *OneFileStore) Name() string { return s.name }

// Close implements Store.
func (s *OneFileStore) Close() {}

// NewWorker implements Store.
func (s *OneFileStore) NewWorker(tid int) Worker { return &onefileWorker{st: s} }

type onefileWorker struct{ st *OneFileStore }

type onefileHandle struct{ st *OneFileStore }

func (w *onefileWorker) RunTx(fn func(h Handle) error) error {
	err := w.st.st.WriteTx(func() error { return fn(onefileHandle{w.st}) })
	if errors.Is(err, errUserAbort) {
		return nil
	}
	return err
}

func (h onefileHandle) Get(t Table, k uint64) (any, bool) { return h.st.tables[t].Get(k) }
func (h onefileHandle) Put(t Table, k uint64, v any)      { h.st.tables[t].Put(k, v) }
func (h onefileHandle) Insert(t Table, k uint64, v any) bool {
	return h.st.tables[t].Insert(k, v)
}
func (h onefileHandle) Abort() error { return errUserAbort }

// -------------------------------------------------------------------- TDSL --

// TDSLStore runs TPC-C over TDSL-lite maps.
type TDSLStore struct {
	tm     *tdsl.TM
	tables [NumTables]*tdsl.Map[any]
}

// NewTDSLStore creates the TDSL store.
func NewTDSLStore() *TDSLStore {
	s := &TDSLStore{tm: tdsl.NewTM()}
	for i := range s.tables {
		s.tables[i] = tdsl.NewMap[any](512)
	}
	return s
}

// Name implements Store.
func (s *TDSLStore) Name() string { return "TDSL" }

// Close implements Store.
func (s *TDSLStore) Close() {}

// NewWorker implements Store.
func (s *TDSLStore) NewWorker(tid int) Worker { return &tdslWorker{st: s} }

type tdslWorker struct{ st *TDSLStore }

type tdslHandle struct {
	st *TDSLStore
	tx *tdsl.Tx
}

func (w *tdslWorker) RunTx(fn func(h Handle) error) error {
	err := w.st.tm.Run(func(tx *tdsl.Tx) error { return fn(tdslHandle{w.st, tx}) })
	if errors.Is(err, errUserAbort) {
		return nil
	}
	return err
}

func (h tdslHandle) Get(t Table, k uint64) (any, bool) { return h.st.tables[t].Get(h.tx, k) }
func (h tdslHandle) Put(t Table, k uint64, v any)      { h.st.tables[t].Put(h.tx, k, v) }
func (h tdslHandle) Insert(t Table, k uint64, v any) bool {
	return h.st.tables[t].Insert(h.tx, k, v)
}
func (h tdslHandle) Abort() error { return errUserAbort }

// ------------------------------------------------------------- row codec --

// rowCodec encodes the row structs into NVM payload bytes for txMontage.
// Rows are small fixed shapes, so a one-byte tag plus little-endian fields
// suffices; decoding is exercised by recovery tests.
func rowCodec() montage.Codec[any] {
	put := func(b []byte, vs ...uint64) []byte {
		for _, v := range vs {
			for i := 0; i < 8; i++ {
				b = append(b, byte(v>>(8*i)))
			}
		}
		return b
	}
	get := func(b []byte, i int) uint64 {
		var v uint64
		for j := 0; j < 8; j++ {
			v |= uint64(b[1+i*8+j]) << (8 * j)
		}
		return v
	}
	return montage.Codec[any]{
		Enc: func(v any) []byte {
			switch r := v.(type) {
			case *Warehouse:
				return put([]byte{0}, r.YTD, r.Tax)
			case *District:
				return put([]byte{1}, r.NextOID, r.YTD, r.Tax)
			case *Customer:
				return put([]byte{2}, uint64(r.Balance), r.YTDPayment, r.PaymentCnt)
			case *Stock:
				return put([]byte{3}, uint64(r.Quantity), r.YTD, r.OrderCnt)
			case *Item:
				return put([]byte{4}, r.Price)
			case *Order:
				return put([]byte{5}, r.CID, r.OLCnt)
			case *NewOrderRow:
				return []byte{6}
			case *OrderLine:
				return put([]byte{7}, r.IID, r.Qty, r.Amount)
			case *History:
				return put([]byte{8}, r.Amount)
			}
			return nil
		},
		Dec: func(b []byte) any {
			if len(b) == 0 {
				return nil
			}
			switch b[0] {
			case 0:
				return &Warehouse{YTD: get(b, 0), Tax: get(b, 1)}
			case 1:
				return &District{NextOID: get(b, 0), YTD: get(b, 1), Tax: get(b, 2)}
			case 2:
				return &Customer{Balance: int64(get(b, 0)), YTDPayment: get(b, 1), PaymentCnt: get(b, 2)}
			case 3:
				return &Stock{Quantity: int64(get(b, 0)), YTD: get(b, 1), OrderCnt: get(b, 2)}
			case 4:
				return &Item{Price: get(b, 0)}
			case 5:
				return &Order{CID: get(b, 0), OLCnt: get(b, 1)}
			case 6:
				return &NewOrderRow{}
			case 7:
				return &OrderLine{IID: get(b, 0), Qty: get(b, 1), Amount: get(b, 2)}
			case 8:
				return &History{Amount: get(b, 0)}
			}
			return nil
		},
	}
}
