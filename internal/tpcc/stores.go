package tpcc

import (
	"errors"
	"fmt"
	"time"

	"medley/internal/montage"
	"medley/internal/pnvm"
	"medley/internal/txengine"
)

// StoreOptions configures engine construction for TPC-C stores. The zero
// value is a transient engine with free NVM timing.
type StoreOptions struct {
	// Latencies drives the simulated NVM device of persistent engines.
	Latencies pnvm.Latencies
	// EpochLen is txMontage's persistence epoch length (0: advancer off).
	EpochLen time.Duration
	// Shards is the partition count for sharded engines (0: engine
	// default); non-sharded engines ignore it.
	Shards int
	// NoLatch disables key-granular cross-shard latching on sharded
	// engines (the -nolatch A/B knob); non-sharded engines ignore it.
	NoLatch bool
}

// Engines returns the registry keys of every engine that can run TPC-C
// (dynamic transactions over row maps), in registration order.
func Engines() []string {
	var out []string
	for _, b := range txengine.Builders() {
		if b.Caps.Has(txengine.CapDynamicTx | txengine.CapRowMaps) {
			out = append(out, b.Key)
		}
	}
	return out
}

// DefaultEngines returns the default TPC-C series: every capable engine
// not marked Slow in the registry (ponefile's eager persistence is
// impractical at benchmark durations; it still runs when named explicitly).
func DefaultEngines() []string {
	var out []string
	for _, name := range Engines() {
		if b, ok := txengine.Lookup(name); ok && !b.Slow {
			out = append(out, name)
		}
	}
	return out
}

// CanRun reports whether the named engine can run TPC-C: it must exist and
// support dynamic transactions over row maps. TPC-C branches on values read
// inside the transaction, which is why LFTT (static transactions) cannot
// run it, as the paper notes.
func CanRun(engine string) error {
	b, ok := txengine.Lookup(engine)
	if !ok {
		return fmt.Errorf("tpcc: unknown engine %q", engine)
	}
	if !b.Caps.Has(txengine.CapDynamicTx | txengine.CapRowMaps) {
		return fmt.Errorf("tpcc: engine %q cannot run TPC-C (needs dynamic transactions over row maps): %w",
			engine, txengine.ErrUnsupported)
	}
	return nil
}

// NewStore builds the named engine from the txengine registry and lays the
// TPC-C tables over its transactional row maps (see CanRun for which
// engines qualify). Tables prefer the skiplist shape (the paper's
// representation); engines without one (Boost) fall back to hash tables.
func NewStore(engine string, opt StoreOptions) (Store, error) {
	if err := CanRun(engine); err != nil {
		return nil, err
	}
	b, _ := txengine.Lookup(engine)
	eng, err := b.New(txengine.Config{
		Latencies: opt.Latencies,
		EpochLen:  opt.EpochLen,
		RowCodec:  rowCodec(),
		Shards:    opt.Shards,
		NoLatch:   opt.NoLatch,
	})
	if err != nil {
		return nil, err
	}
	spec := txengine.MapSpec{Kind: txengine.KindSkip, Stripes: 512}
	if !b.Caps.Has(txengine.CapSkipMap) {
		spec = txengine.MapSpec{Kind: txengine.KindHash, Buckets: 1 << 14}
	}
	st := &engineStore{eng: eng}
	for i := range st.tables {
		st.tables[i], err = eng.NewRowMap(spec)
		if err != nil {
			eng.Close()
			return nil, fmt.Errorf("tpcc: %s table %d: %w", engine, i, err)
		}
	}
	return st, nil
}

// engineStore is the one TPC-C store adapter: any row-capable engine,
// with one transactional row map per table.
type engineStore struct {
	eng    txengine.Engine
	tables [NumTables]txengine.Map[any]
}

// Name implements Store.
func (st *engineStore) Name() string { return st.eng.Name() }

// Stats implements Store.
func (st *engineStore) Stats() txengine.Stats { return st.eng.Stats() }

// Close implements Store.
func (st *engineStore) Close() { st.eng.Close() }

// NewWorker implements Store.
func (st *engineStore) NewWorker(tid int) Worker {
	return &engineWorker{st: st, tx: st.eng.NewWorker(tid)}
}

type engineWorker struct {
	st *engineStore
	tx txengine.Tx
}

// RunTx executes fn transactionally; a business abort (Handle.Abort) rolls
// the transaction back and counts as completed work.
func (w *engineWorker) RunTx(fn func(h Handle) error) error {
	err := w.tx.Run(func() error { return fn(engineHandle{w}) })
	if errors.Is(err, txengine.ErrBusinessAbort) {
		return nil // deliberate rollback: counted as completed work
	}
	return err
}

// RunTxHinted is RunTx with the key footprint declared before the
// transaction starts; txengine.HintKeys no-ops on engines without hints.
func (w *engineWorker) RunTxHinted(keys []uint64, fn func(h Handle) error) error {
	txengine.HintKeys(w.tx, keys...)
	return w.RunTx(fn)
}

type engineHandle struct {
	w *engineWorker
}

func (h engineHandle) Get(t Table, k uint64) (any, bool) {
	return h.w.st.tables[t].Get(h.w.tx, k)
}
func (h engineHandle) Put(t Table, k uint64, v any) {
	h.w.st.tables[t].Put(h.w.tx, k, v)
}
func (h engineHandle) Insert(t Table, k uint64, v any) bool {
	return h.w.st.tables[t].Insert(h.w.tx, k, v)
}
func (h engineHandle) Abort() error { return h.w.tx.Abort() }

// ------------------------------------------------------------- row codec --

// rowCodec encodes the row structs into NVM payload bytes for txMontage —
// the one engine-specific hook TPC-C supplies. Rows are small fixed shapes,
// so a one-byte tag plus little-endian fields suffices; decoding is
// exercised by recovery tests.
func rowCodec() montage.Codec[any] {
	put := func(b []byte, vs ...uint64) []byte {
		for _, v := range vs {
			for i := 0; i < 8; i++ {
				b = append(b, byte(v>>(8*i)))
			}
		}
		return b
	}
	get := func(b []byte, i int) uint64 {
		var v uint64
		for j := 0; j < 8; j++ {
			v |= uint64(b[1+i*8+j]) << (8 * j)
		}
		return v
	}
	return montage.Codec[any]{
		Enc: func(v any) []byte {
			switch r := v.(type) {
			case *Warehouse:
				return put([]byte{0}, r.YTD, r.Tax)
			case *District:
				return put([]byte{1}, r.NextOID, r.YTD, r.Tax)
			case *Customer:
				return put([]byte{2}, uint64(r.Balance), r.YTDPayment, r.PaymentCnt)
			case *Stock:
				return put([]byte{3}, uint64(r.Quantity), r.YTD, r.OrderCnt)
			case *Item:
				return put([]byte{4}, r.Price)
			case *Order:
				return put([]byte{5}, r.CID, r.OLCnt)
			case *NewOrderRow:
				return []byte{6}
			case *OrderLine:
				return put([]byte{7}, r.IID, r.Qty, r.Amount)
			case *History:
				return put([]byte{8}, r.Amount)
			}
			return nil
		},
		Dec: func(b []byte) any {
			if len(b) == 0 {
				return nil
			}
			switch b[0] {
			case 0:
				return &Warehouse{YTD: get(b, 0), Tax: get(b, 1)}
			case 1:
				return &District{NextOID: get(b, 0), YTD: get(b, 1), Tax: get(b, 2)}
			case 2:
				return &Customer{Balance: int64(get(b, 0)), YTDPayment: get(b, 1), PaymentCnt: get(b, 2)}
			case 3:
				return &Stock{Quantity: int64(get(b, 0)), YTD: get(b, 1), OrderCnt: get(b, 2)}
			case 4:
				return &Item{Price: get(b, 0)}
			case 5:
				return &Order{CID: get(b, 0), OLCnt: get(b, 1)}
			case 6:
				return &NewOrderRow{}
			case 7:
				return &OrderLine{IID: get(b, 0), Qty: get(b, 1), Amount: get(b, 2)}
			case 8:
				return &History{Amount: get(b, 0)}
			}
			return nil
		},
	}
}
