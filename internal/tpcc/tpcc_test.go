package tpcc

import (
	"math/rand/v2"
	"testing"
	"time"
)

func smallCfg() Config {
	return Config{
		Warehouses: 2, DistPerWh: 4, CustPerDist: 20,
		Items: 50, StockPerWh: 50, MaxLinesPerO: 8,
	}
}

// stores builds one Store per registry engine that can run TPC-C (LFTT is
// static-only and excluded by Engines itself).
func stores(t *testing.T) []Store {
	t.Helper()
	names := Engines()
	if len(names) < 5 {
		t.Fatalf("Engines() = %v, want at least medley/txmontage/onefile/tdsl/boost", names)
	}
	out := make([]Store, 0, len(names))
	for _, name := range names {
		st, err := NewStore(name, StoreOptions{})
		if err != nil {
			t.Fatalf("NewStore(%s): %v", name, err)
		}
		out = append(out, st)
	}
	return out
}

// TPC-C must refuse engines that cannot express its transactions.
func TestNewStoreRejectsStaticEngines(t *testing.T) {
	if _, err := NewStore("lftt", StoreOptions{}); err == nil {
		t.Fatal("NewStore(lftt) succeeded; LFTT cannot run TPC-C")
	}
	if _, err := NewStore("no-such-engine", StoreOptions{}); err == nil {
		t.Fatal("NewStore of unknown engine succeeded")
	}
}

func TestLoadAndRunAllStores(t *testing.T) {
	cfg := smallCfg()
	for _, st := range stores(t) {
		t.Run(st.Name(), func(t *testing.T) {
			Load(st, cfg)
			w := st.NewWorker(1)
			rng := rand.New(rand.NewPCG(1, 2))
			var seq uint64
			for i := 0; i < 200; i++ {
				if err := w.RunTx(func(h Handle) error { return NewOrder(h, cfg, rng, 1) }); err != nil {
					t.Fatalf("newOrder: %v", err)
				}
				if err := w.RunTx(func(h Handle) error { return Payment(h, cfg, rng, 1, &seq) }); err != nil {
					t.Fatalf("payment: %v", err)
				}
			}
			st.Close()
		})
	}
}

// Money conservation: warehouse YTD + district YTDs must equal the sum of
// history amounts (payment writes all three atomically).
func TestPaymentMoneyConservation(t *testing.T) {
	cfg := smallCfg()
	for _, st := range stores(t) {
		t.Run(st.Name(), func(t *testing.T) {
			Load(st, cfg)
			res := Run(st, cfg, 8, 300*time.Millisecond)
			if res.Txns == 0 {
				t.Fatal("no transactions completed")
			}
			// Verify warehouse YTD == sum of district YTD for each
			// warehouse (payment adds the same amount to both).
			w := st.NewWorker(99)
			err := w.RunTx(func(h Handle) error {
				for wh := 0; wh < cfg.Warehouses; wh++ {
					wv, ok := h.Get(TWarehouse, WKey(wh))
					if !ok {
						t.Fatal("warehouse missing")
					}
					var dsum uint64
					for d := 0; d < cfg.DistPerWh; d++ {
						dv, ok := h.Get(TDistrict, DKey(wh, d))
						if !ok {
							t.Fatal("district missing")
						}
						dsum += dv.(*District).YTD
					}
					if got := wv.(*Warehouse).YTD; got != dsum {
						t.Errorf("warehouse %d YTD %d != district sum %d (atomicity broken)", wh, got, dsum)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			st.Close()
		})
	}
}

// Order ids handed out by newOrder must be dense and unique per district:
// every oid below NextOID has exactly one order row.
func TestNewOrderIDsDense(t *testing.T) {
	cfg := smallCfg()
	st, err := NewStore("medley", StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	Load(st, cfg)
	res := Run(st, cfg, 8, 300*time.Millisecond)
	if res.Txns == 0 {
		t.Fatal("no transactions")
	}
	w := st.NewWorker(99)
	err = w.RunTx(func(h Handle) error {
		for wh := 0; wh < cfg.Warehouses; wh++ {
			for d := 0; d < cfg.DistPerWh; d++ {
				dv, _ := h.Get(TDistrict, DKey(wh, d))
				next := dv.(*District).NextOID
				for oid := uint64(1); oid < next; oid++ {
					if _, ok := h.Get(TOrder, OKey(wh, d, oid)); !ok {
						t.Errorf("w%d d%d: oid %d missing below NextOID %d", wh, d, oid, next)
						return nil
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// txMontage TPC-C with a running epoch advancer must stay correct.
func TestTxMontageWithAdvancer(t *testing.T) {
	cfg := smallCfg()
	st, err := NewStore("txmontage", StoreOptions{EpochLen: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	Load(st, cfg)
	res := Run(st, cfg, 4, 300*time.Millisecond)
	st.Close()
	if res.Txns == 0 {
		t.Fatal("no transactions with advancer running")
	}
}
