// Package boost provides the transactional-boosting escape hatch mentioned
// in Section 3.1 of the Medley paper: the Composable base class "provides
// an API for transactional boosting, which can be used to incorporate
// lock-based operations into Medley transactions (at the cost, of course,
// of nonblocking progress)".
//
// Boosting (Herlihy & Koskinen, PPoPP 2008) makes operations on an existing
// thread-safe object transactional by (1) acquiring semantic locks that
// cover the operation's abstract footprint (e.g. one lock per key), held
// until the transaction ends, and (2) logging inverse operations that roll
// the object back if the transaction aborts. Two transactions conflict only
// if their footprints overlap, regardless of low-level memory conflicts.
//
// Deadlock is avoided by never blocking: a lock owned by another
// transaction aborts the acquirer (try-lock discipline), and Session.Run
// retries. Reentrant acquisition by the owning transaction is free.
//
// The package also ships BoostedMap, a boosted sharded mutex map — both a
// usable structure and the worked example of the API.
package boost

import (
	"sync"

	"medley/internal/core"
)

// LockTable is a table of semantic locks keyed by uint64 (typically a key
// hash). Locks are owned by transactions (sessions), not goroutines, and
// are released automatically when the owning transaction commits or aborts.
type LockTable struct {
	shards []lockShard
}

type lockShard struct {
	mu     sync.Mutex
	owners map[uint64]*core.Session
}

// NewLockTable creates a lock table with the given shard count (shards
// bound only the map sizes; each key has its own logical lock).
func NewLockTable(shards int) *LockTable {
	if shards < 1 {
		shards = 1
	}
	t := &LockTable{shards: make([]lockShard, shards)}
	for i := range t.shards {
		t.shards[i].owners = make(map[uint64]*core.Session)
	}
	return t
}

func (t *LockTable) shard(key uint64) *lockShard {
	return &t.shards[(key*0x9e3779b97f4a7c15>>32)%uint64(len(t.shards))]
}

// Acquire takes the semantic lock for key on behalf of s's current
// transaction. It returns false — without blocking — if another transaction
// owns the lock; the caller should abort and let Run retry. Outside a
// transaction the caller must pair Acquire with ReleaseNow.
func (t *LockTable) Acquire(s *core.Session, key uint64) bool {
	sh := t.shard(key)
	sh.mu.Lock()
	owner, held := sh.owners[key]
	if held && owner != s {
		sh.mu.Unlock()
		return false
	}
	first := !held
	if first {
		sh.owners[key] = s
	}
	sh.mu.Unlock()
	if first && s.InTx() {
		// Release exactly once at transaction end, whichever way it goes.
		// On abort, undo handlers registered later (the inverses) run
		// first, so the object is restored before the lock drops.
		release := func() { t.ReleaseNow(s, key) }
		s.AddToCleanups(release)
		s.OnAbort(release)
	}
	return true
}

// ReleaseNow drops the semantic lock for key if s owns it. Transactions do
// not call this directly — Acquire schedules it — but non-transactional
// callers must.
func (t *LockTable) ReleaseNow(s *core.Session, key uint64) {
	sh := t.shard(key)
	sh.mu.Lock()
	if sh.owners[key] == s {
		delete(sh.owners, key)
	}
	sh.mu.Unlock()
}

// ErrLockConflict is returned by boosted operations that lost a semantic
// lock race; it unwraps to core.ErrTxAborted so Session.Run retries.
type lockConflictError struct{}

func (lockConflictError) Error() string { return "boost: semantic lock conflict" }
func (lockConflictError) Unwrap() error { return core.ErrTxAborted }

// ErrLockConflict reports a semantic-lock conflict (retryable).
var ErrLockConflict error = lockConflictError{}

// Do runs a boosted operation inside s's current transaction: it acquires
// the semantic lock for key, applies the operation immediately, and
// registers inverse to run if the transaction aborts (inverse may be nil
// for read-only operations). Outside a transaction the operation applies
// directly with the lock held only for the call.
func (t *LockTable) Do(s *core.Session, key uint64, apply func(), inverse func()) error {
	if !s.InTx() {
		for !t.Acquire(s, key) {
		}
		apply()
		t.ReleaseNow(s, key)
		return nil
	}
	if !t.Acquire(s, key) {
		s.TxAbort()
		return ErrLockConflict
	}
	apply()
	if inverse != nil {
		s.OnAbort(inverse)
	}
	return nil
}

// BoostedMap is a plain sharded-mutex hash map made transactional through
// boosting. It demonstrates two things the paper points out: boosting
// composes lock-based code with Medley transactions, and it is blocking —
// a stalled transaction holding a semantic lock stalls conflicting
// transactions' progress (they abort and retry rather than helping).
type BoostedMap[V any] struct {
	locks *LockTable
	mu    sync.RWMutex
	data  map[uint64]V
}

// NewMap creates a boosted map.
func NewMap[V any](lockShards int) *BoostedMap[V] {
	return &BoostedMap[V]{
		locks: NewLockTable(lockShards),
		data:  make(map[uint64]V),
	}
}

func (m *BoostedMap[V]) read(k uint64) (V, bool) {
	m.mu.RLock()
	v, ok := m.data[k]
	m.mu.RUnlock()
	return v, ok
}

func (m *BoostedMap[V]) write(k uint64, v V) {
	m.mu.Lock()
	m.data[k] = v
	m.mu.Unlock()
}

func (m *BoostedMap[V]) del(k uint64) {
	m.mu.Lock()
	delete(m.data, k)
	m.mu.Unlock()
}

// Get returns the value bound to k, if any. The semantic lock pins the
// binding until commit (boosted readers are visible, unlike NBTC readers).
func (m *BoostedMap[V]) Get(s *core.Session, k uint64) (V, bool, error) {
	var v V
	var ok bool
	err := m.locks.Do(s, k, func() { v, ok = m.read(k) }, nil)
	return v, ok, err
}

// Upsert binds k to v and reports the previous binding, all under one
// semantic-lock acquisition; the inverse restores the binding on abort.
func (m *BoostedMap[V]) Upsert(s *core.Session, k uint64, v V) (V, bool, error) {
	var old V
	var had bool
	err := m.locks.Do(s, k,
		func() {
			old, had = m.read(k)
			m.write(k, v)
		},
		func() {
			if had {
				m.write(k, old)
			} else {
				m.del(k)
			}
		})
	return old, had, err
}

// InsertIfAbsent adds k→v only if absent, atomically under one
// semantic-lock acquisition; the inverse deletes it on abort.
func (m *BoostedMap[V]) InsertIfAbsent(s *core.Session, k uint64, v V) (bool, error) {
	inserted := false
	err := m.locks.Do(s, k,
		func() {
			if _, had := m.read(k); !had {
				m.write(k, v)
				inserted = true
			}
		},
		func() {
			if inserted {
				m.del(k)
			}
		})
	return inserted, err
}

// Put binds k to v; the inverse restores the previous binding on abort.
func (m *BoostedMap[V]) Put(s *core.Session, k uint64, v V) error {
	old, had := V(*new(V)), false
	return m.locks.Do(s, k,
		func() {
			old, had = m.read(k)
			m.write(k, v)
		},
		func() {
			if had {
				m.write(k, old)
			} else {
				m.del(k)
			}
		})
}

// Remove deletes k; the inverse re-inserts it on abort.
func (m *BoostedMap[V]) Remove(s *core.Session, k uint64) (V, bool, error) {
	var old V
	var had bool
	err := m.locks.Do(s, k,
		func() {
			old, had = m.read(k)
			if had {
				m.del(k)
			}
		},
		func() {
			if had {
				m.write(k, old)
			}
		})
	return old, had, err
}

// Len counts bindings (diagnostic).
func (m *BoostedMap[V]) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.data)
}
