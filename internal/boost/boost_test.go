package boost

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"medley/internal/core"
	"medley/internal/structures/mhash"
)

func TestBoostedMapBasic(t *testing.T) {
	mgr := core.NewTxManager()
	m := NewMap[int](16)
	s := mgr.Session()
	if err := m.Put(s, 1, 10); err != nil {
		t.Fatal(err)
	}
	v, ok, err := m.Get(s, 1)
	if err != nil || !ok || v != 10 {
		t.Fatalf("Get = %d,%v,%v", v, ok, err)
	}
	old, had, err := m.Remove(s, 1)
	if err != nil || !had || old != 10 {
		t.Fatalf("Remove = %d,%v,%v", old, had, err)
	}
	if m.Len() != 0 {
		t.Fatal("not empty")
	}
}

func TestBoostedAbortRunsInverses(t *testing.T) {
	mgr := core.NewTxManager()
	m := NewMap[int](16)
	s := mgr.Session()
	m.Put(s, 1, 10)

	s.TxBegin()
	if err := m.Put(s, 1, 99); err != nil {
		t.Fatal(err)
	}
	if err := m.Put(s, 2, 20); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Remove(s, 1); err != nil {
		t.Fatal(err)
	}
	s.TxAbort()

	if v, ok, _ := m.Get(s, 1); !ok || v != 10 {
		t.Fatalf("inverse failed: Get(1) = %d,%v", v, ok)
	}
	if _, ok, _ := m.Get(s, 2); ok {
		t.Fatal("aborted insert visible")
	}
}

func TestBoostedLocksReleasedOnCommitAndAbort(t *testing.T) {
	mgr := core.NewTxManager()
	m := NewMap[int](16)
	s1 := mgr.Session()
	s2 := mgr.Session()

	s1.TxBegin()
	m.Put(s1, 1, 1)
	// s2 must conflict while s1 holds the semantic lock…
	s2.TxBegin()
	if err := m.Put(s2, 1, 2); !errors.Is(err, core.ErrTxAborted) {
		t.Fatalf("expected lock conflict, got %v", err)
	}
	if s2.InTx() {
		t.Fatal("conflicting tx not aborted")
	}
	// …and succeed after s1 commits.
	if err := s1.TxEnd(); err != nil {
		t.Fatal(err)
	}
	s2.TxBegin()
	if err := m.Put(s2, 1, 2); err != nil {
		t.Fatalf("lock not released after commit: %v", err)
	}
	s2.TxAbort()
	// Abort must release too.
	s1.TxBegin()
	if err := m.Put(s1, 1, 3); err != nil {
		t.Fatalf("lock not released after abort: %v", err)
	}
	s1.TxAbort()
}

func TestBoostedReentrantSameTx(t *testing.T) {
	mgr := core.NewTxManager()
	m := NewMap[int](16)
	s := mgr.Session()
	err := s.Run(func() error {
		if err := m.Put(s, 1, 1); err != nil {
			return err
		}
		if err := m.Put(s, 1, 2); err != nil { // reacquire own lock
			return err
		}
		v, ok, err := m.Get(s, 1)
		if err != nil || !ok || v != 2 {
			t.Errorf("reentrant Get = %d,%v,%v", v, ok, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Boosted operations compose with NBTC structures in one transaction.
func TestBoostedComposesWithNBTC(t *testing.T) {
	mgr := core.NewTxManager()
	bm := NewMap[int](16)
	nm := mhash.NewUint64[int](64)
	s := mgr.Session()
	bm.Put(s, 1, 100)

	err := s.Run(func() error {
		v, ok, err := bm.Get(s, 1)
		if err != nil {
			return err
		}
		if !ok {
			return core.ErrTxAborted
		}
		if err := bm.Put(s, 1, v-40); err != nil {
			return err
		}
		nm.Put(s, 1, 40)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	bv, _, _ := bm.Get(s, 1)
	nv, _ := nm.Get(s, 1)
	if bv != 60 || nv != 40 {
		t.Fatalf("values = %d,%d", bv, nv)
	}
}

func TestBoostedConcurrentTransfersConserve(t *testing.T) {
	mgr := core.NewTxManager()
	m := NewMap[int](64)
	s0 := mgr.Session()
	const accounts = 16
	for a := uint64(0); a < accounts; a++ {
		m.Put(s0, a, 1000)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			s := mgr.Session()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 400; i++ {
				a := uint64(rng.Intn(accounts))
				b := uint64(rng.Intn(accounts))
				if a == b {
					continue
				}
				_ = s.Run(func() error {
					va, ok, err := m.Get(s, a)
					if err != nil {
						return err
					}
					if !ok || va < 1 {
						return nil
					}
					vb, _, err := m.Get(s, b)
					if err != nil {
						return err
					}
					if err := m.Put(s, a, va-1); err != nil {
						return err
					}
					return m.Put(s, b, vb+1)
				})
			}
		}(int64(w))
	}
	wg.Wait()
	total := 0
	for a := uint64(0); a < accounts; a++ {
		v, _, _ := m.Get(s0, a)
		total += v
	}
	if total != accounts*1000 {
		t.Fatalf("total = %d", total)
	}
}

func TestNonTransactionalPathImmediate(t *testing.T) {
	mgr := core.NewTxManager()
	m := NewMap[int](4)
	s := mgr.Session()
	// Outside a transaction, ops apply immediately and locks do not linger.
	m.Put(s, 1, 1)
	s2 := mgr.Session()
	if err := m.Put(s2, 1, 2); err != nil {
		t.Fatalf("lock lingered: %v", err)
	}
	if v, _, _ := m.Get(s, 1); v != 2 {
		t.Fatalf("v = %d", v)
	}
}
