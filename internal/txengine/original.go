package txengine

import (
	"medley/internal/core"
	"medley/internal/structures/fskiplist"
	"medley/internal/structures/msqueue"
)

const originalCaps = CapNoTx | CapSkipMap | CapQueue

// originalEngine exposes the untransformed nonblocking structures — the
// Figure 10 "Original" baseline. It supports no transactions at all: Run
// panics, NoTx executes operations back to back, and Stats is permanently
// zero (there is nothing to instrument). Workers still carry sessions
// because the M&S queue's operations take one; used strictly outside
// transactions they elide all NBTC instrumentation, so the queue behaves
// as the plain Michael & Scott algorithm.
type originalEngine struct {
	mgr *core.TxManager
}

func newOriginalEngine(Config) (Engine, error) {
	return &originalEngine{mgr: core.NewTxManager()}, nil
}

func (e *originalEngine) Name() string { return "Original" }
func (e *originalEngine) Caps() Caps   { return originalCaps }
func (e *originalEngine) Stats() Stats { return Stats{} }
func (e *originalEngine) Close()       {}

func (e *originalEngine) NewUintMap(spec MapSpec) (Map[uint64], error) {
	if spec.Kind == KindHash {
		return nil, ErrUnsupported
	}
	return originalMap{sl: fskiplist.NewOriginal[uint64, uint64]()}, nil
}

func (e *originalEngine) NewRowMap(MapSpec) (Map[any], error) { return nil, ErrUnsupported }

func (e *originalEngine) NewUintQueue() (Queue[uint64], error) {
	return originalQueue{q: msqueue.New[uint64]()}, nil
}

func (e *originalEngine) NewWorker(int) Tx { return originalTx{s: e.mgr.Session()} }

type originalTx struct{ s *core.Session }

func (originalTx) Run(func() error) error { panic("txengine: Original supports no transactions") }
func (originalTx) RunRead(func())         { panic("txengine: Original supports no transactions") }
func (originalTx) NoTx(fn func())         { fn() }
func (originalTx) Abort() error           { panic("txengine: Original supports no transactions") }

type originalMap struct {
	sl *fskiplist.Original[uint64, uint64]
}

func (m originalMap) Get(_ Tx, k uint64) (uint64, bool)           { return m.sl.Get(k) }
func (m originalMap) Put(_ Tx, k uint64, v uint64) (uint64, bool) { return m.sl.Put(k, v) }
func (m originalMap) Insert(_ Tx, k uint64, v uint64) bool        { return m.sl.Insert(k, v) }
func (m originalMap) Remove(_ Tx, k uint64) (uint64, bool)        { return m.sl.Remove(k) }

// originalQueue is the M&S queue used non-transactionally: every operation
// runs outside a transaction, so the NBTC instrumentation is elided.
type originalQueue struct{ q *msqueue.Queue[uint64] }

func (a originalQueue) Enqueue(tx Tx, v uint64) { a.q.Enqueue(tx.(originalTx).s, v) }
func (a originalQueue) Dequeue(tx Tx) (uint64, bool) {
	return a.q.Dequeue(tx.(originalTx).s)
}
