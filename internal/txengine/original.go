package txengine

import (
	"medley/internal/structures/fskiplist"
)

const originalCaps = CapNoTx | CapSkipMap

// originalEngine exposes the untransformed Fraser skiplist — the Figure 10
// "Original" baseline. It supports no transactions at all: Run panics, NoTx
// executes operations back to back.
type originalEngine struct{}

func newOriginalEngine(Config) (Engine, error) { return originalEngine{}, nil }

func (originalEngine) Name() string { return "Original" }
func (originalEngine) Caps() Caps   { return originalCaps }
func (originalEngine) Close()       {}

func (originalEngine) NewUintMap(spec MapSpec) (Map[uint64], error) {
	if spec.Kind == KindHash {
		return nil, ErrUnsupported
	}
	return originalMap{sl: fskiplist.NewOriginal[uint64, uint64]()}, nil
}

func (originalEngine) NewRowMap(MapSpec) (Map[any], error) { return nil, ErrUnsupported }

func (originalEngine) NewWorker(int) Tx { return originalTx{} }

type originalTx struct{}

func (originalTx) Run(func() error) error { panic("txengine: Original supports no transactions") }
func (originalTx) RunRead(func())         { panic("txengine: Original supports no transactions") }
func (originalTx) NoTx(fn func())         { fn() }
func (originalTx) Abort() error           { panic("txengine: Original supports no transactions") }

type originalMap struct {
	sl *fskiplist.Original[uint64, uint64]
}

func (m originalMap) Get(_ Tx, k uint64) (uint64, bool)           { return m.sl.Get(k) }
func (m originalMap) Put(_ Tx, k uint64, v uint64) (uint64, bool) { return m.sl.Put(k, v) }
func (m originalMap) Insert(_ Tx, k uint64, v uint64) bool        { return m.sl.Insert(k, v) }
func (m originalMap) Remove(_ Tx, k uint64) (uint64, bool)        { return m.sl.Remove(k) }
