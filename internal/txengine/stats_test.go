package txengine

import (
	"errors"
	"sync"
	"testing"
)

// TestStatsDeterministic pins the uniform accounting contract on every
// transactional engine: committed Runs move Commits exactly, business
// aborts move Aborts without a retry, RunRead counts as a commit, and NoTx
// moves Fallbacks exactly on the engines that must wrap it in a
// transaction.
func TestStatsDeterministic(t *testing.T) {
	eachTxEngine(t, func(t *testing.T, b Builder, eng Engine, m Map[uint64]) {
		tx := eng.NewWorker(0)
		base := eng.Stats()

		for i := uint64(0); i < 5; i++ {
			if err := tx.Run(func() error { m.Put(tx, i, i); return nil }); err != nil {
				t.Fatal(err)
			}
		}
		d := eng.Stats().Delta(base)
		if d.Commits != 5 || d.Aborts != 0 || d.Retries != 0 {
			t.Fatalf("after 5 uncontended commits: %+v", d)
		}

		tx.RunRead(func() { m.Get(tx, 1) })
		if d := eng.Stats().Delta(base); d.Commits != 6 {
			t.Fatalf("RunRead did not count as a commit: %+v", d)
		}

		errBiz := errors.New("no funds")
		base = eng.Stats()
		if err := tx.Run(func() error { m.Put(tx, 9, 9); return errBiz }); !errors.Is(err, errBiz) {
			t.Fatalf("business abort returned %v", err)
		}
		if err := tx.Run(func() error { return tx.Abort() }); !errors.Is(err, ErrBusinessAbort) {
			t.Fatalf("Tx.Abort returned %v", err)
		}
		d = eng.Stats().Delta(base)
		if d.Commits != 0 || d.Aborts != 2 || d.Retries != 0 {
			t.Fatalf("after 2 business aborts: %+v", d)
		}

		base = eng.Stats()
		tx.NoTx(func() { m.Get(tx, 1) })
		d = eng.Stats().Delta(base)
		if b.Caps.Has(CapNoTx) {
			if d.Fallbacks != 0 {
				t.Fatalf("engine with CapNoTx counted a fallback: %+v", d)
			}
		} else if d.Fallbacks != 1 {
			t.Fatalf("engine without CapNoTx must count NoTx as a fallback: %+v", d)
		}
	})
}

// TestStatsUnderConflict forces transaction conflicts and asserts the
// counters move coherently. For the optimistic read-validated engines
// (Medley, txMontage, TDSL) a conflicting write is interposed between a
// transaction's read and its commit, which must produce at least one abort
// and one retry deterministically. For every engine, a concurrent increment
// hammer must commit each Run exactly once — Commits is exact even when
// retries happen underneath.
func TestStatsUnderConflict(t *testing.T) {
	forced := map[string]bool{"medley": true, "txmontage": true, "tdsl": true}
	eachTxEngine(t, func(t *testing.T, b Builder, eng Engine, m Map[uint64]) {
		if forced[b.Key] {
			const k = uint64(77)
			tx := eng.NewWorker(0)
			m.Put(tx, k, 1)
			base := eng.Stats()
			readDone := make(chan struct{})
			writeDone := make(chan struct{})
			go func() {
				<-readDone
				w2 := eng.NewWorker(1)
				m.Put(w2, k, 100)
				close(writeDone)
			}()
			attempt := 0
			if err := tx.Run(func() error {
				attempt++
				v, _ := m.Get(tx, k)
				if attempt == 1 {
					close(readDone)
					<-writeDone // the read is now stale; commit must fail
				}
				m.Put(tx, k, v+1)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			// The interposing standalone Put itself counts as a one-shot
			// commit on engines that wrap standalone ops (TDSL), so Commits
			// is a lower bound here.
			d := eng.Stats().Delta(base)
			if d.Commits < 1 || d.Aborts < 1 || d.Retries < 1 {
				t.Fatalf("forced conflict not counted: %+v (fn ran %d times)", d, attempt)
			}
		}

		// Concurrent increments: every Run commits exactly once.
		const (
			workers = 4
			iters   = 300
			hot     = uint64(5)
		)
		init := eng.NewWorker(10)
		m.Put(init, hot, 0)
		base := eng.Stats()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				tx := eng.NewWorker(11 + w)
				for i := 0; i < iters; i++ {
					if err := tx.Run(func() error {
						v, _ := m.Get(tx, hot)
						m.Put(tx, hot, v+1)
						return nil
					}); err != nil {
						t.Errorf("increment: %v", err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		d := eng.Stats().Delta(base)
		if d.Commits != workers*iters {
			t.Fatalf("commits %d != %d Runs (aborts=%d retries=%d)",
				d.Commits, workers*iters, d.Aborts, d.Retries)
		}
		if d.Retries > d.Aborts {
			t.Fatalf("retries %d > aborts %d", d.Retries, d.Aborts)
		}
		if !b.Caps.Has(CapDynamicTx) {
			return // static engines cannot read-modify-write; skip the sum check
		}
		final := eng.NewWorker(99)
		if v, _ := m.Get(final, hot); v != workers*iters {
			t.Fatalf("hot key = %d, want %d: lost increments", v, workers*iters)
		}
	})
}
