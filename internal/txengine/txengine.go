// Package txengine unifies the repository's transactional systems behind a
// single Engine abstraction: one name-keyed registry of backends (Medley,
// txMontage, OneFile, POneFile, TDSL, LFTT, Boost, the untransformed
// Original baseline, plus the sharded decorators medley-sharded,
// txmontage-sharded, and original-sharded — see sharded.go), each exposing
// per-worker transaction
// handles and transactional map factories. The benchmark harness
// (internal/bench), the TPC-C workload (internal/tpcc), and the CLI tools
// all consume engines through this package, so a new backend registered
// here runs every workload for free.
//
// # Model
//
// An Engine owns whatever shared state its system needs (a Medley
// TxManager, a OneFile STM, a TDSL version clock, ...). Workers obtain a Tx
// handle, one per goroutine, and execute transactions with
//
//	err := tx.Run(func() error {
//	    v, _ := m.Get(tx, k)
//	    m.Put(tx, k, v+1)
//	    return nil
//	})
//
// Run retries internally on conflict aborts; any other error from the
// closure aborts the transaction once and passes through to the caller
// (the business-abort idiom — see ErrBusinessAbort and Tx.Abort).
//
// Map operations invoked on a Tx that is not inside Run execute standalone,
// as single auto-committed operations.
//
// # Capabilities
//
// Engines differ in what they can express; Caps declares it. LFTT supports
// only static transactions (the op list is buffered during Run and executed
// atomically at the end, so reads inside Run return zero values), which is
// why it carries CapTx but not CapDynamicTx and cannot run TPC-C. The
// Original baseline supports no transactions at all (CapNoTx only).
package txengine

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"medley/internal/core"
	"medley/internal/montage"
	"medley/internal/pnvm"
)

// Caps declares what an engine supports.
type Caps uint32

const (
	// CapTx: Run executes closure transactions atomically.
	CapTx Caps = 1 << iota
	// CapDynamicTx: reads inside Run return real values, so transaction
	// logic may branch on them (required by TPC-C). Absent on LFTT, whose
	// transactions are static.
	CapDynamicTx
	// CapNoTx: NoTx runs operations genuinely uninstrumented (the TxOff
	// and Original modes of the paper's Figure 10). Engines without it
	// fall back to wrapping NoTx bodies in a transaction.
	CapNoTx
	// CapHashMap: NewUintMap/NewRowMap accept KindHash.
	CapHashMap
	// CapSkipMap: NewUintMap/NewRowMap accept KindSkip.
	CapSkipMap
	// CapRowMaps: NewRowMap is available (any-valued tables for TPC-C).
	CapRowMaps
	// CapQueue: NewUintQueue is available. Queues are the abstraction the
	// paper uses to separate NBTC from boosting (no inverse operations) and
	// LFTT (no critical "key" nodes), so only Medley-family engines and the
	// untransformed Original baseline carry it.
	CapQueue
	// CapSnapshot: the engine stamps committed transactions with commit
	// timestamps and its Tx handles implement SnapshotReader, so
	// SnapshotRead(fn) serves read-only transactions from a consistent
	// versioned cut — validation-free, never aborting, never restarting
	// (see snapshot.go). Carried by the Medley family; engines without
	// versions gate out exactly like CapQueue.
	CapSnapshot
)

// Has reports whether c contains every capability in want.
func (c Caps) Has(want Caps) bool { return c&want == want }

// MapKind selects the shape of a transactional map.
type MapKind uint8

const (
	// KindHash is a hash table (buckets sized by MapSpec.Buckets).
	KindHash MapKind = iota
	// KindSkip is an ordered skiplist.
	KindSkip
)

func (k MapKind) String() string {
	if k == KindHash {
		return "hash"
	}
	return "skip"
}

// MapSpec configures one map created on an engine.
type MapSpec struct {
	Kind    MapKind
	Buckets int // hash bucket / lock-shard count hint (0: engine default)
	Stripes int // partition count for striped engines (0: engine default)
}

// Config carries engine-construction parameters. Engines ignore fields they
// do not need.
type Config struct {
	// Latencies drives the simulated NVM device of persistent engines
	// (txMontage, POneFile). The zero value costs nothing.
	Latencies pnvm.Latencies
	// Devices, if non-empty, are the simulated NVM devices persistent
	// engines attach to instead of constructing their own from Latencies.
	// Single-device engines (txmontage, ponefile) take exactly one; the
	// sharded persistent decorator (txmontage-sharded) takes one per shard,
	// index-aligned with the order its Devices() method reports. Recovery
	// flows use this to crash a device fleet and rebuild an engine on the
	// survivors.
	Devices []*pnvm.Device
	// EpochClock, if non-nil, is the shared epoch clock montage-backed
	// engines pin their transactions on instead of owning a private one.
	// The sharded decorator hands one clock to every shard so a cross-shard
	// transaction lands in the same epoch cut on each; engines built with a
	// shared clock never start their own advancer — the clock's owner
	// coordinates the advance cadence. Most callers leave it nil.
	EpochClock *montage.EpochClock
	// EpochLen, if positive, starts txMontage's epoch advancer at this
	// period; Close stops it.
	EpochLen time.Duration
	// RowCodec encodes row values into NVM payload bytes; required by
	// txMontage row maps (TPC-C), unused elsewhere.
	RowCodec montage.Codec[any]
	// LockShards bounds Boost's semantic-lock tables (0: default).
	LockShards int
	// Shards is the partition count of sharded engines (medley-sharded,
	// txmontage-sharded, original-sharded): the base engine is instantiated
	// this many times and map keys hash-route to their owning shard
	// (0: DefaultShards). Non-sharded engines ignore it. Validated centrally
	// by every registry construction path — see Validate.
	Shards int
	// NoLatch disables key-granular latching on sharded engines: every
	// cross-shard transaction takes whole-shard exclusive locks, as it did
	// before the latch manager existed. An A/B escape hatch for measurement
	// (-nolatch in the CLIs) and a kill switch should latching ever
	// misbehave; non-sharded engines ignore it.
	NoLatch bool
	// snapOff disables the MVCC snapshot tier on engines that would
	// otherwise carry one. Set internally by the sharded decorator for its
	// sub-engines: the decorator owns the single tier-wide clock and wraps
	// only its top-level maps, so a cross-shard transaction stamps exactly
	// one version for the whole shard set (and PR 6 shared-fate groups
	// stamp one version for the whole group).
	snapOff bool
}

// MaxShards bounds Config.Shards: a larger count is almost certainly a typo
// and would allocate that many independent engine instances (and, for
// persistent engines, devices).
const MaxShards = 1024

// Validate rejects malformed configurations with a clear error. Register
// wraps every builder with it, so all construction paths (Build, bench,
// tpcc, workload, the CLIs) share one validation point.
func (c Config) Validate() error {
	if c.Shards < 0 {
		return fmt.Errorf("txengine: Config.Shards must be >= 1 (got %d); 0 selects the engine default of %d", c.Shards, DefaultShards)
	}
	if c.Shards > MaxShards {
		return fmt.Errorf("txengine: Config.Shards %d exceeds MaxShards %d (that many independent engine instances is almost certainly unintended)", c.Shards, MaxShards)
	}
	return nil
}

// ValidateShardsFlag is the CLIs' shared -shards check: the central
// Config.Validate rejection, for failing fast before a measurement sweep.
// The non-fatal over-parallelism warning is emitted by the registry wrapper
// when a sharded engine is actually constructed — once per run, however
// many engine instances a sweep builds.
func ValidateShardsFlag(shards int) error {
	return (Config{Shards: shards}).Validate()
}

// overParallelismWarning is the non-fatal companion to Validate: a shard
// count far past the host's parallelism is legal, but each shard is a full
// engine instance (and, for persistent engines, a device), so it is usually
// a typo. Empty when the count is unremarkable.
func overParallelismWarning(shards int) string {
	if max := 4 * runtime.GOMAXPROCS(0); shards > max {
		return fmt.Sprintf("shards=%d is far beyond the host's parallelism (GOMAXPROCS=%d); each shard is a full engine instance",
			shards, runtime.GOMAXPROCS(0))
	}
	return ""
}

// shardsWarned dedupes the over-parallelism warning across engine
// constructions: benchmark sweeps build one engine per measurement point,
// and the warning should print once per run per distinct shard count, not
// once per instantiation.
var shardsWarned sync.Map

// warnShardsFn emits a construction-time warning line; a test hook.
var warnShardsFn = func(msg string) { fmt.Fprintln(os.Stderr, "# warning:", msg) }

// maybeWarnShards emits the deduped over-parallelism warning for a sharded
// builder's construction.
func maybeWarnShards(cfg Config) {
	w := overParallelismWarning(cfg.Shards)
	if w == "" {
		return
	}
	if _, dup := shardsWarned.LoadOrStore(w, true); !dup {
		warnShardsFn(w)
	}
}

// ErrBusinessAbort is the no-retry abort returned by Tx.Abort: Run passes it
// through to the caller instead of retrying, after rolling the transaction
// back. Workload harnesses treat it as deliberately completed work.
var ErrBusinessAbort = errors.New("txengine: business abort")

// ErrUnsupported reports a map kind or transaction shape an engine cannot
// provide; check Caps before constructing.
var ErrUnsupported = errors.New("txengine: unsupported")

// Tx is a per-worker transaction handle. Not goroutine-safe: one per
// goroutine, like core.Session.
type Tx interface {
	// Run executes fn as one transaction, retrying internally (with
	// backoff) whenever it aborts due to a conflict. A non-nil error from
	// fn — including ErrBusinessAbort from Abort — rolls back once and is
	// returned without retry.
	Run(fn func() error) error
	// RunRead executes fn as a read-only transaction, retried until it
	// observes a consistent snapshot. Engines with cheaper read-only
	// protocols (OneFile) exploit it; others delegate to Run.
	RunRead(fn func())
	// NoTx executes fn's operations outside any transaction where the
	// engine supports that (CapNoTx); otherwise it wraps fn in Run.
	NoTx(fn func())
	// Abort dooms the current transaction for business reasons, rolls back
	// its effects, and returns ErrBusinessAbort for fn to propagate.
	Abort() error
}

// Map is a transactional map from uint64 keys to V, bound to the engine
// that created it. Operations must be passed the worker's own Tx; called
// outside Run they execute as standalone auto-committed operations.
//
// The key ^uint64(0) (2^64-1) is reserved across all engines for engine
// metadata: persistent montage-backed engines store their durable frontier
// markers under it (montage.FrontierKey) and panic on an attempt to bind
// it. Portable callers must keep user keys below it.
//
// On engines without CapDynamicTx, in-transaction return values are
// undefined (zero): the operation is only recorded for atomic execution.
type Map[V any] interface {
	// Get returns the value bound to k, if any.
	Get(tx Tx, k uint64) (V, bool)
	// Put binds k to v, returning the previous value if k was present.
	Put(tx Tx, k uint64, v V) (V, bool)
	// Insert adds k→v only if absent, reporting whether insertion happened.
	Insert(tx Tx, k uint64, v V) bool
	// Remove deletes k, returning its value if present.
	Remove(tx Tx, k uint64) (V, bool)
}

// Queue is a transactional FIFO queue bound to the engine that created it.
// Like Map, operations take the worker's own Tx and execute standalone when
// called outside Run.
type Queue[V any] interface {
	// Enqueue appends v.
	Enqueue(tx Tx, v V)
	// Dequeue removes and returns the oldest element; ok is false if the
	// queue is empty.
	Dequeue(tx Tx) (V, bool)
}

// Engine is one transactional system.
type Engine interface {
	// Name is the display name ("Medley", "txMontage", ...).
	Name() string
	// Caps declares what the engine supports.
	Caps() Caps
	// NewUintMap creates a uint64-valued transactional map (the
	// microbenchmark shape).
	NewUintMap(spec MapSpec) (Map[uint64], error)
	// NewRowMap creates an any-valued transactional map (the table shape;
	// requires CapRowMaps).
	NewRowMap(spec MapSpec) (Map[any], error)
	// NewUintQueue creates a uint64-valued transactional FIFO queue
	// (requires CapQueue).
	NewUintQueue() (Queue[uint64], error)
	// NewWorker returns a transaction handle for one goroutine.
	NewWorker(tid int) Tx
	// Stats snapshots the engine's cumulative transaction outcomes.
	Stats() Stats
	// Close releases background resources (epoch advancers etc.).
	Close()
}

// Persister is the optional interface of engines backed by simulated NVM
// devices (txMontage, POneFile, txmontage-sharded). Recovery flows drive
// the crash/recover cycle through it. The contract is multi-device:
// single-device engines report one device and a sharded persistent engine
// reports one per shard. Engines whose type carries the methods but whose
// instance is transient (Medley, OneFile) return nil Devices; callers must
// check.
type Persister interface {
	// Devices returns the engine's simulated NVM devices, one per
	// persistence shard (length 1 for single-device engines), or nil when
	// the instance is transient. The order is stable and matches the dump
	// order RecoverUintMap expects.
	Devices() []*pnvm.Device
	// Sync makes everything committed so far durable on every device at a
	// mutually consistent cut: a coordinated epoch-boundary sync for the
	// montage family (all shards advanced together), a no-op for eagerly
	// persisting engines.
	Sync()
	// RecoverUintMap rebuilds one logical uint64 map from the post-crash
	// dumps of every device (pnvm.Device.Recover output, index-aligned
	// with Devices — see pnvm.DumpAll) on this — freshly constructed —
	// engine. Dumps are merged at an epoch-consistent cut: state some
	// devices persisted beyond the cut is discarded so no transaction is
	// recovered torn. Sharded engines require one dump per shard,
	// recovered at the same shard count the state was written under.
	RecoverUintMap(dumps [][]pnvm.Record, spec MapSpec) (Map[uint64], error)
}

// Builder is one registry entry.
type Builder struct {
	// Key is the registry name (lowercase; what -systems flags accept).
	Key string
	// Caps mirrors the built engine's capabilities, so callers can select
	// backends without constructing them.
	Caps Caps
	// Doc is a one-line description for CLI help and the README matrix.
	Doc string
	// Slow marks engines impractically slow at default benchmark durations
	// (eager per-write persistence); default workload series exclude them,
	// explicit -systems selection still works.
	Slow bool
	// Sharded marks the sharded decorators: engines that actually consume
	// Config.Shards. Construction of a sharded engine with a shard count far
	// past the host's parallelism emits the (deduped) registry warning.
	Sharded bool
	// New constructs the engine.
	New func(cfg Config) (Engine, error)
}

var registry []Builder

// Register adds a builder to the registry. Registration order is
// presentation order (Builders, Names). Duplicate keys panic. The builder's
// New is wrapped with Config.Validate, so every construction path shares
// one validation point.
func Register(b Builder) {
	key := strings.ToLower(b.Key)
	for _, have := range registry {
		if have.Key == key {
			panic("txengine: duplicate engine " + key)
		}
	}
	b.Key = key
	inner := b.New
	sharded := b.Sharded
	b.New = func(cfg Config) (Engine, error) {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		if sharded {
			maybeWarnShards(cfg)
		}
		return inner(cfg)
	}
	registry = append(registry, b)
}

// Lookup returns the builder registered under name (case-insensitive).
func Lookup(name string) (Builder, bool) {
	name = strings.ToLower(name)
	for _, b := range registry {
		if b.Key == name {
			return b, true
		}
	}
	return Builder{}, false
}

// Build constructs the named engine.
func Build(name string, cfg Config) (Engine, error) {
	b, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("txengine: unknown engine %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return b.New(cfg)
}

// Builders returns the registry in registration order.
func Builders() []Builder {
	out := make([]Builder, len(registry))
	copy(out, registry)
	return out
}

// Names returns the registered keys in registration order.
func Names() []string {
	out := make([]string, len(registry))
	for i, b := range registry {
		out[i] = b.Key
	}
	return out
}

// Builtin engines, in the paper's presentation order. A single init keeps
// the ordering independent of file names.
func init() {
	Register(Builder{Key: "medley", Caps: medleyCaps, Doc: "Medley NBTC transactional maps (the paper's system)", New: newMedleyEngine})
	Register(Builder{Key: "txmontage", Caps: medleyCaps, Doc: "Medley + nbMontage epoch-based periodic persistence", New: newTxMontageEngine})
	Register(Builder{Key: "onefile", Caps: onefileCaps, Doc: "OneFile-lite STM (transient)", New: newOneFileEngine})
	Register(Builder{Key: "ponefile", Caps: onefileCaps, Doc: "OneFile-lite with eager per-write persistence", Slow: true, New: newPOneFileEngine})
	Register(Builder{Key: "tdsl", Caps: tdslCaps, Doc: "TDSL-lite striped transactional skiplists", New: newTDSLEngine})
	Register(Builder{Key: "lftt", Caps: lfttCaps, Doc: "LFTT-style static transactions over a skiplist", New: newLFTTEngine})
	Register(Builder{Key: "boost", Caps: boostCaps, Doc: "transactional boosting over a lock-based map", New: newBoostEngine})
	Register(Builder{Key: "original", Caps: originalCaps, Doc: "untransformed Fraser skiplist (no transactions)", New: newOriginalEngine})
	// Sharded decorators: S independent base-engine instances behind one
	// façade, hash-routed keys, ordered-acquire cross-shard commit
	// (Config.Shards selects S). txmontage-sharded additionally gives every
	// shard its own epoch system and NVM device on one shared epoch clock,
	// with a coordinator that advances all shards to mutually consistent
	// boundaries (see sharded.go). Registered after their bases so Lookup
	// resolves during construction.
	Register(Builder{Key: "medley-sharded", Caps: medleyCaps, Sharded: true, Doc: "hash-partitioned Medley: per-shard TxManagers, ordered cross-shard commit",
		New: func(cfg Config) (Engine, error) { return newShardedEngine("medley", cfg) }})
	Register(Builder{Key: "txmontage-sharded", Caps: medleyCaps, Sharded: true, Doc: "hash-partitioned txMontage: per-shard epoch systems + devices, coordinated epoch advance, merge-on-recover",
		New: func(cfg Config) (Engine, error) { return newShardedEngine("txmontage", cfg) }})
	Register(Builder{Key: "original-sharded", Caps: originalCaps, Sharded: true, Doc: "hash-partitioned untransformed baseline (no transactions)",
		New: func(cfg Config) (Engine, error) { return newShardedEngine("original", cfg) }})
}

// backoff is per-worker state for core.Backoff, the shared randomized
// exponential backoff that prevents livelock among mutually aborting
// transactions.
type backoff struct{ rng uint64 }

func (b *backoff) wait(attempt int) { core.Backoff(attempt, &b.rng) }
