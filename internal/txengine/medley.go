package txengine

import (
	"errors"
	"fmt"

	"medley/internal/core"
	"medley/internal/montage"
	"medley/internal/pnvm"
	"medley/internal/structures/fskiplist"
	"medley/internal/structures/mhash"
	"medley/internal/structures/msqueue"
	"medley/internal/txmap"
)

const medleyCaps = CapTx | CapDynamicTx | CapNoTx | CapHashMap | CapSkipMap | CapRowMaps | CapQueue | CapSnapshot

// medleyEngine drives Medley transactional maps; with an epoch system
// attached it is txMontage (Medley + periodic persistence over the
// simulated NVM device).
type medleyEngine struct {
	name    string
	mgr     *core.TxManager
	es      *montage.EpochSys // non-nil for txMontage
	codec   montage.Codec[any]
	started bool
	snap    *snapTier // MVCC snapshot tier; nil when Config.snapOff (sharded sub-engines)
	ct      counters
}

func newMedleyEngine(cfg Config) (Engine, error) {
	e := &medleyEngine{name: "Medley", mgr: core.NewTxManager()}
	if !cfg.snapOff {
		e.snap = newSnapTier(nil)
	}
	return e, nil
}

func newTxMontageEngine(cfg Config) (Engine, error) {
	mgr := core.NewTxManager()
	if len(cfg.Devices) > 1 {
		return nil, fmt.Errorf("txengine: txmontage is single-device (got %d devices); use txmontage-sharded for multi-device persistence", len(cfg.Devices))
	}
	var dev *pnvm.Device
	if len(cfg.Devices) == 1 {
		dev = cfg.Devices[0]
	} else {
		dev = pnvm.New(cfg.Latencies)
	}
	var es *montage.EpochSys
	if cfg.EpochClock != nil {
		// Shared clock: the clock's owner (the sharded coordinator) drives
		// the advance cadence for every system on it; starting a private
		// advancer here would flush this shard's batches at boundaries the
		// other shards never reach.
		es = montage.NewEpochSysShared(dev, cfg.EpochClock)
	} else {
		es = montage.NewEpochSys(dev)
	}
	montage.Attach(mgr, es)
	e := &medleyEngine{name: "txMontage", mgr: mgr, es: es, codec: cfg.RowCodec}
	if !cfg.snapOff {
		// Anchor commit timestamps to the same clock that orders epoch cuts.
		e.snap = newSnapTier(es.Clock())
	}
	if cfg.EpochLen > 0 && cfg.EpochClock == nil {
		es.Start(cfg.EpochLen)
		e.started = true
	}
	return e, nil
}

func (e *medleyEngine) Name() string { return e.name }
func (e *medleyEngine) Caps() Caps   { return medleyCaps }
func (e *medleyEngine) Stats() Stats { return e.ct.snapshot() }

func (e *medleyEngine) Close() {
	if e.started {
		e.es.Stop()
	}
}

// EpochSys exposes the montage epoch system (nil for transient Medley), for
// recovery demos and persistence tests.
func (e *medleyEngine) EpochSys() *montage.EpochSys { return e.es }

// Devices implements Persister (nil for transient Medley).
func (e *medleyEngine) Devices() []*pnvm.Device {
	if e.es == nil {
		return nil
	}
	return []*pnvm.Device{e.es.Device()}
}

// Sync implements Persister: an epoch-boundary sync, after which everything
// committed so far is durable.
func (e *medleyEngine) Sync() {
	if e.es != nil {
		e.es.Sync()
	}
}

// RecoverUintMap implements Persister: rebuilds a map from the live
// payloads of this engine's one device's post-crash dump, at the device's
// epoch-consistent cut (its durable frontier); the device is scrubbed of
// beyond-cut state and the clock re-anchored past the cut, so the engine —
// and a possible second crash — continue from a clean boundary.
func (e *medleyEngine) RecoverUintMap(dumps [][]pnvm.Record, spec MapSpec) (Map[uint64], error) {
	if e.es == nil {
		return nil, fmt.Errorf("txengine: %s is transient: %w", e.name, ErrUnsupported)
	}
	if len(dumps) != 1 {
		// Record ids are per-device counters, so a foreign device's dump
		// would alias this device's ids and the scrub would corrupt media.
		return nil, fmt.Errorf("txengine: %s recovery wants exactly one dump for its one device: got %d", e.name, len(dumps))
	}
	cut := montage.ConsistentCut(dumps)
	montage.ReanchorAll(e.es.Clock(), []*montage.EpochSys{e.es}, dumps, cut)
	live := montage.LiveRecordsAt(dumps[0], cut)
	var inner Map[uint64]
	if spec.Kind == KindHash {
		inner = txmapAdapter[uint64]{montage.RecoverHashMap(e.es, montage.Uint64Codec(), bucketsOr(spec, 1<<16), live)}
	} else {
		inner = txmapAdapter[uint64]{montage.RecoverSkipMap(e.es, montage.Uint64Codec(), live)}
	}
	return e.wrapRecoveredUint(inner, live), nil
}

// wrapRecoveredUint attaches the snapshot sidecar to a recovered map and
// seeds every live record into the version chains. Seeding is mandatory: a
// chain miss means "absent at the cut", so an unseeded recovered key would
// read as missing from every snapshot until its first post-recovery write.
func (e *medleyEngine) wrapRecoveredUint(inner Map[uint64], live []montage.RecordView) Map[uint64] {
	if e.snap == nil {
		return inner
	}
	ch := &snapChains{tier: e.snap}
	dec := montage.Uint64Codec().Dec
	for _, r := range live {
		ch.seed(r.Key, dec(r.Val), nil)
	}
	return snapMap[uint64]{
		inner: inner,
		ch:    ch,
		enc:   func(v uint64) (uint64, any) { return v, nil },
		dec:   func(u uint64, _ any) uint64 { return u },
	}
}

// wrapUint / wrapRow attach the per-map snapshot sidecar when the engine
// carries the MVCC tier.
func (e *medleyEngine) wrapUint(inner Map[uint64]) Map[uint64] {
	if e.snap == nil {
		return inner
	}
	return newSnapUintMap(inner, &snapChains{tier: e.snap})
}

func (e *medleyEngine) wrapRow(inner Map[any]) Map[any] {
	if e.snap == nil {
		return inner
	}
	return newSnapRowMap(inner, &snapChains{tier: e.snap})
}

func (e *medleyEngine) NewUintMap(spec MapSpec) (Map[uint64], error) {
	if e.es != nil {
		if spec.Kind == KindHash {
			return e.wrapUint(txmapAdapter[uint64]{montage.NewHashMap(e.es, montage.Uint64Codec(), bucketsOr(spec, 1<<16))}), nil
		}
		return e.wrapUint(txmapAdapter[uint64]{montage.NewSkipMap(e.es, montage.Uint64Codec())}), nil
	}
	if spec.Kind == KindHash {
		return e.wrapUint(txmapAdapter[uint64]{mhash.NewUint64[uint64](bucketsOr(spec, 1<<16))}), nil
	}
	return e.wrapUint(txmapAdapter[uint64]{fskiplist.New[uint64, uint64]()}), nil
}

func (e *medleyEngine) NewRowMap(spec MapSpec) (Map[any], error) {
	if e.es != nil {
		if e.codec.Enc == nil || e.codec.Dec == nil {
			return nil, fmt.Errorf("txengine: txmontage row maps need Config.RowCodec")
		}
		if spec.Kind == KindHash {
			return e.wrapRow(txmapAdapter[any]{montage.NewHashMap(e.es, e.codec, bucketsOr(spec, 1<<16))}), nil
		}
		return e.wrapRow(txmapAdapter[any]{montage.NewSkipMap(e.es, e.codec)}), nil
	}
	if spec.Kind == KindHash {
		return e.wrapRow(txmapAdapter[any]{mhash.NewUint64[any](bucketsOr(spec, 1<<16))}), nil
	}
	return e.wrapRow(txmapAdapter[any]{fskiplist.New[uint64, any]()}), nil
}

// NewUintQueue returns an NBTC-transformed Michael & Scott queue. The queue
// itself is transient even under txMontage: the paper's queue carries no
// payload persistence, and composition with persistent maps stays atomic.
func (e *medleyEngine) NewUintQueue() (Queue[uint64], error) {
	return msQueueAdapter{q: msqueue.New[uint64]()}, nil
}

func (e *medleyEngine) NewWorker(int) Tx {
	t := &sessionTx{s: e.mgr.Session(), ct: &e.ct}
	if e.snap != nil {
		t.snap.tier = e.snap
		t.snap.slot = e.snap.newSlot()
	}
	return t
}

func bucketsOr(spec MapSpec, def int) int {
	if spec.Buckets > 0 {
		return spec.Buckets
	}
	return def
}

// sessionTx adapts a core.Session to the Tx interface. Medley operations
// are usable both inside and outside transactions, so NoTx is genuinely
// uninstrumented.
type sessionTx struct {
	s    *core.Session
	ct   *counters
	snap snapAgent
	bo   backoff
}

func (t *sessionTx) Run(fn func() error) error {
	if !t.snap.enabled() {
		return t.ct.countRun(t.s.Run, fn)
	}
	return t.ct.countRun(t.runStamped, fn)
}

// runStamped is core.Session.Run with version stamping folded into the
// commit: the loop shape (and therefore the stats contract countRun builds
// on it) is identical, but a successful commit publishes the attempt's
// buffered writes at one drawn timestamp.
func (t *sessionTx) runStamped(fn func() error) error {
	for attempt := 0; ; attempt++ {
		t.snap.reset()
		t.s.TxBegin()
		err := fn()
		if err == nil {
			if !t.s.InTx() {
				// fn aborted explicitly but returned nil; treat as conflict.
				err = core.ErrTxAborted
			} else {
				err = t.commitStamped()
				if err == nil {
					return nil
				}
			}
		} else if t.s.InTx() {
			t.s.TxAbort()
		}
		if !errors.Is(err, core.ErrTxAborted) {
			return err
		}
		t.bo.wait(attempt)
	}
}

// commitStamped draws the commit timestamp — after fn installed every node,
// before TxEnd's InPrep→InProg transition, which is what keeps timestamp
// order consistent with conflict order (see snapshot.go) — commits, and on
// success publishes the buffered writes under that timestamp. Read-only
// transactions buffer nothing and skip the draw entirely.
func (t *sessionTx) commitStamped() error {
	if len(t.snap.pending) == 0 {
		return t.s.TxEnd()
	}
	ts := t.snap.tier.beginCommit(t.snap.slot)
	err := t.s.TxEnd()
	if err == nil {
		t.snap.publishAll(ts)
	} else {
		t.snap.reset()
	}
	t.snap.tier.endCommit(t.snap.slot)
	return err
}

// SnapshotRead implements SnapshotReader: fn runs against the tier's sealed
// cut, validation-free. Illegal inside an open transaction (the snapshot
// would not see the transaction's own writes).
func (t *sessionTx) SnapshotRead(fn func()) bool {
	if !t.snap.enabled() {
		return false
	}
	if t.s.InTx() {
		panic("txengine: SnapshotRead inside an open transaction")
	}
	rt, stale := t.snap.tier.beginSnapshot(t.snap.slot)
	t.snap.rt = rt
	defer func() {
		t.snap.rt = 0
		t.snap.tier.endSnapshot(t.snap.slot)
	}()
	fn()
	t.ct.countSnapshot(stale)
	return true
}

// SnapshotReadBatch implements SnapshotBatchReader: one pinned cut serves n
// read-only closures, each its own logical snapshot transaction, with the
// pin/seal/GC-floor bookkeeping paid once for the batch.
func (t *sessionTx) SnapshotReadBatch(n int, each func(int, uint64)) (uint64, bool) {
	if !t.snap.enabled() {
		return 0, false
	}
	if t.s.InTx() {
		panic("txengine: SnapshotReadBatch inside an open transaction")
	}
	rt, stale := t.snap.tier.beginSnapshot(t.snap.slot)
	t.snap.rt = rt
	defer func() {
		t.snap.rt = 0
		t.snap.tier.endSnapshot(t.snap.slot)
	}()
	for i := 0; i < n; i++ {
		each(i, rt)
	}
	t.ct.countSnapshotN(stale, uint64(n))
	return rt, true
}

// snapAgent / snapBuffering implement the snapTxn seam for snapMap: writes
// are buffered whenever a transaction is open on the session.
func (t *sessionTx) snapAgent() *snapAgent { return &t.snap }
func (t *sessionTx) snapBuffering() bool   { return t.s.InTx() }

// beginManual / commitManual / abortManual implement manualTx: the sharded
// decorator drives the session's transaction scope explicitly so that one
// logical transaction can hold open sub-transactions on several shards'
// TxManagers at once.
var _ manualTx = (*sessionTx)(nil)

func (t *sessionTx) beginManual() { t.s.TxBegin() }

func (t *sessionTx) commitManual() error { return t.s.TxEnd() }

func (t *sessionTx) abortManual() {
	if t.s.InTx() {
		t.s.TxAbort()
	}
}

// coreSession implements the sharded decorator's sessionProvider seam: the
// underlying core session, through which the latched cross-shard path links
// per-shard sub-transactions into one shared-fate core.TxGroup.
func (t *sessionTx) coreSession() *core.Session { return t.s }

// pinnedEpoch implements the sharded decorator's epochPinned seam: the
// epoch the open manual transaction is pinned to, or 0 on transient bases.
// The cross-shard commit coordinator compares it across shards to guarantee
// every sub-commit sits in the same epoch cut before committing any.
func (t *sessionTx) pinnedEpoch() uint64 { return montage.PinnedEpoch(t.s) }

func (t *sessionTx) RunRead(fn func()) {
	_ = t.Run(func() error { fn(); return nil })
}

func (t *sessionTx) NoTx(fn func()) { fn() }

func (t *sessionTx) Abort() error {
	if t.s.InTx() {
		t.s.TxAbort()
	}
	return ErrBusinessAbort
}

// txmapAdapter lifts any session-based txmap.Map (the Medley structures and
// the montage persistent maps) to an engine Map.
type txmapAdapter[V any] struct{ m txmap.Map[V] }

func (a txmapAdapter[V]) Get(tx Tx, k uint64) (V, bool) { return a.m.Get(tx.(*sessionTx).s, k) }
func (a txmapAdapter[V]) Put(tx Tx, k uint64, v V) (V, bool) {
	return a.m.Put(tx.(*sessionTx).s, k, v)
}
func (a txmapAdapter[V]) Insert(tx Tx, k uint64, v V) bool {
	return a.m.Insert(tx.(*sessionTx).s, k, v)
}
func (a txmapAdapter[V]) Remove(tx Tx, k uint64) (V, bool) { return a.m.Remove(tx.(*sessionTx).s, k) }

// msQueueAdapter lifts the session-based M&S queue to an engine Queue.
// Queues carry no version chains, so queue operations inside a snapshot
// panic like writes do.
type msQueueAdapter struct{ q *msqueue.Queue[uint64] }

func (a msQueueAdapter) Enqueue(tx Tx, v uint64) {
	t := tx.(*sessionTx)
	if t.snap.rt != 0 {
		panic("txengine: queue operation inside SnapshotRead (queues are unversioned)")
	}
	a.q.Enqueue(t.s, v)
}
func (a msQueueAdapter) Dequeue(tx Tx) (uint64, bool) {
	t := tx.(*sessionTx)
	if t.snap.rt != 0 {
		panic("txengine: queue operation inside SnapshotRead (queues are unversioned)")
	}
	return a.q.Dequeue(t.s)
}
