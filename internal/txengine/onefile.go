package txengine

import (
	"fmt"

	"medley/internal/montage"
	"medley/internal/onefile"
	"medley/internal/pnvm"
)

const onefileCaps = CapTx | CapDynamicTx | CapHashMap | CapSkipMap | CapRowMaps

// onefileEngine drives OneFile-lite: writers serialized through one global
// sequence, optimistic readers. The persistent variant (POneFile) persists
// eagerly on the critical path; its uint64 maps (and row maps given a
// Config.RowCodec) stage real payload records, so POneFile state is
// recoverable after a crash. There is no uninstrumented mode — NoTx
// delegates to Run, as the baseline did in the paper's harness.
type onefileEngine struct {
	name  string
	st    *onefile.STM
	codec montage.Codec[any]
	ct    counters
}

func newOneFileEngine(Config) (Engine, error) {
	return &onefileEngine{name: "OneFile", st: onefile.New()}, nil
}

func newPOneFileEngine(cfg Config) (Engine, error) {
	if len(cfg.Devices) > 1 {
		return nil, fmt.Errorf("txengine: ponefile is single-device (got %d devices)", len(cfg.Devices))
	}
	var dev *pnvm.Device
	if len(cfg.Devices) == 1 {
		dev = cfg.Devices[0]
	} else {
		dev = pnvm.New(cfg.Latencies)
	}
	return &onefileEngine{name: "POneFile", st: onefile.NewPersistent(dev), codec: cfg.RowCodec}, nil
}

func (e *onefileEngine) Name() string { return e.name }
func (e *onefileEngine) Caps() Caps   { return onefileCaps }
func (e *onefileEngine) Stats() Stats { return e.ct.snapshot() }
func (e *onefileEngine) Close()       {}

// Devices implements Persister (nil for transient OneFile).
func (e *onefileEngine) Devices() []*pnvm.Device {
	if d := e.st.Device(); d != nil {
		return []*pnvm.Device{d}
	}
	return nil
}

// Sync implements Persister: POneFile persists eagerly, so everything
// committed is already durable.
func (e *onefileEngine) Sync() {}

// RecoverUintMap implements Persister: rebuilds a map from the surviving
// payload records of this engine's one device's post-crash dump. The dump
// is reduced under the redo-log commit rule (onefile.LiveKV): only
// transactions whose commit record survived are replayed, so a crash inside
// a WriteTx persistence window recovers all of that transaction or none.
// Reanchor scrubs the torn remainder off the media and resumes the commit
// serial before the rebuilt state is re-put (in one transaction, under one
// fresh commit record).
func (e *onefileEngine) RecoverUintMap(dumps [][]pnvm.Record, spec MapSpec) (Map[uint64], error) {
	if e.st.Device() == nil {
		return nil, fmt.Errorf("txengine: %s is transient: %w", e.name, ErrUnsupported)
	}
	if len(dumps) != 1 {
		// A foreign device's dump would merge unrelated state silently.
		return nil, fmt.Errorf("txengine: %s recovery wants exactly one dump for its one device: got %d", e.name, len(dumps))
	}
	e.st.Reanchor(dumps[0])
	m, err := e.NewUintMap(spec)
	if err != nil {
		return nil, err
	}
	u64 := montage.Uint64Codec()
	tx := e.NewWorker(-1)
	kv := onefile.LiveKV(dumps[0])
	err = tx.Run(func() error {
		for k, vb := range kv {
			m.Put(tx, k, u64.Dec(vb))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

func (e *onefileEngine) NewUintMap(spec MapSpec) (Map[uint64], error) {
	var stage func(k uint64, v uint64, del bool)
	if e.st.Device() != nil {
		u64 := montage.Uint64Codec()
		sid := e.st.NewPersistSID()
		stage = func(k uint64, v uint64, del bool) {
			if del {
				e.st.StagePersist(sid, k, nil)
				return
			}
			e.st.StagePersist(sid, k, u64.Enc(v))
		}
	}
	if spec.Kind == KindHash {
		h := onefile.NewHash[uint64](e.st, bucketsOr(spec, 1<<16))
		return ofMap[uint64]{get: h.Get, put: h.Put, ins: h.Insert, rem: h.Remove, stage: stage}, nil
	}
	sl := onefile.NewSkipList[uint64](e.st)
	return ofMap[uint64]{get: sl.Get, put: sl.Put, ins: sl.Insert, rem: sl.Remove, stage: stage}, nil
}

func (e *onefileEngine) NewRowMap(spec MapSpec) (Map[any], error) {
	var stage func(k uint64, v any, del bool)
	if e.st.Device() != nil && e.codec.Enc != nil {
		sid := e.st.NewPersistSID()
		stage = func(k uint64, v any, del bool) {
			if del {
				e.st.StagePersist(sid, k, nil)
				return
			}
			e.st.StagePersist(sid, k, e.codec.Enc(v))
		}
	}
	if spec.Kind == KindHash {
		h := onefile.NewHash[any](e.st, bucketsOr(spec, 1<<16))
		return ofMap[any]{get: h.Get, put: h.Put, ins: h.Insert, rem: h.Remove, stage: stage}, nil
	}
	sl := onefile.NewSkipList[any](e.st)
	return ofMap[any]{get: sl.Get, put: sl.Put, ins: sl.Insert, rem: sl.Remove, stage: stage}, nil
}

func (e *onefileEngine) NewUintQueue() (Queue[uint64], error) { return nil, ErrUnsupported }

func (e *onefileEngine) NewWorker(int) Tx { return &onefileTx{st: e.st, ct: &e.ct} }

// onefileTx routes Run through the STM's serialized write path and RunRead
// through its optimistic sequence-validated read path. inTx/inRead track
// whether the worker is inside one of them, so standalone operations can
// auto-wrap themselves: mutators must hold the writer lock to log undo
// entries, and reads must seq-validate or they could observe uncommitted
// writes of an in-flight write transaction.
type onefileTx struct {
	st     *onefile.STM
	ct     *counters
	inTx   bool
	inRead bool
}

func (t *onefileTx) Run(fn func() error) error {
	t.inTx = true
	defer func() { t.inTx = false }()
	return t.ct.countRun(t.st.WriteTx, fn)
}

func (t *onefileTx) RunRead(fn func()) {
	t.inRead = true
	defer func() { t.inRead = false }()
	t.ct.countRead(t.st.ReadTx, fn)
}

func (t *onefileTx) NoTx(fn func()) {
	t.ct.fallbacks.Add(1)
	_ = t.Run(func() error { fn(); return nil })
}
func (t *onefileTx) Abort() error { return ErrBusinessAbort }

// ofMap adapts one OneFile structure (hash or skiplist; both carry their
// STM internally). Operations called outside Run/RunRead wrap themselves in
// the appropriate transaction. Mutators of persistent maps stage payload
// records (see onefile.StagePersist) alongside the DRAM mutation.
type ofMap[V any] struct {
	get   func(uint64) (V, bool)
	put   func(uint64, V) (V, bool)
	ins   func(uint64, V) bool
	rem   func(uint64) (V, bool)
	stage func(k uint64, v V, del bool) // nil: transient
}

func (m ofMap[V]) Get(tx Tx, k uint64) (v V, ok bool) {
	t := tx.(*onefileTx)
	if t.inTx || t.inRead {
		return m.get(k)
	}
	t.RunRead(func() { v, ok = m.get(k) })
	return v, ok
}

// mutable rejects mutation inside RunRead: the optimistic read loop would
// re-execute fn — and re-apply the write — on every snapshot retry.
func (t *onefileTx) mutable() {
	if t.inRead {
		panic("txengine: OneFile map mutation inside RunRead")
	}
}

func (m ofMap[V]) Put(tx Tx, k uint64, v V) (old V, had bool) {
	t := tx.(*onefileTx)
	t.mutable()
	if t.inTx {
		old, had = m.put(k, v)
		if m.stage != nil {
			m.stage(k, v, false)
		}
		return old, had
	}
	_ = t.Run(func() error { old, had = m.Put(tx, k, v); return nil })
	return old, had
}

func (m ofMap[V]) Insert(tx Tx, k uint64, v V) (ok bool) {
	t := tx.(*onefileTx)
	t.mutable()
	if t.inTx {
		ok = m.ins(k, v)
		if ok && m.stage != nil {
			m.stage(k, v, false)
		}
		return ok
	}
	_ = t.Run(func() error { ok = m.Insert(tx, k, v); return nil })
	return ok
}

func (m ofMap[V]) Remove(tx Tx, k uint64) (old V, had bool) {
	t := tx.(*onefileTx)
	t.mutable()
	if t.inTx {
		old, had = m.rem(k)
		if had && m.stage != nil {
			var zero V
			m.stage(k, zero, true)
		}
		return old, had
	}
	_ = t.Run(func() error { old, had = m.Remove(tx, k); return nil })
	return old, had
}
