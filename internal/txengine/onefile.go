package txengine

import (
	"medley/internal/onefile"
	"medley/internal/pnvm"
)

const onefileCaps = CapTx | CapDynamicTx | CapHashMap | CapSkipMap | CapRowMaps

// onefileEngine drives OneFile-lite: writers serialized through one global
// sequence, optimistic readers. The persistent variant (POneFile) persists
// eagerly on the critical path. There is no uninstrumented mode — NoTx
// delegates to Run, as the baseline did in the paper's harness.
type onefileEngine struct {
	name string
	st   *onefile.STM
}

func newOneFileEngine(Config) (Engine, error) {
	return &onefileEngine{name: "OneFile", st: onefile.New()}, nil
}

func newPOneFileEngine(cfg Config) (Engine, error) {
	return &onefileEngine{name: "POneFile", st: onefile.NewPersistent(pnvm.New(cfg.Latencies))}, nil
}

func (e *onefileEngine) Name() string { return e.name }
func (e *onefileEngine) Caps() Caps   { return onefileCaps }
func (e *onefileEngine) Close()       {}

func (e *onefileEngine) NewUintMap(spec MapSpec) (Map[uint64], error) {
	if spec.Kind == KindHash {
		h := onefile.NewHash[uint64](e.st, bucketsOr(spec, 1<<16))
		return ofMap[uint64]{get: h.Get, put: h.Put, ins: h.Insert, rem: h.Remove}, nil
	}
	sl := onefile.NewSkipList[uint64](e.st)
	return ofMap[uint64]{get: sl.Get, put: sl.Put, ins: sl.Insert, rem: sl.Remove}, nil
}

func (e *onefileEngine) NewRowMap(spec MapSpec) (Map[any], error) {
	if spec.Kind == KindHash {
		h := onefile.NewHash[any](e.st, bucketsOr(spec, 1<<16))
		return ofMap[any]{get: h.Get, put: h.Put, ins: h.Insert, rem: h.Remove}, nil
	}
	sl := onefile.NewSkipList[any](e.st)
	return ofMap[any]{get: sl.Get, put: sl.Put, ins: sl.Insert, rem: sl.Remove}, nil
}

func (e *onefileEngine) NewWorker(int) Tx { return &onefileTx{st: e.st} }

// onefileTx routes Run through the STM's serialized write path and RunRead
// through its optimistic sequence-validated read path. inTx/inRead track
// whether the worker is inside one of them, so standalone operations can
// auto-wrap themselves: mutators must hold the writer lock to log undo
// entries, and reads must seq-validate or they could observe uncommitted
// writes of an in-flight write transaction.
type onefileTx struct {
	st     *onefile.STM
	inTx   bool
	inRead bool
}

func (t *onefileTx) Run(fn func() error) error {
	t.inTx = true
	defer func() { t.inTx = false }()
	return t.st.WriteTx(fn)
}

func (t *onefileTx) RunRead(fn func()) {
	t.inRead = true
	defer func() { t.inRead = false }()
	t.st.ReadTx(fn)
}

func (t *onefileTx) NoTx(fn func()) { _ = t.Run(func() error { fn(); return nil }) }
func (t *onefileTx) Abort() error   { return ErrBusinessAbort }

// ofMap adapts one OneFile structure (hash or skiplist; both carry their
// STM internally). Operations called outside Run/RunRead wrap themselves in
// the appropriate transaction.
type ofMap[V any] struct {
	get func(uint64) (V, bool)
	put func(uint64, V) (V, bool)
	ins func(uint64, V) bool
	rem func(uint64) (V, bool)
}

func (m ofMap[V]) Get(tx Tx, k uint64) (v V, ok bool) {
	t := tx.(*onefileTx)
	if t.inTx || t.inRead {
		return m.get(k)
	}
	t.RunRead(func() { v, ok = m.get(k) })
	return v, ok
}

// mutable rejects mutation inside RunRead: the optimistic read loop would
// re-execute fn — and re-apply the write — on every snapshot retry.
func (t *onefileTx) mutable() {
	if t.inRead {
		panic("txengine: OneFile map mutation inside RunRead")
	}
}

func (m ofMap[V]) Put(tx Tx, k uint64, v V) (old V, had bool) {
	t := tx.(*onefileTx)
	t.mutable()
	if t.inTx {
		return m.put(k, v)
	}
	_ = t.Run(func() error { old, had = m.put(k, v); return nil })
	return old, had
}

func (m ofMap[V]) Insert(tx Tx, k uint64, v V) (ok bool) {
	t := tx.(*onefileTx)
	t.mutable()
	if t.inTx {
		return m.ins(k, v)
	}
	_ = t.Run(func() error { ok = m.ins(k, v); return nil })
	return ok
}

func (m ofMap[V]) Remove(tx Tx, k uint64) (old V, had bool) {
	t := tx.(*onefileTx)
	t.mutable()
	if t.inTx {
		return m.rem(k)
	}
	_ = t.Run(func() error { old, had = m.rem(k); return nil })
	return old, had
}
