package txengine

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"sync"
	"testing"
)

// TestShardedRegistryAndKnob pins the sharded registry entries and the
// Config.Shards knob: shard count honored, display name reflecting it, caps
// mirroring the base, and keys actually spreading across shards.
func TestShardedRegistryAndKnob(t *testing.T) {
	for _, key := range []string{"medley-sharded", "original-sharded"} {
		if _, ok := Lookup(key); !ok {
			t.Fatalf("registry missing %q (have %v)", key, Names())
		}
	}
	b, _ := Lookup("medley-sharded")
	if base, _ := Lookup("medley"); b.Caps != base.Caps {
		t.Errorf("medley-sharded caps %b != medley caps %b", b.Caps, base.Caps)
	}

	for _, shards := range []int{1, 2, 8} {
		eng, err := b.New(Config{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		se := eng.(*shardedEngine)
		if se.NumShards() != shards {
			t.Errorf("Shards=%d built %d shards", shards, se.NumShards())
		}
		if !strings.Contains(eng.Name(), fmt.Sprintf("sh%d", shards)) {
			t.Errorf("Shards=%d name %q does not carry the shard count", shards, eng.Name())
		}
		eng.Close()
	}

	// Default shard count when the knob is unset.
	eng, err := b.New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if n := eng.(*shardedEngine).NumShards(); n != DefaultShards {
		t.Errorf("unset Shards built %d shards, want DefaultShards=%d", n, DefaultShards)
	}
	eng.Close()
}

// TestShardedRouting checks the hash routing: sequential keys must spread
// over every shard, and the same key must always land on the same shard.
func TestShardedRouting(t *testing.T) {
	eng, err := Build("medley-sharded", Config{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	se := eng.(*shardedEngine)
	hit := make([]int, 8)
	for k := uint64(0); k < 4096; k++ {
		s := se.shardOf(k)
		if s != se.shardOf(k) {
			t.Fatal("routing not deterministic")
		}
		hit[s]++
	}
	for s, n := range hit {
		// A uniform spread puts 512 keys per shard; demand at least a
		// quarter of that so gross skew fails loudly.
		if n < 128 {
			t.Errorf("shard %d got %d/4096 sequential keys (want a roughly uniform spread)", s, n)
		}
	}

	// Routed data round-trips: values written under one worker are visible
	// to another for every key, i.e. both route identically.
	m, err := eng.NewUintMap(MapSpec{Kind: KindHash, Buckets: 1024})
	if err != nil {
		t.Fatal(err)
	}
	w1, w2 := eng.NewWorker(0), eng.NewWorker(1)
	for k := uint64(0); k < 512; k++ {
		m.Insert(w1, k, k*7)
	}
	for k := uint64(0); k < 512; k++ {
		if v, ok := m.Get(w2, k); !ok || v != k*7 {
			t.Fatalf("key %d: got %d,%v want %d,true", k, v, ok, k*7)
		}
	}
}

// TestShardedCrossShardTransfer is the dedicated cross-shard atomicity
// test: at shard counts 1, 2, and 8, concurrent workers move value between
// two maps (accounts deliberately spread over every shard) while readers
// audit account pairs transactionally; the per-pair invariant must hold on
// every committed read and the total must be conserved at the end.
func TestShardedCrossShardTransfer(t *testing.T) {
	const (
		accounts = 32
		perAcct  = 1000
		workers  = 4
		iters    = 300
	)
	for _, shards := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			eng, err := Build("medley-sharded", Config{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			checking, err := eng.NewUintMap(MapSpec{Kind: KindHash, Buckets: 256})
			if err != nil {
				t.Fatal(err)
			}
			savings, err := eng.NewUintMap(MapSpec{Kind: KindHash, Buckets: 256})
			if err != nil {
				t.Fatal(err)
			}
			init := eng.NewWorker(0)
			for a := uint64(0); a < accounts; a++ {
				checking.Put(init, a, perAcct)
				savings.Put(init, a, perAcct)
			}

			violation := make(chan string, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					tx := eng.NewWorker(1 + id)
					rng := rand.New(rand.NewPCG(uint64(id)+1, uint64(shards)))
					for i := 0; i < iters; i++ {
						from := rng.Uint64N(accounts)
						to := rng.Uint64N(accounts)
						if i%5 == 4 {
							// Read-only cross-map pair probe interleaved with
							// the transfers: it exercises the (often
							// cross-shard) read-only commit path; the actual
							// conservation invariant is asserted by the
							// whole-ledger auditors below, since per-account
							// pair sums are not preserved by from!=to moves.
							if err := tx.Run(func() error {
								checking.Get(tx, from)
								savings.Get(tx, to)
								return nil
							}); err != nil {
								t.Errorf("read probe: %v", err)
								return
							}
							continue
						}
						// Move value checking[from] -> savings[to] atomically.
						err := tx.Run(func() error {
							c, ok := checking.Get(tx, from)
							if !ok {
								return nil
							}
							amt := uint64(rng.IntN(50) + 1)
							if amt > c {
								amt = c
							}
							s, _ := savings.Get(tx, to)
							checking.Put(tx, from, c-amt)
							savings.Put(tx, to, s+amt)
							return nil
						})
						if err != nil {
							t.Errorf("transfer: %v", err)
							return
						}
					}
				}(w)
			}
			// Concurrent whole-ledger auditors: a transactional sweep of all
			// accounts must always see the grand total conserved.
			stop := make(chan struct{})
			var rwg sync.WaitGroup
			for r := 0; r < 2; r++ {
				rwg.Add(1)
				go func(id int) {
					defer rwg.Done()
					tx := eng.NewWorker(100 + id)
					for {
						select {
						case <-stop:
							return
						default:
						}
						sum := uint64(0)
						err := tx.Run(func() error {
							sum = 0
							for a := uint64(0); a < accounts; a++ {
								c, _ := checking.Get(tx, a)
								s, _ := savings.Get(tx, a)
								sum += c + s
							}
							return nil
						})
						if err == nil && sum != 2*accounts*perAcct {
							select {
							case violation <- fmt.Sprintf("auditor %d: committed sweep sums %d, want %d", id, sum, 2*accounts*perAcct):
							default:
							}
						}
					}
				}(r)
			}
			wg.Wait()
			close(stop)
			rwg.Wait()
			select {
			case v := <-violation:
				t.Fatalf("cross-shard atomicity violation: %s", v)
			default:
			}

			final := eng.NewWorker(999)
			sum := uint64(0)
			for a := uint64(0); a < accounts; a++ {
				c, _ := checking.Get(final, a)
				s, _ := savings.Get(final, a)
				sum += c + s
			}
			if want := uint64(2 * accounts * perAcct); sum != want {
				t.Fatalf("final sum %d != %d: a cross-shard transfer tore", sum, want)
			}
		})
	}
}

// TestShardedQueueComposition: queue+map transactions must stay atomic even
// though the queue lives on one home shard and the map entries route
// elsewhere — the sharded version of the workqueue claim contract.
func TestShardedQueueComposition(t *testing.T) {
	const (
		producers = 2
		consumers = 2
		perWorker = 250
	)
	eng, err := Build("medley-sharded", Config{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	q, err := eng.NewUintQueue()
	if err != nil {
		t.Fatal(err)
	}
	states, err := eng.NewUintMap(MapSpec{Kind: KindHash, Buckets: 256})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	torn := make(chan string, consumers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tx := eng.NewWorker(id)
			for i := 0; i < perWorker; i++ {
				j := uint64(id+1)<<32 | uint64(i)
				if err := tx.Run(func() error {
					q.Enqueue(tx, j)
					states.Insert(tx, j, 0)
					return nil
				}); err != nil {
					t.Errorf("produce: %v", err)
					return
				}
			}
		}(p)
	}
	var claimed [consumers]int
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tx := eng.NewWorker(10 + id)
			for i := 0; i < perWorker; i++ {
				var j uint64
				var got, known bool
				if err := tx.Run(func() error {
					j, got = q.Dequeue(tx)
					if !got {
						return nil
					}
					_, known = states.Get(tx, j)
					states.Put(tx, j, uint64(id)+1)
					return nil
				}); err != nil {
					t.Errorf("consume: %v", err)
					return
				}
				if got {
					claimed[id]++
					if !known {
						select {
						case torn <- fmt.Sprintf("consumer %d dequeued job %d before its state registration", id, j):
						default:
						}
					}
				}
			}
		}(c)
	}
	wg.Wait()
	select {
	case v := <-torn:
		t.Fatalf("queue+map composition torn: %s", v)
	default:
	}
	total := 0
	for _, n := range claimed {
		total += n
	}
	if total == 0 {
		t.Fatal("consumers claimed nothing")
	}
	// Drain: every leftover job must still be registered pending.
	audit := eng.NewWorker(99)
	for {
		j, ok := q.Dequeue(audit)
		if !ok {
			break
		}
		if st, known := states.Get(audit, j); !known || st != 0 {
			t.Fatalf("leftover job %d has state %d,%v; want 0,true", j, st, known)
		}
		total++
	}
	if total != producers*perWorker {
		t.Fatalf("claimed+leftover = %d, want %d (jobs lost or duplicated)", total, producers*perWorker)
	}
}
