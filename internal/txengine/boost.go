package txengine

import (
	"medley/internal/boost"
	"medley/internal/core"
)

const boostCaps = CapTx | CapDynamicTx | CapNoTx | CapHashMap | CapRowMaps

// boostEngine wires transactional boosting (internal/boost) into the
// registry: lock-based maps made transactional by semantic per-key locks
// plus logged inverse operations, composed over Medley sessions. Blocking,
// unlike the other engines — a semantic-lock conflict aborts and retries
// the acquirer.
type boostEngine struct {
	mgr    *core.TxManager
	shards int
	ct     counters
}

func newBoostEngine(cfg Config) (Engine, error) {
	shards := cfg.LockShards
	if shards <= 0 {
		shards = 1024
	}
	return &boostEngine{mgr: core.NewTxManager(), shards: shards}, nil
}

func (e *boostEngine) Name() string { return "Boost" }
func (e *boostEngine) Caps() Caps   { return boostCaps }
func (e *boostEngine) Stats() Stats { return e.ct.snapshot() }
func (e *boostEngine) Close()       {}

// NewUintQueue is unsupported: queue operations have no inverse, which is
// precisely the boosting limitation the paper leads with.
func (e *boostEngine) NewUintQueue() (Queue[uint64], error) { return nil, ErrUnsupported }

// lockShards derives a map's lock-shard count from the spec's sizing hint.
// Shards only bound the lock-table map sizes — every key already has its
// own logical lock — so a keyspace-sized hint (bench passes the full
// keyspace as Buckets) is capped rather than allocating millions of
// mutexes per construction.
func (e *boostEngine) lockShards(spec MapSpec) int {
	shards := bucketsOr(spec, e.shards)
	if shards > 1<<16 {
		shards = 1 << 16
	}
	return shards
}

func (e *boostEngine) NewUintMap(spec MapSpec) (Map[uint64], error) {
	if spec.Kind == KindSkip {
		return nil, ErrUnsupported // BoostedMap is unordered
	}
	return boostMap[uint64]{m: boost.NewMap[uint64](e.lockShards(spec))}, nil
}

func (e *boostEngine) NewRowMap(spec MapSpec) (Map[any], error) {
	if spec.Kind == KindSkip {
		return nil, ErrUnsupported
	}
	return boostMap[any]{m: boost.NewMap[any](e.lockShards(spec))}, nil
}

func (e *boostEngine) NewWorker(int) Tx { return &boostTx{s: e.mgr.Session(), ct: &e.ct} }

// boostTx layers attempt state over a Medley session. A semantic-lock
// conflict aborts the session's transaction immediately (boost.Do calls
// TxAbort), after which the remaining operations of fn must become no-ops —
// the session is outside a transaction and raw boosted calls would apply
// non-transactionally — and the whole attempt must be retried with fresh
// reads, whatever fn returned: any error it derived from the doomed
// attempt's reads is meaningless. A deliberate Abort also dooms the rest of
// the attempt but is never retried.
type boostTx struct {
	s          *core.Session
	ct         *counters
	doomed     bool // current attempt is dead; remaining map ops no-op
	conflicted bool // doomed by a semantic-lock conflict: retry
}

func (t *boostTx) Run(fn func() error) error {
	err := t.ct.countRun(t.s.Run, func() error {
		t.doomed, t.conflicted = false, false
		err := fn()
		if t.conflicted {
			return core.ErrTxAborted // lock conflict: retry with fresh reads
		}
		return err
	})
	// Leave the handle clean for standalone operations after a business
	// abort ended the last attempt with doomed still set.
	t.doomed, t.conflicted = false, false
	return err
}

func (t *boostTx) RunRead(fn func()) { _ = t.Run(func() error { fn(); return nil }) }
func (t *boostTx) NoTx(fn func())    { fn() }

func (t *boostTx) Abort() error {
	if t.s.InTx() {
		t.s.TxAbort()
	}
	t.doomed = true
	return ErrBusinessAbort
}

// conflict marks the current attempt doomed by a semantic-lock conflict.
func (t *boostTx) conflict() {
	t.doomed = true
	t.conflicted = true
}

type boostMap[V any] struct{ m *boost.BoostedMap[V] }

func (a boostMap[V]) Get(tx Tx, k uint64) (V, bool) {
	t := tx.(*boostTx)
	if t.doomed {
		var zero V
		return zero, false
	}
	v, ok, err := a.m.Get(t.s, k)
	if err != nil {
		t.conflict()
		var zero V
		return zero, false
	}
	return v, ok
}

func (a boostMap[V]) Put(tx Tx, k uint64, v V) (V, bool) {
	t := tx.(*boostTx)
	if t.doomed {
		var zero V
		return zero, false
	}
	old, had, err := a.m.Upsert(t.s, k, v)
	if err != nil {
		t.conflict()
		var zero V
		return zero, false
	}
	return old, had
}

func (a boostMap[V]) Insert(tx Tx, k uint64, v V) bool {
	t := tx.(*boostTx)
	if t.doomed {
		return false
	}
	ok, err := a.m.InsertIfAbsent(t.s, k, v)
	if err != nil {
		t.conflict()
		return false
	}
	return ok
}

func (a boostMap[V]) Remove(tx Tx, k uint64) (V, bool) {
	t := tx.(*boostTx)
	if t.doomed {
		var zero V
		return zero, false
	}
	old, had, err := a.m.Remove(t.s, k)
	if err != nil {
		t.conflict()
		var zero V
		return zero, false
	}
	return old, had
}
