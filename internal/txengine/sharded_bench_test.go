package txengine

// Hot-path microbenchmarks for the sharded runtime: key routing, the
// single-shard commit fast path, cross-shard commits via discovery, hints
// (now the latched path) and their whole-shard-locked control, the latch
// table itself, and the footprint cache's hit and miss paths.
// scripts/bench.sh runs the suite and emits BENCH_6.json; CI runs it at
// -benchtime=1x so the benches always compile and execute.

import (
	"runtime"
	"sync"
	"testing"
)

const benchShards = 8

func benchEngine(b *testing.B) (*shardedEngine, Map[uint64], Map[uint64], *shardedTx) {
	return benchEngineCfg(b, Config{Shards: benchShards})
}

func benchEngineCfg(b *testing.B, cfg Config) (*shardedEngine, Map[uint64], Map[uint64], *shardedTx) {
	b.Helper()
	eng, err := Build("medley-sharded", cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(eng.Close)
	m1, err := eng.NewUintMap(MapSpec{Kind: KindHash, Buckets: 1 << 10})
	if err != nil {
		b.Fatal(err)
	}
	m2, err := eng.NewUintMap(MapSpec{Kind: KindHash, Buckets: 1 << 10})
	if err != nil {
		b.Fatal(err)
	}
	se := eng.(*shardedEngine)
	tx := eng.NewWorker(0).(*shardedTx)
	return se, m1, m2, tx
}

// BenchmarkShardRouteHash measures the raw hash route (Fibonacci hash +
// multiply-high range reduction), rotating keys so the handle memo never
// applies.
func BenchmarkShardRouteHash(b *testing.B) {
	se, _, _, _ := benchEngine(b)
	acc := 0
	for i := 0; b.N > i; i++ {
		acc += se.shardOf(uint64(i))
	}
	sinkInt = acc
}

// BenchmarkShardRouteMemo measures the handle-local route memo on a
// repeated key — the Get-then-Put-same-key pattern inside one transaction.
func BenchmarkShardRouteMemo(b *testing.B) {
	_, _, _, tx := benchEngine(b)
	acc := 0
	for i := 0; b.N > i; i++ {
		acc += tx.routeOf(12345)
	}
	sinkInt = acc
}

// BenchmarkSingleShardCommit measures the single-shard transaction fast
// path: one read-modify-write on one key, committing without any
// cross-shard machinery.
func BenchmarkSingleShardCommit(b *testing.B) {
	_, m1, _, tx := benchEngine(b)
	m1.Put(tx, 7, 1)
	b.ResetTimer()
	for i := 0; b.N > i; i++ {
		_ = tx.Run(func() error {
			v, _ := m1.Get(tx, 7)
			m1.Put(tx, 7, v+1)
			return nil
		})
	}
}

// BenchmarkCrossShardCommitDiscovery measures the unpredicted cross-shard
// path: the transaction discovers its second shard by restart every time.
// Alternating between two key pairs with different footprints keeps the
// footprint cache below its confidence bar, so no Run is pre-declared.
func BenchmarkCrossShardCommitDiscovery(b *testing.B) {
	se, m1, m2, tx := benchEngine(b)
	keys := distinctShardKeys(b, se, 4, 0)
	for _, k := range keys {
		m1.Put(tx, k, 1<<40)
	}
	b.ResetTimer()
	for i := 0; b.N > i; i++ {
		from, to := keys[0], keys[1]
		if i&1 == 1 {
			from, to = keys[2], keys[3]
		}
		_ = tx.Run(func() error {
			v, _ := m1.Get(tx, from)
			m1.Put(tx, from, v-1)
			w, _ := m2.Get(tx, to)
			m2.Put(tx, to, w+1)
			return nil
		})
	}
}

// BenchmarkCrossShardCommitHinted measures the same cross-shard transaction
// with both keys pre-declared via HintKeys: locks acquired up front, no
// discovery restart.
func BenchmarkCrossShardCommitHinted(b *testing.B) {
	se, m1, m2, tx := benchEngine(b)
	keys := distinctShardKeys(b, se, 4, 0)
	for _, k := range keys {
		m1.Put(tx, k, 1<<40)
	}
	b.ResetTimer()
	for i := 0; b.N > i; i++ {
		from, to := keys[0], keys[1]
		if i&1 == 1 {
			from, to = keys[2], keys[3]
		}
		HintKeys(tx, from, to)
		_ = tx.Run(func() error {
			v, _ := m1.Get(tx, from)
			m1.Put(tx, from, v-1)
			w, _ := m2.Get(tx, to)
			m2.Put(tx, to, w+1)
			return nil
		})
	}
}

// BenchmarkCrossShardCommitHintedNoLatch is the whole-shard-locked control
// for BenchmarkCrossShardCommitHinted: same hinted transaction on an engine
// built with Config.NoLatch, so every cross-shard commit takes exclusive
// shard locks instead of key latches. The uncontended delta between the two
// is the latched path's overhead (group link + latch acquire/release); under
// contention the latched path wins by not serializing whole shards.
func BenchmarkCrossShardCommitHintedNoLatch(b *testing.B) {
	se, m1, m2, tx := benchEngineCfg(b, Config{Shards: benchShards, NoLatch: true})
	keys := distinctShardKeys(b, se, 4, 0)
	for _, k := range keys {
		m1.Put(tx, k, 1<<40)
	}
	b.ResetTimer()
	for i := 0; b.N > i; i++ {
		from, to := keys[0], keys[1]
		if i&1 == 1 {
			from, to = keys[2], keys[3]
		}
		HintKeys(tx, from, to)
		_ = tx.Run(func() error {
			v, _ := m1.Get(tx, from)
			m1.Put(tx, from, v-1)
			w, _ := m2.Get(tx, to)
			m2.Put(tx, to, w+1)
			return nil
		})
	}
}

// benchDisjointContended drives several goroutines through hinted
// cross-shard transfers whose key pairs are pairwise disjoint but all live
// on the same two shards — the shape key-granular latching exists for. Each
// body yields once mid-transaction so transactions genuinely overlap in
// time (on a host with fewer Ps than workers they otherwise run to
// completion back to back and nothing contends). Latched, the yielded-to
// workers proceed concurrently — no two ever touch a common key — and all
// eight stay in flight; shard-locked, whoever yields still holds both
// shards exclusively, so the others convoy behind the locks and the
// rotation degrades to one transaction at a time.
func benchDisjointContended(b *testing.B, noLatch bool) {
	const workers = 8
	se, m1, m2, init := benchEngineCfg(b, Config{Shards: benchShards, NoLatch: noLatch})
	var pairs [workers][2]uint64
	next := uint64(0)
	for g := range pairs {
		pairs[g][0] = keyOnShard(b, se, 0, next)
		pairs[g][1] = keyOnShard(b, se, 1, pairs[g][0]+1)
		next = pairs[g][1] + 1
		m1.Put(init, pairs[g][0], 1<<40)
	}
	var id int64
	var mu sync.Mutex
	b.SetParallelism(workers) // goroutines, not Ps: contention on a 1-P host too
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		mu.Lock()
		g := id % workers
		id++
		mu.Unlock()
		tx := se.NewWorker(int(g) + 1)
		from, to := pairs[g][0], pairs[g][1]
		for pb.Next() {
			HintKeys(tx, from, to)
			_ = tx.Run(func() error {
				v, _ := m1.Get(tx, from)
				m1.Put(tx, from, v-1)
				runtime.Gosched() // overlap: another worker's txn interleaves here
				w, _ := m2.Get(tx, to)
				m2.Put(tx, to, w+1)
				return nil
			})
		}
	})
}

// BenchmarkCrossShardDisjointContendedLatched: 8 workers, disjoint key
// pairs, one hot shard pair, key latches on.
func BenchmarkCrossShardDisjointContendedLatched(b *testing.B) {
	benchDisjointContended(b, false)
}

// BenchmarkCrossShardDisjointContendedNoLatch is the whole-shard-locked
// control of the same workload; the gap between the two is the latch
// layer's headline.
func BenchmarkCrossShardDisjointContendedNoLatch(b *testing.B) {
	benchDisjointContended(b, true)
}

// BenchmarkLatchAcquireRelease measures the uncontended latch hot path: a
// four-key sorted set acquired and released per iteration (the payment
// shape), all latches free — the cost a latched commit pays over a
// shard-locked one before any contention.
func BenchmarkLatchAcquireRelease(b *testing.B) {
	lt := newLatchTable()
	w := newLatchWaiter()
	keys := []uint64{3, 257, 1031, 8209}
	for i := 0; b.N > i; i++ {
		lt.acquireAll(keys, &w)
		lt.releaseAll(keys)
	}
}

// BenchmarkLatchContendedHandoff measures the wait/wake path: two
// goroutines hammer one hot key, so acquisitions constantly queue and
// ownership moves by direct FIFO handoff.
func BenchmarkLatchContendedHandoff(b *testing.B) {
	lt := newLatchTable()
	var wg sync.WaitGroup
	n := b.N
	b.ResetTimer()
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := newLatchWaiter()
			for i := 0; i < n; i++ {
				lt.acquire(42, &w)
				lt.release(42)
			}
		}()
	}
	wg.Wait()
}

// BenchmarkFootprintCacheHit measures a converged site: a stable key pair
// whose footprint the worker's cache predicts, so every measured Run
// acquires its shard set up front with no hint and no restart.
func BenchmarkFootprintCacheHit(b *testing.B) {
	se, m1, m2, tx := benchEngine(b)
	keys := distinctShardKeys(b, se, 2, 0)
	m1.Put(tx, keys[0], 1<<40)
	body := func() error {
		v, _ := m1.Get(tx, keys[0])
		m1.Put(tx, keys[0], v-1)
		w, _ := m2.Get(tx, keys[1])
		m2.Put(tx, keys[1], w+1)
		return nil
	}
	for i := 0; i < fpConfident+1; i++ {
		_ = tx.Run(body) // converge the cache
	}
	b.ResetTimer()
	for i := 0; b.N > i; i++ {
		_ = tx.Run(body)
	}
}

// BenchmarkFootprintCacheMissFallback measures the misprediction fallback:
// every Run pre-declares a wrong shard set (a stale hint) and pays the
// full miss path — rollback, restart seeded from the shards actually
// touched, discovery, commit.
func BenchmarkFootprintCacheMissFallback(b *testing.B) {
	se, m1, m2, tx := benchEngine(b)
	keys := distinctShardKeys(b, se, 4, 0)
	for _, k := range keys {
		m1.Put(tx, k, 1<<40)
	}
	b.ResetTimer()
	for i := 0; b.N > i; i++ {
		HintKeys(tx, keys[0], keys[1]) // stale: the body touches keys[2], keys[3]
		_ = tx.Run(func() error {
			v, _ := m1.Get(tx, keys[2])
			m1.Put(tx, keys[2], v-1)
			w, _ := m2.Get(tx, keys[3])
			m2.Put(tx, keys[3], w+1)
			return nil
		})
	}
}

// sinkInt defeats dead-code elimination in the routing benches.
var sinkInt int
