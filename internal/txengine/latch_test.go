package txengine

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// queued reports how many waiters are queued behind the current owner of k
// (0 when free or held uncontended). Test-only introspection under the
// bucket mutex.
func (lt *latchTable) queued(k uint64) int {
	b := lt.bucketOf(k)
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	if st := b.m[k]; st != nil {
		for w := st.head; w != nil; w = w.next {
			n++
		}
	}
	return n
}

// TestLatchAcquireRelease pins the uncontended protocol: a free latch is
// taken without waiting, release dissolves it (the state is recycled), and
// releasing an unheld latch panics.
func TestLatchAcquireRelease(t *testing.T) {
	lt := newLatchTable()
	w := newLatchWaiter()
	if lt.acquire(42, &w) {
		t.Error("uncontended acquire reported a wait")
	}
	// A different key in another bucket is independent.
	if lt.acquire(43, &w) {
		t.Error("second key acquire reported a wait")
	}
	lt.release(42)
	lt.release(43)
	// Re-acquire after release must again be wait-free.
	if waits := lt.acquireAll([]uint64{7, 42, 43}, &w); waits != 0 {
		t.Errorf("acquireAll on free latches waited %d times", waits)
	}
	lt.releaseAll([]uint64{7, 42, 43})

	defer func() {
		if recover() == nil {
			t.Error("release of an unheld latch did not panic")
		}
	}()
	lt.release(99)
}

// TestLatchFIFOHandoff pins the wake order: waiters queued behind a held
// latch are woken in exactly arrival order, by direct ownership handoff.
// Each goroutine is released into acquire only after the previous one is
// observably queued, so the arrival order is deterministic.
func TestLatchFIFOHandoff(t *testing.T) {
	const k, n = 17, 8
	lt := newLatchTable()
	owner := newLatchWaiter()
	lt.acquire(k, &owner)

	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := newLatchWaiter()
			lt.acquire(k, &w)
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			lt.release(k)
		}(i)
		// Wait until goroutine i is in the queue before admitting i+1.
		for deadline := time.Now().Add(5 * time.Second); lt.queued(k) != i+1; {
			if time.Now().After(deadline) {
				t.Fatalf("waiter %d never queued (queued=%d)", i, lt.queued(k))
			}
			time.Sleep(time.Microsecond)
		}
	}
	lt.release(k) // hand off to waiter 0; the chain drains in order
	wg.Wait()
	for i, id := range order {
		if id != i {
			t.Fatalf("wake order %v, want ascending arrival order", order)
		}
	}
	if lt.queued(k) != 0 {
		t.Error("latch still has waiters after the chain drained")
	}
	w := newLatchWaiter()
	if lt.acquire(k, &w) {
		t.Error("latch not free after the chain drained")
	}
	lt.release(k)
}

// TestLatchStressMutualExclusion hammers acquireAll/releaseAll from many
// goroutines with randomized overlapping key sets and asserts, per key, that
// at most one holder exists at a time and no acquisition is ever lost. Run
// under -race this is also the latch table's happens-before check; that the
// test finishes at all is the no-deadlock/no-lost-wakeup check.
func TestLatchStressMutualExclusion(t *testing.T) {
	const (
		keys    = 16 // tiny keyspace: constant overlap
		workers = 8
		iters   = 2000
	)
	lt := newLatchTable()
	var holders [keys]atomic.Int32
	var waits atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := newLatchWaiter()
			rng := rand.New(rand.NewPCG(uint64(id)+1, 0xabcd))
			var set []uint64
			for i := 0; i < iters; i++ {
				set = set[:0]
				for n := 1 + rng.IntN(4); n > 0; n-- {
					set = insertKey(set, rng.Uint64N(keys))
				}
				waits.Add(uint64(lt.acquireAll(set, &w)))
				for _, k := range set {
					if h := holders[k].Add(1); h != 1 {
						t.Errorf("key %d has %d concurrent holders", k, h)
					}
				}
				// Yield while holding so other workers pile onto the queues
				// even on a single-P host.
				runtime.Gosched()
				for _, k := range set {
					holders[k].Add(-1)
				}
				lt.releaseAll(set)
			}
		}(g)
	}
	wg.Wait()
	if waits.Load() == 0 {
		t.Error("stress run never contended; the test is not exercising handoff")
	}
	for k := uint64(0); k < keys; k++ {
		if n := lt.queued(k); n != 0 {
			t.Errorf("key %d still has %d waiters after the run", k, n)
		}
	}
}

// TestInsertKey pins the sorted-dedup invariant hinted and learned latch
// key sets rely on.
func TestInsertKey(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	var set []uint64
	seen := map[uint64]bool{}
	for i := 0; i < 200; i++ {
		k := rng.Uint64N(64)
		set = insertKey(set, k)
		seen[k] = true
	}
	if len(set) != len(seen) {
		t.Fatalf("set has %d elements, want %d distinct", len(set), len(seen))
	}
	for i := 1; i < len(set); i++ {
		if set[i-1] >= set[i] {
			t.Fatalf("set not strictly ascending at %d: %v", i, set)
		}
	}
}

// TestShardedLatchedHintZeroRestart pins the latched fast path end to end:
// on an idle sharded engine, a hinted cross-shard transaction must commit
// with no discovery restart and no whole-shard fallback — the hint routes it
// straight through read locks + key latches + the linked-group commit.
func TestShardedLatchedHintZeroRestart(t *testing.T) {
	eng, err := Build("medley-sharded", Config{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	m, err := eng.NewUintMap(MapSpec{Kind: KindHash, Buckets: 256})
	if err != nil {
		t.Fatal(err)
	}
	tx := eng.NewWorker(0)
	se := eng.(*shardedEngine)
	// Two keys guaranteed to live on different shards.
	a, b := uint64(0), uint64(0)
	for k := uint64(1); ; k++ {
		if se.shardOf(k) != se.shardOf(a) {
			b = k
			break
		}
	}
	base := eng.Stats()
	for i := 0; i < 10; i++ {
		HintKeys(tx, a, b)
		if err := tx.Run(func() error {
			m.Put(tx, a, uint64(i))
			m.Put(tx, b, uint64(i))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	d := eng.Stats().Delta(base)
	if d.CrossShardRestarts != 0 {
		t.Errorf("hinted runs discovery-restarted %d times", d.CrossShardRestarts)
	}
	if d.LatchFallbacks != 0 {
		t.Errorf("hinted runs fell back to whole-shard locks %d times", d.LatchFallbacks)
	}
	if d.Commits == 0 {
		t.Errorf("no commits recorded: %+v", d)
	}
}

// TestShardedLatchedTransferStress is the engine-level race test for the
// latched commit path: workers run hinted transfers over a small overlapping
// account set at 2 and 8 shards, with latching on and off, and the total
// must be conserved — any torn linked-group commit or latch/epoch ordering
// bug shows up as drift or a -race report.
func TestShardedLatchedTransferStress(t *testing.T) {
	const (
		accounts = 12 // tiny: nearly every pair of workers overlaps
		perAcct  = 10_000
		workers  = 8
		iters    = 400
	)
	for _, shards := range []int{2, 8} {
		for _, noLatch := range []bool{false, true} {
			t.Run(fmt.Sprintf("shards=%d/nolatch=%v", shards, noLatch), func(t *testing.T) {
				eng, err := Build("medley-sharded", Config{Shards: shards, NoLatch: noLatch})
				if err != nil {
					t.Fatal(err)
				}
				defer eng.Close()
				m, err := eng.NewUintMap(MapSpec{Kind: KindHash, Buckets: 64})
				if err != nil {
					t.Fatal(err)
				}
				init := eng.NewWorker(0)
				for a := uint64(0); a < accounts; a++ {
					m.Put(init, a, perAcct)
				}
				var wg sync.WaitGroup
				for g := 0; g < workers; g++ {
					wg.Add(1)
					go func(id int) {
						defer wg.Done()
						tx := eng.NewWorker(1 + id)
						rng := rand.New(rand.NewPCG(uint64(id)+1, uint64(shards)))
						for i := 0; i < iters; i++ {
							from := rng.Uint64N(accounts)
							to := rng.Uint64N(accounts)
							amt := uint64(rng.IntN(5) + 1)
							HintKeys(tx, from, to)
							if err := tx.Run(func() error {
								f, _ := m.Get(tx, from)
								if f < amt {
									return nil
								}
								m.Put(tx, from, f-amt)
								// Yield mid-transaction (latches held on the
								// latched path) so workers genuinely overlap
								// even on a single-P host.
								runtime.Gosched()
								v, _ := m.Get(tx, to)
								m.Put(tx, to, v+amt)
								return nil
							}); err != nil {
								t.Errorf("worker %d: %v", id, err)
								return
							}
						}
					}(g)
				}
				wg.Wait()
				audit := eng.NewWorker(workers + 1)
				sum := uint64(0)
				for a := uint64(0); a < accounts; a++ {
					v, _ := m.Get(audit, a)
					sum += v
				}
				if sum != accounts*perAcct {
					t.Errorf("total %d, want %d: money not conserved", sum, accounts*perAcct)
				}
				d := eng.Stats()
				if noLatch && d.LatchWaits != 0 {
					t.Errorf("NoLatch engine reported latch waits: %+v", d)
				}
				if !noLatch && shards > 1 && d.LatchWaits == 0 {
					t.Errorf("latched overlapping stress never waited on a latch: %+v", d)
				}
			})
		}
	}
}
