package txengine

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSnapshotReadBatchOneCut pins the batched entry point's contract: all n
// closures of one SnapshotReadBatch call run against the same pinned cut
// (the cut argument is identical across them, and no closure can observe a
// transfer half-applied even while writers churn), and the call accounts n
// snapshot-read transactions — one per closure, not one per pin.
func TestSnapshotReadBatchOneCut(t *testing.T) {
	const (
		pairs   = 32
		perKey  = uint64(1000)
		writers = 3
		iters   = 800
		batchN  = 5
	)
	snapEngines(t, []int{1, 4}, func(t *testing.T, eng Engine) {
		m, err := eng.NewUintMap(MapSpec{Kind: KindHash, Buckets: 256})
		if err != nil {
			t.Fatal(err)
		}
		init := eng.NewWorker(0)
		if err := init.Run(func() error {
			for k := uint64(0); k < 2*pairs; k++ {
				m.Put(init, k, perKey)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}

		var done atomic.Bool
		var wWg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wWg.Add(1)
			go func(w int) {
				defer wWg.Done()
				tx := eng.NewWorker(1 + w)
				rng := rand.New(rand.NewPCG(uint64(w)+11, 3))
				for i := 0; i < iters; i++ {
					p := rng.Uint64N(pairs)
					if err := tx.Run(func() error {
						a, _ := m.Get(tx, 2*p)
						b, _ := m.Get(tx, 2*p+1)
						m.Put(tx, 2*p, a-1)
						m.Put(tx, 2*p+1, b+1)
						return nil
					}); err != nil {
						t.Errorf("transfer: %v", err)
						return
					}
				}
			}(w)
		}

		reader := eng.NewWorker(1 + writers)
		batches := 0
		for !done.Load() {
			var cuts [batchN]uint64
			cut, ok := SnapshotReadBatch(reader, batchN, func(i int, cut uint64) {
				cuts[i] = cut
				p := uint64((batches + i) % pairs)
				a, okA := m.Get(reader, 2*p)
				b, okB := m.Get(reader, 2*p+1)
				if !okA || !okB {
					t.Errorf("closure %d missed preloaded keys", i)
					return
				}
				if a+b != 2*perKey {
					t.Errorf("torn batch read: pair %d sum %d, want %d", p, a+b, 2*perKey)
				}
			}, // one pinned cut serves every closure
			)
			if !ok {
				t.Fatal("SnapshotReadBatch refused on a CapSnapshot engine")
			}
			for i := range cuts {
				if cuts[i] != cut {
					t.Fatalf("closure %d ran at cut %d, batch cut %d", i, cuts[i], cut)
				}
			}
			batches++
			if batches >= 200 {
				done.Store(true)
			}
		}
		wWg.Wait()

		// Counting contract: each closure is one snapshot-read transaction.
		// The engine has quiesced, so the totals are exact.
		st := eng.Stats()
		if want := uint64(batches * batchN); st.SnapshotReads < want {
			t.Fatalf("SnapshotReads %d, want at least %d (batches count per closure)", st.SnapshotReads, want)
		}
	})
}

// TestSnapshotReadBatchGate: engines without a snapshot tier refuse the
// batched entry point with ok=false and run nothing, mirroring SnapshotRead.
func TestSnapshotReadBatchGate(t *testing.T) {
	for _, b := range Builders() {
		if b.Caps.Has(CapSnapshot) {
			continue
		}
		t.Run(b.Key, func(t *testing.T) {
			eng := buildForTest(t, b)
			defer eng.Close()
			tx := eng.NewWorker(1)
			ran := false
			if _, ok := SnapshotReadBatch(tx, 3, func(int, uint64) { ran = true }); ok || ran {
				t.Fatalf("%s: batched snapshot read must refuse (ok=%v ran=%v)", b.Key, ok, ran)
			}
		})
	}
}

// TestLastCommitTS pins the read-your-writes watermark the serving tier
// leans on: zero before a handle's first write, advancing with each of the
// handle's commits (transactional or standalone), untouched by reads, and a
// quiesced snapshot cut reaches it — so a cut that passes the watermark is
// guaranteed to contain the handle's newest write.
func TestLastCommitTS(t *testing.T) {
	snapEngines(t, []int{2}, func(t *testing.T, eng Engine) {
		m, err := eng.NewUintMap(MapSpec{Kind: KindHash, Buckets: 64})
		if err != nil {
			t.Fatal(err)
		}
		tx := eng.NewWorker(1)
		if ts := LastCommitTS(tx); ts != 0 {
			t.Fatalf("fresh handle watermark %d, want 0", ts)
		}
		if err := tx.Run(func() error { m.Put(tx, 1, 10); return nil }); err != nil {
			t.Fatal(err)
		}
		ts1 := LastCommitTS(tx)
		if ts1 == 0 {
			t.Fatal("watermark did not advance on a transactional write")
		}
		// Reads leave the watermark alone.
		if err := tx.Run(func() error { m.Get(tx, 1); return nil }); err != nil {
			t.Fatal(err)
		}
		if ts := LastCommitTS(tx); ts != ts1 {
			t.Fatalf("read moved the watermark %d -> %d", ts1, ts)
		}
		// A standalone (auto-committed) write advances it too.
		m.Put(tx, 2, 20)
		ts2 := LastCommitTS(tx)
		if ts2 <= ts1 {
			t.Fatalf("standalone write watermark %d, want > %d", ts2, ts1)
		}
		// Quiesced, a snapshot cut must reach the watermark and contain the
		// write it names.
		cut, ok := SnapshotReadBatch(tx, 1, func(_ int, cut uint64) {
			if v, found := m.Get(tx, 2); !found || v != 20 {
				t.Errorf("cut %d missed the handle's newest write", cut)
			}
		})
		if !ok {
			t.Fatal("SnapshotReadBatch refused")
		}
		if cut < ts2 {
			t.Fatalf("quiesced cut %d below watermark %d", cut, ts2)
		}
	})
	// Engines without the tier report 0: callers treat it as "no watermark".
	for _, b := range Builders() {
		if b.Caps.Has(CapSnapshot) {
			continue
		}
		eng := buildForTest(t, b)
		tx := eng.NewWorker(1)
		if ts := LastCommitTS(tx); ts != 0 {
			t.Errorf("%s: LastCommitTS %d, want 0 without a tier", b.Key, ts)
		}
		eng.Close()
	}
}
