package txengine

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"sync"
	"testing"
	"time"

	"medley/internal/montage"
	"medley/internal/pnvm"
)

// Key layout shared by the sharded persistence tests: one logical uint64
// map carrying three disjoint regions, so every audit runs over a single
// recovered map.
const (
	jobBase = uint64(1) << 20 // job-state keys: jobBase | job
	ctrBase = uint64(1) << 30 // per-claimer counter keys: ctrBase | claimer
)

func ckKey(a uint64) uint64  { return 2 * a }
func svKey(a uint64) uint64  { return 2*a + 1 }
func jobKey(j uint64) uint64 { return jobBase | j }
func ctrKey(c uint64) uint64 { return ctrBase | c }

// TestShardedPersistRegistry pins the txmontage-sharded registry entry: it
// mirrors txmontage's caps, honors the shard knob, carries the shard count
// in its display name, and reports one device per shard.
func TestShardedPersistRegistry(t *testing.T) {
	b, ok := Lookup("txmontage-sharded")
	if !ok {
		t.Fatalf("registry missing txmontage-sharded (have %v)", Names())
	}
	if base, _ := Lookup("txmontage"); b.Caps != base.Caps {
		t.Errorf("txmontage-sharded caps %b != txmontage caps %b", b.Caps, base.Caps)
	}
	for _, shards := range []int{1, 2, 8} {
		eng, err := b.New(Config{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		se := eng.(*shardedEngine)
		if se.NumShards() != shards {
			t.Errorf("Shards=%d built %d shards", shards, se.NumShards())
		}
		if !strings.Contains(eng.Name(), fmt.Sprintf("sh%d", shards)) {
			t.Errorf("Shards=%d name %q does not carry the shard count", shards, eng.Name())
		}
		p, ok := eng.(Persister)
		if !ok || len(p.Devices()) != shards {
			t.Fatalf("Shards=%d: want Persister with %d devices", shards, shards)
		}
		if se.clock == nil || len(se.esys) != shards {
			t.Fatalf("Shards=%d: epoch coordination not wired (clock=%v, esys=%d)", shards, se.clock, len(se.esys))
		}
		// Every shard must share the one clock, or cross-shard transactions
		// could pin different epoch numbers per shard.
		for i, es := range se.esys {
			if es.Clock() != se.clock {
				t.Fatalf("shard %d has a private epoch clock", i)
			}
		}
		eng.Close()
	}
}

// TestShardedCrashRecoveryMerge is the mid-run crash + merged recovery test
// at shards 1, 2, and 8: concurrent workers run cross-shard transfers and
// claim jobs (each claim marks a job-state key and increments the claimer's
// counter key — almost always on different shards) while the background
// coordinator advances the shared epoch. The crash lands at an arbitrary
// boundary; recovery merges one dump per device and the recovered state
// must pass the transfer-conservation and claim-consistency audits exactly
// — any imbalance means some transaction recovered torn across devices.
func TestShardedCrashRecoveryMerge(t *testing.T) {
	const (
		accounts   = 32
		perAcct    = uint64(1000)
		jobs       = 64
		workers    = 4
		iterations = 120
	)
	for _, shards := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			b, _ := Lookup("txmontage-sharded")
			eng, err := b.New(Config{Shards: shards, EpochLen: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			p := eng.(Persister)
			devs := p.Devices()
			spec := MapSpec{Kind: KindHash, Buckets: 1024}
			m, err := eng.NewUintMap(spec)
			if err != nil {
				t.Fatal(err)
			}

			// Preload: account pairs, pending jobs, zeroed claim counters —
			// all synced so the recovered map must contain every key.
			init := eng.NewWorker(0)
			for a := uint64(0); a < accounts; a++ {
				a := a
				if err := init.Run(func() error {
					m.Put(init, ckKey(a), perAcct)
					m.Put(init, svKey(a), perAcct)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
			}
			for j := uint64(0); j < jobs; j++ {
				m.Put(init, jobKey(j), 0)
			}
			for w := 0; w < workers; w++ {
				m.Put(init, ctrKey(uint64(w)+1), 0)
			}
			p.Sync()

			// Phase 2: unsynced concurrent work racing the epoch
			// coordinator. Whatever fraction of it the crash preserves must
			// be whole transactions at a consistent cut.
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					tx := eng.NewWorker(1 + w)
					cid := uint64(w) + 1
					rng := rand.New(rand.NewPCG(uint64(w)+1, uint64(shards)))
					lo, hi := uint64(w)*jobs/workers, uint64(w+1)*jobs/workers
					next := lo
					for i := 0; i < iterations; i++ {
						if i%3 == 0 && next < hi {
							// Claim a job: state mark + counter increment in
							// one (usually cross-shard) transaction.
							j := next
							next++
							if err := tx.Run(func() error {
								st, ok := m.Get(tx, jobKey(j))
								if !ok || st != 0 {
									return nil
								}
								m.Put(tx, jobKey(j), cid)
								v, _ := m.Get(tx, ctrKey(cid))
								m.Put(tx, ctrKey(cid), v+1)
								return nil
							}); err != nil {
								t.Errorf("claim: %v", err)
								return
							}
							continue
						}
						from := rng.Uint64N(accounts)
						to := rng.Uint64N(accounts)
						if err := tx.Run(func() error {
							c, ok := m.Get(tx, ckKey(from))
							if !ok {
								return nil
							}
							amt := uint64(rng.IntN(50) + 1)
							if amt > c {
								amt = c
							}
							s, _ := m.Get(tx, svKey(to))
							m.Put(tx, ckKey(from), c-amt)
							m.Put(tx, svKey(to), s+amt)
							return nil
						}); err != nil {
							t.Errorf("transfer: %v", err)
							return
						}
						if i%16 == 0 {
							time.Sleep(time.Millisecond) // let epochs advance mid-run
						}
					}
				}(w)
			}
			wg.Wait()

			// Crash without a sync: the cut lands wherever the coordinator
			// got to. Close first so no flush races the crash.
			eng.Close()
			dumps := pnvm.DumpAll(devs)

			// Rebuild with a live coordinator: recovery must be safe even
			// while the background advancer is already ticking (the scrub
			// runs with epoch advancement blocked).
			eng2, err := b.New(Config{Shards: shards, Devices: devs, EpochLen: time.Millisecond})
			if err != nil {
				t.Fatalf("rebuild: %v", err)
			}
			defer eng2.Close()
			rm, err := eng2.(Persister).RecoverUintMap(dumps, spec)
			if err != nil {
				t.Fatal(err)
			}
			tx := eng2.NewWorker(0)

			// Transfer conservation: every account key must exist (synced)
			// and the grand total must be exact.
			sum := uint64(0)
			for a := uint64(0); a < accounts; a++ {
				c, ok1 := rm.Get(tx, ckKey(a))
				s, ok2 := rm.Get(tx, svKey(a))
				if !ok1 || !ok2 {
					t.Fatalf("account %d lost a synced balance key (%v,%v)", a, ok1, ok2)
				}
				sum += c + s
			}
			if want := 2 * accounts * perAcct; sum != want {
				t.Fatalf("recovered ledger sums %d, want %d: a cross-shard transfer recovered torn", sum, want)
			}

			// Claim consistency: each claimer's recovered counter must equal
			// the number of jobs recovered with its mark — the two halves of
			// every claim transaction live on (usually) different shards.
			claimedBy := make(map[uint64]uint64)
			for j := uint64(0); j < jobs; j++ {
				st, ok := rm.Get(tx, jobKey(j))
				if !ok {
					t.Fatalf("job %d lost its synced state key", j)
				}
				if st != 0 {
					if st > uint64(workers) {
						t.Fatalf("job %d recovered with impossible claimer %d", j, st)
					}
					claimedBy[st]++
				}
			}
			for w := 0; w < workers; w++ {
				cid := uint64(w) + 1
				ctr, ok := rm.Get(tx, ctrKey(cid))
				if !ok {
					t.Fatalf("claimer %d lost its synced counter key", cid)
				}
				if ctr != claimedBy[cid] {
					t.Fatalf("claimer %d: counter recovered as %d but %d jobs carry its mark — claim tx recovered torn",
						cid, ctr, claimedBy[cid])
				}
			}
			t.Logf("shards=%d: cut=%d, %d claims recovered", shards, montage.ConsistentCut(dumps), len(claimedBy))
		})
	}
}

// TestShardedTornCutPrevented injects the exact failure the coordinator
// exists to prevent: a crash between two shards' epoch flushes. Shard 0
// persists the epoch holding a cross-shard transfer; shard 1 does not. A
// naive per-device recovery would see the debit without the credit; the
// merge must cut at the minimum durable frontier and drop the transfer from
// both shards.
func TestShardedTornCutPrevented(t *testing.T) {
	b, _ := Lookup("txmontage-sharded")
	eng, err := b.New(Config{Shards: 2}) // EpochLen 0: epochs advanced by hand
	if err != nil {
		t.Fatal(err)
	}
	se := eng.(*shardedEngine)
	spec := MapSpec{Kind: KindHash, Buckets: 256}
	m, err := eng.NewUintMap(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Two keys on different shards.
	k1 := uint64(1)
	for se.shardOf(k1) != 0 {
		k1++
	}
	k2 := uint64(1)
	for se.shardOf(k2) != 1 {
		k2++
	}

	tx := eng.NewWorker(0)
	if err := tx.Run(func() error {
		m.Put(tx, k1, 1000)
		m.Put(tx, k2, 1000)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	se.Sync()

	// Cross-shard transfers in the current epoch E: all of them debit k1
	// (shard 0) and credit k2 (shard 1).
	for i := 0; i < 3; i++ {
		if err := tx.Run(func() error {
			a, _ := m.Get(tx, k1)
			b, _ := m.Get(tx, k2)
			m.Put(tx, k1, a-100)
			m.Put(tx, k2, b+100)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	// One clean coordinated advance (flushes the pre-transfer epoch E-1 on
	// both shards), then a torn one: the clock ticks, shard 0 flushes epoch
	// E — transfers included — and the crash lands before shard 1 does.
	montage.AdvanceTogether(se.clock, se.esys)
	e := se.clock.Tick()
	se.clock.WaitNotPinnedBelow(e - 1)
	se.esys[0].Flush(e - 2)
	devs := se.devs
	dumps := pnvm.DumpAll(devs)
	eng.Close()

	f0, f1 := montage.Frontier(dumps[0]), montage.Frontier(dumps[1])
	if f0 <= f1 {
		t.Fatalf("torn flush not injected: frontiers %d, %d", f0, f1)
	}
	// Sanity: naive per-device recovery (no cut) really would tear — shard
	// 0 holds the post-transfer debit, shard 1 still the pre-transfer
	// credit.
	naive := uint64(0)
	dec := montage.Uint64Codec().Dec
	for _, d := range dumps {
		for _, r := range montage.LiveRecords(d) {
			if r.Key == k1 || r.Key == k2 {
				naive += dec(r.Val)
			}
		}
	}
	if naive == 2000 {
		t.Fatal("naive union unexpectedly consistent; torn-cut scenario not exercised")
	}

	eng2, err := b.New(Config{Shards: 2, Devices: devs})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	rm, err := eng2.(Persister).RecoverUintMap(dumps, spec)
	if err != nil {
		t.Fatal(err)
	}
	tx2 := eng2.NewWorker(0)
	v1, ok1 := rm.Get(tx2, k1)
	v2, ok2 := rm.Get(tx2, k2)
	if !ok1 || !ok2 {
		t.Fatalf("synced keys lost: (%v,%v)", ok1, ok2)
	}
	if v1+v2 != 2000 {
		t.Fatalf("merged recovery tore the transfer: %d + %d != 2000", v1, v2)
	}
	if v1 != 1000 || v2 != 1000 {
		t.Fatalf("cut should drop the half-flushed epoch entirely: got %d/%d, want 1000/1000", v1, v2)
	}

	// Second life, second crash: recovery must have scrubbed the devices
	// (beyond-cut records and stale frontier markers removed) and
	// re-anchored the clock past the cut — otherwise this cycle would
	// compute its cut from pre-first-crash markers and resurrect the torn
	// transfer discarded above.
	se2 := eng2.(*shardedEngine)
	for i := 0; i < 2; i++ {
		if err := tx2.Run(func() error {
			a, _ := rm.Get(tx2, k1)
			b, _ := rm.Get(tx2, k2)
			rm.Put(tx2, k1, a-100)
			rm.Put(tx2, k2, b+100)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	se2.Sync()
	dumps2 := pnvm.DumpAll(se2.devs)
	eng2.Close()

	eng3, err := b.New(Config{Shards: 2, Devices: devs})
	if err != nil {
		t.Fatal(err)
	}
	defer eng3.Close()
	rm3, err := eng3.(Persister).RecoverUintMap(dumps2, spec)
	if err != nil {
		t.Fatal(err)
	}
	tx3 := eng3.NewWorker(0)
	w1, _ := rm3.Get(tx3, k1)
	w2, _ := rm3.Get(tx3, k2)
	if w1 != 800 || w2 != 1200 {
		t.Fatalf("second recovery cycle inconsistent: got %d/%d, want 800/1200 (stale pre-crash state leaked?)", w1, w2)
	}
}

// TestConfigShardsValidation pins the central Config.Shards validation:
// every registry construction path rejects negative and absurd shard counts
// with a clear error, and device/shard mismatches fail fast.
func TestConfigShardsValidation(t *testing.T) {
	for _, engine := range []string{"medley-sharded", "txmontage-sharded", "medley"} {
		for _, bad := range []int{-1, -64, MaxShards + 1} {
			_, err := Build(engine, Config{Shards: bad})
			if err == nil {
				t.Fatalf("%s accepted Shards=%d", engine, bad)
			}
			if !strings.Contains(err.Error(), "Shards") {
				t.Errorf("%s Shards=%d error %q does not name the field", engine, bad, err)
			}
		}
	}
	eng, err := Build("medley-sharded", Config{Shards: 2})
	if err != nil {
		t.Fatalf("valid shard count rejected: %v", err)
	}
	eng.Close()

	// One device per shard, enforced at construction.
	devs := []*pnvm.Device{pnvm.New(pnvm.Latencies{}), pnvm.New(pnvm.Latencies{}), pnvm.New(pnvm.Latencies{})}
	if _, err := Build("txmontage-sharded", Config{Shards: 2, Devices: devs}); err == nil {
		t.Fatal("device/shard mismatch accepted")
	}
	// And a dump-count mismatch, at recovery.
	eng2, err := Build("txmontage-sharded", Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if _, err := eng2.(Persister).RecoverUintMap(make([][]pnvm.Record, 3), MapSpec{Kind: KindHash}); err == nil {
		t.Fatal("dump/shard mismatch accepted")
	}
}
