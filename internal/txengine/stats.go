package txengine

import (
	"fmt"
	"sync/atomic"
)

// Stats is a uniform snapshot of an engine's transaction outcomes, counted
// at the adapter layer so that every backend reports the same events with
// the same meaning regardless of where its retry loop lives:
//
//   - Commits: Run/RunRead calls that completed successfully (including
//     transactions with no operations).
//   - Aborts: transaction attempts that did not commit — conflict aborts
//     that were retried plus business aborts that were passed through.
//   - Retries: re-executions after a conflict abort (always ≤ Aborts;
//     the difference is the business aborts).
//   - Fallbacks: NoTx bodies the engine could not run uninstrumented and
//     wrapped in a transaction instead (engines without CapNoTx).
//   - CrossShardRestarts: attempts a sharded engine re-executed because the
//     transaction touched a shard outside its known footprint (the
//     footprint-discovery restart of sharded.go). These are not conflicts —
//     nobody aborted anybody — so they are counted separately from Aborts
//     and Retries; a high rate means the workload is cross-shard-heavy and
//     paying the discovery cost. Zero on non-sharded engines.
//   - FootprintHits: Runs whose pre-declared shard set (a HintKeys hint or
//     a confident footprint-cache entry — see footprint.go) covered every
//     operation, so the cross-shard locks were acquired up front and no
//     discovery restart was paid. At most one per Run.
//   - FootprintMisses: Runs whose pre-declared shard set proved wrong (an
//     operation escaped it); the Run fell back to the discovery path and
//     the stale cache entry was invalidated. At most one per Run. Hits and
//     misses count only pre-declared Runs: plain discovery moves neither.
//   - LatchWaits: key latches a latched cross-shard attempt had to queue
//     for because another latched transaction held them (see latch.go). A
//     high rate relative to Commits means declared footprints overlap on
//     hot keys — traffic is pipelining through the latch FIFO rather than
//     aborting, which is the latch layer doing its job.
//   - LatchFallbacks: cross-shard attempts that took whole-shard exclusive
//     locks even though key latching was enabled — discovery mode (no
//     declared keys), mispredictions retrying, oversized key sets (>
//     latchMaxKeys), or a base engine without shared-fate commit support.
//     Zero when latching is disabled (Config.NoLatch) or the engine is
//     unsharded.
//   - SnapshotReads: SnapshotRead transactions served from the MVCC version
//     tier (see snapshot.go). Each also counts as a Commit — a snapshot is
//     a committed read-only transaction — and by construction contributes
//     zero Aborts and zero Retries. Zero on engines without CapSnapshot.
//   - SnapshotStale: SnapshotReads whose pinned cut trailed the newest
//     drawn commit timestamp at begin time (a writer was still in flight).
//     The snapshot is still consistent — just not the absolute freshest
//     state; a persistently high ratio means long-running writers are
//     holding the seal back.
//
// Standalone map operations called outside Run count only on engines that
// implement them as one-shot transactions (OneFile, TDSL, LFTT); Medley and
// Boost run them genuinely uninstrumented.
type Stats struct {
	Commits            uint64
	Aborts             uint64
	Retries            uint64
	Fallbacks          uint64
	CrossShardRestarts uint64
	FootprintHits      uint64
	FootprintMisses    uint64
	LatchWaits         uint64
	LatchFallbacks     uint64
	SnapshotReads      uint64
	SnapshotStale      uint64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Commits += o.Commits
	s.Aborts += o.Aborts
	s.Retries += o.Retries
	s.Fallbacks += o.Fallbacks
	s.CrossShardRestarts += o.CrossShardRestarts
	s.FootprintHits += o.FootprintHits
	s.FootprintMisses += o.FootprintMisses
	s.LatchWaits += o.LatchWaits
	s.LatchFallbacks += o.LatchFallbacks
	s.SnapshotReads += o.SnapshotReads
	s.SnapshotStale += o.SnapshotStale
}

// Delta returns the counters accumulated since the prev snapshot.
func (s Stats) Delta(prev Stats) Stats {
	return Stats{
		Commits:            s.Commits - prev.Commits,
		Aborts:             s.Aborts - prev.Aborts,
		Retries:            s.Retries - prev.Retries,
		Fallbacks:          s.Fallbacks - prev.Fallbacks,
		CrossShardRestarts: s.CrossShardRestarts - prev.CrossShardRestarts,
		FootprintHits:      s.FootprintHits - prev.FootprintHits,
		FootprintMisses:    s.FootprintMisses - prev.FootprintMisses,
		LatchWaits:         s.LatchWaits - prev.LatchWaits,
		LatchFallbacks:     s.LatchFallbacks - prev.LatchFallbacks,
		SnapshotReads:      s.SnapshotReads - prev.SnapshotReads,
		SnapshotStale:      s.SnapshotStale - prev.SnapshotStale,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("commits=%d aborts=%d retries=%d fallbacks=%d xrestarts=%d fphits=%d fpmisses=%d latchw=%d latchfb=%d snapreads=%d snapstale=%d",
		s.Commits, s.Aborts, s.Retries, s.Fallbacks, s.CrossShardRestarts, s.FootprintHits, s.FootprintMisses,
		s.LatchWaits, s.LatchFallbacks, s.SnapshotReads, s.SnapshotStale)
}

// counters is the shared engine-level accumulator behind Engine.Stats.
// Fields are atomic: all of an engine's Tx handles bump the same instance.
type counters struct {
	commits, aborts, retries, fallbacks atomic.Uint64
	crossRestarts                       atomic.Uint64
	fpHits, fpMisses                    atomic.Uint64
	latchWaits, latchFallbacks          atomic.Uint64
	snapReads, snapStale                atomic.Uint64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Commits:            c.commits.Load(),
		Aborts:             c.aborts.Load(),
		Retries:            c.retries.Load(),
		Fallbacks:          c.fallbacks.Load(),
		CrossShardRestarts: c.crossRestarts.Load(),
		FootprintHits:      c.fpHits.Load(),
		FootprintMisses:    c.fpMisses.Load(),
		LatchWaits:         c.latchWaits.Load(),
		LatchFallbacks:     c.latchFallbacks.Load(),
		SnapshotReads:      c.snapReads.Load(),
		SnapshotStale:      c.snapStale.Load(),
	}
}

// countSnapshot accounts one completed snapshot read: a commit (a snapshot
// is a committed read-only transaction) that by construction cannot abort
// or retry, plus the snapshot-specific counters.
func (c *counters) countSnapshot(stale bool) {
	c.countSnapshotN(stale, 1)
}

// countSnapshotN accounts n logical snapshot-read transactions served from
// one pinned cut (SnapshotReadBatch): each counts as its own commit and
// snapshot read, staleness included — the cut is shared, the transactions
// are not.
func (c *counters) countSnapshotN(stale bool, n uint64) {
	c.commits.Add(n)
	c.snapReads.Add(n)
	if stale {
		c.snapStale.Add(n)
	}
}

// countRun wraps an engine's native closure-retrying Run (anything with the
// shape "execute fn, re-executing it after conflict aborts") and accounts
// one commit or terminal abort plus one abort+retry per extra execution.
// Engines whose retry loop does not re-execute fn (LFTT's static
// transactions) count inside their own loop instead.
func (c *counters) countRun(run func(func() error) error, fn func() error) error {
	execs := 0
	err := run(func() error { execs++; return fn() })
	if execs > 1 {
		c.retries.Add(uint64(execs - 1))
	}
	if err == nil {
		c.commits.Add(1)
		c.aborts.Add(uint64(execs - 1))
	} else {
		c.aborts.Add(uint64(execs))
	}
	return err
}

// countRead is countRun for read-only paths that retry by re-executing fn
// until a consistent snapshot is observed.
func (c *counters) countRead(runRead func(func()), fn func()) {
	execs := 0
	runRead(func() { execs++; fn() })
	c.commits.Add(1)
	if execs > 1 {
		c.retries.Add(uint64(execs - 1))
		c.aborts.Add(uint64(execs - 1))
	}
}
