package txengine

// MVCC snapshot-read tier (CapSnapshot).
//
// Every read on a Medley-family engine used to run inside the OCC machinery:
// even a pure RunRead validates its loads at commit and can abort and restart
// under write contention. For read-mostly traffic that retry risk is the
// dominant cost. This file adds a versioned read path so a read-only
// transaction can pin a consistent cut and complete validation-free:
//
//   - Writers stamp every committed transaction with a timestamp drawn from a
//     per-engine logical clock (seeded from the shared montage.EpochClock on
//     persistent engines, so the version order is anchored to the same clock
//     that orders durability cuts). The draw happens after the transaction
//     body has installed all of its descriptor nodes and *before* the
//     InPrep→InProg status transition that makes the commit eligible — see
//     the ordering argument below.
//   - Committed values are published into per-key version chains held in a
//     sidecar next to each top-level map (snapMap). The chains are read-only
//     metadata for snapshot readers; the underlying engine map remains the
//     single source of truth for OCC transactions.
//   - SnapshotRead(fn) pins the current sealed watermark, runs fn with every
//     map Get served from the chains at that timestamp, and returns. No
//     validation, no abort, no restart — by construction, not by luck.
//
// Why the timestamp order is consistent with MCNS conflict order: a writer
// draws its timestamp after fn has installed every node and before TxEnd's
// InPrep→InProg CAS. A helper can only commit a transaction after it reaches
// InProg, and only the owner's TxEnd sets InProg (see core.Session.TxAbort),
// so draw(A) < resolve(A) always. If B depends on A (write-write or
// read-write on a key), B observed A's installed node, which A installed
// before draw(A) only if... more precisely: for ww/wr conflicts B's
// conflicting access happens after A resolved, hence after draw(A), hence
// draw(B) > draw(A); for an anti-dependency (A read, B overwrote), A's
// validation at TxEnd saw the key unchanged, so B's install — which precedes
// draw(B) — happened after A validated, which follows draw(A). Either way
// timestamps agree with the serialization order, so the set of transactions
// with ts <= any cut is prefix-closed and a chain read at that cut is a
// consistent snapshot.
//
// The sealed watermark: a drawn timestamp is not immediately readable —
// the transaction may still fail validation, and a slower writer may hold a
// smaller undrawn timestamp. Each worker slot advertises a lower bound
// (inflight) *before* drawing; the seal is min(clock, min over slots of
// inflight-1), CAS-maxed so it never regresses. A snapshot pins the seal, so
// it can never observe a timestamp that an in-flight commit could still
// publish beneath it (a torn cut). Version chains are pruned behind a GC
// floor = min(seal, oldest pinned snapshot), recomputed every few hundred
// publishes; readers advertise their pin with a store-recheck loop so the
// floor can never pass a live snapshot.

import (
	"sync"
	"sync/atomic"

	"medley/internal/montage"
)

// SnapshotReader is the optional Tx extension of engines with CapSnapshot.
// SnapshotRead runs fn as a read-only transaction against a consistent cut
// of the engine's committed history: every map Get inside fn observes the
// same commit-timestamp prefix, no validation runs, and the snapshot never
// aborts or restarts. Map writes and queue operations inside fn panic —
// snapshots are read-only by contract. The returned bool reports whether a
// snapshot was actually taken (always true on a CapSnapshot engine).
type SnapshotReader interface {
	SnapshotRead(fn func()) bool
}

// SnapshotRead runs fn as a validation-free snapshot transaction when tx's
// engine supports it (CapSnapshot) and reports whether it did; on every
// other engine it is a no-op returning false, so portable workload code can
// attempt a snapshot unconditionally and fall back to RunRead:
//
//	if !txengine.SnapshotRead(tx, probe) {
//		_ = tx.RunRead(probe)
//	}
func SnapshotRead(tx Tx, fn func()) bool {
	if s, ok := tx.(SnapshotReader); ok {
		return s.SnapshotRead(fn)
	}
	return false
}

// SnapshotBatchReader is the batched companion of SnapshotReader: one pinned
// cut serves n independent read-only closures, amortizing the pin, seal, and
// GC-floor bookkeeping over the batch. Each closure is its own logical
// snapshot transaction (n SnapshotReads in Stats); all of them observe the
// same commit-timestamp prefix, reported as cut. Implemented by the engines
// that implement SnapshotReader.
type SnapshotBatchReader interface {
	// SnapshotReadBatch pins one consistent cut and runs each(i, cut) for
	// i in [0, n). The returned cut is the pinned commit timestamp (compare
	// it against LastCommitTS to detect a cut trailing a handle's own
	// writes); ok is false — and nothing runs — on engines without the tier.
	SnapshotReadBatch(n int, each func(i int, cut uint64)) (cut uint64, ok bool)
}

// SnapshotReadBatch runs n read-only closures against one pinned snapshot
// cut when tx's engine supports it, and reports the cut plus whether the
// batch ran. The portable no-op contract matches SnapshotRead: on engines
// without CapSnapshot it returns (0, false) without invoking each, so
// callers fall back to per-closure OCC reads.
func SnapshotReadBatch(tx Tx, n int, each func(i int, cut uint64)) (uint64, bool) {
	if s, ok := tx.(SnapshotBatchReader); ok {
		return s.SnapshotReadBatch(n, each)
	}
	return 0, false
}

// LastCommitTS reports the commit timestamp of the most recent
// version-stamped write committed through tx — standalone or transactional —
// or 0 when the handle has written nothing (or the engine has no snapshot
// tier). A snapshot cut at or above this watermark is guaranteed to include
// every write the handle has completed, which is how a serving layer keeps
// read-your-writes while routing reads through snapshots: serve the read
// from any cut >= LastCommitTS, fall back to an OCC read when the available
// cut trails it (a writer elsewhere is still sealing).
func LastCommitTS(tx Tx) uint64 {
	if st, ok := tx.(snapTxn); ok {
		if a := st.snapAgent(); a.enabled() {
			return a.lastTS
		}
	}
	return 0
}

// snapGCPeriod is how many chain publishes elapse between GC-floor
// recomputations. The floor only ever advances, so a stale floor costs
// memory (longer chains), never correctness.
const snapGCPeriod = 256

// snapSlot is one worker's communication surface with the tier: inflight
// publishes a lower bound on the timestamp the worker may be about to draw
// (0 = no commit in flight), reading publishes the timestamp of the
// worker's pinned snapshot (0 = none). Padded so two hot slots never share
// a cache line.
type snapSlot struct {
	inflight atomic.Uint64
	reading  atomic.Uint64
	_        [112]byte
}

// snapTier is the per-engine clock + watermark state shared by every worker
// and every snapMap of one engine. A sharded engine owns exactly one tier —
// its sub-engines are built with version stamping disabled — so a
// cross-shard transaction (including a PR 6 shared-fate latch group)
// stamps exactly one timestamp for the whole group.
type snapTier struct {
	clock   atomic.Uint64 // last drawn commit timestamp
	sealed  atomic.Uint64 // highest timestamp safe for snapshots to read
	gcFloor atomic.Uint64 // chains may drop versions strictly below this
	pubs    atomic.Uint64 // publish counter driving floor recomputation
	mu      sync.Mutex    // guards slot registration
	slots   atomic.Pointer[[]*snapSlot]
}

// newSnapTier builds a tier. When the engine is montage-backed, ec anchors
// the timestamp base to the durable epoch clock (epoch << 16 leaves room
// for intra-epoch commit ordering without colliding with a later
// re-anchor); transient engines start at 1. Zero is reserved to mean "no
// timestamp" in slots.
func newSnapTier(ec *montage.EpochClock) *snapTier {
	t := &snapTier{}
	base := uint64(1)
	if ec != nil {
		base = ec.Current() << 16
	}
	t.clock.Store(base)
	t.sealed.Store(base)
	t.gcFloor.Store(base)
	empty := make([]*snapSlot, 0)
	t.slots.Store(&empty)
	return t
}

// newSlot registers a worker with the tier. Slots are copy-on-write so the
// hot paths (reseal, floor refresh) walk a plain slice with no lock.
func (t *snapTier) newSlot() *snapSlot {
	s := &snapSlot{}
	t.mu.Lock()
	old := *t.slots.Load()
	next := make([]*snapSlot, len(old)+1)
	copy(next, old)
	next[len(old)] = s
	t.slots.Store(&next)
	t.mu.Unlock()
	return s
}

// beginCommit opens a commit window for s and returns the drawn timestamp.
// The inflight lower bound is stored before the draw: any sealer that reads
// this slot as idle (0) must have read it before the store, hence loaded
// the clock before the draw, hence computed a seal below the drawn
// timestamp. That ordering is what makes the seal a torn-cut barrier.
func (t *snapTier) beginCommit(s *snapSlot) uint64 {
	s.inflight.Store(t.clock.Load())
	return t.clock.Add(1)
}

// endCommit closes the window (publishes, if any, must already be done) and
// advances the seal past everything no longer in flight.
func (t *snapTier) endCommit(s *snapSlot) {
	s.inflight.Store(0)
	t.reseal()
}

// reseal advances sealed to min(clock, min over busy slots of inflight-1).
// The clock is loaded before the slots: a commit that draws after our clock
// load either stored its inflight bound first (we see it and stay below) or
// we never see it at all and our limit is at most the pre-draw clock —
// below its timestamp either way. CAS-max keeps the seal monotone.
func (t *snapTier) reseal() {
	limit := t.clock.Load()
	for _, s := range *t.slots.Load() {
		if v := s.inflight.Load(); v != 0 && v-1 < limit {
			limit = v - 1
		}
	}
	for {
		cur := t.sealed.Load()
		if cur >= limit || t.sealed.CompareAndSwap(cur, limit) {
			return
		}
	}
}

// beginSnapshot pins a read timestamp for s and reports it plus whether the
// snapshot is stale (some committed-or-committing writer already drew past
// it — the cut is still consistent, just not the absolute newest). The
// store-recheck loop makes the pin race-free against GC: if the floor
// refresh missed our pin, its sealed load happened before our recheck, so
// the floor it computed is at most our pinned timestamp.
func (t *snapTier) beginSnapshot(s *snapSlot) (rt uint64, stale bool) {
	t.reseal()
	for {
		rt = t.sealed.Load()
		s.reading.Store(rt)
		if t.sealed.Load() == rt {
			break
		}
	}
	return rt, rt < t.clock.Load()
}

// endSnapshot releases the pin.
func (t *snapTier) endSnapshot(s *snapSlot) {
	s.reading.Store(0)
}

// refreshFloor recomputes the GC floor: the seal first, then every pinned
// snapshot (the order pairs with beginSnapshot's recheck loop). The floor
// is CAS-maxed; chains prune lazily against it on their next publish.
func (t *snapTier) refreshFloor() {
	floor := t.sealed.Load()
	for _, s := range *t.slots.Load() {
		if v := s.reading.Load(); v != 0 && v < floor {
			floor = v
		}
	}
	for {
		cur := t.gcFloor.Load()
		if cur >= floor || t.gcFloor.CompareAndSwap(cur, floor) {
			return
		}
	}
}

// snapVersion is one committed state of one key. uval carries the value for
// uint maps (no boxing on the hot path); aval carries row-map values. next
// points at the next-older version; the chain is sorted by descending ts.
type snapVersion struct {
	ts   uint64
	uval uint64
	aval any
	del  bool
	next atomic.Pointer[snapVersion]
}

// chainHead anchors one key's version chain. Publishers serialize on mu;
// readers traverse head/next lock-free.
type chainHead struct {
	mu   sync.Mutex
	head atomic.Pointer[snapVersion]
}

// snapChains is the version sidecar of one top-level map.
type snapChains struct {
	tier *snapTier
	m    sync.Map // uint64 -> *chainHead
}

func (c *snapChains) headOf(k uint64) *chainHead {
	if h, ok := c.m.Load(k); ok {
		return h.(*chainHead)
	}
	h, _ := c.m.LoadOrStore(k, &chainHead{})
	return h.(*chainHead)
}

// publish installs the committed state (uval/aval/del) of key k at ts.
// Chains stay sorted by descending ts: the common case is a head insert
// (ts is the newest drawn), but a slower writer may publish beneath newer
// entries — snapshot pins below its timestamp are blocked by the seal, so
// late placement is invisible to readers that could be hurt by it.
func (c *snapChains) publish(k, ts, uval uint64, aval any, del bool) {
	h := c.headOf(k)
	v := &snapVersion{ts: ts, uval: uval, aval: aval, del: del}
	h.mu.Lock()
	if cur := h.head.Load(); cur == nil || cur.ts < ts {
		v.next.Store(cur)
		h.head.Store(v)
	} else {
		p := cur
		for {
			n := p.next.Load()
			if n == nil || n.ts < ts {
				v.next.Store(n)
				p.next.Store(v)
				break
			}
			p = n
		}
	}
	c.truncate(h)
	h.mu.Unlock()
	if c.tier.pubs.Add(1)%snapGCPeriod == 0 {
		c.tier.refreshFloor()
	}
}

// truncate prunes, under h.mu, everything older than the newest version at
// or below the GC floor — that version is the one any live or future
// snapshot can still reach.
func (c *snapChains) truncate(h *chainHead) {
	floor := c.tier.gcFloor.Load()
	n := h.head.Load()
	for n != nil && n.ts > floor {
		n = n.next.Load()
	}
	if n != nil {
		n.next.Store(nil)
	}
}

// read returns key k's state at snapshot timestamp rt: the newest version
// with ts <= rt, or absent when there is none (the key did not exist at the
// cut) or it is a tombstone.
func (c *snapChains) read(k, rt uint64) (uint64, any, bool) {
	h, ok := c.m.Load(k)
	if !ok {
		return 0, nil, false
	}
	for n := h.(*chainHead).head.Load(); n != nil; n = n.next.Load() {
		if n.ts <= rt {
			if n.del {
				return 0, nil, false
			}
			return n.uval, n.aval, true
		}
	}
	return 0, nil, false
}

// seed installs recovered state at the tier's current seal. Recovery must
// seed every live record into the chains: a chain miss means "absent at the
// cut", so falling back to the inner map would tear against a concurrent
// first-post-recovery writer.
func (c *snapChains) seed(k, uval uint64, aval any) {
	c.publish(k, c.tier.sealed.Load(), uval, aval, false)
}

// pendingWrite is one buffered chain publication awaiting its transaction's
// commit timestamp.
type pendingWrite struct {
	ch   *snapChains
	k    uint64
	uval uint64
	aval any
	del  bool
}

// snapAgent is the per-worker snapshot state embedded in an engine's Tx
// handle. tier==nil means the engine has no snapshot tier (snapOff
// sub-engines, or engines without CapSnapshot) and every snapMap stays
// unwrapped, so the agent is never consulted.
type snapAgent struct {
	tier    *snapTier
	slot    *snapSlot
	rt      uint64 // nonzero while inside SnapshotRead: the pinned cut
	lastTS  uint64 // commit ts of the handle's newest published write (see LastCommitTS)
	pending []pendingWrite
}

func (a *snapAgent) enabled() bool { return a.tier != nil }

// reset drops buffered publications; called at the start of every attempt
// so an aborted or restarted attempt leaves nothing behind.
func (a *snapAgent) reset() {
	for i := range a.pending {
		a.pending[i].aval = nil
	}
	a.pending = a.pending[:0]
}

// denyWrite panics when called inside a snapshot — snapshots are read-only.
func (a *snapAgent) denyWrite() {
	if a.rt != 0 {
		panic("txengine: write inside SnapshotRead (snapshot transactions are read-only)")
	}
}

// note records one committed-write-to-be. Inside a transaction the write is
// buffered (deduplicated per key — only the final state of a key commits)
// and published at the transaction's single drawn timestamp. Outside a
// transaction (NoTx mode, standalone ops) the write is its own commit and
// publishes immediately under its own draw; the inner map applies first and
// the chain entry follows, so a standalone write is briefly invisible to
// brand-new snapshots — the same lag any concurrent reader already
// tolerates from an unsynchronized writer.
func (a *snapAgent) note(ch *snapChains, k, uval uint64, aval any, del, buffered bool) {
	if !buffered {
		ts := a.tier.beginCommit(a.slot)
		ch.publish(k, ts, uval, aval, del)
		a.lastTS = ts
		a.tier.endCommit(a.slot)
		return
	}
	for i := range a.pending {
		if p := &a.pending[i]; p.ch == ch && p.k == k {
			p.uval, p.aval, p.del = uval, aval, del
			return
		}
	}
	a.pending = append(a.pending, pendingWrite{ch: ch, k: k, uval: uval, aval: aval, del: del})
}

// publishAll flushes the buffer at the transaction's commit timestamp.
func (a *snapAgent) publishAll(ts uint64) {
	for i := range a.pending {
		p := &a.pending[i]
		p.ch.publish(p.k, ts, p.uval, p.aval, p.del)
		p.aval = nil
	}
	a.pending = a.pending[:0]
	a.lastTS = ts
}

// snapTxn is the internal seam a Tx handle implements to route snapMap
// operations: the agent, plus whether writes are currently buffered by an
// open transaction (vs standalone).
type snapTxn interface {
	snapAgent() *snapAgent
	snapBuffering() bool
}

// snapMap decorates a top-level engine map with the version sidecar. OCC
// reads and all writes pass straight through to the inner map; writes
// additionally note their committed state with the agent, and snapshot
// reads (agent.rt != 0) are served entirely from the chains.
type snapMap[V any] struct {
	inner Map[V]
	ch    *snapChains
	enc   func(V) (uint64, any)
	dec   func(uint64, any) V
}

func newSnapUintMap(inner Map[uint64], ch *snapChains) snapMap[uint64] {
	return snapMap[uint64]{
		inner: inner,
		ch:    ch,
		enc:   func(v uint64) (uint64, any) { return v, nil },
		dec:   func(u uint64, _ any) uint64 { return u },
	}
}

func newSnapRowMap(inner Map[any], ch *snapChains) snapMap[any] {
	return snapMap[any]{
		inner: inner,
		ch:    ch,
		enc:   func(v any) (uint64, any) { return 0, v },
		dec:   func(_ uint64, a any) any { return a },
	}
}

func (m snapMap[V]) Get(tx Tx, k uint64) (V, bool) {
	a := tx.(snapTxn).snapAgent()
	if a.rt != 0 {
		u, av, ok := m.ch.read(k, a.rt)
		if !ok {
			var zero V
			return zero, false
		}
		return m.dec(u, av), true
	}
	return m.inner.Get(tx, k)
}

func (m snapMap[V]) Put(tx Tx, k uint64, v V) (V, bool) {
	st := tx.(snapTxn)
	a := st.snapAgent()
	a.denyWrite()
	prev, had := m.inner.Put(tx, k, v)
	u, av := m.enc(v)
	a.note(m.ch, k, u, av, false, st.snapBuffering())
	return prev, had
}

func (m snapMap[V]) Insert(tx Tx, k uint64, v V) bool {
	st := tx.(snapTxn)
	a := st.snapAgent()
	a.denyWrite()
	ok := m.inner.Insert(tx, k, v)
	if ok {
		u, av := m.enc(v)
		a.note(m.ch, k, u, av, false, st.snapBuffering())
	}
	return ok
}

func (m snapMap[V]) Remove(tx Tx, k uint64) (V, bool) {
	st := tx.(snapTxn)
	a := st.snapAgent()
	a.denyWrite()
	prev, had := m.inner.Remove(tx, k)
	if had {
		a.note(m.ch, k, 0, nil, true, st.snapBuffering())
	}
	return prev, had
}
