package txengine

import (
	"errors"
	"testing"

	"medley/internal/pnvm"
)

// TestCrashRecoveryConformance is the cross-engine crash/recovery contract
// for persistent engines (txMontage, POneFile, txmontage-sharded),
// mirroring cmd/recoverydemo through the engine layer: commit transactions,
// crash the engine's whole device fleet, rebuild a fresh engine on the
// survivors, and assert that synced committed state is visible, aborted
// writes are absent, and post-sync transactions recover all-or-nothing. The
// contract is multi-device: the engine reports its devices, the crash dumps
// them all, and recovery merges the dumps at an epoch-consistent cut.
func TestCrashRecoveryConformance(t *testing.T) {
	const (
		n       = 32
		poison1 = uint64(1 << 20)
		poison2 = poison1 + 1
	)
	for _, b := range Builders() {
		b := b
		t.Run(b.Key, func(t *testing.T) {
			eng, err := b.New(Config{})
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			p, ok := eng.(Persister)
			if !ok || len(p.Devices()) == 0 {
				eng.Close()
				t.Skipf("%s is transient", b.Key)
			}
			devs := p.Devices()
			spec := testSpec(b.Caps)
			m, err := eng.NewUintMap(spec)
			if err != nil {
				t.Fatal(err)
			}
			tx := eng.NewWorker(0)

			// Phase 1: committed pair transactions, made durable by Sync.
			for i := uint64(0); i < n; i++ {
				i := i
				if err := tx.Run(func() error {
					m.Put(tx, i, 100+i)
					m.Put(tx, i+n, 100+i)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
			}
			// An aborted transaction: its write must never recover.
			errBiz := errors.New("insufficient")
			if err := tx.Run(func() error {
				m.Put(tx, poison1, 666)
				return errBiz
			}); !errors.Is(err, errBiz) {
				t.Fatalf("business abort returned %v", err)
			}
			p.Sync()

			// Phase 2 (after the sync boundary): committed pairs that a
			// buffered-durability engine may legitimately lose — but only
			// whole transactions at a time — plus another aborted write.
			for i := uint64(0); i < n; i++ {
				i := i
				if err := tx.Run(func() error {
					m.Put(tx, 2*n+i, 500+i)
					m.Put(tx, 3*n+i, 500+i)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
			}
			if err := tx.Run(func() error {
				m.Put(tx, poison2, 667)
				return tx.Abort()
			}); !errors.Is(err, ErrBusinessAbort) {
				t.Fatalf("Tx.Abort returned %v", err)
			}

			dumps := pnvm.DumpAll(devs)
			eng.Close()

			// Post-crash world: a fresh engine reattached to the same
			// device fleet.
			eng2, err := b.New(Config{Devices: devs})
			if err != nil {
				t.Fatalf("rebuild: %v", err)
			}
			defer eng2.Close()
			p2 := eng2.(Persister)
			redevs := p2.Devices()
			if len(redevs) != len(devs) {
				t.Fatalf("rebuilt engine has %d devices, want %d", len(redevs), len(devs))
			}
			for i := range devs {
				if redevs[i] != devs[i] {
					t.Fatalf("rebuilt engine ignored Config.Devices at index %d", i)
				}
			}
			rm, err := p2.RecoverUintMap(dumps, spec)
			if err != nil {
				t.Fatal(err)
			}
			tx2 := eng2.NewWorker(0)

			// Synced committed state must be fully visible.
			for i := uint64(0); i < n; i++ {
				for _, k := range []uint64{i, i + n} {
					if v, ok := rm.Get(tx2, k); !ok || v != 100+i {
						t.Fatalf("synced key %d: got %d,%v want %d,true", k, v, ok, 100+i)
					}
				}
			}
			// Aborted writes must be absent.
			for _, k := range []uint64{poison1, poison2} {
				if v, ok := rm.Get(tx2, k); ok {
					t.Fatalf("aborted write recovered: key %d = %d", k, v)
				}
			}
			// Post-sync transactions: all-or-nothing, with correct values
			// when present.
			recovered := 0
			for i := uint64(0); i < n; i++ {
				v1, ok1 := rm.Get(tx2, 2*n+i)
				v2, ok2 := rm.Get(tx2, 3*n+i)
				if ok1 != ok2 {
					t.Fatalf("post-sync tx %d recovered torn: (%v,%v)", i, ok1, ok2)
				}
				if ok1 {
					recovered++
					if v1 != 500+i || v2 != 500+i {
						t.Fatalf("post-sync tx %d recovered wrong values: %d,%d", i, v1, v2)
					}
				}
			}
			// POneFile persists eagerly: everything committed must survive.
			if b.Key == "ponefile" && recovered != n {
				t.Fatalf("eager persistence lost %d/%d post-sync transactions", n-recovered, n)
			}
			t.Logf("%s: %d devices, recovered %d/%d post-sync transactions", b.Key, len(devs), recovered, n)
		})
	}
}

// TestPersisterCoverage pins that the persistent engines actually implement
// Persister with live devices — so the conformance suite above cannot
// silently skip them all — including the device-per-shard shape of the
// sharded persistent engine. (Independent of subtest filtering.)
func TestPersisterCoverage(t *testing.T) {
	for _, tc := range []struct {
		key    string
		shards int
		wantN  int
	}{
		{"txmontage", 0, 1},
		{"ponefile", 0, 1},
		{"txmontage-sharded", 0, DefaultShards},
		{"txmontage-sharded", 8, 8},
	} {
		b, ok := Lookup(tc.key)
		if !ok {
			t.Fatalf("registry missing %q", tc.key)
		}
		eng, err := b.New(Config{Shards: tc.shards})
		if err != nil {
			t.Fatalf("build %s: %v", tc.key, err)
		}
		p, ok := eng.(Persister)
		if !ok {
			t.Errorf("%s must implement Persister", tc.key)
			eng.Close()
			continue
		}
		if got := len(p.Devices()); got != tc.wantN {
			t.Errorf("%s (shards=%d): %d devices, want %d", tc.key, tc.shards, got, tc.wantN)
		}
		// Reattachment must adopt the supplied fleet.
		devs := p.Devices()
		eng.Close()
		eng2, err := b.New(Config{Shards: tc.shards, Devices: devs})
		if err != nil {
			t.Fatalf("rebuild %s: %v", tc.key, err)
		}
		re := eng2.(Persister).Devices()
		for i := range devs {
			if re[i] != devs[i] {
				t.Errorf("%s: rebuilt engine ignored Config.Devices[%d]", tc.key, i)
			}
		}
		eng2.Close()
	}
}
