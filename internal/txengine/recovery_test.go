package txengine

import (
	"errors"
	"testing"

	"medley/internal/pnvm"
)

// TestCrashRecoveryConformance is the cross-engine crash/recovery contract
// for persistent engines (txMontage, POneFile), mirroring cmd/recoverydemo
// through the engine layer: commit transactions, simulate a device crash,
// rebuild a fresh engine on the survivors, and assert that synced committed
// state is visible, aborted writes are absent, and post-sync transactions
// recover all-or-nothing.
func TestCrashRecoveryConformance(t *testing.T) {
	const (
		n        = 32
		poison1  = uint64(1 << 20)
		poison2  = poison1 + 1
		errFunds = "insufficient"
	)
	for _, b := range Builders() {
		b := b
		t.Run(b.Key, func(t *testing.T) {
			dev := pnvm.New(pnvm.Latencies{})
			eng, err := b.New(Config{Device: dev})
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			p, ok := eng.(Persister)
			if !ok || p.Device() == nil {
				eng.Close()
				t.Skipf("%s is transient", b.Key)
			}
			if p.Device() != dev {
				t.Fatalf("engine ignored Config.Device")
			}
			spec := testSpec(b.Caps)
			m, err := eng.NewUintMap(spec)
			if err != nil {
				t.Fatal(err)
			}
			tx := eng.NewWorker(0)

			// Phase 1: committed pair transactions, made durable by Sync.
			for i := uint64(0); i < n; i++ {
				i := i
				if err := tx.Run(func() error {
					m.Put(tx, i, 100+i)
					m.Put(tx, i+n, 100+i)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
			}
			// An aborted transaction: its write must never recover.
			errBiz := errors.New(errFunds)
			if err := tx.Run(func() error {
				m.Put(tx, poison1, 666)
				return errBiz
			}); !errors.Is(err, errBiz) {
				t.Fatalf("business abort returned %v", err)
			}
			p.Sync()

			// Phase 2 (after the sync boundary): committed pairs that a
			// buffered-durability engine may legitimately lose — but only
			// whole transactions at a time — plus another aborted write.
			for i := uint64(0); i < n; i++ {
				i := i
				if err := tx.Run(func() error {
					m.Put(tx, 2*n+i, 500+i)
					m.Put(tx, 3*n+i, 500+i)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
			}
			if err := tx.Run(func() error {
				m.Put(tx, poison2, 667)
				return tx.Abort()
			}); !errors.Is(err, ErrBusinessAbort) {
				t.Fatalf("Tx.Abort returned %v", err)
			}

			dev.Crash()
			recs := dev.Recover()
			eng.Close()

			// Post-crash world: a fresh engine over the same device.
			eng2, err := b.New(Config{Device: dev})
			if err != nil {
				t.Fatalf("rebuild: %v", err)
			}
			defer eng2.Close()
			rm, err := eng2.(Persister).RecoverUintMap(recs, spec)
			if err != nil {
				t.Fatal(err)
			}
			tx2 := eng2.NewWorker(0)

			// Synced committed state must be fully visible.
			for i := uint64(0); i < n; i++ {
				for _, k := range []uint64{i, i + n} {
					if v, ok := rm.Get(tx2, k); !ok || v != 100+i {
						t.Fatalf("synced key %d: got %d,%v want %d,true", k, v, ok, 100+i)
					}
				}
			}
			// Aborted writes must be absent.
			for _, k := range []uint64{poison1, poison2} {
				if v, ok := rm.Get(tx2, k); ok {
					t.Fatalf("aborted write recovered: key %d = %d", k, v)
				}
			}
			// Post-sync transactions: all-or-nothing, with correct values
			// when present.
			recovered := 0
			for i := uint64(0); i < n; i++ {
				v1, ok1 := rm.Get(tx2, 2*n+i)
				v2, ok2 := rm.Get(tx2, 3*n+i)
				if ok1 != ok2 {
					t.Fatalf("post-sync tx %d recovered torn: (%v,%v)", i, ok1, ok2)
				}
				if ok1 {
					recovered++
					if v1 != 500+i || v2 != 500+i {
						t.Fatalf("post-sync tx %d recovered wrong values: %d,%d", i, v1, v2)
					}
				}
			}
			// POneFile persists eagerly: everything committed must survive.
			if b.Key == "ponefile" && recovered != n {
				t.Fatalf("eager persistence lost %d/%d post-sync transactions", n-recovered, n)
			}
			t.Logf("%s: recovered %d/%d post-sync transactions", b.Key, recovered, n)
		})
	}
}

// TestPersisterCoverage pins that both persistent engines actually
// implement Persister with a live device — so the conformance suite above
// cannot silently skip them all. (Independent of subtest filtering.)
func TestPersisterCoverage(t *testing.T) {
	for _, key := range []string{"txmontage", "ponefile"} {
		b, ok := Lookup(key)
		if !ok {
			t.Fatalf("registry missing %q", key)
		}
		dev := pnvm.New(pnvm.Latencies{})
		eng, err := b.New(Config{Device: dev})
		if err != nil {
			t.Fatalf("build %s: %v", key, err)
		}
		p, ok := eng.(Persister)
		if !ok || p.Device() != dev {
			t.Errorf("%s must implement Persister over Config.Device", key)
		}
		eng.Close()
	}
}
