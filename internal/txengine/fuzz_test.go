package txengine

import (
	"errors"
	"math/rand/v2"
	"sync"
	"testing"
)

// fuzzOp is one randomly generated map operation.
type fuzzOp struct {
	kind int // 0 get, 1 put, 2 insert, 3 remove
	k, v uint64
}

// TestFuzzConformance applies random transaction sequences to every
// registered engine and to a per-worker sequential model map, and compares
// results. Each worker owns a disjoint key range, so its model is exact
// even though all workers run concurrently (the concurrency still
// exercises shared engine machinery — descriptors, version clocks, the
// writer lock — under the race detector); two extra chaos workers hammer a
// shared range without a model to force real conflicts. Business aborts
// are injected to check rollback: the model ignores aborted blocks.
func TestFuzzConformance(t *testing.T) {
	const (
		workers  = 4
		chaos    = 2
		iters    = 1500
		rangeLen = 64
	)
	errBiz := errors.New("fuzz: deliberate abort")
	for _, b := range Builders() {
		b := b
		t.Run(b.Key, func(t *testing.T) {
			eng := buildForTest(t, b)
			defer eng.Close()
			m, err := eng.NewUintMap(testSpec(b.Caps))
			if err != nil {
				t.Fatal(err)
			}
			txCapable := b.Caps.Has(CapTx)
			dynamic := b.Caps.Has(CapDynamicTx)

			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					tx := eng.NewWorker(w)
					rng := rand.New(rand.NewPCG(uint64(w)+1, 0xfeed))
					model := make(map[uint64]uint64, rangeLen)
					base := uint64(w+1) << 32
					key := func() uint64 { return base + rng.Uint64N(rangeLen) }
					genOps := func() []fuzzOp {
						ops := make([]fuzzOp, 1+rng.IntN(6))
						for i := range ops {
							ops[i] = fuzzOp{kind: rng.IntN(4), k: key(), v: rng.Uint64()}
						}
						return ops
					}
					// applyModel folds ops into the model, returning the
					// expected results.
					applyModel := func(ops []fuzzOp, model map[uint64]uint64) []fuzzOp {
						out := make([]fuzzOp, len(ops))
						for i, op := range ops {
							prev, had := model[op.k]
							out[i] = fuzzOp{k: prev, v: b2u(had)}
							switch op.kind {
							case 1:
								model[op.k] = op.v
							case 2:
								if !had {
									model[op.k] = op.v
									out[i].v = 1 // insert reports success
								} else {
									out[i].v = 0
								}
							case 3:
								delete(model, op.k)
							}
						}
						return out
					}
					sweep := func() {
						for k := base; k < base+rangeLen; k++ {
							got, ok := m.Get(tx, k)
							want, wok := model[k]
							if ok != wok || (ok && got != want) {
								t.Errorf("%s worker %d: key %d = %d,%v; model %d,%v",
									b.Key, w, k, got, ok, want, wok)
								return
							}
						}
					}
					for i := 0; i < iters; i++ {
						ops := genOps()
						if !txCapable {
							// Original: operations run bare; apply one group
							// non-transactionally and fold into the model.
							want := applyModel(ops, model)
							tx.NoTx(func() {
								for j, op := range ops {
									switch op.kind {
									case 0:
										if v, ok := m.Get(tx, op.k); ok != (want[j].v == 1) || (ok && v != want[j].k) {
											t.Errorf("original get mismatch")
										}
									case 1:
										m.Put(tx, op.k, op.v)
									case 2:
										m.Insert(tx, op.k, op.v)
									case 3:
										m.Remove(tx, op.k)
									}
								}
							})
							continue
						}
						abort := rng.IntN(10) == 0
						got := make([]fuzzOp, len(ops))
						err := tx.Run(func() error {
							for j, op := range ops {
								switch op.kind {
								case 0:
									v, ok := m.Get(tx, op.k)
									got[j] = fuzzOp{k: v, v: b2u(ok)}
								case 1:
									v, ok := m.Put(tx, op.k, op.v)
									got[j] = fuzzOp{k: v, v: b2u(ok)}
								case 2:
									ok := m.Insert(tx, op.k, op.v)
									got[j] = fuzzOp{v: b2u(ok)}
								case 3:
									v, ok := m.Remove(tx, op.k)
									got[j] = fuzzOp{k: v, v: b2u(ok)}
								}
							}
							if abort {
								return errBiz
							}
							return nil
						})
						if abort {
							if !errors.Is(err, errBiz) {
								t.Errorf("%s: aborted tx returned %v", b.Key, err)
								return
							}
							// Rolled back: the model is untouched.
						} else {
							if err != nil {
								t.Errorf("%s: %v", b.Key, err)
								return
							}
							want := applyModel(ops, model)
							if dynamic {
								for j := range ops {
									// Compare prev-value results of the
									// committed attempt (insert: success bit
									// only).
									if ops[j].kind == 2 {
										if got[j].v != want[j].v {
											t.Errorf("%s worker %d iter %d op %d: insert=%v want %v",
												b.Key, w, i, j, got[j].v, want[j].v)
											return
										}
										continue
									}
									if got[j].v != want[j].v || (got[j].v == 1 && got[j].k != want[j].k) {
										t.Errorf("%s worker %d iter %d op %d (kind %d): got %d,%d want %d,%d",
											b.Key, w, i, j, ops[j].kind, got[j].k, got[j].v, want[j].k, want[j].v)
										return
									}
								}
							}
						}
						if i%100 == 0 {
							sweep()
						}
					}
					sweep()
				}(w)
			}
			// Chaos workers: force real conflicts on a shared key range; no
			// model, just load.
			if txCapable {
				for c := 0; c < chaos; c++ {
					wg.Add(1)
					go func(c int) {
						defer wg.Done()
						tx := eng.NewWorker(workers + c)
						rng := rand.New(rand.NewPCG(uint64(c)+99, 0xc0ffee))
						for i := 0; i < iters; i++ {
							k := rng.Uint64N(8)
							_ = tx.Run(func() error {
								if v, ok := m.Get(tx, k); ok {
									m.Put(tx, k, v+1)
								} else {
									m.Insert(tx, k, 1)
								}
								return nil
							})
						}
					}(c)
				}
			}
			wg.Wait()
		})
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
