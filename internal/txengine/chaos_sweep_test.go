package txengine

import (
	"fmt"
	"testing"

	"medley/internal/chaos"
	"medley/internal/pnvm"
)

// The crash-point sweep: for every registered fault point on an engine's
// persistence path, arm a device-fleet crash there (at several hit offsets,
// so the fault lands mid-payload and mid-retire, not just on first touch),
// run transactions until the crash fires, recover from the surviving media,
// and audit failure atomicity. This is the systematic version of the
// conformance suite's single coarse crash: instead of one failure between
// flushes, a failure at every reachable instant inside them.

// ponefilePoints spans POneFile's WriteTx persistence window in protocol
// order, plus the media-level points that fire inside it.
var ponefilePoints = []string{
	"ponefile.commit.pre-log",
	"ponefile.commit.payload",
	"ponefile.commit.retire",
	"ponefile.commit.pre-mark",
	"ponefile.commit.mark-volatile",
	"ponefile.commit.post-mark",
	"ponefile.commit.gc",
	"pnvm.write",
	"pnvm.writeback",
}

// montagePoints spans the txMontage flush/advance path, plus the media-level
// points that fire during transactions themselves.
var montagePoints = []string{
	"txmontage.flush.batch",
	"txmontage.flush.pre-marker",
	"txmontage.flush.marker-volatile",
	"txmontage.advance.pre-flush",
	"txmontage.advance.mid-shard",
	"pnvm.write",
	"pnvm.writeback",
}

// requireRegistered pins the sweep's point lists against the live registry,
// so a renamed point fails loudly instead of silently never firing.
func requireRegistered(t *testing.T, names []string) {
	t.Helper()
	reg := map[string]bool{}
	for _, n := range chaos.Names() {
		reg[n] = true
	}
	for _, n := range names {
		if !reg[n] {
			t.Fatalf("chaos point %q is not registered (catalog: %v)", n, chaos.Names())
		}
	}
}

// chaosCrashed runs fn, converting a chaos crash panic — the modeled process
// death — into a true return. Any other panic propagates.
func chaosCrashed(fn func()) (crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := chaos.AsCrash(r); !ok {
				panic(r)
			}
			crashed = true
		}
	}()
	fn()
	return false
}

// TestChaosCrashPointSweepPOneFile is the acceptance sweep for the redo-log
// commit record: a crash armed at ANY registered point inside POneFile's
// WriteTx persistence window must recover with no torn transaction visible.
// Each transaction writes two fresh stamp keys and moves one unit between
// two accounts; after crash + recovery, every attempted transaction must be
// all-or-nothing (stamp pair both-or-neither), every transaction that
// returned before the crash must be fully present (eager persistence), and
// the account total must be conserved.
func TestChaosCrashPointSweepPOneFile(t *testing.T) {
	requireRegistered(t, ponefilePoints)
	for _, point := range ponefilePoints {
		for _, after := range []int{0, 1, 2} {
			t.Run(fmt.Sprintf("%s/after=%d", point, after), func(t *testing.T) {
				sweepPOneFile(t, point, after)
			})
		}
	}
}

func sweepPOneFile(t *testing.T, point string, after int) {
	const (
		accounts = uint64(8)
		opening  = uint64(1000)
		stampA   = uint64(10_000)
		stampB   = uint64(20_000)
		maxTx    = 40
	)
	t.Cleanup(chaos.DisarmAll)
	b, _ := Lookup("ponefile")
	eng, err := b.New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	p := eng.(Persister)
	devs := p.Devices()
	spec := testSpec(b.Caps)
	m, err := eng.NewUintMap(spec)
	if err != nil {
		t.Fatal(err)
	}
	tx := eng.NewWorker(0)
	if err := tx.Run(func() error {
		for a := uint64(0); a < accounts; a++ {
			m.Put(tx, a, opening)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	if err := chaos.Arm(point, chaos.Fault{
		Kind:  chaos.Crash,
		After: after,
		Action: func() {
			for _, d := range devs {
				d.Crash()
			}
		},
	}); err != nil {
		t.Fatal(err)
	}

	// Transfer transactions until the armed crash lands. completed counts
	// transactions whose Run returned: POneFile is eager, so all of them
	// must survive in full. The one in flight at the crash may land either
	// way — but never torn.
	completed, attempted := 0, 0
	crashed := false
	for i := 1; i <= maxTx && !crashed; i++ {
		i := uint64(i)
		attempted = int(i)
		crashed = chaosCrashed(func() {
			from := (i * 7) % accounts
			to := (from + 3) % accounts
			if err := tx.Run(func() error {
				fv, _ := m.Get(tx, from)
				tv, _ := m.Get(tx, to)
				m.Put(tx, from, fv-1)
				m.Put(tx, to, tv+1)
				m.Put(tx, stampA+i, i)
				m.Put(tx, stampB+i, i)
				return nil
			}); err != nil {
				t.Fatalf("transfer %d: %v", i, err)
			}
		})
		if !crashed {
			completed = int(i)
		}
	}
	if !crashed {
		t.Fatalf("point %s (after=%d) never fired in %d transactions", point, after, maxTx)
	}
	chaos.DisarmAll()

	dumps := pnvm.DumpAll(devs)
	eng2, err := b.New(Config{Devices: devs})
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	defer eng2.Close()
	rm, err := eng2.(Persister).RecoverUintMap(dumps, spec)
	if err != nil {
		t.Fatal(err)
	}
	tx2 := eng2.NewWorker(0)

	// Conservation: transfers move value, never create or destroy it.
	var sum uint64
	for a := uint64(0); a < accounts; a++ {
		v, ok := rm.Get(tx2, a)
		if !ok {
			t.Fatalf("account %d missing after recovery", a)
		}
		sum += v
	}
	if want := accounts * opening; sum != want {
		t.Fatalf("conservation broken: accounts sum to %d, want %d", sum, want)
	}
	// Atomicity, per attempted transaction: its stamp pair recovers
	// both-or-neither, and every transaction acknowledged before the crash
	// recovers in full (eager persistence loses nothing acknowledged).
	for i := uint64(1); i <= uint64(attempted); i++ {
		v1, ok1 := rm.Get(tx2, stampA+i)
		v2, ok2 := rm.Get(tx2, stampB+i)
		if ok1 != ok2 {
			t.Fatalf("tx %d recovered torn at %s: stamps (%v,%v)", i, point, ok1, ok2)
		}
		if ok1 && (v1 != i || v2 != i) {
			t.Fatalf("tx %d recovered wrong stamps: %d,%d", i, v1, v2)
		}
		if int(i) <= completed && !ok1 {
			t.Fatalf("acknowledged tx %d lost after crash at %s", i, point)
		}
	}
	t.Logf("%s after=%d: crashed in tx %d (%d acknowledged), recovery atomic", point, after, attempted, completed)
}

// TestChaosCrashPointSweepShardedMontage sweeps the txMontage flush/advance
// path at shards 1, 2, and 8: base state is committed and synced, more pair
// transactions run, then a crash is armed and fired either mid-transaction
// (media points) or mid-sync (flush/advance points). Recovery must keep the
// synced state intact and every later pair all-or-nothing — including the
// torn-domain cases where only some shards carry the newest frontier marker.
func TestChaosCrashPointSweepShardedMontage(t *testing.T) {
	requireRegistered(t, montagePoints)
	for _, shards := range []int{1, 2, 8} {
		for _, point := range montagePoints {
			t.Run(fmt.Sprintf("shards=%d/%s", shards, point), func(t *testing.T) {
				sweepMontage(t, shards, point)
			})
		}
	}
}

func sweepMontage(t *testing.T, shards int, point string) {
	const n = uint64(16)
	t.Cleanup(chaos.DisarmAll)
	b, _ := Lookup("txmontage-sharded")
	eng, err := b.New(Config{Shards: shards}) // EpochLen 0: sync by hand, no background advancer
	if err != nil {
		t.Fatal(err)
	}
	p := eng.(Persister)
	devs := p.Devices()
	spec := testSpec(b.Caps)
	m, err := eng.NewUintMap(spec)
	if err != nil {
		t.Fatal(err)
	}
	tx := eng.NewWorker(0)

	// Phase 1: committed pairs, made durable by an un-instrumented sync.
	for i := uint64(0); i < n; i++ {
		i := i
		if err := tx.Run(func() error {
			m.Put(tx, i, 100+i)
			m.Put(tx, i+n, 100+i)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	p.Sync()

	if err := chaos.Arm(point, chaos.Fault{
		Kind: chaos.Crash,
		Action: func() {
			for _, d := range devs {
				d.Crash()
			}
		},
	}); err != nil {
		t.Fatal(err)
	}

	// Phase 2: more pairs, then a sync — the media points fire inside the
	// transactions, the flush/advance points inside the sync.
	crashed := false
	for i := uint64(0); i < n && !crashed; i++ {
		i := i
		crashed = chaosCrashed(func() {
			if err := tx.Run(func() error {
				m.Put(tx, 2*n+i, 500+i)
				m.Put(tx, 3*n+i, 500+i)
				return nil
			}); err != nil {
				t.Fatalf("phase-2 tx %d: %v", i, err)
			}
		})
	}
	if !crashed {
		crashed = chaosCrashed(func() { p.Sync() })
	}
	if !crashed {
		t.Fatalf("point %s never fired at shards=%d (transactions and sync both survived)", point, shards)
	}
	chaos.DisarmAll()

	dumps := pnvm.DumpAll(devs)
	eng2, err := b.New(Config{Shards: shards, Devices: devs})
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	defer eng2.Close()
	rm, err := eng2.(Persister).RecoverUintMap(dumps, spec)
	if err != nil {
		t.Fatal(err)
	}
	tx2 := eng2.NewWorker(0)

	// Synced committed state must be fully visible.
	for i := uint64(0); i < n; i++ {
		for _, k := range []uint64{i, i + n} {
			if v, ok := rm.Get(tx2, k); !ok || v != 100+i {
				t.Fatalf("synced key %d: got %d,%v want %d,true", k, v, ok, 100+i)
			}
		}
	}
	// Post-sync pairs: all-or-nothing, correct values when present.
	recovered := 0
	for i := uint64(0); i < n; i++ {
		v1, ok1 := rm.Get(tx2, 2*n+i)
		v2, ok2 := rm.Get(tx2, 3*n+i)
		if ok1 != ok2 {
			t.Fatalf("post-sync pair %d recovered torn at %s: (%v,%v)", i, point, ok1, ok2)
		}
		if ok1 {
			recovered++
			if v1 != 500+i || v2 != 500+i {
				t.Fatalf("post-sync pair %d recovered wrong values: %d,%d", i, v1, v2)
			}
		}
	}
	t.Logf("shards=%d %s: crash fired, %d/%d post-sync pairs recovered, no tears", shards, point, recovered, n)
}
