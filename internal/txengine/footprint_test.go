package txengine

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"testing"
)

// keyOnShard returns the first key >= start that routes to shard s on se.
func keyOnShard(t testing.TB, se *shardedEngine, s int, start uint64) uint64 {
	t.Helper()
	for k := start; k < start+1<<20; k++ {
		if se.shardOf(k) == s {
			return k
		}
	}
	t.Fatalf("no key on shard %d near %d", s, start)
	return 0
}

// distinctShardKeys returns n keys routing to n distinct shards, in shard
// order 0..n-1, with successive calls disjoint via start.
func distinctShardKeys(t testing.TB, se *shardedEngine, n int, start uint64) []uint64 {
	t.Helper()
	keys := make([]uint64, n)
	next := start
	for s := 0; s < n; s++ {
		keys[s] = keyOnShard(t, se, s, next)
		next = keys[s] + 1
	}
	return keys
}

// transferOnce is the shared transaction site for the footprint-cache tests:
// every call Runs the same closure code, so the worker's cache accumulates
// history for it across key pairs.
func transferOnce(t *testing.T, tx Tx, src, dst Map[uint64], from, to uint64) {
	t.Helper()
	if err := tx.Run(func() error {
		c, _ := src.Get(tx, from)
		if c == 0 {
			return nil
		}
		src.Put(tx, from, c-1)
		d, _ := dst.Get(tx, to)
		dst.Put(tx, to, d+1)
		return nil
	}); err != nil {
		t.Fatalf("transfer: %v", err)
	}
}

// TestShardedHintedTransferNoDiscovery: with both keys pre-declared via
// HintKeys, cross-shard transfers must acquire their footprint up front —
// zero discovery restarts, every cross-shard Run a footprint hit, and no
// misses — while conserving value.
func TestShardedHintedTransferNoDiscovery(t *testing.T) {
	const iters = 400
	eng, err := Build("medley-sharded", Config{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	se := eng.(*shardedEngine)
	checking, _ := eng.NewUintMap(MapSpec{Kind: KindHash, Buckets: 256})
	savings, _ := eng.NewUintMap(MapSpec{Kind: KindHash, Buckets: 256})

	const accounts = 64
	init := eng.NewWorker(0)
	for a := uint64(0); a < accounts; a++ {
		checking.Put(init, a, 1000)
		savings.Put(init, a, 1000)
	}

	tx := eng.NewWorker(1)
	rng := rand.New(rand.NewPCG(42, 1))
	base := eng.Stats()
	wantHits := uint64(0)
	for i := 0; i < iters; i++ {
		from, to := rng.Uint64N(accounts), rng.Uint64N(accounts)
		if se.shardOf(from) != se.shardOf(to) {
			wantHits++
		}
		HintKeys(tx, from, to)
		transferOnce(t, tx, checking, savings, from, to)
	}
	d := eng.Stats().Delta(base)
	if d.CrossShardRestarts != 0 {
		t.Errorf("hinted transfers paid %d discovery restarts, want 0", d.CrossShardRestarts)
	}
	if d.FootprintMisses != 0 {
		t.Errorf("hinted transfers counted %d misses, want 0", d.FootprintMisses)
	}
	if d.FootprintHits != wantHits {
		t.Errorf("FootprintHits = %d, want %d (one per cross-shard Run)", d.FootprintHits, wantHits)
	}
	if d.Commits != iters {
		t.Errorf("Commits = %d, want %d", d.Commits, iters)
	}

	audit := eng.NewWorker(2)
	sum := uint64(0)
	for a := uint64(0); a < accounts; a++ {
		c, _ := checking.Get(audit, a)
		s, _ := savings.Get(audit, a)
		sum += c + s
	}
	if sum != 2*accounts*1000 {
		t.Fatalf("conservation violated: sum %d, want %d", sum, 2*accounts*1000)
	}
}

// TestShardedFootprintCacheConverges pins the cache's deterministic
// convergence on a stable site: a fixed cross-shard key pair pays exactly
// fpConfident discovery restarts (one per confidence-building Run), after
// which every Run is a predicted hit with no further restarts.
func TestShardedFootprintCacheConverges(t *testing.T) {
	const iters = 50
	eng, err := Build("medley-sharded", Config{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	se := eng.(*shardedEngine)
	m1, _ := eng.NewUintMap(MapSpec{Kind: KindHash, Buckets: 64})
	m2, _ := eng.NewUintMap(MapSpec{Kind: KindHash, Buckets: 64})

	keys := distinctShardKeys(t, se, 2, 0)
	init := eng.NewWorker(0)
	m1.Put(init, keys[0], 10_000)
	m2.Put(init, keys[1], 10_000)

	tx := eng.NewWorker(1)
	base := eng.Stats()
	for i := 0; i < iters; i++ {
		transferOnce(t, tx, m1, m2, keys[0], keys[1])
	}
	d := eng.Stats().Delta(base)
	if d.CrossShardRestarts != fpConfident {
		t.Errorf("stable site paid %d discovery restarts, want exactly fpConfident=%d", d.CrossShardRestarts, fpConfident)
	}
	if want := uint64(iters - fpConfident); d.FootprintHits != want {
		t.Errorf("FootprintHits = %d, want %d (every Run after convergence)", d.FootprintHits, want)
	}
	if d.FootprintMisses != 0 {
		t.Errorf("FootprintMisses = %d, want 0", d.FootprintMisses)
	}
}

// TestShardedFootprintCacheInvalidatesOnShift: when a site's key
// distribution shifts mid-run, the first predicted Run after the shift
// mispredicts once, falls back to discovery (committing atomically), and
// the cache re-converges on the new footprint.
func TestShardedFootprintCacheInvalidatesOnShift(t *testing.T) {
	const phase = 20
	eng, err := Build("medley-sharded", Config{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	se := eng.(*shardedEngine)
	m1, _ := eng.NewUintMap(MapSpec{Kind: KindHash, Buckets: 64})
	m2, _ := eng.NewUintMap(MapSpec{Kind: KindHash, Buckets: 64})

	// Four keys on four distinct shards: phase A transfers 0→1, phase B 2→3.
	keys := distinctShardKeys(t, se, 4, 0)
	init := eng.NewWorker(0)
	for _, k := range keys {
		m1.Put(init, k, 10_000)
		m2.Put(init, k, 10_000)
	}

	tx := eng.NewWorker(1)
	for i := 0; i < phase; i++ {
		transferOnce(t, tx, m1, m2, keys[0], keys[1])
	}
	base := eng.Stats()
	for i := 0; i < phase; i++ {
		transferOnce(t, tx, m1, m2, keys[2], keys[3])
	}
	d := eng.Stats().Delta(base)
	if d.FootprintMisses != 1 {
		t.Errorf("shifted site counted %d misses, want exactly 1 (the stale prediction)", d.FootprintMisses)
	}
	// The mispredicted Run restarts twice (once dropping the stale set,
	// once growing to the second new shard) and its commit already counts
	// as the first fresh observation; the following fpConfident-1 Runs
	// rebuild confidence with one discovery restart each; the rest hit.
	if want := uint64(fpConfident + 1); d.CrossShardRestarts != want {
		t.Errorf("shift paid %d restarts, want %d", d.CrossShardRestarts, want)
	}
	if want := uint64(phase - fpConfident); d.FootprintHits != want {
		t.Errorf("FootprintHits after shift = %d, want %d", d.FootprintHits, want)
	}
	if d.Commits != phase {
		t.Errorf("Commits = %d, want %d (every shifted Run must still commit)", d.Commits, phase)
	}

	// Atomicity across the shift: all value movements conserved.
	audit := eng.NewWorker(2)
	sum := uint64(0)
	for _, k := range keys {
		a, _ := m1.Get(audit, k)
		b, _ := m2.Get(audit, k)
		sum += a + b
	}
	if sum != 8*10_000 {
		t.Fatalf("conservation violated across distribution shift: sum %d, want %d", sum, 8*10_000)
	}
}

// TestShardedHintAuthoritative: a hint that resolves to a single shard must
// suppress any stale cache prediction for that Run — the declared footprint
// wins, so a converged multi-shard site followed by a hinted single-shard
// Run pays neither a misprediction nor a restart.
func TestShardedHintAuthoritative(t *testing.T) {
	eng, err := Build("medley-sharded", Config{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	se := eng.(*shardedEngine)
	m1, _ := eng.NewUintMap(MapSpec{Kind: KindHash, Buckets: 64})
	m2, _ := eng.NewUintMap(MapSpec{Kind: KindHash, Buckets: 64})

	keys := distinctShardKeys(t, se, 2, 0)
	init := eng.NewWorker(0)
	m1.Put(init, keys[0], 1000)
	m2.Put(init, keys[0], 1000)
	m2.Put(init, keys[1], 1000)

	// Converge the site on the cross-shard pair.
	tx := eng.NewWorker(1)
	for i := 0; i < fpConfident+2; i++ {
		transferOnce(t, tx, m1, m2, keys[0], keys[1])
	}

	// Same site, single-shard keys, hinted: the cache's {shard0, shard1}
	// entry must not be consulted.
	base := eng.Stats()
	HintKeys(tx, keys[0], keys[0])
	transferOnce(t, tx, m1, m2, keys[0], keys[0])
	d := eng.Stats().Delta(base)
	if d.FootprintMisses != 0 || d.CrossShardRestarts != 0 {
		t.Errorf("hinted single-shard Run after a converged cross-shard site: misses=%d restarts=%d, want 0/0",
			d.FootprintMisses, d.CrossShardRestarts)
	}
	if d.FootprintHits != 0 {
		t.Errorf("single-shard hint counted a hit (%d); only multi-shard pre-declarations count", d.FootprintHits)
	}
}

// TestShardedMispredictFallbackConservation is the concurrent misprediction
// audit at shards 2 and 8: workers run transfers whose hints are frequently
// wrong (stale keys hinted, fresh keys transacted), so predicted attempts
// mispredict and fall back to discovery mid-flight, while auditors sweep
// the whole ledger. Conservation must hold throughout and at the end.
func TestShardedMispredictFallbackConservation(t *testing.T) {
	const (
		accounts = 48
		perAcct  = 1000
		workers  = 4
		iters    = 250
	)
	for _, shards := range []int{2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			eng, err := Build("medley-sharded", Config{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			checking, _ := eng.NewUintMap(MapSpec{Kind: KindHash, Buckets: 256})
			savings, _ := eng.NewUintMap(MapSpec{Kind: KindHash, Buckets: 256})
			init := eng.NewWorker(0)
			for a := uint64(0); a < accounts; a++ {
				checking.Put(init, a, perAcct)
				savings.Put(init, a, perAcct)
			}

			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					tx := eng.NewWorker(1 + id)
					rng := rand.New(rand.NewPCG(uint64(id)+7, uint64(shards)))
					for i := 0; i < iters; i++ {
						from := rng.Uint64N(accounts)
						to := rng.Uint64N(accounts)
						// Deliberately stale hint: declare a different key
						// pair than the transaction will touch. On wide
						// shard counts this mispredicts regularly; the
						// fallback must stay atomic.
						HintKeys(tx, rng.Uint64N(accounts), rng.Uint64N(accounts))
						err := tx.Run(func() error {
							c, ok := checking.Get(tx, from)
							if !ok || c == 0 {
								return nil
							}
							amt := uint64(rng.IntN(int(min(c, 50))) + 1)
							s, _ := savings.Get(tx, to)
							checking.Put(tx, from, c-amt)
							savings.Put(tx, to, s+amt)
							return nil
						})
						if err != nil {
							t.Errorf("transfer: %v", err)
							return
						}
					}
				}(w)
			}
			stop := make(chan struct{})
			violation := make(chan string, 1)
			var rwg sync.WaitGroup
			rwg.Add(1)
			go func() {
				defer rwg.Done()
				tx := eng.NewWorker(100)
				for {
					select {
					case <-stop:
						return
					default:
					}
					sum := uint64(0)
					err := tx.Run(func() error {
						sum = 0
						for a := uint64(0); a < accounts; a++ {
							c, _ := checking.Get(tx, a)
							s, _ := savings.Get(tx, a)
							sum += c + s
						}
						return nil
					})
					if err == nil && sum != 2*accounts*perAcct {
						select {
						case violation <- fmt.Sprintf("committed sweep sums %d, want %d", sum, 2*accounts*perAcct):
						default:
						}
					}
				}
			}()
			wg.Wait()
			close(stop)
			rwg.Wait()
			select {
			case v := <-violation:
				t.Fatalf("misprediction fallback tore a transfer: %s", v)
			default:
			}

			final := eng.NewWorker(999)
			sum := uint64(0)
			for a := uint64(0); a < accounts; a++ {
				c, _ := checking.Get(final, a)
				s, _ := savings.Get(final, a)
				sum += c + s
			}
			if sum != 2*accounts*perAcct {
				t.Fatalf("final sum %d != %d", sum, 2*accounts*perAcct)
			}
			if shards == 8 {
				// At 8 shards disjoint key pairs are common, so the stale
				// hints must actually have exercised the miss path.
				if misses := eng.Stats().FootprintMisses; misses == 0 {
					t.Error("stale hints produced no FootprintMisses at 8 shards; the fallback path went unexercised")
				}
			}
		})
	}
}

// TestShardsOverParallelismWarningOnce pins the registry-wrapper dedupe:
// however many sharded engines a run constructs at an over-parallel shard
// count, the warning prints once per distinct count.
func TestShardsOverParallelismWarningOnce(t *testing.T) {
	var mu sync.Mutex
	var warned []string
	orig := warnShardsFn
	warnShardsFn = func(msg string) {
		mu.Lock()
		warned = append(warned, msg)
		mu.Unlock()
	}
	defer func() { warnShardsFn = orig }()

	// Counts chosen to be over-parallel on any host this test runs on, and
	// distinct from anything other tests construct, so the process-global
	// dedupe map is fresh for them.
	n1 := 4*runtime.GOMAXPROCS(0) + 7
	n2 := 4*runtime.GOMAXPROCS(0) + 9
	for i := 0; i < 3; i++ {
		eng, err := Build("medley-sharded", Config{Shards: n1})
		if err != nil {
			t.Fatal(err)
		}
		eng.Close()
	}
	if len(warned) != 1 {
		t.Fatalf("3 constructions at shards=%d warned %d times, want once: %v", n1, len(warned), warned)
	}
	eng, err := Build("original-sharded", Config{Shards: n2})
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()
	if len(warned) != 2 {
		t.Fatalf("a distinct over-parallel count must warn anew: got %d warnings", len(warned))
	}
	// Non-sharded engines ignore Config.Shards and must not warn.
	if eng, err = Build("medley", Config{Shards: n1 + 2}); err != nil {
		t.Fatal(err)
	}
	eng.Close()
	if len(warned) != 2 {
		t.Fatalf("non-sharded engine warned about Shards it ignores: %v", warned)
	}
}

// TestShardedQueueHomeRoundRobinConcurrent pins the atomic round-robin
// home-shard assignment: queues created concurrently — including from
// concurrently built engines — spread exactly evenly, with no duplicate or
// lost counter slots (the data race an unsynchronized counter would have;
// run under -race in CI).
func TestShardedQueueHomeRoundRobinConcurrent(t *testing.T) {
	const (
		engines   = 4
		makers    = 4
		perMaker  = 8
		shardsCnt = 8
	)
	var ewg sync.WaitGroup
	for e := 0; e < engines; e++ {
		ewg.Add(1)
		go func() {
			defer ewg.Done()
			eng, err := Build("medley-sharded", Config{Shards: shardsCnt})
			if err != nil {
				t.Error(err)
				return
			}
			defer eng.Close()
			homes := make(chan int, makers*perMaker)
			var wg sync.WaitGroup
			for m := 0; m < makers; m++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perMaker; i++ {
						q, err := eng.NewUintQueue()
						if err != nil {
							t.Error(err)
							return
						}
						homes <- q.(*shardedQueue).home
					}
				}()
			}
			wg.Wait()
			close(homes)
			perShard := make([]int, shardsCnt)
			for h := range homes {
				perShard[h]++
			}
			for s, n := range perShard {
				if n != makers*perMaker/shardsCnt {
					t.Errorf("shard %d is home to %d queues, want %d (round-robin must stay exact under concurrency)",
						s, n, makers*perMaker/shardsCnt)
				}
			}
		}()
	}
	ewg.Wait()
}
