package txengine

// Footprint prediction for the sharded runtime.
//
// A cross-shard transaction on a sharded engine normally discovers its shard
// set by optimistic execution: the first attempt runs single-shard, and every
// operation that touches a shard outside the known set restarts the attempt
// with the union (Stats.CrossShardRestarts). Discovery is correct but pays
// one wasted execution per footprint growth — on a transfer-style workload at
// eight shards, the overwhelming majority of transactions restart exactly
// once just to learn their second shard.
//
// This file removes that cost along two complementary paths, in the spirit
// of surrogate-model partition selection (predict a partition's footprint
// cheaply instead of discovering it by failure):
//
//   - Planner hints (KeyHinter/HintKeys): workloads that know their keys up
//     front — a transfer knows both accounts before the transaction begins —
//     pre-declare them. The sharded engine routes the keys, and the next Run
//     acquires the whole predicted shard set's locks before the first
//     attempt, skipping discovery entirely.
//
//   - A per-worker footprint cache (fpCache): every Run is keyed by its
//     transaction site — the code pointer of the closure passed to Run, so
//     all iterations of one workload loop share a key — and the footprint it
//     committed with is recorded. Once a site's multi-shard footprint has
//     been observed identically fpConfident times in a row, subsequent Runs
//     at that site pre-declare it like a hint would. Sites whose footprints
//     vary run-to-run (uniformly random keys) never reach the confidence
//     bar and keep the plain discovery path, so the cache cannot make an
//     unpredictable workload slower or over-lock it.
//
// Mispredictions are safe by construction: a predicted attempt that touches
// a shard outside its pre-declared set falls back to today's restart path —
// the attempt rolls back, the cache entry is invalidated, and the retry uses
// the shards the attempt actually touched (not the stale prediction), so a
// shifted key distribution re-converges after one miss. Prediction
// effectiveness is surfaced as Stats.FootprintHits / FootprintMisses.

import (
	"reflect"
	"slices"
	"sync"
)

// KeyHinter is the optional Tx extension of footprint-predicting (sharded)
// engines: HintKeys pre-declares map keys the worker's next Run will touch,
// so the transaction can acquire its whole shard set up front instead of
// discovering it by restart — and, on latch-enabled engines, latch exactly
// those keys instead of locking whole shards (see latch.go). The keys are
// sorted and deduplicated once, at declaration time. Successive HintKeys /
// HintQueues calls before a Run accumulate into one declaration; the next
// Run consumes it whole and applies it to all of its attempts. Hinting
// inside Run is a no-op.
type KeyHinter interface {
	HintKeys(keys ...uint64)
}

// QueueHinter is the queue-side companion of KeyHinter: HintQueues
// pre-declares transactional queues the worker's next Run will touch, so a
// latched cross-shard attempt covers the queue's home shard and serializes
// same-queue traffic through the queue's synthetic latch key rather than
// falling back to whole-shard locks.
type QueueHinter interface {
	HintQueues(qs ...Queue[uint64])
}

// HintQueues forwards a queue footprint hint to tx when its engine supports
// hints; elsewhere it is a no-op, like HintKeys.
func HintQueues(tx Tx, qs ...Queue[uint64]) {
	if h, ok := tx.(QueueHinter); ok {
		h.HintQueues(qs...)
	}
}

// HintKeys forwards a footprint hint to tx when its engine supports hints
// (the sharded decorators); on every other engine it is a no-op, so portable
// workload code can hint unconditionally. Keys that route to a single shard
// produce no pre-declaration — the single-shard fast path is already
// optimal — so over-hinting is harmless.
func HintKeys(tx Tx, keys ...uint64) {
	if h, ok := tx.(KeyHinter); ok {
		h.HintKeys(keys...)
	}
}

// fpConfident is the prediction confidence bar: a site's footprint must have
// been observed identically this many times in a row before Runs pre-declare
// it. One observation is not enough — a site that alternates footprints
// (random keys) would then mispredict on every other Run, and a mispredicted
// attempt costs more than a discovery restart (it holds exclusive locks it
// did not need). Three consecutive observations make a lucky streak on a
// uniformly random site rare (at eight shards, under 0.2% of Runs) while a
// genuinely stable site still converges within its first few iterations.
const fpConfident = 3

// fpEntry is one transaction site's learned footprint: the shard set, and —
// when the site's key set is stable and small enough to latch — the latch
// key set. Key confidence is tracked separately from shard confidence: a
// site can have a rock-stable shard pair under rotating keys (uniform
// transfer at two shards), in which case shard prediction fires but the
// attempt falls back to whole-shard locks rather than latching stale keys.
type fpEntry struct {
	want  []int    // last observed multi-shard footprint, ascending
	keys  []uint64 // last observed latch key set, ascending, ≤ latchMaxKeys
	conf  uint8    // consecutive identical shard-set observations (saturating)
	kconf uint8    // consecutive identical key-set observations (saturating)
}

// fpCache is the per-worker footprint cache: transaction site → learned
// shard set. It lives on the worker's Tx handle, so it is touched by exactly
// one goroutine and needs no synchronization; the one-entry last-site memo
// makes the common case (a worker looping over one transaction body) a
// pointer compare instead of a map probe.
type fpCache struct {
	m        map[uintptr]*fpEntry
	lastSite uintptr
	lastE    *fpEntry
}

// entry returns the cache entry for site, nil if none. Negative results are
// memoized too: a single-shard-only site pays one map probe, then pointer
// compares.
func (c *fpCache) entry(site uintptr) *fpEntry {
	if site == c.lastSite && site != 0 {
		return c.lastE
	}
	e := c.m[site]
	c.lastSite, c.lastE = site, e
	return e
}

// predict returns the shard set to pre-declare for a Run at site (nil when
// the site has no confident multi-shard footprint) and, when the site's key
// set is independently confident, the latch key set to acquire instead of
// whole-shard locks. Both returned slices are entry-owned: callers must not
// mutate or recycle them.
func (c *fpCache) predict(site uintptr) ([]int, []uint64) {
	if e := c.entry(site); e != nil && e.conf >= fpConfident {
		if e.kconf >= fpConfident {
			return e.want, e.keys
		}
		return e.want, nil
	}
	return nil, nil
}

// learn records the footprint a Run at site actually used: the shard set fp
// and the distinct keys the final attempt touched (keyOverflow set when the
// attempt touched more than latchMaxKeys keys, which disqualifies the site
// from key prediction). Multi-shard footprints build confidence when stable
// and reset it when they change; single-shard Runs decay confidence, so a
// site that stops crossing shards stops being predicted. The keys slice is
// caller-owned scratch; the entry keeps its own copy in place.
func (c *fpCache) learn(site uintptr, fp []int, keys []uint64, keyOverflow bool) {
	if len(fp) <= 1 {
		if e := c.entry(site); e != nil && e.conf > 0 {
			e.conf--
		}
		return
	}
	e := c.entry(site)
	if e == nil {
		if c.m == nil {
			c.m = make(map[uintptr]*fpEntry, 8)
		}
		e = &fpEntry{}
		c.m[site] = e
		c.lastSite, c.lastE = site, e
	}
	if slices.Equal(e.want, fp) {
		if e.conf < 250 {
			e.conf++
		}
	} else {
		e.want = slices.Clone(fp)
		e.conf = 1
	}
	if keyOverflow {
		e.keys, e.kconf = e.keys[:0], 0
		return
	}
	if slices.Equal(e.keys, keys) {
		if e.kconf < 250 {
			e.kconf++
		}
		return
	}
	// Entry storage is reused in place, so a site whose keys rotate every
	// Run (which never reaches key confidence) costs one allocation total,
	// not one per Run.
	e.keys = append(e.keys[:0], keys...)
	e.kconf = 1
}

// miss invalidates site's prediction after a mispredicted attempt: the key
// distribution shifted under the cache, so demand fresh confirmations before
// predicting again.
func (c *fpCache) miss(site uintptr) {
	if e := c.entry(site); e != nil {
		e.conf, e.kconf = 0, 0
	}
}

// runSite identifies a Run's transaction site: the code pointer of the
// closure passed to Run. Every instantiation of one source-level closure
// shares it, so a worker looping over a workload body accumulates history
// under one key, while distinct transaction shapes stay separate.
func runSite(fn func() error) uintptr {
	return reflect.ValueOf(fn).Pointer()
}

// footprintPool recycles the shard-set slices allocated on the footprint
// discovery/growth path, so a restart-heavy phase (cold cache, shifted keys)
// does not allocate one set per restart. Handle-local sets (hint buffers,
// used/begun tracking) are reused in place and never enter the pool.
var footprintPool = sync.Pool{New: func() any { s := make([]int, 0, 8); return &s }}

func getFootprint() *[]int { return footprintPool.Get().(*[]int) }

func putFootprint(p *[]int) {
	*p = (*p)[:0]
	footprintPool.Put(p)
}

// insertShard inserts s into an ascending shard set in place, returning the
// (possibly grown) slice. Shard sets are tiny — a handful of ints — so the
// linear scan beats any cleverness.
func insertShard(set []int, s int) []int {
	for i, v := range set {
		if v == s {
			return set
		}
		if v > s {
			set = append(set, 0)
			copy(set[i+1:], set[i:])
			set[i] = s
			return set
		}
	}
	return append(set, s)
}
