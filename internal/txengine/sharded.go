package txengine

import (
	"errors"
	"fmt"
	"math/bits"
	"reflect"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"medley/internal/core"
	"medley/internal/montage"
	"medley/internal/pnvm"
)

// This file implements the sharded engine runtime: a registry-composable
// decorator that wraps S independent instances of a base engine (each with
// its own TxManager, session list, and structures) and hash-routes every
// map key to its owning shard. Single-shard transactions run entirely on
// that shard's optimistic machinery, under the shard's read lock, so they
// scale with the shard count instead of funneling through one manager.
// Cross-shard transactions come in two grades. When the footprint layer
// knows the transaction's keys — a HintKeys/HintQueues pre-declaration or a
// key-confident footprint-cache entry (see footprint.go) — the attempt runs
// *latched*: it takes only the involved shards' read locks (ascending), then
// latches exactly its declared keys in global key order (latch.go), links
// the per-shard sub-transactions into one shared-fate core.TxGroup, and
// commits them with a single atomic verdict (core.CommitLinked) under the
// epoch commit guard — no shard is ever held exclusively, so disjoint-key
// cross-shard transactions on the same hot shard proceed in parallel. The
// latches serialize latched transactions with overlapping declarations
// (FIFO, no abort churn); atomicity does not depend on them — the TxGroup's
// one status word is what makes the multi-shard commit all-or-nothing even
// though concurrent single-shard traffic can invalidate reads at any time.
//
// When the keys are not known — discovery mode, a misprediction retrying,
// or an oversized key set — the attempt falls back to the original path:
// the involved shards' locks are taken exclusively, in ascending shard
// order, with the shard set coming from shard-level prediction or from
// optimistic discovery (an op touching a shard outside the known set
// restarts the attempt with the union). Exclusivity makes every per-shard
// sub-commit deterministic — no concurrent activity can invalidate a locked
// shard's read set — so the ordered commit sequence is failure-free and the
// composition audits (cross-map transfer conservation, queue+map claim
// integrity) hold exactly as they do on an unsharded engine. Latched
// attempts hold those shards' read locks, so they are excluded by a
// discovery writer like all other traffic and the exclusivity argument
// survives the new mode. Config.NoLatch restores this path for every
// cross-shard transaction (the -nolatch A/B knob).
//
// The decorator needs one thing beyond the public Engine contract: explicit
// transaction control on base worker handles (manualTx), so that one
// logical transaction can hold open sub-transactions on several shards at
// once. Medley-family handles provide it via core.Session; engines without
// transactions (Original) shard trivially, routing bare operations.
//
// # Sharded persistence (txmontage-sharded)
//
// Persistent bases compose too: every shard owns its own montage.EpochSys
// and pnvm.Device, but all of them share one montage.EpochClock, created
// here and passed down through Config.EpochClock. The shared clock is what
// makes durability shard-safely: a cross-shard transaction pins the same
// epoch number on every shard it touches, the ordered sub-commit sequence
// runs under the clock's commit guard (no advance can interleave, and a
// pre-check aborts cleanly if the sub-transactions straddle two epochs), and
// the coordinator — the engine's own advancer goroutine, or Sync — advances
// all shards together so every device reaches the same durable frontier.
// After a crash, recovery takes one dump per device, computes the domain's
// consistent cut (the minimum of the per-device durable frontiers), and
// rebuilds each shard at exactly that cut: state one device persisted ahead
// of the others is discarded, so a transaction is never recovered torn even
// when the crash lands between two shards' flushes.

// DefaultShards is the shard count used when Config.Shards is unset.
const DefaultShards = 4

// manualTx is the optional Tx extension the sharded decorator requires of
// transactional base engines: explicit begin/commit/abort, with commitManual
// returning core.ErrTxAborted on a validation conflict.
type manualTx interface {
	beginManual()
	commitManual() error
	abortManual()
}

// shardSlot is one shard: a private base engine instance plus the shard's
// reader-writer lock. Single-shard attempts and standalone operations hold
// the read side (concurrent with each other, resolved by the base engine's
// own concurrency control); cross-shard attempts hold the write side of
// every involved shard. Padded so adjacent slots never share a cache line.
type shardSlot struct {
	eng Engine
	mu  sync.RWMutex
	_   [88]byte // 16 (iface) + 24 (RWMutex) + 88 = 128
}

type shardedEngine struct {
	name   string
	caps   Caps
	txCap  bool
	shards []*shardSlot
	nextQ  atomic.Uint64 // round-robin home-shard assignment for queues
	ct     counters
	latch  *latchTable // key-granular cross-shard latches; nil when disabled
	snap   *snapTier   // the engine's single MVCC snapshot tier; nil without CapSnapshot

	// Persistence coordination (nil/empty when the base is transient): the
	// shared epoch clock, each shard's epoch system and device in shard
	// order, and the coordinator advancer's lifecycle channels.
	clock *montage.EpochClock
	esys  []*montage.EpochSys
	devs  []*pnvm.Device
	stop  chan struct{}
	done  chan struct{}
}

// epochSysProvider is the seam through which the decorator recognizes
// montage-backed bases and reaches their per-shard epoch systems.
type epochSysProvider interface{ EpochSys() *montage.EpochSys }

// epochPinned is the worker-handle seam of the cross-shard epoch cut: the
// epoch the handle's open manual transaction is pinned to (0 on transient
// bases). See shardedTx.commit.
type epochPinned interface{ pinnedEpoch() uint64 }

// sessionProvider is the worker-handle seam of the latched cross-shard
// path: the base handle's core session, through which per-shard
// sub-transactions are linked into one shared-fate core.TxGroup. Bases
// without it (none today) simply never run latched.
type sessionProvider interface{ coreSession() *core.Session }

// newShardedEngine builds cfg.Shards independent instances of the named
// base engine behind one sharded façade. Persistent (montage-backed) bases
// are built one device per shard on a shared epoch clock; cfg.Devices, when
// non-empty, supplies the per-shard devices (recovery reattachment) and
// must be index-aligned with the shard order.
func newShardedEngine(baseKey string, cfg Config) (Engine, error) {
	b, ok := Lookup(baseKey)
	if !ok {
		return nil, fmt.Errorf("txengine: sharded base %q not registered", baseKey)
	}
	n := cfg.Shards
	if n <= 0 {
		n = DefaultShards
	}
	if len(cfg.Devices) > 0 && len(cfg.Devices) != n {
		return nil, fmt.Errorf("txengine: sharded %s wants one device per shard: got %d devices for %d shards", baseKey, len(cfg.Devices), n)
	}
	clock := cfg.EpochClock
	if clock == nil {
		clock = montage.NewEpochClock()
	}
	sub := cfg
	sub.EpochClock = clock
	sub.EpochLen = 0 // the coordinator owns the advance cadence, not the shards
	// The decorator owns the one snapshot tier and wraps only its top-level
	// maps; sub-engines must not each run a private clock, or a cross-shard
	// transaction would stamp S unrelated timestamps.
	sub.snapOff = true
	e := &shardedEngine{caps: b.Caps, txCap: b.Caps.Has(CapTx)}
	for i := 0; i < n; i++ {
		c := sub
		if len(cfg.Devices) > 0 {
			c.Devices = cfg.Devices[i : i+1]
		} else {
			c.Devices = nil
		}
		shard, err := b.New(c)
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("txengine: sharded %s shard %d: %w", baseKey, i, err)
		}
		e.shards = append(e.shards, &shardSlot{eng: shard})
	}
	e.name = fmt.Sprintf("%s-sh%d", e.shards[0].eng.Name(), n)
	if e.txCap && !cfg.NoLatch {
		e.latch = newLatchTable()
	}

	// Detect montage-backed shards: all of them share clock, so the engine
	// coordinates their epochs and implements the multi-device Persister.
	for _, sl := range e.shards {
		esp, ok := sl.eng.(epochSysProvider)
		if !ok || esp.EpochSys() == nil {
			break
		}
		e.esys = append(e.esys, esp.EpochSys())
		e.devs = append(e.devs, esp.EpochSys().Device())
	}
	if len(e.esys) == len(e.shards) {
		e.clock = clock
		if cfg.EpochLen > 0 {
			e.startCoordinator(cfg.EpochLen)
		}
	} else {
		e.esys, e.devs = nil, nil
	}
	if e.txCap && e.caps.Has(CapSnapshot) && !cfg.snapOff {
		// One tier for the whole engine: every commit — single-shard,
		// cross-shard exclusive, or a PR 6 shared-fate latch group — draws
		// exactly one timestamp from it. Anchored to the shared epoch clock
		// on persistent bases.
		var ec *montage.EpochClock
		if e.clock != nil {
			ec = e.clock
		}
		e.snap = newSnapTier(ec)
	}
	return e, nil
}

// startCoordinator launches the background epoch advancer that moves every
// shard's epoch system forward together (the sharded analogue of
// montage.EpochSys.Start).
func (e *shardedEngine) startCoordinator(period time.Duration) {
	e.stop = make(chan struct{})
	e.done = make(chan struct{})
	go func() {
		defer close(e.done)
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-e.stop:
				return
			case <-t.C:
				montage.AdvanceTogether(e.clock, e.esys)
			}
		}
	}()
}

func (e *shardedEngine) Name() string { return e.name }
func (e *shardedEngine) Caps() Caps   { return e.caps }

// NumShards reports the shard count (for tests and CLI reporting).
func (e *shardedEngine) NumShards() int { return len(e.shards) }

// Stats aggregates the decorator's own transaction accounting with every
// shard's engine stats (standalone-op accounting on bases that keep it).
func (e *shardedEngine) Stats() Stats {
	total := e.ct.snapshot()
	for _, sl := range e.shards {
		total.Add(sl.eng.Stats())
	}
	return total
}

func (e *shardedEngine) Close() {
	if e.stop != nil {
		close(e.stop)
		<-e.done
		e.stop = nil
	}
	for _, sl := range e.shards {
		sl.eng.Close()
	}
}

// Devices implements Persister: every shard's device in shard order, or nil
// when the base engine is transient.
func (e *shardedEngine) Devices() []*pnvm.Device {
	if len(e.devs) == 0 {
		return nil
	}
	out := make([]*pnvm.Device, len(e.devs))
	copy(out, e.devs)
	return out
}

// Sync implements Persister: two coordinated advances move every shard past
// the current epoch together, so when Sync returns each transaction
// committed before the call is durable on all of its shards — one mutually
// consistent boundary, not S independent ones.
func (e *shardedEngine) Sync() {
	if e.clock == nil {
		return
	}
	montage.SyncTogether(e.clock, e.esys)
}

// RecoverUintMap implements Persister: merge S post-crash device dumps into
// one logical map. The domain's consistent cut is the minimum of the
// per-device durable frontiers; each shard's dump is trimmed to that cut
// (so a device that flushed ahead of the others contributes nothing beyond
// it) and then recovered through the shard's own engine. Requires one dump
// per shard, in shard order — i.e. the same shard count the state was
// written under.
func (e *shardedEngine) RecoverUintMap(dumps [][]pnvm.Record, spec MapSpec) (Map[uint64], error) {
	if e.clock == nil {
		return nil, fmt.Errorf("txengine: %s is transient: %w", e.name, ErrUnsupported)
	}
	if len(dumps) != len(e.shards) {
		return nil, fmt.Errorf("txengine: %s recovery wants one dump per shard: got %d dumps for %d shards", e.name, len(dumps), len(e.shards))
	}
	// Every shard recovers its own dump at the *global* cut (not its
	// device's possibly-further frontier); the devices are scrubbed of
	// beyond-cut state and the shared clock re-anchored past the cut, so a
	// second crash cannot resurrect what this recovery discarded.
	cut := montage.ConsistentCut(dumps)
	montage.ReanchorAll(e.clock, e.esys, dumps, cut)
	sub := make([]Map[uint64], len(e.shards))
	subSpec := e.subSpec(spec)
	u64 := montage.Uint64Codec()
	for i := range e.shards {
		live := montage.LiveRecordsAt(dumps[i], cut)
		if spec.Kind == KindHash {
			sub[i] = txmapAdapter[uint64]{montage.RecoverHashMap(e.esys[i], u64, bucketsOr(subSpec, 1<<16), live)}
		} else {
			sub[i] = txmapAdapter[uint64]{montage.RecoverSkipMap(e.esys[i], u64, live)}
		}
	}
	inner := &shardedMap[uint64]{e: e, sub: sub}
	if e.snap == nil {
		return inner, nil
	}
	// Seed every recovered record into the snapshot sidecar at the tier's
	// base cut: a chain miss means "absent", so unseeded recovered keys
	// would vanish from snapshots until their first post-recovery write.
	ch := &snapChains{tier: e.snap}
	for i := range e.shards {
		for _, r := range montage.LiveRecordsAt(dumps[i], cut) {
			ch.seed(r.Key, u64.Dec(r.Val), nil)
		}
	}
	return newSnapUintMap(inner, ch), nil
}

// shardOf routes a key to its owning shard: Fibonacci hashing spreads
// sequential keys uniformly, and the multiply-high range reduction maps the
// hash onto [0, shards) without the integer division a modulo would cost on
// every operation. Worker handles additionally memoize recent routes
// (shardedTx.routeOf), so the repeated-key pattern inside one transaction
// (Get then Put of the same key) hashes once.
func (e *shardedEngine) shardOf(k uint64) int {
	h := k * 0x9e3779b97f4a7c15
	h ^= h >> 32
	hi, _ := bits.Mul64(h, uint64(len(e.shards)))
	return int(hi)
}

// subSpec divides a caller's sizing hints across the shards.
func (e *shardedEngine) subSpec(spec MapSpec) MapSpec {
	n := len(e.shards)
	if spec.Buckets > 0 {
		spec.Buckets = max(spec.Buckets/n, 16)
	}
	if spec.Stripes > 0 {
		spec.Stripes = max(spec.Stripes/n, 8)
	}
	return spec
}

func (e *shardedEngine) NewUintMap(spec MapSpec) (Map[uint64], error) {
	m, err := newShardedMap(e, spec, Engine.NewUintMap)
	if err != nil || e.snap == nil {
		return m, err
	}
	return newSnapUintMap(m, &snapChains{tier: e.snap}), nil
}

func (e *shardedEngine) NewRowMap(spec MapSpec) (Map[any], error) {
	if !e.caps.Has(CapRowMaps) {
		return nil, ErrUnsupported
	}
	m, err := newShardedMap(e, spec, Engine.NewRowMap)
	if err != nil || e.snap == nil {
		return m, err
	}
	return newSnapRowMap(m, &snapChains{tier: e.snap}), nil
}

// NewUintQueue places the queue wholly on one shard (queues have no keys to
// partition by, and FIFO order must survive), assigned round-robin so
// several queues spread load. Queue+map compositions still commit
// atomically through the cross-shard path.
func (e *shardedEngine) NewUintQueue() (Queue[uint64], error) {
	if !e.caps.Has(CapQueue) {
		return nil, ErrUnsupported
	}
	qid := e.nextQ.Add(1) - 1
	home := int(qid) % len(e.shards)
	q, err := e.shards[home].eng.NewUintQueue()
	if err != nil {
		return nil, err
	}
	// The queue's latch key is synthesized from the top of the key space,
	// where real workload keys are vanishingly rare; a collision with a map
	// key is benign — the two just over-serialize through one latch.
	return &shardedQueue{e: e, home: home, lkey: ^uint64(0) - qid, q: q}, nil
}

func (e *shardedEngine) NewWorker(tid int) Tx {
	n := len(e.shards)
	t := &shardedTx{e: e, tid: tid,
		base: make([]Tx, n), man: make([]manualTx, n), pin: make([]epochPinned, n),
		ses: make([]*core.Session, n),
		cur: -1}
	if e.latch != nil {
		t.lw = newLatchWaiter()
	}
	if e.snap != nil {
		t.snap.tier = e.snap
		t.snap.slot = e.snap.newSlot()
	}
	return t
}

// growRestart is the control-flow sentinel thrown when an attempt touches a
// shard outside its locked set; Run catches it and retries with the union.
type growRestart struct{ want []int }

// routeMemoSize is the worker handle's direct-mapped key→shard memo size.
// Must be a power of two.
const routeMemoSize = 8

// shardedTx is the per-worker handle: a lazily filled pool of base handles,
// one per shard this worker has touched, plus the state of the current
// attempt, the route memo, and the footprint-prediction state (pending hint
// + site-keyed cache). Not goroutine-safe, like every Tx.
type shardedTx struct {
	e    *shardedEngine
	tid  int
	base []Tx            // per-shard base handles, created on first touch
	man  []manualTx      // cached manual-transaction seam per handle
	pin  []epochPinned   // cached epoch seam per handle (nil where absent)
	ses  []*core.Session // cached core-session seam per handle (nil where absent)

	inRun     bool
	cross     bool   // attempt holds locks on want (exclusive unless latched)
	predicted bool   // attempt's want was pre-declared (hint or cache)
	locksHeld bool   // cross-mode locks currently held
	want      []int  // cross mode: ascending shard set to lock
	used      []int  // shards the attempt's ops actually entered, ascending
	begun     []int  // shards with an open base sub-transaction
	cur       int    // single-shard mode: the shard in use, -1 if none yet
	aborted   bool   // Tx.Abort doomed the current Run
	grown     *[]int // pooled holder backing the current attempt's grown want
	grownNext *[]int // pooled holder staged by growTo, adopted by Run
	one       [1]int // scratch for growTo's single-shard source set

	// Latched-mode state (see latch.go). latchKeys is the current Run's
	// declared latch key set — ascending, deduplicated, entry- or
	// hint-owned — nil when the Run falls back to whole-shard locks.
	// usedKeys accumulates the distinct keys an unhinted attempt touches so
	// the footprint cache can learn key sets; it is a reused buffer capped
	// at latchMaxKeys (keyOverflow disqualifies the site).
	latched     bool // current attempt holds key latches, not shard writes
	latchHeld   bool // latchKeys currently acquired
	latchKeys   []uint64
	trackKeys   bool // record touched keys into usedKeys this Run
	keyOverflow bool
	usedKeys    []uint64
	sesBuf      []*core.Session // want's sessions, for LinkTxs/CommitLinked
	lw          latchWaiter     // reusable wait token (one wait at a time)

	hintPending  bool     // a HintKeys/HintQueues declaration awaits the next Run
	hint         []int    // the declared shard set; nil when it was single-shard
	hintBuf      []int    // backing storage for hint, reused across hints
	hintKeys     []uint64 // declared latch keys, ascending; reused like hintBuf
	hintOverflow bool     // declaration exceeded latchMaxKeys: don't latch
	readSite     uintptr  // RunRead's real site, threaded past its adapter closure
	fp           fpCache

	// Direct-mapped key→shard memo: repeated keys (Get then Put inside one
	// transaction, hot keys across iterations) skip the hash. memoS stores
	// shard+1 so the zero value means empty; uint16 covers MaxShards.
	memoK [routeMemoSize]uint64
	memoS [routeMemoSize]uint16

	snap snapAgent // MVCC snapshot state; tier nil when the engine has none
	bo   backoff
}

// snapAgent / snapBuffering implement the snapTxn seam for the top-level
// snapMaps: writes buffer while a (non-doomed) Run is open and publish at
// the logical transaction's single commit timestamp.
func (t *shardedTx) snapAgent() *snapAgent { return &t.snap }
func (t *shardedTx) snapBuffering() bool   { return t.inRun && !t.aborted }

// SnapshotRead implements SnapshotReader, exactly as on the unsharded
// engines: the cut is tier-wide, so it is consistent across every shard —
// the seal cannot pass a cross-shard (or shared-fate group) commit that is
// still mid-flight, because the whole group is one commit window on the
// shared tier.
func (t *shardedTx) SnapshotRead(fn func()) bool {
	if !t.snap.enabled() {
		return false
	}
	if t.inRun {
		panic("txengine: SnapshotRead inside an open transaction")
	}
	rt, stale := t.snap.tier.beginSnapshot(t.snap.slot)
	t.snap.rt = rt
	defer func() {
		t.snap.rt = 0
		t.snap.tier.endSnapshot(t.snap.slot)
	}()
	fn()
	t.e.ct.countSnapshot(stale)
	return true
}

// SnapshotReadBatch implements SnapshotBatchReader on the decorator's
// tier-wide cut: one pin, one seal advance, n logical read transactions —
// consistent across every shard like SnapshotRead.
func (t *shardedTx) SnapshotReadBatch(n int, each func(int, uint64)) (uint64, bool) {
	if !t.snap.enabled() {
		return 0, false
	}
	if t.inRun {
		panic("txengine: SnapshotReadBatch inside an open transaction")
	}
	rt, stale := t.snap.tier.beginSnapshot(t.snap.slot)
	t.snap.rt = rt
	defer func() {
		t.snap.rt = 0
		t.snap.tier.endSnapshot(t.snap.slot)
	}()
	for i := 0; i < n; i++ {
		each(i, rt)
	}
	t.e.ct.countSnapshotN(stale, uint64(n))
	return rt, true
}

// handle returns this worker's base handle for shard s, creating it (and its
// base session) on first touch — the per-shard session pool. Creation also
// caches the handle's manualTx and epochPinned seams, so the per-operation
// and per-commit paths never repeat the interface assertions.
func (t *shardedTx) handle(s int) Tx {
	h := t.base[s]
	if h == nil {
		h = t.e.shards[s].eng.NewWorker(t.tid)
		t.base[s] = h
		if m, ok := h.(manualTx); ok {
			t.man[s] = m
		}
		if p, ok := h.(epochPinned); ok {
			t.pin[s] = p
		}
		if sp, ok := h.(sessionProvider); ok {
			t.ses[s] = sp.coreSession()
		}
	}
	return h
}

// groupable reports whether every shard in want exposes the core-session
// seam the shared-fate (latched) commit needs. Handles are created eagerly
// here, so after a worker's first cross-shard Run this is a few nil checks.
func (t *shardedTx) groupable(want []int) bool {
	for _, s := range want {
		t.handle(s)
		if t.ses[s] == nil {
			return false
		}
	}
	return true
}

func (t *shardedTx) manual(s int) manualTx {
	t.handle(s)
	m := t.man[s]
	if m == nil {
		// Transactional bases must expose explicit transaction control;
		// sessionTx carries a compile-time assertion, so this only fires if
		// a new base is wired up without it.
		panic("txengine: " + t.e.name + " base workers lack manual transaction control")
	}
	return m
}

// routeOf is shardOf through the handle's memo. While a learning Run is in
// flight it also records the key into the attempt's used-key set, so the
// footprint cache can learn latchable key sets alongside shard sets.
func (t *shardedTx) routeOf(k uint64) int {
	if t.trackKeys && t.inRun {
		t.noteKey(k)
	}
	i := k & (routeMemoSize - 1)
	if t.memoK[i] == k && t.memoS[i] != 0 {
		return int(t.memoS[i]) - 1
	}
	s := t.e.shardOf(k)
	t.memoK[i], t.memoS[i] = k, uint16(s+1)
	return s
}

// noteKey records one distinct touched key, capped at latchMaxKeys; past
// the cap the attempt's key set is unlatchable and tracking stops.
func (t *shardedTx) noteKey(k uint64) {
	if t.keyOverflow {
		return
	}
	t.usedKeys = insertKey(t.usedKeys, k)
	if len(t.usedKeys) > latchMaxKeys {
		t.keyOverflow = true
		t.usedKeys = t.usedKeys[:0]
	}
}

// hintOpen starts or continues the pending declaration: the first
// HintKeys/HintQueues call after a Run resets the accumulated sets, later
// calls merge into them.
func (t *shardedTx) hintOpen() {
	if t.hintPending {
		return
	}
	t.hintPending = true
	t.hintBuf = t.hintBuf[:0]
	t.hintKeys = t.hintKeys[:0]
	t.hintOverflow = false
}

// hintKey merges one latch key into the pending declaration (sorted,
// deduplicated — done once here, at declaration time, not per attempt).
// Declarations beyond latchMaxKeys stay valid as shard pre-declarations but
// give up on latching: whole-shard locks beat hundreds of latch handoffs.
func (t *shardedTx) hintKey(k uint64) {
	if t.hintOverflow {
		return
	}
	t.hintKeys = insertKey(t.hintKeys, k)
	if len(t.hintKeys) > latchMaxKeys {
		t.hintOverflow = true
		t.hintKeys = t.hintKeys[:0]
	}
}

// hintClose re-derives the pending declaration's shard pre-set after a
// merge. Sets of one shard pre-declare nothing — the single-shard path
// needs none — but the hint still marks the next Run as hinted, so it
// trusts the declaration over any cached footprint.
func (t *shardedTx) hintClose() {
	if len(t.hintBuf) > 1 {
		t.hint = t.hintBuf
	} else {
		t.hint = nil
	}
}

// HintKeys implements KeyHinter: route the declared keys and stage their
// shard set (and, for latch-enabled engines, the keys themselves) for the
// next Run. Successive HintKeys/HintQueues calls accumulate until a Run
// consumes them.
func (t *shardedTx) HintKeys(keys ...uint64) {
	if t.inRun {
		return
	}
	t.hintOpen()
	h := t.hintBuf
	for _, k := range keys {
		h = insertShard(h, t.routeOf(k))
		t.hintKey(k)
	}
	t.hintBuf = h
	t.hintClose()
}

// HintQueues implements QueueHinter: declare the queues' home shards and
// synthetic latch keys for the next Run, so queue+map transactions can run
// latched with same-queue traffic serialized through the queue latch.
func (t *shardedTx) HintQueues(qs ...Queue[uint64]) {
	if t.inRun {
		return
	}
	t.hintOpen()
	h := t.hintBuf
	for _, q := range qs {
		sq, ok := q.(*shardedQueue)
		if !ok || sq.e != t.e {
			continue // foreign queue: nothing of ours to declare
		}
		h = insertShard(h, sq.home)
		t.hintKey(sq.lkey)
	}
	t.hintBuf = h
	t.hintClose()
}

var noRelease = func() {}

// enter prepares shard s for one operation by this worker and returns the
// base handle to run it on, plus a release callback (a no-op inside Run,
// where locks are attempt-scoped). Inside Run it lazily opens the shard's
// sub-transaction, or restarts the attempt when s falls outside the
// attempt's shard set.
func (t *shardedTx) enter(s int) (Tx, func()) {
	if !t.inRun || t.aborted {
		// Standalone (or post-abort) operation: runs outside any
		// transaction, under the shard's read lock so it cannot interpose
		// between a cross-shard attempt's sub-commits.
		if !t.e.txCap {
			return t.handle(s), noRelease
		}
		sl := t.e.shards[s]
		sl.mu.RLock()
		return t.handle(s), sl.mu.RUnlock
	}
	if t.cross {
		if !slices.Contains(t.want, s) {
			panic(growRestart{want: t.growTo(s)})
		}
		t.used = insertShard(t.used, s)
		return t.handle(s), noRelease
	}
	if t.cur == s {
		return t.handle(s), noRelease
	}
	if t.cur != -1 {
		panic(growRestart{want: t.growTo(s)})
	}
	t.e.shards[s].mu.RLock()
	t.cur = s
	t.used = append(t.used[:0], s)
	t.manual(s).beginManual()
	t.begun = append(t.begun, s)
	return t.handle(s), noRelease
}

// growTo builds the next attempt's shard set when the current attempt
// touched shard s outside its footprint. Discovery attempts grow their
// locked set by s; mispredicted attempts fall back to the shards they
// actually used plus s, dropping the stale prediction so a bad hint or a
// shifted cache entry cannot drag unneeded shards through the retry. The
// set lives in a pooled slice owned by the Run loop (see footprintPool).
func (t *shardedTx) growTo(s int) []int {
	var src []int
	switch {
	case !t.cross:
		t.one[0] = t.cur
		src = t.one[:1]
	case t.predicted:
		src = t.used
	default:
		src = t.want
	}
	np := getFootprint()
	out := append((*np)[:0], src...)
	*np = insertShard(out, s)
	// The previous pooled set (if any) still backs t.want, which the
	// in-flight attempt's rollback/unlock will walk while unwinding; Run
	// recycles it only after adopting this one.
	t.grownNext = np
	return *np
}

// unlock releases whatever locks the current attempt holds — key latches
// first, then the shard locks (read side for latched attempts, write side
// otherwise). Idempotent.
func (t *shardedTx) unlock() {
	if t.cross {
		if t.latchHeld {
			t.e.latch.releaseAll(t.latchKeys)
			t.latchHeld = false
		}
		if t.locksHeld {
			if t.latched {
				for _, s := range t.want {
					t.e.shards[s].mu.RUnlock()
				}
			} else {
				for _, s := range t.want {
					t.e.shards[s].mu.Unlock()
				}
			}
			t.locksHeld = false
		}
		return
	}
	if t.cur != -1 {
		t.e.shards[t.cur].mu.RUnlock()
		t.cur = -1
	}
}

// rollback aborts every open sub-transaction and releases the attempt's
// locks. Idempotent.
func (t *shardedTx) rollback() {
	for _, s := range t.begun {
		t.man[s].abortManual()
	}
	t.begun = t.begun[:0]
	t.unlock()
}

// commit finalizes a clean attempt: every open sub-transaction is committed
// — in ascending shard order for cross-shard attempts — and the locks are
// released. Returns nil on commit, core.ErrTxAborted on conflict.
//
// On persistent bases the cross-shard sequence runs under the shared epoch
// clock's commit guard: epoch advancement is blocked for the duration, and
// a pre-check verifies every shard's sub-transaction is pinned to the
// (now immovable) current epoch. Together these guarantee the transaction
// lands in one epoch cut on every shard — the property multi-device
// recovery relies on — and restore the invariant the tear panic below
// encodes: once the first sub-commit succeeds, none of the remaining
// validators (MCNS reads under exclusive locks, epochs under the guard)
// can fail.
func (t *shardedTx) commit() error {
	if !t.cross {
		// Single-shard fast path: no cross-shard machinery at all — no
		// epoch-clock commit guard, no pinned-epoch pre-check, no ordered
		// sequence. The shard's own base engine validates the commit (its
		// epoch validator included, on persistent bases), and the read lock
		// is dropped straight after. A panic inside commitManual unwinds
		// through attempt's recover, whose rollback releases the lock.
		if t.cur == -1 {
			return nil // the transaction touched nothing
		}
		s := t.cur
		t.begun = t.begun[:0]
		var ts uint64
		if len(t.snap.pending) > 0 {
			ts = t.snap.tier.beginCommit(t.snap.slot)
		}
		err := t.man[s].commitManual()
		t.e.shards[s].mu.RUnlock()
		t.cur = -1
		if ts != 0 {
			if err == nil {
				t.snap.publishAll(ts)
			} else {
				t.snap.reset()
			}
			t.snap.tier.endCommit(t.snap.slot)
		}
		return err
	}
	if t.latched {
		return t.commitLatched()
	}
	defer t.unlock()
	if t.e.clock != nil && len(t.begun) > 0 {
		cur, release := t.e.clock.GuardCommit()
		defer release()
		// Batched pre-check: one pass over the handle-cached epoch seams —
		// no per-shard interface assertions on the commit path.
		for _, s := range t.begun {
			ep := t.pin[s]
			if ep != nil && ep.pinnedEpoch() != cur {
				// The epoch advanced between this attempt's sub-begins, so
				// the sub-transactions straddle two cuts. Committing them
				// would either tear mid-sequence (a later shard's epoch
				// validator fails after an earlier shard committed) or —
				// worse — persist one transaction across two recovery
				// cuts. Abort the whole attempt cleanly and retry.
				t.rollback()
				return core.ErrTxAborted
			}
		}
	}
	// One timestamp for the whole shard set: drawn after the epoch
	// pre-check, before the first sub-transaction's InPrep→InProg
	// transition, published only once every sub-commit has succeeded.
	var ts uint64
	if len(t.snap.pending) > 0 {
		ts = t.snap.tier.beginCommit(t.snap.slot)
		defer t.snap.tier.endCommit(t.snap.slot)
	}
	for i, s := range t.begun {
		if err := t.man[s].commitManual(); err != nil {
			if i > 0 {
				// Earlier shards already committed. With every involved
				// shard exclusively locked (and the epoch guarded above) no
				// validation can fail, so a torn cross-shard commit is a
				// protocol bug, not a runtime condition — fail loudly
				// rather than lose atomicity.
				panic(fmt.Sprintf("txengine: %s cross-shard commit tore at shard %d: %v", t.e.name, s, err))
			}
			for _, r := range t.begun[i+1:] {
				t.man[r].abortManual()
			}
			t.begun = t.begun[:0]
			t.snap.reset()
			return err
		}
	}
	t.begun = t.begun[:0]
	if ts != 0 {
		t.snap.publishAll(ts)
	}
	return nil
}

// commitLatched finalizes a latched cross-shard attempt. The per-shard
// sub-transactions were linked into one shared-fate core.TxGroup at begin
// time, so the commit is a single atomic verdict — core.CommitLinked
// validates every member and flips one status word — and a torn commit is
// impossible by construction, even though the attempt holds no shard
// exclusively and concurrent traffic may invalidate its reads up to the
// very last moment (that just aborts the whole group, which retries).
//
// The epoch discipline matches the exclusive path: the shared clock's
// commit guard blocks advancement across the verdict, and the pinned-epoch
// pre-check aborts cleanly if the sub-transactions already straddle two
// cuts — so a latched commit, too, lands in one epoch cut on every shard.
func (t *shardedTx) commitLatched() error {
	defer t.unlock()
	if t.e.clock != nil && len(t.begun) > 0 {
		cur, release := t.e.clock.GuardCommit()
		defer release()
		for _, s := range t.begun {
			ep := t.pin[s]
			if ep != nil && ep.pinnedEpoch() != cur {
				t.rollback()
				return core.ErrTxAborted
			}
		}
	}
	t.begun = t.begun[:0]
	// The shared-fate group stamps ONE version: the timestamp is drawn
	// before CommitLinked's single InPrep→InProg transition and published
	// for every member's writes together iff the group's one verdict is
	// commit.
	var ts uint64
	if len(t.snap.pending) > 0 {
		ts = t.snap.tier.beginCommit(t.snap.slot)
	}
	err := core.CommitLinked(t.sesBuf)
	if ts != 0 {
		if err == nil {
			t.snap.publishAll(ts)
		} else {
			t.snap.reset()
		}
		t.snap.tier.endCommit(t.snap.slot)
	}
	return err
}

// attempt executes fn once. A non-nil grew return means the attempt's shard
// footprint exceeded its lock set: retry with that set. err is nil on
// commit, core.ErrTxAborted on conflict, and fn's own error otherwise.
func (t *shardedTx) attempt(fn func() error, want []int) (err error, grew []int) {
	t.inRun = true
	t.aborted = false
	t.cur = -1
	t.snap.reset()
	t.begun = t.begun[:0]
	t.used = t.used[:0]
	t.usedKeys = t.usedKeys[:0]
	t.keyOverflow = false
	t.cross = want != nil
	t.want = want
	t.latched = false
	if t.cross {
		if t.latchKeys != nil {
			// Latched: shard read locks first (ascending), key latches
			// second (ascending). The order matters for deadlock freedom —
			// a latch holder must never block behind a shard writer, and
			// read-lock waiters (stalled by a pending discovery writer) must
			// hold no latches. Holding the read side keeps the discovery
			// path's exclusivity assumption intact.
			t.latched = true
			for _, s := range want {
				t.e.shards[s].mu.RLock()
			}
			t.locksHeld = true
			if w := t.e.latch.acquireAll(t.latchKeys, &t.lw); w > 0 {
				t.e.ct.latchWaits.Add(uint64(w))
			}
			t.latchHeld = true
			t.sesBuf = t.sesBuf[:0]
			for _, s := range want {
				t.manual(s).beginManual()
				t.begun = append(t.begun, s)
				t.sesBuf = append(t.sesBuf, t.ses[s])
			}
			core.LinkTxs(t.sesBuf)
		} else {
			if t.e.latch != nil {
				t.e.ct.latchFallbacks.Add(1)
			}
			for _, s := range want { // ascending: deadlock-free
				t.e.shards[s].mu.Lock()
			}
			t.locksHeld = true
			for _, s := range want {
				t.manual(s).beginManual()
				t.begun = append(t.begun, s)
			}
		}
	}
	defer func() {
		t.inRun = false
		if r := recover(); r != nil {
			t.rollback()
			g, ok := r.(growRestart)
			if !ok {
				panic(r)
			}
			err, grew = nil, g.want
		}
	}()
	ferr := fn()
	if t.aborted {
		// Abort already rolled back. If fn swallowed the abort error,
		// treat the attempt as a conflict (mirrors core.Session.Run).
		if ferr == nil {
			return core.ErrTxAborted, nil
		}
		return ferr, nil
	}
	if ferr != nil {
		t.rollback()
		return ferr, nil
	}
	return t.commit(), nil
}

// Run implements Tx. The first attempt's shard set comes, in priority
// order, from a pending HintKeys pre-declaration, from the worker's
// footprint cache when the transaction site has a confident history, or —
// the discovery path — from optimistic single-shard execution that restarts
// into the ordered-acquire cross-shard path as the footprint reveals
// itself. Pre-declared footprints that hold count as FootprintHits and skip
// discovery entirely; mispredictions count as FootprintMisses, invalidate
// the cache entry, and fall back to discovery seeded with the shards the
// attempt actually touched. Conflict aborts retry under the shared backoff.
// Footprint-discovery restarts are not conflicts (nobody aborted anybody),
// so they count as CrossShardRestarts rather than inflating Aborts/Retries.
func (t *shardedTx) Run(fn func() error) error {
	if !t.e.txCap {
		panic("txengine: " + t.e.name + " supports no transactions")
	}
	var site uintptr
	var want []int
	var latchKeys []uint64
	hinted := t.hintPending
	if hinted {
		// A hint is authoritative: the workload declared its keys, so the
		// cache is neither consulted nor updated (and the site lookup is
		// skipped altogether on this hot path).
		t.hintPending = false
		want, t.hint = t.hint, nil
		if want != nil && t.e.latch != nil && !t.hintOverflow && len(t.hintKeys) > 0 {
			latchKeys = t.hintKeys
		}
	} else {
		if site = t.readSite; site == 0 {
			site = runSite(fn)
		}
		want, latchKeys = t.fp.predict(site)
		if t.e.latch == nil {
			latchKeys = nil
		}
	}
	if len(latchKeys) == 0 || (latchKeys != nil && !t.groupable(want)) {
		latchKeys = nil // nothing to latch, or base can't shared-fate commit
	}
	t.latchKeys = latchKeys
	t.trackKeys = t.e.latch != nil && !hinted
	predicted := want != nil
	execs := 0
	for attempt := 0; ; attempt++ {
		t.predicted = predicted
		err, grew := t.attempt(fn, want)
		if grew != nil {
			// The failed attempt has fully unwound; its shard set (possibly
			// a pooled slice from an earlier growth) is dead now, and the
			// staged replacement becomes the next attempt's set.
			if t.grown != nil {
				putFootprint(t.grown)
			}
			t.grown, t.grownNext = t.grownNext, nil
			t.e.ct.crossRestarts.Add(1)
			if predicted {
				t.e.ct.fpMisses.Add(1)
				if !hinted {
					t.fp.miss(site)
				}
				predicted = false
			}
			// A mispredicted key set is as stale as the shard set it rode
			// on: the retry discovers under whole-shard locks.
			t.latchKeys = nil
			want = grew
			continue // footprint restart: no backoff, nobody conflicted
		}
		if predicted {
			// The pre-declared footprint covered every operation of the
			// attempt; count the hit once per Run, whatever the outcome.
			t.e.ct.fpHits.Add(1)
			predicted = false
		}
		execs++
		if err == nil {
			t.e.ct.commits.Add(1)
			t.e.ct.aborts.Add(uint64(execs - 1))
			if execs > 1 {
				t.e.ct.retries.Add(uint64(execs - 1))
			}
			t.finishRun(site, hinted)
			return nil
		}
		if errors.Is(err, core.ErrTxAborted) {
			t.bo.wait(attempt)
			continue
		}
		t.e.ct.aborts.Add(uint64(execs))
		if execs > 1 {
			t.e.ct.retries.Add(uint64(execs - 1))
		}
		t.finishRun(site, hinted)
		return err
	}
}

// finishRun closes a Run: on unhinted Runs the cache learns the footprint
// the final attempt actually used — shard set and key set both, so stable
// sites converge toward (latched) prediction and shifted ones re-converge —
// and the discovery path's pooled shard set is recycled.
func (t *shardedTx) finishRun(site uintptr, hinted bool) {
	if !hinted {
		t.fp.learn(site, t.used, t.usedKeys, t.keyOverflow)
	}
	t.trackKeys = false
	t.latchKeys = nil
	if t.grown != nil {
		putFootprint(t.grown)
		t.grown = nil
	}
}

// RunRead delegates to Run through an adapter closure; the caller's own
// closure identifies the transaction site, or every read-only transaction
// of the worker would share the adapter's code pointer and conflate its
// footprint history.
func (t *shardedTx) RunRead(fn func()) {
	t.readSite = reflect.ValueOf(fn).Pointer()
	_ = t.Run(func() error { fn(); return nil })
	t.readSite = 0
}

func (t *shardedTx) NoTx(fn func()) {
	if t.e.caps.Has(CapNoTx) {
		fn() // ops route standalone through enter
		return
	}
	t.e.ct.fallbacks.Add(1)
	_ = t.Run(func() error { fn(); return nil })
}

func (t *shardedTx) Abort() error {
	if t.inRun && !t.aborted {
		t.rollback()
		t.aborted = true
	}
	return ErrBusinessAbort
}

// shardedMap hash-partitions a transactional map across the engine's
// shards: one base map per shard, each only ever touched by that shard's
// sessions.
type shardedMap[V any] struct {
	e   *shardedEngine
	sub []Map[V]
}

func newShardedMap[V any](e *shardedEngine, spec MapSpec, mk func(Engine, MapSpec) (Map[V], error)) (Map[V], error) {
	sub := e.subSpec(spec)
	m := &shardedMap[V]{e: e, sub: make([]Map[V], len(e.shards))}
	for i, sl := range e.shards {
		var err error
		if m.sub[i], err = mk(sl.eng, sub); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func (m *shardedMap[V]) Get(tx Tx, k uint64) (V, bool) {
	t := tx.(*shardedTx)
	s := t.routeOf(k)
	bt, release := t.enter(s)
	v, ok := m.sub[s].Get(bt, k)
	release()
	return v, ok
}

func (m *shardedMap[V]) Put(tx Tx, k uint64, v V) (V, bool) {
	t := tx.(*shardedTx)
	s := t.routeOf(k)
	bt, release := t.enter(s)
	prev, had := m.sub[s].Put(bt, k, v)
	release()
	return prev, had
}

func (m *shardedMap[V]) Insert(tx Tx, k uint64, v V) bool {
	t := tx.(*shardedTx)
	s := t.routeOf(k)
	bt, release := t.enter(s)
	ok := m.sub[s].Insert(bt, k, v)
	release()
	return ok
}

func (m *shardedMap[V]) Remove(tx Tx, k uint64) (V, bool) {
	t := tx.(*shardedTx)
	s := t.routeOf(k)
	bt, release := t.enter(s)
	v, ok := m.sub[s].Remove(bt, k)
	release()
	return v, ok
}

// shardedQueue is a base queue resident on its home shard, reached through
// the same enter machinery so queue+map transactions stay atomic. lkey is
// the queue's synthetic latch key: declared via HintQueues it lets latched
// transactions serialize same-queue traffic without locking the home shard,
// and learning Runs record it so the footprint cache can predict queue
// footprints too.
type shardedQueue struct {
	e    *shardedEngine
	home int
	lkey uint64
	q    Queue[uint64]
}

func (q *shardedQueue) Enqueue(tx Tx, v uint64) {
	t := tx.(*shardedTx)
	if t.snap.rt != 0 {
		panic("txengine: queue operation inside SnapshotRead (queues are unversioned)")
	}
	if t.trackKeys && t.inRun {
		t.noteKey(q.lkey)
	}
	bt, release := t.enter(q.home)
	q.q.Enqueue(bt, v)
	release()
}

func (q *shardedQueue) Dequeue(tx Tx) (uint64, bool) {
	t := tx.(*shardedTx)
	if t.snap.rt != 0 {
		panic("txengine: queue operation inside SnapshotRead (queues are unversioned)")
	}
	if t.trackKeys && t.inRun {
		t.noteKey(q.lkey)
	}
	bt, release := t.enter(q.home)
	v, ok := q.q.Dequeue(bt)
	release()
	return v, ok
}
