package txengine

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"strings"
	"sync"
	"testing"
	"time"

	"medley/internal/montage"
)

// testSpec returns a map spec every engine can satisfy.
func testSpec(caps Caps) MapSpec {
	if caps.Has(CapSkipMap) {
		return MapSpec{Kind: KindSkip, Stripes: 64}
	}
	return MapSpec{Kind: KindHash, Buckets: 256}
}

func buildForTest(t *testing.T, b Builder) Engine {
	t.Helper()
	eng, err := b.New(Config{EpochLen: 2 * time.Millisecond})
	if err != nil {
		t.Fatalf("build %s: %v", b.Key, err)
	}
	return eng
}

// TestRegistryShape checks that the registry holds all the paper's systems
// plus boost, and that caps are self-consistent with the factories.
func TestRegistryShape(t *testing.T) {
	for _, want := range []string{"medley", "txmontage", "onefile", "ponefile", "tdsl", "lftt", "boost", "original"} {
		if _, ok := Lookup(want); !ok {
			t.Errorf("registry missing %q (have %v)", want, Names())
		}
	}
	if _, ok := Lookup("MEDLEY"); !ok {
		t.Error("Lookup must be case-insensitive")
	}
	if _, err := Build("no-such-engine", Config{}); err == nil {
		t.Error("Build of unknown engine must fail")
	}
	for _, b := range Builders() {
		eng := buildForTest(t, b)
		if eng.Caps() != b.Caps {
			t.Errorf("%s: builder caps %b != engine caps %b", b.Key, b.Caps, eng.Caps())
		}
		if eng.Name() == "" {
			t.Errorf("%s: empty display name", b.Key)
		}
		if _, err := eng.NewUintMap(testSpec(b.Caps)); err != nil {
			t.Errorf("%s: NewUintMap(%v): %v", b.Key, testSpec(b.Caps), err)
		}
		if b.Caps.Has(CapRowMaps) {
			cfg := Config{}
			if strings.Contains(b.Key, "txmontage") {
				cfg.RowCodec = testRowCodec()
			}
			eng2, err := b.New(cfg)
			if err != nil {
				t.Fatalf("rebuild %s: %v", b.Key, err)
			}
			if _, err := eng2.NewRowMap(testSpec(b.Caps)); err != nil {
				t.Errorf("%s: NewRowMap: %v", b.Key, err)
			}
			eng2.Close()
		}
		eng.Close()
	}
}

// testRowCodec is a trivial any-codec (values are uint64s boxed as any).
func testRowCodec() montage.Codec[any] {
	u64 := montage.Uint64Codec()
	return montage.Codec[any]{
		Enc: func(v any) []byte { return u64.Enc(v.(uint64)) },
		Dec: func(b []byte) any { return u64.Dec(b) },
	}
}

// eachTxEngine runs f for every engine that supports transactions.
func eachTxEngine(t *testing.T, f func(t *testing.T, b Builder, eng Engine, m Map[uint64])) {
	for _, b := range Builders() {
		if !b.Caps.Has(CapTx) {
			continue
		}
		b := b
		t.Run(b.Key, func(t *testing.T) {
			eng := buildForTest(t, b)
			defer eng.Close()
			m, err := eng.NewUintMap(testSpec(b.Caps))
			if err != nil {
				t.Fatal(err)
			}
			f(t, b, eng, m)
		})
	}
}

// TestBusinessAbortNoRetry: an error from the transaction body — including
// ErrBusinessAbort from Tx.Abort — must pass through after exactly one
// execution, with the transaction's writes rolled back.
func TestBusinessAbortNoRetry(t *testing.T) {
	errBiz := errors.New("insufficient funds")
	eachTxEngine(t, func(t *testing.T, b Builder, eng Engine, m Map[uint64]) {
		tx := eng.NewWorker(0)

		calls := 0
		err := tx.Run(func() error {
			calls++
			m.Insert(tx, 7, 77)
			return errBiz
		})
		if !errors.Is(err, errBiz) {
			t.Fatalf("Run returned %v, want business error passthrough", err)
		}
		if calls != 1 {
			t.Fatalf("business abort retried: fn ran %d times", calls)
		}
		if _, ok := m.Get(tx, 7); ok {
			t.Fatal("aborted transaction's insert is visible (rollback broken)")
		}

		calls = 0
		err = tx.Run(func() error {
			calls++
			m.Insert(tx, 9, 99)
			return tx.Abort()
		})
		if !errors.Is(err, ErrBusinessAbort) {
			t.Fatalf("Run returned %v, want ErrBusinessAbort", err)
		}
		if calls != 1 {
			t.Fatalf("Tx.Abort retried: fn ran %d times", calls)
		}
		if _, ok := m.Get(tx, 9); ok {
			t.Fatal("Tx.Abort left the insert visible (rollback broken)")
		}

		// The handle must remain usable after aborts.
		if err := tx.Run(func() error { m.Insert(tx, 11, 1); return nil }); err != nil {
			t.Fatalf("Run after abort: %v", err)
		}
		if _, ok := m.Get(tx, 11); !ok {
			t.Fatal("committed insert not visible after abort sequence")
		}
	})
}

// TestStandaloneOps: map operations outside Run must behave as single
// auto-committed operations on every transactional engine.
func TestStandaloneOps(t *testing.T) {
	eachTxEngine(t, func(t *testing.T, b Builder, eng Engine, m Map[uint64]) {
		tx := eng.NewWorker(0)
		if !m.Insert(tx, 1, 10) {
			t.Fatal("insert into empty map failed")
		}
		if m.Insert(tx, 1, 20) {
			t.Fatal("insert on present key succeeded")
		}
		if v, ok := m.Get(tx, 1); !ok || v != 10 {
			t.Fatalf("Get = %d,%v want 10,true", v, ok)
		}
		if old, had := m.Put(tx, 1, 30); !had || old != 10 {
			t.Fatalf("Put prev = %d,%v want 10,true", old, had)
		}
		if old, had := m.Remove(tx, 1); !had || old != 30 {
			t.Fatalf("Remove = %d,%v want 30,true", old, had)
		}
		if _, ok := m.Get(tx, 1); ok {
			t.Fatal("key present after Remove")
		}
	})
}

// TestAtomicTransfer: concurrent transactions move value between two keys;
// atomicity requires the sum to be invariant at every committed read. For
// dynamic engines the transfer reads both balances and writes dependent
// values while concurrent readers check the invariant inside transactions;
// for static engines (LFTT) each transaction blind-writes the same value to
// both keys, and the invariant is that the keys end up equal.
func TestAtomicTransfer(t *testing.T) {
	const (
		workers = 4
		iters   = 400
		k1, k2  = 100, 200
		total   = 1000
	)
	eachTxEngine(t, func(t *testing.T, b Builder, eng Engine, m Map[uint64]) {
		if !b.Caps.Has(CapDynamicTx) {
			testAtomicBlindWrites(t, eng, m)
			return
		}
		init := eng.NewWorker(0)
		m.Put(init, k1, total/2)
		m.Put(init, k2, total/2)

		// Mid-transaction reads of a doomed attempt may legally be
		// inconsistent (TDSL and Medley validate reads at commit), so the
		// invariant is only checked on values observed by the attempt that
		// actually committed — Run leaves the last attempt's values in the
		// captured variables.
		var wg sync.WaitGroup
		violation := make(chan string, workers*2)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				tx := eng.NewWorker(1 + id)
				rng := rand.New(rand.NewPCG(uint64(id)+1, 7))
				for i := 0; i < iters; i++ {
					var a, bv uint64
					var ok1, ok2 bool
					err := tx.Run(func() error {
						a, ok1 = m.Get(tx, k1)
						bv, ok2 = m.Get(tx, k2)
						if !ok1 || !ok2 {
							return nil // doomed attempt (e.g. boost lock conflict); retried
						}
						amt := uint64(rng.IntN(10) + 1)
						if amt > a {
							amt = a
						}
						m.Put(tx, k1, a-amt)
						m.Put(tx, k2, bv+amt)
						return nil
					})
					if err != nil {
						t.Errorf("worker %d: %v", id, err)
						return
					}
					if ok1 && ok2 && a+bv != total {
						select {
						case violation <- fmt.Sprintf("worker %d: committed read %d+%d != %d", id, a, bv, total):
						default:
						}
					}
				}
			}(w)
		}
		// Concurrent invariant readers.
		stop := make(chan struct{})
		var rwg sync.WaitGroup
		for r := 0; r < 2; r++ {
			rwg.Add(1)
			go func(id int) {
				defer rwg.Done()
				tx := eng.NewWorker(100 + id)
				for {
					select {
					case <-stop:
						return
					default:
					}
					var a, bv uint64
					var ok1, ok2 bool
					err := tx.Run(func() error {
						a, ok1 = m.Get(tx, k1)
						bv, ok2 = m.Get(tx, k2)
						return nil
					})
					if err == nil && ok1 && ok2 && a+bv != total {
						select {
						case violation <- fmt.Sprintf("reader %d: committed read %d+%d != %d", id, a, bv, total):
						default:
						}
					}
				}
			}(r)
		}
		wg.Wait()
		close(stop)
		rwg.Wait()
		select {
		case v := <-violation:
			t.Fatalf("atomicity violation: %s", v)
		default:
		}
		final := eng.NewWorker(999)
		a, _ := m.Get(final, k1)
		bv, _ := m.Get(final, k2)
		if a+bv != total {
			t.Fatalf("final sum %d+%d != %d", a, bv, total)
		}
	})
}

// testAtomicBlindWrites is the static-transaction variant: concurrent
// transactions write one value to both keys atomically, so the keys must
// end up equal.
func testAtomicBlindWrites(t *testing.T, eng Engine, m Map[uint64]) {
	const (
		workers = 4
		iters   = 400
		k1, k2  = 100, 200
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tx := eng.NewWorker(1 + id)
			for i := 0; i < iters; i++ {
				v := uint64(id)*uint64(iters) + uint64(i) + 1
				if err := tx.Run(func() error {
					m.Put(tx, k1, v)
					m.Put(tx, k2, v)
					return nil
				}); err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	tx := eng.NewWorker(999)
	a, ok1 := m.Get(tx, k1)
	b, ok2 := m.Get(tx, k2)
	if !ok1 || !ok2 || a != b {
		t.Fatalf("blind-write atomicity broken: k1=%d,%v k2=%d,%v", a, ok1, b, ok2)
	}
}
