package txengine

import "sync"

// Key-granular latches for cross-shard commits.
//
// The sharded runtime's original cross-shard path serializes behind
// whole-shard exclusive locks: one hot shard gates every cross-shard
// transaction that touches it, even when their key sets are disjoint. The
// footprint layer (footprint.go) already tells the runtime the precise keys
// most cross-shard transactions will touch — a HintKeys pre-declaration or a
// confident cache entry — so those transactions can instead latch exactly
// their declared keys and leave the rest of the shard to concurrent traffic.
//
// latchTable is that mechanism: a bucketed table of per-key latches in the
// spirit of tinykv's latches scheduler. Each bucket holds a mutex-protected
// map from key to its FIFO waiter queue; a latch exists in the map exactly
// while some transaction holds it. Acquisition is blocking with direct
// ownership handoff: releasing a latch with waiters queued passes ownership
// to the head waiter without ever marking the latch free, so wake order is
// exactly arrival order and no waiter can be starved by a barging newcomer.
//
// Deadlock freedom is by ordering, as everywhere else in the sharded
// runtime: acquireAll takes latches in ascending key order, and every
// transaction sorts (and dedupes) its key set before acquiring, so the
// classic total-order argument applies. The shard read locks a latched
// transaction also holds are acquired before any latch and released after
// every latch, and latch holders never block on a shard lock's write side,
// so the two layers cannot entangle.
//
// Latches schedule; they do not isolate. Correctness of the latched commit
// comes from core.TxGroup (shared-fate atomic multi-descriptor commit) plus
// the base engines' optimistic machinery — key-disjoint transactions can
// still conflict through adjacent-node read-set entries, and unlatched
// single-shard transactions run concurrently under the same shard read
// locks. The latches exist to stop latched transactions with overlapping
// declared footprints from repeatedly aborting each other on hot keys: they
// queue instead, in FIFO order, and the hot key's traffic pipelines.

// latchTableBuckets is the number of latch buckets. Power of two; 256
// buckets keep bucket collisions (two distinct hot keys sharing a mutex)
// rare at realistic cross-shard concurrency while the whole table stays
// a few KiB.
const latchTableBuckets = 256

// latchMaxKeys caps the key set a transaction may latch. Oversized
// footprints (bulk-load chunks hint hundreds of keys) fall back to
// whole-shard locks: latching them would cost more in acquire/release
// traffic than the shard lock costs in lost concurrency.
const latchMaxKeys = 32

// latchWaiter is one transaction's reusable wait token: a one-slot channel
// the releaser signals on ownership handoff, plus the FIFO link. A
// transaction waits on at most one latch at a time (acquireAll is
// sequential over sorted keys), so one token per Tx handle suffices; the
// link field is only touched under the owning bucket's mutex.
type latchWaiter struct {
	ch   chan struct{}
	next *latchWaiter
}

func newLatchWaiter() latchWaiter { return latchWaiter{ch: make(chan struct{}, 1)} }

// latchState is one held latch: the FIFO queue of waiters behind the
// current owner. The owner itself is not recorded — presence in the bucket
// map is what means "held". Recycled through the bucket's freelist.
type latchState struct {
	head, tail *latchWaiter
	next       *latchState // bucket freelist link
}

// latchBucket is one mutex-striped slice of the table. Padded so adjacent
// buckets never share a cache line.
type latchBucket struct {
	mu   sync.Mutex
	m    map[uint64]*latchState
	free *latchState
	_    [64 - 8 - 8 - 8]byte
}

// latchTable is a sharded per-key latch table with FIFO wait/wake.
type latchTable struct {
	buckets [latchTableBuckets]latchBucket
}

func newLatchTable() *latchTable {
	lt := &latchTable{}
	for i := range lt.buckets {
		lt.buckets[i].m = make(map[uint64]*latchState, 4)
	}
	return lt
}

// bucketOf routes a key to its bucket: same Fibonacci-hash spread as shard
// routing, taken from the high bits so sequential keys scatter.
func (lt *latchTable) bucketOf(k uint64) *latchBucket {
	h := k * 0x9e3779b97f4a7c15
	return &lt.buckets[h>>(64-8)]
}

// acquire takes the latch for k, blocking (FIFO) while it is held by
// another transaction. Reports whether it had to wait.
func (lt *latchTable) acquire(k uint64, w *latchWaiter) bool {
	b := lt.bucketOf(k)
	b.mu.Lock()
	st := b.m[k]
	if st == nil {
		// Free: take ownership by publishing a (waiterless) state.
		if st = b.free; st != nil {
			b.free = st.next
			st.next = nil
		} else {
			st = &latchState{}
		}
		b.m[k] = st
		b.mu.Unlock()
		return false
	}
	w.next = nil
	if st.tail == nil {
		st.head = w
	} else {
		st.tail.next = w
	}
	st.tail = w
	b.mu.Unlock()
	<-w.ch // ownership handed off by release
	return true
}

// release drops the latch for k: ownership passes to the head waiter if one
// is queued (the latch never goes free in between — direct handoff keeps
// wake order FIFO), otherwise the latch is dissolved and its state recycled.
func (lt *latchTable) release(k uint64) {
	b := lt.bucketOf(k)
	b.mu.Lock()
	st := b.m[k]
	if st == nil {
		b.mu.Unlock()
		panic("txengine: release of an unheld latch")
	}
	if w := st.head; w != nil {
		st.head = w.next
		if st.head == nil {
			st.tail = nil
		}
		w.next = nil
		b.mu.Unlock()
		w.ch <- struct{}{} // handoff: w now owns the latch
		return
	}
	delete(b.m, k)
	st.next = b.free
	b.free = st
	b.mu.Unlock()
}

// acquireAll takes every latch in keys, which must be sorted ascending and
// deduplicated (the total order is what makes concurrent acquireAll calls
// deadlock-free). Returns the number of latches it had to wait for.
func (lt *latchTable) acquireAll(keys []uint64, w *latchWaiter) int {
	waits := 0
	for _, k := range keys {
		if lt.acquire(k, w) {
			waits++
		}
	}
	return waits
}

// releaseAll drops every latch in keys (the exact set passed to a
// successful acquireAll).
func (lt *latchTable) releaseAll(keys []uint64) {
	for _, k := range keys {
		lt.release(k)
	}
}

// insertKey inserts k into an ascending, deduplicated key set in place,
// returning the (possibly grown) slice — insertShard's uint64 twin, used
// for hinted and learned latch key sets. Sets are capped at latchMaxKeys
// elsewhere, so the linear scan is fine.
func insertKey(set []uint64, k uint64) []uint64 {
	for i, v := range set {
		if v == k {
			return set
		}
		if v > k {
			set = append(set, 0)
			copy(set[i+1:], set[i:])
			set[i] = k
			return set
		}
	}
	return append(set, k)
}
