package txengine

import (
	"medley/internal/tdsl"
)

const tdslCaps = CapTx | CapDynamicTx | CapSkipMap | CapRowMaps

// tdslEngine drives TDSL-lite: blocking optimistic transactions with
// semantic read sets over hash-striped sequential skiplists. The partition
// granularity makes it skiplist-shaped (the paper's TDSL-skip); there is no
// separate hash variant.
type tdslEngine struct {
	tm      *tdsl.TM
	stripes int
	ct      counters
}

func newTDSLEngine(Config) (Engine, error) {
	return &tdslEngine{tm: tdsl.NewTM(), stripes: 512}, nil
}

func (e *tdslEngine) Name() string { return "TDSL" }
func (e *tdslEngine) Caps() Caps   { return tdslCaps }
func (e *tdslEngine) Stats() Stats { return e.ct.snapshot() }
func (e *tdslEngine) Close()       {}

func (e *tdslEngine) NewUintQueue() (Queue[uint64], error) { return nil, ErrUnsupported }

func (e *tdslEngine) stripesFor(spec MapSpec) int {
	if spec.Stripes > 0 {
		return spec.Stripes
	}
	return e.stripes
}

func (e *tdslEngine) NewUintMap(spec MapSpec) (Map[uint64], error) {
	if spec.Kind == KindHash {
		return nil, ErrUnsupported
	}
	return tdslMap[uint64]{m: tdsl.NewMap[uint64](e.stripesFor(spec))}, nil
}

func (e *tdslEngine) NewRowMap(spec MapSpec) (Map[any], error) {
	if spec.Kind == KindHash {
		return nil, ErrUnsupported
	}
	return tdslMap[any]{m: tdsl.NewMap[any](e.stripesFor(spec))}, nil
}

func (e *tdslEngine) NewWorker(int) Tx { return &tdslTx{tm: e.tm, ct: &e.ct} }

// tdslTx exposes the native tdsl.Tx of the current Run to the engine's
// maps; outside Run, cur is nil and map operations auto-commit one-shot
// transactions.
type tdslTx struct {
	tm  *tdsl.TM
	ct  *counters
	cur *tdsl.Tx
}

func (t *tdslTx) Run(fn func() error) error {
	return t.ct.countRun(func(body func() error) error {
		return t.tm.Run(func(tx *tdsl.Tx) error {
			t.cur = tx
			defer func() { t.cur = nil }()
			return body()
		})
	}, fn)
}

func (t *tdslTx) RunRead(fn func()) { _ = t.Run(func() error { fn(); return nil }) }
func (t *tdslTx) NoTx(fn func()) {
	t.ct.fallbacks.Add(1)
	_ = t.Run(func() error { fn(); return nil })
}

// Abort relies on TDSL's write buffering: the transaction's writes are
// simply never committed once fn returns a non-retry error.
func (t *tdslTx) Abort() error { return ErrBusinessAbort }

type tdslMap[V any] struct{ m *tdsl.Map[V] }

func (a tdslMap[V]) Get(tx Tx, k uint64) (v V, ok bool) {
	t := tx.(*tdslTx)
	if t.cur != nil {
		return a.m.Get(t.cur, k)
	}
	_ = t.Run(func() error { v, ok = a.m.Get(t.cur, k); return nil })
	return v, ok
}

func (a tdslMap[V]) Put(tx Tx, k uint64, v V) (old V, had bool) {
	t := tx.(*tdslTx)
	if t.cur != nil {
		return a.m.Put(t.cur, k, v)
	}
	_ = t.Run(func() error { old, had = a.m.Put(t.cur, k, v); return nil })
	return old, had
}

func (a tdslMap[V]) Insert(tx Tx, k uint64, v V) (ok bool) {
	t := tx.(*tdslTx)
	if t.cur != nil {
		return a.m.Insert(t.cur, k, v)
	}
	_ = t.Run(func() error { ok = a.m.Insert(t.cur, k, v); return nil })
	return ok
}

func (a tdslMap[V]) Remove(tx Tx, k uint64) (old V, had bool) {
	t := tx.(*tdslTx)
	if t.cur != nil {
		return a.m.Remove(t.cur, k)
	}
	_ = t.Run(func() error { old, had = a.m.Remove(t.cur, k); return nil })
	return old, had
}
