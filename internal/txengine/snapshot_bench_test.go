package txengine

// The OCC-read vs snapshot-read microbenchmark pair: the same 95/5
// read/write mix over the same hot keyspace on medley-sharded, with read
// probes served either as OCC read-only transactions (RunRead — validated,
// abortable) or as MVCC snapshot reads (SnapshotRead — validation-free,
// never aborting). The delta is what read validation and retry risk cost a
// read-mostly workload; scripts/bench.sh records both in BENCH_7.json.

import (
	"math/rand/v2"
	"sync/atomic"
	"testing"
)

const (
	benchSnapKeys    = 512
	benchSnapReadPct = 95
)

func benchSnapEngine(b *testing.B) (Engine, Map[uint64]) {
	b.Helper()
	eng, err := Build("medley-sharded", Config{Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(eng.Close)
	m, err := eng.NewUintMap(MapSpec{Kind: KindHash, Buckets: 1 << 10})
	if err != nil {
		b.Fatal(err)
	}
	tx := eng.NewWorker(0)
	for lo := uint64(0); lo < benchSnapKeys; lo += 128 {
		lo := lo
		if err := tx.Run(func() error {
			for k := lo; k < lo+128; k++ {
				m.Put(tx, k, k)
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
	return eng, m
}

func benchReadMostly(b *testing.B, snapshot bool) {
	eng, m := benchSnapEngine(b)
	if snapshot && !eng.Caps().Has(CapSnapshot) {
		b.Fatal("engine lost CapSnapshot")
	}
	var tids atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		tid := int(tids.Add(1))
		tx := eng.NewWorker(tid)
		rng := rand.New(rand.NewPCG(42, uint64(tid)))
		var sink uint64
		for pb.Next() {
			k := rng.Uint64N(benchSnapKeys)
			if rng.IntN(100) < benchSnapReadPct {
				probe := func() { sink, _ = m.Get(tx, k) }
				if snapshot {
					SnapshotRead(tx, probe)
				} else {
					tx.RunRead(probe)
				}
				continue
			}
			_ = tx.Run(func() error {
				v, _ := m.Get(tx, k)
				m.Put(tx, k, v+1)
				return nil
			})
		}
		_ = sink
	})
}

// BenchmarkReadMostlyOCC is the control: read probes as validated OCC
// read-only transactions.
func BenchmarkReadMostlyOCC(b *testing.B) {
	benchReadMostly(b, false)
}

// BenchmarkReadMostlySnapshot is the same mix with validation-free MVCC
// snapshot probes.
func BenchmarkReadMostlySnapshot(b *testing.B) {
	benchReadMostly(b, true)
}
