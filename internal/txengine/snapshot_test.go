package txengine

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"medley/internal/pnvm"
)

// snapEngines enumerates the CapSnapshot engines the suite sweeps: the
// unsharded Medley family plus the sharded decorators at each shard count,
// so the one-timestamp-per-group property of cross-shard commits (including
// latch-group commits) is exercised alongside the single-manager path.
func snapEngines(t *testing.T, shardCounts []int, f func(t *testing.T, eng Engine)) {
	for _, key := range []string{"medley", "txmontage"} {
		b, ok := Lookup(key)
		if !ok {
			t.Fatalf("registry missing %q", key)
		}
		t.Run(key, func(t *testing.T) {
			eng := buildForTest(t, b)
			defer eng.Close()
			f(t, eng)
		})
	}
	for _, key := range []string{"medley-sharded", "txmontage-sharded"} {
		b, ok := Lookup(key)
		if !ok {
			t.Fatalf("registry missing %q", key)
		}
		for _, shards := range shardCounts {
			t.Run(fmt.Sprintf("%s/shards=%d", key, shards), func(t *testing.T) {
				eng, err := b.New(Config{EpochLen: 2 * time.Millisecond, Shards: shards})
				if err != nil {
					t.Fatal(err)
				}
				defer eng.Close()
				f(t, eng)
			})
		}
	}
}

// TestSnapshotCapsGate pins the capability contract: SnapshotRead succeeds
// exactly on CapSnapshot engines and is a false-returning no-op everywhere
// else, so portable workload code can attempt it unconditionally. It also
// checks the Medley family actually advertises the capability.
func TestSnapshotCapsGate(t *testing.T) {
	for _, key := range []string{"medley", "txmontage", "medley-sharded", "txmontage-sharded"} {
		if b, ok := Lookup(key); !ok || !b.Caps.Has(CapSnapshot) {
			t.Errorf("%s must advertise CapSnapshot", key)
		}
	}
	for _, b := range Builders() {
		b := b
		t.Run(b.Key, func(t *testing.T) {
			eng := buildForTest(t, b)
			defer eng.Close()
			tx := eng.NewWorker(0)
			ran := false
			got := SnapshotRead(tx, func() { ran = true })
			want := b.Caps.Has(CapSnapshot)
			if got != want {
				t.Fatalf("SnapshotRead = %v, want %v (caps %b)", got, want, b.Caps)
			}
			if ran != want {
				t.Fatalf("fn ran = %v, want %v", ran, want)
			}
			st := eng.Stats()
			if want && st.SnapshotReads != 1 {
				t.Fatalf("SnapshotReads = %d after one snapshot, want 1", st.SnapshotReads)
			}
			if !want && st.SnapshotReads != 0 {
				t.Fatalf("SnapshotReads = %d on a non-snapshot engine", st.SnapshotReads)
			}
		})
	}
}

// TestSnapshotNeverTorn is the headline consistency test: writers transfer
// between a checking map and a savings map (two maps, one transaction — the
// cross-abstraction composition the paper argues for) while snapshot readers
// sum every account in both maps. The modular total is invariant under
// transfers, so any deviation means the snapshot observed half a transfer: a
// torn cut. Runs at shards 1, 2, and 8 so cross-shard commits are covered.
func TestSnapshotNeverTorn(t *testing.T) {
	const (
		accounts = 96
		perAcct  = uint64(1000)
		writers  = 4
		readers  = 2
		iters    = 1200
	)
	snapEngines(t, []int{1, 2, 8}, func(t *testing.T, eng Engine) {
		spec := MapSpec{Kind: KindHash, Buckets: 256}
		checking, err := eng.NewUintMap(spec)
		if err != nil {
			t.Fatal(err)
		}
		savings, err := eng.NewUintMap(spec)
		if err != nil {
			t.Fatal(err)
		}
		init := eng.NewWorker(0)
		const chunk = 32
		for lo := uint64(0); lo < accounts; lo += chunk {
			lo := lo
			if err := init.Run(func() error {
				for a := lo; a < lo+chunk && a < accounts; a++ {
					checking.Put(init, a, perAcct)
					savings.Put(init, a, perAcct)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		want := 2 * accounts * perAcct // modular sum, invariant under transfers

		var done atomic.Bool
		var wWg, rWg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wWg.Add(1)
			go func(w int) {
				defer wWg.Done()
				tx := eng.NewWorker(1 + w)
				rng := rand.New(rand.NewPCG(uint64(w)+1, 7))
				for i := 0; i < iters; i++ {
					from := rng.Uint64N(accounts)
					to := rng.Uint64N(accounts)
					amt := uint64(rng.IntN(20) + 1)
					if err := tx.Run(func() error {
						c, _ := checking.Get(tx, from)
						s, _ := savings.Get(tx, to)
						checking.Put(tx, from, c-amt)
						savings.Put(tx, to, s+amt)
						return nil
					}); err != nil {
						t.Errorf("transfer: %v", err)
						return
					}
				}
			}(w)
		}
		for r := 0; r < readers; r++ {
			rWg.Add(1)
			go func(r int) {
				defer rWg.Done()
				tx := eng.NewWorker(1 + writers + r)
				for !done.Load() {
					sum := uint64(0)
					missing := 0
					if !SnapshotRead(tx, func() {
						for a := uint64(0); a < accounts; a++ {
							c, ok := checking.Get(tx, a)
							if !ok {
								missing++
							}
							s, ok2 := savings.Get(tx, a)
							if !ok2 {
								missing++
							}
							sum += c + s
						}
					}) {
						t.Error("SnapshotRead refused on a CapSnapshot engine")
						return
					}
					if missing != 0 {
						t.Errorf("snapshot missed %d preloaded accounts", missing)
						return
					}
					if sum != want {
						t.Errorf("torn snapshot: modular sum %d, want %d", sum, want)
						return
					}
				}
			}(r)
		}
		// Writers bound the run; readers spin until they finish.
		wWg.Wait()
		done.Store(true)
		rWg.Wait()

		// Post-quiesce: a fresh snapshot must see the final balances exactly
		// (the seal catches up once no commit is in flight).
		tx := eng.NewWorker(1 + writers + readers)
		sum := uint64(0)
		SnapshotRead(tx, func() {
			for a := uint64(0); a < accounts; a++ {
				c, _ := checking.Get(tx, a)
				s, _ := savings.Get(tx, a)
				sum += c + s
			}
		})
		if sum != want {
			t.Fatalf("post-quiesce snapshot sum %d, want %d", sum, want)
		}
		if st := eng.Stats(); st.SnapshotReads == 0 {
			t.Fatal("no snapshot reads counted")
		}
	})
}

// TestSnapshotZeroAbort is the bugfix's core claim, stated as exact stats:
// after the engine quiesces, K snapshot reads account for exactly K commits,
// K snapshot reads, zero aborts, zero retries, and zero stale cuts. Snapshot
// reads never abort or restart — structurally, there is no retry loop to
// take — and the stats must say so.
func TestSnapshotZeroAbort(t *testing.T) {
	const contendedOps = 300
	snapEngines(t, []int{4}, func(t *testing.T, eng Engine) {
		m, err := eng.NewUintMap(MapSpec{Kind: KindHash, Buckets: 64})
		if err != nil {
			t.Fatal(err)
		}
		// A contended write phase first, so the snapshot phase runs against
		// an engine with history (non-trivial chains, advanced clock).
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				tx := eng.NewWorker(w)
				for i := 0; i < contendedOps; i++ {
					k := uint64(i % 8) // hot keys: force conflicts
					if err := tx.Run(func() error {
						v, _ := m.Get(tx, k)
						m.Put(tx, k, v+1)
						return nil
					}); err != nil {
						t.Errorf("write: %v", err)
						return
					}
				}
			}(w)
		}
		wg.Wait()

		const K = 200
		base := eng.Stats()
		tx := eng.NewWorker(5)
		for i := 0; i < K; i++ {
			if !SnapshotRead(tx, func() {
				for k := uint64(0); k < 8; k++ {
					m.Get(tx, k)
				}
			}) {
				t.Fatal("SnapshotRead refused")
			}
		}
		d := eng.Stats().Delta(base)
		if d.SnapshotReads != K {
			t.Errorf("SnapshotReads = %d, want %d", d.SnapshotReads, K)
		}
		if d.Commits != K {
			t.Errorf("Commits = %d, want %d (each snapshot is one committed txn)", d.Commits, K)
		}
		if d.Aborts != 0 || d.Retries != 0 {
			t.Errorf("snapshot reads aborted: aborts=%d retries=%d, want 0/0", d.Aborts, d.Retries)
		}
		if d.SnapshotStale != 0 {
			t.Errorf("SnapshotStale = %d on a quiesced engine, want 0", d.SnapshotStale)
		}
	})
}

// TestSnapshotFreshness checks the seal keeps up: on a quiesced engine a
// snapshot taken after a committed write observes that write (no unbounded
// staleness), removals read as absent, and values a single writer only ever
// increments can never appear to decrease across successive snapshots.
func TestSnapshotFreshness(t *testing.T) {
	snapEngines(t, []int{2}, func(t *testing.T, eng Engine) {
		m, err := eng.NewUintMap(MapSpec{Kind: KindHash, Buckets: 64})
		if err != nil {
			t.Fatal(err)
		}
		tx := eng.NewWorker(0)
		if err := tx.Run(func() error { m.Put(tx, 1, 42); return nil }); err != nil {
			t.Fatal(err)
		}
		var v uint64
		var ok bool
		SnapshotRead(tx, func() { v, ok = m.Get(tx, 1) })
		if !ok || v != 42 {
			t.Fatalf("snapshot after commit: got (%d,%v), want (42,true)", v, ok)
		}
		if err := tx.Run(func() error { m.Put(tx, 1, 43); return nil }); err != nil {
			t.Fatal(err)
		}
		SnapshotRead(tx, func() { v, ok = m.Get(tx, 1) })
		if !ok || v != 43 {
			t.Fatalf("snapshot after overwrite: got (%d,%v), want (43,true)", v, ok)
		}
		if err := tx.Run(func() error { m.Remove(tx, 1); return nil }); err != nil {
			t.Fatal(err)
		}
		SnapshotRead(tx, func() { _, ok = m.Get(tx, 1) })
		if ok {
			t.Fatal("snapshot after remove still sees the key")
		}

		// Monotonicity under concurrency: one writer increments, one reader
		// snapshots; observed values must never go backwards.
		const steps = 400
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			w := eng.NewWorker(1)
			for i := 0; i < steps; i++ {
				if err := w.Run(func() error {
					v, _ := m.Get(w, 2)
					m.Put(w, 2, v+1)
					return nil
				}); err != nil {
					t.Errorf("increment: %v", err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			r := eng.NewWorker(2)
			last := uint64(0)
			for i := 0; i < steps; i++ {
				var cur uint64
				SnapshotRead(r, func() { cur, _ = m.Get(r, 2) })
				if cur < last {
					t.Errorf("snapshot counter went backwards: %d after %d", cur, last)
					return
				}
				last = cur
			}
		}()
		wg.Wait()
	})
}

// TestSnapshotWriteDenied pins the read-only contract: map writes and queue
// operations inside SnapshotRead panic rather than corrupt the cut.
func TestSnapshotWriteDenied(t *testing.T) {
	mustPanic := func(t *testing.T, what string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s inside SnapshotRead did not panic", what)
			}
		}()
		f()
	}
	snapEngines(t, []int{2}, func(t *testing.T, eng Engine) {
		m, err := eng.NewUintMap(MapSpec{Kind: KindHash, Buckets: 64})
		if err != nil {
			t.Fatal(err)
		}
		q, err := eng.NewUintQueue()
		if err != nil {
			t.Fatal(err)
		}
		tx := eng.NewWorker(0)
		mustPanic(t, "Put", func() { SnapshotRead(tx, func() { m.Put(tx, 1, 1) }) })
		mustPanic(t, "Insert", func() { SnapshotRead(tx, func() { m.Insert(tx, 1, 1) }) })
		mustPanic(t, "Remove", func() { SnapshotRead(tx, func() { m.Remove(tx, 1) }) })
		mustPanic(t, "Enqueue", func() { SnapshotRead(tx, func() { q.Enqueue(tx, 1) }) })
		mustPanic(t, "Dequeue", func() { SnapshotRead(tx, func() { q.Dequeue(tx) }) })
		// The handle must remain usable after a denied write: the pin is
		// released on the way out of the panic.
		if err := tx.Run(func() error { m.Put(tx, 9, 9); return nil }); err != nil {
			t.Fatalf("handle unusable after denied write: %v", err)
		}
		var v uint64
		SnapshotRead(tx, func() { v, _ = m.Get(tx, 9) })
		if v != 9 {
			t.Fatalf("snapshot after recovery from panic: got %d, want 9", v)
		}
	})
}

// TestSnapshotRecovery checks the recovery seeding rule: chains must be
// rebuilt from the recovered live records, so a snapshot taken on a fresh
// post-crash engine observes every recovered key (a chain miss means
// "absent at the cut" — falling back to the inner map would tear).
func TestSnapshotRecovery(t *testing.T) {
	const n = uint64(100)
	for _, tc := range []struct {
		key    string
		shards int
	}{
		{"txmontage", 0},
		{"txmontage-sharded", 2},
		{"txmontage-sharded", 8},
	} {
		tc := tc
		name := tc.key
		if tc.shards > 0 {
			name = fmt.Sprintf("%s/shards=%d", tc.key, tc.shards)
		}
		t.Run(name, func(t *testing.T) {
			b, ok := Lookup(tc.key)
			if !ok {
				t.Fatalf("registry missing %q", tc.key)
			}
			eng, err := b.New(Config{EpochLen: 2 * time.Millisecond, Shards: tc.shards})
			if err != nil {
				t.Fatal(err)
			}
			p := eng.(Persister)
			devs := p.Devices()
			spec := MapSpec{Kind: KindHash, Buckets: 256}
			m, err := eng.NewUintMap(spec)
			if err != nil {
				t.Fatal(err)
			}
			tx := eng.NewWorker(0)
			const chunk = 25
			for lo := uint64(0); lo < n; lo += chunk {
				lo := lo
				if err := tx.Run(func() error {
					for k := lo; k < lo+chunk; k++ {
						m.Put(tx, k, k*7+3)
					}
					return nil
				}); err != nil {
					t.Fatal(err)
				}
			}
			p.Sync()
			eng.Close()
			dumps := pnvm.DumpAll(devs)

			eng2, err := b.New(Config{EpochLen: 2 * time.Millisecond, Shards: tc.shards, Devices: devs})
			if err != nil {
				t.Fatalf("rebuild: %v", err)
			}
			defer eng2.Close()
			rm, err := eng2.(Persister).RecoverUintMap(dumps, spec)
			if err != nil {
				t.Fatal(err)
			}
			tx2 := eng2.NewWorker(0)
			missing, wrong := 0, 0
			if !SnapshotRead(tx2, func() {
				for k := uint64(0); k < n; k++ {
					v, ok := rm.Get(tx2, k)
					switch {
					case !ok:
						missing++
					case v != k*7+3:
						wrong++
					}
				}
			}) {
				t.Fatal("SnapshotRead refused on recovered engine")
			}
			if missing != 0 || wrong != 0 {
				t.Fatalf("post-recovery snapshot: %d missing, %d wrong of %d recovered keys", missing, wrong, n)
			}
			// New writes after recovery must be snapshot-visible too: the
			// recovered chains and the live tier share one clock.
			if err := tx2.Run(func() error { rm.Put(tx2, 0, 999); return nil }); err != nil {
				t.Fatal(err)
			}
			var v uint64
			SnapshotRead(tx2, func() { v, _ = rm.Get(tx2, 0) })
			if v != 999 {
				t.Fatalf("post-recovery write invisible to snapshot: got %d, want 999", v)
			}
		})
	}
}

// TestSnapshotFuzzModel is the fuzz-vs-model leg: each writer owns a
// disjoint key range and applies random sum-preserving transfers inside it,
// while snapshot readers sweep random ranges asserting the per-range sum
// invariant mid-flight. After the run the engine state must equal each
// writer's sequential model exactly — through an OCC read and through a
// final snapshot.
func TestSnapshotFuzzModel(t *testing.T) {
	const (
		workers = 4
		keysPer = uint64(48)
		initVal = uint64(1000)
		iters   = 700
	)
	rangeBase := func(w int) uint64 { return uint64(w+1) << 32 }
	snapEngines(t, []int{1, 2, 8}, func(t *testing.T, eng Engine) {
		m, err := eng.NewUintMap(MapSpec{Kind: KindHash, Buckets: 512})
		if err != nil {
			t.Fatal(err)
		}
		init := eng.NewWorker(0)
		for w := 0; w < workers; w++ {
			w := w
			if err := init.Run(func() error {
				for i := uint64(0); i < keysPer; i++ {
					m.Put(init, rangeBase(w)+i, initVal)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		wantSum := keysPer * initVal

		models := make([]map[uint64]uint64, workers)
		var done atomic.Bool
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				tx := eng.NewWorker(1 + w)
				rng := rand.New(rand.NewPCG(uint64(w)+11, 13))
				model := make(map[uint64]uint64, keysPer)
				for i := uint64(0); i < keysPer; i++ {
					model[rangeBase(w)+i] = initVal
				}
				for i := 0; i < iters; i++ {
					// Distinct keys: from == to would make the second Put
					// clobber the first in the engine while the model's
					// increments cancel.
					fi := rng.Uint64N(keysPer)
					from := rangeBase(w) + fi
					to := rangeBase(w) + (fi+1+rng.Uint64N(keysPer-1))%keysPer
					amt := uint64(rng.IntN(30) + 1)
					if err := tx.Run(func() error {
						f, _ := m.Get(tx, from)
						g, _ := m.Get(tx, to)
						m.Put(tx, from, f-amt)
						m.Put(tx, to, g+amt)
						return nil
					}); err != nil {
						t.Errorf("worker %d: %v", w, err)
						return
					}
					model[from] -= amt
					model[to] += amt
				}
				models[w] = model
			}(w)
		}
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				tx := eng.NewWorker(1 + workers + r)
				rng := rand.New(rand.NewPCG(uint64(r)+101, 17))
				for !done.Load() {
					w := int(rng.Uint64N(workers))
					sum := uint64(0)
					SnapshotRead(tx, func() {
						for i := uint64(0); i < keysPer; i++ {
							v, _ := m.Get(tx, rangeBase(w)+i)
							sum += v
						}
					})
					if sum != wantSum {
						t.Errorf("reader %d: range %d snapshot sum %d, want %d (torn cut)", r, w, sum, wantSum)
						return
					}
				}
			}(r)
		}
		time.Sleep(30 * time.Millisecond)
		done.Store(true)
		wg.Wait()
		if t.Failed() {
			return
		}

		// Model check: engine state must match every writer's sequential
		// model — via OCC and via a post-quiesce snapshot.
		tx := eng.NewWorker(1 + workers + 2)
		for w := 0; w < workers; w++ {
			for k, want := range models[w] {
				if got, ok := m.Get(tx, k); !ok || got != want {
					t.Fatalf("OCC final state: key %#x = (%d,%v), model %d", k, got, ok, want)
				}
				var got uint64
				var ok bool
				SnapshotRead(tx, func() { got, ok = m.Get(tx, k) })
				if !ok || got != want {
					t.Fatalf("snapshot final state: key %#x = (%d,%v), model %d", k, got, ok, want)
				}
			}
		}
	})
}
