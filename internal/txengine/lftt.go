package txengine

import (
	"fmt"

	"medley/internal/lftt"
)

const lfttCaps = CapTx | CapSkipMap

// lfttEngine drives the LFTT baseline. LFTT transactions are static — the
// full operation list must be known up front — so Run buffers the
// operations issued by fn and executes them as one atomic static
// transaction when fn returns. In-transaction reads therefore return zero
// values (no CapDynamicTx), which is why LFTT cannot run TPC-C, exactly as
// the paper notes.
type lfttEngine struct {
	ct counters
}

func newLFTTEngine(Config) (Engine, error) { return &lfttEngine{}, nil }

func (*lfttEngine) Name() string { return "LFTT" }
func (*lfttEngine) Caps() Caps   { return lfttCaps }
func (e *lfttEngine) Stats() Stats {
	return e.ct.snapshot()
}
func (*lfttEngine) Close() {}

func (*lfttEngine) NewUintMap(spec MapSpec) (Map[uint64], error) {
	if spec.Kind == KindHash {
		return nil, ErrUnsupported
	}
	return &lfttMap{sl: lftt.New()}, nil
}

func (*lfttEngine) NewRowMap(MapSpec) (Map[any], error) { return nil, ErrUnsupported }

func (*lfttEngine) NewUintQueue() (Queue[uint64], error) { return nil, ErrUnsupported }

// NewWorker seeds each worker's backoff jitter from tid so mutually
// conflicting workers don't retry in lockstep.
func (e *lfttEngine) NewWorker(tid int) Tx {
	return &lfttTx{ct: &e.ct, bo: backoff{rng: uint64(tid)*2654435769 + 0x9e3779b97f4a7c15}}
}

// lfttTx buffers one static transaction per Run. ExecuteTx re-executes the
// whole transaction after a conflict; randomized exponential backoff
// between attempts prevents livelock among mutually aborting transactions
// at high thread counts (the same discipline as core.Session.backoff).
type lfttTx struct {
	sl   *lftt.SkipList // the one map the buffered transaction targets
	ct   *counters
	buf  []lftt.Op
	inTx bool
	err  error
	bo   backoff
}

// Run counts its own stats: the retry loop re-executes the buffered static
// transaction, not fn, so the shared countRun wrapper would miss retries.
func (t *lfttTx) Run(fn func() error) error {
	t.inTx = true
	t.sl = nil
	t.err = nil
	t.buf = t.buf[:0]
	err := fn()
	t.inTx = false
	if err != nil {
		t.ct.aborts.Add(1)
		return err // business abort: buffered ops are discarded, no retry
	}
	if t.err != nil {
		t.ct.aborts.Add(1)
		return t.err
	}
	if len(t.buf) == 0 {
		t.ct.commits.Add(1)
		return nil
	}
	for attempt := 0; ; attempt++ {
		if _, ok := t.sl.ExecuteTx(t.buf); ok {
			t.ct.commits.Add(1)
			return nil
		}
		t.ct.aborts.Add(1)
		t.ct.retries.Add(1)
		t.bo.wait(attempt)
	}
}

func (t *lfttTx) RunRead(fn func()) { _ = t.Run(func() error { fn(); return nil }) }
func (t *lfttTx) NoTx(fn func()) {
	t.ct.fallbacks.Add(1)
	_ = t.Run(func() error { fn(); return nil })
}
func (t *lfttTx) Abort() error { return ErrBusinessAbort }

// stage appends an operation to the worker's buffered transaction.
func (t *lfttTx) stage(sl *lftt.SkipList, ops ...lftt.Op) {
	if t.sl == nil {
		t.sl = sl
	} else if t.sl != sl {
		t.err = fmt.Errorf("lftt: a static transaction cannot span multiple maps: %w", ErrUnsupported)
		return
	}
	t.buf = append(t.buf, ops...)
}

// exec runs ops as one standalone static transaction, retried with backoff.
func (t *lfttTx) exec(sl *lftt.SkipList, ops ...lftt.Op) []lftt.OpResult {
	for attempt := 0; ; attempt++ {
		if res, ok := sl.ExecuteTx(ops); ok {
			return res
		}
		t.bo.wait(attempt)
	}
}

type lfttMap struct{ sl *lftt.SkipList }

func (m *lfttMap) Get(tx Tx, k uint64) (uint64, bool) {
	t := tx.(*lfttTx)
	if t.inTx {
		t.stage(m.sl, lftt.Op{Kind: lftt.OpGet, Key: k})
		return 0, false
	}
	return m.sl.Get(k)
}

// Put is remove+insert (LFTT inserts have set semantics: a plain insert on
// a present key is a no-op).
func (m *lfttMap) Put(tx Tx, k uint64, v uint64) (uint64, bool) {
	t := tx.(*lfttTx)
	ops := []lftt.Op{{Kind: lftt.OpRemove, Key: k}, {Kind: lftt.OpInsert, Key: k, Val: v}}
	if t.inTx {
		t.stage(m.sl, ops...)
		return 0, false
	}
	res := t.exec(m.sl, ops...)
	return res[0].Val, res[0].Ok
}

func (m *lfttMap) Insert(tx Tx, k uint64, v uint64) bool {
	t := tx.(*lfttTx)
	if t.inTx {
		t.stage(m.sl, lftt.Op{Kind: lftt.OpInsert, Key: k, Val: v})
		return false
	}
	return t.exec(m.sl, lftt.Op{Kind: lftt.OpInsert, Key: k, Val: v})[0].Ok
}

func (m *lfttMap) Remove(tx Tx, k uint64) (uint64, bool) {
	t := tx.(*lfttTx)
	if t.inTx {
		t.stage(m.sl, lftt.Op{Kind: lftt.OpRemove, Key: k})
		return 0, false
	}
	res := t.exec(m.sl, lftt.Op{Kind: lftt.OpRemove, Key: k})
	return res[0].Val, res[0].Ok
}
