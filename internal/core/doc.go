// Package core implements NBTC (NonBlocking Transaction Composition) and
// Medley, following "Transactional Composition of Nonblocking Data
// Structures" (Cai, Wen, Scott; PPoPP 2023).
//
// The package provides:
//
//   - CASObj[T]: an augmented atomic word supporting both plain atomic
//     operations and the transactional NbtcLoad / NbtcCAS operations of
//     Section 3.1 of the paper.
//   - Desc: the M-compare-N-swap (MCNS) transaction descriptor of Section
//     3.2, with install / tryFinalize / validate / uninstall phases.
//   - TxManager and Session: transaction lifecycle management (txBegin,
//     txEnd, txAbort, validateReads), deferred cleanups, allocation undo,
//     and retry helpers.
//
// # Mapping from the paper's 128-bit CAS to Go
//
// The C++ implementation pairs every transactional 64-bit word with a 64-bit
// counter and uses x86 CMPXCHG16B to switch the pair between "real value"
// (even counter) and "descriptor installed" (odd counter). Go has no 128-bit
// CAS, but it has a garbage collector, which eliminates the ABA hazard the
// counter exists to prevent. We therefore represent the
// (value, counter, descriptor) triple as an immutable heap cell reached
// through a single atomic.Pointer. Cell identity subsumes {value, counter}
// equality, so read-set validation is one pointer comparison. The paper's
// counter is retained in each cell (with the same parity convention) purely
// for introspection and test assertions.
//
// # Concurrency protocol
//
// A critical CAS installs a new cell that carries the owning descriptor, the
// speculative new value, the overwritten old value, and a pointer to the
// replaced cell (used to validate reads that the same transaction later
// overwrote). Conflicting threads that encounter an installed cell eagerly
// finalize the descriptor (abort if InPrep, help validate/commit if InProg)
// and uninstall the cell they tripped over; the owner sweeps its entire
// write set on commit or abort. Helpers never mutate a descriptor's read or
// write sets, and they read the read set only after observing status InProg
// (at which point both sets are frozen), so the protocol is free of data
// races by construction. Eager contention management makes the system
// obstruction-free, exactly as argued in Section 5.2 of the paper.
package core
