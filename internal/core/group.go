package core

import "sync/atomic"

// This file implements shared-fate transaction groups: several open
// transactions — typically one per shard of a sharded engine, each on its
// own TxManager — linked so that they commit or abort as one atomic unit.
//
// The mechanism is the classic multi-word extension of the MCNS descriptor
// protocol: every linked descriptor delegates its status to one shared
// TxGroup word, so the single CAS that finalizes the group finalizes every
// member at once. Helpers that trip over any member's installed cell resolve
// the *group*: an InPrep group is aborted whole, an InProg group is
// validated across every member's read set (and extra validators) and then
// committed or aborted whole. There is no window in which one member is
// committed and a sibling is not — the property the sharded runtime's
// key-granular (latch-based) cross-shard commit relies on, where concurrent
// single-shard transactions may invalidate a sub-transaction's reads at any
// time and a per-shard commit sequence could otherwise tear.
//
// Validation soundness under racing finalizers follows the same monotonicity
// argument as the single-descriptor case: cells are immutable and the GC
// rules out ABA, so once any member's read-set entry is invalid it stays
// invalid forever. Whichever finalizer wins the status CAS observed an
// all-valid (or some-invalid) group strictly before its CAS, and a racing
// finalizer with the opposite verdict must have observed the group at a
// time that contradicts monotonicity — so racing verdicts can differ only
// when both CAS attempts land after the status is already final, where they
// are no-ops.

// TxGroup links the descriptors of several open transactions into one
// shared-fate unit with a single status word. Like Desc, a group is used
// for exactly one (logical) transaction and never reused: helpers may hold
// references to a finalized group indefinitely, and reuse would let a
// straggler's status CAS corrupt an unrelated transaction.
type TxGroup struct {
	status  atomic.Uint32
	members []*Desc
}

// LinkTxs links the currently open transactions of ss into a new shared-fate
// group and returns it. Every session must be inside a transaction that has
// not yet installed any speculative write (link immediately after TxBegin):
// the group pointer becomes visible to helpers through installed cells, so
// it must be in place before the first install.
//
// Once linked, the transactions must be finished either by CommitLinked or
// by aborting every member (Session.TxAbort; aborting one member aborts the
// group, but each session still needs its own TxAbort/finish to run its
// sweep, undos, and hooks).
func LinkTxs(ss []*Session) *TxGroup {
	g := &TxGroup{members: make([]*Desc, len(ss))}
	for i, s := range ss {
		d := s.desc
		if d == nil {
			panic("medley: LinkTxs outside a transaction")
		}
		if d.group != nil {
			panic("medley: LinkTxs on an already linked transaction")
		}
		if len(d.writeSet) != 0 {
			panic("medley: LinkTxs after a speculative install")
		}
		d.group = g
		g.members[i] = d
	}
	return g
}

// CommitLinked atomically commits the linked transactions of ss: one status
// CAS freezes every member, validation covers every member's read set and
// validators, and one final CAS decides the fate of all of them. It then
// finishes each session (sweep, cleanups/undos, hooks) and returns nil if
// the group committed, ErrTxAborted otherwise. ss must be exactly the
// sessions passed to LinkTxs, each still inside its linked transaction.
func CommitLinked(ss []*Session) error {
	d0 := ss[0].desc
	if d0 == nil || d0.group == nil {
		panic("medley: CommitLinked outside a linked transaction")
	}
	g := d0.group
	if g.status.CompareAndSwap(uint32(InPrep), uint32(InProg)) {
		ok := true
		for _, m := range g.members {
			if !m.validate() {
				ok = false
				break
			}
		}
		if ok {
			g.status.CompareAndSwap(uint32(InProg), uint32(Committed))
		} else {
			g.status.CompareAndSwap(uint32(InProg), uint32(Aborted))
		}
	}
	// Every member shares the final status, so every finish returns the
	// same verdict; the last one is as good as any.
	var err error
	for _, s := range ss {
		err = s.finish(s.desc)
	}
	return err
}

// statusWord returns the atomic word that holds this descriptor's status:
// its own for a solo transaction, the group's for a linked one. Every status
// read and transition goes through it, which is what gives linked
// descriptors their shared fate.
func (d *Desc) statusWord() *atomic.Uint32 {
	if d.group != nil {
		return &d.group.status
	}
	return &d.status
}

// validateScope validates everything the finalizing CAS would commit: the
// whole group for a linked descriptor, just d itself otherwise.
func (d *Desc) validateScope() bool {
	if g := d.group; g != nil {
		for _, m := range g.members {
			if !m.validate() {
				return false
			}
		}
		return true
	}
	return d.validate()
}

// sweepScope uninstalls the finalized descriptor(s) from their write sets:
// the whole group for a linked descriptor (helpers only call this once the
// group reached InProg, when every member's write set is frozen), just d
// otherwise.
func (d *Desc) sweepScope(committed bool) {
	if g := d.group; g != nil {
		for _, m := range g.members {
			m.sweep(committed)
		}
		return
	}
	d.sweep(committed)
}
