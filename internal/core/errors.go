package core

import "errors"

// ErrTxAborted is returned by Session.TxEnd (and Session.TxAbort, and
// doomed-transaction checks such as Session.ValidateReads) when the current
// transaction did not commit. It plays the role of the paper's
// TransactionAborted exception; Session.Run retries the transaction body
// when it observes this error.
var ErrTxAborted = errors.New("medley: transaction aborted")
