package core

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestCASObjZeroValue(t *testing.T) {
	var o CASObj[int]
	if got := o.Load(); got != 0 {
		t.Fatalf("zero-value Load = %d, want 0", got)
	}
	if !o.CAS(0, 42) {
		t.Fatal("CAS from zero value failed")
	}
	if got := o.Load(); got != 42 {
		t.Fatalf("Load = %d, want 42", got)
	}
}

func TestCASObjPointer(t *testing.T) {
	type node struct{ v int }
	var o CASObj[*node]
	if o.Load() != nil {
		t.Fatal("zero-value pointer not nil")
	}
	a, b := &node{1}, &node{2}
	o.Store(a)
	if !o.CAS(a, b) {
		t.Fatal("CAS(a,b) failed")
	}
	if o.CAS(a, b) {
		t.Fatal("stale CAS succeeded")
	}
	if o.Load() != b {
		t.Fatal("Load != b")
	}
}

func TestCASObjStruct(t *testing.T) {
	type ref struct {
		p      *int
		marked bool
	}
	var o CASObj[ref]
	x := 5
	o.Store(ref{&x, false})
	if !o.CAS(ref{&x, false}, ref{&x, true}) {
		t.Fatal("struct CAS failed")
	}
	got := o.Load()
	if got.p != &x || !got.marked {
		t.Fatalf("Load = %+v", got)
	}
}

func TestCASObjSeqParity(t *testing.T) {
	var o CASObj[int]
	for i := 0; i < 10; i++ {
		o.Store(i)
		if o.seqOf()%2 != 0 {
			t.Fatalf("seq odd after plain store: %d", o.seqOf())
		}
	}
}

func TestCASObjStoreOverwrites(t *testing.T) {
	var o CASObj[string]
	o.Store("a")
	o.Store("b")
	if got := o.Load(); got != "b" {
		t.Fatalf("Load = %q, want b", got)
	}
}

func TestCASFailureReturnsFalseWithoutChange(t *testing.T) {
	var o CASObj[int]
	o.Store(7)
	if o.CAS(8, 9) {
		t.Fatal("CAS with wrong expected succeeded")
	}
	if got := o.Load(); got != 7 {
		t.Fatalf("value changed to %d after failed CAS", got)
	}
}

// Plain CAS must behave like a hardware CAS under contention: exactly one
// winner per value transition.
func TestCASObjConcurrentCounter(t *testing.T) {
	var o CASObj[int]
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				for {
					cur := o.Load()
					if o.CAS(cur, cur+1) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := o.Load(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

// Property: a sequence of Store/CAS operations on CASObj matches a plain
// variable executed sequentially.
func TestCASObjSequentialModel(t *testing.T) {
	f := func(ops []uint8, vals []int16) bool {
		var o CASObj[int16]
		var model int16
		for i, op := range ops {
			var v int16
			if len(vals) > 0 {
				v = vals[i%len(vals)]
			}
			switch op % 3 {
			case 0:
				o.Store(v)
				model = v
			case 1:
				expected := model
				if op%2 == 0 {
					expected++ // sometimes wrong on purpose
				}
				got := o.CAS(expected, v)
				want := expected == model
				if got != want {
					return false
				}
				if want {
					model = v
				}
			case 2:
				if o.Load() != model {
					return false
				}
			}
		}
		return o.Load() == model
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNbtcDegradesToPlainOutsideTx(t *testing.T) {
	mgr := NewTxManager()
	s := mgr.Session()
	var o CASObj[int]
	o.Store(1)
	v, _ := o.NbtcLoad(s)
	if v != 1 {
		t.Fatalf("NbtcLoad = %d", v)
	}
	if !o.NbtcCAS(s, 1, 2, true, true) {
		t.Fatal("NbtcCAS outside tx failed")
	}
	if o.installedBy() != nil {
		t.Fatal("descriptor installed outside a transaction")
	}
	if got := o.Load(); got != 2 {
		t.Fatalf("Load = %d, want 2", got)
	}
}

func TestNbtcNilSessionActsPlain(t *testing.T) {
	var o CASObj[int]
	if !o.NbtcCAS(nil, 0, 3, true, true) {
		t.Fatal("NbtcCAS with nil session failed")
	}
	v, tag := o.NbtcLoad(nil)
	if v != 3 {
		t.Fatalf("NbtcLoad = %d", v)
	}
	_ = tag
}
