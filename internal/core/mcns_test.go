package core

import (
	"errors"
	"sync"
	"testing"
)

// Protocol-level tests for the MCNS descriptor machinery beyond the
// API-level tests in tx_test.go.

func TestSpeculationIntervalPubWithoutLin(t *testing.T) {
	// A CAS with pubPt=true, linPt=false opens the speculation interval;
	// subsequent CASes are critical until one carries linPt (the
	// Natarajan–Mittal pattern of Section 2.2).
	mgr := NewTxManager()
	s := mgr.Session()
	var a, b CASObj[int]
	a.Store(1)
	b.Store(2)

	s.TxBegin()
	s.OpStart()
	if !a.NbtcCAS(s, 1, 10, false, true) { // publication point
		t.Fatal("pub CAS failed")
	}
	if a.installedBy() != s.Desc() {
		t.Fatal("publication CAS did not install descriptor")
	}
	// Still in the speculation interval: this CAS must be critical even
	// though pubPt is false here.
	if !b.NbtcCAS(s, 2, 20, true, false) { // linearization point
		t.Fatal("lin CAS failed")
	}
	if b.installedBy() != s.Desc() {
		t.Fatal("CAS inside speculation interval was not critical")
	}
	if err := s.TxEnd(); err != nil {
		t.Fatal(err)
	}
	if a.Load() != 10 || b.Load() != 20 {
		t.Fatal("commit lost writes")
	}
}

func TestNonCriticalCASExecutesPlainInsideTx(t *testing.T) {
	// Before any publication point, with no own speculative state, a CAS
	// with linPt=pubPt=false is a helping CAS: it executes immediately and
	// survives even if the transaction aborts.
	mgr := NewTxManager()
	s := mgr.Session()
	var helper CASObj[int]
	helper.Store(5)

	s.TxBegin()
	s.OpStart()
	if !helper.NbtcCAS(s, 5, 6, false, false) {
		t.Fatal("helping CAS failed")
	}
	if helper.installedBy() != nil {
		t.Fatal("non-critical CAS installed a descriptor")
	}
	s.TxAbort()
	if helper.Load() != 6 {
		t.Fatal("plain helping CAS was rolled back")
	}
}

func TestOpStartResetsSpeculationInterval(t *testing.T) {
	mgr := NewTxManager()
	s := mgr.Session()
	var a, b CASObj[int]

	s.TxBegin()
	s.OpStart()
	a.NbtcCAS(s, 0, 1, false, true) // open interval, never linearize
	s.OpStart()                     // next operation: fresh interval
	if !b.NbtcCAS(s, 0, 2, false, false) {
		t.Fatal("CAS failed")
	}
	if b.installedBy() != nil {
		t.Fatal("speculation interval leaked across OpStart")
	}
	s.TxAbort()
}

func TestDescStatusTransitionsAreMonotone(t *testing.T) {
	mgr := NewTxManager()
	s := mgr.Session()
	var a CASObj[int]
	s.TxBegin()
	a.NbtcCAS(s, 0, 1, true, true)
	d := s.Desc()
	if d.Status() != InPrep {
		t.Fatalf("fresh desc status = %v", d.Status())
	}
	if err := s.TxEnd(); err != nil {
		t.Fatal(err)
	}
	if d.Status() != Committed {
		t.Fatalf("status after commit = %v", d.Status())
	}
	// A finalized descriptor can never be aborted retroactively.
	d.status.CompareAndSwap(uint32(Committed), uint32(Aborted))
	if d.Status() != Committed && d.Status() != Aborted {
		t.Fatal("invalid status")
	}
}

func TestStatusStringer(t *testing.T) {
	for st, want := range map[Status]string{
		InPrep: "InPrep", InProg: "InProg", Committed: "Committed", Aborted: "Aborted",
	} {
		if st.String() != want {
			t.Fatalf("%d.String() = %q", st, st.String())
		}
	}
}

func TestFailedInstallLeavesNoDescriptor(t *testing.T) {
	// A critical CAS whose expected value mismatches must neither install
	// nor grow the write set.
	mgr := NewTxManager()
	s := mgr.Session()
	var a CASObj[int]
	a.Store(3)
	s.TxBegin()
	if a.NbtcCAS(s, 99, 100, true, true) {
		t.Fatal("CAS with wrong expected succeeded")
	}
	if a.installedBy() != nil {
		t.Fatal("failed CAS installed descriptor")
	}
	if len(s.Desc().writeSet) != 0 {
		t.Fatalf("write set grew to %d after failed CAS", len(s.Desc().writeSet))
	}
	s.TxAbort()
	if a.Load() != 3 {
		t.Fatal("value corrupted")
	}
}

func TestReadTagPrevChainAcrossManyRewrites(t *testing.T) {
	// Read, then overwrite the same word many times in one transaction:
	// the prev chain must keep the original read valid.
	mgr := NewTxManager()
	s := mgr.Session()
	var a CASObj[int]
	a.Store(0)
	s.TxBegin()
	v, tag := a.NbtcLoad(s)
	s.AddToReadSet(&a, tag)
	for i := 0; i < 20; i++ {
		if !a.NbtcCAS(s, v+i, v+i+1, true, true) {
			t.Fatalf("rewrite %d failed", i)
		}
	}
	if err := s.TxEnd(); err != nil {
		t.Fatalf("TxEnd after 20 rewrites: %v", err)
	}
	if a.Load() != 20 {
		t.Fatalf("a = %d", a.Load())
	}
}

func TestHelpersRaceToFinalizeOneWinner(t *testing.T) {
	// Many threads simultaneously trip over the same InPrep descriptor;
	// exactly one outcome must emerge and the word must hold a legal value.
	for round := 0; round < 50; round++ {
		mgr := NewTxManager()
		owner := mgr.Session()
		var a CASObj[int]
		a.Store(1)
		owner.TxBegin()
		if !a.NbtcCAS(owner, 1, 2, true, true) {
			t.Fatal("install failed")
		}
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_ = a.Load() // resolves the descriptor
			}()
		}
		wg.Wait()
		got := a.Load()
		if got != 1 {
			t.Fatalf("round %d: value %d (InPrep desc must be aborted by helpers)", round, got)
		}
		if err := owner.TxEnd(); !errors.Is(err, ErrTxAborted) {
			t.Fatalf("owner TxEnd = %v", err)
		}
	}
}

func TestHelpersCommitInProgConcurrently(t *testing.T) {
	for round := 0; round < 50; round++ {
		mgr := NewTxManager()
		owner := mgr.Session()
		var a, b CASObj[int]
		a.Store(1)
		b.Store(1)
		owner.TxBegin()
		a.NbtcCAS(owner, 1, 2, true, true)
		b.NbtcCAS(owner, 1, 2, true, true)
		d := owner.Desc()
		if !d.status.CompareAndSwap(uint32(InPrep), uint32(InProg)) {
			t.Fatal("setReady failed")
		}
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				if w%2 == 0 {
					_ = a.Load()
				} else {
					_ = b.Load()
				}
			}(w)
		}
		wg.Wait()
		if a.Load() != 2 || b.Load() != 2 {
			t.Fatalf("round %d: helpers failed to commit InProg tx: a=%d b=%d",
				round, a.Load(), b.Load())
		}
		if err := owner.TxEnd(); err != nil {
			t.Fatalf("owner TxEnd = %v", err)
		}
	}
}

func TestMixedTypeObjectsInOneTx(t *testing.T) {
	// The type-erased descriptor machinery must handle heterogeneous
	// CASObj instantiations in a single write set.
	type nodeRef struct {
		p      *int
		marked bool
	}
	mgr := NewTxManager()
	s := mgr.Session()
	var a CASObj[int]
	var b CASObj[string]
	var c CASObj[nodeRef]
	x := 5
	s.TxBegin()
	a.NbtcCAS(s, 0, 7, true, true)
	b.NbtcCAS(s, "", "hello", true, true)
	c.NbtcCAS(s, nodeRef{}, nodeRef{&x, true}, true, true)
	if err := s.TxEnd(); err != nil {
		t.Fatal(err)
	}
	if a.Load() != 7 || b.Load() != "hello" {
		t.Fatal("mixed-type commit lost values")
	}
	if got := c.Load(); got.p != &x || !got.marked {
		t.Fatalf("struct value = %+v", got)
	}
}

func TestSessionStatsTrackHelps(t *testing.T) {
	mgr := NewTxManager()
	s1 := mgr.Session()
	s2 := mgr.Session()
	var a CASObj[int]
	a.Store(1)
	s1.TxBegin()
	a.NbtcCAS(s1, 1, 2, true, true)
	// s2's plain load finalizes s1's descriptor: counted as a help against
	// s1's descriptor.
	_, _ = a.NbtcLoad(s2)
	if got := mgr.Stats().Helps; got == 0 {
		t.Fatal("help not counted")
	}
	s1.TxEnd()
}

func TestZeroValueCASObjInTx(t *testing.T) {
	mgr := NewTxManager()
	s := mgr.Session()
	var a CASObj[*int] // nil cell: implicit zero
	s.TxBegin()
	v, tag := a.NbtcLoad(s)
	if v != nil {
		t.Fatal("zero-value not nil")
	}
	s.AddToReadSet(&a, tag)
	x := 9
	if !a.NbtcCAS(s, nil, &x, true, true) {
		t.Fatal("CAS from nil cell failed")
	}
	if err := s.TxEnd(); err != nil {
		t.Fatal(err)
	}
	if a.Load() != &x {
		t.Fatal("commit lost pointer")
	}
}
