package core

import (
	"sync/atomic"
)

// cacheLine is the assumed coherence-granule size. Stats is padded to a
// multiple of it so that adjacent Stats instances (per-shard counter arrays,
// sessions allocated back to back) never share a line: every field is
// written with atomic RMW ops on the session's hot path, and false sharing
// between two sessions' counters serializes exactly the workers a sharded
// runtime is trying to decouple.
const cacheLine = 64

// Stats counts transaction events. Fields are atomic so that aggregation can
// run concurrently with the owning session, and the struct is padded to two
// cache lines (the second line guards against the adjacent-line prefetcher)
// so concurrent sessions never false-share their counters.
type Stats struct {
	Begins   atomic.Uint64 // transactions started
	Commits  atomic.Uint64 // transactions committed
	Aborts   atomic.Uint64 // transactions aborted (conflict or explicit)
	Helps    atomic.Uint64 // foreign descriptors finalized on this session's behalf
	Installs atomic.Uint64 // critical CASes that installed a descriptor
	Reads    atomic.Uint64 // read-set entries recorded

	_ [2*cacheLine - 6*8]byte
}

// StatsSnapshot is a plain-value copy of Stats.
type StatsSnapshot struct {
	Begins, Commits, Aborts, Helps, Installs, Reads uint64
}

func (s *Stats) snapshot() StatsSnapshot {
	return StatsSnapshot{
		Begins:   s.Begins.Load(),
		Commits:  s.Commits.Load(),
		Aborts:   s.Aborts.Load(),
		Helps:    s.Helps.Load(),
		Installs: s.Installs.Load(),
		Reads:    s.Reads.Load(),
	}
}

// Add accumulates another snapshot into s.
func (s *StatsSnapshot) Add(o StatsSnapshot) {
	s.Begins += o.Begins
	s.Commits += o.Commits
	s.Aborts += o.Aborts
	s.Helps += o.Helps
	s.Installs += o.Installs
	s.Reads += o.Reads
}

// TxManager owns transaction metadata shared among all Composable structures
// intended for use in the same transactions (paper Fig. 1). One TxManager
// instance must be shared by every structure touched by a given transaction;
// each worker goroutine obtains its own Session from it.
//
// Session allocation and stats aggregation are lock-free: sessions live on a
// push-only atomic list and their counters are atomics, so neither workers
// spinning up at high thread counts nor concurrent Stats polling ever
// serialize on a manager mutex.
type TxManager struct {
	sessions atomic.Pointer[Session] // head of the push-only session list
	nextID   atomic.Int64

	// beginHook, if set, runs at the start of every transaction on the
	// beginning session. Used by txMontage to pin the transaction's epoch
	// and register the epoch validator.
	beginHook func(*Session)
	// endHook, if set, runs when a transaction finishes (after the write
	// set is swept, before cleanups/undos), with the commit outcome. Used
	// by txMontage to release the session's epoch reservation.
	endHook func(*Session, bool)
	// retireHook, if set, observes TRetire'd nodes after commit. Used by
	// the persistence layer to retire NVM payloads.
	retireHook func(any)
}

// NewTxManager creates an empty transaction manager.
func NewTxManager() *TxManager { return &TxManager{} }

// SetBeginHook installs a hook invoked at TxBegin. It must be set before any
// transactions run.
func (m *TxManager) SetBeginHook(h func(*Session)) { m.beginHook = h }

// SetEndHook installs a hook invoked when every transaction finishes, with
// its commit outcome. It must be set before any transactions run.
func (m *TxManager) SetEndHook(h func(*Session, bool)) { m.endHook = h }

// SetRetireHook installs a hook invoked for every TRetire'd node after its
// transaction commits. It must be set before any transactions run.
func (m *TxManager) SetRetireHook(h func(any)) { m.retireHook = h }

// Session creates a new session bound to this manager. Sessions are not
// goroutine-safe; create one per worker goroutine. Allocation is lock-free
// (an atomic id draw plus a CAS push onto the session list), so spawning
// workers never serializes on the manager.
func (m *TxManager) Session() *Session {
	s := &Session{mgr: m, id: int(m.nextID.Add(1) - 1)}
	for {
		head := m.sessions.Load()
		s.next = head
		if m.sessions.CompareAndSwap(head, s) {
			return s
		}
	}
}

// NumSessions reports how many sessions have been created.
func (m *TxManager) NumSessions() int { return int(m.nextID.Load()) }

// Stats aggregates counters across all sessions without locking: the
// session list is immutable once pushed and every counter is atomic, so the
// walk is safe concurrent with both allocation and running transactions.
func (m *TxManager) Stats() StatsSnapshot {
	var total StatsSnapshot
	for s := m.sessions.Load(); s != nil; s = s.next {
		total.Add(s.st.snapshot())
	}
	return total
}
