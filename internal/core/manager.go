package core

import (
	"sync"
	"sync/atomic"
)

// Stats counts transaction events. Fields are atomic so that aggregation can
// run concurrently with the owning session.
type Stats struct {
	Begins   atomic.Uint64 // transactions started
	Commits  atomic.Uint64 // transactions committed
	Aborts   atomic.Uint64 // transactions aborted (conflict or explicit)
	Helps    atomic.Uint64 // foreign descriptors finalized on this session's behalf
	Installs atomic.Uint64 // critical CASes that installed a descriptor
	Reads    atomic.Uint64 // read-set entries recorded
}

// StatsSnapshot is a plain-value copy of Stats.
type StatsSnapshot struct {
	Begins, Commits, Aborts, Helps, Installs, Reads uint64
}

func (s *Stats) snapshot() StatsSnapshot {
	return StatsSnapshot{
		Begins:   s.Begins.Load(),
		Commits:  s.Commits.Load(),
		Aborts:   s.Aborts.Load(),
		Helps:    s.Helps.Load(),
		Installs: s.Installs.Load(),
		Reads:    s.Reads.Load(),
	}
}

// Add accumulates another snapshot into s.
func (s *StatsSnapshot) Add(o StatsSnapshot) {
	s.Begins += o.Begins
	s.Commits += o.Commits
	s.Aborts += o.Aborts
	s.Helps += o.Helps
	s.Installs += o.Installs
	s.Reads += o.Reads
}

// TxManager owns transaction metadata shared among all Composable structures
// intended for use in the same transactions (paper Fig. 1). One TxManager
// instance must be shared by every structure touched by a given transaction;
// each worker goroutine obtains its own Session from it.
type TxManager struct {
	mu       sync.Mutex
	sessions []*Session
	nextID   int

	// beginHook, if set, runs at the start of every transaction on the
	// beginning session. Used by txMontage to pin the transaction's epoch
	// and register the epoch validator.
	beginHook func(*Session)
	// endHook, if set, runs when a transaction finishes (after the write
	// set is swept, before cleanups/undos), with the commit outcome. Used
	// by txMontage to release the session's epoch reservation.
	endHook func(*Session, bool)
	// retireHook, if set, observes TRetire'd nodes after commit. Used by
	// the persistence layer to retire NVM payloads.
	retireHook func(any)
}

// NewTxManager creates an empty transaction manager.
func NewTxManager() *TxManager { return &TxManager{} }

// SetBeginHook installs a hook invoked at TxBegin. It must be set before any
// transactions run.
func (m *TxManager) SetBeginHook(h func(*Session)) { m.beginHook = h }

// SetEndHook installs a hook invoked when every transaction finishes, with
// its commit outcome. It must be set before any transactions run.
func (m *TxManager) SetEndHook(h func(*Session, bool)) { m.endHook = h }

// SetRetireHook installs a hook invoked for every TRetire'd node after its
// transaction commits. It must be set before any transactions run.
func (m *TxManager) SetRetireHook(h func(any)) { m.retireHook = h }

// Session creates a new session bound to this manager. Sessions are not
// goroutine-safe; create one per worker goroutine.
func (m *TxManager) Session() *Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := &Session{mgr: m, id: m.nextID}
	m.nextID++
	m.sessions = append(m.sessions, s)
	return s
}

// Stats aggregates counters across all sessions.
func (m *TxManager) Stats() StatsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total StatsSnapshot
	for _, s := range m.sessions {
		total.Add(s.st.snapshot())
	}
	return total
}
