package core

import (
	"sync/atomic"
	"unsafe"
)

// Status is the lifecycle state of a transaction descriptor (paper Fig. 4).
type Status uint32

const (
	// InPrep: the transaction is installing descriptors (initial state).
	InPrep Status = iota
	// InProg: the owner has called txEnd; the read and write sets are
	// frozen and the transaction is ready to be validated and committed
	// (possibly by a helper).
	InProg
	// Committed: all speculative writes take effect.
	Committed
	// Aborted: all speculative writes are discarded.
	Aborted
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case InPrep:
		return "InPrep"
	case InProg:
		return "InProg"
	case Committed:
		return "Committed"
	case Aborted:
		return "Aborted"
	}
	return "invalid"
}

// readRec is one read-set entry: the object and the cell observed by the
// linearizing load.
type readRec struct {
	o   Obj
	tag unsafe.Pointer
}

// Desc is an MCNS transaction descriptor. A fresh descriptor is allocated
// for every transaction (the garbage collector supplies the ABA protection
// that the paper's serial numbers provide); the readSet, writeSet and
// validators slices are mutated only by the owning session and only while
// the status is InPrep, which makes concurrent helper access race-free (see
// package comment).
type Desc struct {
	status atomic.Uint32
	// group, when non-nil, links this descriptor into a shared-fate
	// TxGroup: status lives in the group's word and finalization spans
	// every member (see group.go). Set once, before the first install.
	group      *TxGroup
	owner      *Session
	readSet    []readRec
	writeSet   []Obj
	validators []func() bool

	// Inline first storage for the sets: typical transactions (1–10
	// operations, at most one layered validator) fit without further
	// allocation; appends spill to the heap transparently.
	rsBuf [24]readRec
	wsBuf [12]Obj
	vBuf  [1]func() bool
}

// newDesc allocates a descriptor with its set storage inline.
func newDesc(owner *Session) *Desc {
	d := &Desc{owner: owner}
	d.readSet = d.rsBuf[:0]
	d.writeSet = d.wsBuf[:0]
	d.validators = d.vBuf[:0]
	return d
}

// Status returns the descriptor's current status (the group's, for a
// linked descriptor).
func (d *Desc) Status() Status { return Status(d.statusWord().Load()) }

// AddValidator registers an extra commit-time check evaluated (by the owner
// or by helpers) together with read-set validation; used by txMontage to
// fold the epoch check into MCNS commit (paper Section 4.4). Must be called
// by the owning session before the first speculative install.
func (d *Desc) AddValidator(f func() bool) {
	d.validators = append(d.validators, f)
}

// validate re-checks every read-set entry and extra validator (paper
// Fig. 6, validateReads). A read is valid if the object still holds the
// recorded cell, or holds a cell installed over it by this very descriptor
// (a later write by the same transaction).
func (d *Desc) validate() bool {
	for i := range d.readSet {
		r := &d.readSet[i]
		cur := r.o.curCell()
		if cur == r.tag {
			continue
		}
		if cur != nil {
			h := (*cellHeader)(cur)
			if h.desc == d && h.prev == r.tag {
				continue
			}
		}
		return false
	}
	for _, f := range d.validators {
		if !f() {
			return false
		}
	}
	return true
}

// tryFinalize gets a conflicting descriptor "out of the way" (paper Fig. 6):
// abort it if still InPrep, help it commit if InProg, then uninstall it from
// the object through which it was discovered. If the descriptor reached
// InProg its write set is frozen, so the helper additionally sweeps the
// whole write set to accelerate completion.
func (d *Desc) tryFinalize(o Obj, found unsafe.Pointer) {
	if o.curCell() != found {
		return // descriptor no longer responsible for this object
	}
	// For a linked descriptor the status word, the validation scope, and
	// the sweep scope are all group-wide: helping one member means
	// finalizing the whole shared-fate group (see group.go).
	w := d.statusWord()
	st := Status(w.Load())
	sawInProg := st == InProg || st == Committed
	if st == InPrep {
		w.CompareAndSwap(uint32(InPrep), uint32(Aborted))
		st = Status(w.Load())
		sawInProg = sawInProg || st == InProg || st == Committed
	}
	if st == InProg {
		if d.validateScope() {
			w.CompareAndSwap(uint32(InProg), uint32(Committed))
		} else {
			w.CompareAndSwap(uint32(InProg), uint32(Aborted))
		}
		st = Status(w.Load())
	}
	committed := st == Committed
	if sawInProg {
		// Write set(s) frozen (owner reached txEnd before finalization):
		// safe for a helper to sweep everything.
		d.sweepScope(committed)
	} else {
		// Aborted straight from InPrep: the owner may still be appending
		// to the write set, so only uninstall the cell we tripped over.
		o.uninstallFor(d, committed)
	}
	if d.owner != nil {
		d.owner.stats().Helps.Add(1)
	}
}

// sweep uninstalls the descriptor from every write-set entry. Called by the
// owner on commit/abort, and by helpers once the write set is frozen.
func (d *Desc) sweep(committed bool) {
	for _, o := range d.writeSet {
		o.uninstallFor(d, committed)
	}
}
