package core

import (
	"errors"
	"sync"
	"testing"
)

func TestTxCommitMakesWritesVisibleAtomically(t *testing.T) {
	mgr := NewTxManager()
	s := mgr.Session()
	var a, b CASObj[int]
	a.Store(1)
	b.Store(2)

	s.TxBegin()
	if !a.NbtcCAS(s, 1, 10, true, true) {
		t.Fatal("install on a failed")
	}
	if !b.NbtcCAS(s, 2, 20, true, true) {
		t.Fatal("install on b failed")
	}
	// Before commit, another session must not see speculative values.
	s2 := mgr.Session()
	// (s2 outside tx resolves descriptors; reading would abort s. Check the
	// raw cells instead.)
	if a.installedBy() != s.Desc() || b.installedBy() != s.Desc() {
		t.Fatal("descriptors not installed")
	}
	if err := s.TxEnd(); err != nil {
		t.Fatalf("TxEnd: %v", err)
	}
	if got := a.Load(); got != 10 {
		t.Fatalf("a = %d, want 10", got)
	}
	if got, _ := b.NbtcLoad(s2); got != 20 {
		t.Fatalf("b = %d, want 20", got)
	}
	if a.installedBy() != nil || b.installedBy() != nil {
		t.Fatal("descriptor left installed after commit")
	}
	if a.seqOf()%2 != 0 || b.seqOf()%2 != 0 {
		t.Fatal("odd seq after uninstall")
	}
}

func TestTxAbortRollsBack(t *testing.T) {
	mgr := NewTxManager()
	s := mgr.Session()
	var a, b CASObj[int]
	a.Store(1)
	b.Store(2)

	s.TxBegin()
	a.NbtcCAS(s, 1, 10, true, true)
	b.NbtcCAS(s, 2, 20, true, true)
	if err := s.TxAbort(); !errors.Is(err, ErrTxAborted) {
		t.Fatalf("TxAbort = %v", err)
	}
	if a.Load() != 1 || b.Load() != 2 {
		t.Fatalf("rollback failed: a=%d b=%d", a.Load(), b.Load())
	}
	if s.InTx() {
		t.Fatal("still in tx after abort")
	}
}

func TestOwnSpeculativeReadAndOverwrite(t *testing.T) {
	mgr := NewTxManager()
	s := mgr.Session()
	var a CASObj[int]
	a.Store(1)

	s.TxBegin()
	if !a.NbtcCAS(s, 1, 5, true, true) {
		t.Fatal("first CAS failed")
	}
	v, _ := a.NbtcLoad(s)
	if v != 5 {
		t.Fatalf("speculative read = %d, want 5", v)
	}
	// Second operation of the same transaction updates the same word.
	if !a.NbtcCAS(s, 5, 9, true, true) {
		t.Fatal("second CAS on own descriptor failed")
	}
	if v, _ := a.NbtcLoad(s); v != 9 {
		t.Fatalf("speculative read = %d, want 9", v)
	}
	// Wrong expected must fail.
	if a.NbtcCAS(s, 5, 11, true, true) {
		t.Fatal("CAS with stale expected succeeded")
	}
	if err := s.TxEnd(); err != nil {
		t.Fatalf("TxEnd: %v", err)
	}
	if a.Load() != 9 {
		t.Fatalf("a = %d, want 9", a.Load())
	}
}

func TestReadValidationAbortsOnConflict(t *testing.T) {
	mgr := NewTxManager()
	s1 := mgr.Session()
	s2 := mgr.Session()
	var a, b CASObj[int]
	a.Store(1)
	b.Store(2)

	s1.TxBegin()
	v, tag := a.NbtcLoad(s1)
	if v != 1 {
		t.Fatal("bad read")
	}
	s1.AddToReadSet(&a, tag)

	// s2 changes a before s1 commits.
	if !a.NbtcCAS(s2, 1, 99, true, true) {
		t.Fatal("s2 CAS failed")
	}

	b.NbtcCAS(s1, 2, 20, true, true)
	if err := s1.TxEnd(); !errors.Is(err, ErrTxAborted) {
		t.Fatalf("TxEnd = %v, want abort", err)
	}
	if b.Load() != 2 {
		t.Fatalf("b = %d, want rollback to 2", b.Load())
	}
	if a.Load() != 99 {
		t.Fatalf("a = %d, want 99", a.Load())
	}
}

func TestReadThenOwnWriteValidates(t *testing.T) {
	// A transaction that reads a word and later writes the same word must
	// still pass read validation (get-then-put composition, paper Fig. 3).
	mgr := NewTxManager()
	s := mgr.Session()
	var a CASObj[int]
	a.Store(1)

	s.TxBegin()
	v, tag := a.NbtcLoad(s)
	s.AddToReadSet(&a, tag)
	if !a.NbtcCAS(s, v, v+1, true, true) {
		t.Fatal("CAS failed")
	}
	// Overwrite again (two writes after the read).
	if !a.NbtcCAS(s, v+1, v+2, true, true) {
		t.Fatal("second CAS failed")
	}
	if err := s.TxEnd(); err != nil {
		t.Fatalf("TxEnd: %v (read-own-write should validate)", err)
	}
	if a.Load() != 3 {
		t.Fatalf("a = %d, want 3", a.Load())
	}
}

func TestEagerConflictAbortsInPrepLoser(t *testing.T) {
	mgr := NewTxManager()
	s1 := mgr.Session()
	s2 := mgr.Session()
	var a CASObj[int]
	a.Store(1)

	s1.TxBegin()
	if !a.NbtcCAS(s1, 1, 10, true, true) {
		t.Fatal("s1 install failed")
	}
	d1 := s1.Desc()

	// s2 (not in tx) encounters s1's descriptor and must finalize it:
	// s1 is InPrep, so it gets aborted and the old value restored.
	if got := a.Load(); got != 1 {
		t.Fatalf("s2 Load = %d, want 1 (s1 aborted, rolled back)", got)
	}
	if d1.Status() != Aborted {
		t.Fatalf("s1 status = %v, want Aborted", d1.Status())
	}
	if err := s1.TxEnd(); !errors.Is(err, ErrTxAborted) {
		t.Fatalf("s1 TxEnd = %v, want abort", err)
	}
	_ = s2
}

func TestHelperCommitsInProgTx(t *testing.T) {
	// Once a descriptor is InProg, an encountering thread helps it commit
	// rather than aborting it.
	mgr := NewTxManager()
	s1 := mgr.Session()
	var a CASObj[int]
	a.Store(1)

	s1.TxBegin()
	a.NbtcCAS(s1, 1, 10, true, true)
	d := s1.Desc()
	if !d.status.CompareAndSwap(uint32(InPrep), uint32(InProg)) {
		t.Fatal("setReady failed")
	}
	// A foreign load now helps commit.
	if got := a.Load(); got != 10 {
		t.Fatalf("Load = %d, want 10 (helper-committed)", got)
	}
	if d.Status() != Committed {
		t.Fatalf("status = %v, want Committed", d.Status())
	}
	// Owner's TxEnd observes the helper's commit.
	if err := s1.TxEnd(); err != nil {
		t.Fatalf("owner TxEnd after helper commit: %v", err)
	}
}

func TestHelperAbortsInProgWithStaleReads(t *testing.T) {
	mgr := NewTxManager()
	s1 := mgr.Session()
	s2 := mgr.Session()
	var a, b CASObj[int]
	a.Store(1)
	b.Store(2)

	s1.TxBegin()
	v, tag := a.NbtcLoad(s1)
	_ = v
	s1.AddToReadSet(&a, tag)
	b.NbtcCAS(s1, 2, 20, true, true)
	d := s1.Desc()

	// Invalidate the read, then push to InProg and let a helper decide.
	if !a.NbtcCAS(s2, 1, 7, true, true) {
		t.Fatal("invalidating CAS failed")
	}
	if !d.status.CompareAndSwap(uint32(InPrep), uint32(InProg)) {
		t.Fatal("setReady failed")
	}
	if got := b.Load(); got != 2 {
		t.Fatalf("b = %d, want 2 (helper must abort invalid tx)", got)
	}
	if d.Status() != Aborted {
		t.Fatalf("status = %v, want Aborted", d.Status())
	}
	if err := s1.TxEnd(); !errors.Is(err, ErrTxAborted) {
		t.Fatalf("TxEnd = %v", err)
	}
}

func TestValidateReadsMidTx(t *testing.T) {
	mgr := NewTxManager()
	s1 := mgr.Session()
	s2 := mgr.Session()
	var a CASObj[int]
	a.Store(1)

	s1.TxBegin()
	_, tag := a.NbtcLoad(s1)
	s1.AddToReadSet(&a, tag)
	if err := s1.ValidateReads(); err != nil {
		t.Fatalf("ValidateReads on valid tx: %v", err)
	}
	a.NbtcCAS(s2, 1, 2, true, true)
	if err := s1.ValidateReads(); !errors.Is(err, ErrTxAborted) {
		t.Fatalf("ValidateReads = %v, want abort", err)
	}
	if s1.InTx() {
		t.Fatal("ValidateReads failure must abort the tx")
	}
}

func TestCleanupsRunOnCommitOnly(t *testing.T) {
	mgr := NewTxManager()
	s := mgr.Session()
	var a CASObj[int]

	ran := 0
	s.TxBegin()
	a.NbtcCAS(s, 0, 1, true, true)
	s.AddToCleanups(func() { ran++ })
	if ran != 0 {
		t.Fatal("cleanup ran before commit")
	}
	if err := s.TxEnd(); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("cleanup ran %d times, want 1", ran)
	}

	ran = 0
	s.TxBegin()
	a.NbtcCAS(s, 1, 2, true, true)
	s.AddToCleanups(func() { ran++ })
	s.TxAbort()
	if ran != 0 {
		t.Fatal("cleanup ran on abort")
	}

	// Outside a transaction cleanups run immediately.
	ran = 0
	s.AddToCleanups(func() { ran++ })
	if ran != 1 {
		t.Fatal("cleanup not immediate outside tx")
	}
}

func TestOnAbortUndoRunsOnAbortOnly(t *testing.T) {
	mgr := NewTxManager()
	s := mgr.Session()
	var a CASObj[int]

	undone := 0
	s.TxBegin()
	a.NbtcCAS(s, 0, 1, true, true)
	s.OnAbort(func() { undone++ })
	s.TxAbort()
	if undone != 1 {
		t.Fatalf("undo ran %d times, want 1", undone)
	}

	undone = 0
	s.TxBegin()
	a.NbtcCAS(s, 0, 1, true, true)
	s.OnAbort(func() { undone++ })
	if err := s.TxEnd(); err != nil {
		t.Fatal(err)
	}
	if undone != 0 {
		t.Fatal("undo ran on commit")
	}
}

func TestRunRetriesOnConflictAbort(t *testing.T) {
	mgr := NewTxManager()
	s := mgr.Session()
	attempts := 0
	err := s.Run(func() error {
		attempts++
		if attempts < 3 {
			return s.TxAbort()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
}

func TestRunReturnsUserErrorWithoutRetry(t *testing.T) {
	mgr := NewTxManager()
	s := mgr.Session()
	var a CASObj[int]
	userErr := errors.New("insufficient funds")
	attempts := 0
	err := s.Run(func() error {
		attempts++
		a.NbtcCAS(s, 0, 1, true, true)
		return userErr
	})
	if !errors.Is(err, userErr) {
		t.Fatalf("err = %v, want user error", err)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (no retry on user error)", attempts)
	}
	if a.Load() != 0 {
		t.Fatal("user-error path did not roll back")
	}
}

func TestTxValidatorAbortsCommit(t *testing.T) {
	mgr := NewTxManager()
	s := mgr.Session()
	var a CASObj[int]
	ok := true
	s.TxBegin()
	s.Desc().AddValidator(func() bool { return ok })
	a.NbtcCAS(s, 0, 1, true, true)
	ok = false
	if err := s.TxEnd(); !errors.Is(err, ErrTxAborted) {
		t.Fatalf("TxEnd = %v, want abort from validator", err)
	}
	if a.Load() != 0 {
		t.Fatal("validator abort did not roll back")
	}
}

func TestBeginHookRuns(t *testing.T) {
	mgr := NewTxManager()
	calls := 0
	mgr.SetBeginHook(func(s *Session) { calls++; s.TxData = "epochctx" })
	s := mgr.Session()
	s.TxBegin()
	if calls != 1 || s.TxData != "epochctx" {
		t.Fatalf("hook calls=%d TxData=%v", calls, s.TxData)
	}
	s.TxAbort()
}

func TestNestedTxBeginPanics(t *testing.T) {
	mgr := NewTxManager()
	s := mgr.Session()
	s.TxBegin()
	defer func() {
		if recover() == nil {
			t.Fatal("nested TxBegin did not panic")
		}
		s.TxAbort()
	}()
	s.TxBegin()
}

func TestStatsAggregation(t *testing.T) {
	mgr := NewTxManager()
	s := mgr.Session()
	var a CASObj[int]
	for i := 0; i < 5; i++ {
		s.TxBegin()
		a.NbtcCAS(s, i, i+1, true, true)
		if err := s.TxEnd(); err != nil {
			t.Fatal(err)
		}
	}
	s.TxBegin()
	s.TxAbort()
	st := mgr.Stats()
	if st.Begins != 6 || st.Commits != 5 || st.Aborts != 1 || st.Installs != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

// Transactions moving value between two counters must preserve their sum.
func TestConcurrentTransfersPreserveSum(t *testing.T) {
	mgr := NewTxManager()
	const workers = 8
	const transfers = 2000
	var a, b CASObj[int]
	a.Store(1000)
	b.Store(1000)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := mgr.Session()
			for i := 0; i < transfers; i++ {
				src, dst := &a, &b
				if (w+i)%2 == 0 {
					src, dst = &b, &a
				}
				err := s.Run(func() error {
					sv, stag := src.NbtcLoad(s)
					s.AddToReadSet(src, stag)
					dv, _ := dst.NbtcLoad(s)
					if !src.NbtcCAS(s, sv, sv-1, true, true) {
						return ErrTxAborted
					}
					if !dst.NbtcCAS(s, dv, dv+1, true, true) {
						return ErrTxAborted
					}
					return nil
				})
				if err != nil {
					t.Errorf("transfer: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if sum := a.Load() + b.Load(); sum != 2000 {
		t.Fatalf("sum = %d, want 2000 (atomicity violated)", sum)
	}
}

// Torture test: many words, random multi-word transactions; the global sum
// across all words must be invariant.
func TestConcurrentMultiWordSumInvariant(t *testing.T) {
	mgr := NewTxManager()
	const nWords = 16
	const workers = 8
	const txns = 1500
	words := make([]CASObj[int], nWords)
	for i := range words {
		words[i].Store(100)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			s := mgr.Session()
			rng := seed*2654435769 + 12345
			next := func(n int) int {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return int(rng % uint64(n))
			}
			for i := 0; i < txns; i++ {
				i1, i2 := next(nWords), next(nWords)
				if i1 == i2 {
					continue
				}
				err := s.Run(func() error {
					v1, _ := words[i1].NbtcLoad(s)
					v2, _ := words[i2].NbtcLoad(s)
					if !words[i1].NbtcCAS(s, v1, v1-3, true, true) {
						return ErrTxAborted
					}
					if !words[i2].NbtcCAS(s, v2, v2+3, true, true) {
						return ErrTxAborted
					}
					return nil
				})
				if err != nil {
					t.Errorf("tx: %v", err)
					return
				}
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	sum := 0
	for i := range words {
		if words[i].installedBy() != nil {
			t.Fatal("descriptor left installed")
		}
		sum += words[i].Load()
	}
	if sum != nWords*100 {
		t.Fatalf("sum = %d, want %d", sum, nWords*100)
	}
}

// Obstruction freedom: with a conflicting transaction paused mid-flight
// (descriptor installed, owner suspended), a solo thread must complete its
// own transaction.
func TestObstructionFreedomAgainstStalledTx(t *testing.T) {
	mgr := NewTxManager()
	s1 := mgr.Session()
	s2 := mgr.Session()
	var a CASObj[int]
	a.Store(1)

	// s1 installs and then "stalls" (we simply stop driving it).
	s1.TxBegin()
	if !a.NbtcCAS(s1, 1, 50, true, true) {
		t.Fatal("install failed")
	}

	// s2 runs solo and must commit despite the stalled descriptor.
	err := s2.Run(func() error {
		v, _ := a.NbtcLoad(s2)
		if !a.NbtcCAS(s2, v, v+1, true, true) {
			return ErrTxAborted
		}
		return nil
	})
	if err != nil {
		t.Fatalf("solo tx blocked by stalled tx: %v", err)
	}
	if got := a.Load(); got != 2 {
		t.Fatalf("a = %d, want 2 (stalled InPrep tx aborted)", got)
	}
	// The stalled owner eventually notices.
	if err := s1.TxEnd(); !errors.Is(err, ErrTxAborted) {
		t.Fatalf("stalled owner TxEnd = %v, want abort", err)
	}
}

func TestTRetireRunsHookAfterCommit(t *testing.T) {
	mgr := NewTxManager()
	var retired []any
	mgr.SetRetireHook(func(x any) { retired = append(retired, x) })
	s := mgr.Session()
	var a CASObj[int]

	s.TxBegin()
	a.NbtcCAS(s, 0, 1, true, true)
	s.TRetire("node1")
	if len(retired) != 0 {
		t.Fatal("retire hook ran before commit")
	}
	if err := s.TxEnd(); err != nil {
		t.Fatal(err)
	}
	if len(retired) != 1 || retired[0] != "node1" {
		t.Fatalf("retired = %v", retired)
	}

	// Outside a transaction TRetire is immediate.
	s.TRetire("node2")
	if len(retired) != 2 {
		t.Fatal("TRetire outside tx not immediate")
	}
}
