package core

import (
	"errors"
	"testing"
)

// TestCommitLinkedAtomicAcrossManagers pins the shared-fate happy path: two
// transactions on two independent TxManagers, linked into one group, commit
// as a unit and both write sets become visible.
func TestCommitLinkedAtomicAcrossManagers(t *testing.T) {
	m1, m2 := NewTxManager(), NewTxManager()
	s1, s2 := m1.Session(), m2.Session()
	var a, b CASObj[int]
	a.Store(1)
	b.Store(2)

	s1.TxBegin()
	s2.TxBegin()
	g := LinkTxs([]*Session{s1, s2})
	if g == nil {
		t.Fatal("LinkTxs returned nil")
	}
	if !a.NbtcCAS(s1, 1, 10, true, true) {
		t.Fatal("install on a failed")
	}
	if !b.NbtcCAS(s2, 2, 20, true, true) {
		t.Fatal("install on b failed")
	}
	if err := CommitLinked([]*Session{s1, s2}); err != nil {
		t.Fatalf("CommitLinked: %v", err)
	}
	if a.Load() != 10 || b.Load() != 20 {
		t.Fatalf("a=%d b=%d, want 10 20", a.Load(), b.Load())
	}
	if s1.InTx() || s2.InTx() {
		t.Fatal("session still in tx after CommitLinked")
	}
	if a.installedBy() != nil || b.installedBy() != nil {
		t.Fatal("descriptor left installed after linked commit")
	}
}

// TestCommitLinkedValidationAbortsWholeGroup pins the shared fate on the
// failure side: if any member's read set is invalidated before the group
// commits, every member's writes roll back — no member may commit alone.
func TestCommitLinkedValidationAbortsWholeGroup(t *testing.T) {
	m1, m2 := NewTxManager(), NewTxManager()
	s1, s2 := m1.Session(), m2.Session()
	var a, b, c CASObj[int]
	a.Store(1)
	b.Store(2)
	c.Store(3)

	s1.TxBegin()
	s2.TxBegin()
	LinkTxs([]*Session{s1, s2})
	v, tag := c.NbtcLoad(s1)
	if v != 3 {
		t.Fatalf("read c=%d, want 3", v)
	}
	s1.AddToReadSet(&c, tag)
	if !a.NbtcCAS(s1, 1, 10, true, true) || !b.NbtcCAS(s2, 2, 20, true, true) {
		t.Fatal("install failed")
	}
	// An outside (non-transactional) writer invalidates s1's read.
	if !c.NbtcCAS(nil, 3, 4, true, true) {
		t.Fatal("outside CAS failed")
	}
	if err := CommitLinked([]*Session{s1, s2}); !errors.Is(err, ErrTxAborted) {
		t.Fatalf("CommitLinked = %v, want ErrTxAborted", err)
	}
	// s2's write must have rolled back even though only s1's read went stale.
	if a.Load() != 1 || b.Load() != 2 {
		t.Fatalf("a=%d b=%d after group abort, want 1 2", a.Load(), b.Load())
	}
}

// TestTxAbortOnOneMemberAbortsGroup pins the documented abort discipline:
// aborting one member aborts the shared status, and the sibling's own
// TxAbort then rolls back its writes under the same verdict.
func TestTxAbortOnOneMemberAbortsGroup(t *testing.T) {
	m1, m2 := NewTxManager(), NewTxManager()
	s1, s2 := m1.Session(), m2.Session()
	var a, b CASObj[int]
	a.Store(1)
	b.Store(2)

	s1.TxBegin()
	s2.TxBegin()
	LinkTxs([]*Session{s1, s2})
	a.NbtcCAS(s1, 1, 10, true, true)
	b.NbtcCAS(s2, 2, 20, true, true)
	if err := s1.TxAbort(); !errors.Is(err, ErrTxAborted) {
		t.Fatalf("s1.TxAbort = %v", err)
	}
	if err := s2.TxAbort(); !errors.Is(err, ErrTxAborted) {
		t.Fatalf("s2.TxAbort = %v", err)
	}
	if a.Load() != 1 || b.Load() != 2 {
		t.Fatalf("a=%d b=%d after member abort, want 1 2", a.Load(), b.Load())
	}
}

// TestLinkTxsGuards pins the misuse panics: linking outside a transaction,
// linking twice, linking after a speculative install, and TxEnd on a linked
// member (which must go through CommitLinked).
func TestLinkTxsGuards(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}

	m := NewTxManager()
	s := m.Session()
	mustPanic("LinkTxs outside tx", func() { LinkTxs([]*Session{s}) })

	s.TxBegin()
	LinkTxs([]*Session{s})
	mustPanic("double LinkTxs", func() { LinkTxs([]*Session{s}) })
	mustPanic("TxEnd on linked tx", func() { _ = s.TxEnd() })
	_ = s.TxAbort()

	var a CASObj[int]
	a.Store(1)
	s.TxBegin()
	a.NbtcCAS(s, 1, 2, true, true)
	mustPanic("LinkTxs after install", func() { LinkTxs([]*Session{s}) })
	_ = s.TxAbort()
}
