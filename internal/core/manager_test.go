package core

import (
	"sync"
	"testing"
	"unsafe"
)

// TestSessionAllocationConcurrent hammers the lock-free session allocator
// from many goroutines while Stats aggregation polls concurrently: every
// session must get a distinct id, the list must retain every session, and
// counters bumped on each session must all be visible in the final
// aggregate.
func TestSessionAllocationConcurrent(t *testing.T) {
	const (
		spawners   = 8
		perSpawner = 200
	)
	m := NewTxManager()
	var wg sync.WaitGroup
	ids := make(chan int, spawners*perSpawner)
	stop := make(chan struct{})
	var poll sync.WaitGroup
	poll.Add(1)
	go func() { // concurrent aggregation must not race with allocation
		defer poll.Done()
		for {
			select {
			case <-stop:
				return
			default:
				m.Stats()
			}
		}
	}()
	for g := 0; g < spawners; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSpawner; i++ {
				s := m.Session()
				s.st.Commits.Add(1)
				ids <- s.ID()
			}
		}()
	}
	wg.Wait()
	close(stop)
	poll.Wait()
	close(ids)

	seen := make(map[int]bool)
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate session id %d", id)
		}
		seen[id] = true
	}
	if len(seen) != spawners*perSpawner {
		t.Fatalf("allocated %d distinct ids, want %d", len(seen), spawners*perSpawner)
	}
	if n := m.NumSessions(); n != spawners*perSpawner {
		t.Fatalf("NumSessions = %d, want %d", n, spawners*perSpawner)
	}
	if st := m.Stats(); st.Commits != spawners*perSpawner {
		t.Fatalf("aggregated commits = %d, want %d (session list lost entries)", st.Commits, spawners*perSpawner)
	}
}

// TestStatsPadding pins the false-sharing fix: Stats must span at least two
// cache lines so adjacent instances (per-shard counter arrays, sessions)
// never share one, and must stay 8-byte aligned for its atomics.
func TestStatsPadding(t *testing.T) {
	if sz := unsafe.Sizeof(Stats{}); sz < 2*cacheLine || sz%cacheLine != 0 {
		t.Fatalf("Stats size %d, want a multiple of %d that is >= %d", sz, cacheLine, 2*cacheLine)
	}
	var pair [2]Stats
	a := uintptr(unsafe.Pointer(&pair[0].Begins))
	b := uintptr(unsafe.Pointer(&pair[1].Begins))
	if b-a < 2*cacheLine {
		t.Fatalf("adjacent Stats counters only %d bytes apart", b-a)
	}
}
