package core

import (
	"errors"
	"runtime"
	"time"
	"unsafe"
)

// Session is a per-goroutine handle onto a TxManager: the Go analogue of the
// paper's thread-local transaction state plus OpStarter. Each worker
// goroutine must use its own Session; a Session must not be shared between
// goroutines. All data-structure operations take a Session so that they can
// tell whether execution is currently inside a transaction (in which case
// NBTC instrumentation applies) or outside (in which case it is elided).
type Session struct {
	mgr  *TxManager
	id   int
	next *Session // manager's push-only session list (see TxManager.Session)
	desc *Desc    // non-nil while inside a transaction

	// inSpec tracks whether execution is inside the current operation's
	// speculation interval (Def. 3): set on a publication point or on
	// first contact with a value speculatively written by this
	// transaction; cleared by a successful linearizing CAS.
	inSpec bool

	cleanups []func() // post-critical work, run after commit
	undos    []func() // tNew compensation, run after abort

	// TxData is scratch space for layered systems (txMontage stores its
	// per-transaction epoch context here). Reset to nil at TxBegin.
	TxData any

	// Ext is a stable per-session extension slot for layered systems; it
	// survives across transactions (txMontage caches the session's epoch
	// pin here). Owned by whatever system the TxManager is attached to.
	Ext any

	rng uint64
	st  Stats
}

// ID returns the session's thread id within its TxManager.
func (s *Session) ID() int { return s.id }

// Manager returns the owning TxManager.
func (s *Session) Manager() *TxManager { return s.mgr }

// OpStart marks the beginning of a data-structure operation (the paper's
// OpStarter). It resets the speculation-interval flag: each operation's
// speculation interval starts fresh and is re-entered only on a publication
// point or on contact with a value speculatively written by an earlier
// operation of the same transaction.
func (s *Session) OpStart() { s.inSpec = false }

// InTx reports whether the session is currently inside a transaction. Data
// structures use this (like the paper's OpStarter) to elide instrumentation
// and to run cleanup immediately when called outside a transaction.
func (s *Session) InTx() bool { return s.desc != nil }

// Desc returns the current transaction's descriptor, or nil.
func (s *Session) Desc() *Desc { return s.desc }

func (s *Session) stats() *Stats { return &s.st }

// TxBegin starts a new transaction (paper Fig. 5, txBegin). Transactions do
// not nest; calling TxBegin while a transaction is open panics, since that
// is a programming error rather than a recoverable condition.
func (s *Session) TxBegin() {
	if s.desc != nil {
		panic("medley: TxBegin inside an open transaction")
	}
	d := newDesc(s)
	s.desc = d
	s.inSpec = false
	s.cleanups = s.cleanups[:0]
	s.undos = s.undos[:0]
	s.TxData = nil
	s.st.Begins.Add(1)
	if h := s.mgr.beginHook; h != nil {
		h(s)
	}
}

// TxEnd attempts to commit the current transaction (paper Fig. 6, txEnd).
// It returns nil on commit and ErrTxAborted otherwise. Either way the
// transaction is finished when TxEnd returns: speculative writes are made
// visible or rolled back, and cleanups or undo handlers have run.
func (s *Session) TxEnd() error {
	d := s.desc
	if d == nil {
		panic("medley: TxEnd outside a transaction")
	}
	if d.group != nil {
		// A linked transaction validates and commits group-wide; committing
		// one member alone would break the shared fate.
		panic("medley: TxEnd on a linked transaction; use CommitLinked")
	}
	if d.status.CompareAndSwap(uint32(InPrep), uint32(InProg)) {
		if d.validate() {
			d.status.CompareAndSwap(uint32(InProg), uint32(Committed))
		} else {
			d.status.CompareAndSwap(uint32(InProg), uint32(Aborted))
		}
	}
	return s.finish(d)
}

// TxAbort explicitly aborts the current transaction (paper Fig. 6, txAbort)
// and always returns ErrTxAborted, so that transaction bodies can write
// "return s.TxAbort()".
func (s *Session) TxAbort() error {
	d := s.desc
	if d == nil {
		panic("medley: TxAbort outside a transaction")
	}
	w := d.statusWord() // aborting one linked member aborts the whole group
	for {
		st := Status(w.Load())
		if st == Committed || st == Aborted {
			break
		}
		w.CompareAndSwap(uint32(st), uint32(Aborted))
	}
	err := s.finish(d)
	if err == nil {
		// A helper can commit us only after we reached InProg, which
		// TxAbort never sets; reaching here would be a protocol bug.
		panic("medley: TxAbort observed a committed transaction")
	}
	return err
}

// finish completes a transaction whose status has been finalized (possibly
// by a helper): sweeps the write set, runs cleanups or undos, updates stats,
// and closes the session's transaction scope.
func (s *Session) finish(d *Desc) error {
	st := Status(d.statusWord().Load())
	committed := st == Committed
	d.sweep(committed)
	s.desc = nil
	s.inSpec = false
	if committed {
		for _, f := range s.cleanups {
			f()
		}
	} else {
		for i := len(s.undos) - 1; i >= 0; i-- {
			s.undos[i]()
		}
	}
	// The end hook runs after cleanups and undos: txMontage releases the
	// session's epoch pin here, which guarantees that post-commit payload
	// retirements (and abort compensation) reach their epoch's persistence
	// batch before the epoch system may flush it.
	if h := s.mgr.endHook; h != nil {
		h(s, committed)
	}
	if committed {
		s.st.Commits.Add(1)
		return nil
	}
	s.st.Aborts.Add(1)
	return ErrTxAborted
}

// ValidateReads optionally checks mid-transaction that all recorded reads
// are still valid (paper Fig. 1, validateReads: the opacity escape hatch).
// If validation fails the transaction is aborted and ErrTxAborted returned.
func (s *Session) ValidateReads() error {
	d := s.desc
	if d == nil {
		panic("medley: ValidateReads outside a transaction")
	}
	if d.Status() == InPrep && d.validate() {
		return nil
	}
	return s.TxAbort()
}

// AddToReadSet registers the linearizing load of a read(-only) operation for
// commit-time validation (paper Fig. 1/Fig. 5, addToReadSet). o is the
// CASObj that was read and tag the ReadTag returned by NbtcLoad. Outside a
// transaction this is a no-op.
func (s *Session) AddToReadSet(o Obj, tag ReadTag) {
	d := s.desc
	if d == nil {
		return
	}
	d.readSet = append(d.readSet, readRec{o: o, tag: unsafe.Pointer(tag)})
	s.st.Reads.Add(1)
}

// AddToCleanups registers post-critical work (the paper's addToCleanups):
// deferred until after commit when inside a transaction, executed
// immediately otherwise.
func (s *Session) AddToCleanups(f func()) {
	if s.desc == nil {
		f()
		return
	}
	s.cleanups = append(s.cleanups, f)
}

// OnAbort registers compensation to run if the current transaction aborts
// (the undo side of the paper's tNew). Outside a transaction it is a no-op:
// there is nothing to compensate.
func (s *Session) OnAbort(f func()) {
	if s.desc == nil {
		return
	}
	s.undos = append(s.undos, f)
}

// TRetire schedules safe memory reclamation of a node after the current
// transaction commits (the paper's tRetire). Under Go's garbage collector
// reclamation itself is automatic, so the default behaviour simply drops the
// reference after commit; a TxManager RetireHook (used by the persistence
// layer to retire NVM payloads) can observe retirement.
func (s *Session) TRetire(x any) {
	hook := s.mgr.retireHook
	s.AddToCleanups(func() {
		if hook != nil {
			hook(x)
		}
	})
}

// Run executes fn as a transaction, retrying (with randomized exponential
// backoff) whenever the transaction aborts due to a conflict. If fn returns
// an error other than ErrTxAborted the transaction is aborted and the error
// is returned to the caller without retry — the idiom for business-logic
// aborts such as "insufficient funds".
func (s *Session) Run(fn func() error) error {
	for attempt := 0; ; attempt++ {
		s.TxBegin()
		err := fn()
		if err == nil {
			if s.desc == nil {
				// fn aborted explicitly but returned nil; treat as conflict.
				err = ErrTxAborted
			} else {
				err = s.TxEnd()
				if err == nil {
					return nil
				}
			}
		} else if s.desc != nil {
			s.TxAbort()
		}
		if !errors.Is(err, ErrTxAborted) {
			return err
		}
		s.backoff(attempt)
	}
}

// backoff applies bounded randomized exponential backoff between retries to
// avoid livelock among mutually aborting transactions (paper Section 3.1).
func (s *Session) backoff(attempt int) {
	if s.rng == 0 {
		s.rng = uint64(s.id)*2654435769 + 0x9e3779b97f4a7c15
	}
	Backoff(attempt, &s.rng)
}

// Backoff applies bounded randomized exponential backoff between optimistic
// retries: free first attempts, then Gosched, then jittered spins/sleeps.
// rng is caller-owned xorshift64 state (0 means unseeded) so independent
// retry loops don't share jitter streams. Exported for retry loops outside
// the session machinery (e.g. the txengine adapters of systems that manage
// their own re-execution).
func Backoff(attempt int, rng *uint64) {
	if attempt < 2 {
		return
	}
	if attempt < 6 {
		runtime.Gosched()
		return
	}
	shift := attempt
	if shift > 16 {
		shift = 16
	}
	// xorshift64 for jitter
	x := *rng
	if x == 0 {
		x = 0x9e3779b97f4a7c15
	}
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*rng = x
	spin := x % (1 << shift)
	if spin > 1<<14 {
		time.Sleep(time.Duration(spin>>4) * time.Nanosecond)
		return
	}
	for i := uint64(0); i < spin; i++ {
		runtime.Gosched()
	}
}
