package core

import (
	"sync/atomic"
	"unsafe"
)

// ReadTag is an opaque token returned by NbtcLoad and passed to
// Session.AddToReadSet. It identifies the cell (value version) observed by
// the load; at commit time the transaction validates that the object still
// holds that cell (or a cell the transaction itself installed over it).
type ReadTag unsafe.Pointer

// cellHeader is the type-erased prefix of every cell. It MUST be the first
// field of cell[T] so that a *cell[T] can be viewed as a *cellHeader by the
// generic descriptor machinery.
type cellHeader struct {
	// desc is non-nil while a transaction descriptor is installed in the
	// owning CASObj (the paper's "odd counter" state).
	desc *Desc
	// prev is the cell this cell was installed over. It is meaningful only
	// while desc != nil and is used to validate reads that the installing
	// transaction subsequently overwrote.
	prev unsafe.Pointer
	// seq mirrors the paper's 64-bit counter: even for a real value, odd
	// while a descriptor is installed. Correctness does not depend on it
	// (cells are immutable and GC prevents reuse); it is kept for fidelity
	// and for invariant checks in tests.
	seq uint64
}

// cell is one immutable version of a CASObj's contents.
type cell[T comparable] struct {
	cellHeader
	// val is the current value; while desc != nil it is the speculative
	// value that takes effect if the transaction commits.
	val T
	// old is the value that was overwritten by the install; it is restored
	// if the transaction aborts. Meaningful only while desc != nil.
	old T
}

// Obj is the type-erased view of a *CASObj[T] used by descriptors for
// validation and uninstalling. Only *CASObj[T] implements it.
type Obj interface {
	curCell() unsafe.Pointer
	uninstallFor(d *Desc, committed bool)
}

// CASObj is an augmented atomic word (the paper's CASObj<T>, Fig. 1 and
// Fig. 4). The zero value holds the zero value of T. T must be comparable;
// pointer types and small structs of pointers/booleans (e.g. marked
// references) are the intended instantiations.
type CASObj[T comparable] struct {
	c atomic.Pointer[cell[T]]
}

var _ Obj = (*CASObj[int])(nil)

// resolve loads the current cell, eagerly finalizing any foreign descriptor
// it encounters (the paper's tryFinalize loop). On return the cell is either
// nil (implicit zero value), a real-value cell, or a cell installed by
// `own` (when own != nil).
func (o *CASObj[T]) resolve(own *Desc) *cell[T] {
	for {
		c := o.c.Load()
		if c == nil || c.desc == nil || c.desc == own {
			return c
		}
		c.desc.tryFinalize(o, unsafe.Pointer(c))
	}
}

// Load atomically reads the current value, resolving (finalizing and
// uninstalling) any descriptor found in the object. This is the paper's
// "regular atomic method" load; safe to call inside or outside transactions,
// but inside a transaction it performs no read tracking.
func (o *CASObj[T]) Load() T {
	c := o.resolve(nil)
	if c == nil {
		var zero T
		return zero
	}
	return c.val
}

// Store atomically replaces the current value.
func (o *CASObj[T]) Store(v T) {
	for {
		c := o.resolve(nil)
		var seq uint64
		if c != nil {
			seq = c.seq
		}
		nc := &cell[T]{cellHeader{seq: seq + 2}, v, v}
		if o.c.CompareAndSwap(c, nc) {
			return
		}
	}
}

// CAS is a plain (non-speculative) compare-and-swap on the value. It
// resolves foreign descriptors before comparing, and retries on version
// churn so long as the current value still equals expected.
func (o *CASObj[T]) CAS(expected, desired T) bool {
	for {
		c := o.resolve(nil)
		var cur T
		var seq uint64
		if c != nil {
			cur, seq = c.val, c.seq
		}
		if cur != expected {
			return false
		}
		nc := &cell[T]{cellHeader{seq: seq + 2}, desired, desired}
		if o.c.CompareAndSwap(c, nc) {
			return true
		}
	}
}

// NbtcLoad is the transactional load of Fig. 5. Outside a transaction it
// degenerates to Load. Inside a transaction it returns the speculative value
// if this transaction has a descriptor installed here (starting the
// speculation interval, per Def. 3), and otherwise the committed value. The
// returned ReadTag may be passed to Session.AddToReadSet if this load is the
// operation's immediately identifiable linearization point.
func (o *CASObj[T]) NbtcLoad(s *Session) (T, ReadTag) {
	var own *Desc
	if s != nil {
		own = s.desc
	}
	c := o.resolve(own)
	if c == nil {
		var zero T
		return zero, nil
	}
	if c.desc != nil { // own descriptor: speculative read
		s.inSpec = true
		return c.val, ReadTag(c.prev)
	}
	return c.val, ReadTag(unsafe.Pointer(c))
}

// NbtcCAS is the transactional CAS of Fig. 5. linPt indicates that a
// successful CAS is the operation's linearization point; pubPt indicates it
// is the publication point (Def. 3). Outside a transaction it degenerates to
// a plain CAS. Inside a transaction, CASes within the speculation interval
// are executed speculatively by installing the transaction's descriptor; the
// write takes effect only if the transaction commits.
func (o *CASObj[T]) NbtcCAS(s *Session, expected, desired T, linPt, pubPt bool) bool {
	if s == nil || s.desc == nil {
		return o.CAS(expected, desired)
	}
	d := s.desc
	for {
		c := o.resolve(d)
		if c != nil && c.desc != nil {
			// Own descriptor already installed here: speculative update of
			// the pending new value (paper Fig. 5 line 34). Replacing the
			// installed cell keeps old/prev so helpers can still abort us.
			s.inSpec = true
			if c.val != expected {
				return false
			}
			nc := &cell[T]{cellHeader{desc: d, prev: c.prev, seq: c.seq}, desired, c.old}
			if o.c.CompareAndSwap(c, nc) {
				if linPt {
					s.inSpec = false
				}
				return true
			}
			continue // a helper finalized us meanwhile; re-resolve
		}
		var cur T
		var seq uint64
		if c != nil {
			cur, seq = c.val, c.seq
		}
		if cur != expected {
			return false
		}
		if pubPt {
			s.inSpec = true
		}
		if !s.inSpec {
			// Non-critical CAS: execute on the fly (methodology step 1).
			nc := &cell[T]{cellHeader{seq: seq + 2}, desired, desired}
			if o.c.CompareAndSwap(c, nc) {
				return true
			}
			continue
		}
		// Critical CAS: install the descriptor (methodology step 2).
		nc := &cell[T]{cellHeader{desc: d, prev: unsafe.Pointer(c), seq: seq + 1}, desired, cur}
		d.writeSet = append(d.writeSet, o)
		if !o.c.CompareAndSwap(c, nc) {
			d.writeSet = d.writeSet[:len(d.writeSet)-1]
			return false // contention; let the data structure retry its loop
		}
		s.stats().Installs.Add(1)
		if linPt {
			s.inSpec = false
		}
		return true
	}
}

// curCell implements Obj.
func (o *CASObj[T]) curCell() unsafe.Pointer {
	return unsafe.Pointer(o.c.Load())
}

// uninstallFor implements Obj: if a cell installed by d is present, replace
// it with the real-value cell dictated by d's final status. Loops because
// the owner may concurrently replace one installed cell with another
// (speculative new-value update); idempotent across racing helpers.
func (o *CASObj[T]) uninstallFor(d *Desc, committed bool) {
	for {
		c := o.c.Load()
		if c == nil || c.desc != d {
			return
		}
		v := c.val
		if !committed {
			v = c.old
		}
		nc := &cell[T]{cellHeader{seq: c.seq + 1}, v, v}
		if o.c.CompareAndSwap(c, nc) {
			return
		}
	}
}

// seqOf reports the current cell's sequence number (tests only).
func (o *CASObj[T]) seqOf() uint64 {
	c := o.c.Load()
	if c == nil {
		return 0
	}
	return c.seq
}

// installedBy reports whether a descriptor is currently installed (tests and
// invariant checks only).
func (o *CASObj[T]) installedBy() *Desc {
	c := o.c.Load()
	if c == nil {
		return nil
	}
	return c.desc
}
