// Package chaos is a registry of named crash/fault-injection points threaded
// through the persistence and serving layers. A point is a zero-cost no-op
// until a test (or a -chaos flag) arms it with a Fault; an armed point fires
// on a configurable schedule (skip the first After hits, then every Every-th,
// at most Times times), which lets a sweep land the same fault at every
// instant of a protocol — after the first payload write, between two shards'
// flushes, mid-frame on the wire — instead of sampling one coarse failure.
//
// Fault kinds:
//
//   - Crash: run the fault's Action (typically crashing a pnvm device fleet,
//     so nothing volatile survives) and then panic with a *CrashPanic. The
//     panic models the process dying at that instant; tests recover it at
//     the top of the "run" (AsCrash), abandon the wounded engine exactly as
//     a restart would, and drive recovery from the surviving media.
//   - Delay: sleep, modelling a stall (slow media, scheduling hiccup).
//   - Error: return an injected error from Point.Hit. Sites without an error
//     channel (e.g. a write-back that returns nothing) ignore it.
//   - Torn: truncation injection for byte-stream sites. Point.Torn(n)
//     reports a prefix length to emit before killing the stream — a torn
//     frame or partial write.
//
// Points are registered by their owning packages at init time (At), so every
// linked binary sees the full catalog via Names. Arming is programmatic
// (Arm) or textual (ArmSpec: "name=kind[:arg][@after=N][@every=N][@times=N]"
// — the shape of txserver's -chaos flag and the MEDLEY_CHAOS env var).
//
// The disarmed fast path is one atomic load of a package-level counter
// shared by all points, so production paths pay nothing measurable for
// carrying their instrumentation.
package chaos

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind selects what an armed fault does when it fires.
type Kind uint8

const (
	// Crash runs Fault.Action, then panics with a *CrashPanic.
	Crash Kind = iota + 1
	// Delay sleeps Fault.Delay.
	Delay
	// Error makes Point.Hit return Fault.Err.
	Error
	// Torn makes Point.Torn report a truncation prefix (byte-stream sites).
	Torn
)

func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Delay:
		return "delay"
	case Error:
		return "error"
	case Torn:
		return "torn"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Fault configures an armed point. The zero schedule (After/Every/Times all
// zero) fires on every hit from the first.
type Fault struct {
	Kind   Kind
	Delay  time.Duration // Delay: how long to sleep
	Err    error         // Error: what Hit returns
	Action func()        // Crash: run before panicking (e.g. crash a device fleet)
	After  int           // skip the first After hits
	Every  int           // then fire every Every-th eligible hit (0 or 1: every one)
	Times  int           // fire at most Times times (0: unlimited)
}

// CrashPanic is the value a Crash fault panics with. Tests recover it with
// AsCrash at the boundary that models a process restart.
type CrashPanic struct{ Point string }

func (c *CrashPanic) Error() string { return "chaos: crash injected at " + c.Point }

// AsCrash reports whether a recover() result is a chaos crash panic.
func AsCrash(r any) (*CrashPanic, bool) {
	cp, ok := r.(*CrashPanic)
	return cp, ok
}

// armedFault is a Fault plus its firing schedule state.
type armedFault struct {
	Fault
	hits  atomic.Int64
	fired atomic.Int64
}

// due consumes one hit and reports whether the fault fires on it.
func (a *armedFault) due() bool {
	n := a.hits.Add(1) - 1 // 0-based hit index
	if n < int64(a.After) {
		return false
	}
	if a.Every > 1 && (n-int64(a.After))%int64(a.Every) != 0 {
		return false
	}
	f := a.fired.Add(1)
	return a.Times <= 0 || f <= int64(a.Times)
}

func (a *armedFault) firedCount() int {
	f := int(a.fired.Load())
	if a.Times > 0 && f > a.Times {
		f = a.Times
	}
	return f
}

// Point is one named fault site. Obtain with At (typically in a package-level
// var so the site itself is just a method call).
type Point struct {
	name  string
	armed atomic.Pointer[armedFault]
}

// Name returns the point's registered name.
func (p *Point) Name() string { return p.name }

var (
	regMu       sync.Mutex
	registry    = map[string]*Point{}
	armedPoints atomic.Int32 // global disarmed-fast-path gate
	crashAction atomic.Pointer[func()]
)

// At registers (or returns) the named point. Owning packages call it at init
// time; the name is then part of the catalog Names reports.
func At(name string) *Point {
	regMu.Lock()
	defer regMu.Unlock()
	p := registry[name]
	if p == nil {
		p = &Point{name: name}
		registry[name] = p
	}
	return p
}

// Names returns the sorted catalog of registered points.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func lookup(name string) *Point {
	regMu.Lock()
	defer regMu.Unlock()
	return registry[name]
}

// Arm arms the named, already-registered point (unknown names error, so a
// typo in a flag is caught instead of silently never firing). Re-arming
// replaces the previous fault and resets the schedule.
func Arm(name string, f Fault) error {
	p := lookup(name)
	if p == nil {
		return fmt.Errorf("chaos: unknown point %q (registered: %s)", name, strings.Join(Names(), ", "))
	}
	switch f.Kind {
	case Crash, Delay, Torn:
	case Error:
		if f.Err == nil {
			f.Err = errors.New("chaos: injected error at " + name)
		}
	default:
		return fmt.Errorf("chaos: point %q armed with invalid kind %v", name, f.Kind)
	}
	if p.armed.Swap(&armedFault{Fault: f}) == nil {
		armedPoints.Add(1)
	}
	return nil
}

// Disarm disarms the named point (no-op when unknown or already disarmed).
func Disarm(name string) {
	if p := lookup(name); p != nil && p.armed.Swap(nil) != nil {
		armedPoints.Add(-1)
	}
}

// DisarmAll disarms every point (test cleanup).
func DisarmAll() {
	regMu.Lock()
	defer regMu.Unlock()
	for _, p := range registry {
		if p.armed.Swap(nil) != nil {
			armedPoints.Add(-1)
		}
	}
}

// Fired reports how many times the named point's current fault has fired
// (0 when unknown or disarmed). A sweep uses it to tell "the fault landed"
// from "this point is not on the exercised path".
func Fired(name string) int {
	p := lookup(name)
	if p == nil {
		return 0
	}
	a := p.armed.Load()
	if a == nil {
		return 0
	}
	return a.firedCount()
}

// AnyArmed reports whether any point is armed.
func AnyArmed() bool { return armedPoints.Load() != 0 }

// Hit is the generic fault site: a no-op unless this point is armed and due.
// Crash faults do not return (they panic); Delay faults sleep and return
// nil; Error faults return the injected error — sites with an error channel
// propagate it as a failure of the instrumented operation, sites without
// one ignore it. Torn faults never fire through Hit (see Torn), so a site
// consulting both never double-counts a hit.
func (p *Point) Hit() error {
	if armedPoints.Load() == 0 {
		return nil
	}
	return p.hit()
}

func (p *Point) hit() error {
	a := p.armed.Load()
	if a == nil || a.Kind == Torn || !a.due() {
		return nil
	}
	switch a.Kind {
	case Crash:
		if a.Action != nil {
			a.Action()
		}
		panic(&CrashPanic{Point: p.name})
	case Delay:
		time.Sleep(a.Delay)
	case Error:
		return a.Err
	}
	return nil
}

// Torn consults the point for a truncation fault over an n-byte write: when
// armed with Kind Torn and due, it returns the prefix length to emit (n/2 —
// guaranteed < n, so the stream really is torn) and true. Non-Torn faults
// never fire through Torn.
func (p *Point) Torn(n int) (int, bool) {
	if armedPoints.Load() == 0 {
		return 0, false
	}
	return p.torn(n)
}

func (p *Point) torn(n int) (int, bool) {
	a := p.armed.Load()
	if a == nil || a.Kind != Torn || !a.due() {
		return 0, false
	}
	return n / 2, true
}

// SetCrashAction registers the process-wide action Crash faults armed from
// textual specs run before panicking — typically crashing the engine's
// device fleet so the "process death" also loses everything volatile.
// Programmatic Arm callers pass Fault.Action directly instead.
func SetCrashAction(fn func()) { crashAction.Store(&fn) }

// ArmSpec arms one point from a textual spec:
//
//	name=crash
//	name=delay:10ms
//	name=error:message text
//	name=torn
//
// with optional @after=N, @every=N, @times=N modifiers appended (so an error
// message must not contain '@'), e.g. "server.frame.write=torn@every=40".
// Crash specs panic without a device crash unless SetCrashAction was called.
func ArmSpec(spec string) error {
	name, rest, ok := strings.Cut(spec, "=")
	if !ok || name == "" || rest == "" {
		return fmt.Errorf("chaos: bad spec %q, want name=kind[:arg][@after=N][@every=N][@times=N]", spec)
	}
	parts := strings.Split(rest, "@")
	kindArg := parts[0]
	var f Fault
	kind, arg, _ := strings.Cut(kindArg, ":")
	switch kind {
	case "crash":
		f.Kind = Crash
		f.Action = func() {
			if fn := crashAction.Load(); fn != nil {
				(*fn)()
			}
		}
	case "delay":
		d, err := time.ParseDuration(arg)
		if err != nil {
			return fmt.Errorf("chaos: bad delay in %q: %w", spec, err)
		}
		f.Kind, f.Delay = Delay, d
	case "error":
		f.Kind = Error
		if arg != "" {
			f.Err = errors.New("chaos: " + arg)
		}
	case "torn":
		f.Kind = Torn
	default:
		return fmt.Errorf("chaos: unknown fault kind %q in %q", kind, spec)
	}
	for _, mod := range parts[1:] {
		k, v, ok := strings.Cut(mod, "=")
		n, err := strconv.Atoi(v)
		if !ok || err != nil || n < 0 {
			return fmt.Errorf("chaos: bad modifier %q in %q", mod, spec)
		}
		switch k {
		case "after":
			f.After = n
		case "every":
			f.Every = n
		case "times":
			f.Times = n
		default:
			return fmt.Errorf("chaos: unknown modifier %q in %q", k, spec)
		}
	}
	return Arm(name, f)
}

// ArmSpecs arms a comma-separated list of specs (the -chaos flag /
// MEDLEY_CHAOS env shape). Empty input is a no-op.
func ArmSpecs(csv string) error {
	if csv == "" {
		return nil
	}
	for _, spec := range strings.Split(csv, ",") {
		if err := ArmSpec(strings.TrimSpace(spec)); err != nil {
			return err
		}
	}
	return nil
}
