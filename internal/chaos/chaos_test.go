package chaos

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// pt makes a uniquely named registered point for one test.
func pt(t *testing.T, name string) *Point {
	t.Helper()
	t.Cleanup(DisarmAll)
	return At("test." + name)
}

func TestDisarmedIsNoOp(t *testing.T) {
	p := pt(t, "noop")
	for i := 0; i < 100; i++ {
		if err := p.Hit(); err != nil {
			t.Fatalf("disarmed Hit returned %v", err)
		}
		if n, torn := p.Torn(64); torn || n != 0 {
			t.Fatalf("disarmed Torn returned (%d,%v)", n, torn)
		}
	}
	if Fired(p.Name()) != 0 {
		t.Fatalf("disarmed point reports fired=%d", Fired(p.Name()))
	}
}

func TestErrorFault(t *testing.T) {
	p := pt(t, "error")
	inj := errors.New("boom")
	if err := Arm(p.Name(), Fault{Kind: Error, Err: inj}); err != nil {
		t.Fatal(err)
	}
	if err := p.Hit(); !errors.Is(err, inj) {
		t.Fatalf("Hit = %v, want injected error", err)
	}
	if got := Fired(p.Name()); got != 1 {
		t.Fatalf("fired = %d, want 1", got)
	}
	Disarm(p.Name())
	if err := p.Hit(); err != nil {
		t.Fatalf("Hit after Disarm = %v", err)
	}
}

func TestCrashFaultPanicsAfterAction(t *testing.T) {
	p := pt(t, "crash")
	ran := false
	if err := Arm(p.Name(), Fault{Kind: Crash, Action: func() { ran = true }}); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			cp, ok := AsCrash(recover())
			if !ok {
				t.Fatalf("expected CrashPanic, got %v", cp)
			}
			if cp.Point != p.Name() {
				t.Fatalf("CrashPanic.Point = %q, want %q", cp.Point, p.Name())
			}
		}()
		p.Hit()
		t.Fatal("Hit returned instead of panicking")
	}()
	if !ran {
		t.Fatal("crash Action did not run before the panic")
	}
}

func TestDelayFault(t *testing.T) {
	p := pt(t, "delay")
	if err := Arm(p.Name(), Fault{Kind: Delay, Delay: 20 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := p.Hit(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delay fault slept only %v", d)
	}
}

func TestSchedule(t *testing.T) {
	p := pt(t, "sched")
	// Skip 2 hits, then fire every 3rd eligible hit, at most twice.
	if err := Arm(p.Name(), Fault{Kind: Error, After: 2, Every: 3, Times: 2}); err != nil {
		t.Fatal(err)
	}
	var fires []int
	for i := 0; i < 12; i++ {
		if p.Hit() != nil {
			fires = append(fires, i)
		}
	}
	// Hits 0,1 skipped; eligible hits 2,3,4,... fire at 2 and 5; Times=2 stops there.
	want := []int{2, 5}
	if len(fires) != len(want) || fires[0] != want[0] || fires[1] != want[1] {
		t.Fatalf("fired at %v, want %v", fires, want)
	}
	if got := Fired(p.Name()); got != 2 {
		t.Fatalf("fired = %d, want 2", got)
	}
}

func TestTorn(t *testing.T) {
	p := pt(t, "torn")
	if err := Arm(p.Name(), Fault{Kind: Torn}); err != nil {
		t.Fatal(err)
	}
	// Torn faults fire only through Torn, never through Hit.
	if err := p.Hit(); err != nil {
		t.Fatalf("Hit on torn fault = %v", err)
	}
	n, torn := p.Torn(100)
	if !torn || n != 50 {
		t.Fatalf("Torn(100) = (%d,%v), want (50,true)", n, torn)
	}
	if n, _ := p.Torn(101); n >= 101 {
		t.Fatalf("torn prefix %d not shorter than frame", n)
	}
	// Hit did not consume a schedule slot: two Torn calls, two fires.
	if got := Fired(p.Name()); got != 2 {
		t.Fatalf("fired = %d, want 2", got)
	}
}

func TestArmUnknownPoint(t *testing.T) {
	t.Cleanup(DisarmAll)
	if err := Arm("test.never-registered-xyz", Fault{Kind: Error}); err == nil {
		t.Fatal("Arm of unknown point succeeded")
	}
}

func TestRearmResetsSchedule(t *testing.T) {
	p := pt(t, "rearm")
	if err := Arm(p.Name(), Fault{Kind: Error, Times: 1}); err != nil {
		t.Fatal(err)
	}
	p.Hit()
	if p.Hit() != nil {
		t.Fatal("Times=1 fault fired twice")
	}
	if err := Arm(p.Name(), Fault{Kind: Error, Times: 1}); err != nil {
		t.Fatal(err)
	}
	if p.Hit() == nil {
		t.Fatal("re-armed fault did not fire")
	}
}

func TestArmSpec(t *testing.T) {
	p := pt(t, "spec")
	if err := ArmSpec(p.Name() + "=delay:5ms@after=1@times=1"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	p.Hit() // skipped (after=1)
	if d := time.Since(start); d > 3*time.Millisecond {
		t.Fatalf("first hit should not delay, took %v", d)
	}
	start = time.Now()
	p.Hit()
	if d := time.Since(start); d < 4*time.Millisecond {
		t.Fatalf("second hit should delay 5ms, took %v", d)
	}

	if err := ArmSpec(p.Name() + "=error:injected msg"); err != nil {
		t.Fatal(err)
	}
	if err := p.Hit(); err == nil || !strings.Contains(err.Error(), "injected msg") {
		t.Fatalf("error spec Hit = %v", err)
	}

	if err := ArmSpec(p.Name() + "=torn@every=2"); err != nil {
		t.Fatal(err)
	}
	if _, torn := p.Torn(10); !torn {
		t.Fatal("torn spec did not fire")
	}
	if _, torn := p.Torn(10); torn {
		t.Fatal("every=2 fired on consecutive hits")
	}

	for _, bad := range []string{
		"", "=crash", p.Name(), p.Name() + "=", p.Name() + "=what",
		p.Name() + "=delay:notadur", p.Name() + "=crash@bogus=1", p.Name() + "=crash@after=x",
		"test.unregistered-spec=crash",
	} {
		if err := ArmSpec(bad); err == nil {
			t.Fatalf("ArmSpec(%q) succeeded", bad)
		}
	}
}

func TestArmSpecsCSV(t *testing.T) {
	a, b := pt(t, "csv-a"), pt(t, "csv-b")
	if err := ArmSpecs(a.Name() + "=error, " + b.Name() + "=torn"); err != nil {
		t.Fatal(err)
	}
	if a.Hit() == nil {
		t.Fatal("first spec not armed")
	}
	if _, torn := b.Torn(8); !torn {
		t.Fatal("second spec not armed")
	}
	if err := ArmSpecs(""); err != nil {
		t.Fatal("empty csv should be a no-op")
	}
}

func TestSpecCrashUsesCrashAction(t *testing.T) {
	p := pt(t, "spec-crash")
	ran := false
	SetCrashAction(func() { ran = true })
	t.Cleanup(func() { SetCrashAction(func() {}) })
	if err := ArmSpec(p.Name() + "=crash"); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if _, ok := AsCrash(recover()); !ok {
				t.Fatal("expected CrashPanic")
			}
		}()
		p.Hit()
	}()
	if !ran {
		t.Fatal("SetCrashAction action did not run")
	}
}

// TestConcurrentHits exercises the armed hot path from many goroutines so the
// race detector can see the schedule counters; with Every=2 exactly half the
// hits fire.
func TestConcurrentHits(t *testing.T) {
	p := pt(t, "concurrent")
	if err := Arm(p.Name(), Fault{Kind: Error, Every: 2}); err != nil {
		t.Fatal(err)
	}
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	errs := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if p.Hit() != nil {
					errs[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, n := range errs {
		total += n
	}
	if want := goroutines * per / 2; total != want {
		t.Fatalf("fired %d times, want %d", total, want)
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	p := pt(t, "zz-names")
	names := Names()
	found := false
	for i, n := range names {
		if i > 0 && names[i-1] > n {
			t.Fatalf("Names not sorted: %q after %q", n, names[i-1])
		}
		if n == p.Name() {
			found = true
		}
	}
	if !found {
		t.Fatalf("Names missing %q", p.Name())
	}
}
