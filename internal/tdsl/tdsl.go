// Package tdsl implements "TDSL-lite", a baseline modelled on the
// transactional data structure library of Spiegelman, Golan-Gueta & Keidar
// (PLDI 2016), which the Medley paper compares against in Figures 8–9.
//
// TDSL's defining properties, reproduced here:
//
//   - Transactions are (blocking) optimistic: reads record versions of
//     semantically critical state only — not every traversed node — so read
//     sets stay small compared to a general STM.
//   - Writes are buffered and applied at commit under locks, TL2-style:
//     lock the written stripes in canonical order, validate recorded read
//     versions, apply, bump versions, unlock.
//   - Because commit holds locks, the system is blocking, and its
//     scalability saturates once writer commits start queueing — the
//     behaviour the paper observes.
//
// Substitution note (documented in DESIGN.md): the authors' TDSL attaches
// versioned locks to individual skiplist nodes. TDSL-lite coarsens that to
// hash-striped partitions, each holding an independent sequential skiplist
// guarded by one versioned lock. Read sets remain semantic ("the partition
// of key k was at version v"), commits remain short-lock TL2, and the
// blocking scalability profile is preserved with far less machinery.
package tdsl

import (
	"errors"
	"math/bits"
	"math/rand/v2"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"
)

// ErrAborted is returned by Tx.Commit when validation fails; callers retry.
var ErrAborted = errors.New("tdsl: transaction aborted")

// TM is the transaction manager: a global version clock shared by every
// structure participating in the same transactions.
type TM struct {
	clock atomic.Uint64
}

// NewTM creates a transaction manager.
func NewTM() *TM { return &TM{} }

// stripeHdr is the versioned lock of one partition. version is even when
// unlocked; a committing writer holds lock and bumps version to a fresh odd
// value while applying, then to a fresh even value.
type stripeHdr struct {
	lock    sync.Mutex
	version atomic.Uint64
}

// Tx is one transaction. Not goroutine-safe.
type Tx struct {
	tm      *TM
	reads   []readRec
	writes  []writeRec
	pending map[pendKey]pendVal
	aborted bool
}

type readRec struct {
	hdr *stripeHdr
	ver uint64
}

type writeRec struct {
	hdr   *stripeHdr
	apply func()
}

type pendKey struct {
	m any
	k uint64
}

type pendVal struct {
	present bool
	val     any
}

// Begin starts a transaction.
func (tm *TM) Begin() *Tx {
	return &Tx{tm: tm, pending: make(map[pendKey]pendVal, 8)}
}

// Run executes fn as a transaction, retrying on conflict aborts. A non-nil
// error other than ErrAborted from fn aborts without retry and is returned.
func (tm *TM) Run(fn func(tx *Tx) error) error {
	for attempt := 0; ; attempt++ {
		tx := tm.Begin()
		err := fn(tx)
		if err == nil {
			err = tx.Commit()
			if err == nil {
				return nil
			}
		}
		if !errors.Is(err, ErrAborted) {
			return err
		}
		if attempt > 3 {
			runtime.Gosched()
		}
	}
}

// abort marks the transaction doomed; subsequent Commit fails fast.
func (tx *Tx) abort() error {
	tx.aborted = true
	return ErrAborted
}

// recordRead snapshots a stripe version, aborting on a locked or
// post-snapshot version (TL2 read rule).
func (tx *Tx) recordRead(h *stripeHdr, ver uint64) bool {
	if ver%2 != 0 {
		tx.abort()
		return false
	}
	tx.reads = append(tx.reads, readRec{hdr: h, ver: ver})
	return true
}

// Commit applies the transaction: lock written stripes in canonical order,
// validate read versions, apply buffered writes, publish fresh versions.
func (tx *Tx) Commit() error {
	if tx.aborted {
		return ErrAborted
	}
	// Canonically order and dedupe write stripes to avoid deadlock.
	stripes := make([]*stripeHdr, 0, len(tx.writes))
	for _, w := range tx.writes {
		stripes = append(stripes, w.hdr)
	}
	sort.Slice(stripes, func(i, j int) bool {
		return hdrPtr(stripes[i]) < hdrPtr(stripes[j])
	})
	locked := stripes[:0]
	for i, h := range stripes {
		if i > 0 && h == stripes[i-1] {
			continue
		}
		h.lock.Lock()
		locked = append(locked, h)
	}
	unlock := func() {
		for _, h := range locked {
			h.lock.Unlock()
		}
	}
	// Validate reads: version unchanged, unless we hold the stripe's lock
	// ourselves (then the version is still the recorded one anyway since we
	// have not bumped yet).
	for _, r := range tx.reads {
		if r.hdr.version.Load() != r.ver {
			unlock()
			return tx.abort()
		}
	}
	// Apply under odd versions, then publish fresh even versions.
	wv := tx.tm.clock.Add(2)
	for _, h := range locked {
		h.version.Store(wv | 1)
	}
	for _, w := range tx.writes {
		w.apply()
	}
	for _, h := range locked {
		h.version.Store(wv + 2)
	}
	unlock()
	return nil
}

func hdrPtr(h *stripeHdr) uintptr { return uintptr(unsafe.Pointer(h)) }

// Map is a transactional ordered map from uint64 to V, partitioned into
// hash stripes each holding a sequential skiplist under a versioned lock.
type Map[V any] struct {
	stripes []mapStripe[V]
}

type mapStripe[V any] struct {
	stripeHdr
	sl seqSkip[V]
}

// NewMap creates a map with nstripes partitions.
func NewMap[V any](nstripes int) *Map[V] {
	if nstripes < 1 {
		nstripes = 1
	}
	m := &Map[V]{stripes: make([]mapStripe[V], nstripes)}
	for i := range m.stripes {
		m.stripes[i].sl.init()
	}
	return m
}

func (m *Map[V]) stripe(k uint64) *mapStripe[V] {
	return &m.stripes[mix64(k)%uint64(len(m.stripes))]
}

// Get returns the value bound to k as of the transaction's snapshot.
func (m *Map[V]) Get(tx *Tx, k uint64) (V, bool) {
	if p, ok := tx.pending[pendKey{m, k}]; ok {
		if !p.present {
			var zero V
			return zero, false
		}
		return p.val.(V), true
	}
	st := m.stripe(k)
	for {
		v1 := st.version.Load()
		if v1%2 != 0 {
			runtime.Gosched()
			continue
		}
		val, ok := st.sl.get(k)
		if st.version.Load() != v1 {
			continue
		}
		if !tx.recordRead(&st.stripeHdr, v1) {
			var zero V
			return zero, false
		}
		return val, ok
	}
}

// Put binds k to v at commit, returning the snapshot's previous binding.
func (m *Map[V]) Put(tx *Tx, k uint64, v V) (V, bool) {
	old, had := m.Get(tx, k)
	st := m.stripe(k)
	tx.writes = append(tx.writes, writeRec{hdr: &st.stripeHdr, apply: func() { st.sl.put(k, v) }})
	tx.pending[pendKey{m, k}] = pendVal{present: true, val: v}
	return old, had
}

// Insert adds k→v at commit if absent in the snapshot; reports whether it
// will insert.
func (m *Map[V]) Insert(tx *Tx, k uint64, v V) bool {
	if _, had := m.Get(tx, k); had {
		return false
	}
	st := m.stripe(k)
	tx.writes = append(tx.writes, writeRec{hdr: &st.stripeHdr, apply: func() { st.sl.put(k, v) }})
	tx.pending[pendKey{m, k}] = pendVal{present: true, val: v}
	return true
}

// Remove deletes k at commit, returning the snapshot's binding.
func (m *Map[V]) Remove(tx *Tx, k uint64) (V, bool) {
	old, had := m.Get(tx, k)
	if !had {
		var zero V
		return zero, false
	}
	st := m.stripe(k)
	tx.writes = append(tx.writes, writeRec{hdr: &st.stripeHdr, apply: func() { st.sl.remove(k) }})
	tx.pending[pendKey{m, k}] = pendVal{present: false}
	return old, true
}

// Len counts keys (diagnostic; quiesced use only).
func (m *Map[V]) Len() int {
	n := 0
	for i := range m.stripes {
		n += m.stripes[i].sl.len()
	}
	return n
}

func mix64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// seqSkip is a sequential skiplist whose fields are atomics so optimistic
// readers racing with a locked writer never tear; consistency is enforced
// by the stripe seqlock.
const seqMaxLevel = 12

type seqSkip[V any] struct {
	head *seqNode[V]
}

type seqNode[V any] struct {
	key   uint64
	val   atomic.Pointer[V]
	next  []atomic.Pointer[seqNode[V]]
	level int
}

func (s *seqSkip[V]) init() {
	s.head = &seqNode[V]{next: make([]atomic.Pointer[seqNode[V]], seqMaxLevel), level: seqMaxLevel - 1}
}

func (s *seqSkip[V]) findPreds(k uint64, preds *[seqMaxLevel]*seqNode[V]) *seqNode[V] {
	x := s.head
	for lvl := seqMaxLevel - 1; lvl >= 0; lvl-- {
		for {
			nxt := x.next[lvl].Load()
			if nxt == nil || nxt.key >= k {
				break
			}
			x = nxt
		}
		preds[lvl] = x
	}
	if c := x.next[0].Load(); c != nil && c.key == k {
		return c
	}
	return nil
}

func (s *seqSkip[V]) get(k uint64) (V, bool) {
	var preds [seqMaxLevel]*seqNode[V]
	if c := s.findPreds(k, &preds); c != nil {
		if vp := c.val.Load(); vp != nil {
			return *vp, true
		}
	}
	var zero V
	return zero, false
}

func (s *seqSkip[V]) put(k uint64, v V) {
	var preds [seqMaxLevel]*seqNode[V]
	if c := s.findPreds(k, &preds); c != nil {
		c.val.Store(&v)
		return
	}
	lvl := bits.TrailingZeros64(rand.Uint64() | (1 << (seqMaxLevel - 1)))
	nn := &seqNode[V]{key: k, next: make([]atomic.Pointer[seqNode[V]], lvl+1), level: lvl}
	nn.val.Store(&v)
	for i := 0; i <= lvl; i++ {
		nn.next[i].Store(preds[i].next[i].Load())
		preds[i].next[i].Store(nn)
	}
}

func (s *seqSkip[V]) remove(k uint64) {
	var preds [seqMaxLevel]*seqNode[V]
	c := s.findPreds(k, &preds)
	if c == nil {
		return
	}
	for i := 0; i <= c.level; i++ {
		if preds[i].next[i].Load() == c {
			preds[i].next[i].Store(c.next[i].Load())
		}
	}
}

func (s *seqSkip[V]) len() int {
	n := 0
	for c := s.head.next[0].Load(); c != nil; c = c.next[0].Load() {
		n++
	}
	return n
}
