package tdsl

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

func TestBasicOps(t *testing.T) {
	tm := NewTM()
	m := NewMap[uint64](16)
	err := tm.Run(func(tx *Tx) error {
		if !m.Insert(tx, 1, 10) {
			t.Error("insert failed")
		}
		if m.Insert(tx, 1, 11) {
			t.Error("dup insert (own write) succeeded")
		}
		if v, ok := m.Get(tx, 1); !ok || v != 10 {
			t.Errorf("Get own write = %d,%v", v, ok)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = tm.Run(func(tx *Tx) error {
		if v, ok := m.Get(tx, 1); !ok || v != 10 {
			t.Errorf("Get = %d,%v", v, ok)
		}
		old, had := m.Put(tx, 1, 12)
		if !had || old != 10 {
			t.Errorf("Put = %d,%v", old, had)
		}
		if v, _ := m.Get(tx, 1); v != 12 {
			t.Errorf("Get after own put = %d", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = tm.Run(func(tx *Tx) error {
		if v, ok := m.Remove(tx, 1); !ok || v != 12 {
			t.Errorf("Remove = %d,%v", v, ok)
		}
		if _, ok := m.Get(tx, 1); ok {
			t.Error("visible after own remove")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestUserErrorNoRetryNoApply(t *testing.T) {
	tm := NewTM()
	m := NewMap[uint64](16)
	boom := errors.New("boom")
	attempts := 0
	err := tm.Run(func(tx *Tx) error {
		attempts++
		m.Put(tx, 1, 1)
		return boom
	})
	if !errors.Is(err, boom) || attempts != 1 {
		t.Fatalf("err=%v attempts=%d", err, attempts)
	}
	if m.Len() != 0 {
		t.Fatal("aborted write applied")
	}
}

func TestConflictingTxsSerialize(t *testing.T) {
	tm := NewTM()
	m := NewMap[int](4)
	tm.Run(func(tx *Tx) error { m.Put(tx, 1, 0); return nil })
	const workers = 8
	const per = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tm.Run(func(tx *Tx) error {
					v, _ := m.Get(tx, 1)
					m.Put(tx, 1, v+1)
					return nil
				})
			}
		}()
	}
	wg.Wait()
	tm.Run(func(tx *Tx) error {
		v, _ := m.Get(tx, 1)
		if v != workers*per {
			t.Errorf("counter = %d, want %d", v, workers*per)
		}
		return nil
	})
}

func TestCrossMapAtomicity(t *testing.T) {
	tm := NewTM()
	m1 := NewMap[int](8)
	m2 := NewMap[int](8)
	tm.Run(func(tx *Tx) error {
		for a := uint64(0); a < 8; a++ {
			m1.Put(tx, a, 1000)
			m2.Put(tx, a, 1000)
		}
		return nil
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 400; i++ {
				a1 := uint64(rng.Intn(8))
				a2 := uint64(rng.Intn(8))
				src, dst := m1, m2
				if rng.Intn(2) == 0 {
					src, dst = m2, m1
				}
				tm.Run(func(tx *Tx) error {
					v1, ok := src.Get(tx, a1)
					if !ok || v1 < 1 {
						return nil
					}
					v2, _ := dst.Get(tx, a2)
					src.Put(tx, a1, v1-1)
					dst.Put(tx, a2, v2+1)
					return nil
				})
			}
		}(w)
	}
	wg.Wait()
	total := 0
	tm.Run(func(tx *Tx) error {
		total = 0
		for a := uint64(0); a < 8; a++ {
			v1, _ := m1.Get(tx, a)
			v2, _ := m2.Get(tx, a)
			total += v1 + v2
		}
		return nil
	})
	if total != 16000 {
		t.Fatalf("total = %d", total)
	}
}

func TestReadValidationCatchesInterference(t *testing.T) {
	tm := NewTM()
	m := NewMap[int](1) // single stripe: all keys conflict
	tm.Run(func(tx *Tx) error { m.Put(tx, 1, 1); m.Put(tx, 2, 2); return nil })

	tx := tm.Begin()
	if v, _ := m.Get(tx, 1); v != 1 {
		t.Fatal("bad read")
	}
	// Interfering commit bumps the stripe version.
	tm.Run(func(tx2 *Tx) error { m.Put(tx2, 2, 99); return nil })
	tx.writes = append(tx.writes, writeRec{hdr: &m.stripes[0].stripeHdr, apply: func() {}})
	if err := tx.Commit(); !errors.Is(err, ErrAborted) {
		t.Fatalf("Commit = %v, want abort", err)
	}
}
