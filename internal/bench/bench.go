// Package bench is the harness that regenerates the Medley paper's
// evaluation (Section 6): the transactional microbenchmark of Figures 7–8,
// the latency study of Figure 10, and the supporting machinery for the
// TPC-C study of Figure 9 (see package tpcc).
//
// Methodology follows Section 6.1: structures are preloaded with
// Preload key-value pairs drawn from a KeySpace of uniformly random 8-byte
// keys; each thread then composes and executes transactions of 1–10
// operations, choosing get / insert / remove in a configured ratio (0:1:1,
// 2:1:1, or 18:1:1 in the paper).
package bench

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"medley/internal/txengine"
)

// OpKind selects a map operation.
type OpKind uint8

const (
	Get OpKind = iota
	Insert
	Remove
)

// Op is one operation of a generated transaction.
type Op struct {
	Kind OpKind
	Key  uint64
	Val  uint64
}

// Workload describes the microbenchmark configuration.
type Workload struct {
	KeySpace uint64 // keys drawn uniformly from [0, KeySpace)
	Preload  int    // pairs inserted before measurement
	GetW     int    // get weight   (paper: 0, 2, or 18)
	InsW     int    // insert weight (paper: 1)
	RemW     int    // remove weight (paper: 1)
	MinOps   int    // min ops per transaction (paper: 1)
	MaxOps   int    // max ops per transaction (paper: 10)
}

// PaperWorkload returns the paper's configuration for a get:insert:remove
// ratio, at a scale factor (1.0 = the paper's 1M keyspace / 0.5M preload).
func PaperWorkload(getW, insW, remW int, scale float64) Workload {
	ks := uint64(float64(1_000_000) * scale)
	if ks < 16 {
		ks = 16
	}
	return Workload{
		KeySpace: ks,
		Preload:  int(ks / 2),
		GetW:     getW, InsW: insW, RemW: remW,
		MinOps: 1, MaxOps: 10,
	}
}

// Ratio returns "g:i:r" for reports.
func (w Workload) Ratio() string { return fmt.Sprintf("%d:%d:%d", w.GetW, w.InsW, w.RemW) }

// GenTx fills buf with a random transaction and returns it.
func (w Workload) GenTx(rng *rand.Rand, buf []Op) []Op {
	n := w.MinOps
	if w.MaxOps > w.MinOps {
		n += rng.IntN(w.MaxOps - w.MinOps + 1)
	}
	buf = buf[:0]
	total := w.GetW + w.InsW + w.RemW
	for i := 0; i < n; i++ {
		k := rng.Uint64N(w.KeySpace)
		r := rng.IntN(total)
		var kind OpKind
		switch {
		case r < w.GetW:
			kind = Get
		case r < w.GetW+w.InsW:
			kind = Insert
		default:
			kind = Remove
		}
		buf = append(buf, Op{Kind: kind, Key: k, Val: k + 1})
	}
	return buf
}

// System is one benchmarked implementation.
type System interface {
	Name() string
	// Preload inserts the initial pairs (single-threaded, unmeasured).
	Preload(wl Workload)
	// NewWorker returns a per-thread handle.
	NewWorker(tid int) Worker
	// Stats snapshots the underlying engine's cumulative transaction
	// outcomes (commits/aborts/retries/fallbacks).
	Stats() txengine.Stats
	// Close releases background resources (epoch advancers etc.).
	Close()
}

// Worker executes transactions for one thread.
type Worker interface {
	// RunTx executes ops as one transaction, retrying internally until it
	// commits.
	RunTx(ops []Op)
	// RunOpsNoTx executes ops back to back without a surrounding
	// transaction (the TxOff and Original modes of Figure 10). Workers of
	// systems without a standalone mode may panic.
	RunOpsNoTx(ops []Op)
}

// Result is one measured throughput point.
type Result struct {
	System     string
	Ratio      string
	Threads    int
	Txns       uint64
	Duration   time.Duration
	Throughput float64        // transactions per second
	Stats      txengine.Stats // engine stats delta over the measured run
}

// RunThroughput drives threads workers for dur and reports aggregate
// transaction throughput plus the engine's stats delta (preload excluded).
func RunThroughput(sys System, wl Workload, threads int, dur time.Duration) Result {
	sys.Preload(wl)
	base := sys.Stats()
	var stop atomic.Bool
	var total atomic.Uint64
	var wg sync.WaitGroup
	var ready, start sync.WaitGroup
	ready.Add(threads)
	start.Add(1)
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			w := sys.NewWorker(tid)
			rng := rand.New(rand.NewPCG(uint64(tid)+1, 0x9e3779b97f4a7c15))
			buf := make([]Op, 0, wl.MaxOps)
			ready.Done()
			start.Wait()
			n := uint64(0)
			for !stop.Load() {
				ops := wl.GenTx(rng, buf)
				w.RunTx(ops)
				n++
			}
			total.Add(n)
		}(t)
	}
	ready.Wait()
	t0 := time.Now()
	start.Done()
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	el := time.Since(t0)
	txns := total.Load()
	return Result{
		System: sys.Name(), Ratio: wl.Ratio(), Threads: threads,
		Txns: txns, Duration: el,
		Throughput: float64(txns) / el.Seconds(),
		Stats:      sys.Stats().Delta(base),
	}
}

// LatencyMode selects the Figure 10 variant.
type LatencyMode int

const (
	// ModeOriginal runs the untransformed structure, ops back to back.
	ModeOriginal LatencyMode = iota
	// ModeTxOff runs the NBTC-transformed structure without transactions.
	ModeTxOff
	// ModeTxOn wraps each generated group in a transaction.
	ModeTxOn
)

func (m LatencyMode) String() string {
	switch m {
	case ModeOriginal:
		return "Original"
	case ModeTxOff:
		return "TxOff"
	case ModeTxOn:
		return "TxOn"
	}
	return "?"
}

// LatencyResult is one measured latency point.
type LatencyResult struct {
	System  string
	Mode    LatencyMode
	Ratio   string
	Threads int
	NsPerTx float64
	Stats   txengine.Stats // engine stats delta over the measured run
}

// RunLatency measures average wall-clock ns per transaction (or per op
// group, for the non-transactional modes) at the given thread count,
// mirroring Figure 10's methodology.
func RunLatency(sys System, wl Workload, mode LatencyMode, threads int, dur time.Duration) LatencyResult {
	sys.Preload(wl)
	base := sys.Stats()
	var stop atomic.Bool
	var totalTx atomic.Uint64
	var wg sync.WaitGroup
	t0 := time.Now()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			w := sys.NewWorker(tid)
			rng := rand.New(rand.NewPCG(uint64(tid)+1, 77))
			buf := make([]Op, 0, wl.MaxOps)
			n := uint64(0)
			for !stop.Load() {
				ops := wl.GenTx(rng, buf)
				if mode == ModeTxOn {
					w.RunTx(ops)
				} else {
					w.RunOpsNoTx(ops)
				}
				n++
			}
			totalTx.Add(n)
		}(t)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	el := time.Since(t0)
	tx := totalTx.Load()
	ns := float64(el.Nanoseconds()) * float64(threads) / float64(tx)
	return LatencyResult{
		System: sys.Name(), Mode: mode, Ratio: wl.Ratio(), Threads: threads,
		NsPerTx: ns,
		Stats:   sys.Stats().Delta(base),
	}
}

// DefaultThreadSweep returns the thread counts used for throughput figures,
// scaled to the host (the paper sweeps 1..80 on an 80-hyperthread box).
func DefaultThreadSweep() []int {
	max := runtime.GOMAXPROCS(0)
	sweep := []int{1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 80}
	var out []int
	for _, t := range sweep {
		if t <= max {
			out = append(out, t)
		}
	}
	if len(out) == 0 || out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}
