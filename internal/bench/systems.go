package bench

import (
	"fmt"
	"time"

	"medley/internal/pnvm"
	"medley/internal/txengine"
)

// Options configures engine construction for benchmarked systems. The zero
// value is a transient engine with free NVM timing.
type Options struct {
	// Latencies drives the simulated NVM device of persistent engines.
	Latencies pnvm.Latencies
	// EpochLen is txMontage's persistence epoch length (0: advancer off).
	EpochLen time.Duration
	// Shards is the partition count for sharded engines (0: engine
	// default); non-sharded engines ignore it.
	Shards int
	// NoLatch disables key-granular cross-shard latching on sharded
	// engines (the -nolatch A/B knob); non-sharded engines ignore it.
	NoLatch bool
}

// NewSystem builds the named engine from the txengine registry and wraps it
// as a benchmark System over one transactional uint64 map of the given
// kind, sized for wl (hash buckets track the keyspace, as in the paper's
// 1M-bucket table; TDSL stripes scale with keyspace to keep partitions
// skiplist-shaped).
func NewSystem(engine string, kind txengine.MapKind, wl Workload, opt Options) (System, error) {
	b, ok := txengine.Lookup(engine)
	if !ok {
		return nil, fmt.Errorf("bench: unknown engine %q", engine)
	}
	switch kind {
	case txengine.KindHash:
		if !b.Caps.Has(txengine.CapHashMap) {
			return nil, fmt.Errorf("bench: engine %q has no hash map: %w", engine, txengine.ErrUnsupported)
		}
	case txengine.KindSkip:
		if !b.Caps.Has(txengine.CapSkipMap) {
			return nil, fmt.Errorf("bench: engine %q has no skiplist: %w", engine, txengine.ErrUnsupported)
		}
	}
	eng, err := b.New(txengine.Config{Latencies: opt.Latencies, EpochLen: opt.EpochLen, Shards: opt.Shards, NoLatch: opt.NoLatch})
	if err != nil {
		return nil, err
	}
	stripes := int(wl.KeySpace / 64)
	if stripes < 8 {
		stripes = 8
	}
	m, err := eng.NewUintMap(txengine.MapSpec{Kind: kind, Buckets: int(wl.KeySpace), Stripes: stripes})
	if err != nil {
		eng.Close()
		return nil, err
	}
	return &engineSystem{
		name: eng.Name() + "-" + kind.String(),
		eng:  eng,
		m:    m,
	}, nil
}

// TxSystemsFor returns the registry keys of every engine that can run
// transactions over a map of the given kind — the default series of the
// throughput figures.
func TxSystemsFor(kind txengine.MapKind) []string {
	var out []string
	need := txengine.CapTx | txengine.CapHashMap
	if kind == txengine.KindSkip {
		need = txengine.CapTx | txengine.CapSkipMap
	}
	for _, b := range txengine.Builders() {
		if b.Caps.Has(need) {
			out = append(out, b.Key)
		}
	}
	return out
}

// engineSystem is the one benchmark adapter: any registered engine, driven
// through its Tx handles over a single transactional map.
type engineSystem struct {
	name string
	eng  txengine.Engine
	m    txengine.Map[uint64]
}

func (b *engineSystem) Name() string          { return b.name }
func (b *engineSystem) Stats() txengine.Stats { return b.eng.Stats() }
func (b *engineSystem) Close()                { b.eng.Close() }

func (b *engineSystem) Preload(wl Workload) {
	w := b.eng.NewWorker(-1)
	step := wl.KeySpace / uint64(wl.Preload)
	if !b.eng.Caps().Has(txengine.CapTx) {
		w.NoTx(func() {
			for i := 0; i < wl.Preload; i++ {
				k := uint64(i) * step
				b.m.Put(w, k, k+1)
			}
		})
		return
	}
	// Batch into modest transactions to keep descriptors and static op
	// lists small.
	const chunk = 256
	for i := 0; i < wl.Preload; i += chunk {
		end := min(i+chunk, wl.Preload)
		if err := w.Run(func() error {
			for j := i; j < end; j++ {
				k := uint64(j) * step
				b.m.Put(w, k, k+1)
			}
			return nil
		}); err != nil {
			panic("bench preload: " + err.Error())
		}
	}
}

func (b *engineSystem) NewWorker(tid int) Worker {
	return &engineWorker{m: b.m, tx: b.eng.NewWorker(tid)}
}

type engineWorker struct {
	m  txengine.Map[uint64]
	tx txengine.Tx
}

func (w *engineWorker) apply(ops []Op) {
	for _, op := range ops {
		switch op.Kind {
		case Get:
			w.m.Get(w.tx, op.Key)
		case Insert:
			w.m.Insert(w.tx, op.Key, op.Val)
		case Remove:
			w.m.Remove(w.tx, op.Key)
		}
	}
}

func (w *engineWorker) RunTx(ops []Op) {
	readOnly := true
	for _, op := range ops {
		if op.Kind != Get {
			readOnly = false
			break
		}
	}
	if readOnly {
		w.tx.RunRead(func() { w.apply(ops) })
		return
	}
	_ = w.tx.Run(func() error { w.apply(ops); return nil })
}

func (w *engineWorker) RunOpsNoTx(ops []Op) {
	w.tx.NoTx(func() { w.apply(ops) })
}
