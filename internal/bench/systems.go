package bench

import (
	"time"

	"medley/internal/core"
	"medley/internal/lftt"
	"medley/internal/montage"
	"medley/internal/onefile"
	"medley/internal/pnvm"
	"medley/internal/structures/fskiplist"
	"medley/internal/structures/mhash"
	"medley/internal/tdsl"
	"medley/internal/txmap"
)

// PnvmFreeLatencies returns a zero-cost device timing for tests.
func PnvmFreeLatencies() pnvm.Latencies { return pnvm.Latencies{} }

// ---------------------------------------------------------------- Medley --

// medleySystem benchmarks a Medley (or txMontage) transactional map.
type medleySystem struct {
	name  string
	mgr   *core.TxManager
	m     txmap.Map[uint64]
	es    *montage.EpochSys // non-nil for txMontage
	close func()
}

// NewMedleyHash returns the Medley hash-table system of Figure 7 (buckets
// sized to the keyspace, as in the paper's 1M-bucket table).
func NewMedleyHash(wl Workload) System {
	mgr := core.NewTxManager()
	return &medleySystem{name: "Medley-hash", mgr: mgr, m: mhash.NewUint64[uint64](int(wl.KeySpace))}
}

// NewMedleySkip returns the Medley skiplist system of Figure 8.
func NewMedleySkip(Workload) System {
	mgr := core.NewTxManager()
	return &medleySystem{name: "Medley-skip", mgr: mgr, m: fskiplist.New[uint64, uint64]()}
}

// NewTxMontageHash returns the txMontage hash system of Figure 7 (Medley +
// epoch-based periodic persistence over the simulated NVM device).
func NewTxMontageHash(wl Workload, lat pnvm.Latencies, epochLen time.Duration) System {
	mgr := core.NewTxManager()
	es := montage.NewEpochSys(pnvm.New(lat))
	montage.Attach(mgr, es)
	m := montage.NewHashMap(es, montage.Uint64Codec(), int(wl.KeySpace))
	es.Start(epochLen)
	return &medleySystem{name: "txMontage-hash", mgr: mgr, m: m, es: es, close: es.Stop}
}

// NewTxMontageSkip returns the txMontage skiplist system of Figure 8.
func NewTxMontageSkip(_ Workload, lat pnvm.Latencies, epochLen time.Duration) System {
	mgr := core.NewTxManager()
	es := montage.NewEpochSys(pnvm.New(lat))
	montage.Attach(mgr, es)
	m := montage.NewSkipMap(es, montage.Uint64Codec())
	es.Start(epochLen)
	return &medleySystem{name: "txMontage-skip", mgr: mgr, m: m, es: es, close: es.Stop}
}

func (b *medleySystem) Name() string { return b.name }
func (b *medleySystem) Close() {
	if b.close != nil {
		b.close()
	}
}

func (b *medleySystem) Preload(wl Workload) {
	s := b.mgr.Session()
	for i := 0; i < wl.Preload; i++ {
		k := uint64(i) * (wl.KeySpace / uint64(wl.Preload))
		b.m.Put(s, k, k+1)
	}
}

func (b *medleySystem) NewWorker(int) Worker {
	return &medleyWorker{s: b.mgr.Session(), m: b.m}
}

type medleyWorker struct {
	s *core.Session
	m txmap.Map[uint64]
}

func (w *medleyWorker) RunTx(ops []Op) {
	_ = w.s.Run(func() error {
		for _, op := range ops {
			switch op.Kind {
			case Get:
				w.m.Get(w.s, op.Key)
			case Insert:
				w.m.Insert(w.s, op.Key, op.Val)
			case Remove:
				w.m.Remove(w.s, op.Key)
			}
		}
		return nil
	})
}

func (w *medleyWorker) RunOpsNoTx(ops []Op) {
	for _, op := range ops {
		switch op.Kind {
		case Get:
			w.m.Get(w.s, op.Key)
		case Insert:
			w.m.Insert(w.s, op.Key, op.Val)
		case Remove:
			w.m.Remove(w.s, op.Key)
		}
	}
}

// ------------------------------------------------------- Original Fraser --

// originalSkip benchmarks the untransformed skiplist (Figure 10 baseline).
type originalSkip struct {
	sl *fskiplist.Original[uint64, uint64]
}

// NewOriginalSkip returns the untransformed Fraser skiplist.
func NewOriginalSkip(Workload) System {
	return &originalSkip{sl: fskiplist.NewOriginal[uint64, uint64]()}
}

func (b *originalSkip) Name() string { return "Original-skip" }
func (b *originalSkip) Close()       {}
func (b *originalSkip) Preload(wl Workload) {
	for i := 0; i < wl.Preload; i++ {
		k := uint64(i) * (wl.KeySpace / uint64(wl.Preload))
		b.sl.Put(k, k+1)
	}
}
func (b *originalSkip) NewWorker(int) Worker { return &originalWorker{sl: b.sl} }

type originalWorker struct {
	sl *fskiplist.Original[uint64, uint64]
}

func (w *originalWorker) RunTx([]Op) { panic("Original supports no transactions") }
func (w *originalWorker) RunOpsNoTx(ops []Op) {
	for _, op := range ops {
		switch op.Kind {
		case Get:
			w.sl.Get(op.Key)
		case Insert:
			w.sl.Insert(op.Key, op.Val)
		case Remove:
			w.sl.Remove(op.Key)
		}
	}
}

// --------------------------------------------------------------- OneFile --

type onefileSystem struct {
	name string
	st   *onefile.STM
	sl   *onefile.SkipList[uint64]
	h    *onefile.Hash[uint64]
}

// NewOneFileHash returns the transient OneFile hash system of Figure 7.
func NewOneFileHash(wl Workload) System {
	st := onefile.New()
	return &onefileSystem{name: "OneFile-hash", st: st, h: onefile.NewHash[uint64](st, int(wl.KeySpace))}
}

// NewOneFileSkip returns the transient OneFile skiplist system of Figure 8.
func NewOneFileSkip(Workload) System {
	st := onefile.New()
	return &onefileSystem{name: "OneFile-skip", st: st, sl: onefile.NewSkipList[uint64](st)}
}

// NewPOneFileHash returns the persistent OneFile hash system (eager
// per-write persistence on the simulated device).
func NewPOneFileHash(wl Workload, lat pnvm.Latencies) System {
	st := onefile.NewPersistent(pnvm.New(lat))
	return &onefileSystem{name: "POneFile-hash", st: st, h: onefile.NewHash[uint64](st, int(wl.KeySpace))}
}

// NewPOneFileSkip returns the persistent OneFile skiplist system.
func NewPOneFileSkip(_ Workload, lat pnvm.Latencies) System {
	st := onefile.NewPersistent(pnvm.New(lat))
	return &onefileSystem{name: "POneFile-skip", st: st, sl: onefile.NewSkipList[uint64](st)}
}

func (b *onefileSystem) Name() string { return b.name }
func (b *onefileSystem) Close()       {}

func (b *onefileSystem) get(k uint64) {
	if b.sl != nil {
		b.sl.Get(k)
	} else {
		b.h.Get(k)
	}
}
func (b *onefileSystem) insert(k, v uint64) {
	if b.sl != nil {
		b.sl.Insert(k, v)
	} else {
		b.h.Insert(k, v)
	}
}
func (b *onefileSystem) remove(k uint64) {
	if b.sl != nil {
		b.sl.Remove(k)
	} else {
		b.h.Remove(k)
	}
}

func (b *onefileSystem) Preload(wl Workload) {
	b.st.WriteTx(func() error {
		for i := 0; i < wl.Preload; i++ {
			k := uint64(i) * (wl.KeySpace / uint64(wl.Preload))
			b.insert(k, k+1)
		}
		return nil
	})
}

func (b *onefileSystem) NewWorker(int) Worker { return &onefileWorker{b: b} }

type onefileWorker struct{ b *onefileSystem }

func (w *onefileWorker) RunTx(ops []Op) {
	readOnly := true
	for _, op := range ops {
		if op.Kind != Get {
			readOnly = false
			break
		}
	}
	if readOnly {
		w.b.st.ReadTx(func() {
			for _, op := range ops {
				w.b.get(op.Key)
			}
		})
		return
	}
	w.b.st.WriteTx(func() error {
		for _, op := range ops {
			switch op.Kind {
			case Get:
				w.b.get(op.Key)
			case Insert:
				w.b.insert(op.Key, op.Val)
			case Remove:
				w.b.remove(op.Key)
			}
		}
		return nil
	})
}

func (w *onefileWorker) RunOpsNoTx(ops []Op) { w.RunTx(ops) }

// ------------------------------------------------------------------ TDSL --

type tdslSystem struct {
	tm *tdsl.TM
	m  *tdsl.Map[uint64]
}

// NewTDSLSkip returns the TDSL skiplist system of Figure 8 (stripes scale
// with keyspace to keep partitions skiplist-shaped).
func NewTDSLSkip(wl Workload) System {
	tm := tdsl.NewTM()
	stripes := int(wl.KeySpace / 64)
	if stripes < 8 {
		stripes = 8
	}
	return &tdslSystem{tm: tm, m: tdsl.NewMap[uint64](stripes)}
}

func (b *tdslSystem) Name() string { return "TDSL-skip" }
func (b *tdslSystem) Close()       {}

func (b *tdslSystem) Preload(wl Workload) {
	b.tm.Run(func(tx *tdsl.Tx) error {
		for i := 0; i < wl.Preload; i++ {
			k := uint64(i) * (wl.KeySpace / uint64(wl.Preload))
			b.m.Put(tx, k, k+1)
		}
		return nil
	})
}

func (b *tdslSystem) NewWorker(int) Worker { return &tdslWorker{b: b} }

type tdslWorker struct{ b *tdslSystem }

func (w *tdslWorker) RunTx(ops []Op) {
	w.b.tm.Run(func(tx *tdsl.Tx) error {
		for _, op := range ops {
			switch op.Kind {
			case Get:
				w.b.m.Get(tx, op.Key)
			case Insert:
				w.b.m.Insert(tx, op.Key, op.Val)
			case Remove:
				w.b.m.Remove(tx, op.Key)
			}
		}
		return nil
	})
}

func (w *tdslWorker) RunOpsNoTx(ops []Op) { w.RunTx(ops) }

// ------------------------------------------------------------------ LFTT --

type lfttSystem struct {
	sl *lftt.SkipList
}

// NewLFTTSkip returns the LFTT skiplist system of Figure 8.
func NewLFTTSkip(Workload) System { return &lfttSystem{sl: lftt.New()} }

func (b *lfttSystem) Name() string { return "LFTT-skip" }
func (b *lfttSystem) Close()       {}

func (b *lfttSystem) Preload(wl Workload) {
	for i := 0; i < wl.Preload; i++ {
		k := uint64(i) * (wl.KeySpace / uint64(wl.Preload))
		b.sl.Insert(k, k+1)
	}
}

func (b *lfttSystem) NewWorker(int) Worker { return &lfttWorker{b: b} }

type lfttWorker struct {
	b   *lfttSystem
	buf []lftt.Op
}

func (w *lfttWorker) RunTx(ops []Op) {
	w.buf = w.buf[:0]
	for _, op := range ops {
		var k lftt.OpKind
		switch op.Kind {
		case Get:
			k = lftt.OpGet
		case Insert:
			k = lftt.OpInsert
		case Remove:
			k = lftt.OpRemove
		}
		w.buf = append(w.buf, lftt.Op{Kind: k, Key: op.Key, Val: op.Val})
	}
	for {
		if _, ok := w.b.sl.ExecuteTx(w.buf); ok {
			return
		}
	}
}

func (w *lfttWorker) RunOpsNoTx(ops []Op) { w.RunTx(ops) }
