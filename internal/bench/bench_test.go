package bench

import (
	"math/rand/v2"
	"slices"
	"testing"
	"time"

	"medley/internal/txengine"
)

func TestGenTxRespectsRatioAndSize(t *testing.T) {
	wl := PaperWorkload(18, 1, 1, 0.01)
	rng := rand.New(rand.NewPCG(1, 2))
	buf := make([]Op, 0, wl.MaxOps)
	counts := map[OpKind]int{}
	total := 0
	for i := 0; i < 5000; i++ {
		ops := wl.GenTx(rng, buf)
		if len(ops) < wl.MinOps || len(ops) > wl.MaxOps {
			t.Fatalf("tx size %d outside [%d,%d]", len(ops), wl.MinOps, wl.MaxOps)
		}
		for _, op := range ops {
			counts[op.Kind]++
			total++
			if op.Key >= wl.KeySpace {
				t.Fatalf("key %d outside keyspace %d", op.Key, wl.KeySpace)
			}
		}
	}
	getFrac := float64(counts[Get]) / float64(total)
	if getFrac < 0.85 || getFrac > 0.95 {
		t.Fatalf("get fraction %.3f, want ~0.9 for 18:1:1", getFrac)
	}
	insFrac := float64(counts[Insert]) / float64(total)
	remFrac := float64(counts[Remove]) / float64(total)
	if insFrac < 0.03 || insFrac > 0.07 || remFrac < 0.03 || remFrac > 0.07 {
		t.Fatalf("insert/remove fractions %.3f/%.3f, want ~0.05", insFrac, remFrac)
	}
}

func TestPaperWorkloadScaling(t *testing.T) {
	wl := PaperWorkload(0, 1, 1, 1.0)
	if wl.KeySpace != 1_000_000 || wl.Preload != 500_000 {
		t.Fatalf("full-scale workload = %+v", wl)
	}
	small := PaperWorkload(0, 1, 1, 0.00000001)
	if small.KeySpace < 16 {
		t.Fatalf("tiny scale not clamped: %d", small.KeySpace)
	}
	if got := wl.Ratio(); got != "0:1:1" {
		t.Fatalf("Ratio = %q", got)
	}
}

func TestDefaultThreadSweepMonotoneAndBounded(t *testing.T) {
	sweep := DefaultThreadSweep()
	if len(sweep) == 0 {
		t.Fatal("empty sweep")
	}
	for i := 1; i < len(sweep); i++ {
		if sweep[i] <= sweep[i-1] {
			t.Fatalf("sweep not increasing: %v", sweep)
		}
	}
}

// Smoke test every registered transactional engine, in both map shapes it
// supports, through one short throughput run: the harness must produce
// nonzero results and structures must survive.
func TestAllSystemsSmoke(t *testing.T) {
	wl := PaperWorkload(2, 1, 1, 0.001)
	opt := Options{EpochLen: 5 * time.Millisecond}
	for _, kind := range []txengine.MapKind{txengine.KindHash, txengine.KindSkip} {
		names := TxSystemsFor(kind)
		if len(names) == 0 {
			t.Fatalf("no engines for %v maps", kind)
		}
		for _, name := range names {
			sys, err := NewSystem(name, kind, wl, opt)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, kind, err)
			}
			res := RunThroughput(sys, wl, 4, 50*time.Millisecond)
			sys.Close()
			if res.Txns == 0 {
				t.Errorf("%s: no transactions completed", res.System)
			}
		}
	}
}

// The default figure series must include every system of the paper's
// Figures 7–8 plus the newly wired Boost.
func TestFigureSeriesCoverage(t *testing.T) {
	hash := TxSystemsFor(txengine.KindHash)
	for _, want := range []string{"medley", "txmontage", "onefile", "ponefile", "boost"} {
		if !slices.Contains(hash, want) {
			t.Errorf("hash series missing %q: %v", want, hash)
		}
	}
	skip := TxSystemsFor(txengine.KindSkip)
	for _, want := range []string{"medley", "txmontage", "onefile", "ponefile", "tdsl", "lftt"} {
		if !slices.Contains(skip, want) {
			t.Errorf("skip series missing %q: %v", want, skip)
		}
	}
}

func TestLatencyModes(t *testing.T) {
	wl := PaperWorkload(2, 1, 1, 0.001)
	for _, mode := range []LatencyMode{ModeOriginal, ModeTxOff, ModeTxOn} {
		name := "medley"
		if mode == ModeOriginal {
			name = "original"
		}
		sys, err := NewSystem(name, txengine.KindSkip, wl, Options{})
		if err != nil {
			t.Fatal(err)
		}
		res := RunLatency(sys, wl, mode, 2, 50*time.Millisecond)
		sys.Close()
		if res.NsPerTx <= 0 {
			t.Errorf("mode %v: nonpositive latency", mode)
		}
	}
}

// Throughput results must surface the engine's uniform stats: the measured
// interval's commits account for the measured transactions (preload
// excluded via the delta).
func TestThroughputSurfacesStats(t *testing.T) {
	wl := PaperWorkload(2, 1, 1, 0.001)
	sys, err := NewSystem("medley", txengine.KindHash, wl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	res := RunThroughput(sys, wl, 2, 50*time.Millisecond)
	if res.Stats.Commits == 0 {
		t.Fatalf("Result.Stats empty: %+v", res.Stats)
	}
	if res.Stats.Commits < res.Txns {
		t.Fatalf("commits %d < measured txns %d", res.Stats.Commits, res.Txns)
	}
}
