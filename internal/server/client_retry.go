package server

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"time"
)

// ErrUnknownOutcome marks a write whose fate the client cannot know: the
// connection failed after the request may already have reached the server,
// so the write may or may not have committed. Blindly retrying could apply
// it twice; the caller must reconcile (re-read, or use an idempotent
// application-level protocol) instead. Test with errors.Is.
var ErrUnknownOutcome = errors.New("server: write outcome unknown (connection failed after send)")

// RetryPolicy tunes a Client's reconnect/retry behavior. Zero fields take
// the defaults noted on each.
type RetryPolicy struct {
	MaxAttempts int           // attempts per request, including the first (0: 8)
	BaseBackoff time.Duration // backoff before the first retry (0: 1ms)
	MaxBackoff  time.Duration // backoff growth cap (0: 100ms)
	DialTimeout time.Duration // per-reconnect dial budget (0: 1s)
}

func (p RetryPolicy) maxAttempts() int { return defInt(p.MaxAttempts, 8) }
func (p RetryPolicy) base() time.Duration {
	return defDur(p.BaseBackoff, time.Millisecond)
}
func (p RetryPolicy) cap() time.Duration {
	return defDur(p.MaxBackoff, 100*time.Millisecond)
}
func (p RetryPolicy) dialTimeout() time.Duration {
	return defDur(p.DialTimeout, time.Second)
}

func defInt(v, d int) int {
	if v > 0 {
		return v
	}
	return d
}

func defDur(v, d time.Duration) time.Duration {
	if v > 0 {
		return v
	}
	return d
}

// backoff returns the capped-exponential, jittered delay before retry k
// (k=0 for the first retry): half the deterministic delay plus a uniformly
// random half, so a fleet of clients kicked off by one server event does
// not reconverge in lockstep.
func (p RetryPolicy) backoff(k int) time.Duration {
	d := p.base()
	for i := 0; i < k && d < p.cap(); i++ {
		d *= 2
	}
	if d > p.cap() {
		d = p.cap()
	}
	return d/2 + rand.N(d/2+1)
}

// ClientStats counts a Client's recovery work.
type ClientStats struct {
	Retries    uint64 // requests re-sent after StatusRetry/StatusDraining
	Reconnects uint64 // connections re-established after an I/O failure
}

// Client is a Conn wrapper that survives connection failures and server
// pushback. It reconnects with capped exponential backoff plus jitter and
// transparently retries work that is provably safe to repeat:
//
//   - Reads (Get, and Txn batches that are all TxnRead) are idempotent, so
//     they retry through both I/O failures and StatusRetry/StatusDraining
//     shedding.
//   - Writes (Put, and Txn batches containing a write) retry only on
//     explicit not-executed responses (StatusRetry/StatusDraining). If the
//     connection fails after a write was sent, the outcome is unknown — the
//     server may have committed it and lost only the acknowledgment — so
//     the Client surfaces ErrUnknownOutcome instead of guessing.
//
// Like Conn, a Client is not goroutine-safe: one driver goroutine each.
type Client struct {
	addr  string
	pol   RetryPolicy
	conn  *Conn
	stats ClientStats
}

// NewClient returns a retrying client for a txserver at addr. The first
// connection is established lazily, by the first request.
func NewClient(addr string, pol RetryPolicy) *Client {
	return &Client{addr: addr, pol: pol}
}

// Stats snapshots the retry/reconnect tallies.
func (cl *Client) Stats() ClientStats { return cl.stats }

// Close closes the current connection, if any.
func (cl *Client) Close() error {
	if cl.conn == nil {
		return nil
	}
	err := cl.conn.Close()
	cl.conn = nil
	return err
}

// ensure returns a live connection, dialing if the previous one failed.
func (cl *Client) ensure() (*Conn, error) {
	if cl.conn != nil {
		return cl.conn, nil
	}
	c, err := Dial(cl.addr, cl.pol.dialTimeout())
	if err != nil {
		return nil, err
	}
	cl.conn = c
	return c, nil
}

// drop discards a connection after an I/O failure.
func (cl *Client) drop() {
	if cl.conn != nil {
		cl.conn.Close()
		cl.conn = nil
	}
}

// Get fetches one key, retrying through connection failures and shedding.
func (cl *Client) Get(key uint64) (*Response, error) {
	return cl.do(func(c *Conn) uint64 { return c.SendGet(key) }, true)
}

// Put binds one key. Retried only on explicit not-executed responses; an
// I/O failure after send returns ErrUnknownOutcome (wrapped).
func (cl *Client) Put(key, val uint64) (*Response, error) {
	return cl.do(func(c *Conn) uint64 { return c.SendPut(key, val) }, false)
}

// Txn executes one multi-op transaction. All-TxnRead batches retry as reads;
// batches containing a write follow Put's unknown-outcome rule.
func (cl *Client) Txn(ops []TxnOp) (*Response, error) {
	idempotent := allRead(ops)
	return cl.do(func(c *Conn) uint64 { return c.SendTxn(ops) }, idempotent)
}

// do drives one request to a terminal outcome under the retry policy. send
// buffers the request on a connection and returns its id; idempotent marks
// requests safe to re-send after an I/O failure.
func (cl *Client) do(send func(*Conn) uint64, idempotent bool) (*Response, error) {
	var lastErr error
	retries := 0
	for attempt := 0; attempt < cl.pol.maxAttempts(); attempt++ {
		if attempt > 0 {
			time.Sleep(cl.pol.backoff(attempt - 1))
		}
		c, err := cl.ensure()
		if err != nil {
			lastErr = err // nothing was sent; always safe to retry
			continue
		}
		resp, err := c.roundTrip(send(c))
		if err != nil {
			cl.drop()
			cl.stats.Reconnects++
			if !idempotent {
				return nil, fmt.Errorf("%w: %v", ErrUnknownOutcome, err)
			}
			lastErr = err
			continue
		}
		switch resp.Status {
		case StatusRetry:
			// Shed by admission control before execution: safe for writes too.
			cl.stats.Retries++
			lastErr = fmt.Errorf("server: shed with StatusRetry")
			retries++
			continue
		case StatusDraining:
			// Rejected unexecuted; this server is going away — reconnect
			// (the address may resolve to a fresh instance) and retry.
			cl.drop()
			cl.stats.Retries++
			lastErr = fmt.Errorf("server: rejected while draining")
			retries++
			continue
		default:
			return resp, nil
		}
	}
	return nil, fmt.Errorf("server: request failed after %d attempts (%d shed): %w",
		cl.pol.maxAttempts(), retries, lastErr)
}
