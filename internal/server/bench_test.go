package server

import (
	"net"
	"testing"
	"time"

	"medley/internal/txengine"
)

// Wire microbenchmarks: the per-request hot path must not allocate. The
// request/response cycle of a Get is encode + frame-read + decode + encode +
// frame-read + decode; every step below reports allocs/op so a regression
// shows up as a number, not a hunch.

func BenchmarkAppendRequestGet(b *testing.B) {
	b.ReportAllocs()
	var buf []byte
	r := Request{ID: 1, Op: OpGet, Key: 42}
	for i := 0; i < b.N; i++ {
		buf = AppendRequest(buf[:0], &r)
	}
}

func BenchmarkDecodeRequestGet(b *testing.B) {
	body := AppendRequest(nil, &Request{ID: 1, Op: OpGet, Key: 42})[4:]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeRequest(body); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeRequestTxn contrasts the allocating decode (fresh op slice
// per transaction) with the reusing decode the server's read loop runs
// (pooled storage, zero steady-state allocs).
func BenchmarkDecodeRequestTxn(b *testing.B) {
	ops := []TxnOp{
		{Kind: TxnRead, Key: 1},
		AddDelta(1, -1),
		AddDelta(2, +1),
		{Kind: TxnRead, Key: 2},
	}
	body := AppendRequest(nil, &Request{ID: 1, Op: OpTxn, Ops: ops})[4:]
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := DecodeRequest(body); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reuse", func(b *testing.B) {
		b.ReportAllocs()
		var scratch []TxnOp
		for i := 0; i < b.N; i++ {
			r, err := DecodeRequestReuse(body, scratch)
			if err != nil {
				b.Fatal(err)
			}
			scratch = r.Ops[:0]
		}
	})
}

func BenchmarkAppendResponseGet(b *testing.B) {
	b.ReportAllocs()
	var buf []byte
	r := Response{ID: 1, Op: OpGet, Status: StatusOK, Found: true, Val: 42}
	for i := 0; i < b.N; i++ {
		buf = AppendResponse(buf[:0], &r)
	}
}

// benchServe measures pipelined Get round-trips through a loopback server —
// the end-to-end serving hot path, lane on vs off. allocs/op covers the
// client side of the cycle (the server's side shows up in throughput).
func benchServe(b *testing.B, opts Options, readpct int) {
	eng, err := txengine.Build("medley", txengine.Config{})
	if err != nil {
		b.Fatal(err)
	}
	opts.CloseEngine = true
	s, err := New(eng, opts)
	if err != nil {
		eng.Close()
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	defer func() {
		s.Drain()
		<-done
	}()
	c, err := Dial(ln.Addr().String(), time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	const keys = 1024
	for k := uint64(0); k < keys; k++ {
		if r, err := c.Put(k, k); err != nil || !r.OK() {
			b.Fatalf("seed: %+v, %v", r, err)
		}
	}

	const window = 32
	b.ReportAllocs()
	b.ResetTimer()
	sent, recvd := 0, 0
	for recvd < b.N {
		for sent < b.N && sent-recvd < window {
			k := uint64(sent) % keys
			if sent%100 < readpct {
				c.SendGet(k)
			} else {
				c.SendPut(k, uint64(sent))
			}
			sent++
		}
		if err := c.Flush(); err != nil {
			b.Fatal(err)
		}
		for sent-recvd > 0 {
			r, err := c.Recv()
			if err != nil {
				b.Fatal(err)
			}
			if r.Status == StatusErr {
				b.Fatal(r.Err)
			}
			recvd++
		}
	}
}

func BenchmarkServeGetsLane(b *testing.B)   { benchServe(b, Options{}, 100) }
func BenchmarkServeGetsNoLane(b *testing.B) { benchServe(b, Options{NoReadLane: true}, 100) }
func BenchmarkServeMixedLane(b *testing.B)  { benchServe(b, Options{}, 90) }
func BenchmarkServeMixedNoLane(b *testing.B) {
	benchServe(b, Options{NoReadLane: true}, 90)
}
