package server

import (
	"net"
	"testing"
	"time"

	"medley/internal/txengine"
)

// startServer builds an engine + server and serves it on a loopback
// listener, returning the server, its address, and a cleanup-registered
// drain.
func startServer(t *testing.T, engine string, cfg txengine.Config, opts Options) (*Server, string) {
	t.Helper()
	eng, err := txengine.Build(engine, cfg)
	if err != nil {
		t.Fatalf("build %s: %v", engine, err)
	}
	opts.CloseEngine = true
	s, err := New(eng, opts)
	if err != nil {
		eng.Close()
		t.Fatalf("server: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		eng.Close()
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	t.Cleanup(func() {
		s.Drain()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return s, ln.Addr().String()
}

func dialT(t *testing.T, addr string) *Conn {
	t.Helper()
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestServeBasicOps covers the three ops end to end on a sharded engine:
// Get/Put round-trips, previous-value reporting, and a multi-op transaction
// with reads, writes, and adds.
func TestServeBasicOps(t *testing.T) {
	_, addr := startServer(t, "medley-sharded", txengine.Config{Shards: 2}, Options{})
	c := dialT(t, addr)

	if r, err := c.Get(10); err != nil || !r.OK() || r.Found {
		t.Fatalf("get missing key: %+v, %v", r, err)
	}
	if r, err := c.Put(10, 77); err != nil || !r.OK() || r.Found {
		t.Fatalf("first put: %+v, %v", r, err)
	}
	if r, err := c.Put(10, 88); err != nil || !r.OK() || !r.Found || r.Val != 77 {
		t.Fatalf("second put should report previous 77: %+v, %v", r, err)
	}
	if r, err := c.Get(10); err != nil || !r.OK() || !r.Found || r.Val != 88 {
		t.Fatalf("get after put: %+v, %v", r, err)
	}

	// A transaction reading two keys, writing one, adding on another.
	r, err := c.Txn([]TxnOp{
		{Kind: TxnRead, Key: 10},
		{Kind: TxnWrite, Key: 11, Arg: 5},
		AddDelta(11, 0), // read-modify-write of the value written above
		{Kind: TxnRead, Key: 12},
	})
	if err != nil || !r.OK() {
		t.Fatalf("txn: %+v, %v", r, err)
	}
	if len(r.Reads) != 2 || !r.Reads[0].Found || r.Reads[0].Val != 88 || r.Reads[1].Found {
		t.Fatalf("txn reads: %+v", r.Reads)
	}
	if r, err := c.Get(11); err != nil || !r.Found || r.Val != 5 {
		t.Fatalf("txn write visible: %+v, %v", r, err)
	}
}

// TestSendTxnTooManyOps: a transaction over MaxTxnOps ops fails fast
// client-side (no frame is ever sent; the server cannot even represent it),
// and the sticky error poisons both Flush and Recv.
func TestSendTxnTooManyOps(t *testing.T) {
	_, addr := startServer(t, "medley", txengine.Config{}, Options{})
	c := dialT(t, addr)

	if r, err := c.Put(1, 1); err != nil || !r.OK() {
		t.Fatalf("put before oversized txn: %+v, %v", r, err)
	}
	ops := make([]TxnOp, MaxTxnOps+1)
	for i := range ops {
		ops[i] = TxnOp{Kind: TxnRead, Key: uint64(i)}
	}
	if _, err := c.Txn(ops); err == nil {
		t.Fatal("oversized txn should fail client-side")
	}
	if err := c.Flush(); err == nil {
		t.Fatal("Flush after oversized txn should keep failing")
	}
	if _, err := c.Recv(); err == nil {
		t.Fatal("Recv after oversized txn should keep failing")
	}
	// Exactly MaxTxnOps is framable and accepted.
	c2 := dialT(t, addr)
	if r, err := c2.Txn(ops[:MaxTxnOps]); err != nil || !r.OK() {
		t.Fatalf("txn at MaxTxnOps: %+v, %v", r, err)
	}
}

// TestServeAddUnderflowAborts: a TxnAdd that would go negative rolls the
// whole transaction back with StatusAborted.
func TestServeAddUnderflowAborts(t *testing.T) {
	_, addr := startServer(t, "medley", txengine.Config{}, Options{})
	c := dialT(t, addr)

	if r, err := c.Put(1, 5); err != nil || !r.OK() {
		t.Fatalf("put: %+v, %v", r, err)
	}
	r, err := c.Txn([]TxnOp{AddDelta(1, -3)})
	if err != nil || !r.OK() {
		t.Fatalf("affordable add: %+v, %v", r, err)
	}
	r, err = c.Txn([]TxnOp{AddDelta(2, 100), AddDelta(1, -10)})
	if err != nil || r.Status != StatusAborted {
		t.Fatalf("underflow should abort: %+v, %v", r, err)
	}
	// Nothing from the aborted transaction applied — not even the first add.
	if r, _ := c.Get(1); r.Val != 2 {
		t.Fatalf("key 1 = %d after aborted txn, want 2", r.Val)
	}
	if r, _ := c.Get(2); r.Found {
		t.Fatalf("key 2 leaked from aborted txn: %+v", r)
	}
}

// TestServePipelining keeps a deep window of requests in flight on one
// connection and checks responses come back in request order.
func TestServePipelining(t *testing.T) {
	_, addr := startServer(t, "medley-sharded", txengine.Config{Shards: 4}, Options{})
	c := dialT(t, addr)

	const n = 200
	ids := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			ids = append(ids, c.SendPut(uint64(i), uint64(i)*3))
		} else {
			ids = append(ids, c.SendGet(uint64(i-1)))
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	for i := 0; i < n; i++ {
		r, err := c.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if r.ID != ids[i] {
			t.Fatalf("response %d has id %d, want %d (out of order)", i, r.ID, ids[i])
		}
		if !r.OK() {
			t.Fatalf("response %d status %d", i, r.Status)
		}
		if i%2 == 1 && (!r.Found || r.Val != uint64(i-1)*3) {
			t.Fatalf("pipelined get %d: %+v, want %d", i, r, uint64(i-1)*3)
		}
	}
}

// TestServeBatchCoalescing pins a backlog behind the admission token, then
// releases it: the processor must coalesce the queued single-ops into
// hinted transactions while preserving per-connection program order.
func TestServeBatchCoalescing(t *testing.T) {
	s, addr := startServer(t, "medley-sharded", txengine.Config{Shards: 4},
		Options{BatchMax: 8, Tokens: 1, AdmitWait: 5 * time.Second})
	c := dialT(t, addr)

	<-s.tokens // hold the only token: requests queue, nothing executes
	const n = 32
	for i := 0; i < n; i++ {
		c.SendPut(uint64(i%4), uint64(i)) // rewrites: order violations would show
	}
	for i := 0; i < n; i++ {
		c.SendGet(uint64(i % 4))
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	time.Sleep(50 * time.Millisecond) // let the queue fill behind the token
	s.tokens <- struct{}{}

	for i := 0; i < n; i++ {
		r, err := c.Recv()
		if err != nil || !r.OK() {
			t.Fatalf("put resp %d: %+v, %v", i, r, err)
		}
	}
	for i := 0; i < n; i++ {
		r, err := c.Recv()
		if err != nil || !r.OK() {
			t.Fatalf("get resp %d: %+v, %v", i, r, err)
		}
		// The last put to key k was value n-4+k.
		want := uint64(n - 4 + i%4)
		if !r.Found || r.Val != want {
			t.Fatalf("get %d: got %d, want %d", i, r.Val, want)
		}
	}
	if got := s.Counters(); got.Batches == 0 || got.BatchedOps < 2 {
		t.Fatalf("no coalescing happened: %+v", got)
	}
}

// TestServeAdmissionSheds holds the only token so the next request must
// shed with StatusRetry — and succeed again once the token returns. The
// read lane is off: lane reads bypass token admission by design.
func TestServeAdmissionSheds(t *testing.T) {
	s, addr := startServer(t, "medley", txengine.Config{},
		Options{Tokens: 1, AdmitWait: time.Millisecond, NoReadLane: true})
	c := dialT(t, addr)

	<-s.tokens
	r, err := c.Get(1)
	if err != nil || r.Status != StatusRetry {
		t.Fatalf("with token held: %+v, %v; want StatusRetry", r, err)
	}
	s.tokens <- struct{}{}
	if r, err := c.Get(1); err != nil || !r.OK() {
		t.Fatalf("after token returned: %+v, %v", r, err)
	}
	if got := s.Counters(); got.Shed == 0 {
		t.Fatalf("shed not counted: %+v", got)
	}
}

// TestServeDrainRejectsNew: requests sent after drain begins are answered
// StatusDraining (when they arrive in the grace window) or the connection
// closes; either way the drain completes and acknowledged work is kept.
func TestServeDrainRejectsNew(t *testing.T) {
	eng, err := txengine.Build("medley", txengine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(eng, Options{CloseEngine: true, DrainGrace: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	c, err := Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if r, err := c.Put(1, 1); err != nil || !r.OK() {
		t.Fatalf("pre-drain put: %+v, %v", r, err)
	}

	go s.Drain()
	for !s.draining.Load() {
		time.Sleep(time.Millisecond)
	}
	// Requests from here on must not execute. The server may already have
	// closed the connection; a clean error is as acceptable as the
	// explicit status.
	sawDraining := false
	for i := 0; i < 50; i++ {
		r, err := c.Put(2, uint64(i))
		if err != nil {
			break
		}
		if r.Status == StatusDraining {
			sawDraining = true
			break
		}
		if r.OK() {
			t.Fatalf("post-drain put executed: %+v", r)
		}
	}
	s.Drain() // blocks until fully drained
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	_ = sawDraining // either rejection mode is correct; execution is not
	// New connections are refused after drain.
	if _, err := Dial(ln.Addr().String(), 0); err == nil {
		t.Fatal("dial succeeded after drain")
	}
}

// TestServeRejectsStaticEngine: engines without dynamic transactions cannot
// host the server.
func TestServeRejectsStaticEngine(t *testing.T) {
	eng, err := txengine.Build("lftt", txengine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := New(eng, Options{}); err == nil {
		t.Fatal("New accepted a static-transaction engine")
	}
}

// TestServeManyConnections exercises concurrent connections with pipelined
// mixed load — a miniature of the txload shape — and audits total
// conservation through transfer transactions.
func TestServeManyConnections(t *testing.T) {
	s, addr := startServer(t, "medley-sharded", txengine.Config{Shards: 4},
		Options{BatchMax: 8})
	const conns = 16
	const accounts = 64
	const opening = uint64(1000)

	// Fund the accounts.
	c0 := dialT(t, addr)
	for a := uint64(0); a < accounts; a++ {
		if r, err := c0.Put(a, opening); err != nil || !r.OK() {
			t.Fatalf("fund %d: %+v, %v", a, r, err)
		}
	}

	errs := make(chan error, conns)
	for w := 0; w < conns; w++ {
		go func(w int) {
			c, err := Dial(addr, time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < 200; i++ {
				from := uint64((w*7 + i) % accounts)
				to := uint64((w*13 + i*3) % accounts)
				r, err := c.Txn([]TxnOp{AddDelta(from, -10), AddDelta(to, 10)})
				if err != nil {
					errs <- err
					return
				}
				if !r.OK() && r.Status != StatusAborted && r.Status != StatusRetry {
					errs <- errFromStatus(r)
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < conns; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	sum := uint64(0)
	for a := uint64(0); a < accounts; a++ {
		r, err := c0.Get(a)
		if err != nil || !r.OK() {
			t.Fatalf("audit get %d: %+v, %v", a, r, err)
		}
		sum += r.Val
	}
	if want := accounts * opening; sum != want {
		t.Fatalf("conservation violated: sum %d, want %d", sum, want)
	}
	if got := s.Counters(); got.Requests == 0 || got.Conns < conns {
		t.Fatalf("counters: %+v", got)
	}
}

func errFromStatus(r *Response) error {
	return &statusError{status: r.Status, msg: r.Err}
}

type statusError struct {
	status byte
	msg    string
}

func (e *statusError) Error() string {
	return "unexpected status " + string('0'+e.status) + " " + e.msg
}
