// Package server is the network front-end over the txengine registry: a
// length-prefixed binary TCP protocol exposing Get/Put/Txn-batch operations
// on one hosted transactional map, served by any registered engine. It is
// the layer end-to-end throughput is measured through (cmd/txserver +
// cmd/txload) and the substrate every future scale PR is benchmarked on.
//
// # Wire protocol
//
// Every message is one frame: a 4-byte big-endian body length followed by
// the body, bounded by MaxFrame. All integers are big-endian.
//
// Request body:
//
//	id     uint64  // client-chosen; echoed verbatim in the response
//	op     uint8   // OpGet | OpPut | OpTxn
//	OpGet: key uint64
//	OpPut: key uint64, val uint64
//	OpTxn: nops uint16, then per op: kind uint8, key uint64, arg uint64
//	       kind TxnRead:  arg unused (0)
//	       kind TxnWrite: arg is the value to bind
//	       kind TxnAdd:   arg is an int64 delta (two's complement); the op
//	                      reads the key (absent = 0), adds the delta, and
//	                      writes the sum back. A delta that would take the
//	                      value below zero business-aborts the whole
//	                      transaction (StatusAborted) — the building block
//	                      of conservation-auditable transfers.
//
// Response body:
//
//	id     uint64  // echoed request id
//	op     uint8   // echoed request op
//	status uint8   // StatusOK | StatusRetry | StatusDraining | StatusAborted | StatusErr
//	StatusOK + OpGet: found uint8, val uint64
//	StatusOK + OpPut: found uint8, val uint64   // previous binding, if any
//	StatusOK + OpTxn: nreads uint16, then per TxnRead op (in request
//	                  order): found uint8, val uint64
//	StatusErr:        the error message (rest of the body)
//	other statuses:   empty
//
// A transaction executes atomically under one engine transaction with every
// key pre-declared through txengine.HintKeys, so on sharded engines the
// whole shard set is predicted up front and the footprint-discovery restart
// is never paid. Responses on one connection are written in request order,
// so pipelining clients may match responses positionally (ids are still
// echoed for verification).
//
// StatusRetry is the admission controller shedding load: the request was
// not executed and should be retried, ideally after backoff. StatusDraining
// is a drain-time reject: the server is shutting down and the request was
// not executed (see Server.Drain).
package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Op codes.
const (
	OpGet byte = 1
	OpPut byte = 2
	OpTxn byte = 3
)

// Response statuses.
const (
	StatusOK       byte = 0
	StatusRetry    byte = 1 // shed by admission control; not executed
	StatusDraining byte = 2 // server draining; not executed
	StatusAborted  byte = 3 // business abort (TxnAdd underflow); rolled back
	StatusErr      byte = 4 // execution error; body carries the message
)

// Txn op kinds.
const (
	TxnRead  byte = 1
	TxnWrite byte = 2
	TxnAdd   byte = 3
)

// MaxFrame bounds a frame body. A decoder must reject larger claims before
// reading or allocating, so a hostile length prefix cannot balloon memory.
const MaxFrame = 1 << 20

// MaxTxnOps bounds one transaction's op list (well under what MaxFrame
// admits, so the nops field can never promise more than the body carries).
const MaxTxnOps = 8192

const (
	reqHeaderLen  = 8 + 1     // id + op
	respHeaderLen = 8 + 1 + 1 // id + op + status
	txnOpLen      = 1 + 8 + 8 // kind + key + arg
	readResLen    = 1 + 8     // found + val
)

// ErrFrameTooLarge reports a frame whose claimed body length exceeds
// MaxFrame; the connection cannot be resynchronized and must be closed.
var ErrFrameTooLarge = errors.New("server: frame exceeds MaxFrame")

// TxnOp is one operation of an OpTxn request.
type TxnOp struct {
	Kind byte
	Key  uint64
	Arg  uint64 // TxnWrite: value; TxnAdd: int64 delta bit pattern
}

// AddDelta builds a TxnAdd op from a signed delta.
func AddDelta(key uint64, delta int64) TxnOp {
	return TxnOp{Kind: TxnAdd, Key: key, Arg: uint64(delta)}
}

// Request is one decoded client request.
type Request struct {
	ID  uint64
	Op  byte
	Key uint64  // OpGet, OpPut
	Val uint64  // OpPut
	Ops []TxnOp // OpTxn
}

// ReadResult is one TxnRead op's outcome.
type ReadResult struct {
	Found bool
	Val   uint64
}

// Response is one decoded server response.
type Response struct {
	ID     uint64
	Op     byte
	Status byte
	Found  bool
	Val    uint64       // OpGet: value; OpPut: previous value
	Reads  []ReadResult // OpTxn: one per TxnRead op, in request order
	Err    string       // StatusErr
}

// OK reports StatusOK.
func (r *Response) OK() bool { return r.Status == StatusOK }

// AppendRequest appends r as one frame (length prefix included) to buf.
func AppendRequest(buf []byte, r *Request) []byte {
	body := reqHeaderLen
	switch r.Op {
	case OpGet:
		body += 8
	case OpPut:
		body += 16
	case OpTxn:
		body += 2 + txnOpLen*len(r.Ops)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(body))
	buf = binary.BigEndian.AppendUint64(buf, r.ID)
	buf = append(buf, r.Op)
	switch r.Op {
	case OpGet:
		buf = binary.BigEndian.AppendUint64(buf, r.Key)
	case OpPut:
		buf = binary.BigEndian.AppendUint64(buf, r.Key)
		buf = binary.BigEndian.AppendUint64(buf, r.Val)
	case OpTxn:
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(r.Ops)))
		for _, op := range r.Ops {
			buf = append(buf, op.Kind)
			buf = binary.BigEndian.AppendUint64(buf, op.Key)
			buf = binary.BigEndian.AppendUint64(buf, op.Arg)
		}
	}
	return buf
}

// DecodeRequest parses one request body. The returned request's Ops slice
// is freshly allocated; body may be reused. Errors never panic and never
// depend on bytes beyond len(body).
func DecodeRequest(body []byte) (Request, error) {
	return DecodeRequestReuse(body, nil)
}

// DecodeRequestReuse is DecodeRequest with caller-owned op storage: an OpTxn
// request's Ops are appended into ops[:0], so a caller recycling the slice
// across requests decodes allocation-free once the slice has grown to the
// workload's transaction size. The returned request's Ops aliases ops'
// backing array (or a grown replacement); body may be reused either way.
func DecodeRequestReuse(body []byte, ops []TxnOp) (Request, error) {
	var r Request
	if len(body) < reqHeaderLen {
		return r, fmt.Errorf("server: request body %d bytes, want >= %d", len(body), reqHeaderLen)
	}
	r.ID = binary.BigEndian.Uint64(body)
	r.Op = body[8]
	rest := body[reqHeaderLen:]
	switch r.Op {
	case OpGet:
		if len(rest) != 8 {
			return r, fmt.Errorf("server: OpGet payload %d bytes, want 8", len(rest))
		}
		r.Key = binary.BigEndian.Uint64(rest)
	case OpPut:
		if len(rest) != 16 {
			return r, fmt.Errorf("server: OpPut payload %d bytes, want 16", len(rest))
		}
		r.Key = binary.BigEndian.Uint64(rest)
		r.Val = binary.BigEndian.Uint64(rest[8:])
	case OpTxn:
		if len(rest) < 2 {
			return r, errors.New("server: OpTxn payload missing op count")
		}
		n := int(binary.BigEndian.Uint16(rest))
		rest = rest[2:]
		if n > MaxTxnOps {
			return r, fmt.Errorf("server: OpTxn declares %d ops, max %d", n, MaxTxnOps)
		}
		// Validate the claimed count against the actual payload before
		// allocating, so a lying header cannot oversize the slice.
		if len(rest) != n*txnOpLen {
			return r, fmt.Errorf("server: OpTxn payload %d bytes, want %d for %d ops", len(rest), n*txnOpLen, n)
		}
		ops = ops[:0]
		for i := 0; i < n; i++ {
			o := rest[i*txnOpLen:]
			kind := o[0]
			if kind != TxnRead && kind != TxnWrite && kind != TxnAdd {
				return r, fmt.Errorf("server: OpTxn op %d has unknown kind %d", i, kind)
			}
			ops = append(ops, TxnOp{Kind: kind, Key: binary.BigEndian.Uint64(o[1:]), Arg: binary.BigEndian.Uint64(o[9:])})
		}
		r.Ops = ops
	default:
		return r, fmt.Errorf("server: unknown op %d", r.Op)
	}
	return r, nil
}

// AppendResponse appends r as one frame (length prefix included) to buf.
func AppendResponse(buf []byte, r *Response) []byte {
	body := respHeaderLen
	if r.Status == StatusOK {
		switch r.Op {
		case OpGet, OpPut:
			body += readResLen
		case OpTxn:
			body += 2 + readResLen*len(r.Reads)
		}
	} else if r.Status == StatusErr {
		body += len(r.Err)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(body))
	buf = binary.BigEndian.AppendUint64(buf, r.ID)
	buf = append(buf, r.Op, r.Status)
	switch {
	case r.Status == StatusOK && (r.Op == OpGet || r.Op == OpPut):
		buf = appendReadResult(buf, r.Found, r.Val)
	case r.Status == StatusOK && r.Op == OpTxn:
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(r.Reads)))
		for _, rr := range r.Reads {
			buf = appendReadResult(buf, rr.Found, rr.Val)
		}
	case r.Status == StatusErr:
		buf = append(buf, r.Err...)
	}
	return buf
}

func appendReadResult(buf []byte, found bool, val uint64) []byte {
	f := byte(0)
	if found {
		f = 1
	}
	buf = append(buf, f)
	return binary.BigEndian.AppendUint64(buf, val)
}

// DecodeResponse parses one response body into *r, reusing r.Reads when it
// has capacity (the pipelining client's per-connection scratch). body may be
// reused afterwards. Errors never panic and never over-read.
func DecodeResponse(body []byte, r *Response) error {
	if len(body) < respHeaderLen {
		return fmt.Errorf("server: response body %d bytes, want >= %d", len(body), respHeaderLen)
	}
	r.ID = binary.BigEndian.Uint64(body)
	r.Op = body[8]
	r.Status = body[9]
	r.Found, r.Val = false, 0
	r.Reads = r.Reads[:0]
	r.Err = ""
	rest := body[respHeaderLen:]
	switch r.Status {
	case StatusOK:
		switch r.Op {
		case OpGet, OpPut:
			if len(rest) != readResLen {
				return fmt.Errorf("server: %d-byte single-op OK payload, want %d", len(rest), readResLen)
			}
			if rest[0] > 1 {
				return fmt.Errorf("server: found byte %d, want 0 or 1", rest[0])
			}
			r.Found = rest[0] != 0
			r.Val = binary.BigEndian.Uint64(rest[1:])
		case OpTxn:
			if len(rest) < 2 {
				return errors.New("server: OpTxn OK payload missing read count")
			}
			n := int(binary.BigEndian.Uint16(rest))
			rest = rest[2:]
			if n > MaxTxnOps {
				return fmt.Errorf("server: OpTxn response declares %d reads, max %d", n, MaxTxnOps)
			}
			if len(rest) != n*readResLen {
				return fmt.Errorf("server: OpTxn OK payload %d bytes, want %d for %d reads", len(rest), n*readResLen, n)
			}
			for i := 0; i < n; i++ {
				o := rest[i*readResLen:]
				if o[0] > 1 {
					return fmt.Errorf("server: read %d found byte %d, want 0 or 1", i, o[0])
				}
				r.Reads = append(r.Reads, ReadResult{Found: o[0] != 0, Val: binary.BigEndian.Uint64(o[1:])})
			}
		default:
			return fmt.Errorf("server: OK response with unknown op %d", r.Op)
		}
	case StatusRetry, StatusDraining, StatusAborted:
		if len(rest) != 0 {
			return fmt.Errorf("server: status %d carries %d payload bytes, want none", r.Status, len(rest))
		}
	case StatusErr:
		r.Err = string(rest)
	default:
		return fmt.Errorf("server: unknown status %d", r.Status)
	}
	return nil
}

// ReadFrame reads one frame body from br, reusing buf when it has capacity.
// It rejects bodies beyond MaxFrame before reading them (ErrFrameTooLarge)
// and empty bodies, so a hostile prefix can neither balloon memory nor spin
// the reader; a clean EOF between frames is returned as io.EOF.
func ReadFrame(br *bufio.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("server: truncated frame header: %w", err)
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, errors.New("server: zero-length frame")
	}
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("server: truncated frame body (want %d bytes): %w", n, err)
	}
	return buf, nil
}
