package server

import (
	"sync"
	"sync/atomic"
	"testing"

	"medley/internal/txengine"
)

// TestReadLaneNeverTorn is the read lane's end-to-end isolation audit:
// writer connections move value between account pairs with multi-key
// transactions while reader connections audit each pair's sum through the
// lane — synchronous Gets and all-Read Txn batches. A torn read (an audit
// transaction observing a transfer half-applied) would break the sum. After
// an explicit drain, the lane must actually have served reads, and every OK
// answered by the server must be attributed to exactly one path:
// SnapServed + OCCServed == the clients' OK tally.
func TestReadLaneNeverTorn(t *testing.T) {
	const (
		pairs     = 8
		seed      = uint64(1000)
		transfers = 300
		audits    = 400
		writers   = 4
		readers   = 4
	)
	s, addr := startServer(t, "medley-sharded", txengine.Config{Shards: 4}, Options{})
	if !s.ReadLaneEnabled() {
		t.Fatal("read lane should be on for a sharded medley engine")
	}

	// Seed each pair's two accounts.
	seedConn := dialT(t, addr)
	var okTally atomic.Uint64
	for k := uint64(0); k < 2*pairs; k++ {
		r, err := seedConn.Put(k, seed)
		if err != nil || !r.OK() {
			t.Fatalf("seed %d: %+v, %v", k, r, err)
		}
		okTally.Add(1)
	}

	var wg sync.WaitGroup
	fail := make(chan string, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr, 0)
			if err != nil {
				fail <- "writer dial: " + err.Error()
				return
			}
			defer c.Close()
			for i := 0; i < transfers; i++ {
				p := uint64((w + i) % pairs)
				from, to := 2*p, 2*p+1
				if i%2 == 0 {
					from, to = to, from
				}
				r, err := c.Txn([]TxnOp{
					{Kind: TxnRead, Key: from},
					AddDelta(from, -1),
					AddDelta(to, +1),
				})
				if err != nil {
					fail <- "transfer: " + err.Error()
					return
				}
				switch r.Status {
				case StatusOK:
					okTally.Add(1)
				case StatusRetry, StatusAborted:
					// Shed under load or balance exhausted: both fine.
				default:
					fail <- "transfer status: " + r.Err
					return
				}
			}
		}(w)
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			c, err := Dial(addr, 0)
			if err != nil {
				fail <- "reader dial: " + err.Error()
				return
			}
			defer c.Close()
			for i := 0; i < audits; i++ {
				p := uint64((rd + i) % pairs)
				// The atomic audit: one all-Read transaction is a single
				// lane job served from one cut, so the pair sum must hold.
				r, err := c.Txn([]TxnOp{
					{Kind: TxnRead, Key: 2 * p},
					{Kind: TxnRead, Key: 2*p + 1},
				})
				if err != nil {
					fail <- "audit txn: " + err.Error()
					return
				}
				if r.Status == StatusRetry {
					continue
				}
				if !r.OK() || len(r.Reads) != 2 {
					fail <- "audit txn status: " + r.Err
					return
				}
				okTally.Add(1)
				if sum := r.Reads[0].Val + r.Reads[1].Val; sum != 2*seed {
					fail <- "torn read: pair sum drifted"
					return
				}
				// Interleave plain Gets so individual-Get lane traffic runs
				// under the same churn (no atomicity claim across two Gets).
				if g, err := c.Get(2 * p); err != nil || !g.OK() {
					if err != nil {
						fail <- "audit get: " + err.Error()
						return
					}
					if g.Status != StatusRetry {
						fail <- "audit get status: " + g.Err
						return
					}
				} else {
					okTally.Add(1)
				}
			}
		}(rd)
	}
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}

	s.Drain()
	got := s.Counters()
	if got.SnapServed == 0 {
		t.Fatalf("lane served nothing: %+v", got)
	}
	if got.SnapServed+got.OCCServed != okTally.Load() {
		t.Fatalf("attribution leak: snap %d + occ %d != client OKs %d",
			got.SnapServed, got.OCCServed, okTally.Load())
	}
}

// TestReadLaneReadYourWrites: a connection that just wrote a key must see
// that write through the lane immediately, even while concurrent writers on
// other keys hold the snapshot seal back (the lane falls such reads back to
// OCC rather than serve a stale cut).
func TestReadLaneReadYourWrites(t *testing.T) {
	s, addr := startServer(t, "medley", txengine.Config{}, Options{})
	if !s.ReadLaneEnabled() {
		t.Fatal("read lane should be on")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr, 0)
			if err != nil {
				return
			}
			defer c.Close()
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Put(1000+uint64(w), i)
			}
		}(w)
	}

	c := dialT(t, addr)
	for i := uint64(1); i <= 300; i++ {
		if r, err := c.Put(7, i); err != nil || r.Status == StatusErr {
			t.Fatalf("put %d: %+v, %v", i, r, err)
		}
		r, err := c.Get(7)
		if err != nil || r.Status == StatusErr {
			t.Fatalf("get %d: %+v, %v", i, r, err)
		}
		if r.OK() && (!r.Found || r.Val != i) {
			t.Fatalf("read-your-writes violated: wrote %d, read %+v", i, r)
		}
	}
	close(stop)
	wg.Wait()
}

// TestReadLaneCombines pins the flat-combining mechanics deterministically:
// two follower jobs are staged on the stripe's pending queue, then a third
// submission takes leadership and must drain all three under one wakeup —
// every request counts as combined, every job gets its results, and the
// jobs of dead-to-be connections are released from the scratch array.
func TestReadLaneCombines(t *testing.T) {
	eng, err := txengine.Build("medley", txengine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(eng, Options{CloseEngine: true, ReadCombiners: 1})
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	t.Cleanup(s.Drain)
	if !s.ReadLaneEnabled() || len(s.lane.stripes) != 1 {
		t.Fatalf("want one combiner stripe, have lane=%v", s.ReadLaneEnabled())
	}
	seed := eng.NewWorker(99)
	if err := seed.Run(func() error {
		for k := uint64(0); k < 8; k++ {
			s.m.Put(seed, k, 100+k)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	mkJob := func(keys ...uint64) *readJob {
		j := &readJob{done: make(chan struct{}, 1)}
		for _, k := range keys {
			j.batch = append(j.batch, pendReq{req: Request{Op: OpGet, Key: k}, read: true})
		}
		return j
	}
	cb := s.lane.stripes[0]
	followers := []*readJob{mkJob(0, 1), mkJob(2, 3, 4)}
	cb.mu.Lock()
	cb.pending = append(cb.pending, followers...)
	cb.mu.Unlock()

	leader := mkJob(5, 6)
	cb.submit(leader) // drains the staged followers and itself in one wakeup

	total := 0
	for _, j := range append(followers, leader) {
		select {
		case <-j.done:
		default:
			if j != leader {
				t.Fatal("follower job not signalled")
			}
		}
		if j.fallback {
			t.Fatal("job fell back with no writer churn")
		}
		if len(j.results) != len(j.batch) {
			t.Fatalf("job got %d results for %d gets", len(j.results), len(j.batch))
		}
		for i, res := range j.results {
			if want := 100 + j.batch[i].req.Key; !res.Found || res.Val != want {
				t.Fatalf("get %d: %+v, want %d", j.batch[i].req.Key, res, want)
			}
		}
		total += len(j.batch)
	}
	got := s.Counters()
	if got.SnapServed != uint64(total) || got.Combined != uint64(total) {
		t.Fatalf("want %d snap-served and combined, got %+v", total, got)
	}
	for _, slot := range cb.scratch[:cap(cb.scratch)] {
		if slot != nil {
			t.Fatal("drained wakeup retains job references")
		}
	}
}

// TestReadLaneDisabled: the -noreadlane knob forces every read through the
// OCC path, and an engine without CapSnapshot never gets a lane.
func TestReadLaneDisabled(t *testing.T) {
	s, addr := startServer(t, "medley", txengine.Config{}, Options{NoReadLane: true})
	if s.ReadLaneEnabled() {
		t.Fatal("NoReadLane should disable the lane")
	}
	c := dialT(t, addr)
	for i := 0; i < 10; i++ {
		if r, err := c.Get(uint64(i)); err != nil || !r.OK() {
			t.Fatalf("get: %+v, %v", r, err)
		}
	}
	if got := s.Counters(); got.SnapServed != 0 || got.Combined != 0 {
		t.Fatalf("lane counters moved while disabled: %+v", got)
	}

	s2, addr2 := startServer(t, "onefile", txengine.Config{}, Options{})
	if s2.ReadLaneEnabled() {
		t.Fatal("onefile has no snapshot tier; lane must be off")
	}
	c2 := dialT(t, addr2)
	if r, err := c2.Get(1); err != nil || !r.OK() {
		t.Fatalf("get on onefile: %+v, %v", r, err)
	}
}
