package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"math/rand/v2"
	"reflect"
	"testing"
)

// randRequest draws one request of a random shape.
func randRequest(rng *rand.Rand) Request {
	r := Request{ID: rng.Uint64()}
	switch rng.IntN(3) {
	case 0:
		r.Op, r.Key = OpGet, rng.Uint64()
	case 1:
		r.Op, r.Key, r.Val = OpPut, rng.Uint64(), rng.Uint64()
	default:
		r.Op = OpTxn
		n := rng.IntN(20) + 1
		r.Ops = make([]TxnOp, n)
		for i := range r.Ops {
			kind := []byte{TxnRead, TxnWrite, TxnAdd}[rng.IntN(3)]
			arg := rng.Uint64()
			if kind == TxnRead {
				arg = 0
			}
			r.Ops[i] = TxnOp{Kind: kind, Key: rng.Uint64(), Arg: arg}
		}
	}
	return r
}

func randResponse(rng *rand.Rand) Response {
	r := Response{ID: rng.Uint64()}
	switch rng.IntN(5) {
	case 0:
		r.Op, r.Status = []byte{OpGet, OpPut}[rng.IntN(2)], StatusOK
		r.Found = rng.IntN(2) == 0
		if r.Found {
			r.Val = rng.Uint64()
		}
	case 1:
		r.Op, r.Status = OpTxn, StatusOK
		n := rng.IntN(8)
		r.Reads = make([]ReadResult, n)
		for i := range r.Reads {
			if rng.IntN(2) == 0 {
				r.Reads[i] = ReadResult{Found: true, Val: rng.Uint64()}
			}
		}
	case 2:
		r.Op, r.Status = []byte{OpGet, OpPut, OpTxn}[rng.IntN(3)], []byte{StatusRetry, StatusDraining, StatusAborted}[rng.IntN(3)]
	default:
		r.Op, r.Status = OpGet, StatusErr
		r.Err = "some failure"
	}
	return r
}

// TestRequestRoundTrip is the codec property test: random requests survive
// encode → frame → decode unchanged.
func TestRequestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	var stream []byte
	var want []Request
	for i := 0; i < 500; i++ {
		r := randRequest(rng)
		want = append(want, r)
		stream = AppendRequest(stream, &r)
	}
	br := bufio.NewReader(bytes.NewReader(stream))
	var buf []byte
	for i, w := range want {
		body, err := ReadFrame(br, buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		buf = body
		got, err := DecodeRequest(body)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if got.ID != w.ID || got.Op != w.Op || got.Key != w.Key || got.Val != w.Val || !equalOps(got.Ops, w.Ops) {
			t.Fatalf("request %d: got %+v, want %+v", i, got, w)
		}
	}
	if _, err := ReadFrame(br, buf); err != io.EOF {
		t.Fatalf("trailing read: %v, want io.EOF", err)
	}
}

func equalOps(a, b []TxnOp) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestResponseRoundTrip is the response-side property test, exercising the
// scratch-reusing DecodeResponse the pipelining client runs on.
func TestResponseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	var got Response // reused across iterations, like a client Conn's
	for i := 0; i < 500; i++ {
		w := randResponse(rng)
		frame := AppendResponse(nil, &w)
		body := frame[4:]
		if int(binary.BigEndian.Uint32(frame)) != len(body) {
			t.Fatalf("response %d: frame length %d != body %d", i, binary.BigEndian.Uint32(frame), len(body))
		}
		if err := DecodeResponse(body, &got); err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if got.ID != w.ID || got.Op != w.Op || got.Status != w.Status || got.Found != w.Found || got.Val != w.Val || got.Err != w.Err {
			t.Fatalf("response %d: got %+v, want %+v", i, got, w)
		}
		if len(got.Reads) != len(w.Reads) || (len(w.Reads) > 0 && !reflect.DeepEqual(got.Reads, w.Reads)) {
			t.Fatalf("response %d reads: got %+v, want %+v", i, got.Reads, w.Reads)
		}
	}
}

// TestDecodeRequestRejects spot-checks the malformed-frame classes the fuzz
// target explores: truncation, oversize, lying counts, garbage.
func TestDecodeRequestRejects(t *testing.T) {
	valid := AppendRequest(nil, &Request{ID: 7, Op: OpTxn, Ops: []TxnOp{{Kind: TxnWrite, Key: 1, Arg: 2}}})[4:]
	cases := map[string][]byte{
		"empty":          {},
		"header only":    valid[:9],
		"truncated op":   valid[:len(valid)-1],
		"trailing bytes": append(append([]byte{}, valid...), 0),
		"unknown op":     {0, 0, 0, 0, 0, 0, 0, 1, 99},
		"bad txn kind":   {0, 0, 0, 0, 0, 0, 0, 1, OpTxn, 0, 1, 77, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
	}
	// A lying op count must be rejected before any allocation sized by it.
	lying := append([]byte{0, 0, 0, 0, 0, 0, 0, 1, OpTxn}, 0xff, 0xff)
	cases["lying op count"] = lying
	for name, body := range cases {
		if _, err := DecodeRequest(body); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestReadFrameRejects covers the framing layer: truncated prefixes and
// bodies, zero-length and oversized claims.
func TestReadFrameRejects(t *testing.T) {
	read := func(b []byte) error {
		_, err := ReadFrame(bufio.NewReader(bytes.NewReader(b)), nil)
		return err
	}
	if err := read(nil); err != io.EOF {
		t.Errorf("empty stream: %v, want io.EOF", err)
	}
	if err := read([]byte{0, 0}); err == nil {
		t.Error("truncated header accepted")
	}
	if err := read([]byte{0, 0, 0, 5, 1, 2}); err == nil {
		t.Error("truncated body accepted")
	}
	if err := read([]byte{0, 0, 0, 0}); err == nil {
		t.Error("zero-length frame accepted")
	}
	huge := binary.BigEndian.AppendUint32(nil, MaxFrame+1)
	if err := read(huge); err != ErrFrameTooLarge {
		t.Errorf("oversized claim: %v, want ErrFrameTooLarge", err)
	}
}

// FuzzDecodeRequest: arbitrary bodies must error or decode — never panic,
// never over-read (the race detector and -fuzz's instrumentation watch the
// rest).
func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendRequest(nil, &Request{ID: 1, Op: OpGet, Key: 42})[4:])
	f.Add(AppendRequest(nil, &Request{ID: 2, Op: OpPut, Key: 1, Val: 2})[4:])
	f.Add(AppendRequest(nil, &Request{ID: 3, Op: OpTxn, Ops: []TxnOp{{Kind: TxnAdd, Key: 9, Arg: ^uint64(0)}}})[4:])
	f.Fuzz(func(t *testing.T, body []byte) {
		r, err := DecodeRequest(body)
		if err == nil {
			// Whatever decodes must re-encode to exactly the input frame.
			again := AppendRequest(nil, &r)[4:]
			if !bytes.Equal(again, body) {
				t.Fatalf("re-encode mismatch:\n in %x\nout %x", body, again)
			}
		}
	})
}

// FuzzDecodeResponse mirrors FuzzDecodeRequest for the client-side decoder.
func FuzzDecodeResponse(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendResponse(nil, &Response{ID: 1, Op: OpGet, Status: StatusOK, Found: true, Val: 3})[4:])
	f.Add(AppendResponse(nil, &Response{ID: 2, Op: OpTxn, Status: StatusOK, Reads: []ReadResult{{true, 1}}})[4:])
	f.Add(AppendResponse(nil, &Response{ID: 3, Op: OpPut, Status: StatusErr, Err: "x"})[4:])
	f.Fuzz(func(t *testing.T, body []byte) {
		var r Response
		if err := DecodeResponse(body, &r); err == nil {
			again := AppendResponse(nil, &r)[4:]
			if !bytes.Equal(again, body) {
				t.Fatalf("re-encode mismatch:\n in %x\nout %x", body, again)
			}
		}
	})
}

// FuzzReadFrame feeds arbitrary byte streams through the framing reader:
// it must return each well-formed frame and reject the rest without
// panicking or allocating from a hostile length claim.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendRequest(nil, &Request{ID: 1, Op: OpGet, Key: 42}))
	f.Add(binary.BigEndian.AppendUint32(nil, MaxFrame+1))
	f.Fuzz(func(t *testing.T, stream []byte) {
		br := bufio.NewReader(bytes.NewReader(stream))
		var buf []byte
		for i := 0; i < 64; i++ {
			body, err := ReadFrame(br, buf)
			if err != nil {
				return
			}
			if len(body) == 0 || len(body) > MaxFrame {
				t.Fatalf("frame body length %d out of bounds", len(body))
			}
			buf = body
		}
	})
}
