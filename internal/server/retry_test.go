package server

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"medley/internal/chaos"
	"medley/internal/txengine"
)

// scriptServer is a minimal wire-speaking server that answers every request
// with the next status from script (sticking on the last), shared across
// reconnects — so a test can deterministically hand a client "RETRY, then
// OK" without forcing a real server into overload.
func scriptServer(t *testing.T, script []byte) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	var next atomic.Int64
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				br := bufio.NewReader(c)
				var buf []byte
				for {
					body, err := ReadFrame(br, buf)
					if err != nil {
						return
					}
					buf = body
					req, err := DecodeRequest(body)
					if err != nil {
						return
					}
					i := int(next.Add(1)) - 1
					if i >= len(script) {
						i = len(script) - 1
					}
					resp := Response{ID: req.ID, Op: req.Op, Status: script[i]}
					if _, err := c.Write(AppendResponse(nil, &resp)); err != nil {
						return
					}
				}
			}(c)
		}
	}()
	return ln.Addr().String()
}

// TestClientRetriesShedWrites: StatusRetry means "not executed", so even a
// write must be re-sent, transparently, with the retry tallied.
func TestClientRetriesShedWrites(t *testing.T) {
	addr := scriptServer(t, []byte{StatusRetry, StatusRetry, StatusOK})
	cl := NewClient(addr, RetryPolicy{BaseBackoff: time.Millisecond})
	defer cl.Close()
	resp, err := cl.Put(1, 2)
	if err != nil || !resp.OK() {
		t.Fatalf("Put through shedding: %+v, %v", resp, err)
	}
	if st := cl.Stats(); st.Retries != 2 {
		t.Fatalf("retries = %d, want 2", st.Retries)
	}
}

// TestClientRetriesDraining: StatusDraining is also not-executed; the client
// reconnects (the address may point at a fresh instance) and retries.
func TestClientRetriesDraining(t *testing.T) {
	addr := scriptServer(t, []byte{StatusDraining, StatusOK})
	cl := NewClient(addr, RetryPolicy{BaseBackoff: time.Millisecond})
	defer cl.Close()
	resp, err := cl.Txn([]TxnOp{{Kind: TxnWrite, Key: 3, Arg: 4}})
	if err != nil || !resp.OK() {
		t.Fatalf("Txn through draining: %+v, %v", resp, err)
	}
	if st := cl.Stats(); st.Retries != 1 {
		t.Fatalf("retries = %d, want 1", st.Retries)
	}
}

// TestClientExhaustsAttempts: a server that never stops shedding must not
// loop forever; the terminal error reports the shed count.
func TestClientExhaustsAttempts(t *testing.T) {
	addr := scriptServer(t, []byte{StatusRetry})
	cl := NewClient(addr, RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond})
	defer cl.Close()
	if _, err := cl.Get(9); err == nil {
		t.Fatal("Get against always-shedding server succeeded")
	}
	if st := cl.Stats(); st.Retries != 3 {
		t.Fatalf("retries = %d, want 3", st.Retries)
	}
}

// TestClientReconnectsOnReadFault: injected input faults drop the server
// side of the connection before anything executes; idempotent reads retry
// through the reconnects.
func TestClientReconnectsOnReadFault(t *testing.T) {
	_, addr := startServer(t, "medley-sharded", txengine.Config{Shards: 2}, Options{})
	t.Cleanup(chaos.DisarmAll)
	if err := chaos.Arm("server.frame.read", chaos.Fault{Kind: chaos.Error, Every: 5}); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(addr, RetryPolicy{BaseBackoff: time.Millisecond})
	defer cl.Close()
	for i := 0; i < 30; i++ {
		if resp, err := cl.Get(uint64(i)); err != nil || !resp.OK() {
			t.Fatalf("Get %d: %+v, %v", i, resp, err)
		}
	}
	if st := cl.Stats(); st.Reconnects == 0 {
		t.Fatal("no reconnects despite injected read faults")
	}
	if chaos.Fired("server.frame.read") == 0 {
		t.Fatal("read fault never fired")
	}
}

// TestClientWriteUnknownOutcome: a connection torn after a write was sent
// yields the typed ErrUnknownOutcome — and the ambiguity is real: here the
// server committed the write and lost only the acknowledgment.
func TestClientWriteUnknownOutcome(t *testing.T) {
	_, addr := startServer(t, "medley-sharded", txengine.Config{Shards: 2}, Options{})
	t.Cleanup(chaos.DisarmAll)
	if err := chaos.Arm("server.frame.write", chaos.Fault{Kind: chaos.Torn, Times: 1}); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(addr, RetryPolicy{BaseBackoff: time.Millisecond})
	defer cl.Close()
	_, err := cl.Put(7, 70)
	if !errors.Is(err, ErrUnknownOutcome) {
		t.Fatalf("torn-ack Put error = %v, want ErrUnknownOutcome", err)
	}
	// The fault fired once; the reconnected client works again, and the
	// "unknown" write in fact committed before its acknowledgment tore.
	if resp, err := cl.Get(7); err != nil || !resp.Found || resp.Val != 70 {
		t.Fatalf("Get(7) after unknown-outcome Put: %+v, %v", resp, err)
	}
	if st := cl.Stats(); st.Reconnects != 1 {
		t.Fatalf("reconnects = %d, want 1", st.Reconnects)
	}
}

// TestIdleTimeoutClosesConnection: a connected client that never sends a
// frame is cut loose by Options.IdleTimeout instead of pinning its engine
// session until drain.
func TestIdleTimeoutClosesConnection(t *testing.T) {
	s, addr := startServer(t, "medley-sharded", txengine.Config{Shards: 2}, Options{
		IdleTimeout: 50 * time.Millisecond,
	})
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == io.EOF {
		// server closed us — expected
	} else if err == nil {
		t.Fatal("server sent bytes to an idle connection")
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Counters().IdleClosed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("IdleClosed counter never incremented")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTornFrameLoadZeroUnaccounted is the serving-tier acceptance audit:
// a fleet of retrying clients drives unique-key Puts into a server that
// tears a response frame every several writes (forcing reconnects and
// unknown outcomes), and afterwards every acknowledged commit must be
// present in the hosted map and every present key must be accounted for by
// an acknowledged or unknown-outcome Put — zero unaccounted acknowledged
// commits, zero phantom writes.
func TestTornFrameLoadZeroUnaccounted(t *testing.T) {
	s, addr := startServer(t, "medley-sharded", txengine.Config{Shards: 2}, Options{})
	t.Cleanup(chaos.DisarmAll)
	if err := chaos.Arm("server.frame.write", chaos.Fault{Kind: chaos.Torn, Every: 37}); err != nil {
		t.Fatal(err)
	}

	const workers, puts = 8, 250
	type tally struct {
		acked, unknown map[uint64]uint64
		reconnects     uint64
	}
	tallies := make([]tally, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := NewClient(addr, RetryPolicy{MaxAttempts: 12, BaseBackoff: time.Millisecond})
			defer cl.Close()
			acked, unknown := map[uint64]uint64{}, map[uint64]uint64{}
			for i := 0; i < puts; i++ {
				key := uint64(w*puts + i + 1)
				val := key*3 + 1
				resp, err := cl.Put(key, val)
				switch {
				case err == nil && resp.OK():
					acked[key] = val
				case errors.Is(err, ErrUnknownOutcome):
					unknown[key] = val
				default:
					t.Errorf("worker %d put %d: %+v, %v", w, key, resp, err)
				}
			}
			tallies[w] = tally{acked: acked, unknown: unknown, reconnects: cl.Stats().Reconnects}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if chaos.Fired("server.frame.write") == 0 {
		t.Fatal("torn-write fault never fired")
	}
	var reconnects, unknowns int
	for _, ta := range tallies {
		reconnects += int(ta.reconnects)
		unknowns += len(ta.unknown)
	}
	if reconnects == 0 {
		t.Fatal("no client ever reconnected")
	}
	chaos.DisarmAll()

	// Audit through the hosted map in-process.
	tx := s.Engine().NewWorker(-1)
	m := s.Map()
	unaccounted, lost := 0, 0
	for w := 0; w < workers; w++ {
		for i := 0; i < puts; i++ {
			key := uint64(w*puts + i + 1)
			v, found := m.Get(tx, key)
			wantVal := key*3 + 1
			if av, ok := tallies[w].acked[key]; ok {
				if !found || v != av {
					lost++
					t.Errorf("acked commit lost: key %d (found=%v val=%d want=%d)", key, found, v, av)
				}
				continue
			}
			if _, ok := tallies[w].unknown[key]; ok {
				if found && v != wantVal {
					t.Errorf("unknown-outcome key %d holds foreign value %d", key, v)
				}
				continue // either fate is legal for unknown outcomes
			}
			if found {
				unaccounted++
				t.Errorf("unaccounted commit: key %d = %d acknowledged to nobody", key, v)
			}
		}
	}
	t.Logf("torn-frame load: %d workers × %d puts, %d reconnects, %d unknown outcomes, %d lost acks, %d unaccounted",
		workers, puts, reconnects, unknowns, lost, unaccounted)
}
