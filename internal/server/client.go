package server

import (
	"bufio"
	"fmt"
	"net"
	"time"
)

// Conn is a client connection speaking the wire protocol. It is not
// goroutine-safe: one driver goroutine per Conn, like a Tx handle.
//
// The pipelining API is Send*/Flush/Recv: Send buffers a request frame and
// returns its id, Flush writes the buffered frames in one syscall, Recv
// reads the next response. The server answers one connection's requests in
// request order, so a pipelining client may keep a window of requests in
// flight and match responses positionally. The synchronous helpers
// (Get/Put/Txn) are one-request windows for tests and simple callers.
type Conn struct {
	c      net.Conn
	br     *bufio.Reader
	wbuf   []byte // encoded, unflushed request frames
	rbuf   []byte // frame read scratch
	req    Request
	resp   Response
	nextID uint64
	err    error // sticky client-side encode error; poisons Flush/Recv
}

// Dial connects to a txserver at addr, retrying refused connections until
// timeout (covers the race against a server still binding its listener;
// timeout 0 means a single attempt).
func Dial(addr string, timeout time.Duration) (*Conn, error) {
	deadline := time.Now().Add(timeout)
	for {
		c, err := net.Dial("tcp", addr)
		if err == nil {
			return &Conn{c: c, br: bufio.NewReaderSize(c, 64<<10)}, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Close closes the connection.
func (c *Conn) Close() error { return c.c.Close() }

// SendGet buffers an OpGet request and returns its id.
func (c *Conn) SendGet(key uint64) uint64 {
	c.nextID++
	c.req = Request{ID: c.nextID, Op: OpGet, Key: key}
	c.wbuf = AppendRequest(c.wbuf, &c.req)
	return c.nextID
}

// SendPut buffers an OpPut request and returns its id.
func (c *Conn) SendPut(key, val uint64) uint64 {
	c.nextID++
	c.req = Request{ID: c.nextID, Op: OpPut, Key: key, Val: val}
	c.wbuf = AppendRequest(c.wbuf, &c.req)
	return c.nextID
}

// SendTxn buffers an OpTxn request and returns its id. ops is caller-owned.
// A transaction over MaxTxnOps ops cannot be framed (the server would reject
// it, or worse, the uint16 op count would wrap): it is not buffered, and the
// error poisons the connection — the next Flush or Recv reports it.
func (c *Conn) SendTxn(ops []TxnOp) uint64 {
	c.nextID++
	if len(ops) > MaxTxnOps {
		if c.err == nil {
			c.err = fmt.Errorf("server: txn has %d ops, max %d", len(ops), MaxTxnOps)
		}
		return c.nextID
	}
	c.req = Request{ID: c.nextID, Op: OpTxn, Ops: ops}
	c.wbuf = AppendRequest(c.wbuf, &c.req)
	return c.nextID
}

// Flush writes every buffered request frame to the socket.
func (c *Conn) Flush() error {
	if c.err != nil {
		return c.err
	}
	if len(c.wbuf) == 0 {
		return nil
	}
	_, err := c.c.Write(c.wbuf)
	c.wbuf = c.wbuf[:0]
	return err
}

// Recv reads the next response. The returned pointer aliases connection
// scratch reused by the next Recv; callers needing the data past that must
// copy it.
func (c *Conn) Recv() (*Response, error) {
	if c.err != nil {
		return nil, c.err
	}
	body, err := ReadFrame(c.br, c.rbuf)
	if err != nil {
		return nil, err
	}
	c.rbuf = body
	if err := DecodeResponse(body, &c.resp); err != nil {
		return nil, err
	}
	return &c.resp, nil
}

// roundTrip sends the one buffered request and reads its response, checking
// the echoed id.
func (c *Conn) roundTrip(id uint64) (*Response, error) {
	if err := c.Flush(); err != nil {
		return nil, err
	}
	resp, err := c.Recv()
	if err != nil {
		return nil, err
	}
	if resp.ID != id {
		return nil, fmt.Errorf("server: response id %d for request %d", resp.ID, id)
	}
	return resp, nil
}

// Get fetches one key synchronously.
func (c *Conn) Get(key uint64) (*Response, error) { return c.roundTrip(c.SendGet(key)) }

// Put binds one key synchronously.
func (c *Conn) Put(key, val uint64) (*Response, error) { return c.roundTrip(c.SendPut(key, val)) }

// Txn executes one multi-op transaction synchronously.
func (c *Conn) Txn(ops []TxnOp) (*Response, error) { return c.roundTrip(c.SendTxn(ops)) }
