package server

import (
	"sync"

	"medley/internal/txengine"
)

// The read fast lane serves read-only work — Gets and all-Read Txn batches —
// from the engine's MVCC snapshot tier instead of running OCC transactions.
// Snapshot reads never validate, never abort, never retry; and because one
// pinned cut can answer any number of read closures, pending reads from many
// connections are combined into a single tier pin.
//
// The combining discipline is flat combining: each connection submits its
// read run as a job to its assigned stripe; the first submitter to find the
// stripe idle becomes the leader, drains every pending job under one
// SnapshotReadBatch cut, keeps draining while new jobs arrive, then hands
// the stripe back. Followers just enqueue and wait — no per-job engine
// interaction, no token admission. Leadership exclusivity also makes the
// stripe's dedicated engine session safe: only the leader touches it, and
// the mutex hands it off with full ordering.

// readJob is one connection's pending read run. Each connection reuses a
// single job value (it is embedded in proc), so the lane allocates nothing
// per submission. The submitter owns batch/results/minTS before submit and
// after done; the leader owns them in between.
type readJob struct {
	batch   []pendReq    // the read run: OpGets, or one all-Read OpTxn
	results []ReadResult // one entry per read, in request order
	// minTS is the submitting connection's last write timestamp. If the
	// pinned cut hasn't reached it (a concurrent writer elsewhere holds the
	// seal back), serving would violate read-your-writes: the leader sets
	// fallback instead and the submitter re-executes the run through OCC.
	minTS    uint64
	fallback bool
	done     chan struct{} // buffered(1); leader signals completion
}

// combiner is one read-lane stripe: a flat-combining point with a dedicated
// engine session used only by the current leader.
type combiner struct {
	s  *Server
	tx txengine.Tx

	mu      sync.Mutex
	active  bool       // a leader is draining
	pending []*readJob // jobs awaiting the leader
	scratch []*readJob // spare backing array; ping-pongs with pending
}

// readLane is the set of combiner stripes. Connections are assigned to
// stripes round-robin at accept time: fewer stripes combine harder, more
// stripes admit more read parallelism.
type readLane struct {
	stripes []*combiner
}

// newReadLane builds n stripes, or returns nil when the engine's sessions
// don't implement batched snapshot reads (CapSnapshot advertised but the
// decorator stack hides the tier — then reads just use the OCC path).
func newReadLane(s *Server, n int) *readLane {
	l := &readLane{stripes: make([]*combiner, 0, n)}
	for i := 0; i < n; i++ {
		tx := s.eng.NewWorker(int(s.nextTid.Add(1)))
		if _, ok := tx.(txengine.SnapshotBatchReader); !ok {
			return nil
		}
		l.stripes = append(l.stripes, &combiner{s: s, tx: tx})
	}
	return l
}

func (l *readLane) stripeFor(seq uint64) *combiner {
	return l.stripes[seq%uint64(len(l.stripes))]
}

// submit hands a job to the stripe and blocks until it is served (or marked
// fallback). The caller that finds the stripe idle becomes the leader and
// drains everyone, including itself.
func (cb *combiner) submit(j *readJob) {
	cb.mu.Lock()
	cb.pending = append(cb.pending, j)
	if cb.active {
		cb.mu.Unlock()
		<-j.done
		return
	}
	cb.active = true
	for {
		jobs := cb.pending
		if len(jobs) == 0 {
			cb.active = false
			cb.mu.Unlock()
			break
		}
		cb.pending = cb.scratch[:0]
		cb.mu.Unlock()
		cb.run(jobs)
		for i, jb := range jobs {
			jb.done <- struct{}{}
			jobs[i] = nil // release: don't pin dead connections' jobs
		}
		cb.scratch = jobs[:0]
		cb.mu.Lock()
	}
	<-j.done
}

// run serves one wakeup's worth of jobs from a single pinned snapshot cut.
func (cb *combiner) run(jobs []*readJob) {
	served := uint64(0)
	cut, ok := txengine.SnapshotReadBatch(cb.tx, len(jobs), func(i int, cut uint64) {
		j := jobs[i]
		if j.minTS > cut {
			j.fallback = true
			return
		}
		j.results = j.results[:0]
		for bi := range j.batch {
			r := &j.batch[bi].req
			if r.Op == OpGet {
				v, found := cb.s.m.Get(cb.tx, r.Key)
				j.results = append(j.results, ReadResult{Found: found, Val: v})
			} else {
				for oi := range r.Ops {
					v, found := cb.s.m.Get(cb.tx, r.Ops[oi].Key)
					j.results = append(j.results, ReadResult{Found: found, Val: v})
				}
			}
		}
		served += uint64(len(j.batch))
	})
	if !ok {
		// No snapshot tier behind this session after all; OCC serves them.
		for _, j := range jobs {
			j.fallback = true
		}
		return
	}
	_ = cut
	cb.s.cSnapServed.Add(served)
	if len(jobs) > 1 {
		cb.s.cCombined.Add(served)
	}
}
