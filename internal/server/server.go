package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"medley/internal/txengine"
)

// Options tunes a Server. The zero value is serviceable: coalescing on,
// admission sized to the host, a half-second drain grace.
type Options struct {
	// BatchMax is the most adjacent single-op requests (OpGet/OpPut) from
	// one connection the scheduler coalesces into a single hinted
	// transaction (0: DefaultBatchMax; 1: coalescing off). Coalescing
	// amortizes admission, scheduling, and commit overhead across the
	// batch; because members come from one connection's FIFO, program
	// order per connection is preserved.
	BatchMax int
	// Tokens is the admission controller's token count: the number of
	// request batches allowed to execute on the engine concurrently
	// (0: 4×GOMAXPROCS). Requests beyond it wait up to AdmitWait and are
	// then shed with StatusRetry — bounded queueing instead of collapse.
	Tokens int
	// AdmitWait is how long a batch may wait for an admission token before
	// being shed (0: DefaultAdmitWait; negative: shed immediately).
	AdmitWait time.Duration
	// QueueDepth is the per-connection decoded-request queue — the server
	// side of the pipelining window (0: DefaultQueueDepth). A full queue
	// blocks the connection's reader, pushing back on the client through
	// TCP flow control rather than buffering unboundedly.
	QueueDepth int
	// DrainGrace bounds how long Drain waits for each connection's
	// in-flight requests (0: DefaultDrainGrace). Requests arriving after
	// drain begins are rejected with StatusDraining.
	DrainGrace time.Duration
	// MapSpec shapes the hosted map (zero: hash, 1<<16 buckets). Recovery
	// flows must rebuild with the same spec.
	MapSpec txengine.MapSpec
	// CloseEngine closes the engine after Drain completes. Leave false
	// when the caller owns the engine (tests that crash and recover it).
	CloseEngine bool
}

// Option defaults.
const (
	DefaultBatchMax   = 16
	DefaultAdmitWait  = 2 * time.Millisecond
	DefaultQueueDepth = 128
	DefaultDrainGrace = 500 * time.Millisecond
)

func (o Options) batchMax() int {
	if o.BatchMax > 0 {
		return o.BatchMax
	}
	return DefaultBatchMax
}

func (o Options) tokens() int {
	if o.Tokens > 0 {
		return o.Tokens
	}
	return 4 * runtime.GOMAXPROCS(0)
}

func (o Options) queueDepth() int {
	if o.QueueDepth > 0 {
		return o.QueueDepth
	}
	return DefaultQueueDepth
}

func (o Options) admitWait() time.Duration {
	if o.AdmitWait != 0 {
		return o.AdmitWait
	}
	return DefaultAdmitWait
}

func (o Options) drainGrace() time.Duration {
	if o.DrainGrace > 0 {
		return o.DrainGrace
	}
	return DefaultDrainGrace
}

func (o Options) mapSpec() txengine.MapSpec {
	if o.MapSpec == (txengine.MapSpec{}) {
		return txengine.MapSpec{Kind: txengine.KindHash, Buckets: 1 << 16}
	}
	return o.MapSpec
}

// Counters are the server-level counters (the engine's transactional
// counters stay on Engine.Stats).
type Counters struct {
	Conns      uint64 // connections accepted
	Requests   uint64 // requests decoded
	Shed       uint64 // requests shed with StatusRetry (admission)
	Drained    uint64 // requests rejected with StatusDraining
	Batches    uint64 // coalesced multi-op batches executed
	BatchedOps uint64 // single-op requests executed inside those batches
}

// Server serves the wire protocol over one hosted transactional map on one
// engine. Each connection gets a dedicated engine session (Tx handle) and a
// FIFO request queue; responses are written in request order.
type Server struct {
	eng  txengine.Engine
	m    txengine.Map[uint64]
	opts Options

	tokens   chan struct{}
	draining atomic.Bool
	doneCh   chan struct{}
	drainOne sync.Once

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup

	nextTid atomic.Int64

	cConns, cRequests, cShed, cDrained, cBatches, cBatchedOps atomic.Uint64
}

// New builds a server over eng, creating the hosted map from opts.MapSpec.
// The engine must support dynamic transactions: OpTxn reads feed TxnAdd
// arithmetic, and coalesced batches return real in-transaction values.
func New(eng txengine.Engine, opts Options) (*Server, error) {
	if !eng.Caps().Has(txengine.CapTx | txengine.CapDynamicTx) {
		return nil, fmt.Errorf("server: engine %s needs dynamic transactions: %w", eng.Name(), txengine.ErrUnsupported)
	}
	m, err := eng.NewUintMap(opts.mapSpec())
	if err != nil {
		return nil, fmt.Errorf("server: hosted map: %w", err)
	}
	s := &Server{
		eng:    eng,
		m:      m,
		opts:   opts,
		tokens: make(chan struct{}, opts.tokens()),
		doneCh: make(chan struct{}),
		conns:  map[net.Conn]struct{}{},
	}
	for i := 0; i < opts.tokens(); i++ {
		s.tokens <- struct{}{}
	}
	return s, nil
}

// Map exposes the hosted map (recovery audits read through it in-process).
func (s *Server) Map() txengine.Map[uint64] { return s.m }

// Engine exposes the served engine.
func (s *Server) Engine() txengine.Engine { return s.eng }

// Counters snapshots the server-level counters.
func (s *Server) Counters() Counters {
	return Counters{
		Conns:      s.cConns.Load(),
		Requests:   s.cRequests.Load(),
		Shed:       s.cShed.Load(),
		Drained:    s.cDrained.Load(),
		Batches:    s.cBatches.Load(),
		BatchedOps: s.cBatchedOps.Load(),
	}
}

// Serve accepts connections on ln until Drain (returns nil) or a listener
// failure (returns the error).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		ln.Close()
		return nil
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		// Registration is under the same lock Drain flips the flag under,
		// so every connection either registers before the drain critical
		// section (and gets its I/O deadline set there) or observes
		// draining here and is turned away.
		s.mu.Lock()
		if s.draining.Load() {
			s.mu.Unlock()
			c.Close()
			continue
		}
		s.wg.Add(1)
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.cConns.Add(1)
		go s.handle(c)
	}
}

// Drain gracefully shuts the server down: stop accepting, reject requests
// that arrive from now on with StatusDraining, let every connection finish
// the requests it already pipelined (bounded by DrainGrace), then make the
// engine durable (Persister.Sync) so every acknowledged commit survives a
// subsequent crash, and close it if Options.CloseEngine. Safe to call from
// any goroutine and more than once; every call blocks until the drain
// completes.
func (s *Server) Drain() {
	s.drainOne.Do(func() {
		s.mu.Lock()
		s.draining.Store(true)
		if s.ln != nil {
			s.ln.Close()
		}
		deadline := time.Now().Add(s.opts.drainGrace())
		for c := range s.conns {
			c.SetDeadline(deadline)
		}
		s.mu.Unlock()
		s.wg.Wait()
		if p, ok := s.eng.(txengine.Persister); ok && len(p.Devices()) > 0 {
			p.Sync()
		}
		if s.opts.CloseEngine {
			s.eng.Close()
		}
		close(s.doneCh)
	})
	<-s.doneCh
}

// pendReq is one decoded request in a connection's queue. shed marks
// requests that arrived after drain began: they flow through the processor
// (preserving response order) but are answered StatusDraining unexecuted.
type pendReq struct {
	req  Request
	shed bool
}

func (s *Server) handle(c net.Conn) {
	defer s.wg.Done()
	defer c.Close()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()
	queue := make(chan pendReq, s.opts.queueDepth())
	go s.readLoop(c, queue)
	s.procLoop(c, queue)
}

// readLoop decodes frames into the connection's queue. Any read or decode
// error ends the connection's input (the processor still answers everything
// already queued); a full queue blocks here, which backpressures the client
// through TCP flow control.
func (s *Server) readLoop(c net.Conn, queue chan<- pendReq) {
	defer close(queue)
	br := bufio.NewReaderSize(c, 64<<10)
	var buf []byte
	for {
		body, err := ReadFrame(br, buf)
		if err != nil {
			return
		}
		buf = body
		req, err := DecodeRequest(body)
		if err != nil {
			return
		}
		s.cRequests.Add(1)
		queue <- pendReq{req: req, shed: s.draining.Load()}
	}
}

// procLoop is the connection's processor: it dequeues requests, coalesces
// adjacent single-ops into hinted transactions, runs them through admission
// control on the connection's dedicated engine session, and writes responses
// in request order. The output writer is flushed only when no request is
// ready — pipelined bursts pay one syscall per burst, not per response.
func (s *Server) procLoop(c net.Conn, queue <-chan pendReq) {
	bw := bufio.NewWriterSize(c, 64<<10)
	tx := s.eng.NewWorker(int(s.nextTid.Add(1)))
	batchMax := s.opts.batchMax()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	var (
		batch    []pendReq
		keys     []uint64
		results  []ReadResult
		wbuf     []byte
		leftover *pendReq
		holdover pendReq
	)
	for {
		var first pendReq
		if leftover != nil {
			first, leftover = *leftover, nil
		} else {
			// Nothing collected: flush buffered responses before blocking.
			if bw.Buffered() > 0 {
				if bw.Flush() != nil {
					s.discard(queue)
					return
				}
			}
			var ok bool
			if first, ok = <-queue; !ok {
				return
			}
		}
		batch = append(batch[:0], first)
		closed := false
		if !first.shed && first.req.Op != OpTxn && batchMax > 1 {
		collect:
			for len(batch) < batchMax {
				select {
				case r, ok := <-queue:
					if !ok {
						closed = true
						break collect
					}
					if r.shed || r.req.Op == OpTxn {
						holdover = r
						leftover = &holdover
						break collect
					}
					batch = append(batch, r)
				default:
					break collect
				}
			}
		}
		keys, results, wbuf = s.exec(tx, batch, timer, keys, results, wbuf)
		if len(wbuf) > 0 {
			if _, err := bw.Write(wbuf); err != nil {
				s.discard(queue)
				return
			}
			wbuf = wbuf[:0]
		}
		if closed {
			bw.Flush()
			return
		}
	}
}

// discard drains a connection's queue after its writer died, so the reader
// (possibly blocked on a full queue) can observe its own error and exit.
func (s *Server) discard(queue <-chan pendReq) {
	for range queue {
	}
}

// exec runs one batch — either a single request or several coalesced
// single-ops — through admission control and appends the responses to wbuf.
// The scratch slices are returned for reuse.
func (s *Server) exec(tx txengine.Tx, batch []pendReq, timer *time.Timer, keys []uint64, results []ReadResult, wbuf []byte) ([]uint64, []ReadResult, []byte) {
	if batch[0].shed {
		s.cDrained.Add(uint64(len(batch)))
		for i := range batch {
			wbuf = AppendResponse(wbuf, &Response{ID: batch[i].req.ID, Op: batch[i].req.Op, Status: StatusDraining})
		}
		return keys, results, wbuf
	}
	// Admission: take a token, waiting at most admitWait; shed the whole
	// batch with StatusRetry rather than queueing without bound.
	select {
	case <-s.tokens:
	default:
		wait := s.opts.admitWait()
		if wait < 0 {
			return keys, results, s.shed(batch, wbuf)
		}
		timer.Reset(wait)
		select {
		case <-s.tokens:
			if !timer.Stop() {
				<-timer.C
			}
		case <-timer.C:
			return keys, results, s.shed(batch, wbuf)
		}
	}
	var err error
	if len(batch) == 1 {
		if batch[0].req.Op == OpTxn {
			results, err = s.execTxn(tx, &batch[0].req, keys[:0], results)
		} else {
			results = s.execSingle(tx, &batch[0].req, results)
		}
	} else {
		results, err = s.execBatch(tx, batch, keys[:0], results)
	}
	s.tokens <- struct{}{}
	switch {
	case err == nil:
		for i := range batch {
			r := &batch[i].req
			resp := Response{ID: r.ID, Op: r.Op, Status: StatusOK}
			if r.Op == OpTxn {
				resp.Reads = results
			} else {
				resp.Found, resp.Val = results[i].Found, results[i].Val
			}
			wbuf = AppendResponse(wbuf, &resp)
		}
	case errors.Is(err, txengine.ErrBusinessAbort):
		for i := range batch {
			wbuf = AppendResponse(wbuf, &Response{ID: batch[i].req.ID, Op: batch[i].req.Op, Status: StatusAborted})
		}
	default:
		for i := range batch {
			wbuf = AppendResponse(wbuf, &Response{ID: batch[i].req.ID, Op: batch[i].req.Op, Status: StatusErr, Err: err.Error()})
		}
	}
	return keys, results, wbuf
}

func (s *Server) shed(batch []pendReq, wbuf []byte) []byte {
	s.cShed.Add(uint64(len(batch)))
	for i := range batch {
		wbuf = AppendResponse(wbuf, &Response{ID: batch[i].req.ID, Op: batch[i].req.Op, Status: StatusRetry})
	}
	return wbuf
}

// execSingle runs one Get/Put as a standalone auto-committed operation —
// the cheapest execution every engine offers.
func (s *Server) execSingle(tx txengine.Tx, r *Request, results []ReadResult) []ReadResult {
	results = results[:0]
	if r.Op == OpGet {
		v, ok := s.m.Get(tx, r.Key)
		return append(results, ReadResult{Found: ok, Val: v})
	}
	prev, had := s.m.Put(tx, r.Key, r.Val)
	return append(results, ReadResult{Found: had, Val: prev})
}

// execBatch coalesces adjacent single-ops from one connection into a single
// transaction with every key pre-declared, so sharded engines lock the
// batch's whole shard set (or latch exactly its keys) up front. One
// admission token, one commit, one response flush for the whole batch.
func (s *Server) execBatch(tx txengine.Tx, batch []pendReq, keys []uint64, results []ReadResult) ([]ReadResult, error) {
	for i := range batch {
		keys = append(keys, batch[i].req.Key)
	}
	txengine.HintKeys(tx, keys...)
	results = results[:0]
	err := tx.Run(func() error {
		results = results[:0]
		for i := range batch {
			r := &batch[i].req
			if r.Op == OpGet {
				v, ok := s.m.Get(tx, r.Key)
				results = append(results, ReadResult{Found: ok, Val: v})
			} else {
				prev, had := s.m.Put(tx, r.Key, r.Val)
				results = append(results, ReadResult{Found: had, Val: prev})
			}
		}
		return nil
	})
	if err == nil {
		s.cBatches.Add(1)
		s.cBatchedOps.Add(uint64(len(batch)))
	}
	return results, err
}

// execTxn runs one OpTxn atomically, keys pre-declared. TxnAdd underflow
// business-aborts the whole transaction (StatusAborted to the client,
// nothing applied).
func (s *Server) execTxn(tx txengine.Tx, r *Request, keys []uint64, results []ReadResult) ([]ReadResult, error) {
	for _, op := range r.Ops {
		keys = append(keys, op.Key)
	}
	txengine.HintKeys(tx, keys...)
	results = results[:0]
	err := tx.Run(func() error {
		results = results[:0]
		for _, op := range r.Ops {
			switch op.Kind {
			case TxnRead:
				v, ok := s.m.Get(tx, op.Key)
				results = append(results, ReadResult{Found: ok, Val: v})
			case TxnWrite:
				s.m.Put(tx, op.Key, op.Arg)
			case TxnAdd:
				v, _ := s.m.Get(tx, op.Key)
				delta := int64(op.Arg)
				if delta < 0 && v < uint64(-delta) {
					return tx.Abort()
				}
				s.m.Put(tx, op.Key, v+uint64(delta))
			}
		}
		return nil
	})
	return results, err
}
