package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"medley/internal/chaos"
	"medley/internal/txengine"
)

// Fault-injection points on the wire path. server.frame.read fires before
// each frame read (error faults drop the connection as a failed read would);
// server.frame.write fires at each response write — armed with a torn fault
// it pushes a strict prefix of the encoded frames onto the wire and kills
// the connection mid-frame, which is how the client retry tests manufacture
// torn frames and forced reconnects.
var (
	cpFrameRead  = chaos.At("server.frame.read")
	cpFrameWrite = chaos.At("server.frame.write")
)

// Options tunes a Server. The zero value is serviceable: coalescing on,
// admission sized to the host, the read fast lane on (where the engine
// supports it), a half-second drain grace.
type Options struct {
	// BatchMax is the most adjacent single-op requests (OpGet/OpPut) from
	// one connection the scheduler coalesces into a single hinted
	// transaction (0: DefaultBatchMax; 1: coalescing off). Coalescing
	// amortizes admission, scheduling, and commit overhead across the
	// batch; because members come from one connection's FIFO, program
	// order per connection is preserved.
	BatchMax int
	// Tokens is the admission controller's token count: the number of
	// request batches allowed to execute on the engine concurrently
	// (0: 4×GOMAXPROCS). Requests beyond it wait up to AdmitWait and are
	// then shed with StatusRetry — bounded queueing instead of collapse.
	// Read-lane batches bypass the tokens: the combiner executes at most
	// one batch per stripe at a time, a strictly tighter bound.
	Tokens int
	// AdmitWait is how long a batch may wait for an admission token before
	// being shed (0: DefaultAdmitWait; negative: shed immediately).
	AdmitWait time.Duration
	// QueueDepth is the per-connection decoded-request queue — the server
	// side of the pipelining window (0: DefaultQueueDepth). A full queue
	// blocks the connection's reader, pushing back on the client through
	// TCP flow control rather than buffering unboundedly.
	QueueDepth int
	// DrainGrace bounds how long Drain waits for each connection's
	// in-flight requests (0: DefaultDrainGrace). Requests arriving after
	// drain begins are rejected with StatusDraining.
	DrainGrace time.Duration
	// MapSpec shapes the hosted map (zero: hash, 1<<16 buckets). Recovery
	// flows must rebuild with the same spec.
	MapSpec txengine.MapSpec
	// CloseEngine closes the engine after Drain completes. Leave false
	// when the caller owns the engine (tests that crash and recover it).
	CloseEngine bool
	// NoReadLane disables the snapshot read fast lane even on CapSnapshot
	// engines: every request executes through the OCC path, as before the
	// lane existed. The A/B measurement knob (-noreadlane in txserver) and
	// a kill switch. Engines without CapSnapshot never have the lane.
	NoReadLane bool
	// ReadCombiners is the read lane's combiner stripe count (0: a host-
	// sized default). Each stripe drains the pending reads of its assigned
	// connections into one pinned snapshot cut per wakeup; fewer stripes
	// combine more aggressively, more stripes admit more read parallelism.
	ReadCombiners int
	// IdleTimeout closes a connection whose next frame does not arrive
	// within it (0: no idle limit), so a hung or vanished client cannot pin
	// its engine session and reader/processor goroutines forever. The
	// deadline is re-armed before each frame read and suspended once drain
	// begins — drain's own absolute deadline (DrainGrace) takes over.
	IdleTimeout time.Duration
	// WriteTimeout bounds each response write/flush (0: no limit): a client
	// that stops reading while the server still owes it responses is cut
	// off instead of blocking the processor on TCP backpressure forever.
	// Suspended during drain, like IdleTimeout.
	WriteTimeout time.Duration
}

// Option defaults.
const (
	DefaultBatchMax   = 16
	DefaultAdmitWait  = 2 * time.Millisecond
	DefaultQueueDepth = 128
	DefaultDrainGrace = 500 * time.Millisecond
)

func (o Options) batchMax() int {
	if o.BatchMax > 0 {
		return o.BatchMax
	}
	return DefaultBatchMax
}

func (o Options) tokens() int {
	if o.Tokens > 0 {
		return o.Tokens
	}
	return 4 * runtime.GOMAXPROCS(0)
}

func (o Options) queueDepth() int {
	if o.QueueDepth > 0 {
		return o.QueueDepth
	}
	return DefaultQueueDepth
}

func (o Options) admitWait() time.Duration {
	if o.AdmitWait != 0 {
		return o.AdmitWait
	}
	return DefaultAdmitWait
}

func (o Options) drainGrace() time.Duration {
	if o.DrainGrace > 0 {
		return o.DrainGrace
	}
	return DefaultDrainGrace
}

func (o Options) readCombiners() int {
	if o.ReadCombiners > 0 {
		return o.ReadCombiners
	}
	return max(1, min(4, runtime.GOMAXPROCS(0)/4))
}

func (o Options) mapSpec() txengine.MapSpec {
	if o.MapSpec == (txengine.MapSpec{}) {
		return txengine.MapSpec{Kind: txengine.KindHash, Buckets: 1 << 16}
	}
	return o.MapSpec
}

// Counters are the server-level counters (the engine's transactional
// counters stay on Engine.Stats).
type Counters struct {
	Conns      uint64 // connections accepted
	Requests   uint64 // requests decoded
	Shed       uint64 // requests shed with StatusRetry (admission)
	Drained    uint64 // requests rejected with StatusDraining
	Batches    uint64 // coalesced multi-op batches executed
	BatchedOps uint64 // single-op requests executed inside those batches
	SnapServed uint64 // requests answered from the snapshot read lane
	Combined   uint64 // lane requests that shared their pinned cut with another connection
	OCCServed  uint64 // requests answered StatusOK through the OCC path
	IdleClosed uint64 // connections closed by the idle-timeout read deadline
}

// Server serves the wire protocol over one hosted transactional map on one
// engine. Each connection gets a dedicated engine session (Tx handle) and a
// FIFO request queue; responses are written in request order. On engines
// with CapSnapshot, read-only work — Gets and all-Read Txn batches — is
// routed through the read fast lane (see readlane.go) unless
// Options.NoReadLane.
type Server struct {
	eng  txengine.Engine
	m    txengine.Map[uint64]
	opts Options
	lane *readLane // nil: OCC path only

	tokens   chan struct{}
	draining atomic.Bool
	doneCh   chan struct{}
	drainOne sync.Once

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup

	nextTid atomic.Int64

	cConns, cRequests, cShed, cDrained, cBatches, cBatchedOps atomic.Uint64
	cSnapServed, cCombined, cOCCServed, cIdleClosed           atomic.Uint64
}

// New builds a server over eng, creating the hosted map from opts.MapSpec.
// The engine must support dynamic transactions: OpTxn reads feed TxnAdd
// arithmetic, and coalesced batches return real in-transaction values.
func New(eng txengine.Engine, opts Options) (*Server, error) {
	if !eng.Caps().Has(txengine.CapTx | txengine.CapDynamicTx) {
		return nil, fmt.Errorf("server: engine %s needs dynamic transactions: %w", eng.Name(), txengine.ErrUnsupported)
	}
	m, err := eng.NewUintMap(opts.mapSpec())
	if err != nil {
		return nil, fmt.Errorf("server: hosted map: %w", err)
	}
	s := &Server{
		eng:    eng,
		m:      m,
		opts:   opts,
		tokens: make(chan struct{}, opts.tokens()),
		doneCh: make(chan struct{}),
		conns:  map[net.Conn]struct{}{},
	}
	for i := 0; i < opts.tokens(); i++ {
		s.tokens <- struct{}{}
	}
	if !opts.NoReadLane && eng.Caps().Has(txengine.CapSnapshot) {
		s.lane = newReadLane(s, opts.readCombiners())
	}
	return s, nil
}

// Map exposes the hosted map (recovery audits read through it in-process).
func (s *Server) Map() txengine.Map[uint64] { return s.m }

// Engine exposes the served engine.
func (s *Server) Engine() txengine.Engine { return s.eng }

// ReadLaneEnabled reports whether the snapshot read fast lane is active.
func (s *Server) ReadLaneEnabled() bool { return s.lane != nil }

// Counters snapshots the server-level counters.
func (s *Server) Counters() Counters {
	return Counters{
		Conns:      s.cConns.Load(),
		Requests:   s.cRequests.Load(),
		Shed:       s.cShed.Load(),
		Drained:    s.cDrained.Load(),
		Batches:    s.cBatches.Load(),
		BatchedOps: s.cBatchedOps.Load(),
		SnapServed: s.cSnapServed.Load(),
		Combined:   s.cCombined.Load(),
		OCCServed:  s.cOCCServed.Load(),
		IdleClosed: s.cIdleClosed.Load(),
	}
}

// Serve accepts connections on ln until Drain (returns nil) or a listener
// failure (returns the error).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		ln.Close()
		return nil
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		// Registration is under the same lock Drain flips the flag under,
		// so every connection either registers before the drain critical
		// section (and gets its I/O deadline set there) or observes
		// draining here and is turned away.
		s.mu.Lock()
		if s.draining.Load() {
			s.mu.Unlock()
			c.Close()
			continue
		}
		s.wg.Add(1)
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.cConns.Add(1)
		go s.handle(c)
	}
}

// Drain gracefully shuts the server down: stop accepting, reject requests
// that arrive from now on with StatusDraining, let every connection finish
// the requests it already pipelined (bounded by DrainGrace), then make the
// engine durable (Persister.Sync) so every acknowledged commit survives a
// subsequent crash, and close it if Options.CloseEngine. Safe to call from
// any goroutine and more than once; every call blocks until the drain
// completes.
func (s *Server) Drain() {
	s.drainOne.Do(func() {
		s.mu.Lock()
		s.draining.Store(true)
		if s.ln != nil {
			s.ln.Close()
		}
		deadline := time.Now().Add(s.opts.drainGrace())
		for c := range s.conns {
			c.SetDeadline(deadline)
		}
		s.mu.Unlock()
		s.wg.Wait()
		if p, ok := s.eng.(txengine.Persister); ok && len(p.Devices()) > 0 {
			p.Sync()
		}
		if s.opts.CloseEngine {
			s.eng.Close()
		}
		close(s.doneCh)
	})
	<-s.doneCh
}

// pendReq is one decoded request in a connection's queue. shed marks
// requests that arrived after drain began: they flow through the processor
// (preserving response order) but are answered StatusDraining unexecuted.
// read marks lane-eligible requests (OpGet, or OpTxn whose ops are all
// TxnRead), classified once at decode time. ops is the pooled backing store
// of req.Ops, recycled by the processor once the response is encoded.
type pendReq struct {
	req  Request
	ops  *[]TxnOp
	shed bool
	read bool
}

// opsPool recycles OpTxn op slices between the reader (which decodes into
// them) and the processor (which returns them after responding), so a
// steady transaction stream allocates no per-request op storage.
var opsPool = sync.Pool{New: func() any { s := make([]TxnOp, 0, 16); return &s }}

// allRead reports whether every op of an OpTxn is a TxnRead.
func allRead(ops []TxnOp) bool {
	for i := range ops {
		if ops[i].Kind != TxnRead {
			return false
		}
	}
	return true
}

func (s *Server) handle(c net.Conn) {
	defer s.wg.Done()
	defer c.Close()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()
	queue := make(chan pendReq, s.opts.queueDepth())
	go s.readLoop(c, queue)
	s.procLoop(c, queue)
}

// readLoop decodes frames into the connection's queue. Any read or decode
// error ends the connection's input (the processor still answers everything
// already queued); a full queue blocks here, which backpressures the client
// through TCP flow control. With Options.IdleTimeout set, the read deadline
// is re-armed per frame so an idle connection is closed rather than pinned;
// once drain begins the re-arming stops and Drain's absolute deadline rules
// (a reset racing the drain flag extends that one connection's bound by at
// most the idle timeout).
func (s *Server) readLoop(c net.Conn, queue chan<- pendReq) {
	defer close(queue)
	br := bufio.NewReaderSize(c, 64<<10)
	idle := s.opts.IdleTimeout
	var buf []byte
	for {
		if idle > 0 && !s.draining.Load() {
			c.SetReadDeadline(time.Now().Add(idle))
		}
		if cpFrameRead.Hit() != nil {
			return // injected input fault: the connection drops as on a failed read
		}
		body, err := ReadFrame(br, buf)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() && !s.draining.Load() {
				s.cIdleClosed.Add(1)
			}
			return
		}
		buf = body
		pr := pendReq{}
		if len(body) > reqHeaderLen && body[8] == OpTxn {
			// Transactions decode into pooled op storage; the processor
			// returns it once the response is encoded.
			pr.ops = opsPool.Get().(*[]TxnOp)
			pr.req, err = DecodeRequestReuse(body, *pr.ops)
			*pr.ops = pr.req.Ops[:0:cap(pr.req.Ops)]
		} else {
			pr.req, err = DecodeRequest(body)
		}
		if err != nil {
			if pr.ops != nil {
				opsPool.Put(pr.ops)
			}
			return
		}
		pr.read = pr.req.Op == OpGet || (pr.req.Op == OpTxn && allRead(pr.req.Ops))
		s.cRequests.Add(1)
		pr.shed = s.draining.Load()
		queue <- pr
	}
}

// proc is one connection's processor state: the dedicated engine session,
// the read-lane stripe and reusable job, and every per-connection scratch
// buffer the hot path reuses instead of allocating — request batches, hint
// keys, read results, the encoded-response buffer, and a Response value
// whose address is stable so encoding never escapes to the heap.
type proc struct {
	s     *Server
	tx    txengine.Tx
	comb  *combiner // read-lane stripe; nil when the lane is off
	timer *time.Timer

	batch   []pendReq
	keys    []uint64
	results []ReadResult
	wbuf    []byte
	resp    Response
	job     readJob

	// lastWriteTS is the engine commit timestamp of this connection's most
	// recent write; a snapshot cut must reach it before the lane may serve
	// this connection's reads (read-your-writes — see execLane).
	lastWriteTS uint64
}

// procLoop is the connection's processor: it dequeues requests, coalesces
// adjacent single-ops into batches, classifies them read vs write, executes
// read runs through the snapshot lane and everything else through admission
// control on the connection's dedicated engine session, and writes responses
// in request order. The output writer is flushed only when no request is
// ready — pipelined bursts pay one syscall per burst, not per response.
func (s *Server) procLoop(c net.Conn, queue <-chan pendReq) {
	bw := bufio.NewWriterSize(c, 64<<10)
	p := &proc{s: s, tx: s.eng.NewWorker(int(s.nextTid.Add(1)))}
	if s.lane != nil {
		p.comb = s.lane.stripeFor(s.cConns.Load())
		p.job.done = make(chan struct{}, 1)
	}
	p.timer = time.NewTimer(time.Hour)
	if !p.timer.Stop() {
		<-p.timer.C
	}
	batchMax := s.opts.batchMax()
	var (
		leftover *pendReq
		holdover pendReq
	)
	for {
		var first pendReq
		if leftover != nil {
			first, leftover = *leftover, nil
		} else {
			// Nothing collected: flush buffered responses before blocking.
			if bw.Buffered() > 0 {
				if s.flushConn(c, bw) != nil {
					s.discard(queue)
					return
				}
			}
			var ok bool
			if first, ok = <-queue; !ok {
				return
			}
		}
		p.batch = append(p.batch[:0], first)
		closed := false
		if !first.shed && first.req.Op != OpTxn && batchMax > 1 {
		collect:
			for len(p.batch) < batchMax {
				select {
				case r, ok := <-queue:
					if !ok {
						closed = true
						break collect
					}
					if r.shed || r.req.Op == OpTxn {
						holdover = r
						leftover = &holdover
						break collect
					}
					p.batch = append(p.batch, r)
				default:
					break collect
				}
			}
		}
		p.exec(p.batch)
		if len(p.wbuf) > 0 {
			if !s.writeFrames(c, bw, p.wbuf) {
				s.discard(queue)
				return
			}
			p.wbuf = p.wbuf[:0]
		}
		if closed {
			s.flushConn(c, bw)
			return
		}
	}
}

// writeFrames pushes one exec round's encoded responses toward the wire,
// honoring the write deadline and the frame-write fault point. A false
// return means the connection must die: a real write error, an injected
// error, or an injected torn write — for the latter a strict prefix of the
// frame bytes is flushed onto the wire first, so the client sees a frame
// truncated mid-body, exactly what a connection dying mid-send produces.
func (s *Server) writeFrames(c net.Conn, bw *bufio.Writer, buf []byte) bool {
	if n, torn := cpFrameWrite.Torn(len(buf)); torn {
		bw.Write(buf[:n])
		bw.Flush()
		// Close now, not via handle's deferred Close: the caller's discard
		// waits on the readLoop, which would otherwise keep waiting on a
		// healthy socket whose client is itself waiting for the rest of
		// this frame.
		c.Close()
		return false
	}
	if cpFrameWrite.Hit() != nil {
		c.Close()
		return false
	}
	if wt := s.opts.WriteTimeout; wt > 0 && !s.draining.Load() {
		c.SetWriteDeadline(time.Now().Add(wt))
	}
	_, err := bw.Write(buf)
	return err == nil
}

// flushConn flushes buffered responses under the write deadline (suspended
// during drain, whose absolute deadline already bounds the connection).
func (s *Server) flushConn(c net.Conn, bw *bufio.Writer) error {
	if wt := s.opts.WriteTimeout; wt > 0 && !s.draining.Load() {
		c.SetWriteDeadline(time.Now().Add(wt))
	}
	return bw.Flush()
}

// discard drains a connection's queue after its writer died, so the reader
// (possibly blocked on a full queue) can observe its own error and exit.
func (s *Server) discard(queue <-chan pendReq) {
	for range queue {
	}
}

// exec answers one collected batch, appending the responses to p.wbuf in
// request order. With the read lane on, the batch is split into maximal
// contiguous runs of reads vs writes: read runs go through the snapshot
// combiner, everything else through the OCC path — executed strictly in
// order, so a read following this connection's write observes it. Pooled
// op storage is recycled at the end.
func (p *proc) exec(batch []pendReq) {
	switch {
	case batch[0].shed:
		p.s.cDrained.Add(uint64(len(batch)))
		for i := range batch {
			p.resp = Response{ID: batch[i].req.ID, Op: batch[i].req.Op, Status: StatusDraining}
			p.wbuf = AppendResponse(p.wbuf, &p.resp)
		}
	case p.comb == nil:
		p.execOCC(batch)
	default:
		for len(batch) > 0 {
			n := 1
			for n < len(batch) && batch[n].read == batch[0].read {
				n++
			}
			if batch[0].read {
				p.execLane(batch[:n])
			} else {
				p.execOCC(batch[:n])
			}
			batch = batch[n:]
		}
	}
	for i := range p.batch {
		if p.batch[i].ops != nil {
			opsPool.Put(p.batch[i].ops)
			p.batch[i].ops = nil
		}
	}
}

// execLane serves one read run — adjacent Gets, or a single all-Read Txn —
// through the connection's combiner stripe: the run is submitted as one job,
// a leader drains every stripe connection's pending jobs into a single
// pinned snapshot cut, and the results come back in j.results. A cut that
// trails this connection's own last write (a concurrent writer elsewhere is
// still sealing) falls the run back to the OCC path, preserving strict
// read-your-writes.
func (p *proc) execLane(run []pendReq) {
	j := &p.job
	j.batch = run
	j.minTS = p.lastWriteTS
	j.fallback = false
	p.comb.submit(j)
	if j.fallback {
		p.execOCC(run)
		return
	}
	ri := 0
	for i := range run {
		r := &run[i].req
		p.resp = Response{ID: r.ID, Op: r.Op, Status: StatusOK}
		if r.Op == OpTxn {
			p.resp.Reads = j.results[ri : ri+len(r.Ops)]
			ri += len(r.Ops)
		} else {
			p.resp.Found, p.resp.Val = j.results[ri].Found, j.results[ri].Val
			ri++
		}
		p.wbuf = AppendResponse(p.wbuf, &p.resp)
	}
}

// execOCC runs one batch — a single request or several coalesced single-ops
// — through admission control and the engine's transactional path, and
// appends the responses to p.wbuf.
func (p *proc) execOCC(batch []pendReq) {
	s := p.s
	// Admission: take a token, waiting at most admitWait; shed the whole
	// batch with StatusRetry rather than queueing without bound.
	select {
	case <-s.tokens:
	default:
		wait := s.opts.admitWait()
		if wait < 0 {
			p.shed(batch)
			return
		}
		p.timer.Reset(wait)
		select {
		case <-s.tokens:
			if !p.timer.Stop() {
				<-p.timer.C
			}
		case <-p.timer.C:
			p.shed(batch)
			return
		}
	}
	var err error
	if len(batch) == 1 {
		if batch[0].req.Op == OpTxn {
			err = p.execTxn(&batch[0].req)
		} else {
			p.execSingle(&batch[0].req)
		}
	} else {
		err = p.execBatch(batch)
	}
	s.tokens <- struct{}{}
	// Writes advance the connection's read-your-writes watermark; reads
	// leave it where it was (LastCommitTS only moves on a published write).
	p.lastWriteTS = txengine.LastCommitTS(p.tx)
	switch {
	case err == nil:
		s.cOCCServed.Add(uint64(len(batch)))
		for i := range batch {
			r := &batch[i].req
			p.resp = Response{ID: r.ID, Op: r.Op, Status: StatusOK}
			if r.Op == OpTxn {
				p.resp.Reads = p.results
			} else {
				p.resp.Found, p.resp.Val = p.results[i].Found, p.results[i].Val
			}
			p.wbuf = AppendResponse(p.wbuf, &p.resp)
		}
	case errors.Is(err, txengine.ErrBusinessAbort):
		for i := range batch {
			p.resp = Response{ID: batch[i].req.ID, Op: batch[i].req.Op, Status: StatusAborted}
			p.wbuf = AppendResponse(p.wbuf, &p.resp)
		}
	default:
		msg := err.Error()
		for i := range batch {
			p.resp = Response{ID: batch[i].req.ID, Op: batch[i].req.Op, Status: StatusErr, Err: msg}
			p.wbuf = AppendResponse(p.wbuf, &p.resp)
		}
	}
}

func (p *proc) shed(batch []pendReq) {
	p.s.cShed.Add(uint64(len(batch)))
	for i := range batch {
		p.resp = Response{ID: batch[i].req.ID, Op: batch[i].req.Op, Status: StatusRetry}
		p.wbuf = AppendResponse(p.wbuf, &p.resp)
	}
}

// execSingle runs one Get/Put as a standalone auto-committed operation —
// the cheapest execution every engine offers.
func (p *proc) execSingle(r *Request) {
	p.results = p.results[:0]
	if r.Op == OpGet {
		v, ok := p.s.m.Get(p.tx, r.Key)
		p.results = append(p.results, ReadResult{Found: ok, Val: v})
		return
	}
	prev, had := p.s.m.Put(p.tx, r.Key, r.Val)
	p.results = append(p.results, ReadResult{Found: had, Val: prev})
}

// execBatch coalesces adjacent single-ops from one connection into a single
// transaction with every key pre-declared, so sharded engines lock the
// batch's whole shard set (or latch exactly its keys) up front. One
// admission token, one commit, one response flush for the whole batch.
func (p *proc) execBatch(batch []pendReq) error {
	s := p.s
	p.keys = p.keys[:0]
	for i := range batch {
		p.keys = append(p.keys, batch[i].req.Key)
	}
	txengine.HintKeys(p.tx, p.keys...)
	p.results = p.results[:0]
	err := p.tx.Run(func() error {
		p.results = p.results[:0]
		for i := range batch {
			r := &batch[i].req
			if r.Op == OpGet {
				v, ok := s.m.Get(p.tx, r.Key)
				p.results = append(p.results, ReadResult{Found: ok, Val: v})
			} else {
				prev, had := s.m.Put(p.tx, r.Key, r.Val)
				p.results = append(p.results, ReadResult{Found: had, Val: prev})
			}
		}
		return nil
	})
	if err == nil {
		s.cBatches.Add(1)
		s.cBatchedOps.Add(uint64(len(batch)))
	}
	return err
}

// execTxn runs one OpTxn atomically, keys pre-declared. TxnAdd underflow
// business-aborts the whole transaction (StatusAborted to the client,
// nothing applied).
func (p *proc) execTxn(r *Request) error {
	s := p.s
	p.keys = p.keys[:0]
	for _, op := range r.Ops {
		p.keys = append(p.keys, op.Key)
	}
	txengine.HintKeys(p.tx, p.keys...)
	p.results = p.results[:0]
	return p.tx.Run(func() error {
		p.results = p.results[:0]
		for _, op := range r.Ops {
			switch op.Kind {
			case TxnRead:
				v, ok := s.m.Get(p.tx, op.Key)
				p.results = append(p.results, ReadResult{Found: ok, Val: v})
			case TxnWrite:
				s.m.Put(p.tx, op.Key, op.Arg)
			case TxnAdd:
				v, _ := s.m.Get(p.tx, op.Key)
				delta := int64(op.Arg)
				if delta < 0 && v < uint64(-delta) {
					return p.tx.Abort()
				}
				s.m.Put(p.tx, op.Key, v+uint64(delta))
			}
		}
		return nil
	})
}
