package server

import (
	"net"
	"sync"
	"testing"
	"time"

	"medley/internal/pnvm"
	"medley/internal/txengine"
)

// TestDrainZeroAckedLossPersistent is the served flavor of the recovery
// conformance suite: clients hammer a txmontage-sharded server with
// transfer transactions, a drain lands mid-traffic, and the engine's
// devices are then "crashed" and recovered on a fresh engine. Because Drain
// finishes in-flight requests and syncs a durable cut before returning,
// every transaction the server ACKNOWLEDGED must survive — proved by a
// per-transaction marker write — and the recovered balances must pass the
// transfer-conservation audit.
func TestDrainZeroAckedLossPersistent(t *testing.T) {
	const (
		shards    = 2
		conns     = 4
		accounts  = uint64(32)
		opening   = uint64(1_000)
		markerLo  = uint64(1 << 20) // marker keys live far above the accounts
		perWorker = uint64(1 << 22) // marker id space per connection (not a target: drain cuts workers off mid-stream)
	)
	spec := txengine.MapSpec{Kind: txengine.KindHash, Buckets: 1 << 10}

	eng, err := txengine.Build("txmontage-sharded", txengine.Config{
		Latencies: pnvm.DefaultLatencies(), Shards: shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, ok := eng.(txengine.Persister)
	if !ok || len(p.Devices()) != shards {
		t.Fatalf("engine is not a %d-device persister", shards)
	}
	devs := p.Devices()

	s, err := New(eng, Options{MapSpec: spec, CloseEngine: true, BatchMax: 8,
		DrainGrace: 300 * time.Millisecond})
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()
	addr := ln.Addr().String()

	// Fund the accounts; all funding is acknowledged before traffic starts.
	c0, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < accounts; a++ {
		if r, err := c0.Put(a, opening); err != nil || !r.OK() {
			t.Fatalf("fund %d: %+v, %v", a, r, err)
		}
	}
	c0.Close()

	// Traffic: each connection runs transfers until the server drains under
	// it, recording the marker key of every ACKNOWLEDGED commit.
	var mu sync.Mutex
	acked := map[uint64]bool{}
	var wg sync.WaitGroup
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr, time.Second)
			if err != nil {
				return // drain won the race to the listener
			}
			defer c.Close()
			for i := uint64(0); i < perWorker; i++ {
				from := (uint64(w)*7 + i) % accounts
				to := (uint64(w)*13 + i*3) % accounts
				marker := markerLo + uint64(w)*perWorker + i
				r, err := c.Txn([]TxnOp{
					AddDelta(from, -5),
					AddDelta(to, 5),
					{Kind: TxnWrite, Key: marker, Arg: 1},
				})
				if err != nil {
					return // connection torn down by drain: unacked, unknown fate
				}
				switch r.Status {
				case StatusOK:
					mu.Lock()
					acked[marker] = true
					mu.Unlock()
				case StatusAborted, StatusRetry:
					// not applied (or insufficient funds): no marker expected
				case StatusDraining:
					return
				default:
					t.Errorf("worker %d: status %d: %s", w, r.Status, r.Err)
					return
				}
			}
		}(w)
	}

	// Let traffic flow, then drain mid-stream (workers run until the drain
	// cuts their connections off).
	time.Sleep(150 * time.Millisecond)
	s.Drain()
	wg.Wait()
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	mu.Lock()
	nAcked := len(acked)
	mu.Unlock()
	if nAcked == 0 {
		t.Fatal("no transaction was acknowledged before drain; test proves nothing")
	}

	// Crash: the engine is closed (Drain did it); dump the surviving
	// devices and rebuild a fresh engine on them.
	dumps := pnvm.DumpAll(devs)
	eng2, err := txengine.Build("txmontage-sharded", txengine.Config{
		Latencies: pnvm.DefaultLatencies(), Shards: shards, Devices: devs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	rm, err := eng2.(txengine.Persister).RecoverUintMap(dumps, spec)
	if err != nil {
		t.Fatal(err)
	}
	tx := eng2.NewWorker(0)

	// Audit 1 — zero acknowledged-commit loss: every acked marker must have
	// been recovered (the drain synced a cut at or after the last ack).
	lost := 0
	for marker := range acked {
		if _, ok := rm.Get(tx, marker); !ok {
			lost++
		}
	}
	if lost > 0 {
		t.Errorf("%d of %d acknowledged transactions lost across drain+recover", lost, nAcked)
	}

	// Audit 2 — transfer conservation: balances sum to the funded total
	// (transfers conserve; aborted/shed transactions left no trace).
	sum := uint64(0)
	for a := uint64(0); a < accounts; a++ {
		v, ok := rm.Get(tx, a)
		if !ok {
			t.Fatalf("funded account %d missing after recovery", a)
		}
		sum += v
	}
	if want := accounts * opening; sum != want {
		t.Errorf("conservation violated after recovery: sum %d, want %d", sum, want)
	}

	// Audit 3 — no unacknowledged marker half-applied without its transfer:
	// markers beyond the acked set may exist (committed but unacked), which
	// is fine; what must not exist is a marker for a transaction whose
	// balance effect is missing — covered by audits 1+2 jointly via
	// conservation over the whole map.
	t.Logf("acked=%d lost=%d sum=%d", nAcked, lost, sum)
}
