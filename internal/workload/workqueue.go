package workload

import (
	"fmt"
	"math/rand/v2"
	"sync/atomic"

	"medley/internal/txengine"
)

// workqueueScenario is the paper's motivating composition: a FIFO queue of
// pending jobs plus a map of job states, mutated together. Producers
// atomically enqueue a job and register its state; consumers atomically
// dequeue a job and mark it claimed. On engines without transactions
// (Original) the same operation pairs run back to back, so the run measures
// the untransformed baseline — and the post-run audit counts how often the
// composition was caught torn (a consumer observing a job before its state
// registration became visible).
var workqueueScenario = Scenario{
	Key: "workqueue",
	Doc: "transactional dequeue-and-claim over a queue + job-state map",
	CanRun: func(b txengine.Builder) error {
		if !b.Caps.Has(txengine.CapQueue) {
			return fmt.Errorf("workload: engine %q has no transactional queue: %w",
				b.Key, txengine.ErrUnsupported)
		}
		if !b.Caps.Has(txengine.CapTx|txengine.CapDynamicTx) && !b.Caps.Has(txengine.CapNoTx) {
			return fmt.Errorf("workload: engine %q can run neither the transactional nor the bare workqueue: %w",
				b.Key, txengine.ErrUnsupported)
		}
		return nil
	},
	run: runWorkqueue,
}

const jobPending = uint64(0)

func runWorkqueue(eng txengine.Engine, caps txengine.Caps, cfg Config) (Result, error) {
	q, err := eng.NewUintQueue()
	if err != nil {
		return Result{}, err
	}
	states, err := eng.NewUintMap(txengine.MapSpec{Kind: mapKind(caps), Buckets: 1 << 14})
	if err != nil {
		return Result{}, err
	}
	transactional := caps.Has(txengine.CapTx | txengine.CapDynamicTx)

	var produced, claimed, empty, violations atomic.Uint64

	// jobID packs the producing worker into the high bits so every worker
	// mints unique ids without coordination.
	jobID := func(tid int, n uint64) uint64 { return uint64(tid+1)<<40 | n }

	// Prefill a backlog so consumers find work immediately (worker id past
	// the measured range keeps its ids distinct).
	prefillTx := eng.NewWorker(cfg.threads())
	backlog := cfg.scaled(1024, 64)
	for n := 0; n < backlog; n++ {
		j := jobID(cfg.threads(), uint64(n))
		enq := func() {
			q.Enqueue(prefillTx, j)
			states.Insert(prefillTx, j, jobPending)
		}
		if transactional {
			if err := prefillTx.Run(func() error { enq(); return nil }); err != nil {
				return Result{}, err
			}
		} else {
			prefillTx.NoTx(enq)
		}
		produced.Add(1)
	}

	base := eng.Stats()
	txns, el, lh := drive(cfg.threads(), cfg.dur(), cfg.Warmup, cfg.Latency, func(tid int) func() uint64 {
		tx := eng.NewWorker(tid)
		rng := rand.New(rand.NewPCG(cfg.seed(), uint64(tid)))
		var seq uint64
		claimer := uint64(tid) + 1
		return func() uint64 {
			if rng.IntN(2) == 0 { // produce
				seq++
				j := jobID(tid, seq)
				body := func() {
					q.Enqueue(tx, j)
					states.Insert(tx, j, jobPending)
				}
				if transactional {
					if tx.Run(func() error { body(); return nil }) != nil {
						return 0
					}
				} else {
					tx.NoTx(body)
				}
				produced.Add(1)
				return 1
			}
			// consume: dequeue a job and mark it claimed, atomically.
			var j, st uint64
			var got, known bool
			body := func() {
				j, got = q.Dequeue(tx)
				if !got {
					return
				}
				st, known = states.Get(tx, j)
				states.Put(tx, j, claimer)
			}
			if transactional {
				if tx.Run(func() error { body(); return nil }) != nil {
					return 0
				}
			} else {
				tx.NoTx(body)
			}
			if !got {
				empty.Add(1)
				return 1
			}
			if !known || st != jobPending {
				// The dequeued job's registration was not visible (or it was
				// already claimed): the queue+map composition was torn.
				violations.Add(1)
			}
			claimed.Add(1)
			return 1
		}
	}, func() {
		// Re-snapshot at the measurement boundary (see transfer.go): the
		// delta excludes warm-up, the Aux counters span the whole run for
		// the drain audit.
		base = eng.Stats()
	})

	// Snapshot the measured delta before the audit: audit reads are
	// one-shot transactions on some engines and must not inflate it.
	stats := eng.Stats().Delta(base)

	// Post-run audit: drain the queue; every job must be either claimed or
	// still pending in the backlog — none lost, none claimed twice.
	audit := eng.NewWorker(cfg.threads() + 1)
	leftover := uint64(0)
	for {
		j, ok := q.Dequeue(audit)
		if !ok {
			break
		}
		leftover++
		if st, known := states.Get(audit, j); !known || st != jobPending {
			violations.Add(1)
		}
	}
	aux := []AuxCount{
		{"produced", produced.Load()},
		{"claimed", claimed.Load()},
		{"empty", empty.Load()},
		{"leftover", leftover},
	}
	diff := int64(produced.Load()) - int64(claimed.Load()) - int64(leftover)
	if diff > 0 {
		aux = append(aux, AuxCount{"lost", uint64(diff)})
	} else if diff < 0 {
		aux = append(aux, AuxCount{"dup", uint64(-diff)})
	}
	aux = append(aux, AuxCount{"violations", violations.Load()})

	res := Result{
		Txns: txns, Duration: el,
		Throughput: float64(txns) / el.Seconds(),
		Stats:      stats,
		Aux:        aux,
	}
	res.attachLatency(lh)
	return res, nil
}
