// Package workload is a scenario-driven benchmark subsystem over the
// txengine registry. Where internal/bench regenerates the paper's
// single-map microbenchmark figures, the scenarios here exercise the
// transactional *composition* patterns the paper argues about — operations
// spanning different abstractions (queue + map) and different instances
// (map + map) in one atomic transaction — and they run on every registered
// backend whose capabilities allow, so each engine becomes a comparable
// datapoint.
//
// Scenarios:
//
//   - workqueue: transactional dequeue-and-claim over a FIFO queue plus a
//     job-state map (the composition boosting and LFTT cannot express).
//   - cache: a Zipfian read-mostly mix over a cache map backed by a store
//     map, with transactional invalidate-on-update and refill-on-miss.
//   - transfer: atomic value transfers between two maps (checking/savings)
//     at configurable contention.
//
// Every Result carries the engine's uniform txengine.Stats delta for the
// measured interval, plus scenario-specific Aux counters including the
// post-run invariant checks (lost jobs, stale cache entries, balance
// imbalance) that conformance tests assert on.
package workload

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"medley/internal/pnvm"
	"medley/internal/txengine"
)

// Config sizes and drives one scenario run. The zero value is usable:
// GOMAXPROCS threads, a short measurement, laptop-sized structures.
type Config struct {
	Threads int           // worker goroutines (0: GOMAXPROCS)
	Dur     time.Duration // measurement duration (0: 1s)
	Scale   float64       // structure-size scale (0: 1.0; sizes below)
	Seed    uint64        // rng seed base (0: fixed default)

	// Latencies and EpochLen configure persistent engines, as in
	// internal/bench.
	Latencies pnvm.Latencies
	EpochLen  time.Duration

	// Shards is the partition count for sharded engines (0: engine
	// default); non-sharded engines ignore it.
	Shards int
	// NoLatch disables key-granular cross-shard latching on sharded
	// engines: cross-shard transactions take whole-shard exclusive locks
	// as they did before the latch manager. The A/B control for latch
	// measurements; non-sharded engines ignore it.
	NoLatch bool

	// ZipfS is the Zipf skew exponent (>1.0). Higher values concentrate
	// traffic on fewer hot keys. The cache scenario always skews (0: 1.2);
	// the transfer scenario draws accounts uniformly unless ZipfS is set,
	// making it the contention knob for latch A/B measurements.
	ZipfS float64
	// ReadPct is the cache scenario's lookup percentage, 0–100 (0: 90;
	// negative: an all-update mix). The remainder are invalidating updates.
	ReadPct int
	// Accounts is the transfer scenario's account count (0: 1024 scaled by
	// Scale). Fewer accounts mean hotter contention.
	Accounts int

	// Snapshot serves the cache scenario's read-only probes through
	// txengine.SnapshotRead — validation-free MVCC reads at a consistent
	// cut that never abort or restart — instead of OCC RunRead
	// transactions. Requires an engine with txengine.CapSnapshot (Run
	// rejects others, like CanRun gates). The A/B control for measuring
	// what read validation costs a read-mostly mix.
	Snapshot bool

	// Latency enables latency percentiles (Result.P50 and P99), at the
	// cost of two clock reads per iteration. One iteration is one logical
	// scenario transaction; on some paths (a cache miss's probe + refill)
	// that comprises more than one engine transaction.
	Latency bool

	// Warmup runs the workers for this long before measurement begins:
	// iterations completed during the ramp-up are not counted in Txns,
	// Throughput, Stats, or the latency histograms, so committed numbers
	// stop including JIT/cache/footprint-learning warm-up noise. The
	// scenario-specific Aux counters still span the whole run — they feed
	// the post-run invariant audits, which must see everything. Zero keeps
	// the old measure-from-start behavior.
	Warmup time.Duration

	// NoHints disables the footprint hints scenarios pass to sharded
	// engines (txengine.HintKeys). Hints let a transaction that knows its
	// keys up front — a transfer knows both accounts — pre-declare its
	// shard set and skip the cross-shard discovery restart; disabling them
	// measures the bare discovery path. No-ops on non-sharded engines
	// either way.
	NoHints bool
}

// Validate rejects configurations that would otherwise be silently
// reinterpreted. The one current case: a Zipf exponent in (0, 1] — Go's
// rand.NewZipf requires s > 1, so the transfer scenario used to fall back
// to uniform draws and the cache scenario to its default skew without a
// word, which silently invalidates any measurement sweep over -zipf.
func (c Config) Validate() error {
	if c.ZipfS > 0 && c.ZipfS <= 1 {
		return fmt.Errorf("workload: ZipfS must be > 1.0 (got %g); the Zipf distribution is undefined at s <= 1 and draws would silently fall back", c.ZipfS)
	}
	return nil
}

func (c Config) threads() int {
	if c.Threads > 0 {
		return c.Threads
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) dur() time.Duration {
	if c.Dur > 0 {
		return c.Dur
	}
	return time.Second
}

func (c Config) scale() float64 {
	if c.Scale > 0 {
		return c.Scale
	}
	return 1.0
}

func (c Config) seed() uint64 {
	if c.Seed != 0 {
		return c.Seed
	}
	return 0x9e3779b97f4a7c15
}

// scaled returns base scaled by cfg.Scale, floored at min.
func (c Config) scaled(base, min int) int {
	n := int(float64(base) * c.scale())
	if n < min {
		return min
	}
	return n
}

func (c Config) zipfS() float64 {
	if c.ZipfS > 1 {
		return c.ZipfS
	}
	return 1.2
}

func (c Config) readPct() int {
	switch {
	case c.ReadPct < 0:
		return 0
	case c.ReadPct == 0:
		return 90
	case c.ReadPct > 100:
		return 100
	}
	return c.ReadPct
}

func (c Config) accounts() uint64 {
	if c.Accounts > 0 {
		return uint64(c.Accounts)
	}
	return uint64(c.scaled(1024, 8))
}

// AuxCount is one scenario-specific counter of a Result.
type AuxCount struct {
	Name string
	N    uint64
}

// Result is one measured scenario point.
type Result struct {
	Workload   string
	System     string
	Threads    int
	Txns       uint64 // completed application transactions
	Duration   time.Duration
	Throughput float64        // transactions per second
	Stats      txengine.Stats // engine stats delta over the measured run
	P50, P99   time.Duration  // per-iteration latency percentiles (see Config.Latency)
	Aux        []AuxCount     // scenario counters + invariant checks
}

// attachLatency fills the percentile fields from a measured histogram.
func (r *Result) attachLatency(h *latHist) {
	if h != nil && h.count > 0 {
		r.P50 = h.percentile(0.50)
		r.P99 = h.percentile(0.99)
	}
}

// AuxN returns the named Aux counter (0 if absent).
func (r Result) AuxN(name string) uint64 {
	for _, a := range r.Aux {
		if a.Name == name {
			return a.N
		}
	}
	return 0
}

// AuxString renders the Aux counters for reports.
func (r Result) AuxString() string {
	s := ""
	for i, a := range r.Aux {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", a.Name, a.N)
	}
	return s
}

// Scenario is one registered workload.
type Scenario struct {
	// Key is the name -workload flags accept.
	Key string
	// Doc is a one-line description for CLI help.
	Doc string
	// CanRun reports whether the engine can host this scenario.
	CanRun func(b txengine.Builder) error
	// run executes the scenario on a freshly built engine.
	run func(eng txengine.Engine, caps txengine.Caps, cfg Config) (Result, error)
}

var scenarios = []Scenario{workqueueScenario, cacheScenario, transferScenario}

// Scenarios returns the registered scenarios in presentation order.
func Scenarios() []Scenario {
	out := make([]Scenario, len(scenarios))
	copy(out, scenarios)
	return out
}

// Lookup returns the scenario registered under key.
func Lookup(key string) (Scenario, bool) {
	for _, s := range scenarios {
		if s.Key == key {
			return s, true
		}
	}
	return Scenario{}, false
}

// Names returns the registered scenario keys.
func Names() []string {
	out := make([]string, len(scenarios))
	for i, s := range scenarios {
		out[i] = s.Key
	}
	return out
}

// Engines returns the default engine series for a scenario: every capable
// registry entry not marked Slow (explicit selection still runs those).
func Engines(scenario string) []string {
	sc, ok := Lookup(scenario)
	if !ok {
		return nil
	}
	var out []string
	for _, b := range txengine.Builders() {
		if b.Slow {
			continue
		}
		if sc.CanRun(b) == nil {
			out = append(out, b.Key)
		}
	}
	return out
}

// Run builds the named engine and executes the named scenario on it.
func Run(scenario, engine string, cfg Config) (Result, error) {
	sc, ok := Lookup(scenario)
	if !ok {
		return Result{}, fmt.Errorf("workload: unknown scenario %q (have %v)", scenario, Names())
	}
	b, ok := txengine.Lookup(engine)
	if !ok {
		return Result{}, fmt.Errorf("workload: unknown engine %q", engine)
	}
	if err := sc.CanRun(b); err != nil {
		return Result{}, err
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Snapshot && !b.Caps.Has(txengine.CapSnapshot) {
		return Result{}, fmt.Errorf("workload: engine %q cannot serve snapshot reads (needs CapSnapshot): %w", engine, txengine.ErrUnsupported)
	}
	eng, err := b.New(txengine.Config{Latencies: cfg.Latencies, EpochLen: cfg.EpochLen, Shards: cfg.Shards, NoLatch: cfg.NoLatch})
	if err != nil {
		return Result{}, err
	}
	defer eng.Close()
	res, err := sc.run(eng, b.Caps, cfg)
	if err != nil {
		return Result{}, fmt.Errorf("workload %s on %s: %w", scenario, engine, err)
	}
	res.Workload = scenario
	res.System = eng.Name()
	res.Threads = cfg.threads()
	return res, nil
}

// needDynamicTx is the CanRun gate of scenarios whose transaction logic
// branches on values read inside the transaction.
func needDynamicTx(b txengine.Builder) error {
	if !b.Caps.Has(txengine.CapTx | txengine.CapDynamicTx) {
		return fmt.Errorf("workload: engine %q needs dynamic transactions: %w",
			b.Key, txengine.ErrUnsupported)
	}
	return nil
}

// mapKind picks the map shape an engine supports, preferring hash.
func mapKind(caps txengine.Caps) txengine.MapKind {
	if caps.Has(txengine.CapHashMap) {
		return txengine.KindHash
	}
	return txengine.KindSkip
}

// drive spawns threads workers, each constructed by newWorker (per-worker
// state: tx handle, rng) and then iterated until warmup+dur elapses; it
// returns the transaction count completed inside the measured window, the
// measured wall time, and — when lat is set — a merged per-iteration
// latency histogram (nil otherwise). Each iteration returns the number of
// completed transactions it performed.
//
// When warmup is positive, workers run for that long before measurement
// begins: ramp-up iterations are discarded from the count and the
// histograms. onMeasure, if non-nil, fires once at the start of the
// measured window (with workers already running), so callers can
// re-snapshot engine stats to the same boundary.
func drive(threads int, dur, warmup time.Duration, lat bool, newWorker func(tid int) func() uint64, onMeasure func()) (uint64, time.Duration, *latHist) {
	var stop atomic.Bool
	var measuring atomic.Bool
	var total atomic.Uint64
	var wg sync.WaitGroup
	var ready, start sync.WaitGroup
	ready.Add(threads)
	start.Add(1)
	hists := make([]*latHist, threads)
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			iter := newWorker(tid)
			var h *latHist
			if lat {
				h = &latHist{}
				hists[tid] = h
			}
			ready.Done()
			start.Wait()
			n := uint64(0)
			if lat {
				for !stop.Load() {
					t0 := time.Now()
					c := iter()
					// Weight the sample by the iteration's transaction count
					// and skip empty iterations (audit sweeps, lost
					// conflicts): the percentiles are per *transaction*, and
					// an iteration that completed several (or none) would
					// otherwise skew them. Warm-up iterations are discarded
					// whole; one iteration spanning the boundary lands on
					// whichever side its commit did.
					if measuring.Load() {
						if c > 0 {
							h.recordN(time.Since(t0), c)
						}
						n += c
					}
				}
			} else {
				for !stop.Load() {
					c := iter()
					if measuring.Load() {
						n += c
					}
				}
			}
			total.Add(n)
		}(t)
	}
	ready.Wait()
	// t0 must be taken no later than the measuring flip: a transaction that
	// commits after Store(true) is counted in the measured total, so the
	// elapsed window has to cover it or throughput is inflated.
	var t0 time.Time
	if warmup > 0 {
		start.Done()
		time.Sleep(warmup)
		t0 = time.Now()
		measuring.Store(true)
		if onMeasure != nil {
			onMeasure()
		}
	} else {
		measuring.Store(true)
		if onMeasure != nil {
			onMeasure()
		}
		start.Done()
		t0 = time.Now()
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	el := time.Since(t0)
	if !lat {
		return total.Load(), el, nil
	}
	merged := &latHist{}
	for _, h := range hists {
		if h != nil {
			merged.merge(h)
		}
	}
	return total.Load(), el, merged
}
