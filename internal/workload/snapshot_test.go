package workload

import (
	"errors"
	"testing"
	"time"

	"medley/internal/txengine"
)

// TestValidateZipfS pins the Config.Validate rejection: a Zipf exponent in
// (0, 1] used to fall back silently (transfer to uniform draws, cache to the
// default skew), invalidating any -zipf sweep without a word.
func TestValidateZipfS(t *testing.T) {
	for _, s := range []float64{0.5, 1.0, 0.0001} {
		if err := (Config{ZipfS: s}).Validate(); err == nil {
			t.Errorf("ZipfS=%g passed Validate", s)
		}
		if _, err := Run("transfer", "medley", Config{Threads: 2, Dur: 10 * time.Millisecond, ZipfS: s}); err == nil {
			t.Errorf("ZipfS=%g passed Run", s)
		}
	}
	for _, s := range []float64{0, 1.2, 3} {
		if err := (Config{ZipfS: s}).Validate(); err != nil {
			t.Errorf("ZipfS=%g rejected: %v", s, err)
		}
	}
}

// TestSnapshotGate: -snapshot on an engine without CapSnapshot must fail
// fast with ErrUnsupported, like the CanRun gates.
func TestSnapshotGate(t *testing.T) {
	cfg := smokeConfig()
	cfg.Snapshot = true
	_, err := Run("cache", "onefile", cfg)
	if !errors.Is(err, txengine.ErrUnsupported) {
		t.Fatalf("snapshot on onefile returned %v, want ErrUnsupported", err)
	}
}

// TestSnapshotCacheSmoke runs the headline configuration — the cache
// scenario at 95% reads with snapshot probes — on the Medley family and
// asserts the bugfix's observable contract: snapshot reads happened, none
// fell back to OCC, none were served torn (the stale audit), and the cache
// invariants still hold.
func TestSnapshotCacheSmoke(t *testing.T) {
	for _, engine := range []string{"medley", "txmontage", "medley-sharded", "txmontage-sharded"} {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			cfg := smokeConfig()
			cfg.ReadPct = 95
			cfg.Snapshot = true
			res, err := Run("cache", engine, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.SnapshotReads == 0 {
				t.Fatalf("no snapshot reads counted: %+v", res.Stats)
			}
			if n := res.AuxN("snapfallback"); n != 0 {
				t.Errorf("snapfallback=%d on a CapSnapshot engine (%s)", n, res.AuxString())
			}
			if n := res.AuxN("stale"); n != 0 {
				t.Errorf("stale=%d cache entries (%s)", n, res.AuxString())
			}
			if res.AuxN("hits")+res.AuxN("misses") == 0 {
				t.Errorf("cache made no lookups: %s", res.AuxString())
			}
		})
	}
}

// TestLatHistWeighting pins the drive() latency fix: an iteration that
// completed c transactions contributes c samples (so multi-transaction
// iterations don't undercount) and zero-count iterations contribute none.
func TestLatHistWeighting(t *testing.T) {
	h := &latHist{}
	h.recordN(time.Millisecond, 3)
	h.recordN(time.Second, 0) // a lost conflict: no transactions completed
	h.record(2 * time.Millisecond)
	if h.count != 4 {
		t.Fatalf("count = %d, want 4 (3 weighted + 1 single + 0 skipped)", h.count)
	}
	// The 3-weighted 1ms samples dominate: the median must sit in the 1ms
	// bucket, not anywhere near the zero-weight 1s outlier.
	if p := h.percentile(0.50); p > 2*time.Millisecond {
		t.Fatalf("p50 = %v, want ~1ms (weighting broken)", p)
	}
	if p := h.percentile(0.99); p > 4*time.Millisecond {
		t.Fatalf("p99 = %v: the zero-count 1s iteration leaked in", p)
	}
}
