package workload

import (
	"math/rand/v2"
	"sync/atomic"

	"medley/internal/txengine"
)

// cacheScenario is a read-mostly caching tier over a backing store, both
// transactional maps on the same engine. Lookups probe the cache with a
// read-only transaction; misses refill from the backing store and insert
// the cached copy in one transaction; updates write the backing store and
// invalidate the cached entry in one transaction. Because refill and
// invalidate-with-update are each atomic, the cache can never serve a value
// the backing store no longer holds — the post-run audit counts stale
// entries, which must be zero on every transactional engine. Keys are drawn
// Zipfian, so hot keys contend on both the cache entry and the backing row.
var cacheScenario = Scenario{
	Key:    "cache",
	Doc:    "Zipfian read-mostly cache with transactional invalidate and refill",
	CanRun: needDynamicTx,
	run:    runCache,
}

func runCache(eng txengine.Engine, caps txengine.Caps, cfg Config) (Result, error) {
	kind := mapKind(caps)
	keys := uint64(cfg.scaled(16384, 256))
	backing, err := eng.NewUintMap(txengine.MapSpec{Kind: kind, Buckets: int(keys)})
	if err != nil {
		return Result{}, err
	}
	cache, err := eng.NewUintMap(txengine.MapSpec{Kind: kind, Buckets: int(keys)})
	if err != nil {
		return Result{}, err
	}

	// Preload the backing store (chunked transactions keep descriptors and
	// lock sets small).
	loader := eng.NewWorker(cfg.threads())
	const chunk = 256
	for lo := uint64(0); lo < keys; lo += chunk {
		hi := min(lo+chunk, keys)
		if err := loader.Run(func() error {
			for k := lo; k < hi; k++ {
				backing.Put(loader, k, k*3+1)
			}
			return nil
		}); err != nil {
			return Result{}, err
		}
	}

	var hits, misses, updates, conflictsLost atomic.Uint64
	var snapFallbacks atomic.Uint64
	base := eng.Stats()
	readPct := cfg.readPct()
	snapshot := cfg.Snapshot
	txns, el, lh := drive(cfg.threads(), cfg.dur(), cfg.Warmup, cfg.Latency, func(tid int) func() uint64 {
		tx := eng.NewWorker(tid)
		// math/rand/v2 PCG, like workqueue/transfer: seeded straight from
		// the uint64 (Seed, tid) pair, so a Seed near MaxInt64 can't
		// overflow the int64 cast the legacy source needed.
		rng := rand.New(rand.NewPCG(cfg.seed(), uint64(tid)+1))
		zipf := rand.NewZipf(rng, cfg.zipfS(), 1, keys-1)
		var vseq uint64
		return func() uint64 {
			k := zipf.Uint64()
			if rng.IntN(100) < readPct {
				// Lookup: cheap read-only probe first — a validation-free
				// MVCC snapshot in -snapshot mode (falling back to the OCC
				// read if the engine can't, counted so conformance can
				// assert the fallback never fires on CapSnapshot engines).
				var ok bool
				probe := func() { _, ok = cache.Get(tx, k) }
				if snapshot {
					if !txengine.SnapshotRead(tx, probe) {
						snapFallbacks.Add(1)
						tx.RunRead(probe)
					}
				} else {
					tx.RunRead(probe)
				}
				if ok {
					hits.Add(1)
					return 1
				}
				// Miss: refill from the backing store, atomically with the
				// re-probe (another worker may have refilled meanwhile).
				if err := tx.Run(func() error {
					if _, ok := cache.Get(tx, k); ok {
						return nil
					}
					v, _ := backing.Get(tx, k)
					cache.Insert(tx, k, v)
					return nil
				}); err != nil {
					conflictsLost.Add(1)
					return 0
				}
				misses.Add(1)
				return 1
			}
			// Update: new backing value + cache invalidation, atomically.
			vseq++
			v := uint64(tid+1)<<40 | vseq
			if err := tx.Run(func() error {
				backing.Put(tx, k, v)
				cache.Remove(tx, k)
				return nil
			}); err != nil {
				conflictsLost.Add(1)
				return 0
			}
			updates.Add(1)
			return 1
		}
	}, func() {
		// Re-snapshot at the measurement boundary (see transfer.go): the
		// delta excludes warm-up, the Aux counters span the whole run for
		// the coherence audit.
		base = eng.Stats()
	})

	// Snapshot the measured delta before the audit: audit reads are
	// one-shot transactions on some engines and must not inflate it.
	stats := eng.Stats().Delta(base)

	// Post-run audit (single-threaded): every cached entry must match the
	// backing store.
	audit := eng.NewWorker(cfg.threads() + 1)
	stale := uint64(0)
	for k := uint64(0); k < keys; k++ {
		if cv, ok := cache.Get(audit, k); ok {
			if bv, _ := backing.Get(audit, k); cv != bv {
				stale++
			}
		}
	}

	res := Result{
		Txns: txns, Duration: el,
		Throughput: float64(txns) / el.Seconds(),
		Stats:      stats,
		Aux: []AuxCount{
			{"hits", hits.Load()},
			{"misses", misses.Load()},
			{"updates", updates.Load()},
			{"errors", conflictsLost.Load()},
			{"stale", stale},
		},
	}
	if snapshot {
		res.Aux = append(res.Aux, AuxCount{"snapfallback", snapFallbacks.Load()})
	}
	res.attachLatency(lh)
	return res, nil
}
