package workload

import (
	"math/bits"
	"time"
)

// latSubBits sets the histogram's sub-bucket resolution: each power-of-two
// latency band splits into 2^latSubBits linear sub-buckets, bounding the
// percentile estimation error at ~1/2^latSubBits of the value.
const latSubBits = 3

// latHist is an HDR-style log-linear latency histogram. Recording is two
// shifts and an increment, so per-transaction timing stays cheap enough to
// leave on for a whole measured run; workers each own one and merge after.
type latHist struct {
	buckets [64 << latSubBits]uint64
	count   uint64
}

func (h *latHist) record(d time.Duration) { h.recordN(d, 1) }

// recordN records one duration with weight c: an iteration that completed c
// transactions contributes c per-transaction samples at its latency.
func (h *latHist) recordN(d time.Duration, c uint64) {
	n := uint64(d)
	if n == 0 {
		n = 1
	}
	e := uint(bits.Len64(n)) - 1
	var sub uint64
	if e > latSubBits {
		sub = (n >> (e - latSubBits)) & (1<<latSubBits - 1)
	} else {
		sub = n & (1<<latSubBits - 1)
	}
	h.buckets[e<<latSubBits|uint(sub)] += c
	h.count += c
}

func (h *latHist) merge(o *latHist) {
	for i, n := range o.buckets {
		h.buckets[i] += n
	}
	h.count += o.count
}

// bucketValue returns the representative (lower-bound) duration of bucket i.
func bucketValue(i int) time.Duration {
	e := uint(i) >> latSubBits
	sub := uint64(i) & (1<<latSubBits - 1)
	if e <= latSubBits {
		return time.Duration(uint64(1)<<e | sub)
	}
	return time.Duration(uint64(1)<<e + sub<<(e-latSubBits))
}

// Hist is the exported face of the HDR-style histogram, so out-of-package
// drivers (cmd/txload's end-to-end latency mode) reuse the same -lat
// machinery — identical buckets, resolution, and percentile estimation —
// and their numbers stay comparable with the in-process tables.
type Hist struct{ h latHist }

// Record adds one sample.
func (h *Hist) Record(d time.Duration) { h.h.record(d) }

// RecordN adds c samples at duration d.
func (h *Hist) RecordN(d time.Duration, c uint64) { h.h.recordN(d, c) }

// Merge folds o into h.
func (h *Hist) Merge(o *Hist) { h.h.merge(&o.h) }

// Count returns the number of recorded samples.
func (h *Hist) Count() uint64 { return h.h.count }

// Percentile returns the p-quantile (0 < p <= 1), 0 when empty.
func (h *Hist) Percentile(p float64) time.Duration { return h.h.percentile(p) }

// percentile returns the p-quantile (0 < p <= 1) of recorded durations, or
// 0 when nothing was recorded.
func (h *latHist) percentile(p float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	target := uint64(p * float64(h.count))
	if target == 0 {
		target = 1
	}
	cum := uint64(0)
	for i, n := range h.buckets {
		cum += n
		if cum >= target {
			return bucketValue(i)
		}
	}
	return bucketValue(len(h.buckets) - 1)
}
