package workload

import (
	"testing"
	"time"

	"medley/internal/txengine"
)

func smokeConfig() Config {
	return Config{Threads: 4, Dur: 120 * time.Millisecond, Scale: 0.05, Seed: 7}
}

// TestSmoke runs every scenario on its full default engine series with a
// tiny configuration and asserts the invariants each scenario audits:
// no lost or duplicated jobs, no stale cache entries, no missing money.
// CI runs this as the workload smoke job.
func TestSmoke(t *testing.T) {
	for _, sc := range Scenarios() {
		engines := Engines(sc.Key)
		if len(engines) == 0 {
			t.Fatalf("%s: empty default engine series", sc.Key)
		}
		for _, engine := range engines {
			t.Run(sc.Key+"/"+engine, func(t *testing.T) {
				res, err := Run(sc.Key, engine, smokeConfig())
				if err != nil {
					t.Fatal(err)
				}
				if res.Txns == 0 {
					t.Fatal("no transactions completed")
				}
				if res.Throughput <= 0 {
					t.Fatalf("throughput %v", res.Throughput)
				}
				b, _ := txengine.Lookup(engine)
				if b.Caps.Has(txengine.CapTx) && res.Stats.Commits == 0 {
					t.Fatalf("transactional engine reported zero commits: %+v", res.Stats)
				}
				transactional := b.Caps.Has(txengine.CapTx | txengine.CapDynamicTx)
				switch sc.Key {
				case "workqueue":
					if transactional {
						for _, bad := range []string{"lost", "dup", "violations"} {
							if n := res.AuxN(bad); n != 0 {
								t.Errorf("%s=%d on a transactional engine (%s)", bad, n, res.AuxString())
							}
						}
					}
					if res.AuxN("produced") == 0 || res.AuxN("claimed") == 0 {
						t.Errorf("workqueue made no progress: %s", res.AuxString())
					}
				case "cache":
					if n := res.AuxN("stale"); n != 0 {
						t.Errorf("stale=%d cache entries after atomic invalidation (%s)", n, res.AuxString())
					}
					if res.AuxN("hits")+res.AuxN("misses") == 0 {
						t.Errorf("cache made no lookups: %s", res.AuxString())
					}
				case "transfer":
					if n := res.AuxN("imbalance"); n != 0 {
						t.Errorf("imbalance=%d: money not conserved (%s)", n, res.AuxString())
					}
					if res.AuxN("transfers") == 0 {
						t.Errorf("no transfers completed: %s", res.AuxString())
					}
				}
			})
		}
	}
}

// TestCapabilityGating pins which engines each scenario admits: the
// workqueue runs exactly on the queue-capable engines (Medley family +
// Original), and the map scenarios exclude the static (LFTT) and
// non-transactional (Original) backends.
func TestCapabilityGating(t *testing.T) {
	in := func(list []string, k string) bool {
		for _, v := range list {
			if v == k {
				return true
			}
		}
		return false
	}
	wq := Engines("workqueue")
	for _, want := range []string{"medley", "txmontage", "original"} {
		if !in(wq, want) {
			t.Errorf("workqueue series missing %q: %v", want, wq)
		}
	}
	for _, deny := range []string{"onefile", "tdsl", "lftt", "boost"} {
		if in(wq, deny) {
			t.Errorf("workqueue series must exclude %q (no CapQueue): %v", deny, wq)
		}
	}
	for _, sc := range []string{"cache", "transfer"} {
		series := Engines(sc)
		for _, deny := range []string{"lftt", "original"} {
			if in(series, deny) {
				t.Errorf("%s series must exclude %q: %v", sc, deny, series)
			}
		}
		for _, want := range []string{"medley", "onefile", "tdsl", "boost"} {
			if !in(series, want) {
				t.Errorf("%s series missing %q: %v", sc, want, series)
			}
		}
	}

	if _, err := Run("no-such-workload", "medley", smokeConfig()); err == nil {
		t.Error("unknown scenario must fail")
	}
	if _, err := Run("cache", "no-such-engine", smokeConfig()); err == nil {
		t.Error("unknown engine must fail")
	}
	if _, err := Run("workqueue", "boost", smokeConfig()); err == nil {
		t.Error("workqueue on boost must be rejected (queues have no inverses)")
	}
	if _, err := Run("cache", "original", smokeConfig()); err == nil {
		t.Error("cache on original must be rejected (no transactions)")
	}
}
