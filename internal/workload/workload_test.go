package workload

import (
	"testing"
	"time"

	"medley/internal/txengine"
)

func smokeConfig() Config {
	return Config{Threads: 4, Dur: 120 * time.Millisecond, Scale: 0.05, Seed: 7}
}

// TestSmoke runs every scenario on its full default engine series with a
// tiny configuration and asserts the invariants each scenario audits:
// no lost or duplicated jobs, no stale cache entries, no missing money.
// CI runs this as the workload smoke job.
func TestSmoke(t *testing.T) {
	for _, sc := range Scenarios() {
		engines := Engines(sc.Key)
		if len(engines) == 0 {
			t.Fatalf("%s: empty default engine series", sc.Key)
		}
		for _, engine := range engines {
			t.Run(sc.Key+"/"+engine, func(t *testing.T) {
				res, err := Run(sc.Key, engine, smokeConfig())
				if err != nil {
					t.Fatal(err)
				}
				if res.Txns == 0 {
					t.Fatal("no transactions completed")
				}
				if res.Throughput <= 0 {
					t.Fatalf("throughput %v", res.Throughput)
				}
				b, _ := txengine.Lookup(engine)
				if b.Caps.Has(txengine.CapTx) && res.Stats.Commits == 0 {
					t.Fatalf("transactional engine reported zero commits: %+v", res.Stats)
				}
				transactional := b.Caps.Has(txengine.CapTx | txengine.CapDynamicTx)
				switch sc.Key {
				case "workqueue":
					if transactional {
						for _, bad := range []string{"lost", "dup", "violations"} {
							if n := res.AuxN(bad); n != 0 {
								t.Errorf("%s=%d on a transactional engine (%s)", bad, n, res.AuxString())
							}
						}
					}
					if res.AuxN("produced") == 0 || res.AuxN("claimed") == 0 {
						t.Errorf("workqueue made no progress: %s", res.AuxString())
					}
				case "cache":
					if n := res.AuxN("stale"); n != 0 {
						t.Errorf("stale=%d cache entries after atomic invalidation (%s)", n, res.AuxString())
					}
					if res.AuxN("hits")+res.AuxN("misses") == 0 {
						t.Errorf("cache made no lookups: %s", res.AuxString())
					}
				case "transfer":
					if n := res.AuxN("imbalance"); n != 0 {
						t.Errorf("imbalance=%d: money not conserved (%s)", n, res.AuxString())
					}
					if res.AuxN("transfers") == 0 {
						t.Errorf("no transfers completed: %s", res.AuxString())
					}
				}
			})
		}
	}
}

// TestKnobs drives the scenario tunables end to end: a sharded engine at an
// explicit shard count, a hot transfer (few accounts), a skewed all-update
// cache mix, and latency percentiles — every audit must still hold.
func TestKnobs(t *testing.T) {
	cfg := smokeConfig()
	cfg.Shards = 8
	cfg.Accounts = 4 // four hot accounts: maximum cross-map contention
	cfg.Latency = true
	res, err := Run("transfer", "medley-sharded", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n := res.AuxN("imbalance"); n != 0 {
		t.Errorf("hot sharded transfer lost money: imbalance=%d (%s)", n, res.AuxString())
	}
	if res.AuxN("transfers") == 0 {
		t.Errorf("no transfers completed: %s", res.AuxString())
	}
	if res.P50 <= 0 || res.P99 < res.P50 {
		t.Errorf("latency percentiles not measured or inverted: p50=%v p99=%v", res.P50, res.P99)
	}

	cfg = smokeConfig()
	cfg.ZipfS = 2.0
	cfg.ReadPct = -1 // all updates
	res, err = Run("cache", "medley", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AuxN("hits")+res.AuxN("misses") != 0 {
		t.Errorf("ReadPct<0 still performed lookups: %s", res.AuxString())
	}
	if res.AuxN("updates") == 0 {
		t.Errorf("all-update mix made no updates: %s", res.AuxString())
	}
	if n := res.AuxN("stale"); n != 0 {
		t.Errorf("stale=%d under skewed updates (%s)", n, res.AuxString())
	}
	if res.P50 != 0 || res.P99 != 0 {
		t.Errorf("latency percentiles measured without Config.Latency: p50=%v p99=%v", res.P50, res.P99)
	}
}

// TestTransferConservation audits money conservation on the sharded engine
// across the latch matrix: shard counts 2 and 8, latching on and off, with
// Zipf-skewed draws so cross-shard transfers pile onto a few hot accounts.
// Latched commits go through the linked-group path (key latches + shared
// commit CAS) rather than whole-shard exclusion, so any atomicity hole
// there shows up as an imbalance here.
func TestTransferConservation(t *testing.T) {
	for _, shards := range []int{2, 8} {
		for _, noLatch := range []bool{false, true} {
			name := "shards=2"
			if shards == 8 {
				name = "shards=8"
			}
			if noLatch {
				name += "/nolatch"
			} else {
				name += "/latch"
			}
			t.Run(name, func(t *testing.T) {
				cfg := smokeConfig()
				cfg.Shards = shards
				cfg.NoLatch = noLatch
				cfg.Accounts = 64 // small: most transfers cross shards
				cfg.ZipfS = 1.4   // skewed: hot accounts collide constantly
				res, err := Run("transfer", "medley-sharded", cfg)
				if err != nil {
					t.Fatal(err)
				}
				if n := res.AuxN("imbalance"); n != 0 {
					t.Errorf("imbalance=%d: money not conserved (%s)", n, res.AuxString())
				}
				if res.AuxN("transfers") == 0 {
					t.Errorf("no transfers completed: %s", res.AuxString())
				}
				if noLatch && res.Stats.LatchWaits != 0 {
					t.Errorf("NoLatch run still waited on latches: %+v", res.Stats)
				}
			})
		}
	}
}

// TestLatHist pins the histogram math the percentile mode relies on.
func TestLatHist(t *testing.T) {
	h := &latHist{}
	for i := 1; i <= 1000; i++ {
		h.record(time.Duration(i) * time.Microsecond)
	}
	p50 := h.percentile(0.50)
	if p50 < 400*time.Microsecond || p50 > 600*time.Microsecond {
		t.Errorf("p50 of uniform 1..1000us = %v, want ~500us", p50)
	}
	p99 := h.percentile(0.99)
	if p99 < 900*time.Microsecond || p99 > 1100*time.Microsecond {
		t.Errorf("p99 of uniform 1..1000us = %v, want ~990us", p99)
	}
	if h.percentile(1.0) < p99 {
		t.Error("percentile not monotone")
	}
	var other latHist
	other.record(time.Millisecond)
	h.merge(&other)
	if h.count != 1001 {
		t.Errorf("merged count = %d, want 1001", h.count)
	}
	empty := &latHist{}
	if empty.percentile(0.99) != 0 {
		t.Error("empty histogram must report zero")
	}
}

// TestCapabilityGating pins which engines each scenario admits: the
// workqueue runs exactly on the queue-capable engines (Medley family +
// Original), and the map scenarios exclude the static (LFTT) and
// non-transactional (Original) backends.
func TestCapabilityGating(t *testing.T) {
	in := func(list []string, k string) bool {
		for _, v := range list {
			if v == k {
				return true
			}
		}
		return false
	}
	wq := Engines("workqueue")
	for _, want := range []string{"medley", "txmontage", "original"} {
		if !in(wq, want) {
			t.Errorf("workqueue series missing %q: %v", want, wq)
		}
	}
	for _, deny := range []string{"onefile", "tdsl", "lftt", "boost"} {
		if in(wq, deny) {
			t.Errorf("workqueue series must exclude %q (no CapQueue): %v", deny, wq)
		}
	}
	for _, sc := range []string{"cache", "transfer"} {
		series := Engines(sc)
		for _, deny := range []string{"lftt", "original"} {
			if in(series, deny) {
				t.Errorf("%s series must exclude %q: %v", sc, deny, series)
			}
		}
		for _, want := range []string{"medley", "onefile", "tdsl", "boost"} {
			if !in(series, want) {
				t.Errorf("%s series missing %q: %v", sc, want, series)
			}
		}
	}

	if _, err := Run("no-such-workload", "medley", smokeConfig()); err == nil {
		t.Error("unknown scenario must fail")
	}
	if _, err := Run("cache", "no-such-engine", smokeConfig()); err == nil {
		t.Error("unknown engine must fail")
	}
	if _, err := Run("workqueue", "boost", smokeConfig()); err == nil {
		t.Error("workqueue on boost must be rejected (queues have no inverses)")
	}
	if _, err := Run("cache", "original", smokeConfig()); err == nil {
		t.Error("cache on original must be rejected (no transactions)")
	}
}
