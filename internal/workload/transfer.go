package workload

import (
	"errors"
	"math/rand/v2"
	"sync/atomic"

	"medley/internal/txengine"
)

// transferScenario moves value between accounts split across two
// independent maps (checking and savings) — the paper's Figure 3 shape —
// with contention set by the account count (Config.Scale shrinks it toward
// a handful of hot accounts). Each transfer reads the source balance,
// aborts for business reasons when it is short, and otherwise writes both
// maps in one transaction; one in ten transactions is a read-only audit.
// The post-run audit sums every balance: any drift from the preloaded total
// is an atomicity violation.
var transferScenario = Scenario{
	Key:    "transfer",
	Doc:    "atomic cross-map transfers at configurable contention",
	CanRun: needDynamicTx,
	run:    runTransfer,
}

const startBalance = 1_000

func runTransfer(eng txengine.Engine, caps txengine.Caps, cfg Config) (Result, error) {
	kind := mapKind(caps)
	accounts := cfg.accounts()
	checking, err := eng.NewUintMap(txengine.MapSpec{Kind: kind, Buckets: int(accounts)})
	if err != nil {
		return Result{}, err
	}
	savings, err := eng.NewUintMap(txengine.MapSpec{Kind: kind, Buckets: int(accounts)})
	if err != nil {
		return Result{}, err
	}

	hints := !cfg.NoHints
	loader := eng.NewWorker(cfg.threads())
	const chunk = 256
	var hintKeys []uint64
	for lo := uint64(0); lo < accounts; lo += chunk {
		hi := min(lo+chunk, accounts)
		if hints {
			// A load chunk's keys are known up front; pre-declare them so
			// sharded engines lock the chunk's whole shard set first try.
			hintKeys = hintKeys[:0]
			for a := lo; a < hi; a++ {
				hintKeys = append(hintKeys, a)
			}
			txengine.HintKeys(loader, hintKeys...)
		}
		if err := loader.Run(func() error {
			for a := lo; a < hi; a++ {
				checking.Put(loader, a, startBalance)
				savings.Put(loader, a, startBalance)
			}
			return nil
		}); err != nil {
			return Result{}, err
		}
	}
	total := 2 * accounts * startBalance

	var transfers, audits, insufficient atomic.Uint64
	base := eng.Stats()
	txns, el, lh := drive(cfg.threads(), cfg.dur(), cfg.Warmup, cfg.Latency, func(tid int) func() uint64 {
		tx := eng.NewWorker(tid)
		rng := rand.New(rand.NewPCG(cfg.seed(), uint64(tid)+1))
		// Accounts draw uniformly by default; Config.ZipfS > 1 skews the
		// draws toward a few hot accounts (the contention knob of the latch
		// A/B measurements — under skew, whole-shard locking serializes the
		// hot shard while key latches only serialize the hot accounts).
		draw := func() uint64 { return rng.Uint64N(accounts) }
		if cfg.ZipfS > 1 {
			z := rand.NewZipf(rng, cfg.ZipfS, 1, accounts-1)
			draw = z.Uint64
		}
		var hintKeys [2]uint64 // reused so hinting allocates nothing per txn
		return func() uint64 {
			from := draw()
			to := draw()
			// Both account keys are known before the transaction begins —
			// the transfer shape's planner hint. On sharded engines the
			// pre-declared shard set is locked up front, skipping the
			// footprint-discovery restart; elsewhere HintKeys is a no-op.
			if hints {
				hintKeys[0], hintKeys[1] = from, to
				txengine.HintKeys(tx, hintKeys[:]...)
			}
			if rng.IntN(10) == 0 {
				// Audit: one consistent read of an account pair.
				tx.RunRead(func() {
					checking.Get(tx, from)
					savings.Get(tx, to)
				})
				audits.Add(1)
				return 1
			}
			amt := uint64(rng.IntN(100) + 1)
			// Alternate direction so neither map drains over a long run.
			src, dst := checking, savings
			if rng.IntN(2) == 0 {
				src, dst = savings, checking
			}
			err := tx.Run(func() error {
				c, ok := src.Get(tx, from)
				if !ok {
					return nil // doomed attempt on a blocking engine; retried
				}
				if c < amt {
					return tx.Abort() // insufficient funds: business abort
				}
				src.Put(tx, from, c-amt)
				s, _ := dst.Get(tx, to)
				dst.Put(tx, to, s+amt)
				return nil
			})
			switch {
			case err == nil:
				transfers.Add(1)
				return 1
			case errors.Is(err, txengine.ErrBusinessAbort):
				// Deliberately completed work, like TPC-C's rolled-back
				// newOrder.
				insufficient.Add(1)
				return 1
			default:
				return 0
			}
		}
	}, func() {
		// Re-snapshot the stats base at the measurement boundary so the
		// reported delta excludes warm-up transactions, matching Txns. The
		// Aux counters deliberately keep spanning the whole run: the
		// conservation audit below must see every transfer.
		base = eng.Stats()
	})

	// Snapshot the measured delta before the audit: audit reads are
	// one-shot transactions on some engines and must not inflate it.
	stats := eng.Stats().Delta(base)

	// Post-run audit: money is conserved iff every transfer was atomic.
	audit := eng.NewWorker(cfg.threads() + 1)
	sum := uint64(0)
	for a := uint64(0); a < accounts; a++ {
		c, _ := checking.Get(audit, a)
		s, _ := savings.Get(audit, a)
		sum += c + s
	}
	imbalance := sum - total
	if sum < total {
		imbalance = total - sum
	}

	res := Result{
		Txns: txns, Duration: el,
		Throughput: float64(txns) / el.Seconds(),
		Stats:      stats,
		Aux: []AuxCount{
			{"transfers", transfers.Load()},
			{"audits", audits.Load()},
			{"insufficient", insufficient.Load()},
			{"imbalance", imbalance},
		},
	}
	res.attachLatency(lh)
	return res, nil
}
