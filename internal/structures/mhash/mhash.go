// Package mhash implements Michael's lock-free chained hash table (Michael,
// SPAA 2002) with NBTC-transformed bucket lists, matching the transactional
// hash table used throughout the Medley paper's evaluation (Figs. 2, 3, 7).
// Each bucket is a Michael ordered list from package mlist; all
// transactional machinery lives there.
package mhash

import (
	"cmp"

	"medley/internal/core"
	"medley/internal/structures/mlist"
)

// Map is a fixed-capacity chained hash table. The zero value is not usable;
// construct with New.
type Map[K cmp.Ordered, V any] struct {
	buckets []mlist.List[K, V]
	hash    func(K) uint64
}

// New creates a hash table with nbuckets chains (rounded up to one) using
// the given hash function. The paper's benchmarks use 1M buckets for a 1M
// key space.
func New[K cmp.Ordered, V any](nbuckets int, hash func(K) uint64) *Map[K, V] {
	if nbuckets < 1 {
		nbuckets = 1
	}
	return &Map[K, V]{
		buckets: make([]mlist.List[K, V], nbuckets),
		hash:    hash,
	}
}

// NewUint64 creates a hash table keyed by uint64 using a Fibonacci/mix hash.
func NewUint64[V any](nbuckets int) *Map[uint64, V] {
	return New[uint64, V](nbuckets, Mix64)
}

// Mix64 is a 64-bit finalizer-style hash (splitmix64 finalization) suitable
// for integer keys.
func Mix64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

func (m *Map[K, V]) bucket(k K) *mlist.List[K, V] {
	return &m.buckets[m.hash(k)%uint64(len(m.buckets))]
}

// Get returns the value bound to k, if any.
func (m *Map[K, V]) Get(s *core.Session, k K) (V, bool) { return m.bucket(k).Get(s, k) }

// Contains reports whether k is present.
func (m *Map[K, V]) Contains(s *core.Session, k K) bool { return m.bucket(k).Contains(s, k) }

// Put binds k to v; it returns the previous value if k was present.
func (m *Map[K, V]) Put(s *core.Session, k K, v V) (V, bool) { return m.bucket(k).Put(s, k, v) }

// Insert adds k→v only if absent, reporting whether insertion happened.
func (m *Map[K, V]) Insert(s *core.Session, k K, v V) bool { return m.bucket(k).Insert(s, k, v) }

// Remove deletes k, returning its value if present.
func (m *Map[K, V]) Remove(s *core.Session, k K) (V, bool) { return m.bucket(k).Remove(s, k) }

// Len counts present keys. Diagnostic, non-linearizable.
func (m *Map[K, V]) Len() int {
	n := 0
	for i := range m.buckets {
		n += m.buckets[i].Len()
	}
	return n
}

// Range calls f for every present pair until f returns false. Diagnostic,
// non-linearizable.
func (m *Map[K, V]) Range(f func(K, V) bool) {
	for i := range m.buckets {
		stop := false
		m.buckets[i].Range(func(k K, v V) bool {
			if !f(k, v) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}
