package mhash

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"medley/internal/core"
)

func TestBasicOps(t *testing.T) {
	m := NewUint64[string](64)
	s := core.NewTxManager().Session()
	if _, ok := m.Get(s, 1); ok {
		t.Fatal("empty map had a key")
	}
	m.Put(s, 1, "one")
	m.Put(s, 65, "sixty-five") // same bucket as 1 for small tables, maybe
	if v, ok := m.Get(s, 1); !ok || v != "one" {
		t.Fatalf("Get(1) = %q,%v", v, ok)
	}
	if v, ok := m.Get(s, 65); !ok || v != "sixty-five" {
		t.Fatalf("Get(65) = %q,%v", v, ok)
	}
	if v, ok := m.Remove(s, 1); !ok || v != "one" {
		t.Fatalf("Remove = %q,%v", v, ok)
	}
	if m.Contains(s, 1) {
		t.Fatal("contains removed key")
	}
	if !m.Contains(s, 65) {
		t.Fatal("lost unrelated key")
	}
}

func TestSingleBucketDegenerate(t *testing.T) {
	// All keys collide: the table degenerates to one ordered list and must
	// still be correct.
	m := New[uint64, int](1, func(uint64) uint64 { return 0 })
	s := core.NewTxManager().Session()
	for k := uint64(0); k < 100; k++ {
		if !m.Insert(s, k, int(k)) {
			t.Fatalf("insert %d failed", k)
		}
	}
	if m.Len() != 100 {
		t.Fatalf("Len = %d", m.Len())
	}
	for k := uint64(0); k < 100; k += 2 {
		m.Remove(s, k)
	}
	if m.Len() != 50 {
		t.Fatalf("Len = %d after removes", m.Len())
	}
}

func TestModelProperty(t *testing.T) {
	f := func(keys []uint8, vals []int16, kinds []uint8) bool {
		m := NewUint64[int16](8)
		s := core.NewTxManager().Session()
		model := map[uint64]int16{}
		n := len(keys)
		if len(kinds) < n {
			n = len(kinds)
		}
		for i := 0; i < n; i++ {
			k := uint64(keys[i])
			var v int16
			if len(vals) > 0 {
				v = vals[i%len(vals)]
			}
			switch kinds[i] % 3 {
			case 0:
				m.Put(s, k, v)
				model[k] = v
			case 1:
				gv, gok := m.Get(s, k)
				mv, mok := model[k]
				if gok != mok || (gok && gv != mv) {
					return false
				}
			case 2:
				_, gok := m.Remove(s, k)
				_, mok := model[k]
				if gok != mok {
					return false
				}
				delete(model, k)
			}
		}
		return m.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentMixedWorkload(t *testing.T) {
	m := NewUint64[uint64](256)
	mgr := core.NewTxManager()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := mgr.Session()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 5000; i++ {
				k := uint64(rng.Intn(512))
				switch rng.Intn(3) {
				case 0:
					m.Put(s, k, k*10)
				case 1:
					if v, ok := m.Get(s, k); ok && v != k*10 {
						t.Errorf("Get(%d) = %d", k, v)
					}
				case 2:
					m.Remove(s, k)
				}
			}
		}(w)
	}
	wg.Wait()
	m.Range(func(k, v uint64) bool {
		if v != k*10 {
			t.Errorf("corrupt pair %d->%d", k, v)
		}
		return true
	})
}

// The paper's Fig. 3: transfer between accounts in two hash tables.
func TestBankTransferBetweenTables(t *testing.T) {
	mgr := core.NewTxManager()
	ht1 := NewUint64[int](64)
	ht2 := NewUint64[int](64)
	s := mgr.Session()
	ht1.Put(s, 1, 100)
	ht2.Put(s, 2, 50)

	transfer := func(s *core.Session, amount int) error {
		return s.Run(func() error {
			v1, ok := ht1.Get(s, 1)
			if !ok || v1 < amount {
				s.TxAbort()
				return errInsufficient
			}
			v2, _ := ht2.Get(s, 2)
			ht1.Put(s, 1, v1-amount)
			ht2.Put(s, 2, v2+amount)
			return nil
		})
	}
	if err := transfer(s, 30); err != nil {
		t.Fatal(err)
	}
	v1, _ := ht1.Get(s, 1)
	v2, _ := ht2.Get(s, 2)
	if v1 != 70 || v2 != 80 {
		t.Fatalf("balances = %d,%d", v1, v2)
	}
	// Overdraft must fail atomically.
	if err := transfer(s, 1000); err != errInsufficient {
		t.Fatalf("overdraft err = %v", err)
	}
	v1, _ = ht1.Get(s, 1)
	v2, _ = ht2.Get(s, 2)
	if v1 != 70 || v2 != 80 {
		t.Fatalf("balances changed on failed transfer: %d,%d", v1, v2)
	}
}

var errInsufficient = errTest("insufficient funds")

type errTest string

func (e errTest) Error() string { return string(e) }

// Concurrent transfers across tables preserve total balance.
func TestConcurrentTransfersPreserveTotal(t *testing.T) {
	mgr := core.NewTxManager()
	ht1 := NewUint64[int](128)
	ht2 := NewUint64[int](128)
	setup := mgr.Session()
	const accounts = 16
	for a := uint64(0); a < accounts; a++ {
		ht1.Put(setup, a, 1000)
		ht2.Put(setup, a, 1000)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := mgr.Session()
			rng := rand.New(rand.NewSource(int64(w) * 7))
			for i := 0; i < 800; i++ {
				a1 := uint64(rng.Intn(accounts))
				a2 := uint64(rng.Intn(accounts))
				src, dst := ht1, ht2
				if rng.Intn(2) == 0 {
					src, dst = ht2, ht1
				}
				_ = s.Run(func() error {
					v1, ok1 := src.Get(s, a1)
					if !ok1 || v1 < 1 {
						return nil
					}
					v2, _ := dst.Get(s, a2)
					src.Put(s, a1, v1-1)
					dst.Put(s, a2, v2+1)
					return nil
				})
			}
		}(w)
	}
	wg.Wait()
	total := 0
	s := mgr.Session()
	for a := uint64(0); a < accounts; a++ {
		if v, ok := ht1.Get(s, a); ok {
			total += v
		}
		if v, ok := ht2.Get(s, a); ok {
			total += v
		}
	}
	if total != accounts*2000 {
		t.Fatalf("total = %d, want %d", total, accounts*2000)
	}
}
