package mhash

import (
	"sync"
	"sync/atomic"
	"testing"

	"medley/internal/core"
)

// Focused reproducer: a single account, concurrent read-modify-write
// transactions. Committed decrements must exactly match the value delta.
func TestLostUpdateSingleAccount(t *testing.T) {
	for round := 0; round < 20; round++ {
		mgr := core.NewTxManager()
		m := NewUint64[int](1) // single bucket: maximum contention
		setup := mgr.Session()
		m.Put(setup, 1, 1_000_000)

		var committed atomic.Int64
		const workers = 8
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				s := mgr.Session()
				for i := 0; i < 500; i++ {
					err := s.Run(func() error {
						v, ok := m.Get(s, 1)
						if !ok {
							return core.ErrTxAborted
						}
						m.Put(s, 1, v-1)
						return nil
					})
					if err == nil {
						committed.Add(1)
					}
				}
			}(w)
		}
		wg.Wait()
		v, _ := m.Get(setup, 1)
		want := 1_000_000 - int(committed.Load())
		if v != want {
			t.Fatalf("round %d: value = %d, want %d (lost %d updates)",
				round, v, want, v-want)
		}
	}
}
