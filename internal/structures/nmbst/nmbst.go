// Package nmbst implements the lock-free external binary search tree of
// Natarajan & Mittal (PPoPP 2014), NBTC-transformed for Medley transactions.
// This is the structure the Medley paper uses to illustrate publication
// points that precede linearization (Section 2.2): a delete first "injects"
// its intent by flagging the edge above the victim leaf; helpers that
// encounter the flag complete the splice.
//
// Shape: an external BST — internal nodes route, leaves carry key/value
// bindings, every internal node has exactly two children. Mutation state
// lives in edges: an edge value is {child, flagged, tagged}. Flagging the
// edge above a leaf announces (and here linearizes) the leaf's deletion;
// tagging the sibling edge freezes it so the parent can be spliced out.
//
// NBTC mapping:
//   - Insert / value-replacing Put linearize at the single CAS replacing the
//     parent→leaf edge (linPt = pubPt = true).
//   - Delete linearizes at the flagging CAS (linPt = pubPt = true, the
//     "injection point" of the original algorithm); tagging the sibling and
//     splicing are post-critical cleanup, also performed by helpers that
//     trip over the flag.
//   - Read outcomes record the parent→leaf edge load; commit-time
//     validation of that cell covers both presence (the leaf, unflagged)
//     and absence (a different leaf where k would live).
//
// Keys are uint64 with the two largest values reserved as sentinels (as in
// the original paper); values are arbitrary and immutable per leaf.
package nmbst

import (
	"math"

	"medley/internal/core"
)

const (
	inf1 = math.MaxUint64 - 1 // sentinel key ∞₁
	inf2 = math.MaxUint64     // sentinel key ∞₂
	// MaxKey is the largest user key storable in the tree.
	MaxKey = inf1 - 1
)

type node[V any] struct {
	key  uint64
	val  V
	leaf bool
	// left, right are edges; unused (zero) in leaves.
	left, right core.CASObj[edge[V]]
}

// edge is a child reference plus the flag/tag control bits of Natarajan &
// Mittal.
type edge[V any] struct {
	n    *node[V]
	flag bool // set on the edge above a leaf being deleted
	tag  bool // set on the sibling edge while the parent is spliced out
}

// Tree is a lock-free external BST supporting transactional composition.
// Construct with New.
type Tree[V any] struct {
	root *node[V] // internal, key ∞₂
}

// New returns an empty tree (sentinel scaffolding only).
func New[V any]() *Tree[V] {
	s := &node[V]{key: inf1}
	s.left.Store(edge[V]{n: &node[V]{key: inf1, leaf: true}})
	s.right.Store(edge[V]{n: &node[V]{key: inf2, leaf: true}})
	r := &node[V]{key: inf2}
	r.left.Store(edge[V]{n: s})
	r.right.Store(edge[V]{n: &node[V]{key: inf2, leaf: true}})
	return &Tree[V]{root: r}
}

// seekRec is the seek record of the original algorithm, augmented with the
// CASObj handles and ReadTags NBTC needs.
type seekRec[V any] struct {
	ancObj *core.CASObj[edge[V]] // edge from which successor hangs
	ancVal edge[V]               // its value when traversed (untagged, unflagged)
	succ   *node[V]              // successor: ancVal.n
	parent *node[V]              // parent of leaf
	parObj *core.CASObj[edge[V]] // edge parent→leaf
	parVal edge[V]               // its observed value
	parTag core.ReadTag          // tag of that load (linearizing read)
	leaf   *node[V]
	sibObj *core.CASObj[edge[V]] // edge parent→sibling
}

// childObj returns the edge object of parent on the side where k routes.
func childObj[V any](n *node[V], k uint64) (*core.CASObj[edge[V]], *core.CASObj[edge[V]]) {
	if k < n.key {
		return &n.left, &n.right
	}
	return &n.right, &n.left
}

// seek descends to the leaf where k lives or would live, maintaining the
// ancestor/successor pair exactly as in Natarajan & Mittal: the ancestor
// edge is the deepest clean (unflagged, untagged) edge on the path.
func (t *Tree[V]) seek(s *core.Session, k uint64) seekRec[V] {
	var r seekRec[V]
	r.parent = t.root
	parObj := &t.root.left
	curVal, curTag := parObj.NbtcLoad(s)
	cur := curVal.n
	r.ancObj, r.ancVal, r.succ = parObj, curVal, cur
	for !cur.leaf {
		if !curVal.tag && !curVal.flag {
			r.ancObj = parObj
			r.ancVal = curVal
			r.succ = cur
		}
		r.parent = cur
		parObj, _ = childObj(cur, k)
		v, tg := parObj.NbtcLoad(s)
		curVal, curTag = v, tg
		cur = v.n
	}
	r.parObj = parObj
	r.parVal = curVal
	r.parTag = curTag
	r.leaf = cur
	_, r.sibObj = childObj(r.parent, k)
	return r
}

// Get returns the value bound to k, if any.
func (t *Tree[V]) Get(s *core.Session, k uint64) (V, bool) {
	s.OpStart()
	r := t.seek(s, k)
	s.AddToReadSet(r.parObj, r.parTag)
	if r.leaf.key == k && !r.parVal.flag {
		return r.leaf.val, true
	}
	var zero V
	return zero, false
}

// Contains reports whether k is present.
func (t *Tree[V]) Contains(s *core.Session, k uint64) bool {
	_, ok := t.Get(s, k)
	return ok
}

// Insert adds k→v only if absent, reporting whether insertion happened.
func (t *Tree[V]) Insert(s *core.Session, k uint64, v V) bool {
	s.OpStart()
	for {
		r := t.seek(s, k)
		if r.leaf.key == k && !r.parVal.flag {
			s.AddToReadSet(r.parObj, r.parTag)
			return false
		}
		if t.tryInsert(s, &r, k, v) {
			return true
		}
		t.help(s, &r)
	}
}

// Put binds k to v, returning the previous value if k was present. A
// replacing Put swaps the leaf for a fresh one in a single edge CAS.
func (t *Tree[V]) Put(s *core.Session, k uint64, v V) (old V, replaced bool) {
	s.OpStart()
	for {
		r := t.seek(s, k)
		if r.leaf.key == k && !r.parVal.flag {
			nl := &node[V]{key: k, val: v, leaf: true}
			if r.parObj.NbtcCAS(s, edge[V]{r.leaf, false, false}, edge[V]{nl, false, false}, true, true) {
				victim := r.leaf
				s.AddToCleanups(func() { s.TRetire(victim) })
				return r.leaf.val, true
			}
			t.help(s, &r)
			continue
		}
		if t.tryInsert(s, &r, k, v) {
			var zero V
			return zero, false
		}
		t.help(s, &r)
	}
}

// tryInsert attempts to replace the reached leaf edge with a new internal
// node holding the old leaf and the new one.
func (t *Tree[V]) tryInsert(s *core.Session, r *seekRec[V], k uint64, v V) bool {
	if r.parVal.flag || r.parVal.tag {
		return false
	}
	nl := &node[V]{key: k, val: v, leaf: true}
	var in *node[V]
	if k < r.leaf.key {
		in = &node[V]{key: r.leaf.key}
		in.left.Store(edge[V]{n: nl})
		in.right.Store(edge[V]{n: r.leaf})
	} else {
		in = &node[V]{key: k}
		in.left.Store(edge[V]{n: r.leaf})
		in.right.Store(edge[V]{n: nl})
	}
	return r.parObj.NbtcCAS(s, edge[V]{r.leaf, false, false}, edge[V]{in, false, false}, true, true)
}

// Remove deletes k, returning its value if present. Linearization (and
// publication) point is the flagging CAS on the parent→leaf edge; the
// splice is post-critical cleanup, also executed by helpers.
func (t *Tree[V]) Remove(s *core.Session, k uint64) (V, bool) {
	s.OpStart()
	for {
		r := t.seek(s, k)
		if r.leaf.key != k || r.parVal.flag {
			s.AddToReadSet(r.parObj, r.parTag)
			var zero V
			return zero, false
		}
		if r.parVal.tag {
			t.help(s, &r)
			continue
		}
		if r.parObj.NbtcCAS(s, edge[V]{r.leaf, false, false}, edge[V]{r.leaf, true, false}, true, true) {
			leaf := r.leaf
			s.AddToCleanups(func() { t.completeDelete(s, k, leaf) })
			return r.leaf.val, true
		}
		t.help(s, &r)
	}
}

// completeDelete finishes a linearized delete: tag the sibling edge, splice
// the parent out from under the ancestor, propagating any pending flag on
// the sibling edge (concurrent delete of the sibling) to its new location.
func (t *Tree[V]) completeDelete(s *core.Session, k uint64, leaf *node[V]) {
	for {
		r := t.seek(s, k)
		if r.leaf != leaf {
			return // already spliced out
		}
		pv, _ := r.parObj.NbtcLoad(s)
		if pv.n != leaf || !pv.flag {
			return
		}
		sv, _ := r.sibObj.NbtcLoad(s)
		if !sv.tag {
			r.sibObj.NbtcCAS(s, sv, edge[V]{sv.n, sv.flag, true}, false, false)
			continue
		}
		// Splice: ancestor edge succ → sibling subtree (flag travels).
		if r.ancObj.NbtcCAS(s, edge[V]{r.succ, false, false}, edge[V]{sv.n, sv.flag, false}, false, false) {
			return
		}
		// Ancestor changed; re-seek and retry (or discover completion).
	}
}

// help inspects the edges around a seek record after a failed update; if a
// linearized delete's flag or tag blocks progress, complete that delete so
// that a solo thread always advances (obstruction freedom relies on this).
// If our edge is tagged, the delete in progress flagged the sibling edge of
// the same parent.
func (t *Tree[V]) help(s *core.Session, r *seekRec[V]) {
	pv, _ := r.parObj.NbtcLoad(s)
	if pv.flag && pv.n != nil && pv.n.leaf {
		t.completeDelete(s, pv.n.key, pv.n)
		return
	}
	sv, _ := r.sibObj.NbtcLoad(s)
	if sv.flag && sv.n != nil && sv.n.leaf {
		t.completeDelete(s, sv.n.key, sv.n)
	}
}

// Len counts present keys; diagnostic, non-linearizable.
func (t *Tree[V]) Len() int {
	n := 0
	t.Range(func(uint64, V) bool { n++; return true })
	return n
}

// Keys returns present keys in order; diagnostic, non-linearizable.
func (t *Tree[V]) Keys() []uint64 {
	var ks []uint64
	t.Range(func(k uint64, _ V) bool { ks = append(ks, k); return true })
	return ks
}

// Range walks the tree in key order calling f on every present binding
// until f returns false. Diagnostic, non-linearizable.
func (t *Tree[V]) Range(f func(uint64, V) bool) {
	t.walk(t.root, f)
}

func (t *Tree[V]) walk(n *node[V], f func(uint64, V) bool) bool {
	if n.leaf {
		if n.key <= MaxKey {
			return f(n.key, n.val)
		}
		return true
	}
	le := n.left.Load()
	if le.n != nil && !(le.flag && le.n.leaf) { // flagged leaf = deleted
		if !t.walk(le.n, f) {
			return false
		}
	}
	re := n.right.Load()
	if re.n != nil && !(re.flag && re.n.leaf) {
		return t.walk(re.n, f)
	}
	return true
}
