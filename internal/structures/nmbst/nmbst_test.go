package nmbst

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"medley/internal/core"
)

func newSession() *core.Session { return core.NewTxManager().Session() }

func TestEmpty(t *testing.T) {
	tr := New[string]()
	s := newSession()
	if _, ok := tr.Get(s, 1); ok {
		t.Fatal("found key in empty tree")
	}
	if _, ok := tr.Remove(s, 1); ok {
		t.Fatal("removed from empty tree")
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestInsertGetRemove(t *testing.T) {
	tr := New[string]()
	s := newSession()
	if !tr.Insert(s, 10, "ten") {
		t.Fatal("insert failed")
	}
	if tr.Insert(s, 10, "again") {
		t.Fatal("duplicate insert succeeded")
	}
	if v, ok := tr.Get(s, 10); !ok || v != "ten" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	if v, ok := tr.Remove(s, 10); !ok || v != "ten" {
		t.Fatalf("Remove = %q,%v", v, ok)
	}
	if _, ok := tr.Get(s, 10); ok {
		t.Fatal("present after remove")
	}
	// Tree usable after delete (sentinels intact).
	if !tr.Insert(s, 10, "redo") {
		t.Fatal("re-insert failed")
	}
}

func TestPutReplace(t *testing.T) {
	tr := New[int]()
	s := newSession()
	if _, replaced := tr.Put(s, 5, 50); replaced {
		t.Fatal("fresh put replaced")
	}
	old, replaced := tr.Put(s, 5, 51)
	if !replaced || old != 50 {
		t.Fatalf("Put = %d,%v", old, replaced)
	}
	if v, _ := tr.Get(s, 5); v != 51 {
		t.Fatalf("Get = %d", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestManyKeysSorted(t *testing.T) {
	tr := New[int]()
	s := newSession()
	perm := rand.Perm(2000)
	for _, k := range perm {
		tr.Insert(s, uint64(k), k)
	}
	ks := tr.Keys()
	if len(ks) != 2000 {
		t.Fatalf("len = %d", len(ks))
	}
	if !sort.SliceIsSorted(ks, func(i, j int) bool { return ks[i] < ks[j] }) {
		t.Fatal("keys not sorted")
	}
	for _, k := range perm {
		if v, ok := tr.Get(s, uint64(k)); !ok || v != k {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
}

func TestDeleteInteriorShapes(t *testing.T) {
	// Exercise splices with siblings that are leaves and subtrees.
	tr := New[int]()
	s := newSession()
	for _, k := range []uint64{50, 25, 75, 12, 37, 62, 87} {
		tr.Insert(s, k, int(k))
	}
	for _, k := range []uint64{25, 75, 50, 12, 87, 37, 62} {
		if _, ok := tr.Remove(s, k); !ok {
			t.Fatalf("remove %d failed", k)
		}
		if _, ok := tr.Get(s, k); ok {
			t.Fatalf("key %d visible after remove", k)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestSequentialModelProperty(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
		Val  int
	}
	f := func(ops []op) bool {
		tr := New[int]()
		s := newSession()
		model := map[uint64]int{}
		for _, o := range ops {
			k := uint64(o.Key)
			switch o.Kind % 4 {
			case 0:
				mv, mok := model[k]
				v, ok := tr.Get(s, k)
				if ok != mok || (ok && v != mv) {
					return false
				}
			case 1:
				_, mok := model[k]
				if tr.Insert(s, k, o.Val) == mok {
					return false
				}
				if !mok {
					model[k] = o.Val
				}
			case 2:
				mv, mok := model[k]
				old, replaced := tr.Put(s, k, o.Val)
				if replaced != mok || (replaced && old != mv) {
					return false
				}
				model[k] = o.Val
			case 3:
				mv, mok := model[k]
				v, ok := tr.Remove(s, k)
				if ok != mok || (ok && v != mv) {
					return false
				}
				delete(model, k)
			}
		}
		return tr.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentChurn(t *testing.T) {
	tr := New[int]()
	mgr := core.NewTxManager()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := mgr.Session()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 4000; i++ {
				k := uint64(rng.Intn(128))
				switch rng.Intn(3) {
				case 0:
					tr.Put(s, k, int(k)*3)
				case 1:
					if v, ok := tr.Get(s, k); ok && v != int(k)*3 {
						t.Errorf("Get(%d) = %d", k, v)
					}
				case 2:
					tr.Remove(s, k)
				}
			}
		}(w)
	}
	wg.Wait()
	ks := tr.Keys()
	seen := map[uint64]bool{}
	for _, k := range ks {
		if seen[k] {
			t.Fatalf("duplicate key %d", k)
		}
		seen[k] = true
	}
	if !sort.SliceIsSorted(ks, func(i, j int) bool { return ks[i] < ks[j] }) {
		t.Fatal("unsorted")
	}
}

func TestNoLostUpdatesSingleKey(t *testing.T) {
	for round := 0; round < 10; round++ {
		mgr := core.NewTxManager()
		tr := New[int]()
		setup := mgr.Session()
		tr.Put(setup, 1, 100000)
		var committed atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s := mgr.Session()
				for i := 0; i < 300; i++ {
					if s.Run(func() error {
						v, ok := tr.Get(s, 1)
						if !ok {
							return core.ErrTxAborted
						}
						tr.Put(s, 1, v-1)
						return nil
					}) == nil {
						committed.Add(1)
					}
				}
			}()
		}
		wg.Wait()
		v, _ := tr.Get(setup, 1)
		if want := 100000 - int(committed.Load()); v != want {
			t.Fatalf("round %d: %d want %d", round, v, want)
		}
	}
}

func TestTxReadsOwnWrites(t *testing.T) {
	mgr := core.NewTxManager()
	tr := New[int]()
	s := mgr.Session()
	err := s.Run(func() error {
		if !tr.Insert(s, 7, 70) {
			return core.ErrTxAborted
		}
		if v, ok := tr.Get(s, 7); !ok || v != 70 {
			t.Errorf("own insert invisible: %d,%v", v, ok)
		}
		if old, replaced := tr.Put(s, 7, 71); !replaced || old != 70 {
			t.Errorf("own replace wrong: %d,%v", old, replaced)
		}
		if v, ok := tr.Remove(s, 7); !ok || v != 71 {
			t.Errorf("own remove wrong: %d,%v", v, ok)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestAbortRollsBack(t *testing.T) {
	mgr := core.NewTxManager()
	tr := New[int]()
	s := mgr.Session()
	tr.Insert(s, 1, 10)
	tr.Insert(s, 2, 20)

	s.TxBegin()
	tr.Put(s, 1, 99)
	tr.Remove(s, 2)
	tr.Insert(s, 3, 30)
	s.TxAbort()

	if v, _ := tr.Get(s, 1); v != 10 {
		t.Fatalf("aborted put visible: %d", v)
	}
	if _, ok := tr.Get(s, 2); !ok {
		t.Fatal("aborted remove took effect")
	}
	if _, ok := tr.Get(s, 3); ok {
		t.Fatal("aborted insert visible")
	}
}

func TestConcurrentTransfersPreserveTotal(t *testing.T) {
	mgr := core.NewTxManager()
	t1 := New[int]()
	t2 := New[int]()
	setup := mgr.Session()
	const accounts = 16
	for a := uint64(0); a < accounts; a++ {
		t1.Put(setup, a, 1000)
		t2.Put(setup, a, 1000)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := mgr.Session()
			rng := rand.New(rand.NewSource(int64(w) * 31))
			for i := 0; i < 500; i++ {
				a1 := uint64(rng.Intn(accounts))
				a2 := uint64(rng.Intn(accounts))
				src, dst := t1, t2
				if rng.Intn(2) == 0 {
					src, dst = t2, t1
				}
				_ = s.Run(func() error {
					v1, ok := src.Get(s, a1)
					if !ok || v1 < 1 {
						return nil
					}
					v2, _ := dst.Get(s, a2)
					src.Put(s, a1, v1-1)
					dst.Put(s, a2, v2+1)
					return nil
				})
			}
		}(w)
	}
	wg.Wait()
	total := 0
	s := mgr.Session()
	for a := uint64(0); a < accounts; a++ {
		v1, _ := t1.Get(s, a)
		v2, _ := t2.Get(s, a)
		total += v1 + v2
	}
	if total != accounts*2000 {
		t.Fatalf("total = %d, want %d", total, accounts*2000)
	}
}

func TestSentinelKeysRejectedGracefully(t *testing.T) {
	tr := New[int]()
	s := newSession()
	// MaxKey is storable; sentinel range is not expected to be used but the
	// structure must not corrupt if MaxKey itself is exercised.
	if !tr.Insert(s, MaxKey, 1) {
		t.Fatal("MaxKey insert failed")
	}
	if v, ok := tr.Get(s, MaxKey); !ok || v != 1 {
		t.Fatalf("MaxKey get = %d,%v", v, ok)
	}
	if _, ok := tr.Remove(s, MaxKey); !ok {
		t.Fatal("MaxKey remove failed")
	}
}
