package rskiplist

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"medley/internal/core"
)

func newSession() *core.Session { return core.NewTxManager().Session() }

func TestBasicOps(t *testing.T) {
	sl := New[string]()
	s := newSession()
	if _, ok := sl.Get(s, 1); ok {
		t.Fatal("empty list had key")
	}
	if !sl.Insert(s, 1, "one") {
		t.Fatal("insert failed")
	}
	if sl.Insert(s, 1, "dup") {
		t.Fatal("dup insert succeeded")
	}
	if v, ok := sl.Get(s, 1); !ok || v != "one" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	old, replaced := sl.Put(s, 1, "uno")
	if !replaced || old != "one" {
		t.Fatalf("Put = %q,%v", old, replaced)
	}
	if v, ok := sl.Remove(s, 1); !ok || v != "uno" {
		t.Fatalf("Remove = %q,%v", v, ok)
	}
	if sl.Len() != 0 {
		t.Fatal("not empty")
	}
}

func TestDeterministicHeights(t *testing.T) {
	// The same key must always get the same height (the rotating list's
	// stable index shape).
	for k := uint64(0); k < 1000; k++ {
		if heightOf(k) != heightOf(k) {
			t.Fatal("height not deterministic")
		}
		if h := heightOf(k); h < 0 || h >= WheelSize {
			t.Fatalf("height %d out of range", h)
		}
	}
}

func TestSortedOrder(t *testing.T) {
	sl := New[int]()
	s := newSession()
	perm := rand.Perm(3000)
	for _, k := range perm {
		sl.Insert(s, uint64(k), k)
	}
	ks := sl.Keys()
	if len(ks) != 3000 {
		t.Fatalf("len = %d", len(ks))
	}
	if !sort.SliceIsSorted(ks, func(i, j int) bool { return ks[i] < ks[j] }) {
		t.Fatal("not sorted")
	}
}

func TestModelProperty(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
		Val  int
	}
	f := func(ops []op) bool {
		sl := New[int]()
		s := newSession()
		model := map[uint64]int{}
		for _, o := range ops {
			k := uint64(o.Key)
			switch o.Kind % 4 {
			case 0:
				mv, mok := model[k]
				v, ok := sl.Get(s, k)
				if ok != mok || (ok && v != mv) {
					return false
				}
			case 1:
				_, mok := model[k]
				if sl.Insert(s, k, o.Val) == mok {
					return false
				}
				if !mok {
					model[k] = o.Val
				}
			case 2:
				mv, mok := model[k]
				old, rep := sl.Put(s, k, o.Val)
				if rep != mok || (rep && old != mv) {
					return false
				}
				model[k] = o.Val
			case 3:
				mv, mok := model[k]
				v, ok := sl.Remove(s, k)
				if ok != mok || (ok && v != mv) {
					return false
				}
				delete(model, k)
			}
		}
		return sl.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentChurnAndTransfers(t *testing.T) {
	mgr := core.NewTxManager()
	a := New[int]()
	b := New[int]()
	setup := mgr.Session()
	const accounts = 16
	for k := uint64(0); k < accounts; k++ {
		a.Put(setup, k, 1000)
		b.Put(setup, k, 1000)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := mgr.Session()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 500; i++ {
				k1 := uint64(rng.Intn(accounts))
				k2 := uint64(rng.Intn(accounts))
				src, dst := a, b
				if rng.Intn(2) == 0 {
					src, dst = b, a
				}
				_ = s.Run(func() error {
					v1, ok := src.Get(s, k1)
					if !ok || v1 < 1 {
						return nil
					}
					v2, _ := dst.Get(s, k2)
					src.Put(s, k1, v1-1)
					dst.Put(s, k2, v2+1)
					return nil
				})
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for k := uint64(0); k < accounts; k++ {
		v1, _ := a.Get(setup, k)
		v2, _ := b.Get(setup, k)
		total += v1 + v2
	}
	if total != accounts*2000 {
		t.Fatalf("total = %d, want %d", total, accounts*2000)
	}
}

func TestNoLostUpdates(t *testing.T) {
	mgr := core.NewTxManager()
	sl := New[int]()
	setup := mgr.Session()
	sl.Put(setup, 7, 1_000_000)
	var committed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := mgr.Session()
			for i := 0; i < 400; i++ {
				if s.Run(func() error {
					v, ok := sl.Get(s, 7)
					if !ok {
						return core.ErrTxAborted
					}
					sl.Put(s, 7, v-1)
					return nil
				}) == nil {
					committed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	v, _ := sl.Get(setup, 7)
	if want := 1_000_000 - int(committed.Load()); v != want {
		t.Fatalf("value %d want %d", v, want)
	}
}

func TestTxComposition(t *testing.T) {
	mgr := core.NewTxManager()
	sl := New[int]()
	s := mgr.Session()
	err := s.Run(func() error {
		sl.Insert(s, 1, 10)
		if v, ok := sl.Get(s, 1); !ok || v != 10 {
			t.Errorf("own insert invisible: %d,%v", v, ok)
		}
		sl.Put(s, 1, 11)
		if v, ok := sl.Remove(s, 1); !ok || v != 11 {
			t.Errorf("own remove wrong: %d,%v", v, ok)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sl.Len() != 0 {
		t.Fatal("not empty after insert+remove tx")
	}
}
