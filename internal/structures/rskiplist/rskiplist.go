// Package rskiplist implements a rotating-skiplist-style ordered map (Dick,
// Fekete & Gramoli, "A skip list for multicore"), NBTC-transformed for
// Medley transactions — the fifth structure the paper reports transforming.
//
// The rotating skiplist's signature idea is to replace pointer-chased
// towers with fixed-size per-node arrays ("wheels") that the algorithm
// rotates as the global level range shifts, trading the allocation-heavy
// tower representation for cache-friendly inline arrays. This
// implementation keeps the wheel representation and the deterministic,
// maintenance-free height rule (heights derived from a hash of the key, so
// the index shape is stable under churn — no per-insert RNG, as in the
// original's background adaptation), but omits dynamic zero-level rotation:
// our workloads hold population roughly constant, so the level window never
// needs to move. DESIGN.md records this substitution.
//
// The NBTC transform is identical to package fskiplist: bottom-level link /
// mark CASes are the linearization and publication points, upper wheels are
// physical routing maintained outside the critical path, and read outcomes
// record the bottom-level predecessor edge plus the node's liveness edge.
package rskiplist

import (
	"math/bits"

	"medley/internal/core"
)

// WheelSize is the inline wheel capacity (max index height).
const WheelSize = 24

type node[V any] struct {
	key   uint64
	val   V
	level int
	wheel [WheelSize]core.CASObj[Ref[V]]
}

// Ref is a marked successor reference.
type Ref[V any] struct {
	n      *node[V]
	marked bool
}

// SkipList is a transactional rotating-style skiplist from uint64 to V.
// Construct with New.
type SkipList[V any] struct {
	head *node[V]
}

// New returns an empty list.
func New[V any]() *SkipList[V] {
	return &SkipList[V]{head: &node[V]{level: WheelSize - 1}}
}

// heightOf derives a deterministic geometric(1/2) height from the key, so
// the index is reproducible and re-inserted keys reuse their shape.
func heightOf(k uint64) int {
	h := k
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return bits.TrailingZeros64(h | (1 << (WheelSize - 1)))
}

type findResult[V any] struct {
	preds [WheelSize]*core.CASObj[Ref[V]]
	succs [WheelSize]*node[V]
	ptag  core.ReadTag
	ctag  core.ReadTag
	curr  *node[V]
	nxt0  Ref[V]
}

func (sl *SkipList[V]) find(s *core.Session, k uint64) (r findResult[V], found bool) {
retry:
	pred := sl.head
	for lvl := WheelSize - 1; lvl >= 0; lvl-- {
		predObj := &pred.wheel[lvl]
		cref, ctag := predObj.NbtcLoad(s)
		for {
			curr := cref.n
			if curr == nil {
				break
			}
			nref, ntag := curr.wheel[lvl].NbtcLoad(s)
			if nref.marked {
				if cref.marked {
					// entered through a dead edge: route through it
					pred = curr
					predObj = &curr.wheel[lvl]
					cref, ctag = nref, ntag
					continue
				}
				if !predObj.NbtcCAS(s, Ref[V]{curr, false}, Ref[V]{nref.n, false}, false, false) {
					goto retry
				}
				cref, ctag = predObj.NbtcLoad(s)
				want := Ref[V]{nref.n, false}
				if cref != want {
					goto retry
				}
				continue
			}
			if curr.key < k {
				pred = curr
				predObj = &curr.wheel[lvl]
				cref, ctag = nref, ntag
				continue
			}
			if lvl == 0 && curr.key == k {
				r.preds[0] = predObj
				r.succs[0] = curr
				r.ptag = ctag
				r.curr = curr
				r.ctag = ntag
				r.nxt0 = nref
				return r, true
			}
			break
		}
		r.preds[lvl] = predObj
		r.succs[lvl] = cref.n
		if lvl == 0 {
			r.ptag = ctag
		}
	}
	return r, false
}

// Get returns the value bound to k, if any.
func (sl *SkipList[V]) Get(s *core.Session, k uint64) (V, bool) {
	s.OpStart()
	r, found := sl.find(s, k)
	s.AddToReadSet(r.preds[0], r.ptag)
	if !found {
		var zero V
		return zero, false
	}
	s.AddToReadSet(&r.curr.wheel[0], r.ctag)
	return r.curr.val, true
}

// Contains reports whether k is present.
func (sl *SkipList[V]) Contains(s *core.Session, k uint64) bool {
	_, ok := sl.Get(s, k)
	return ok
}

// Put binds k to v, returning the previous value if k was present.
func (sl *SkipList[V]) Put(s *core.Session, k uint64, v V) (old V, replaced bool) {
	s.OpStart()
	for {
		r, found := sl.find(s, k)
		if found {
			nn := &node[V]{key: k, val: v, level: heightOf(k)}
			nn.wheel[0].Store(Ref[V]{r.nxt0.n, false})
			if r.curr.wheel[0].NbtcCAS(s, Ref[V]{r.nxt0.n, false}, Ref[V]{nn, true}, true, true) {
				victim := r.curr
				predObj := r.preds[0]
				sl.retireWheel(victim)
				s.AddToCleanups(func() {
					if predObj.CAS(Ref[V]{victim, false}, Ref[V]{nn, false}) {
						s.TRetire(victim)
					}
					sl.find(nil, k)
					sl.linkUpper(nn, k)
				})
				return r.curr.val, true
			}
			continue
		}
		if sl.insertAt(s, &r, k, v) {
			var zero V
			return zero, false
		}
	}
}

// Insert adds k→v only if absent, reporting whether insertion happened.
func (sl *SkipList[V]) Insert(s *core.Session, k uint64, v V) bool {
	s.OpStart()
	for {
		r, found := sl.find(s, k)
		if found {
			s.AddToReadSet(r.preds[0], r.ptag)
			s.AddToReadSet(&r.curr.wheel[0], r.ctag)
			return false
		}
		if sl.insertAt(s, &r, k, v) {
			return true
		}
	}
}

func (sl *SkipList[V]) insertAt(s *core.Session, r *findResult[V], k uint64, v V) bool {
	nn := &node[V]{key: k, val: v, level: heightOf(k)}
	nn.wheel[0].Store(Ref[V]{r.succs[0], false})
	if !r.preds[0].NbtcCAS(s, Ref[V]{r.succs[0], false}, Ref[V]{nn, false}, true, true) {
		return false
	}
	if nn.level > 0 {
		s.AddToCleanups(func() { sl.linkUpper(nn, k) })
	}
	return true
}

// Remove deletes k, returning its value if present.
func (sl *SkipList[V]) Remove(s *core.Session, k uint64) (V, bool) {
	s.OpStart()
	for {
		r, found := sl.find(s, k)
		if !found {
			s.AddToReadSet(r.preds[0], r.ptag)
			var zero V
			return zero, false
		}
		if r.curr.wheel[0].NbtcCAS(s, Ref[V]{r.nxt0.n, false}, Ref[V]{r.nxt0.n, true}, true, true) {
			victim := r.curr
			sl.retireWheel(victim)
			s.AddToCleanups(func() { sl.find(nil, k) })
			return r.curr.val, true
		}
	}
}

// retireWheel marks the upper wheel slots of a logically deleted node.
func (sl *SkipList[V]) retireWheel(victim *node[V]) {
	for lvl := victim.level; lvl >= 1; lvl-- {
		for {
			cur := victim.wheel[lvl].Load()
			if cur.marked {
				break
			}
			if victim.wheel[lvl].CAS(cur, Ref[V]{cur.n, true}) {
				break
			}
		}
	}
}

// linkUpper links levels 1..level of a committed live node.
func (sl *SkipList[V]) linkUpper(nn *node[V], k uint64) {
	for lvl := 1; lvl <= nn.level; lvl++ {
		for {
			if nn.wheel[0].Load().marked {
				return
			}
			r, found := sl.find(nil, k)
			if !found || r.curr != nn {
				return
			}
			succ := r.succs[lvl]
			if succ == nn {
				break
			}
			cur := nn.wheel[lvl].Load()
			if cur.marked {
				return
			}
			if cur.n != succ {
				if !nn.wheel[lvl].CAS(cur, Ref[V]{succ, false}) {
					continue
				}
			}
			if r.preds[lvl].CAS(Ref[V]{succ, false}, Ref[V]{nn, false}) {
				break
			}
		}
	}
}

// Len counts present keys; diagnostic, non-linearizable.
func (sl *SkipList[V]) Len() int {
	n := 0
	ref := sl.head.wheel[0].Load()
	for nd := ref.n; nd != nil; {
		nref := nd.wheel[0].Load()
		if !nref.marked {
			n++
		}
		nd = nref.n
	}
	return n
}

// Keys returns present keys in order; diagnostic, non-linearizable.
func (sl *SkipList[V]) Keys() []uint64 {
	var ks []uint64
	ref := sl.head.wheel[0].Load()
	for nd := ref.n; nd != nil; {
		nref := nd.wheel[0].Load()
		if !nref.marked {
			ks = append(ks, nd.key)
		}
		nd = nref.n
	}
	return ks
}

// Range calls f on each present pair in key order until f returns false.
// Diagnostic, non-linearizable.
func (sl *SkipList[V]) Range(f func(uint64, V) bool) {
	ref := sl.head.wheel[0].Load()
	for nd := ref.n; nd != nil; {
		nref := nd.wheel[0].Load()
		if !nref.marked {
			if !f(nd.key, nd.val) {
				return
			}
		}
		nd = nref.n
	}
}
