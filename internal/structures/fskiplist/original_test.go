package fskiplist

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestOriginalBasic(t *testing.T) {
	sl := NewOriginal[int, string]()
	if _, ok := sl.Get(1); ok {
		t.Fatal("empty had key")
	}
	if !sl.Insert(1, "one") {
		t.Fatal("insert failed")
	}
	if sl.Insert(1, "dup") {
		t.Fatal("dup insert succeeded")
	}
	if v, ok := sl.Get(1); !ok || v != "one" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	old, replaced := sl.Put(1, "uno")
	if !replaced || old != "one" {
		t.Fatalf("Put = %q,%v", old, replaced)
	}
	if v, ok := sl.Remove(1); !ok || v != "uno" {
		t.Fatalf("Remove = %q,%v", v, ok)
	}
	if sl.Len() != 0 {
		t.Fatal("not empty")
	}
}

func TestOriginalModelProperty(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
		Val  int
	}
	f := func(ops []op) bool {
		sl := NewOriginal[uint8, int]()
		model := map[uint8]int{}
		for _, o := range ops {
			switch o.Kind % 4 {
			case 0:
				mv, mok := model[o.Key]
				v, ok := sl.Get(o.Key)
				if ok != mok || (ok && v != mv) {
					return false
				}
			case 1:
				_, mok := model[o.Key]
				if sl.Insert(o.Key, o.Val) == mok {
					return false
				}
				if !mok {
					model[o.Key] = o.Val
				}
			case 2:
				mv, mok := model[o.Key]
				old, rep := sl.Put(o.Key, o.Val)
				if rep != mok || (rep && old != mv) {
					return false
				}
				model[o.Key] = o.Val
			case 3:
				mv, mok := model[o.Key]
				v, ok := sl.Remove(o.Key)
				if ok != mok || (ok && v != mv) {
					return false
				}
				delete(model, o.Key)
			}
		}
		return sl.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestOriginalConcurrentChurn(t *testing.T) {
	sl := NewOriginal[int, int]()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 4000; i++ {
				k := rng.Intn(256)
				switch rng.Intn(3) {
				case 0:
					sl.Put(k, k*5)
				case 1:
					if v, ok := sl.Get(k); ok && v != k*5 {
						t.Errorf("Get(%d) = %d", k, v)
					}
				case 2:
					sl.Remove(k)
				}
			}
		}(w)
	}
	wg.Wait()
	ks := make([]int, 0)
	seen := map[int]bool{}
	sl2 := sl // traversal via Len path
	_ = sl2
	// Collect via repeated Get over keyspace + order check via Len parity.
	for k := 0; k < 256; k++ {
		if _, ok := sl.Get(k); ok {
			if seen[k] {
				t.Fatalf("duplicate %d", k)
			}
			seen[k] = true
			ks = append(ks, k)
		}
	}
	if !sort.IntsAreSorted(ks) {
		t.Fatal("unsorted")
	}
}

func TestOriginalDisjointParallelInserts(t *testing.T) {
	sl := NewOriginal[int, int]()
	var wg sync.WaitGroup
	const per = 1000
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := w*per + i
				if !sl.Insert(k, k) {
					t.Errorf("insert %d failed", k)
				}
			}
		}(w)
	}
	wg.Wait()
	if sl.Len() != 8*per {
		t.Fatalf("Len = %d", sl.Len())
	}
	for k := 0; k < 8*per; k += 97 {
		if v, ok := sl.Get(k); !ok || v != k {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
}
