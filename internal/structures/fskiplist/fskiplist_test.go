package fskiplist

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"medley/internal/core"
)

func newSession() *core.Session { return core.NewTxManager().Session() }

func TestEmpty(t *testing.T) {
	sl := New[int, string]()
	s := newSession()
	if _, ok := sl.Get(s, 1); ok {
		t.Fatal("found key in empty list")
	}
	if _, ok := sl.Remove(s, 1); ok {
		t.Fatal("removed from empty list")
	}
	if sl.Len() != 0 {
		t.Fatal("len != 0")
	}
}

func TestInsertGetRemove(t *testing.T) {
	sl := New[int, string]()
	s := newSession()
	if !sl.Insert(s, 5, "five") {
		t.Fatal("insert failed")
	}
	if sl.Insert(s, 5, "again") {
		t.Fatal("duplicate insert succeeded")
	}
	if v, ok := sl.Get(s, 5); !ok || v != "five" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	if v, ok := sl.Remove(s, 5); !ok || v != "five" {
		t.Fatalf("Remove = %q,%v", v, ok)
	}
	if _, ok := sl.Get(s, 5); ok {
		t.Fatal("key present after remove")
	}
}

func TestPutReplace(t *testing.T) {
	sl := New[int, int]()
	s := newSession()
	if _, replaced := sl.Put(s, 1, 10); replaced {
		t.Fatal("fresh put replaced")
	}
	old, replaced := sl.Put(s, 1, 11)
	if !replaced || old != 10 {
		t.Fatalf("Put = %d,%v", old, replaced)
	}
	if v, _ := sl.Get(s, 1); v != 11 {
		t.Fatalf("Get = %d", v)
	}
	if sl.Len() != 1 {
		t.Fatalf("Len = %d (replacement duplicated the key)", sl.Len())
	}
}

func TestSortedOrderManyKeys(t *testing.T) {
	sl := New[int, int]()
	s := newSession()
	perm := rand.Perm(2000)
	for _, k := range perm {
		sl.Insert(s, k, k*3)
	}
	ks := sl.Keys()
	if len(ks) != 2000 {
		t.Fatalf("len = %d", len(ks))
	}
	if !sort.IntsAreSorted(ks) {
		t.Fatal("keys not sorted")
	}
	for _, k := range perm[:100] {
		if v, ok := sl.Get(s, k); !ok || v != k*3 {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
}

func TestSequentialModelProperty(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
		Val  int
	}
	f := func(ops []op) bool {
		sl := New[uint8, int]()
		s := newSession()
		model := map[uint8]int{}
		for _, o := range ops {
			switch o.Kind % 4 {
			case 0:
				mv, mok := model[o.Key]
				v, ok := sl.Get(s, o.Key)
				if ok != mok || (ok && v != mv) {
					return false
				}
			case 1:
				_, mok := model[o.Key]
				if sl.Insert(s, o.Key, o.Val) == mok {
					return false
				}
				if !mok {
					model[o.Key] = o.Val
				}
			case 2:
				mv, mok := model[o.Key]
				old, replaced := sl.Put(s, o.Key, o.Val)
				if replaced != mok || (replaced && old != mv) {
					return false
				}
				model[o.Key] = o.Val
			case 3:
				mv, mok := model[o.Key]
				v, ok := sl.Remove(s, o.Key)
				if ok != mok || (ok && v != mv) {
					return false
				}
				delete(model, o.Key)
			}
		}
		return sl.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentChurn(t *testing.T) {
	sl := New[int, int]()
	mgr := core.NewTxManager()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := mgr.Session()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 4000; i++ {
				k := rng.Intn(256)
				switch rng.Intn(3) {
				case 0:
					sl.Put(s, k, k*7)
				case 1:
					if v, ok := sl.Get(s, k); ok && v != k*7 {
						t.Errorf("Get(%d) = %d", k, v)
					}
				case 2:
					sl.Remove(s, k)
				}
			}
		}(w)
	}
	wg.Wait()
	ks := sl.Keys()
	if !sort.IntsAreSorted(ks) {
		t.Fatal("unsorted after churn")
	}
	seen := map[int]bool{}
	for _, k := range ks {
		if seen[k] {
			t.Fatalf("duplicate key %d", k)
		}
		seen[k] = true
	}
}

// Regression for the stale-read hole: read-modify-write transactions on a
// single key must never lose updates (the linearizing read must validate the
// victim's liveness, not just the predecessor link).
func TestNoLostUpdatesSingleKey(t *testing.T) {
	for round := 0; round < 10; round++ {
		mgr := core.NewTxManager()
		sl := New[uint64, int]()
		setup := mgr.Session()
		sl.Put(setup, 1, 1_000_000)
		var committed atomic.Int64
		const workers = 8
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s := mgr.Session()
				for i := 0; i < 400; i++ {
					if s.Run(func() error {
						v, ok := sl.Get(s, 1)
						if !ok {
							return core.ErrTxAborted
						}
						sl.Put(s, 1, v-1)
						return nil
					}) == nil {
						committed.Add(1)
					}
				}
			}()
		}
		wg.Wait()
		v, _ := sl.Get(setup, 1)
		if want := 1_000_000 - int(committed.Load()); v != want {
			t.Fatalf("round %d: value %d, want %d", round, v, want)
		}
	}
}

func TestTxReadsOwnWrites(t *testing.T) {
	mgr := core.NewTxManager()
	sl := New[int, int]()
	s := mgr.Session()
	err := s.Run(func() error {
		if !sl.Insert(s, 1, 10) {
			return core.ErrTxAborted
		}
		if v, ok := sl.Get(s, 1); !ok || v != 10 {
			t.Errorf("own insert invisible: %d,%v", v, ok)
		}
		if old, replaced := sl.Put(s, 1, 11); !replaced || old != 10 {
			t.Errorf("own update wrong: %d,%v", old, replaced)
		}
		if v, _ := sl.Get(s, 1); v != 11 {
			t.Errorf("own update invisible: %d", v)
		}
		if v, ok := sl.Remove(s, 1); !ok || v != 11 {
			t.Errorf("own remove wrong: %d,%v", v, ok)
		}
		if _, ok := sl.Get(s, 1); ok {
			t.Error("key visible after own remove")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sl.Len() != 0 {
		t.Fatalf("Len = %d", sl.Len())
	}
}

func TestAbortRollsBack(t *testing.T) {
	mgr := core.NewTxManager()
	sl := New[int, int]()
	s := mgr.Session()
	sl.Insert(s, 1, 10)
	sl.Insert(s, 2, 20)

	s.TxBegin()
	sl.Put(s, 1, 99)
	sl.Remove(s, 2)
	sl.Insert(s, 3, 30)
	s.TxAbort()

	if v, _ := sl.Get(s, 1); v != 10 {
		t.Fatalf("aborted put visible: %d", v)
	}
	if _, ok := sl.Get(s, 2); !ok {
		t.Fatal("aborted remove took effect")
	}
	if _, ok := sl.Get(s, 3); ok {
		t.Fatal("aborted insert visible")
	}
}

func TestConcurrentTransfersPreserveTotal(t *testing.T) {
	mgr := core.NewTxManager()
	sl1 := New[uint64, int]()
	sl2 := New[uint64, int]()
	setup := mgr.Session()
	const accounts = 16
	for a := uint64(0); a < accounts; a++ {
		sl1.Put(setup, a, 1000)
		sl2.Put(setup, a, 1000)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := mgr.Session()
			rng := rand.New(rand.NewSource(int64(w) * 13))
			for i := 0; i < 600; i++ {
				a1 := uint64(rng.Intn(accounts))
				a2 := uint64(rng.Intn(accounts))
				src, dst := sl1, sl2
				if rng.Intn(2) == 0 {
					src, dst = sl2, sl1
				}
				_ = s.Run(func() error {
					v1, ok := src.Get(s, a1)
					if !ok || v1 < 1 {
						return nil
					}
					v2, _ := dst.Get(s, a2)
					src.Put(s, a1, v1-1)
					dst.Put(s, a2, v2+1)
					return nil
				})
			}
		}(w)
	}
	wg.Wait()
	total := 0
	s := mgr.Session()
	for a := uint64(0); a < accounts; a++ {
		v1, _ := sl1.Get(s, a)
		v2, _ := sl2.Get(s, a)
		total += v1 + v2
	}
	if total != accounts*2000 {
		t.Fatalf("total = %d, want %d", total, accounts*2000)
	}
}

func TestUpperLevelsEventuallyLinked(t *testing.T) {
	sl := New[int, int]()
	s := newSession()
	for k := 0; k < 5000; k++ {
		sl.Insert(s, k, k)
	}
	// Count nodes linked above level 0 from the head tower: with geometric
	// towers over 5000 keys, upper levels must be populated.
	linked := 0
	for lvl := 1; lvl < MaxLevel; lvl++ {
		if sl.head.next[lvl].Load().n != nil {
			linked++
		}
	}
	if linked < 5 {
		t.Fatalf("only %d upper levels populated; express lanes missing", linked)
	}
}

func TestRangeOrder(t *testing.T) {
	sl := New[int, int]()
	s := newSession()
	for _, k := range []int{4, 1, 3, 2} {
		sl.Insert(s, k, k)
	}
	var got []int
	sl.Range(func(k, v int) bool { got = append(got, k); return true })
	want := []int{1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range order = %v", got)
		}
	}
}
