package fskiplist

import (
	"cmp"
	"math/bits"
	"math/rand/v2"
	"sync/atomic"
)

// Original is the untransformed Fraser-style skiplist: identical algorithm
// to SkipList but with bare atomic marked references instead of NBTC
// CASObjs. It is the "Original" baseline of the paper's Figure 10, used to
// measure Medley's marginal instrumentation overhead (TxOff/TxOn vs.
// Original). It supports no transactions.
type Original[K cmp.Ordered, V any] struct {
	head *onode[K, V]
}

type onode[K cmp.Ordered, V any] struct {
	key   K
	val   V
	next  []atomic.Pointer[oref[K, V]] // immutable {succ, marked} cells
	level int
}

type oref[K cmp.Ordered, V any] struct {
	n      *onode[K, V]
	marked bool
}

// NewOriginal returns an empty untransformed skiplist.
func NewOriginal[K cmp.Ordered, V any]() *Original[K, V] {
	h := &onode[K, V]{next: make([]atomic.Pointer[oref[K, V]], MaxLevel), level: MaxLevel - 1}
	for i := range h.next {
		h.next[i].Store(&oref[K, V]{})
	}
	return &Original[K, V]{head: h}
}

func onewNode[K cmp.Ordered, V any](k K, v V) *onode[K, V] {
	lvl := bits.TrailingZeros64(rand.Uint64() | (1 << (MaxLevel - 1)))
	n := &onode[K, V]{key: k, val: v, next: make([]atomic.Pointer[oref[K, V]], lvl+1), level: lvl}
	for i := range n.next {
		n.next[i].Store(&oref[K, V]{})
	}
	return n
}

type ofind[K cmp.Ordered, V any] struct {
	preds [MaxLevel]*atomic.Pointer[oref[K, V]]
	succs [MaxLevel]*onode[K, V]
	curr  *onode[K, V]
	nxt0  *onode[K, V]
}

func (sl *Original[K, V]) find(k K) (r ofind[K, V], found bool) {
retry:
	pred := sl.head
	for lvl := MaxLevel - 1; lvl >= 0; lvl-- {
		predObj := &pred.next[lvl]
		cref := predObj.Load()
		for {
			curr := cref.n
			if curr == nil {
				break
			}
			nref := curr.next[lvl].Load()
			if nref.marked {
				if !predObj.CompareAndSwap(cref, &oref[K, V]{nref.n, false}) {
					goto retry
				}
				cref = predObj.Load()
				if cref.n != nref.n || cref.marked {
					goto retry
				}
				continue
			}
			if curr.key < k {
				pred = curr
				predObj = &curr.next[lvl]
				cref = nref
				continue
			}
			if lvl == 0 && curr.key == k {
				r.preds[0] = predObj
				r.succs[0] = curr
				r.curr = curr
				r.nxt0 = nref.n
				return r, true
			}
			break
		}
		r.preds[lvl] = predObj
		r.succs[lvl] = cref.n
	}
	return r, false
}

// Get returns the value bound to k, if any.
func (sl *Original[K, V]) Get(k K) (V, bool) {
	r, found := sl.find(k)
	if !found {
		var zero V
		return zero, false
	}
	return r.curr.val, true
}

// Put binds k to v (replace-node update, mirroring the NBTC version).
func (sl *Original[K, V]) Put(k K, v V) (old V, replaced bool) {
	for {
		r, found := sl.find(k)
		if found {
			nn := onewNode(k, v)
			cur := r.curr.next[0].Load()
			if cur.marked || cur.n != r.nxt0 {
				continue
			}
			nn.next[0].Store(&oref[K, V]{r.nxt0, false})
			if r.curr.next[0].CompareAndSwap(cur, &oref[K, V]{nn, true}) {
				sl.snip(k)
				sl.linkUpper(nn, k)
				return r.curr.val, true
			}
			continue
		}
		nn := onewNode(k, v)
		cur := r.preds[0].Load()
		if cur.marked || cur.n != r.succs[0] {
			continue
		}
		nn.next[0].Store(&oref[K, V]{r.succs[0], false})
		if r.preds[0].CompareAndSwap(cur, &oref[K, V]{nn, false}) {
			sl.linkUpper(nn, k)
			var zero V
			return zero, false
		}
	}
}

// Insert adds k→v only if absent.
func (sl *Original[K, V]) Insert(k K, v V) bool {
	for {
		r, found := sl.find(k)
		if found {
			return false
		}
		nn := onewNode(k, v)
		cur := r.preds[0].Load()
		if cur.marked || cur.n != r.succs[0] {
			continue
		}
		nn.next[0].Store(&oref[K, V]{r.succs[0], false})
		if r.preds[0].CompareAndSwap(cur, &oref[K, V]{nn, false}) {
			sl.linkUpper(nn, k)
			return true
		}
	}
}

// Remove deletes k, returning its value if present.
func (sl *Original[K, V]) Remove(k K) (V, bool) {
	for {
		r, found := sl.find(k)
		if !found {
			var zero V
			return zero, false
		}
		cur := r.curr.next[0].Load()
		if cur.marked || cur.n != r.nxt0 {
			continue
		}
		if r.curr.next[0].CompareAndSwap(cur, &oref[K, V]{r.nxt0, true}) {
			for lvl := r.curr.level; lvl >= 1; lvl-- {
				for {
					c := r.curr.next[lvl].Load()
					if c.marked {
						break
					}
					if r.curr.next[lvl].CompareAndSwap(c, &oref[K, V]{c.n, true}) {
						break
					}
				}
			}
			sl.snip(k)
			return r.curr.val, true
		}
	}
}

func (sl *Original[K, V]) snip(k K) { sl.find(k) }

func (sl *Original[K, V]) linkUpper(nn *onode[K, V], k K) {
	for lvl := 1; lvl <= nn.level; lvl++ {
		for {
			if nn.next[0].Load().marked {
				return
			}
			r, found := sl.find(k)
			if !found || r.curr != nn {
				return
			}
			succ := r.succs[lvl]
			if succ == nn {
				break
			}
			cur := nn.next[lvl].Load()
			if cur.marked {
				return
			}
			if cur.n != succ {
				if !nn.next[lvl].CompareAndSwap(cur, &oref[K, V]{succ, false}) {
					continue
				}
			}
			pcur := r.preds[lvl].Load()
			if pcur.marked || pcur.n != succ {
				continue
			}
			if r.preds[lvl].CompareAndSwap(pcur, &oref[K, V]{nn, false}) {
				break
			}
		}
	}
}

// Len counts present keys; diagnostic.
func (sl *Original[K, V]) Len() int {
	n := 0
	ref := sl.head.next[0].Load()
	for nd := ref.n; nd != nil; {
		nref := nd.next[0].Load()
		if !nref.marked {
			n++
		}
		nd = nref.n
	}
	return n
}
