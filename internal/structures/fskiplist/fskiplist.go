// Package fskiplist implements a Fraser-style lock-free skiplist (Fraser,
// "Practical Lock-Freedom", 2003; presentation follows Herlihy & Shavit),
// NBTC-transformed for Medley transactions. It is the skiplist used in the
// paper's Figures 8–10.
//
// Design notes:
//
//   - Deletion marks live in the per-level successor references
//     (Harris-style {node, marked} pairs); a node is logically deleted when
//     its bottom-level next is marked — that marking CAS is the
//     linearization (and publication) point of Remove.
//   - Insert linearizes at the CAS that links the new node into the bottom
//     level; linking the upper levels of the tower is post-critical cleanup
//     and is deferred to commit inside a transaction (so a speculative node
//     is reachable only through the installed descriptor).
//   - Values are immutable per node. An updating Put follows the paper's
//     Fig. 2 pattern: the replacement node is published as the marked
//     bottom-level successor of the victim in a single CAS (linearization
//     and publication point); unlinking the victim and building the new
//     tower are post-critical cleanup.
//   - A read outcome records (a) the bottom-level predecessor link through
//     which the node was reached and (b) the node's bottom-level successor
//     load observed unmarked; together these validate reachability and
//     liveness at commit time. Upper-level traffic is unrecorded routing —
//     readers stay invisible and read sets stay small.
package fskiplist

import (
	"cmp"
	"math/bits"
	"math/rand/v2"

	"medley/internal/core"
)

// MaxLevel is the maximum tower height (the paper's skiplists use up to 20
// levels for a 1M key space).
const MaxLevel = 20

type node[K cmp.Ordered, V any] struct {
	key   K
	val   V
	next  []core.CASObj[Ref[K, V]] // len == level+1
	level int                      // top level index of this tower
}

// Ref is a marked successor reference. A marked bottom-level reference
// {x, true} on node n means "n is logically deleted and x is its successor"
// — for value updates x is the replacement node carrying the same key.
type Ref[K cmp.Ordered, V any] struct {
	n      *node[K, V]
	marked bool
}

// SkipList is a lock-free ordered map supporting transactional composition.
// Construct with New.
type SkipList[K cmp.Ordered, V any] struct {
	head *node[K, V] // sentinel tower of full height; key unused
}

// New returns an empty skiplist.
func New[K cmp.Ordered, V any]() *SkipList[K, V] {
	return &SkipList[K, V]{
		head: &node[K, V]{next: make([]core.CASObj[Ref[K, V]], MaxLevel), level: MaxLevel - 1},
	}
}

// randomLevel draws a geometric(1/2) tower top-level in [0, MaxLevel).
func randomLevel() int {
	return bits.TrailingZeros64(rand.Uint64() | (1 << (MaxLevel - 1)))
}

// findResult carries the outcome of a search.
type findResult[K cmp.Ordered, V any] struct {
	preds [MaxLevel]*core.CASObj[Ref[K, V]] // predecessor link per level
	succs [MaxLevel]*node[K, V]             // successor per level
	ptag  core.ReadTag                      // tag of the bottom-level pred load
	ctag  core.ReadTag                      // tag of curr's bottom next load (found only)
	curr  *node[K, V]                       // node with key k, if found
	nxt0  Ref[K, V]                         // curr's bottom successor ref (found only)
}

// find locates preds/succs for key k at every level, snipping marked nodes
// as it goes. Pass a nil session (or one outside a transaction) for plain
// maintenance traversals. Nodes encountered at level lvl always have towers
// at least lvl tall.
func (sl *SkipList[K, V]) find(s *core.Session, k K) (r findResult[K, V], found bool) {
retry:
	pred := sl.head
	for lvl := MaxLevel - 1; lvl >= 0; lvl-- {
		predObj := &pred.next[lvl]
		cref, ctag := predObj.NbtcLoad(s)
		for {
			curr := cref.n
			if curr == nil {
				break
			}
			nref, ntag := curr.next[lvl].NbtcLoad(s)
			if nref.marked {
				if cref.marked {
					// We entered this position through a dead node's edge
					// (possible while a replacement's physical cleanup is
					// pending). The marked edge still routes forward; walk
					// through without snipping — only a live edge may be
					// CASed.
					pred = curr
					predObj = &curr.next[lvl]
					cref, ctag = nref, ntag
					continue
				}
				// curr is dead at this level; snip it via the live edge.
				if !predObj.NbtcCAS(s, Ref[K, V]{curr, false}, Ref[K, V]{nref.n, false}, false, false) {
					goto retry
				}
				cref, ctag = predObj.NbtcLoad(s)
				want := Ref[K, V]{nref.n, false}
				if cref != want {
					goto retry
				}
				continue
			}
			if curr.key < k {
				pred = curr
				predObj = &curr.next[lvl]
				cref, ctag = nref, ntag
				continue
			}
			// curr.key >= k: this level is positioned.
			if lvl == 0 && curr.key == k {
				r.preds[0] = predObj
				r.succs[0] = curr
				r.ptag = ctag
				r.curr = curr
				r.ctag = ntag
				r.nxt0 = nref
				return r, true
			}
			break
		}
		r.preds[lvl] = predObj
		r.succs[lvl] = cref.n
		if lvl == 0 {
			r.ptag = ctag
		}
	}
	return r, false
}

// Get returns the value bound to k, if any.
func (sl *SkipList[K, V]) Get(s *core.Session, k K) (V, bool) {
	s.OpStart()
	r, found := sl.find(s, k)
	s.AddToReadSet(r.preds[0], r.ptag)
	if !found {
		var zero V
		return zero, false
	}
	s.AddToReadSet(&r.curr.next[0], r.ctag)
	return r.curr.val, true
}

// Contains reports whether k is present.
func (sl *SkipList[K, V]) Contains(s *core.Session, k K) bool {
	_, ok := sl.Get(s, k)
	return ok
}

// Put binds k to v, returning the previous value if k was present.
func (sl *SkipList[K, V]) Put(s *core.Session, k K, v V) (old V, replaced bool) {
	s.OpStart()
	for {
		r, found := sl.find(s, k)
		if found {
			// Replace: publish the new tower's root as the victim's marked
			// bottom successor (one CAS: linearization + publication).
			nn := newNode(k, v)
			nn.next[0].Store(Ref[K, V]{r.nxt0.n, false})
			if r.curr.next[0].NbtcCAS(s, Ref[K, V]{r.nxt0.n, false}, Ref[K, V]{nn, true}, true, true) {
				victim := r.curr
				predObj := r.preds[0]
				// Mark the victim's upper levels immediately: purely
				// physical routing maintenance (the node's logical fate is
				// decided by the — possibly speculative — bottom mark), and
				// necessary so that later operations of the same
				// transaction do not descend onto a tower that is dead at
				// the bottom but routed above.
				sl.retireTower(victim, k)
				s.AddToCleanups(func() {
					if predObj.CAS(Ref[K, V]{victim, false}, Ref[K, V]{nn, false}) {
						s.TRetire(victim)
					}
					sl.find(nil, k) // sweep any remaining links
					sl.linkUpper(nn, k)
				})
				return r.curr.val, true
			}
			continue
		}
		if sl.insertAt(s, &r, k, v) {
			var zero V
			return zero, false
		}
	}
}

// Insert adds k→v only if absent, reporting whether insertion happened.
func (sl *SkipList[K, V]) Insert(s *core.Session, k K, v V) bool {
	s.OpStart()
	for {
		r, found := sl.find(s, k)
		if found {
			s.AddToReadSet(r.preds[0], r.ptag)
			s.AddToReadSet(&r.curr.next[0], r.ctag)
			return false
		}
		if sl.insertAt(s, &r, k, v) {
			return true
		}
	}
}

func newNode[K cmp.Ordered, V any](k K, v V) *node[K, V] {
	lvl := randomLevel()
	return &node[K, V]{key: k, val: v, next: make([]core.CASObj[Ref[K, V]], lvl+1), level: lvl}
}

// insertAt links a fresh tower for k before r.succs[0]; returns false if the
// bottom-level CAS lost a race (caller re-finds).
func (sl *SkipList[K, V]) insertAt(s *core.Session, r *findResult[K, V], k K, v V) bool {
	nn := newNode(k, v)
	nn.next[0].Store(Ref[K, V]{r.succs[0], false})
	// Linearization + publication: bottom-level link.
	if !r.preds[0].NbtcCAS(s, Ref[K, V]{r.succs[0], false}, Ref[K, V]{nn, false}, true, true) {
		return false
	}
	if nn.level > 0 {
		// Post-critical: build the express lanes after commit.
		s.AddToCleanups(func() { sl.linkUpper(nn, k) })
	}
	return true
}

// Remove deletes k, returning its value if present. Linearization point is
// the marking CAS on the victim's bottom-level next; marking upper levels
// and physical snipping are post-critical cleanup.
func (sl *SkipList[K, V]) Remove(s *core.Session, k K) (V, bool) {
	s.OpStart()
	for {
		r, found := sl.find(s, k)
		if !found {
			s.AddToReadSet(r.preds[0], r.ptag)
			var zero V
			return zero, false
		}
		if r.curr.next[0].NbtcCAS(s, Ref[K, V]{r.nxt0.n, false}, Ref[K, V]{r.nxt0.n, true}, true, true) {
			victim := r.curr
			sl.retireTower(victim, k) // immediate physical demotion (see Put)
			s.AddToCleanups(func() { sl.find(nil, k) })
			return r.curr.val, true
		}
	}
}

// retireTower marks every upper level of a logically-deleted tower so that
// traversals snip it everywhere.
func (sl *SkipList[K, V]) retireTower(victim *node[K, V], k K) {
	for lvl := victim.level; lvl >= 1; lvl-- {
		for {
			cur := victim.next[lvl].Load()
			if cur.marked {
				break
			}
			if victim.next[lvl].CAS(cur, Ref[K, V]{cur.n, true}) {
				break
			}
		}
	}
}

// linkUpper links levels 1..level of a committed live tower, re-finding
// predecessors as needed; it gives up if the node dies.
func (sl *SkipList[K, V]) linkUpper(nn *node[K, V], k K) {
	for lvl := 1; lvl <= nn.level; lvl++ {
		for {
			if nn.next[0].Load().marked {
				return // node already logically deleted
			}
			r, found := sl.find(nil, k)
			if !found || r.curr != nn {
				return // removed or replaced meanwhile
			}
			succ := r.succs[lvl]
			if succ == nn {
				break // already linked at this level
			}
			cur := nn.next[lvl].Load()
			if cur.marked {
				return
			}
			if cur.n != succ {
				if !nn.next[lvl].CAS(cur, Ref[K, V]{succ, false}) {
					continue
				}
			}
			if r.preds[lvl].CAS(Ref[K, V]{succ, false}, Ref[K, V]{nn, false}) {
				break
			}
		}
	}
}

// Len counts present keys; diagnostic, non-linearizable.
func (sl *SkipList[K, V]) Len() int {
	n := 0
	ref := sl.head.next[0].Load()
	for nd := ref.n; nd != nil; {
		nref := nd.next[0].Load()
		if !nref.marked {
			n++
		}
		nd = nref.n
	}
	return n
}

// Keys returns present keys in order; diagnostic, non-linearizable.
func (sl *SkipList[K, V]) Keys() []K {
	var ks []K
	ref := sl.head.next[0].Load()
	for nd := ref.n; nd != nil; {
		nref := nd.next[0].Load()
		if !nref.marked {
			ks = append(ks, nd.key)
		}
		nd = nref.n
	}
	return ks
}

// Range calls f on each present pair in key order until f returns false.
// Diagnostic, non-linearizable.
func (sl *SkipList[K, V]) Range(f func(K, V) bool) {
	ref := sl.head.next[0].Load()
	for nd := ref.n; nd != nil; {
		nref := nd.next[0].Load()
		if !nref.marked {
			if !f(nd.key, nd.val) {
				return
			}
		}
		nd = nref.n
	}
}
