// Package mlist implements Michael's lock-free ordered linked list (Michael,
// SPAA 2002), NBTC-transformed per Section 3.1 of the Medley paper so that
// its operations can take part in Medley transactions. It is the substrate
// for the chained hash table of package mhash and follows the transformed
// code of the paper's Fig. 2:
//
//   - Critical loads and CASes go through CASObj.NbtcLoad / NbtcCAS.
//   - The linearizing load of a read operation is registered with
//     Session.AddToReadSet.
//   - Post-critical cleanup (physical unlinking of replaced or removed
//     nodes) is registered with Session.AddToCleanups so that it executes
//     after commit (or immediately, when called outside a transaction).
//
// Keys are ordered; values are immutable per node (updates replace the node,
// exactly as in the paper: the new node is inserted as the marked victim's
// successor in one CAS, which is both linearization and publication point).
package mlist

import (
	"cmp"

	"medley/internal/core"
)

// node is a list node. key and val never change after insertion; all
// mutation happens through next.
type node[K cmp.Ordered, V any] struct {
	key  K
	val  V
	next core.CASObj[Ref[K, V]]
}

// Ref is a marked reference: the successor pointer plus the logical-deletion
// mark of the containing node (Harris-style). It is the CASObj value type of
// every next pointer.
type Ref[K cmp.Ordered, V any] struct {
	n      *node[K, V]
	marked bool
}

// List is a lock-free ordered map from K to V supporting transactional
// composition. The zero value is an empty list.
type List[K cmp.Ordered, V any] struct {
	head core.CASObj[Ref[K, V]]
}

// New returns an empty list.
func New[K cmp.Ordered, V any]() *List[K, V] { return &List[K, V]{} }

// find locates the first node with key >= k. It returns the predecessor
// CASObj (through which curr was reached), the ReadTag of the load that
// observed curr, curr itself (nil if the list tail was reached), the ReadTag
// of the load that observed curr's successor, curr's successor reference at
// observation time, and whether curr.key == k. Marked nodes encountered
// along the way are physically unlinked (helping already-linearized
// removals; these CASes execute plainly unless they touch this
// transaction's own speculative state, per Def. 3 of the paper).
//
// Read outcomes concerning a present key must validate BOTH returned tags:
// the predecessor link (prev -> curr) establishes reachability, and the
// successor load (curr.next unmarked) establishes that curr is not
// logically deleted. A replacement (Put) marks curr.next at its
// linearization point and fixes prev only in post-commit cleanup, so
// validating prev alone would let a concurrent read-modify-write commit
// against a stale value.
func (l *List[K, V]) find(s *core.Session, k K) (prev *core.CASObj[Ref[K, V]], ptag core.ReadTag, curr *node[K, V], ctag core.ReadTag, nxt Ref[K, V], found bool) {
retry:
	prev = &l.head
	pref, ptag0 := prev.NbtcLoad(s)
	ptag = ptag0
	curr = pref.n
	for curr != nil {
		cref, ctag0 := curr.next.NbtcLoad(s)
		if cref.marked {
			// curr is logically deleted; snip it out. The replacement
			// successor is cref.n (for value updates this is the new node
			// carrying the same key).
			if !prev.NbtcCAS(s, Ref[K, V]{curr, false}, Ref[K, V]{cref.n, false}, false, false) {
				goto retry
			}
			pref2, ptag2 := prev.NbtcLoad(s)
			want := Ref[K, V]{cref.n, false}
			if pref2 != want {
				goto retry
			}
			ptag = ptag2
			curr = cref.n
			continue
		}
		if curr.key >= k {
			return prev, ptag, curr, ctag0, cref, curr.key == k
		}
		prev, ptag = &curr.next, ctag0
		curr = cref.n
	}
	return prev, ptag, nil, nil, Ref[K, V]{}, false
}

// Get returns the value bound to k, if any. Inside a transaction the
// linearizing load is added to the read set for commit-time validation
// (invisible readers; no shared-memory writes on the read path).
func (l *List[K, V]) Get(s *core.Session, k K) (V, bool) {
	s.OpStart()
	prev, ptag, curr, ctag, _, found := l.find(s, k)
	s.AddToReadSet(prev, ptag)
	if found {
		// Presence additionally depends on curr remaining unmarked.
		s.AddToReadSet(&curr.next, ctag)
		return curr.val, true
	}
	var zero V
	return zero, false
}

// Contains reports whether k is present.
func (l *List[K, V]) Contains(s *core.Session, k K) bool {
	_, ok := l.Get(s, k)
	return ok
}

// Put binds k to v, returning the previous value if k was present. The
// update path follows the paper's Fig. 2: the new node is published as the
// marked successor of the node it replaces in a single CAS (linearization
// and publication point); unlinking the victim is post-critical cleanup.
func (l *List[K, V]) Put(s *core.Session, k K, v V) (old V, replaced bool) {
	s.OpStart()
	nn := &node[K, V]{key: k, val: v}
	for {
		prev, _, curr, _, nxt, found := l.find(s, k)
		if found { // replace
			nn.next.Store(Ref[K, V]{nxt.n, false})
			if curr.next.NbtcCAS(s, Ref[K, V]{nxt.n, false}, Ref[K, V]{nn, true}, true, true) {
				old = curr.val
				l.deferUnlink(s, prev, curr, nn)
				return old, true
			}
			continue
		}
		// insert before curr
		nn.next.Store(Ref[K, V]{curr, false})
		if prev.NbtcCAS(s, Ref[K, V]{curr, false}, Ref[K, V]{nn, false}, true, true) {
			var zero V
			return zero, false
		}
	}
}

// Insert adds k→v only if k is absent; it reports whether insertion
// happened. A failed insert is a read-only outcome and linearizes at the
// load that observed the existing node.
func (l *List[K, V]) Insert(s *core.Session, k K, v V) bool {
	s.OpStart()
	nn := &node[K, V]{key: k, val: v}
	for {
		prev, ptag, curr, ctag, _, found := l.find(s, k)
		if found {
			s.AddToReadSet(prev, ptag)
			s.AddToReadSet(&curr.next, ctag)
			return false
		}
		nn.next.Store(Ref[K, V]{curr, false})
		if prev.NbtcCAS(s, Ref[K, V]{curr, false}, Ref[K, V]{nn, false}, true, true) {
			return true
		}
	}
}

// Remove deletes k, returning its value if it was present. The linearization
// point is the marking CAS on the victim's next pointer; physical unlinking
// is post-critical cleanup. A failed remove linearizes at the load that
// observed k's absence.
func (l *List[K, V]) Remove(s *core.Session, k K) (V, bool) {
	s.OpStart()
	for {
		prev, ptag, curr, _, nxt, found := l.find(s, k)
		if !found {
			s.AddToReadSet(prev, ptag)
			var zero V
			return zero, false
		}
		if curr.next.NbtcCAS(s, Ref[K, V]{nxt.n, false}, Ref[K, V]{nxt.n, true}, true, true) {
			l.deferUnlink(s, prev, curr, nxt.n)
			return curr.val, true
		}
	}
}

// deferUnlink registers the post-critical physical unlink of victim,
// replacing it with succ in prev; if the direct CAS fails, a plain find
// sweeps the victim out. Runs after commit (or immediately outside a
// transaction), matching the cleanup lambda of the paper's Fig. 2.
func (l *List[K, V]) deferUnlink(s *core.Session, prev *core.CASObj[Ref[K, V]], victim *node[K, V], succ *node[K, V]) {
	k := victim.key
	s.AddToCleanups(func() {
		if prev.CAS(Ref[K, V]{victim, false}, Ref[K, V]{succ, false}) {
			s.TRetire(victim)
		} else {
			l.find(nil, k) // generic helping path snips it
		}
	})
}

// Len counts the unmarked nodes. It is a non-linearizable diagnostic
// traversal intended for tests and examples.
func (l *List[K, V]) Len() int {
	n := 0
	ref := l.head.Load()
	for nd := ref.n; nd != nil; {
		nref := nd.next.Load()
		if !nref.marked {
			n++
		}
		nd = nref.n
	}
	return n
}

// Keys returns the keys of all unmarked nodes in order. Diagnostic only.
func (l *List[K, V]) Keys() []K {
	var ks []K
	ref := l.head.Load()
	for nd := ref.n; nd != nil; {
		nref := nd.next.Load()
		if !nref.marked {
			ks = append(ks, nd.key)
		}
		nd = nref.n
	}
	return ks
}

// Range calls f on each present key/value pair in key order until f returns
// false. Non-linearizable diagnostic traversal.
func (l *List[K, V]) Range(f func(K, V) bool) {
	ref := l.head.Load()
	for nd := ref.n; nd != nil; {
		nref := nd.next.Load()
		if !nref.marked {
			if !f(nd.key, nd.val) {
				return
			}
		}
		nd = nref.n
	}
}
