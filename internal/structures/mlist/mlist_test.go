package mlist

import (
	"errors"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"medley/internal/core"
)

func newSession() *core.Session {
	return core.NewTxManager().Session()
}

func TestEmptyList(t *testing.T) {
	l := New[int, string]()
	s := newSession()
	if _, ok := l.Get(s, 1); ok {
		t.Fatal("Get on empty list found a key")
	}
	if _, ok := l.Remove(s, 1); ok {
		t.Fatal("Remove on empty list succeeded")
	}
	if l.Len() != 0 {
		t.Fatal("non-zero length")
	}
}

func TestInsertGetRemove(t *testing.T) {
	l := New[int, string]()
	s := newSession()
	if !l.Insert(s, 2, "two") {
		t.Fatal("insert failed")
	}
	if l.Insert(s, 2, "again") {
		t.Fatal("duplicate insert succeeded")
	}
	v, ok := l.Get(s, 2)
	if !ok || v != "two" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	v, ok = l.Remove(s, 2)
	if !ok || v != "two" {
		t.Fatalf("Remove = %q,%v", v, ok)
	}
	if _, ok := l.Get(s, 2); ok {
		t.Fatal("key present after remove")
	}
}

func TestPutInsertsAndReplaces(t *testing.T) {
	l := New[int, int]()
	s := newSession()
	if _, replaced := l.Put(s, 1, 10); replaced {
		t.Fatal("fresh Put reported replacement")
	}
	old, replaced := l.Put(s, 1, 11)
	if !replaced || old != 10 {
		t.Fatalf("Put replace = %d,%v", old, replaced)
	}
	if v, _ := l.Get(s, 1); v != 11 {
		t.Fatalf("Get = %d, want 11", v)
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (replacement must not duplicate)", l.Len())
	}
}

func TestOrderMaintained(t *testing.T) {
	l := New[int, int]()
	s := newSession()
	for _, k := range []int{5, 1, 9, 3, 7, 2, 8} {
		l.Insert(s, k, k)
	}
	ks := l.Keys()
	if !sort.IntsAreSorted(ks) {
		t.Fatalf("keys out of order: %v", ks)
	}
	if len(ks) != 7 {
		t.Fatalf("len = %d", len(ks))
	}
}

func TestRangeStopsEarly(t *testing.T) {
	l := New[int, int]()
	s := newSession()
	for k := 0; k < 10; k++ {
		l.Insert(s, k, k)
	}
	n := 0
	l.Range(func(k, v int) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("Range visited %d, want 3", n)
	}
}

// Property test: list behaves like a model map under random op sequences.
func TestSequentialModelProperty(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
		Val  int
	}
	f := func(ops []op) bool {
		l := New[uint8, int]()
		s := newSession()
		model := map[uint8]int{}
		for _, o := range ops {
			switch o.Kind % 4 {
			case 0:
				mv, mok := model[o.Key]
				v, ok := l.Get(s, o.Key)
				if ok != mok || (ok && v != mv) {
					return false
				}
			case 1:
				_, mok := model[o.Key]
				ok := l.Insert(s, o.Key, o.Val)
				if ok == mok {
					return false
				}
				if ok {
					model[o.Key] = o.Val
				}
			case 2:
				mv, mok := model[o.Key]
				old, replaced := l.Put(s, o.Key, o.Val)
				if replaced != mok || (replaced && old != mv) {
					return false
				}
				model[o.Key] = o.Val
			case 3:
				mv, mok := model[o.Key]
				v, ok := l.Remove(s, o.Key)
				if ok != mok || (ok && v != mv) {
					return false
				}
				delete(model, o.Key)
			}
		}
		if l.Len() != len(model) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDisjointInserts(t *testing.T) {
	l := New[int, int]()
	mgr := core.NewTxManager()
	const workers = 8
	const per = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := mgr.Session()
			for i := 0; i < per; i++ {
				k := w*per + i
				if !l.Insert(s, k, k) {
					t.Errorf("insert %d failed", k)
				}
			}
		}(w)
	}
	wg.Wait()
	if l.Len() != workers*per {
		t.Fatalf("Len = %d, want %d", l.Len(), workers*per)
	}
	ks := l.Keys()
	if !sort.IntsAreSorted(ks) {
		t.Fatal("keys unsorted after concurrent inserts")
	}
}

func TestConcurrentInsertRemoveChurn(t *testing.T) {
	l := New[int, int]()
	mgr := core.NewTxManager()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := mgr.Session()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 3000; i++ {
				k := rng.Intn(64)
				switch rng.Intn(3) {
				case 0:
					l.Insert(s, k, k)
				case 1:
					l.Remove(s, k)
				case 2:
					if v, ok := l.Get(s, k); ok && v != k {
						t.Errorf("Get(%d) = %d", k, v)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	ks := l.Keys()
	if !sort.IntsAreSorted(ks) {
		t.Fatalf("unsorted after churn: %v", ks)
	}
	seen := map[int]bool{}
	for _, k := range ks {
		if seen[k] {
			t.Fatalf("duplicate key %d", k)
		}
		seen[k] = true
	}
}

// Transactional composition: move a key between two lists atomically.
func TestTransactionalMoveBetweenLists(t *testing.T) {
	mgr := core.NewTxManager()
	l1 := New[int, int]()
	l2 := New[int, int]()
	s := mgr.Session()
	l1.Insert(s, 7, 70)

	err := s.Run(func() error {
		v, ok := l1.Get(s, 7)
		if !ok {
			return errors.New("missing")
		}
		if _, ok := l1.Remove(s, 7); !ok {
			return core.ErrTxAborted
		}
		if !l2.Insert(s, 7, v) {
			return core.ErrTxAborted
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := l1.Get(s, 7); ok {
		t.Fatal("key still in l1")
	}
	if v, ok := l2.Get(s, 7); !ok || v != 70 {
		t.Fatalf("l2 get = %d,%v", v, ok)
	}
}

// A transaction must see its own earlier operations (complication 2 of
// Section 2.2: later op depends on earlier op's outcome).
func TestTxReadsOwnWrites(t *testing.T) {
	mgr := core.NewTxManager()
	l := New[int, int]()
	s := mgr.Session()

	err := s.Run(func() error {
		if !l.Insert(s, 1, 10) {
			return core.ErrTxAborted
		}
		v, ok := l.Get(s, 1)
		if !ok || v != 10 {
			t.Errorf("tx did not see own insert: %d,%v", v, ok)
		}
		if _, replaced := l.Put(s, 1, 11); !replaced {
			t.Error("Put did not see own insert")
		}
		if v, _ := l.Get(s, 1); v != 11 {
			t.Errorf("tx did not see own update: %d", v)
		}
		if _, ok := l.Remove(s, 1); !ok {
			t.Error("Remove did not see own insert")
		}
		if _, ok := l.Get(s, 1); ok {
			t.Error("tx sees key after own remove")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Get(s, 1); ok {
		t.Fatal("key visible after tx that inserted and removed it")
	}
}

func TestAbortRollsBackListOps(t *testing.T) {
	mgr := core.NewTxManager()
	l := New[int, int]()
	s := mgr.Session()
	l.Insert(s, 1, 10)

	s.TxBegin()
	l.Insert(s, 2, 20)
	l.Remove(s, 1)
	l.Put(s, 3, 30)
	s.TxAbort()

	if _, ok := l.Get(s, 2); ok {
		t.Fatal("aborted insert visible")
	}
	if v, ok := l.Get(s, 1); !ok || v != 10 {
		t.Fatal("aborted remove took effect")
	}
	if _, ok := l.Get(s, 3); ok {
		t.Fatal("aborted put visible")
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
}

// Concurrent transfer transactions across two lists preserve the total
// number of keys (strict serializability smoke test).
func TestConcurrentAtomicMoves(t *testing.T) {
	mgr := core.NewTxManager()
	l1 := New[int, int]()
	l2 := New[int, int]()
	setup := mgr.Session()
	const nkeys = 32
	for k := 0; k < nkeys; k++ {
		l1.Insert(setup, k, k)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := mgr.Session()
			rng := rand.New(rand.NewSource(int64(w) + 100))
			for i := 0; i < 400; i++ {
				k := rng.Intn(nkeys)
				src, dst := l1, l2
				if rng.Intn(2) == 0 {
					src, dst = l2, l1
				}
				_ = s.Run(func() error {
					v, ok := src.Get(s, k)
					if !ok {
						return nil // not here; fine
					}
					if _, ok := src.Remove(s, k); !ok {
						return core.ErrTxAborted
					}
					if !dst.Insert(s, k, v) {
						return core.ErrTxAborted
					}
					return nil
				})
			}
		}(w)
	}
	wg.Wait()
	total := l1.Len() + l2.Len()
	if total != nkeys {
		t.Fatalf("total keys = %d, want %d (atomicity violated)", total, nkeys)
	}
	// No key may be present in both lists, and every key in exactly one.
	present := map[int]int{}
	for _, k := range l1.Keys() {
		present[k]++
	}
	for _, k := range l2.Keys() {
		present[k]++
	}
	for k := 0; k < nkeys; k++ {
		if present[k] != 1 {
			t.Fatalf("key %d present %d times", k, present[k])
		}
	}
}

func TestValueTypesImmutableNodesPointerValues(t *testing.T) {
	type row struct{ a, b int }
	l := New[int, *row]()
	s := newSession()
	r := &row{1, 2}
	l.Put(s, 1, r)
	got, ok := l.Get(s, 1)
	if !ok || got != r {
		t.Fatal("pointer value round-trip failed")
	}
}
