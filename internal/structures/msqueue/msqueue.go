// Package msqueue implements the Michael & Scott nonblocking FIFO queue
// (PODC 1996), NBTC-transformed so that enqueues and dequeues can take part
// in Medley transactions. The queue demonstrates that NBTC accommodates
// abstractions beyond sets and mappings (Section 1 of the paper: operations
// on a single-linked FIFO queue have no obvious inverse, so transactional
// boosting cannot handle them, and LFTT's critical-node scheme does not
// apply).
//
// Linearization points:
//   - Enqueue linearizes at the CAS that links the new node after the
//     current tail (also its publication point); swinging the tail pointer
//     is post-critical cleanup.
//   - A successful Dequeue linearizes at the CAS advancing head; an empty
//     Dequeue linearizes at the load of head.next observing nil, which is
//     registered in the read set.
package msqueue

import "medley/internal/core"

type node[T any] struct {
	val  T
	next core.CASObj[*node[T]]
}

// Queue is a nonblocking FIFO queue supporting transactional composition.
// Construct with New.
type Queue[T any] struct {
	head core.CASObj[*node[T]] // sentinel; head.val is garbage
	tail core.CASObj[*node[T]]
}

// New returns an empty queue.
func New[T any]() *Queue[T] {
	q := &Queue[T]{}
	sentinel := &node[T]{}
	q.head.Store(sentinel)
	q.tail.Store(sentinel)
	return q
}

// Enqueue appends v to the queue.
func (q *Queue[T]) Enqueue(s *core.Session, v T) {
	s.OpStart()
	nn := &node[T]{val: v}
	for {
		tail, _ := q.tail.NbtcLoad(s)
		next, _ := tail.next.NbtcLoad(s)
		if next != nil {
			// Tail lagging: swing it (helping an already-linearized
			// enqueue; plain CAS unless it touches our own speculation).
			q.tail.NbtcCAS(s, tail, next, false, false)
			continue
		}
		if tail.next.NbtcCAS(s, nil, nn, true, true) {
			// Post-critical: swing tail. Deferred to commit inside a
			// transaction so the speculative node stays private.
			s.AddToCleanups(func() {
				q.tail.CAS(tail, nn)
			})
			return
		}
	}
}

// Dequeue removes and returns the oldest element; ok is false if the queue
// is empty.
func (q *Queue[T]) Dequeue(s *core.Session) (v T, ok bool) {
	s.OpStart()
	for {
		head, htag := q.head.NbtcLoad(s)
		next, ntag := head.next.NbtcLoad(s)
		if next == nil {
			// Empty: linearizes at the load of head.next observing nil;
			// both cells are validated at commit.
			s.AddToReadSet(&q.head, htag)
			s.AddToReadSet(&head.next, ntag)
			var zero T
			return zero, false
		}
		if q.head.NbtcCAS(s, head, next, true, true) {
			val := next.val
			s.AddToCleanups(func() {
				// Help the tail past the dequeued prefix if it lags.
				t := q.tail.Load()
				if t == head {
					q.tail.CAS(head, next)
				}
				s.TRetire(head)
			})
			return val, true
		}
	}
}

// Peek returns the oldest element without removing it.
func (q *Queue[T]) Peek(s *core.Session) (v T, ok bool) {
	s.OpStart()
	head, htag := q.head.NbtcLoad(s)
	next, ntag := head.next.NbtcLoad(s)
	s.AddToReadSet(&q.head, htag)
	if next == nil {
		s.AddToReadSet(&head.next, ntag)
		var zero T
		return zero, false
	}
	return next.val, true
}

// Len counts elements; diagnostic, non-linearizable.
func (q *Queue[T]) Len() int {
	n := 0
	h := q.head.Load()
	for nd := h.next.Load(); nd != nil; nd = nd.next.Load() {
		n++
	}
	return n
}

// Drain removes all elements, returning them in order. Diagnostic helper
// for tests; not linearizable as a whole.
func (q *Queue[T]) Drain(s *core.Session) []T {
	var out []T
	for {
		v, ok := q.Dequeue(s)
		if !ok {
			return out
		}
		out = append(out, v)
	}
}
