package msqueue

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"medley/internal/core"
)

func TestEmptyQueue(t *testing.T) {
	q := New[int]()
	s := core.NewTxManager().Session()
	if _, ok := q.Dequeue(s); ok {
		t.Fatal("dequeue from empty succeeded")
	}
	if _, ok := q.Peek(s); ok {
		t.Fatal("peek on empty succeeded")
	}
	if q.Len() != 0 {
		t.Fatal("len != 0")
	}
}

func TestFIFOOrder(t *testing.T) {
	q := New[int]()
	s := core.NewTxManager().Session()
	for i := 0; i < 100; i++ {
		q.Enqueue(s, i)
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := q.Dequeue(s)
		if !ok || v != i {
			t.Fatalf("Dequeue = %d,%v want %d", v, ok, i)
		}
	}
	if _, ok := q.Dequeue(s); ok {
		t.Fatal("queue not empty at end")
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	q := New[string]()
	s := core.NewTxManager().Session()
	q.Enqueue(s, "a")
	if v, ok := q.Peek(s); !ok || v != "a" {
		t.Fatalf("Peek = %q,%v", v, ok)
	}
	if q.Len() != 1 {
		t.Fatal("peek removed element")
	}
}

// Property: queue matches a model slice for any op sequence.
func TestSequentialModelProperty(t *testing.T) {
	f := func(ops []int16) bool {
		q := New[int16]()
		s := core.NewTxManager().Session()
		var model []int16
		for _, o := range ops {
			if o >= 0 {
				q.Enqueue(s, o)
				model = append(model, o)
			} else {
				v, ok := q.Dequeue(s)
				if len(model) == 0 {
					if ok {
						return false
					}
				} else {
					if !ok || v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
		}
		return q.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentEnqueueDequeueConservation(t *testing.T) {
	q := New[int]()
	mgr := core.NewTxManager()
	const producers = 4
	const consumers = 4
	const per = 2000

	// Phase 1: concurrent producers (concurrent produce+consume mixing is
	// exercised by TestConcurrentTransactionalTransfers).
	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			s := mgr.Session()
			for i := 0; i < per; i++ {
				q.Enqueue(s, p*per+i)
			}
		}(p)
	}
	pwg.Wait()

	// Phase 2: concurrent consumers drain until empty; every element must
	// be seen exactly once.
	var mu sync.Mutex
	seen := make(map[int]bool, producers*per)
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			s := mgr.Session()
			for {
				v, ok := q.Dequeue(s)
				if !ok {
					return
				}
				mu.Lock()
				if seen[v] {
					t.Errorf("duplicate %d", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	cwg.Wait()
	if len(seen) != producers*per {
		t.Fatalf("consumed %d, want %d", len(seen), producers*per)
	}
}

// Per-producer order must be preserved (FIFO per source).
func TestConcurrentPerProducerOrder(t *testing.T) {
	q := New[[2]int]()
	mgr := core.NewTxManager()
	const producers = 4
	const per = 1500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			s := mgr.Session()
			for i := 0; i < per; i++ {
				q.Enqueue(s, [2]int{p, i})
			}
		}(p)
	}
	wg.Wait()
	s := mgr.Session()
	last := map[int]int{}
	for {
		v, ok := q.Dequeue(s)
		if !ok {
			break
		}
		p, i := v[0], v[1]
		if prev, seen := last[p]; seen && i != prev+1 {
			t.Fatalf("producer %d out of order: %d after %d", p, i, prev)
		}
		last[p] = i
	}
	for p := 0; p < producers; p++ {
		if last[p] != per-1 {
			t.Fatalf("producer %d missing items (last %d)", p, last[p])
		}
	}
}

// Transactional composition: atomically move an element between queues —
// the canonical example of a structure transactional boosting cannot handle.
func TestTransactionalQueueMove(t *testing.T) {
	mgr := core.NewTxManager()
	q1 := New[int]()
	q2 := New[int]()
	s := mgr.Session()
	q1.Enqueue(s, 1)
	q1.Enqueue(s, 2)

	err := s.Run(func() error {
		v, ok := q1.Dequeue(s)
		if !ok {
			return core.ErrTxAborted
		}
		q2.Enqueue(s, v)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if q1.Len() != 1 || q2.Len() != 1 {
		t.Fatalf("lens = %d,%d", q1.Len(), q2.Len())
	}
	if v, _ := q2.Dequeue(s); v != 1 {
		t.Fatalf("moved %d, want 1", v)
	}
}

func TestAbortRestoresQueueState(t *testing.T) {
	mgr := core.NewTxManager()
	q := New[int]()
	s := mgr.Session()
	q.Enqueue(s, 1)

	s.TxBegin()
	if v, ok := q.Dequeue(s); !ok || v != 1 {
		t.Fatalf("tx dequeue = %d,%v", v, ok)
	}
	q.Enqueue(s, 99)
	s.TxAbort()

	if q.Len() != 1 {
		t.Fatalf("Len = %d after abort, want 1", q.Len())
	}
	if v, _ := q.Dequeue(s); v != 1 {
		t.Fatalf("head = %d after abort, want 1", v)
	}
}

// A transaction dequeues what it enqueued earlier in the same transaction
// (complication 2: later op must see earlier op through helping).
func TestTxDequeuesOwnEnqueue(t *testing.T) {
	mgr := core.NewTxManager()
	q := New[int]()
	s := mgr.Session()

	err := s.Run(func() error {
		q.Enqueue(s, 42)
		v, ok := q.Dequeue(s)
		if !ok || v != 42 {
			t.Errorf("tx dequeue of own enqueue = %d,%v", v, ok)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if q.Len() != 0 {
		t.Fatalf("queue len = %d, want 0", q.Len())
	}
}

// Concurrent transactional transfers between two queues conserve elements.
func TestConcurrentTransactionalTransfers(t *testing.T) {
	mgr := core.NewTxManager()
	q1 := New[int]()
	q2 := New[int]()
	setup := mgr.Session()
	const n = 64
	for i := 0; i < n; i++ {
		q1.Enqueue(setup, i)
	}
	const workers = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := mgr.Session()
			for i := 0; i < 300; i++ {
				src, dst := q1, q2
				if (w+i)%2 == 0 {
					src, dst = q2, q1
				}
				_ = s.Run(func() error {
					v, ok := src.Dequeue(s)
					if !ok {
						return nil
					}
					dst.Enqueue(s, v)
					return nil
				})
			}
		}(w)
	}
	wg.Wait()
	if total := q1.Len() + q2.Len(); total != n {
		t.Fatalf("total = %d, want %d", total, n)
	}
	s := mgr.Session()
	var all []int
	all = append(all, q1.Drain(s)...)
	all = append(all, q2.Drain(s)...)
	sort.Ints(all)
	for i, v := range all {
		if v != i {
			t.Fatalf("element set corrupted at %d: %v", i, v)
		}
	}
}
