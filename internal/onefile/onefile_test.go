package onefile

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"medley/internal/chaos"
	"medley/internal/pnvm"
)

func TestSkipListBasic(t *testing.T) {
	st := New()
	sl := NewSkipList[uint64](st)
	err := st.WriteTx(func() error {
		if !sl.Insert(1, 10) {
			t.Error("insert failed")
		}
		if sl.Insert(1, 11) {
			t.Error("dup insert succeeded")
		}
		if v, ok := sl.Get(1); !ok || v != 10 {
			t.Errorf("Get = %d,%v", v, ok)
		}
		old, replaced := sl.Put(1, 12)
		if !replaced || old != 10 {
			t.Errorf("Put = %d,%v", old, replaced)
		}
		if v, ok := sl.Remove(1); !ok || v != 12 {
			t.Errorf("Remove = %d,%v", v, ok)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st.ReadTx(func() {
		if _, ok := sl.Get(1); ok {
			t.Error("key present after remove")
		}
	})
}

func TestWriteTxRollback(t *testing.T) {
	st := New()
	sl := NewSkipList[uint64](st)
	h := NewHash[uint64](st, 16)
	boom := errors.New("boom")
	st.WriteTx(func() error { sl.Insert(1, 10); h.Insert(2, 20); return nil })
	err := st.WriteTx(func() error {
		sl.Put(1, 99)
		sl.Insert(3, 30)
		sl.Remove(1)
		h.Remove(2)
		h.Put(4, 40)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	st.ReadTx(func() {
		if v, ok := sl.Get(1); !ok || v != 10 {
			t.Errorf("rollback failed on skiplist: %d,%v", v, ok)
		}
		if _, ok := sl.Get(3); ok {
			t.Error("aborted insert visible")
		}
		if v, ok := h.Get(2); !ok || v != 20 {
			t.Errorf("rollback failed on hash: %d,%v", v, ok)
		}
		if _, ok := h.Get(4); ok {
			t.Error("aborted hash put visible")
		}
	})
}

func TestHashBasic(t *testing.T) {
	st := New()
	h := NewHash[uint64](st, 4) // force chains
	st.WriteTx(func() error {
		for k := uint64(0); k < 100; k++ {
			h.Insert(k, k*2)
		}
		return nil
	})
	st.ReadTx(func() {
		for k := uint64(0); k < 100; k++ {
			if v, ok := h.Get(k); !ok || v != k*2 {
				t.Errorf("Get(%d) = %d,%v", k, v, ok)
			}
		}
	})
	st.WriteTx(func() error {
		for k := uint64(0); k < 100; k += 2 {
			if _, ok := h.Remove(k); !ok {
				t.Errorf("remove %d failed", k)
			}
		}
		return nil
	})
	if got := h.Len(); got != 50 {
		t.Fatalf("Len = %d", got)
	}
}

// Concurrent transfers under WriteTx preserve the total (serialized writers
// make this trivially atomic; the test guards the undo machinery and reader
// validation).
func TestConcurrentTransfers(t *testing.T) {
	st := New()
	sl := NewSkipList[int](st)
	const accounts = 16
	st.WriteTx(func() error {
		for a := uint64(0); a < accounts; a++ {
			sl.Insert(a, 1000)
		}
		return nil
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 500; i++ {
				a1 := uint64(rng.Intn(accounts))
				a2 := uint64(rng.Intn(accounts))
				if a1 == a2 {
					continue
				}
				st.WriteTx(func() error {
					v1, _ := sl.Get(a1)
					v2, _ := sl.Get(a2)
					sl.Put(a1, v1-1)
					sl.Put(a2, v2+1)
					return nil
				})
			}
		}(w)
	}
	// Concurrent readers validating consistency: any snapshot must show the
	// exact total (transfers between two keys are atomic).
	stopReaders := make(chan struct{})
	var rwg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				total := 0
				st.ReadTx(func() {
					total = 0
					for a := uint64(0); a < accounts; a++ {
						v, _ := sl.Get(a)
						total += v
					}
				})
				if total != accounts*1000 {
					t.Errorf("reader saw inconsistent total %d", total)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stopReaders)
	rwg.Wait()
	total := 0
	st.ReadTx(func() {
		total = 0
		for a := uint64(0); a < accounts; a++ {
			v, _ := sl.Get(a)
			total += v
		}
	})
	if total != accounts*1000 {
		t.Fatalf("total = %d", total)
	}
}

func TestPersistentVariantChargesNVM(t *testing.T) {
	dev := pnvm.New(pnvm.Latencies{})
	st := NewPersistent(dev)
	sl := NewSkipList[uint64](st)
	st.WriteTx(func() error {
		sl.Insert(1, 1)
		sl.Insert(2, 2)
		return nil
	})
	w, wb, f := dev.Stats()
	if w == 0 || wb == 0 || f == 0 {
		t.Fatalf("persistent commit did not touch NVM: %d,%d,%d", w, wb, f)
	}
}

func TestStatsCount(t *testing.T) {
	st := New()
	sl := NewSkipList[uint64](st)
	st.WriteTx(func() error { sl.Insert(1, 1); return nil })
	st.ReadTx(func() { sl.Get(1) })
	c, _ := st.Stats()
	if c != 2 {
		t.Fatalf("commits = %d", c)
	}
}

// TestPersistSIDNamespacing: two structures on one persistent STM may bind
// the same raw key; one structure's update or removal must never retire the
// other's record. (Recovery still merges raw-key collisions newest-first —
// the documented modeling caveat — but committed data must survive.)
func TestPersistSIDNamespacing(t *testing.T) {
	dev := pnvm.New(pnvm.Latencies{})
	st := NewPersistent(dev)
	sid1, sid2 := st.NewPersistSID(), st.NewPersistSID()
	mustTx := func(fn func() error) {
		t.Helper()
		if err := st.WriteTx(fn); err != nil {
			t.Fatal(err)
		}
	}
	mustTx(func() error { st.StagePersist(sid1, 5, []byte{1}); return nil })
	mustTx(func() error { st.StagePersist(sid2, 5, []byte{2}); return nil })
	// Structure 2 removes its copy; structure 1's record must stay live.
	mustTx(func() error { st.StagePersist(sid2, 5, nil); return nil })
	dev.Crash()
	kv := LiveKV(dev.Recover())
	got, ok := kv[5]
	if !ok || len(got) != 1 || got[0] != 1 {
		t.Fatalf("structure 1's record lost: kv[5] = %v, %v (another structure's ops retired it)", got, ok)
	}
}

// TestCommitRecordGatesVisibility pins the redo-log commit point: a crash an
// instant BEFORE the commit record is written back must recover none of the
// transaction's payloads (even though they are all durably on media), and a
// crash an instant AFTER must recover all of them. Visibility flips on
// exactly one write-back.
func TestCommitRecordGatesVisibility(t *testing.T) {
	t.Cleanup(chaos.DisarmAll)
	for _, tc := range []struct {
		point string
		want  bool
	}{
		{"ponefile.commit.pre-mark", false},      // payloads durable, record absent
		{"ponefile.commit.mark-volatile", false}, // record written but not written back
		{"ponefile.commit.post-mark", true},      // record durable: committed
	} {
		dev := pnvm.New(pnvm.Latencies{})
		st := NewPersistent(dev)
		sid := st.NewPersistSID()
		if err := st.WriteTx(func() error { st.StagePersist(sid, 1, []byte{10}); return nil }); err != nil {
			t.Fatal(err)
		}
		if err := chaos.Arm(tc.point, chaos.Fault{Kind: chaos.Crash, Action: func() { dev.Crash() }}); err != nil {
			t.Fatal(err)
		}
		crashed := func() (crashed bool) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := chaos.AsCrash(r); !ok {
						panic(r)
					}
					crashed = true
				}
			}()
			st.WriteTx(func() error {
				st.StagePersist(sid, 2, []byte{20})
				st.StagePersist(sid, 3, []byte{30})
				return nil
			})
			return false
		}()
		chaos.DisarmAll()
		if !crashed {
			t.Fatalf("%s: crash never fired", tc.point)
		}
		kv := LiveKV(dev.Recover())
		if kv[1] == nil {
			t.Fatalf("%s: committed base key lost", tc.point)
		}
		if got2, got3 := kv[2] != nil, kv[3] != nil; got2 != tc.want || got3 != tc.want {
			t.Fatalf("%s: keys (2,3) visible = (%v,%v), want both %v", tc.point, got2, got3, tc.want)
		}
	}
}

// TestReanchorScrubsAndResumes: recovery's Reanchor must scrub everything the
// commit cut excludes (torn payloads, durably-retired overwrites, the commit
// history itself) down to a single anchor record, and the STM must resume
// committing on the same device with the recovered state intact.
func TestReanchorScrubsAndResumes(t *testing.T) {
	t.Cleanup(chaos.DisarmAll)
	dev := pnvm.New(pnvm.Latencies{})
	st := NewPersistent(dev)
	sid := st.NewPersistSID()
	mustTx := func(fn func() error) {
		t.Helper()
		if err := st.WriteTx(fn); err != nil {
			t.Fatal(err)
		}
	}
	mustTx(func() error { st.StagePersist(sid, 1, []byte{1}); st.StagePersist(sid, 2, []byte{2}); return nil })
	mustTx(func() error { st.StagePersist(sid, 2, []byte{22}); st.StagePersist(sid, 3, []byte{3}); return nil })
	mustTx(func() error { st.StagePersist(sid, 1, nil); return nil })
	// One more transaction dies just before its commit record: its payloads
	// are durable torn garbage that Reanchor must remove from media.
	if err := chaos.Arm("ponefile.commit.pre-mark", chaos.Fault{Kind: chaos.Crash, Action: func() { dev.Crash() }}); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := chaos.AsCrash(r); !ok {
					panic(r)
				}
			}
		}()
		st.WriteTx(func() error { st.StagePersist(sid, 9, []byte{9}); return nil })
		t.Fatal("pre-mark crash never fired")
	}()
	chaos.DisarmAll()

	recs := dev.Recover()
	want := map[uint64]byte{2: 22, 3: 3} // key 1 removed, key 9 torn
	st2 := NewPersistent(dev)
	st2.Reanchor(recs)

	// The scrub is on media, not just in the recovered view: re-crash and
	// re-dump. Exactly one commit record (the anchor) and exactly the live
	// payloads survive.
	dev.Crash()
	after := dev.Recover()
	marks, payloads := 0, 0
	for _, r := range after {
		if r.Key == CommitKey {
			marks++
		} else {
			payloads++
		}
	}
	if marks != 1 {
		t.Fatalf("commit history not collapsed: %d commit records on media, want 1 anchor", marks)
	}
	if payloads != len(want) {
		t.Fatalf("scrub left %d payload records, want %d", payloads, len(want))
	}
	kv := LiveKV(after)
	for k, v := range want {
		if got, ok := kv[k]; !ok || len(got) != 1 || got[0] != v {
			t.Fatalf("key %d after reanchor: %v, %v want [%d]", k, got, ok, v)
		}
	}
	if kv[1] != nil || kv[9] != nil {
		t.Fatalf("removed/torn keys resurrected: kv[1]=%v kv[9]=%v", kv[1], kv[9])
	}

	// And the reanchored STM keeps committing: a fresh transaction on the
	// recovered device is durable and GCs back down to one commit record.
	st3 := NewPersistent(dev)
	st3.Reanchor(after)
	sid3 := st3.NewPersistSID()
	if err := st3.WriteTx(func() error { st3.StagePersist(sid3, 4, []byte{4}); return nil }); err != nil {
		t.Fatal(err)
	}
	dev.Crash()
	final := dev.Recover()
	marks = 0
	for _, r := range final {
		if r.Key == CommitKey {
			marks++
		}
	}
	if marks != 1 {
		t.Fatalf("continued commits leak commit records: %d on media", marks)
	}
	if kv := LiveKV(final); kv[4] == nil || kv[2] == nil {
		t.Fatalf("post-reanchor commit not durable: kv[4]=%v kv[2]=%v", kv[4], kv[2])
	}
}
