package onefile

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"medley/internal/pnvm"
)

func TestSkipListBasic(t *testing.T) {
	st := New()
	sl := NewSkipList[uint64](st)
	err := st.WriteTx(func() error {
		if !sl.Insert(1, 10) {
			t.Error("insert failed")
		}
		if sl.Insert(1, 11) {
			t.Error("dup insert succeeded")
		}
		if v, ok := sl.Get(1); !ok || v != 10 {
			t.Errorf("Get = %d,%v", v, ok)
		}
		old, replaced := sl.Put(1, 12)
		if !replaced || old != 10 {
			t.Errorf("Put = %d,%v", old, replaced)
		}
		if v, ok := sl.Remove(1); !ok || v != 12 {
			t.Errorf("Remove = %d,%v", v, ok)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st.ReadTx(func() {
		if _, ok := sl.Get(1); ok {
			t.Error("key present after remove")
		}
	})
}

func TestWriteTxRollback(t *testing.T) {
	st := New()
	sl := NewSkipList[uint64](st)
	h := NewHash[uint64](st, 16)
	boom := errors.New("boom")
	st.WriteTx(func() error { sl.Insert(1, 10); h.Insert(2, 20); return nil })
	err := st.WriteTx(func() error {
		sl.Put(1, 99)
		sl.Insert(3, 30)
		sl.Remove(1)
		h.Remove(2)
		h.Put(4, 40)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	st.ReadTx(func() {
		if v, ok := sl.Get(1); !ok || v != 10 {
			t.Errorf("rollback failed on skiplist: %d,%v", v, ok)
		}
		if _, ok := sl.Get(3); ok {
			t.Error("aborted insert visible")
		}
		if v, ok := h.Get(2); !ok || v != 20 {
			t.Errorf("rollback failed on hash: %d,%v", v, ok)
		}
		if _, ok := h.Get(4); ok {
			t.Error("aborted hash put visible")
		}
	})
}

func TestHashBasic(t *testing.T) {
	st := New()
	h := NewHash[uint64](st, 4) // force chains
	st.WriteTx(func() error {
		for k := uint64(0); k < 100; k++ {
			h.Insert(k, k*2)
		}
		return nil
	})
	st.ReadTx(func() {
		for k := uint64(0); k < 100; k++ {
			if v, ok := h.Get(k); !ok || v != k*2 {
				t.Errorf("Get(%d) = %d,%v", k, v, ok)
			}
		}
	})
	st.WriteTx(func() error {
		for k := uint64(0); k < 100; k += 2 {
			if _, ok := h.Remove(k); !ok {
				t.Errorf("remove %d failed", k)
			}
		}
		return nil
	})
	if got := h.Len(); got != 50 {
		t.Fatalf("Len = %d", got)
	}
}

// Concurrent transfers under WriteTx preserve the total (serialized writers
// make this trivially atomic; the test guards the undo machinery and reader
// validation).
func TestConcurrentTransfers(t *testing.T) {
	st := New()
	sl := NewSkipList[int](st)
	const accounts = 16
	st.WriteTx(func() error {
		for a := uint64(0); a < accounts; a++ {
			sl.Insert(a, 1000)
		}
		return nil
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 500; i++ {
				a1 := uint64(rng.Intn(accounts))
				a2 := uint64(rng.Intn(accounts))
				if a1 == a2 {
					continue
				}
				st.WriteTx(func() error {
					v1, _ := sl.Get(a1)
					v2, _ := sl.Get(a2)
					sl.Put(a1, v1-1)
					sl.Put(a2, v2+1)
					return nil
				})
			}
		}(w)
	}
	// Concurrent readers validating consistency: any snapshot must show the
	// exact total (transfers between two keys are atomic).
	stopReaders := make(chan struct{})
	var rwg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				total := 0
				st.ReadTx(func() {
					total = 0
					for a := uint64(0); a < accounts; a++ {
						v, _ := sl.Get(a)
						total += v
					}
				})
				if total != accounts*1000 {
					t.Errorf("reader saw inconsistent total %d", total)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stopReaders)
	rwg.Wait()
	total := 0
	st.ReadTx(func() {
		total = 0
		for a := uint64(0); a < accounts; a++ {
			v, _ := sl.Get(a)
			total += v
		}
	})
	if total != accounts*1000 {
		t.Fatalf("total = %d", total)
	}
}

func TestPersistentVariantChargesNVM(t *testing.T) {
	dev := pnvm.New(pnvm.Latencies{})
	st := NewPersistent(dev)
	sl := NewSkipList[uint64](st)
	st.WriteTx(func() error {
		sl.Insert(1, 1)
		sl.Insert(2, 2)
		return nil
	})
	w, wb, f := dev.Stats()
	if w == 0 || wb == 0 || f == 0 {
		t.Fatalf("persistent commit did not touch NVM: %d,%d,%d", w, wb, f)
	}
}

func TestStatsCount(t *testing.T) {
	st := New()
	sl := NewSkipList[uint64](st)
	st.WriteTx(func() error { sl.Insert(1, 1); return nil })
	st.ReadTx(func() { sl.Get(1) })
	c, _ := st.Stats()
	if c != 2 {
		t.Fatalf("commits = %d", c)
	}
}

// TestPersistSIDNamespacing: two structures on one persistent STM may bind
// the same raw key; one structure's update or removal must never retire the
// other's record. (Recovery still merges raw-key collisions newest-first —
// the documented modeling caveat — but committed data must survive.)
func TestPersistSIDNamespacing(t *testing.T) {
	dev := pnvm.New(pnvm.Latencies{})
	st := NewPersistent(dev)
	sid1, sid2 := st.NewPersistSID(), st.NewPersistSID()
	mustTx := func(fn func() error) {
		t.Helper()
		if err := st.WriteTx(fn); err != nil {
			t.Fatal(err)
		}
	}
	mustTx(func() error { st.StagePersist(sid1, 5, []byte{1}); return nil })
	mustTx(func() error { st.StagePersist(sid2, 5, []byte{2}); return nil })
	// Structure 2 removes its copy; structure 1's record must stay live.
	mustTx(func() error { st.StagePersist(sid2, 5, nil); return nil })
	dev.Crash()
	kv := LiveKV(dev.Recover())
	got, ok := kv[5]
	if !ok || len(got) != 1 || got[0] != 1 {
		t.Fatalf("structure 1's record lost: kv[5] = %v, %v (another structure's ops retired it)", got, ok)
	}
}
