package onefile

import (
	"math/bits"
	"math/rand/v2"
	"sync/atomic"
)

// The data structures below are deliberately *sequential* algorithms
// "parallelized using STM", exactly as the paper describes its OneFile
// baselines (Section 6.1: "a sequential chained hash table parallelized
// using STM"; skiplists "derived from Fraser's STM-based skiplist"). All
// mutable fields are atomics so that optimistic readers racing with the
// single active writer never perform torn or racy reads; reader-visible
// inconsistency is caught by the STM's sequence validation and retried.
//
// Every mutating method must be called inside STM.WriteTx; every reading
// method either inside WriteTx (sees own writes) or inside ReadTx.

const maxLevel = 20

// SkipList is a sequential skiplist managed by a OneFile-lite STM.
type SkipList[V any] struct {
	st   *STM
	head *ofnode[V]
}

type ofnode[V any] struct {
	key   uint64
	val   atomic.Pointer[V]
	next  []atomic.Pointer[ofnode[V]]
	level int
}

// NewSkipList creates an empty skiplist bound to st.
func NewSkipList[V any](st *STM) *SkipList[V] {
	return &SkipList[V]{
		st:   st,
		head: &ofnode[V]{next: make([]atomic.Pointer[ofnode[V]], maxLevel), level: maxLevel - 1},
	}
}

// STM returns the owning transaction manager.
func (sl *SkipList[V]) STM() *STM { return sl.st }

func (sl *SkipList[V]) findPreds(k uint64, preds *[maxLevel]*ofnode[V]) *ofnode[V] {
	x := sl.head
	for lvl := maxLevel - 1; lvl >= 0; lvl-- {
		for {
			nxt := x.next[lvl].Load()
			if nxt == nil || nxt.key >= k {
				break
			}
			x = nxt
		}
		preds[lvl] = x
	}
	c := x.next[0].Load()
	if c != nil && c.key == k {
		return c
	}
	return nil
}

// Get returns the value bound to k, if any.
func (sl *SkipList[V]) Get(k uint64) (V, bool) {
	var preds [maxLevel]*ofnode[V]
	if c := sl.findPreds(k, &preds); c != nil {
		if vp := c.val.Load(); vp != nil {
			return *vp, true
		}
	}
	var zero V
	return zero, false
}

// Put binds k to v (WriteTx only).
func (sl *SkipList[V]) Put(k uint64, v V) (V, bool) {
	var preds [maxLevel]*ofnode[V]
	if c := sl.findPreds(k, &preds); c != nil {
		old := c.val.Load()
		c.val.Store(&v)
		sl.st.LogUndo(func() { c.val.Store(old) })
		return *old, true
	}
	sl.link(k, v, &preds)
	var zero V
	return zero, false
}

// Insert adds k→v only if absent (WriteTx only).
func (sl *SkipList[V]) Insert(k uint64, v V) bool {
	var preds [maxLevel]*ofnode[V]
	if sl.findPreds(k, &preds) != nil {
		return false
	}
	sl.link(k, v, &preds)
	return true
}

func (sl *SkipList[V]) link(k uint64, v V, preds *[maxLevel]*ofnode[V]) {
	lvl := bits.TrailingZeros64(rand.Uint64() | (1 << (maxLevel - 1)))
	nn := &ofnode[V]{key: k, next: make([]atomic.Pointer[ofnode[V]], lvl+1), level: lvl}
	nn.val.Store(&v)
	for i := 0; i <= lvl; i++ {
		nn.next[i].Store(preds[i].next[i].Load())
		preds[i].next[i].Store(nn)
	}
	sl.st.LogUndo(func() {
		for i := 0; i <= lvl; i++ {
			preds[i].next[i].Store(nn.next[i].Load())
		}
	})
}

// Remove deletes k (WriteTx only).
func (sl *SkipList[V]) Remove(k uint64) (V, bool) {
	var preds [maxLevel]*ofnode[V]
	c := sl.findPreds(k, &preds)
	if c == nil {
		var zero V
		return zero, false
	}
	for i := 0; i <= c.level; i++ {
		if preds[i].next[i].Load() == c {
			preds[i].next[i].Store(c.next[i].Load())
		}
	}
	sl.st.LogUndo(func() {
		for i := 0; i <= c.level; i++ {
			if preds[i].next[i].Load() == c.next[i].Load() {
				preds[i].next[i].Store(c)
			}
		}
	})
	return *c.val.Load(), true
}

// Len counts keys (diagnostic; call inside a transaction for a stable view).
func (sl *SkipList[V]) Len() int {
	n := 0
	for c := sl.head.next[0].Load(); c != nil; c = c.next[0].Load() {
		n++
	}
	return n
}

// Hash is a sequential chained hash table managed by a OneFile-lite STM.
type Hash[V any] struct {
	st      *STM
	buckets []atomic.Pointer[hnode[V]]
}

type hnode[V any] struct {
	key  uint64
	val  atomic.Pointer[V]
	next atomic.Pointer[hnode[V]]
}

// NewHash creates a hash table with nbuckets chains bound to st.
func NewHash[V any](st *STM, nbuckets int) *Hash[V] {
	if nbuckets < 1 {
		nbuckets = 1
	}
	return &Hash[V]{st: st, buckets: make([]atomic.Pointer[hnode[V]], nbuckets)}
}

// STM returns the owning transaction manager.
func (h *Hash[V]) STM() *STM { return h.st }

func mix64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

func (h *Hash[V]) bucket(k uint64) *atomic.Pointer[hnode[V]] {
	return &h.buckets[mix64(k)%uint64(len(h.buckets))]
}

// Get returns the value bound to k, if any.
func (h *Hash[V]) Get(k uint64) (V, bool) {
	for c := h.bucket(k).Load(); c != nil; c = c.next.Load() {
		if c.key == k {
			if vp := c.val.Load(); vp != nil {
				return *vp, true
			}
		}
	}
	var zero V
	return zero, false
}

// Put binds k to v (WriteTx only).
func (h *Hash[V]) Put(k uint64, v V) (V, bool) {
	for c := h.bucket(k).Load(); c != nil; c = c.next.Load() {
		if c.key == k {
			old := c.val.Load()
			c.val.Store(&v)
			h.st.LogUndo(func() { c.val.Store(old) })
			return *old, true
		}
	}
	b := h.bucket(k)
	nn := &hnode[V]{key: k}
	nn.val.Store(&v)
	nn.next.Store(b.Load())
	b.Store(nn)
	h.st.LogUndo(func() { b.Store(nn.next.Load()) })
	var zero V
	return zero, false
}

// Insert adds k→v only if absent (WriteTx only).
func (h *Hash[V]) Insert(k uint64, v V) bool {
	for c := h.bucket(k).Load(); c != nil; c = c.next.Load() {
		if c.key == k {
			return false
		}
	}
	b := h.bucket(k)
	nn := &hnode[V]{key: k}
	nn.val.Store(&v)
	nn.next.Store(b.Load())
	b.Store(nn)
	h.st.LogUndo(func() { b.Store(nn.next.Load()) })
	return true
}

// Remove deletes k (WriteTx only).
func (h *Hash[V]) Remove(k uint64) (V, bool) {
	b := h.bucket(k)
	var prev *hnode[V]
	for c := b.Load(); c != nil; c = c.next.Load() {
		if c.key == k {
			succ := c.next.Load()
			if prev == nil {
				b.Store(succ)
				h.st.LogUndo(func() { b.Store(c) })
			} else {
				p := prev
				p.next.Store(succ)
				h.st.LogUndo(func() { p.next.Store(c) })
			}
			return *c.val.Load(), true
		}
		prev = c
	}
	var zero V
	return zero, false
}

// Len counts keys (diagnostic; call inside a transaction for a stable view).
func (h *Hash[V]) Len() int {
	n := 0
	for i := range h.buckets {
		for c := h.buckets[i].Load(); c != nil; c = c.next.Load() {
			n++
		}
	}
	return n
}
