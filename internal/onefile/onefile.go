// Package onefile implements "OneFile-lite", a baseline STM modelled on
// OneFile (Ramalhete et al., DSN 2019), the nonblocking persistent STM the
// Medley paper compares against (Figures 7–9).
//
// OneFile's defining design choices, which this implementation reproduces:
//
//   - Transactions are serialized by a single global sequence: at most one
//     write transaction is active at a time, so writers gain nothing from
//     additional threads.
//   - Readers need no read set: they snapshot the global sequence, run
//     against the shared structure, and revalidate the sequence at the end
//     (retrying on interference). This makes read-mostly workloads fast at
//     low thread counts — exactly the regime where the paper observes
//     OneFile performing well.
//   - The persistent variant (POneFile) persists eagerly on the critical
//     path: it logs the transaction's writes to NVM, fences, applies them,
//     writes back every dirty line, and fences again before the transaction
//     returns — which is why it trails periodic persistence by orders of
//     magnitude.
//
// Substitution note (documented in DESIGN.md): real OneFile achieves
// wait-freedom by publishing each transaction as a closure that all threads
// help apply through 128-bit-CAS'd words. Go has neither 128-bit CAS nor a
// practical way to re-execute arbitrary closures helpfully, so OneFile-lite
// serializes writers with a lock and keeps readers optimistic via a
// sequence lock. The progress guarantee differs; the throughput shape (no
// write scaling, cheap low-thread reads, huge eager-persistence penalty)
// is the property the evaluation depends on, and it is preserved.
package onefile

import (
	"sync"
	"sync/atomic"

	"medley/internal/pnvm"
)

// STM is a OneFile-lite transaction manager. All structures attached to one
// STM instance commit through the same global sequence.
type STM struct {
	seq   atomic.Uint64 // even: stable; odd: writer applying
	wlock sync.Mutex

	// persistence (nil for the transient variant)
	dev *pnvm.Device

	// per-transaction undo log and dirty-line count, guarded by wlock.
	undo  []func()
	dirty int

	commits atomic.Uint64
	aborts  atomic.Uint64
}

// New creates a transient OneFile-lite STM.
func New() *STM { return &STM{} }

// NewPersistent creates a POneFile-style STM that persists each write
// transaction eagerly through dev.
func NewPersistent(dev *pnvm.Device) *STM { return &STM{dev: dev} }

// ReadTx runs fn as an optimistic read-only transaction, retrying until it
// observes a quiescent sequence across its whole execution. fn must be pure
// reading (no writes to STM-managed state) and must tolerate concurrent
// mutation of the structures it traverses (all structure fields are
// atomics, so torn reads cannot occur).
func (st *STM) ReadTx(fn func()) {
	for {
		s1 := st.seq.Load()
		if s1%2 != 0 {
			continue // writer applying; spin
		}
		fn()
		if st.seq.Load() == s1 {
			st.commits.Add(1)
			return
		}
		st.aborts.Add(1)
	}
}

// WriteTx runs fn as a serialized write transaction. fn may read structures
// directly (it holds the writer lock, so it sees its own writes) and must
// route every mutation through the structure's tx-aware mutators, which
// register undo handlers via LogUndo. If fn returns an error the
// transaction rolls back and the error is returned.
func (st *STM) WriteTx(fn func() error) error {
	st.wlock.Lock()
	defer st.wlock.Unlock()
	st.undo = st.undo[:0]
	st.dirty = 0
	st.seq.Add(1) // odd: readers hold off
	err := fn()
	if err != nil {
		for i := len(st.undo) - 1; i >= 0; i-- {
			st.undo[i]()
		}
		st.seq.Add(1)
		st.aborts.Add(1)
		return err
	}
	if st.dev != nil {
		// POneFile: redo log to NVM, fence, then write back each dirty
		// line, fence — all on the critical path.
		for i := 0; i < st.dirty; i++ {
			id, werr := st.dev.Write(0, nil, 0)
			if werr == nil {
				st.dev.WriteBack(id)
				// The log entry is transient bookkeeping; drop it so the
				// simulated DIMM does not accumulate unbounded state.
				st.dev.Delete(id)
			}
		}
		st.dev.Fence()
		st.dev.Fence()
	}
	st.seq.Add(1)
	st.commits.Add(1)
	return nil
}

// LogUndo registers compensation for one mutation of the current write
// transaction. Must only be called from inside WriteTx's fn.
func (st *STM) LogUndo(f func()) {
	st.undo = append(st.undo, f)
	st.dirty++
}

// Stats returns commit/abort counters (reads + writes combined).
func (st *STM) Stats() (commits, aborts uint64) {
	return st.commits.Load(), st.aborts.Load()
}
