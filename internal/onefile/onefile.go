// Package onefile implements "OneFile-lite", a baseline STM modelled on
// OneFile (Ramalhete et al., DSN 2019), the nonblocking persistent STM the
// Medley paper compares against (Figures 7–9).
//
// OneFile's defining design choices, which this implementation reproduces:
//
//   - Transactions are serialized by a single global sequence: at most one
//     write transaction is active at a time, so writers gain nothing from
//     additional threads.
//   - Readers need no read set: they snapshot the global sequence, run
//     against the shared structure, and revalidate the sequence at the end
//     (retrying on interference). This makes read-mostly workloads fast at
//     low thread counts — exactly the regime where the paper observes
//     OneFile performing well.
//   - The persistent variant (POneFile) persists eagerly on the critical
//     path: it logs the transaction's writes to NVM, fences, applies them,
//     writes back every dirty line, and fences again before the transaction
//     returns — which is why it trails periodic persistence by orders of
//     magnitude. Payload persistence is per-record (StagePersist), without
//     a commit record: a crash landing *inside* WriteTx's persistence
//     window could recover a prefix of one transaction's records. Real
//     OneFile closes that window with its redo log; the simulated device
//     only crashes between transactions (pnvm.Device.Crash is external),
//     so the failure-atomicity the recovery tests assert is the one this
//     model can express.
//
// Substitution note (documented in DESIGN.md): real OneFile achieves
// wait-freedom by publishing each transaction as a closure that all threads
// help apply through 128-bit-CAS'd words. Go has neither 128-bit CAS nor a
// practical way to re-execute arbitrary closures helpfully, so OneFile-lite
// serializes writers with a lock and keeps readers optimistic via a
// sequence lock. The progress guarantee differs; the throughput shape (no
// write scaling, cheap low-thread reads, huge eager-persistence penalty)
// is the property the evaluation depends on, and it is preserved.
package onefile

import (
	"sync"
	"sync/atomic"

	"medley/internal/pnvm"
)

// STM is a OneFile-lite transaction manager. All structures attached to one
// STM instance commit through the same global sequence.
type STM struct {
	seq   atomic.Uint64 // even: stable; odd: writer applying
	wlock sync.Mutex

	// persistence (nil for the transient variant)
	dev *pnvm.Device

	// per-transaction undo log and dirty-line count, guarded by wlock.
	undo  []func()
	dirty int

	// staged payload updates of the current write transaction and the
	// (structure, key) → live-record index of the whole store, guarded by
	// wlock. Only structures that stage payloads (see StagePersist) are
	// recoverable; unstaged dirty lines still pay the simulated redo-log
	// cost. The index is namespaced per structure (sid) so one map's
	// update never retires another map's record for the same key.
	staged  []stagedKV
	keyIDs  map[persistKey]uint64
	nextSID atomic.Uint64

	commits atomic.Uint64
	aborts  atomic.Uint64
}

type stagedKV struct {
	sid, key uint64
	val      []byte // nil: removal
}

type persistKey struct{ sid, key uint64 }

// New creates a transient OneFile-lite STM.
func New() *STM { return &STM{} }

// NewPersistent creates a POneFile-style STM that persists each write
// transaction eagerly through dev.
func NewPersistent(dev *pnvm.Device) *STM {
	return &STM{dev: dev, keyIDs: make(map[persistKey]uint64)}
}

// NewPersistSID allocates a structure id for one persistent structure's
// StagePersist calls.
func (st *STM) NewPersistSID() uint64 { return st.nextSID.Add(1) }

// ReadTx runs fn as an optimistic read-only transaction, retrying until it
// observes a quiescent sequence across its whole execution. fn must be pure
// reading (no writes to STM-managed state) and must tolerate concurrent
// mutation of the structures it traverses (all structure fields are
// atomics, so torn reads cannot occur).
func (st *STM) ReadTx(fn func()) {
	for {
		s1 := st.seq.Load()
		if s1%2 != 0 {
			continue // writer applying; spin
		}
		fn()
		if st.seq.Load() == s1 {
			st.commits.Add(1)
			return
		}
		st.aborts.Add(1)
	}
}

// WriteTx runs fn as a serialized write transaction. fn may read structures
// directly (it holds the writer lock, so it sees its own writes) and must
// route every mutation through the structure's tx-aware mutators, which
// register undo handlers via LogUndo. If fn returns an error the
// transaction rolls back and the error is returned.
func (st *STM) WriteTx(fn func() error) error {
	st.wlock.Lock()
	defer st.wlock.Unlock()
	st.undo = st.undo[:0]
	st.staged = st.staged[:0]
	st.dirty = 0
	st.seq.Add(1) // odd: readers hold off
	err := fn()
	if err != nil {
		for i := len(st.undo) - 1; i >= 0; i-- {
			st.undo[i]()
		}
		st.seq.Add(1)
		st.aborts.Add(1)
		return err
	}
	if st.dev != nil {
		// POneFile: persist eagerly on the critical path. Dirty lines
		// without a staged payload pay the redo-log cost only (transient
		// bookkeeping records, dropped immediately).
		for i := len(st.staged); i < st.dirty; i++ {
			id, werr := st.dev.Write(0, nil, 0)
			if werr == nil {
				st.dev.WriteBack(id)
				st.dev.Delete(id)
			}
		}
		// Staged payloads become durable records before the transaction
		// returns: write + write back each, fence.
		ids := make([]uint64, len(st.staged))
		for i, p := range st.staged {
			if p.val == nil {
				continue
			}
			if id, werr := st.dev.Write(p.key, p.val, 0); werr == nil {
				st.dev.WriteBack(id)
				ids[i] = id
			}
		}
		st.dev.Fence()
		// Then durably retire every superseded or removed record. A crash
		// between the fences leaves both versions live; recovery keeps the
		// newer allocation (see LiveKV).
		claim := st.seq.Load()
		var dead []uint64
		for i, p := range st.staged {
			pk := persistKey{p.sid, p.key}
			if old, ok := st.keyIDs[pk]; ok {
				if rerr := st.dev.Retire(old, 1, claim); rerr == nil {
					st.dev.WriteBack(old)
					dead = append(dead, old)
				}
			}
			if p.val == nil {
				delete(st.keyIDs, pk)
			} else if ids[i] != 0 {
				st.keyIDs[pk] = ids[i]
			}
		}
		st.dev.Fence()
		// Past the fence the retirements are durable; drop the dead records
		// so the simulated DIMM does not accumulate one per overwrite.
		for _, id := range dead {
			st.dev.Delete(id)
		}
	}
	st.seq.Add(1)
	st.commits.Add(1)
	return nil
}

// StagePersist stages one payload update of the current write transaction:
// structure sid's key now binds to val (nil val: key removed). Durable iff
// the transaction commits; staged entries of aborted transactions are
// discarded. Must only be called from inside WriteTx's fn on a persistent
// STM, with a sid from NewPersistSID.
func (st *STM) StagePersist(sid, key uint64, val []byte) {
	if st.dev == nil {
		return
	}
	st.staged = append(st.staged, stagedKV{sid: sid, key: key, val: val})
}

// LogUndo registers compensation for one mutation of the current write
// transaction. Must only be called from inside WriteTx's fn.
func (st *STM) LogUndo(f func()) {
	st.undo = append(st.undo, f)
	st.dirty++
}

// Stats returns commit/abort counters (reads + writes combined).
func (st *STM) Stats() (commits, aborts uint64) {
	return st.commits.Load(), st.aborts.Load()
}

// Device returns the simulated NVM device (nil for the transient variant).
func (st *STM) Device() *pnvm.Device { return st.dev }

// LiveKV reduces a post-crash device dump (pnvm.Device.Recover output) to
// the surviving key → payload bindings: records durably retired before the
// crash are dropped, and where an update's old and new records both
// survived (crash between the two persistence fences), the newer allocation
// wins. Device records carry only the raw key, so distinct structures that
// persisted the same key recover merged (newest wins) — the same modeling
// caveat as the montage layer, whose demos tag key spaces per structure.
func LiveKV(recs []pnvm.Record) map[uint64][]byte {
	best := make(map[uint64]pnvm.Record, len(recs))
	for _, r := range recs {
		if r.Retire != 0 {
			continue
		}
		if b, ok := best[r.Key]; !ok || r.ID > b.ID {
			best[r.Key] = r
		}
	}
	out := make(map[uint64][]byte, len(best))
	for k, r := range best {
		out[k] = r.Val
	}
	return out
}
