// Package onefile implements "OneFile-lite", a baseline STM modelled on
// OneFile (Ramalhete et al., DSN 2019), the nonblocking persistent STM the
// Medley paper compares against (Figures 7–9).
//
// OneFile's defining design choices, which this implementation reproduces:
//
//   - Transactions are serialized by a single global sequence: at most one
//     write transaction is active at a time, so writers gain nothing from
//     additional threads.
//   - Readers need no read set: they snapshot the global sequence, run
//     against the shared structure, and revalidate the sequence at the end
//     (retrying on interference). This makes read-mostly workloads fast at
//     low thread counts — exactly the regime where the paper observes
//     OneFile performing well.
//   - The persistent variant (POneFile) persists eagerly on the critical
//     path: it logs the transaction's writes to NVM, fences, applies them,
//     writes back every dirty line, and fences again before the transaction
//     returns — which is why it trails periodic persistence by orders of
//     magnitude. Persistence is failure-atomic at every instant via a
//     redo-log commit record: each committing transaction tags its payload
//     records and retirement marks with a fresh commit serial, makes them
//     durable, and only then writes back a reserved commit record carrying
//     that serial. Recovery (LiveKV/Reanchor) computes the durable commit
//     cut — the highest serial with a durable commit record — and replays
//     exactly the transactions at or below it: payload records beyond the
//     cut are torn (scrubbed off media), retirement marks beyond it are
//     ignored (the retiree stays live). A crash at any point of the window
//     therefore recovers either all of a transaction's records or none,
//     which the chaos crash-point sweep in txengine's conformance suite
//     proves point by point.
//
// Substitution note (documented in DESIGN.md): real OneFile achieves
// wait-freedom by publishing each transaction as a closure that all threads
// help apply through 128-bit-CAS'd words. Go has neither 128-bit CAS nor a
// practical way to re-execute arbitrary closures helpfully, so OneFile-lite
// serializes writers with a lock and keeps readers optimistic via a
// sequence lock. The progress guarantee differs; the throughput shape (no
// write scaling, cheap low-thread reads, huge eager-persistence penalty)
// is the property the evaluation depends on, and it is preserved.
package onefile

import (
	"sync"
	"sync/atomic"

	"medley/internal/chaos"
	"medley/internal/pnvm"
)

// Fault-injection points spanning POneFile's WriteTx persistence window, in
// protocol order. Crash faults at pre-log through mark-volatile land before
// the commit point (recovery must surface none of the transaction); crashes
// at post-mark or gc land after it (recovery must surface all of it).
var (
	cpPreLog       = chaos.At("ponefile.commit.pre-log")
	cpPayload      = chaos.At("ponefile.commit.payload")       // after each payload write-back
	cpRetire       = chaos.At("ponefile.commit.retire")        // after each retire write-back
	cpPreMark      = chaos.At("ponefile.commit.pre-mark")      // payloads+retires durable, no commit record
	cpMarkVolatile = chaos.At("ponefile.commit.mark-volatile") // commit record written, not yet written back
	cpPostMark     = chaos.At("ponefile.commit.post-mark")     // commit point passed
	cpGC           = chaos.At("ponefile.commit.gc")            // before dead-record GC
)

// CommitKey is the reserved record key under which POneFile logs commit
// records. Each commit record's Epoch field carries the transaction's commit
// serial; the highest serial with a durable commit record is the recovery
// cut. Payload keys must stay below it (StagePersist enforces this).
const CommitKey = ^uint64(0)

// STM is a OneFile-lite transaction manager. All structures attached to one
// STM instance commit through the same global sequence.
type STM struct {
	seq   atomic.Uint64 // even: stable; odd: writer applying
	wlock sync.Mutex

	// persistence (nil for the transient variant)
	dev *pnvm.Device

	// per-transaction undo log and dirty-line count, guarded by wlock.
	undo  []func()
	dirty int

	// staged payload updates of the current write transaction and the
	// (structure, key) → live-record index of the whole store, guarded by
	// wlock. Only structures that stage payloads (see StagePersist) are
	// recoverable; unstaged dirty lines still pay the simulated redo-log
	// cost. The index is namespaced per structure (sid) so one map's
	// update never retires another map's record for the same key.
	staged  []stagedKV
	keyIDs  map[persistKey]uint64
	nextSID atomic.Uint64

	// redo-log commit state, guarded by wlock: the serial of the newest
	// committed transaction (its commit record is durable) and the id of
	// that commit record, so GC can drop the superseded one.
	serial     uint64
	lastCommit uint64

	commits atomic.Uint64
	aborts  atomic.Uint64
}

type stagedKV struct {
	sid, key uint64
	val      []byte // nil: removal
}

type persistKey struct{ sid, key uint64 }

// New creates a transient OneFile-lite STM.
func New() *STM { return &STM{} }

// NewPersistent creates a POneFile-style STM that persists each write
// transaction eagerly through dev.
func NewPersistent(dev *pnvm.Device) *STM {
	return &STM{dev: dev, keyIDs: make(map[persistKey]uint64)}
}

// NewPersistSID allocates a structure id for one persistent structure's
// StagePersist calls.
func (st *STM) NewPersistSID() uint64 { return st.nextSID.Add(1) }

// ReadTx runs fn as an optimistic read-only transaction, retrying until it
// observes a quiescent sequence across its whole execution. fn must be pure
// reading (no writes to STM-managed state) and must tolerate concurrent
// mutation of the structures it traverses (all structure fields are
// atomics, so torn reads cannot occur).
func (st *STM) ReadTx(fn func()) {
	for {
		s1 := st.seq.Load()
		if s1%2 != 0 {
			continue // writer applying; spin
		}
		fn()
		if st.seq.Load() == s1 {
			st.commits.Add(1)
			return
		}
		st.aborts.Add(1)
	}
}

// WriteTx runs fn as a serialized write transaction. fn may read structures
// directly (it holds the writer lock, so it sees its own writes) and must
// route every mutation through the structure's tx-aware mutators, which
// register undo handlers via LogUndo. If fn returns an error the
// transaction rolls back and the error is returned.
func (st *STM) WriteTx(fn func() error) error {
	st.wlock.Lock()
	defer st.wlock.Unlock()
	st.undo = st.undo[:0]
	st.staged = st.staged[:0]
	st.dirty = 0
	st.seq.Add(1) // odd: readers hold off
	err := fn()
	if err == nil && st.dev != nil {
		err = st.persist()
	}
	if err != nil {
		for i := len(st.undo) - 1; i >= 0; i-- {
			st.undo[i]()
		}
		st.seq.Add(1)
		st.aborts.Add(1)
		return err
	}
	st.seq.Add(1)
	st.commits.Add(1)
	return nil
}

// persist makes the current write transaction durable, failure-atomically:
// payload records and retirement marks go to media tagged with a fresh
// commit serial, and the transaction commits on media exactly when the
// reserved commit record carrying that serial is written back. Recovery
// honors records and marks only up to the highest durable commit serial, so
// a crash anywhere in this window recovers all of the transaction or none.
// A media error (device crashed under us, or an injected fault) undoes the
// transaction's media effects and aborts it — POneFile never acknowledges a
// commit it could not persist.
func (st *STM) persist() error {
	// Dirty lines without a staged payload pay the simulated redo-log cost
	// only (transient bookkeeping records, dropped immediately).
	for i := len(st.staged); i < st.dirty; i++ {
		id, werr := st.dev.Write(0, nil, 0)
		if werr != nil {
			return werr
		}
		st.dev.WriteBack(id)
		st.dev.Delete(id)
	}
	if len(st.staged) == 0 {
		if st.dirty > 0 {
			st.dev.Fence()
		}
		return nil
	}
	st.collapseStaged()
	serial := st.serial + 1
	claim := st.seq.Load()
	if err := cpPreLog.Hit(); err != nil {
		return err
	}
	ids := make([]uint64, len(st.staged))
	var retired []uint64
	fail := func(err error) error {
		// Undo this serial's media effects so the transaction aborts
		// cleanly: its payload records deleted, its retire marks lifted.
		for _, id := range ids {
			if id != 0 {
				st.dev.Delete(id)
			}
		}
		for _, id := range retired {
			st.dev.UnRetire(id, claim)
		}
		return err
	}
	// (1) Payload records, tagged with the commit serial: written and
	// written back, but invisible to recovery until the commit record
	// carrying the same serial is durable.
	for i, p := range st.staged {
		if p.val == nil {
			continue
		}
		id, werr := st.dev.Write(p.key, p.val, serial)
		if werr != nil {
			return fail(werr)
		}
		st.dev.WriteBack(id)
		ids[i] = id
		if err := cpPayload.Hit(); err != nil {
			return fail(err)
		}
	}
	// (2) Retire every superseded or removed record, marked with the same
	// serial. The marks reach durability before the commit record, but
	// recovery honors a mark only when its serial is at or below the
	// durable commit cut — a crash here leaves the old version live, never
	// a torn half-transaction.
	for _, p := range st.staged {
		old, ok := st.keyIDs[persistKey{p.sid, p.key}]
		if !ok {
			continue
		}
		if rerr := st.dev.Retire(old, serial, claim); rerr != nil {
			return fail(rerr)
		}
		st.dev.WriteBack(old)
		retired = append(retired, old)
		if err := cpRetire.Hit(); err != nil {
			return fail(err)
		}
	}
	st.dev.Fence()
	if err := cpPreMark.Hit(); err != nil {
		return fail(err)
	}
	// (3) The commit record. The transaction is committed on media exactly
	// when this record's write-back lands.
	mid, werr := st.dev.Write(CommitKey, nil, serial)
	if werr != nil {
		return fail(werr)
	}
	if err := cpMarkVolatile.Hit(); err != nil {
		st.dev.Delete(mid)
		return fail(err)
	}
	st.dev.WriteBack(mid)
	st.dev.Fence()
	// ---- commit point: durable from here on; nothing below may fail. ----
	cpPostMark.Hit() // injected errors are ignored past the commit point
	for i, p := range st.staged {
		pk := persistKey{p.sid, p.key}
		if p.val == nil {
			delete(st.keyIDs, pk)
		} else {
			st.keyIDs[pk] = ids[i]
		}
	}
	st.serial = serial
	cpGC.Hit()
	// (4) GC: the retired records are durably dead and the previous commit
	// record is superseded (recovery takes the highest serial), so drop
	// both rather than accumulate one record per overwrite. A crash in
	// here just leaves them for Reanchor's recovery scrub.
	for _, id := range retired {
		st.dev.Delete(id)
	}
	if st.lastCommit != 0 {
		st.dev.Delete(st.lastCommit)
	}
	st.lastCommit = mid
	return nil
}

// collapseStaged rewrites st.staged so each (sid, key) appears exactly once
// with its final value — a put-then-remove inside one transaction must
// persist nothing, and keyIDs is only consulted/updated per final state.
// Quadratic in the per-transaction staged count, which is small.
func (st *STM) collapseStaged() {
	if len(st.staged) < 2 {
		return
	}
	out := st.staged[:0]
outer:
	for i, p := range st.staged {
		for _, q := range st.staged[i+1:] {
			if q.sid == p.sid && q.key == p.key {
				continue outer // a later entry supersedes this one
			}
		}
		out = append(out, p)
	}
	st.staged = out
}

// StagePersist stages one payload update of the current write transaction:
// structure sid's key now binds to val (nil val: key removed). Durable iff
// the transaction commits; staged entries of aborted transactions are
// discarded. Must only be called from inside WriteTx's fn on a persistent
// STM, with a sid from NewPersistSID.
func (st *STM) StagePersist(sid, key uint64, val []byte) {
	if st.dev == nil {
		return
	}
	if key == CommitKey {
		panic("onefile: payload key collides with the reserved commit-record key")
	}
	st.staged = append(st.staged, stagedKV{sid: sid, key: key, val: val})
}

// LogUndo registers compensation for one mutation of the current write
// transaction. Must only be called from inside WriteTx's fn.
func (st *STM) LogUndo(f func()) {
	st.undo = append(st.undo, f)
	st.dirty++
}

// Stats returns commit/abort counters (reads + writes combined).
func (st *STM) Stats() (commits, aborts uint64) {
	return st.commits.Load(), st.aborts.Load()
}

// Device returns the simulated NVM device (nil for the transient variant).
func (st *STM) Device() *pnvm.Device { return st.dev }

// LiveKV reduces a post-crash device dump (pnvm.Device.Recover output) to
// the surviving key → payload bindings under the redo-log commit rule. The
// durable commit cut is the highest serial carried by a durable commit
// record; a transaction is recovered exactly when its serial is at or below
// the cut. Payload records beyond the cut are torn halves of uncommitted
// transactions and are dropped; retirement marks beyond the cut were placed
// by transactions that never committed and are ignored (the marked record
// stays live); records durably retired at or below the cut are dropped.
// Where a committed update's old and new records both survived (crash
// before GC), the newer allocation wins. Device records carry only the raw
// key, so distinct structures that persisted the same key recover merged
// (newest wins) — the same modeling caveat as the montage layer, whose
// demos tag key spaces per structure.
func LiveKV(recs []pnvm.Record) map[uint64][]byte {
	cut := commitCut(recs)
	best := make(map[uint64]pnvm.Record, len(recs))
	for _, r := range recs {
		if r.Key == CommitKey || r.Epoch > cut {
			continue
		}
		if r.Retire != 0 && r.Retire <= cut {
			continue
		}
		if b, ok := best[r.Key]; !ok || r.ID > b.ID {
			best[r.Key] = r
		}
	}
	out := make(map[uint64][]byte, len(best))
	for k, r := range best {
		out[k] = r.Val
	}
	return out
}

// commitCut returns the durable commit cut of a device dump: the highest
// commit serial whose commit record survived the crash. Zero when no
// transaction ever committed.
func commitCut(recs []pnvm.Record) uint64 {
	cut := uint64(0)
	for _, r := range recs {
		if r.Key == CommitKey && r.Epoch > cut {
			cut = r.Epoch
		}
	}
	return cut
}

// Reanchor reattaches a fresh persistent STM to a recovered device: given
// the same dump LiveKV reduces, it scrubs torn payload records (serial
// beyond the durable commit cut) off the media, lifts retirement marks left
// by uncommitted transactions, completes the GC a crash may have
// interrupted (durably-retired and shadowed records, stale commit records),
// collapses the commit-record history to a single anchor, and resumes the
// commit-serial allocator past the cut so post-recovery transactions always
// supersede pre-crash ones. Call once, after pnvm recovery and before the
// STM serves transactions.
func (st *STM) Reanchor(recs []pnvm.Record) {
	if st.dev == nil {
		return
	}
	st.wlock.Lock()
	defer st.wlock.Unlock()
	cut := commitCut(recs)
	// Newest committed live record per raw key — everything else under that
	// key is shadow state (LiveKV's newest-wins merge applied to media, so
	// a later removal of the key cannot resurrect an older record).
	newest := make(map[uint64]uint64, len(recs))
	for _, r := range recs {
		if r.Key == CommitKey || r.Epoch > cut || (r.Retire != 0 && r.Retire <= cut) {
			continue
		}
		if r.ID > newest[r.Key] {
			newest[r.Key] = r.ID
		}
	}
	for _, r := range recs {
		switch {
		case r.Key == CommitKey:
			st.dev.Delete(r.ID) // collapsed into the single anchor below
		case r.Epoch > cut:
			st.dev.Delete(r.ID) // torn payload: its commit record never became durable
		case r.Retire != 0 && r.Retire <= cut:
			st.dev.Delete(r.ID) // durably retired; a crash interrupted GC
		case r.ID != newest[r.Key]:
			st.dev.Delete(r.ID) // shadowed by a newer committed record
		case r.Retire > cut:
			st.dev.ClearRetire(r.ID) // the retiring transaction tore; record stays live
		}
	}
	st.serial = cut
	if id, err := st.dev.Write(CommitKey, nil, cut); err == nil {
		st.dev.WriteBack(id)
		st.dev.Fence()
		st.lastCommit = id
	}
}
