// Package txmap defines the common transactional map interface implemented
// by every key-value structure in this repository (Medley hash table,
// skiplists, BST, the montage persistent maps, and the OneFile / TDSL / LFTT
// baseline adapters used by the benchmark harness).
package txmap

import "medley/internal/core"

// Map is a transactional map from uint64 keys to V. All operations are
// usable both inside a Medley transaction (on a session between TxBegin and
// TxEnd) and standalone.
type Map[V any] interface {
	// Get returns the value bound to k, if any.
	Get(s *core.Session, k uint64) (V, bool)
	// Put binds k to v, returning the previous value if k was present.
	Put(s *core.Session, k uint64, v V) (V, bool)
	// Insert adds k→v only if absent, reporting whether insertion happened.
	Insert(s *core.Session, k uint64, v V) bool
	// Remove deletes k, returning its value if present.
	Remove(s *core.Session, k uint64) (V, bool)
}
