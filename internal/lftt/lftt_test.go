package lftt

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

func TestSingleOps(t *testing.T) {
	sl := New()
	if _, ok := sl.Get(1); ok {
		t.Fatal("found key in empty set")
	}
	if !sl.Insert(1, 10) {
		t.Fatal("insert failed")
	}
	if sl.Insert(1, 11) {
		t.Fatal("dup insert succeeded")
	}
	if v, ok := sl.Get(1); !ok || v != 10 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	if v, ok := sl.Remove(1); !ok || v != 10 {
		t.Fatalf("Remove = %d,%v", v, ok)
	}
	if _, ok := sl.Get(1); ok {
		t.Fatal("present after remove")
	}
	// Tombstone revival.
	if !sl.Insert(1, 12) {
		t.Fatal("re-insert failed")
	}
	if v, _ := sl.Get(1); v != 12 {
		t.Fatalf("revived value = %d", v)
	}
}

func TestStaticTxAllOrNothing(t *testing.T) {
	sl := New()
	sl.Insert(1, 10)
	// This tx removes 1 and inserts 2 atomically.
	for {
		if _, ok := sl.ExecuteTx([]Op{
			{Kind: OpRemove, Key: 1},
			{Kind: OpInsert, Key: 2, Val: 20},
		}); ok {
			break
		}
	}
	if _, ok := sl.Get(1); ok {
		t.Fatal("key 1 survived tx")
	}
	if v, ok := sl.Get(2); !ok || v != 20 {
		t.Fatalf("key 2 = %d,%v", v, ok)
	}
}

func TestTxSeesOwnOps(t *testing.T) {
	sl := New()
	res, ok := func() ([]OpResult, bool) {
		for {
			if r, ok := sl.ExecuteTx([]Op{
				{Kind: OpInsert, Key: 5, Val: 50},
				{Kind: OpGet, Key: 5},
				{Kind: OpRemove, Key: 5},
				{Kind: OpGet, Key: 5},
			}); ok {
				return r, true
			}
		}
	}()
	if !ok {
		t.Fatal("tx never committed")
	}
	if !res[0].Ok || !res[1].Ok || res[1].Val != 50 {
		t.Fatalf("own insert not visible: %+v", res)
	}
	if !res[2].Ok || res[2].Val != 50 {
		t.Fatalf("own remove failed: %+v", res)
	}
	if res[3].Ok {
		t.Fatalf("get after own remove found key: %+v", res)
	}
	if _, ok := sl.Get(5); ok {
		t.Fatal("key present after insert+remove tx")
	}
}

func TestModelSequential(t *testing.T) {
	sl := New()
	model := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		k := uint64(rng.Intn(64))
		switch rng.Intn(3) {
		case 0:
			v := uint64(rng.Intn(1000))
			_, mok := model[k]
			ok := sl.Insert(k, v)
			if ok == mok {
				t.Fatalf("insert(%d) = %v, model has=%v", k, ok, mok)
			}
			if ok {
				model[k] = v
			}
		case 1:
			mv, mok := model[k]
			v, ok := sl.Get(k)
			if ok != mok || (ok && v != mv) {
				t.Fatalf("get(%d) = %d,%v want %d,%v", k, v, ok, mv, mok)
			}
		case 2:
			mv, mok := model[k]
			v, ok := sl.Remove(k)
			if ok != mok || (ok && v != mv) {
				t.Fatalf("remove(%d) = %d,%v want %d,%v", k, v, ok, mv, mok)
			}
			delete(model, k)
		}
	}
	if sl.Len() != len(model) {
		t.Fatalf("Len = %d want %d", sl.Len(), len(model))
	}
}

// Transactions moving a token between keys: exactly one key holds it at any
// committed point.
func TestConcurrentAtomicMoves(t *testing.T) {
	sl := New()
	sl.Insert(0, 1)
	const workers = 8
	var wg sync.WaitGroup
	var commits atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 300; i++ {
				from := uint64(rng.Intn(4))
				to := uint64(rng.Intn(4))
				if from == to {
					continue
				}
				if _, ok := sl.ExecuteTx([]Op{
					{Kind: OpRemove, Key: from},
					{Kind: OpInsert, Key: to, Val: 1},
				}); ok {
					commits.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	// Count tokens: a committed move either moved it or reported
	// failure on one op. Since ExecuteTx aborts on nothing here (failed
	// ops report but do not abort), tokens can multiply only if atomicity
	// broke. Verify at most... exactly: token count must be >= 1; moves
	// that "remove absent + insert present" commit as no-ops. The
	// invariant to check: never two copies created by a split tx when
	// remove succeeded and insert succeeded.
	n := sl.Len()
	if n < 1 || n > 4 {
		t.Fatalf("token count corrupted: %d", n)
	}
}

// Eager conflict resolution must preserve per-key last-writer-wins
// consistency: concurrent increments on one key never lose updates.
func TestConcurrentIncrements(t *testing.T) {
	sl := New()
	sl.Insert(1, 0)
	const workers = 8
	const per = 300
	var wg sync.WaitGroup
	var commits atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				for {
					res, ok := sl.ExecuteTx([]Op{{Kind: OpGet, Key: 1}})
					if !ok {
						continue
					}
					cur := res[0].Val
					if _, ok2 := sl.ExecuteTx([]Op{
						{Kind: OpRemove, Key: 1},
						{Kind: OpInsert, Key: 1, Val: cur + 1},
					}); !ok2 {
						continue
					}
					// Not atomic across the two txs: only count the second.
					commits.Add(1)
					break
				}
			}
		}()
	}
	wg.Wait()
	_ = commits.Load()
	v, ok := sl.Get(1)
	if !ok {
		t.Fatal("key vanished")
	}
	// The two-tx read-modify-write races by design; the structural
	// invariant is that the value equals *some* interleaving count <= total.
	if v == 0 || v > uint64(workers*per) {
		t.Fatalf("value %d out of range", v)
	}
}

// Read-modify-write in ONE static transaction is impossible (values are not
// expressible as functions), but remove+insert with the remove's value is
// the LFTT idiom; exercise heavy conflict rates for liveness.
func TestHighContentionLiveness(t *testing.T) {
	sl := New()
	for k := uint64(0); k < 8; k++ {
		sl.Insert(k, k)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 2000; i++ {
				k1 := uint64(rng.Intn(8))
				k2 := uint64(rng.Intn(8))
				ops := []Op{
					{Kind: OpGet, Key: k1},
					{Kind: OpInsert, Key: k2, Val: 1},
					{Kind: OpRemove, Key: k1},
				}
				for tries := 0; tries < 10000; tries++ {
					if _, ok := sl.ExecuteTx(ops); ok {
						break
					}
				}
			}
		}(w)
	}
	wg.Wait() // completing at all is the assertion (no livelock/deadlock)
}
