// Package lftt implements an LFTT-style baseline: the Lock-Free
// Transactional Transform of Zhang & Dechev (SPAA 2016), applied to a
// skiplist-based set/map, as compared against in Figure 8 of the Medley
// paper.
//
// LFTT's defining design, reproduced here:
//
//   - Transactions are *static*: the full operation list is known up front
//     (which is why the paper cannot run LFTT on TPC-C).
//   - Every operation — including reads — publishes the transaction's
//     descriptor on its critical node (the node holding the key), making
//     readers visible to writers; this per-operation metadata CAS is the
//     overhead that costs LFTT its gap against Medley's invisible readers.
//   - A node's logical membership is a function of the descriptor and
//     operation recorded in its info field: a committed insert means
//     present, a committed remove absent, an aborted operation reverts to
//     the pre-operation state, all switched atomically by the single CAS on
//     the transaction's status word.
//   - Nodes are never physically unlinked; a "removed" key persists as a
//     physical node whose info marks it absent, to be revived by a later
//     insert's adoption CAS.
//
// Substitution note (documented in DESIGN.md): the original resolves
// conflicts by helping the encountered transaction to completion; this
// implementation resolves them by eagerly aborting the encountered
// transaction (the same policy Medley uses), which keeps progress
// obstruction-free and preserves LFTT's performance-relevant costs
// (descriptor publication on every critical node, whole-transaction
// re-execution after conflicts).
package lftt

import (
	"math/bits"
	"math/rand/v2"
	"sync/atomic"
)

// OpKind selects a set operation.
type OpKind uint8

const (
	OpGet OpKind = iota
	OpInsert
	OpRemove
)

// Op is one operation of a static transaction.
type Op struct {
	Kind OpKind
	Key  uint64
	Val  uint64
}

// OpResult is the outcome of one operation in a committed transaction.
type OpResult struct {
	Val uint64
	Ok  bool // get: key present; insert: inserted; remove: removed
}

// Status of a transaction descriptor.
type Status int32

const (
	active Status = iota
	committed
	aborted
)

// txDesc is a transaction descriptor shared by all its critical nodes.
type txDesc struct {
	status atomic.Int32
}

// info publishes one transaction operation on a node. Immutable; replaced
// by adoption CASes.
type info struct {
	desc *txDesc
	kind OpKind
	// val is the node's value if this info leaves (or left) it present:
	// insert = the new value; remove = the prior value (in case of abort);
	// get = the observed value.
	val uint64
	// prevPresent is the logical membership before this operation (used to
	// interpret get infos and aborted operations).
	prevPresent bool
}

const maxLevel = 20

type node struct {
	key   uint64
	info  atomic.Pointer[info]
	next  []atomic.Pointer[node]
	level int
}

// SkipList is an LFTT-transformed skiplist map (uint64 → uint64).
type SkipList struct {
	head *node
}

// New returns an empty LFTT skiplist.
func New() *SkipList {
	return &SkipList{head: &node{next: make([]atomic.Pointer[node], maxLevel), level: maxLevel - 1}}
}

// interpret computes a node's logical membership and value from its info.
// me is the interpreting transaction: its own operations read as committed.
// The caller must have resolved any foreign active descriptor first.
func interpret(h *info, me *txDesc) (present bool, val uint64) {
	st := committed
	if h.desc != me {
		st = Status(h.desc.status.Load())
	}
	switch h.kind {
	case OpInsert:
		if st == committed {
			return true, h.val
		}
		return false, 0 // adoption rule: insert adopted only when absent
	case OpRemove:
		if st == committed {
			return false, 0
		}
		return true, h.val // adoption rule: remove adopted only when present
	default: // OpGet preserves membership
		return h.prevPresent, h.val
	}
}

// resolve gets a foreign active descriptor out of the way by aborting it
// (eager contention management; see package comment).
func resolve(h *info, me *txDesc) {
	if h.desc != me && Status(h.desc.status.Load()) == active {
		h.desc.status.CompareAndSwap(int32(active), int32(aborted))
	}
}

// search returns the physical node with key k (or nil) and the predecessors
// per level. Physical nodes are never unlinked.
func (sl *SkipList) search(k uint64, preds *[maxLevel]*node) *node {
	x := sl.head
	for lvl := maxLevel - 1; lvl >= 0; lvl-- {
		for {
			nxt := x.next[lvl].Load()
			if nxt == nil || nxt.key >= k {
				break
			}
			x = nxt
		}
		preds[lvl] = x
	}
	if c := x.next[0].Load(); c != nil && c.key == k {
		return c
	}
	return nil
}

// physicalInsert links a fresh node for k carrying first as its info;
// returns the node (ours or a racing winner's).
func (sl *SkipList) physicalInsert(k uint64, first *info) (*node, bool) {
	var preds [maxLevel]*node
	if n := sl.search(k, &preds); n != nil {
		return n, false
	}
	lvl := bits.TrailingZeros64(rand.Uint64() | (1 << (maxLevel - 1)))
	nn := &node{key: k, next: make([]atomic.Pointer[node], lvl+1), level: lvl}
	nn.info.Store(first)
	succ := preds[0].next[0].Load()
	if succ != nil && succ.key <= k {
		return nil, false // raced with another physical insert; re-search
	}
	nn.next[0].Store(succ)
	if !preds[0].next[0].CompareAndSwap(succ, nn) {
		return nil, false
	}
	// Link upper levels best-effort.
	for i := 1; i <= lvl; i++ {
		for {
			var ps [maxLevel]*node
			sl.search(k, &ps)
			succ := ps[i].next[i].Load()
			if succ == nn {
				break
			}
			nn.next[i].Store(succ)
			if ps[i].next[i].CompareAndSwap(succ, nn) {
				break
			}
		}
	}
	return nn, true
}

// ExecuteTx runs a static transaction once; committed reports whether it
// took effect. On false the caller should retry (fresh attempt). Results
// are valid only when committed.
func (sl *SkipList) ExecuteTx(ops []Op) (results []OpResult, ok bool) {
	d := &txDesc{}
	results = make([]OpResult, len(ops))
	for i, op := range ops {
		if Status(d.status.Load()) != active {
			return nil, false // eagerly aborted by a conflicting transaction
		}
		var res OpResult
		var okOp bool
		switch op.Kind {
		case OpInsert:
			res, okOp = sl.doInsert(d, op)
		case OpRemove:
			res, okOp = sl.doRemove(d, op)
		default:
			res, okOp = sl.doGet(d, op)
		}
		if !okOp {
			d.status.CompareAndSwap(int32(active), int32(aborted))
			return nil, false
		}
		results[i] = res
	}
	if !d.status.CompareAndSwap(int32(active), int32(committed)) {
		return nil, false
	}
	return results, true
}

func (sl *SkipList) doInsert(d *txDesc, op Op) (OpResult, bool) {
	for {
		if Status(d.status.Load()) != active {
			return OpResult{}, false
		}
		var preds [maxLevel]*node
		n := sl.search(op.Key, &preds)
		if n == nil {
			in := &info{desc: d, kind: OpInsert, val: op.Val}
			if nn, okIns := sl.physicalInsert(op.Key, in); okIns && nn != nil {
				return OpResult{Val: op.Val, Ok: true}, true
			}
			continue
		}
		h := n.info.Load()
		resolve(h, d)
		if h.desc != d && Status(h.desc.status.Load()) == active {
			continue // racing resolution
		}
		present, _ := interpret(h, d)
		if present {
			// Insert on a present key: the operation reports failure; the
			// transaction itself proceeds (set-semantics insert is a no-op,
			// still serialized via the adoption CAS below as a reader).
			gi := &info{desc: d, kind: OpGet, val: h.val, prevPresent: true}
			if n.info.CompareAndSwap(h, gi) {
				return OpResult{Val: h.val, Ok: false}, true
			}
			continue
		}
		in := &info{desc: d, kind: OpInsert, val: op.Val}
		if n.info.CompareAndSwap(h, in) {
			return OpResult{Val: op.Val, Ok: true}, true
		}
	}
}

func (sl *SkipList) doRemove(d *txDesc, op Op) (OpResult, bool) {
	for {
		if Status(d.status.Load()) != active {
			return OpResult{}, false
		}
		var preds [maxLevel]*node
		n := sl.search(op.Key, &preds)
		if n == nil {
			return OpResult{Ok: false}, true // absent; op reports failure
		}
		h := n.info.Load()
		resolve(h, d)
		if h.desc != d && Status(h.desc.status.Load()) == active {
			continue
		}
		present, val := interpret(h, d)
		if !present {
			gi := &info{desc: d, kind: OpGet, prevPresent: false}
			if n.info.CompareAndSwap(h, gi) {
				return OpResult{Ok: false}, true
			}
			continue
		}
		ri := &info{desc: d, kind: OpRemove, val: val, prevPresent: true}
		if n.info.CompareAndSwap(h, ri) {
			return OpResult{Val: val, Ok: true}, true
		}
	}
}

func (sl *SkipList) doGet(d *txDesc, op Op) (OpResult, bool) {
	for {
		if Status(d.status.Load()) != active {
			return OpResult{}, false
		}
		var preds [maxLevel]*node
		n := sl.search(op.Key, &preds)
		if n == nil {
			return OpResult{Ok: false}, true
		}
		h := n.info.Load()
		resolve(h, d)
		if h.desc != d && Status(h.desc.status.Load()) == active {
			continue
		}
		present, val := interpret(h, d)
		// Visible reader: publish the read on the critical node.
		gi := &info{desc: d, kind: OpGet, val: val, prevPresent: present}
		if n.info.CompareAndSwap(h, gi) {
			return OpResult{Val: val, Ok: present}, true
		}
	}
}

// Get is a convenience single-op transaction (retried until committed).
func (sl *SkipList) Get(k uint64) (uint64, bool) {
	for {
		if res, ok := sl.ExecuteTx([]Op{{Kind: OpGet, Key: k}}); ok {
			return res[0].Val, res[0].Ok
		}
	}
}

// Insert is a convenience single-op transaction (retried until committed).
func (sl *SkipList) Insert(k, v uint64) bool {
	for {
		if res, ok := sl.ExecuteTx([]Op{{Kind: OpInsert, Key: k, Val: v}}); ok {
			return res[0].Ok
		}
	}
}

// Remove is a convenience single-op transaction (retried until committed).
func (sl *SkipList) Remove(k uint64) (uint64, bool) {
	for {
		if res, ok := sl.ExecuteTx([]Op{{Kind: OpRemove, Key: k}}); ok {
			return res[0].Val, res[0].Ok
		}
	}
}

// Len counts logically present keys (diagnostic, quiesced use only).
func (sl *SkipList) Len() int {
	n := 0
	for c := sl.head.next[0].Load(); c != nil; c = c.next[0].Load() {
		if present, _ := interpret(c.info.Load(), nil); present {
			n++
		}
	}
	return n
}
