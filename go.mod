module medley

go 1.24
