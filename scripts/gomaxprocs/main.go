// Command gomaxprocs prints the Go runtime's effective GOMAXPROCS, which
// can differ from the host CPU count under a GOMAXPROCS env override or a
// container CPU quota. scripts/bench.sh records it next to host_cpus so a
// benchmark JSON says how much parallelism the runtime actually had.
package main

import (
	"fmt"
	"runtime"
)

func main() { fmt.Println(runtime.GOMAXPROCS(0)) }
