#!/usr/bin/env bash
# bench.sh — run the txengine hot-path microbenchmark suite and emit a
# machine-readable JSON result file (default BENCH_8.json at the repo
# root), establishing the repository's perf trajectory across PRs.
#
# Usage:
#   scripts/bench.sh [out.json]
#   BENCHTIME=2s COUNT=3 scripts/bench.sh        # longer, repeated runs
#   SERVECONNS=256 SERVEDUR=1s scripts/bench.sh  # smaller serving A/B
#
# The suite lives in internal/txengine/: the sharded-runtime hot paths
# (key routing, single-shard commit fast path, cross-shard commit via
# discovery vs hints vs the NoLatch control, latch table, footprint cache)
# plus the PR 7 OCC-read vs snapshot-read pair (BenchmarkReadMostly*): the
# same 95/5 mix with read probes as validated OCC read-only transactions vs
# validation-free MVCC snapshot reads. The JSON also records a cache
# workload A/B at -readpct 95 — OCC control vs -snapshot — with the stats
# that certify snapshot reads never abort or restart.
#
# PR 8 adds the end-to-end serving A/B: txserver on medley-sharded sh4,
# txload at SERVECONNS connections (default 1024), three rows — pipeline 1
# with batching off, pipeline 8 with batching off, pipeline 8 with batching
# on — so the JSON pins both the pipelining win and the batch scheduler's
# win at equal-or-better tail latency. Each row's server is drained with
# SIGTERM and must exit clean.
#
# PR 9 adds the serving-layer microbenchmarks (internal/server: wire
# encode/decode alloc counts and loopback Get round-trips, lane on vs off)
# and the read-lane serving A/B: the same conns/pipeline at -readpct 90 and
# 99, read lane on vs -noreadlane, so the JSON pins the snapshot fast
# lane's throughput win and shows the write path's tail is not regressed.
#
# Committed BENCH_N.json files for earlier PRs are history, not scratch
# space: writing over one would silently rewrite the perf trajectory, so the
# script refuses unless the target is this PR's own file or an uncommitted
# path.
set -euo pipefail
cd "$(dirname "$0")/.."

pr=9
out="${1:-BENCH_${pr}.json}"
benchtime="${BENCHTIME:-0.5s}"
count="${COUNT:-1}"
abdur="${ABDUR:-1s}"
serveconns="${SERVECONNS:-1024}"
servedur="${SERVEDUR:-2s}"
servewarm="${SERVEWARM:-500ms}"
serveaddr="${SERVEADDR:-127.0.0.1:7461}"

# Refuse to clobber a committed BENCH_N.json belonging to an earlier PR.
if [[ "$(basename "$out")" =~ ^BENCH_([0-9]+)\.json$ ]]; then
  n="${BASH_REMATCH[1]}"
  if [ "$n" -lt "$pr" ] && git ls-files --error-unmatch "$out" >/dev/null 2>&1; then
    echo "refusing to overwrite committed $out (PR $n history; this is PR $pr)" >&2
    exit 1
  fi
fi

raw="$(mktemp)"
bindir="$(mktemp -d)"
trap 'rm -f "$raw" "$raw.results" "$raw.ab" "$raw.serve" "$raw.readab" "$raw.srvlog"; rm -rf "$bindir"' EXIT

go test -run '^$' -bench '.' -benchmem -benchtime "$benchtime" -count "$count" \
  ./internal/txengine/ ./internal/server/ | tee "$raw"

awk '
  /^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    printf "%s    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s}", sep, name, $2, $3, $5, $7
    sep = ",\n"
  }
  END {
    if (sep == "") { print "no benchmark lines parsed" > "/dev/stderr"; exit 1 }
  }
' "$raw" > "$raw.results"

# Cache workload A/B: the same read-mostly mix through OCC read-only
# transactions and through MVCC snapshot reads. Row columns (no -lat):
# 1 system, 2 threads, 3 txn/s, 4 commits, 5 aborts, 6 retries, ...,
# 13 snapread, 14 snapstale.
run_cache() { # $1 = extra flags, $2 = mode label
  go run ./cmd/medleybench -workload cache -systems medley-sharded -shards 4 \
    -threads 4 -dur "$abdur" -scale 0.05 -readpct 95 $1 |
  awk -v mode="$2" '
    $2 ~ /^[0-9]+$/ && $1 != "system" {
      printf "    {\"mode\": \"%s\", \"system\": \"%s\", \"threads\": %s, \"txn_per_s\": %s, \"commits\": %s, \"aborts\": %s, \"retries\": %s, \"snapshot_reads\": %s, \"snapshot_stale\": %s}", mode, $1, $2, $3, $4, $5, $6, $13, $14
      exit
    }'
}

echo "# cache A/B (readpct 95, medley-sharded sh4): OCC control vs -snapshot"
{
  run_cache "" occ; echo ','
  run_cache "-snapshot" snapshot; echo
} > "$raw.ab"

# Serving A/B: end-to-end throughput and tail latency through txserver at
# $serveconns concurrent connections. One row per (pipeline, batching)
# configuration; each row gets a fresh server, a SIGTERM drain, and a
# clean-exit check.
go build -o "$bindir/txserver" ./cmd/txserver
go build -o "$bindir/txload" ./cmd/txload
run_serve() { # $1 = mode label, $2 = server -batch, $3 = txload -pipeline,
              # $4 = extra txserver flags, $5 = extra txload flags
  "$bindir/txserver" -addr "$serveaddr" -shards 4 -batch "$2" ${4:-} > "$raw.srvlog" 2>&1 &
  local srvpid=$!
  "$bindir/txload" -addr "$serveaddr" -conns "$serveconns" -pipeline "$3" \
    -dur "$servedur" -warmup "$servewarm" -lat -json ${5:-} |
    sed "s/^{/{\"mode\": \"$1\", /" | tr -d '\n'
  kill -TERM "$srvpid"
  wait "$srvpid"
  if ! grep -q "drained clean" "$raw.srvlog"; then
    echo "txserver ($1) did not drain clean:" >&2
    cat "$raw.srvlog" >&2
    exit 1
  fi
}

echo "# serving A/B (txserver medley-sharded sh4, $serveconns conns): pipelining and batching on vs off"
{
  echo -n '    '; run_serve p1_nobatch 1 1; echo ','
  echo -n '    '; run_serve p8_nobatch 1 8; echo ','
  echo -n '    '; run_serve p8_batch 0 8; echo
} > "$raw.serve"
sed 's/^    //' "$raw.serve"

# Read-lane serving A/B: identical conns/pipeline, snapshot read lane on vs
# -noreadlane, at a read-mostly mix (readpct 90) and a read-dominated one
# (readpct 99). The lane rows must beat their control on req/s; the 90/10
# rows also carry the write path, whose p99 must not regress.
echo "# serving read A/B (txserver medley-sharded sh4, $serveconns conns, pipeline 8): read lane vs -noreadlane"
{
  echo -n '    '; run_serve r90_lane   0 8 ""           "-readpct 90"; echo ','
  echo -n '    '; run_serve r90_nolane 0 8 -noreadlane  "-readpct 90"; echo ','
  echo -n '    '; run_serve r99_lane   0 8 ""           "-readpct 99"; echo ','
  echo -n '    '; run_serve r99_nolane 0 8 -noreadlane  "-readpct 99"; echo
} > "$raw.readab"
sed 's/^    //' "$raw.readab"

{
  echo '{'
  echo '  "suite": "txengine + serving hot-path microbenchmarks + OCC-vs-snapshot read pair + end-to-end serving A/Bs (pipelining/batching, read lane)",'
  echo "  \"pr\": $pr,"
  echo "  \"go\": \"$(go env GOVERSION)\","
  echo "  \"host_cpus\": $(getconf _NPROCESSORS_ONLN),"
  echo "  \"gomaxprocs\": $(go run ./scripts/gomaxprocs 2>/dev/null || getconf _NPROCESSORS_ONLN),"
  echo "  \"benchtime\": \"$benchtime\","
  echo "  \"count\": $count,"
  cpu="$(awk '/^cpu:/ { sub(/^cpu: */, ""); print; exit }' "$raw")"
  echo "  \"cpu\": \"${cpu}\","
  echo '  "results": ['
  cat "$raw.results"; echo
  echo '  ],'
  echo '  "snapshot_cache_ab": ['
  cat "$raw.ab"
  echo '  ],'
  echo '  "serving_ab": ['
  cat "$raw.serve"
  echo '  ],'
  echo '  "serving_read_ab": ['
  cat "$raw.readab"
  echo '  ]'
  echo '}'
} > "$out"

echo "wrote $out"
