#!/usr/bin/env bash
# bench.sh — run the sharded-runtime hot-path microbenchmark suite and emit
# a machine-readable JSON result file (default BENCH_6.json at the repo
# root), establishing the repository's perf trajectory across PRs.
#
# Usage:
#   scripts/bench.sh [out.json]
#   BENCHTIME=2s COUNT=3 scripts/bench.sh    # longer, repeated runs
#
# The suite lives in internal/txengine/sharded_bench_test.go: key routing,
# single-shard commit fast path, cross-shard commit via discovery vs hints
# (latched) vs the NoLatch shard-locked control, the latch table's
# uncontended and contended paths, and the footprint cache's hit and miss
# paths.
#
# Committed BENCH_N.json files for earlier PRs are history, not scratch
# space: writing over one would silently rewrite the perf trajectory, so the
# script refuses unless the target is this PR's own file or an uncommitted
# path.
set -euo pipefail
cd "$(dirname "$0")/.."

pr=6
out="${1:-BENCH_${pr}.json}"
benchtime="${BENCHTIME:-0.5s}"
count="${COUNT:-1}"

# Refuse to clobber a committed BENCH_N.json belonging to an earlier PR.
if [[ "$(basename "$out")" =~ ^BENCH_([0-9]+)\.json$ ]]; then
  n="${BASH_REMATCH[1]}"
  if [ "$n" -lt "$pr" ] && git ls-files --error-unmatch "$out" >/dev/null 2>&1; then
    echo "refusing to overwrite committed $out (PR $n history; this is PR $pr)" >&2
    exit 1
  fi
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench '.' -benchmem -benchtime "$benchtime" -count "$count" \
  ./internal/txengine/ | tee "$raw"

awk '
  /^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    printf "%s    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s}", sep, name, $2, $3, $5, $7
    sep = ",\n"
  }
  END {
    if (sep == "") { print "no benchmark lines parsed" > "/dev/stderr"; exit 1 }
  }
' "$raw" > "$raw.results"

{
  echo '{'
  echo '  "suite": "internal/txengine sharded-runtime hot-path microbenchmarks",'
  echo "  \"pr\": $pr,"
  echo "  \"go\": \"$(go env GOVERSION)\","
  echo "  \"host_cpus\": $(getconf _NPROCESSORS_ONLN),"
  echo "  \"gomaxprocs\": $(go run ./scripts/gomaxprocs 2>/dev/null || getconf _NPROCESSORS_ONLN),"
  echo "  \"benchtime\": \"$benchtime\","
  echo "  \"count\": $count,"
  cpu="$(awk '/^cpu:/ { sub(/^cpu: */, ""); print; exit }' "$raw")"
  echo "  \"cpu\": \"${cpu}\","
  echo '  "results": ['
  cat "$raw.results"; echo
  echo '  ]'
  echo '}'
} > "$out"
rm -f "$raw.results"

echo "wrote $out"
