#!/usr/bin/env bash
# bench.sh — run the sharded-runtime hot-path microbenchmark suite and emit
# a machine-readable JSON result file (default BENCH_5.json at the repo
# root), establishing the repository's perf trajectory across PRs.
#
# Usage:
#   scripts/bench.sh [out.json]
#   BENCHTIME=2s COUNT=3 scripts/bench.sh    # longer, repeated runs
#
# The suite lives in internal/txengine/sharded_bench_test.go: key routing,
# single-shard commit fast path, cross-shard commit via discovery vs hints,
# and the footprint cache's hit and miss paths.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_5.json}"
benchtime="${BENCHTIME:-0.5s}"
count="${COUNT:-1}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench '.' -benchmem -benchtime "$benchtime" -count "$count" \
  ./internal/txengine/ | tee "$raw"

awk '
  /^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    printf "%s    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s}", sep, name, $2, $3, $5, $7
    sep = ",\n"
  }
  END {
    if (sep == "") { print "no benchmark lines parsed" > "/dev/stderr"; exit 1 }
  }
' "$raw" > "$raw.results"

{
  echo '{'
  echo '  "suite": "internal/txengine sharded-runtime hot-path microbenchmarks",'
  echo '  "pr": 5,'
  echo "  \"go\": \"$(go env GOVERSION)\","
  echo "  \"host_cpus\": $(getconf _NPROCESSORS_ONLN),"
  echo "  \"benchtime\": \"$benchtime\","
  echo "  \"count\": $count,"
  cpu="$(awk '/^cpu:/ { sub(/^cpu: */, ""); print; exit }' "$raw")"
  echo "  \"cpu\": \"${cpu}\","
  echo '  "results": ['
  cat "$raw.results"; echo
  echo '  ]'
  echo '}'
} > "$out"
rm -f "$raw.results"

echo "wrote $out"
