// Benchmark entry points: one testing.B target per figure of the paper's
// evaluation (Section 6), plus overhead and ablation micro-benches. Each
// figure's series can also be produced with cmd/medleybench and
// cmd/tpccbench, which print paper-style tables over full thread sweeps;
// these benches measure per-transaction cost at GOMAXPROCS parallelism.
//
// Run: go test -bench=. -benchmem
package medley_test

import (
	"math/rand/v2"
	"sync/atomic"
	"testing"
	"time"

	"medley/internal/bench"
	"medley/internal/core"
	"medley/internal/pnvm"
	"medley/internal/tpcc"
	"medley/internal/txengine"
)

// benchScale keeps preloads fast; cmd/medleybench runs paper scale.
const benchScale = 0.01

var ratios = []struct {
	name    string
	g, i, r int
}{
	{"0:1:1", 0, 1, 1},
	{"2:1:1", 2, 1, 1},
	{"18:1:1", 18, 1, 1},
}

func mkSystem(b *testing.B, engine string, kind txengine.MapKind, wl bench.Workload, opt bench.Options) bench.System {
	b.Helper()
	sys, err := bench.NewSystem(engine, kind, wl, opt)
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

func runSystem(b *testing.B, sys bench.System, wl bench.Workload) {
	b.Helper()
	defer sys.Close()
	sys.Preload(wl)
	var tid atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := sys.NewWorker(int(tid.Add(1)))
		rng := rand.New(rand.NewPCG(uint64(tid.Load()), 99))
		buf := make([]bench.Op, 0, wl.MaxOps)
		for pb.Next() {
			ops := wl.GenTx(rng, buf)
			w.RunTx(ops)
		}
	})
}

func runSystemNoTx(b *testing.B, sys bench.System, wl bench.Workload) {
	b.Helper()
	defer sys.Close()
	sys.Preload(wl)
	var tid atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := sys.NewWorker(int(tid.Add(1)))
		rng := rand.New(rand.NewPCG(uint64(tid.Load()), 99))
		buf := make([]bench.Op, 0, wl.MaxOps)
		for pb.Next() {
			ops := wl.GenTx(rng, buf)
			w.RunOpsNoTx(ops)
		}
	})
}

// BenchmarkFig7 reproduces Figure 7: transactional hash-table throughput.
func BenchmarkFig7(b *testing.B) {
	lat := pnvm.DefaultLatencies()
	for _, r := range ratios {
		wl := bench.PaperWorkload(r.g, r.i, r.r, benchScale)
		opt := bench.Options{Latencies: lat, EpochLen: 10 * time.Millisecond}
		for _, name := range bench.TxSystemsFor(txengine.KindHash) {
			b.Run(name+"/"+r.name, func(b *testing.B) {
				runSystem(b, mkSystem(b, name, txengine.KindHash, wl, opt), wl)
			})
		}
	}
}

// BenchmarkFig8 reproduces Figure 8: transactional skiplist throughput.
func BenchmarkFig8(b *testing.B) {
	lat := pnvm.DefaultLatencies()
	for _, r := range ratios {
		wl := bench.PaperWorkload(r.g, r.i, r.r, benchScale)
		opt := bench.Options{Latencies: lat, EpochLen: 10 * time.Millisecond}
		for _, name := range bench.TxSystemsFor(txengine.KindSkip) {
			b.Run(name+"/"+r.name, func(b *testing.B) {
				runSystem(b, mkSystem(b, name, txengine.KindSkip, wl, opt), wl)
			})
		}
	}
}

// BenchmarkFig9 reproduces Figure 9: TPC-C (newOrder:payment 1:1) over
// skiplist tables.
func BenchmarkFig9(b *testing.B) {
	lat := pnvm.DefaultLatencies()
	cfg := tpcc.DefaultConfig(2)
	opt := tpcc.StoreOptions{Latencies: lat, EpochLen: 10 * time.Millisecond}
	for _, name := range tpcc.DefaultEngines() {
		b.Run(name, func(b *testing.B) {
			st, err := tpcc.NewStore(name, opt)
			if err != nil {
				b.Fatal(err)
			}
			tpcc.Load(st, cfg)
			var tid atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				id := int(tid.Add(1))
				w := st.NewWorker(id)
				rng := rand.New(rand.NewPCG(uint64(id), 3))
				var seq uint64
				for pb.Next() {
					if rng.IntN(2) == 0 {
						_ = w.RunTx(func(h tpcc.Handle) error { return tpcc.NewOrder(h, cfg, rng, id) })
					} else {
						_ = w.RunTx(func(h tpcc.Handle) error { return tpcc.Payment(h, cfg, rng, id, &seq) })
					}
				}
			})
			b.StopTimer()
			st.Close()
		})
	}
}

// BenchmarkFig10a reproduces Figure 10(a): skiplist latency on DRAM —
// Original vs TxOff (transform, no transactions) vs TxOn.
func BenchmarkFig10a(b *testing.B) {
	for _, r := range ratios {
		wl := bench.PaperWorkload(r.g, r.i, r.r, benchScale)
		b.Run("Original/"+r.name, func(b *testing.B) {
			runSystemNoTx(b, mkSystem(b, "original", txengine.KindSkip, wl, bench.Options{}), wl)
		})
		b.Run("TxOff/"+r.name, func(b *testing.B) {
			runSystemNoTx(b, mkSystem(b, "medley", txengine.KindSkip, wl, bench.Options{}), wl)
		})
		b.Run("TxOn/"+r.name, func(b *testing.B) {
			runSystem(b, mkSystem(b, "medley", txengine.KindSkip, wl, bench.Options{}), wl)
		})
	}
}

// BenchmarkFig10b reproduces Figure 10(b): payloads on (simulated) NVM,
// persistence off — isolates the NVM write bottleneck.
func BenchmarkFig10b(b *testing.B) {
	lat := pnvm.Latencies{Write: pnvm.DefaultLatencies().Write}
	for _, r := range ratios {
		wl := bench.PaperWorkload(r.g, r.i, r.r, benchScale)
		opt := bench.Options{Latencies: lat, EpochLen: time.Hour}
		b.Run("TxOff/"+r.name, func(b *testing.B) {
			runSystemNoTx(b, mkSystem(b, "txmontage", txengine.KindSkip, wl, opt), wl)
		})
		b.Run("TxOn/"+r.name, func(b *testing.B) {
			runSystem(b, mkSystem(b, "txmontage", txengine.KindSkip, wl, opt), wl)
		})
	}
}

// BenchmarkFig10c reproduces Figure 10(c): full txMontage persistence.
func BenchmarkFig10c(b *testing.B) {
	lat := pnvm.DefaultLatencies()
	for _, r := range ratios {
		wl := bench.PaperWorkload(r.g, r.i, r.r, benchScale)
		opt := bench.Options{Latencies: lat, EpochLen: 10 * time.Millisecond}
		b.Run("TxOff/"+r.name, func(b *testing.B) {
			runSystemNoTx(b, mkSystem(b, "txmontage", txengine.KindSkip, wl, opt), wl)
		})
		b.Run("TxOn/"+r.name, func(b *testing.B) {
			runSystem(b, mkSystem(b, "txmontage", txengine.KindSkip, wl, opt), wl)
		})
	}
}

// BenchmarkOverheadSingleOp measures the §6.3 headline another way: the
// marginal cost of one map operation Original → TxOff → TxOn(1-op tx).
func BenchmarkOverheadSingleOp(b *testing.B) {
	wl := bench.PaperWorkload(1, 1, 1, benchScale)
	wl.MinOps, wl.MaxOps = 1, 1
	b.Run("Original", func(b *testing.B) {
		runSystemNoTx(b, mkSystem(b, "original", txengine.KindSkip, wl, bench.Options{}), wl)
	})
	b.Run("TxOff", func(b *testing.B) {
		runSystemNoTx(b, mkSystem(b, "medley", txengine.KindSkip, wl, bench.Options{}), wl)
	})
	b.Run("TxOn", func(b *testing.B) {
		runSystem(b, mkSystem(b, "medley", txengine.KindSkip, wl, bench.Options{}), wl)
	})
}

// --------------------------------------------------------------- ablation --

// BenchmarkAblationCASObj isolates the cost of the GC-safe CASObj cell
// encoding versus a bare CAS-loop counter — the constant-factor price this
// port pays in place of the paper's 128-bit CAS (see EXPERIMENTS.md).
func BenchmarkAblationCASObj(b *testing.B) {
	b.Run("CASObj", func(b *testing.B) {
		var o core.CASObj[uint64]
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				for {
					v := o.Load()
					if o.CAS(v, v+1) {
						break
					}
				}
			}
		})
	})
	b.Run("BareAtomic", func(b *testing.B) {
		var o atomic.Uint64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				for {
					v := o.Load()
					if o.CompareAndSwap(v, v+1) {
						break
					}
				}
			}
		})
	})
}

// BenchmarkAblationCommitPath measures the fixed cost of an N-word Medley
// transaction (descriptor allocation, install, validate, commit, sweep).
func BenchmarkAblationCommitPath(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "1word", 2: "2words", 4: "4words", 8: "8words"}[n], func(b *testing.B) {
			mgr := core.NewTxManager()
			words := make([]core.CASObj[uint64], n)
			b.RunParallel(func(pb *testing.PB) {
				s := mgr.Session()
				for pb.Next() {
					_ = s.Run(func() error {
						for i := range words {
							v, tag := words[i].NbtcLoad(s)
							s.AddToReadSet(&words[i], tag)
							if !words[i].NbtcCAS(s, v, v+1, true, true) {
								return core.ErrTxAborted
							}
						}
						return nil
					})
				}
			})
		})
	}
}

// BenchmarkAblationReadSetValidation measures commit cost as read sets grow
// (read-only transactions; invisible readers pay only at validation).
func BenchmarkAblationReadSetValidation(b *testing.B) {
	for _, n := range []int{1, 8, 32, 128} {
		name := map[int]string{1: "1read", 8: "8reads", 32: "32reads", 128: "128reads"}[n]
		b.Run(name, func(b *testing.B) {
			mgr := core.NewTxManager()
			words := make([]core.CASObj[uint64], n)
			b.RunParallel(func(pb *testing.PB) {
				s := mgr.Session()
				for pb.Next() {
					_ = s.Run(func() error {
						for i := range words {
							_, tag := words[i].NbtcLoad(s)
							s.AddToReadSet(&words[i], tag)
						}
						return nil
					})
				}
			})
		})
	}
}
