package medley_test

import (
	"fmt"

	"medley"
)

// Example demonstrates atomic composition of operations on two independent
// nonblocking structures — the paper's core use case.
func Example() {
	mgr := medley.NewTxManager()
	accounts := medley.NewHashMap[int](1024)
	audit := medley.NewSkipListMap[uint64, int]()

	s := mgr.Session()
	accounts.Put(s, 42, 100)

	err := s.Run(func() error {
		v, _ := accounts.Get(s, 42)
		accounts.Put(s, 42, v-30)
		audit.Put(s, 1, 30) // audit record commits with the debit, or not at all
		return nil
	})
	if err != nil {
		panic(err)
	}

	v, _ := accounts.Get(s, 42)
	a, _ := audit.Get(s, 1)
	fmt.Println(v, a)
	// Output: 70 30
}

// ExampleSession_Run shows conflict-retry versus business-abort semantics.
func ExampleSession_Run() {
	mgr := medley.NewTxManager()
	m := medley.NewHashMap[int](64)
	s := mgr.Session()
	m.Put(s, 1, 5)

	errNotEnough := fmt.Errorf("not enough")
	err := s.Run(func() error {
		v, _ := m.Get(s, 1)
		if v < 10 {
			if verr := s.ValidateReads(); verr != nil {
				return verr // stale read: Run retries
			}
			s.TxAbort()
			return errNotEnough // genuine shortfall: no retry
		}
		m.Put(s, 1, v-10)
		return nil
	})
	fmt.Println(err == errNotEnough)
	// Output: true
}

// ExampleNewQueue shows transactional composition across abstraction
// families: a queue operation and a map operation commit together.
func ExampleNewQueue() {
	mgr := medley.NewTxManager()
	q := medley.NewQueue[string]()
	seen := medley.NewHashMap[bool](64)

	s := mgr.Session()
	_ = s.Run(func() error {
		q.Enqueue(s, "job-7")
		seen.Put(s, 7, true)
		return nil
	})

	job, _ := q.Dequeue(s)
	ok, _ := seen.Get(s, 7)
	fmt.Println(job, ok)
	// Output: job-7 true
}
