// Quickstart: compose operations on two independent nonblocking hash tables
// into one atomic Medley transaction — the paper's Figure 3 scenario
// (transfer between accounts held in different structures), plus a
// concurrent stress that demonstrates the atomicity guarantee.
package main

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"medley"
)

var errInsufficient = errors.New("insufficient funds")

func main() {
	mgr := medley.NewTxManager()
	checking := medley.NewHashMap[uint64](1 << 12)
	savings := medley.NewHashMap[uint64](1 << 12)

	// Seed accounts (outside transactions: plain nonblocking operations).
	s := mgr.Session()
	const accounts = 64
	for a := uint64(0); a < accounts; a++ {
		checking.Put(s, a, 1000)
		savings.Put(s, a, 1000)
	}

	// transfer moves amount from src[a] to dst[b], atomically.
	transfer := func(s *medley.Session, src, dst medley.Map[uint64], a, b uint64, amount uint64) error {
		return s.Run(func() error {
			c, ok := src.Get(s, a)
			if !ok || c < amount {
				// Medley transactions are not opaque: a doomed transaction
				// can read stale state. Before acting on a business-logic
				// condition, validate the reads (paper §3.1); if they are
				// stale the transaction retries instead of reporting a
				// spurious failure.
				if err := s.ValidateReads(); err != nil {
					return err // conflict: Run retries
				}
				s.TxAbort()
				return errInsufficient // business abort: Run does not retry
			}
			v, _ := dst.Get(s, b)
			src.Put(s, a, c-amount)
			dst.Put(s, b, v+amount)
			return nil
		})
	}

	if err := transfer(s, checking, savings, 1, 2, 250); err != nil {
		panic(err)
	}
	c1, _ := checking.Get(s, 1)
	s2, _ := savings.Get(s, 2)
	fmt.Printf("after transfer: checking[1]=%d savings[2]=%d\n", c1, s2)

	if err := transfer(s, checking, savings, 1, 2, 1_000_000); !errors.Is(err, errInsufficient) {
		panic("overdraft was not rejected")
	}
	fmt.Println("overdraft rejected atomically (no partial update)")

	// Hammer the tables from 8 goroutines; the combined balance is
	// invariant because every transfer commits atomically or not at all.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			ws := mgr.Session() // one session per goroutine
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				a := uint64(rng.Intn(accounts))
				b := uint64(rng.Intn(accounts))
				if i%2 == 0 {
					_ = transfer(ws, checking, savings, a, b, uint64(rng.Intn(20)))
				} else {
					_ = transfer(ws, savings, checking, a, b, uint64(rng.Intn(20)))
				}
			}
		}(int64(w))
	}
	wg.Wait()

	total := uint64(0)
	for a := uint64(0); a < accounts; a++ {
		c, _ := checking.Get(s, a)
		v, _ := savings.Get(s, a)
		total += c + v
	}
	fmt.Printf("after 40k concurrent transfers: total balance = %d (want %d)\n",
		total, uint64(accounts*2000))
	st := mgr.Stats()
	fmt.Printf("transactions: %d committed, %d aborted (conflicts retried)\n",
		st.Commits, st.Aborts)
}
