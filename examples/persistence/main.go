// Persistence example: txMontage in action. Medley transactions over
// persistent maps gain failure atomicity and durability from the epoch
// system "almost for free" (paper Section 4.4): the transaction's epoch is
// validated inside MCNS commit, and payload batches persist at epoch
// boundaries, off the critical path.
package main

import (
	"fmt"
	"sync"
	"time"

	"medley/internal/core"
	"medley/internal/montage"
	"medley/internal/pnvm"
)

func main() {
	dev := pnvm.NewDefault()
	es := montage.NewEpochSys(dev)
	mgr := core.NewTxManager()
	montage.Attach(mgr, es) // ← this one call turns Medley into txMontage
	es.Start(5 * time.Millisecond)

	inventory := montage.NewHashMap(es, montage.Uint64Codec(), 4096)
	ledger := montage.NewSkipMap(es, montage.Uint64Codec())

	// Concurrent sales: each transaction decrements stock and appends to
	// the ledger — atomically, durably (within the epoch window).
	var wg sync.WaitGroup
	const items = 32
	s0 := mgr.Session()
	for i := uint64(0); i < items; i++ {
		inventory.Put(s0, i, 100)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := mgr.Session()
			for i := 0; i < 200; i++ {
				item := uint64((w*200 + i) % items)
				saleID := uint64(w+1)<<32 | uint64(i) // disjoint from item keys
				_ = s.Run(func() error {
					q, ok := inventory.Get(s, item)
					if !ok || q == 0 {
						return nil
					}
					inventory.Put(s, item, q-1)
					ledger.Put(s, saleID, item)
					return nil
				})
			}
		}(w)
	}
	wg.Wait()
	es.Stop()
	es.Sync() // push everything over an epoch boundary
	fmt.Println("sold items across 4 goroutines; synced to simulated NVM")

	sold := uint64(0)
	for i := uint64(0); i < items; i++ {
		q, _ := inventory.Get(s0, i)
		sold += 100 - q
	}
	fmt.Printf("inventory says %d units sold\n", sold)

	// Crash and recover. The recovered payload set must reflect whole
	// transactions only: units missing from inventory == ledger entries.
	dev.Crash()
	recs := dev.Recover()
	live := montage.LiveRecords(recs)
	fmt.Printf("crash: %d live payloads recovered\n", len(live))

	// Payload keys < items are inventory rows; the rest are ledger rows.
	var invUnits, ledgerEntries uint64
	dec := montage.Uint64Codec().Dec
	for _, r := range live {
		if r.Key < items {
			invUnits += dec(r.Val)
		} else {
			ledgerEntries++
		}
	}
	fmt.Printf("recovered state: %d units remaining + %d ledger entries = %d (want %d)\n",
		invUnits, ledgerEntries, invUnits+ledgerEntries, uint64(items*100))
	if invUnits+ledgerEntries != items*100 {
		panic("recovered state is not transaction-consistent")
	}
	fmt.Println("recovered cut is failure-atomic: no sale was half-recovered")

	w, wb, f := dev.Stats()
	fmt.Printf("device: %d NVM writes, %d write-backs, %d fences (batched off critical path)\n", w, wb, f)
}
