// TPC-C example: run the paper's Figure 9 workload (newOrder + payment,
// 1:1) over Medley skiplist tables for a few seconds and verify the
// database-level invariants that only hold if transactions are atomic.
package main

import (
	"fmt"
	"runtime"
	"time"

	"medley/internal/tpcc"
)

func main() {
	cfg := tpcc.DefaultConfig(2)
	st, err := tpcc.NewStore("medley", tpcc.StoreOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("loading %d warehouses...\n", cfg.Warehouses)
	tpcc.Load(st, cfg)

	threads := runtime.GOMAXPROCS(0)
	fmt.Printf("running newOrder:payment 1:1 on %d threads for 2s...\n", threads)
	res := tpcc.Run(st, cfg, threads, 2*time.Second)
	fmt.Printf("%s: %d transactions, %.0f txn/s\n", res.System, res.Txns, res.Throughput)

	// Invariant 1: warehouse YTD equals the sum of its districts' YTD
	// (payment updates both atomically).
	// Invariant 2: order ids are dense — every id below NextOID exists
	// (newOrder reads and bumps NextOID and inserts the order atomically).
	w := st.NewWorker(0)
	err = w.RunTx(func(h tpcc.Handle) error {
		for wh := 0; wh < cfg.Warehouses; wh++ {
			wv, _ := h.Get(tpcc.TWarehouse, tpcc.WKey(wh))
			var dsum uint64
			var orders uint64
			for d := 0; d < cfg.DistPerWh; d++ {
				dv, _ := h.Get(tpcc.TDistrict, tpcc.DKey(wh, d))
				dist := dv.(*tpcc.District)
				dsum += dist.YTD
				for oid := uint64(1); oid < dist.NextOID; oid++ {
					if _, ok := h.Get(tpcc.TOrder, tpcc.OKey(wh, d, oid)); !ok {
						return fmt.Errorf("w%d d%d: order %d missing", wh, d, oid)
					}
					orders++
				}
			}
			ytd := wv.(*tpcc.Warehouse).YTD
			if ytd != dsum {
				return fmt.Errorf("w%d: warehouse YTD %d != district sum %d", wh, ytd, dsum)
			}
			fmt.Printf("warehouse %d: YTD %d == Σ district YTD ✓; %d orders dense ✓\n", wh, ytd, orders)
		}
		return nil
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("all TPC-C atomicity invariants hold")
}
