// Package examples holds runnable demonstration programs; this smoke test
// builds and runs each one (go test ./examples), so a refactor that breaks
// an example — or an example whose printed invariants stop holding — fails
// CI rather than rotting silently. Skipped under -short: the examples run
// real (seconds-long) workloads.
package examples

import (
	"context"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// runs lists each example package with the final line its main must reach
// (all examples panic on invariant violations, so reaching the last print
// means the demonstrated property held).
var runs = []struct {
	name   string
	args   []string
	expect string
}{
	{"quickstart", nil, ""},
	{"persistence", nil, ""},
	{"workqueue", nil, "composition held"},
	{"workqueue-original", []string{"-engine", "original"}, "best-effort"},
	{"tpcc", nil, "invariants hold"},
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples run seconds-long workloads")
	}
	for _, r := range runs {
		r := r
		t.Run(r.name, func(t *testing.T) {
			dir := strings.SplitN(r.name, "-", 2)[0]
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, "go", append([]string{"run", "./examples/" + dir}, r.args...)...)
			cmd.Dir = ".." // module root
			cmd.Env = os.Environ()
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./examples/%s: %v\n%s", dir, err, out)
			}
			if r.expect != "" && !strings.Contains(string(out), r.expect) {
				t.Fatalf("output of %s missing %q:\n%s", r.name, r.expect, out)
			}
		})
	}
}
