// Workqueue: transactional composition across *different abstractions* — a
// FIFO queue of pending jobs and a map of job states. Each worker
// atomically dequeues a job and marks it claimed; a crash of any
// individual step cannot strand or duplicate a job. This is exactly the
// composition pattern the paper argues boosting and LFTT cannot express
// (queues have no inverse operations and no critical "key" nodes).
//
// The backend is resolved by name through the internal/txengine registry
// (-engine; default medley), so any queue-capable engine runs the same
// program: txMontage demonstrates it over the persistent maps, and
// -engine original runs the untransformed baseline, whose dequeue-and-
// claim pairs are *not* atomic — rerun it a few times and watch the
// claimed-before-registered count.
package main

import (
	"flag"
	"fmt"
	"sync"

	"medley/internal/txengine"
)

func main() {
	engine := flag.String("engine", "medley", "queue-capable engine (see medleybench -list)")
	flag.Parse()

	b, ok := txengine.Lookup(*engine)
	if !ok {
		panic(fmt.Sprintf("unknown engine %q", *engine))
	}
	if !b.Caps.Has(txengine.CapQueue) {
		panic(fmt.Sprintf("engine %q has no transactional queue (the paper's point: boosting and LFTT cannot express one)", *engine))
	}
	transactional := b.Caps.Has(txengine.CapTx | txengine.CapDynamicTx)
	eng, err := b.New(txengine.Config{})
	if err != nil {
		panic(err)
	}
	defer eng.Close()

	pending, err := eng.NewUintQueue()
	if err != nil {
		panic(err)
	}
	kind := txengine.KindHash
	if !b.Caps.Has(txengine.CapHashMap) {
		kind = txengine.KindSkip
	}
	states, err := eng.NewUintMap(txengine.MapSpec{Kind: kind, Buckets: 1 << 10})
	if err != nil {
		panic(err)
	}
	const unclaimed = uint64(0)

	// Producer: enqueue job and register its state in one transaction.
	s := eng.NewWorker(0)
	const jobs = 2000
	for j := uint64(1); j <= jobs; j++ {
		j := j
		enq := func() {
			pending.Enqueue(s, j)
			states.Put(s, j, unclaimed)
		}
		if transactional {
			if err := s.Run(func() error { enq(); return nil }); err != nil {
				panic(err)
			}
		} else {
			s.NoTx(enq)
		}
	}
	fmt.Printf("enqueued %d jobs on %s\n", jobs, eng.Name())

	// Workers: atomically (dequeue job, mark claimed). If the transaction
	// aborts, the job stays queued and unclaimed — all or nothing. A torn
	// observation (dequeued job whose registration is not visible, or
	// already claimed) is recorded via a captured flag, NOT an error: a
	// doomed attempt may legally see inconsistent state mid-transaction on
	// an optimistic engine, and returning an error would turn that retry
	// into a spurious business abort. Only the attempt that actually
	// commits — whose reads were validated — leaves its flag behind.
	var wg sync.WaitGroup
	const nworkers = 8
	claimed := make([][]uint64, nworkers)
	torn := make([]int, nworkers)
	for w := 0; w < nworkers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ws := eng.NewWorker(1 + id)
			for {
				var job uint64
				var got, sawTorn bool
				body := func() error {
					sawTorn = false
					j, ok := pending.Dequeue(ws)
					if !ok {
						got = false
						return nil
					}
					st, known := states.Get(ws, j)
					states.Put(ws, j, uint64(id)+1)
					job, got = j, true
					sawTorn = !known || st != unclaimed
					return nil
				}
				var err error
				if transactional {
					err = ws.Run(body)
				} else {
					ws.NoTx(func() { err = body() })
				}
				if err != nil {
					panic(err)
				}
				if !got {
					return
				}
				if sawTorn {
					torn[id]++
				}
				claimed[id] = append(claimed[id], job)
			}
		}(w)
	}
	wg.Wait()

	// Every job claimed exactly once.
	seen := map[uint64]int{}
	total, tornTotal := 0, 0
	for id := range claimed {
		total += len(claimed[id])
		tornTotal += torn[id]
		for _, j := range claimed[id] {
			seen[j]++
		}
	}
	dups := 0
	for _, n := range seen {
		if n > 1 {
			dups++
		}
	}
	fmt.Printf("claimed %d jobs across %d workers; duplicates=%d, lost=%d, claimed-before-registered=%d\n",
		total, nworkers, dups, jobs-len(seen), tornTotal)
	if transactional {
		if dups != 0 || total != jobs || tornTotal != 0 {
			panic("atomicity violated")
		}
		fmt.Println("queue+map composition held: every job claimed exactly once")
	} else {
		fmt.Println("(no transactions: the composition is best-effort on this engine)")
	}
}
