// Workqueue: transactional composition across *different abstractions* — a
// Michael & Scott queue of pending jobs and a hash map of job states. Each
// worker atomically dequeues a job and marks it claimed; a crash of any
// individual step cannot strand or duplicate a job. This is exactly the
// composition pattern the paper argues boosting and LFTT cannot express
// (queues have no inverse operations and no critical "key" nodes).
package main

import (
	"fmt"
	"sync"

	"medley"
	"medley/internal/core"
)

type jobState struct {
	claimedBy int
	done      bool
}

func main() {
	mgr := medley.NewTxManager()
	pending := medley.NewQueue[uint64]()
	states := medley.NewHashMap[*jobState](1 << 10)

	// Producer: enqueue job and register its state in one transaction.
	s := mgr.Session()
	const jobs = 2000
	for j := uint64(0); j < jobs; j++ {
		j := j
		err := s.Run(func() error {
			pending.Enqueue(s, j)
			states.Put(s, j, &jobState{})
			return nil
		})
		if err != nil {
			panic(err)
		}
	}
	fmt.Printf("enqueued %d jobs\n", jobs)

	// Workers: atomically (dequeue job, mark claimed). If the transaction
	// aborts, the job stays queued and unclaimed — all or nothing.
	var wg sync.WaitGroup
	claimed := make([][]uint64, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ws := mgr.Session()
			for {
				var job uint64
				var got bool
				err := ws.Run(func() error {
					j, ok := pending.Dequeue(ws)
					if !ok {
						got = false
						return nil
					}
					st, ok := states.Get(ws, j)
					if !ok || st.claimedBy != 0 {
						return core.ErrTxAborted // inconsistent: retry
					}
					states.Put(ws, j, &jobState{claimedBy: id + 1})
					job, got = j, true
					return nil
				})
				if err != nil || !got {
					return
				}
				claimed[id] = append(claimed[id], job)
			}
		}(w)
	}
	wg.Wait()

	// Every job claimed exactly once.
	seen := map[uint64]int{}
	total := 0
	for id := range claimed {
		total += len(claimed[id])
		for _, j := range claimed[id] {
			seen[j]++
		}
	}
	dups := 0
	for _, n := range seen {
		if n > 1 {
			dups++
		}
	}
	fmt.Printf("claimed %d jobs across 8 workers; duplicates=%d, lost=%d\n",
		total, dups, jobs-len(seen))
	if dups != 0 || total != jobs {
		panic("atomicity violated")
	}
	fmt.Println("queue+map composition held: every job claimed exactly once")
}
