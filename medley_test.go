package medley_test

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"medley"
	"medley/internal/core"
)

// The facade integration tests exercise cross-structure transactions over
// every public structure type, as a downstream user would.

func TestFacadeAllStructuresCompose(t *testing.T) {
	mgr := medley.NewTxManager()
	hm := medley.NewHashMap[uint64](256)
	sl := medley.NewSkipListMap[uint64, uint64]()
	rs := medley.NewRotatingSkipListMap[uint64]()
	bst := medley.NewBSTMap[uint64]()
	q := medley.NewQueue[uint64]()

	s := mgr.Session()
	// One transaction touching five different structures of four different
	// abstraction families.
	err := s.Run(func() error {
		hm.Put(s, 1, 100)
		sl.Put(s, 1, 200)
		rs.Put(s, 1, 300)
		bst.Put(s, 1, 400)
		q.Enqueue(s, 500)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		got  func() (uint64, bool)
		want uint64
	}{
		{"hash", func() (uint64, bool) { return hm.Get(s, 1) }, 100},
		{"skip", func() (uint64, bool) { return sl.Get(s, 1) }, 200},
		{"rot", func() (uint64, bool) { return rs.Get(s, 1) }, 300},
		{"bst", func() (uint64, bool) { return bst.Get(s, 1) }, 400},
		{"queue", func() (uint64, bool) { return q.Dequeue(s) }, 500},
	} {
		v, ok := tc.got()
		if !ok || v != tc.want {
			t.Fatalf("%s = %d,%v want %d", tc.name, v, ok, tc.want)
		}
	}
}

func TestFacadeAbortSpansAllStructures(t *testing.T) {
	mgr := medley.NewTxManager()
	hm := medley.NewHashMap[uint64](64)
	sl := medley.NewSkipListMap[uint64, uint64]()
	bst := medley.NewBSTMap[uint64]()
	q := medley.NewQueue[uint64]()
	s := mgr.Session()

	s.TxBegin()
	hm.Put(s, 1, 1)
	sl.Put(s, 2, 2)
	bst.Put(s, 3, 3)
	q.Enqueue(s, 4)
	s.TxAbort()

	if _, ok := hm.Get(s, 1); ok {
		t.Fatal("hash write survived abort")
	}
	if _, ok := sl.Get(s, 2); ok {
		t.Fatal("skip write survived abort")
	}
	if _, ok := bst.Get(s, 3); ok {
		t.Fatal("bst write survived abort")
	}
	if q.Len() != 0 {
		t.Fatal("enqueue survived abort")
	}
}

// Token ring across four different structure types: a token moves
// hash → skip → bst → queue → hash …; at every quiescent point exactly one
// structure holds it.
func TestFacadeTokenRingAtomicity(t *testing.T) {
	mgr := medley.NewTxManager()
	hm := medley.NewHashMap[uint64](64)
	sl := medley.NewSkipListMap[uint64, uint64]()
	bst := medley.NewBSTMap[uint64]()
	q := medley.NewQueue[uint64]()
	s0 := mgr.Session()
	hm.Put(s0, 7, 1) // token starts in the hash map

	step := func(s *medley.Session) {
		_ = s.Run(func() error {
			if v, ok := hm.Remove(s, 7); ok {
				sl.Put(s, 7, v)
				return nil
			}
			if v, ok := sl.Remove(s, 7); ok {
				bst.Put(s, 7, v)
				return nil
			}
			if v, ok := bst.Remove(s, 7); ok {
				q.Enqueue(s, v)
				return nil
			}
			if v, ok := q.Dequeue(s); ok {
				hm.Put(s, 7, v)
				return nil
			}
			// Token in flight in another transaction: retry.
			return core.ErrTxAborted
		})
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := mgr.Session()
			for i := 0; i < 200; i++ {
				step(s)
			}
		}()
	}
	wg.Wait()

	holders := 0
	if _, ok := hm.Get(s0, 7); ok {
		holders++
	}
	if _, ok := sl.Get(s0, 7); ok {
		holders++
	}
	if _, ok := bst.Get(s0, 7); ok {
		holders++
	}
	holders += q.Len()
	if holders != 1 {
		t.Fatalf("token held by %d structures, want exactly 1", holders)
	}
}

func TestFacadeOrderedHashMapCustomKeys(t *testing.T) {
	mgr := medley.NewTxManager()
	hm := medley.NewOrderedHashMap[string, int](64, func(s string) uint64 {
		var h uint64 = 1469598103934665603
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
		return h
	})
	s := mgr.Session()
	hm.Put(s, "alice", 1)
	hm.Put(s, "bob", 2)
	err := s.Run(func() error {
		a, _ := hm.Get(s, "alice")
		b, _ := hm.Get(s, "bob")
		hm.Put(s, "alice", a+b)
		hm.Put(s, "bob", 0)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := hm.Get(s, "alice"); v != 3 {
		t.Fatalf("alice = %d", v)
	}
}

func TestFacadeRunPropagatesUserErrors(t *testing.T) {
	mgr := medley.NewTxManager()
	hm := medley.NewHashMap[uint64](16)
	s := mgr.Session()
	boom := errors.New("boom")
	calls := 0
	err := s.Run(func() error {
		calls++
		hm.Put(s, 1, 1)
		return boom
	})
	if !errors.Is(err, boom) || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	if _, ok := hm.Get(s, 1); ok {
		t.Fatal("failed tx leaked a write")
	}
}

// Mixed-structure stress with invariant: total value across a hash map and
// a BST stays constant under concurrent cross-structure transfers.
func TestFacadeCrossStructureTransfersStress(t *testing.T) {
	mgr := medley.NewTxManager()
	hm := medley.NewHashMap[int](256)
	bst := medley.NewBSTMap[int]()
	s0 := mgr.Session()
	const accounts = 24
	for a := uint64(0); a < accounts; a++ {
		hm.Put(s0, a, 500)
		bst.Put(s0, a, 500)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			s := mgr.Session()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 400; i++ {
				a := uint64(rng.Intn(accounts))
				b := uint64(rng.Intn(accounts))
				toBST := rng.Intn(2) == 0
				_ = s.Run(func() error {
					if toBST {
						v, ok := hm.Get(s, a)
						if !ok || v < 1 {
							return nil
						}
						w, _ := bst.Get(s, b)
						hm.Put(s, a, v-1)
						bst.Put(s, b, w+1)
					} else {
						v, ok := bst.Get(s, a)
						if !ok || v < 1 {
							return nil
						}
						w, _ := hm.Get(s, b)
						bst.Put(s, a, v-1)
						hm.Put(s, b, w+1)
					}
					return nil
				})
			}
		}(int64(w))
	}
	wg.Wait()
	total := 0
	for a := uint64(0); a < accounts; a++ {
		v, _ := hm.Get(s0, a)
		w, _ := bst.Get(s0, a)
		total += v + w
	}
	if total != accounts*1000 {
		t.Fatalf("total = %d, want %d", total, accounts*1000)
	}
}
