// Command txload drives a txserver over the internal/server wire protocol
// and reports end-to-end throughput and latency percentiles, reusing the
// same HDR histogram machinery as the in-process -lat tables so the numbers
// stay comparable.
//
// Each TCP connection is driven by one goroutine keeping a fixed window of
// requests in flight (closed loop). The window is -pipeline per connection,
// or -clients spread across the connections when set (so "-clients 1024
// -conns 128" models 1024 logical closed-loop clients on 128 pipelined
// connections). -rate switches to an open loop: requests are injected at a
// fixed aggregate rate, decoupled from completions, up to the window (at
// saturation the window caps injection and the server's RETRY shedding
// becomes visible in the counts). The op mix is -readpct Gets against Puts,
// keys drawn uniformly or Zipf-skewed; -warmup discards ramp-up samples
// from the histograms and counts.
//
// -txn folds multi-op transactions into the mix: that percentage of
// requests are transfer-style Txn batches (read + add/add transfer between
// two accounts + a write stamp) over a small account region of the
// keyspace, seeded with balance before the drivers start. Their footprints
// ride the wire protocol's op lists, so on sharded engines the server's
// batch scheduler pre-declares each transfer's key set — the cross-shard
// latch path under end-to-end network load. Underflowed transfers surface
// as ABORTED, which the counts report separately.
//
// Shed responses (RETRY, and DRAINING with a reconnect first) are honored:
// the exact request is re-sent after a capped exponential backoff with
// jitter, and no fresh work is injected while a retry is waiting — backoff
// genuinely reduces the offered load instead of shifting it. Re-sends are
// tallied as retries. A connection that fails mid-flight is redialed with
// the same backoff; requests that were in flight are tallied as unknown
// (their outcome is ambiguous, so they are neither re-sent nor counted ok).
//
// Exits non-zero if the server acknowledged nothing (a smoke-test guard).
//
// Examples:
//
//	txload -conns 64 -pipeline 8 -dur 2s
//	txload -conns 1024 -pipeline 8 -readpct 90 -zipf 1.2 -lat
//	txload -clients 1024 -conns 128 -warmup 1s -dur 5s -lat -json
//	txload -rate 50000 -conns 64 -pipeline 16 -lat   # open loop
//	txload -txn 20 -conns 64 -pipeline 8 -lat        # 20% transfer txns
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"sync"
	"time"

	"medley/internal/server"
	"medley/internal/workload"
)

type counts struct {
	ok, retry, draining, aborted, errs uint64
	retries, unknown, reconnects       uint64
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7433", "txserver address")
	conns := flag.Int("conns", 64, "TCP connections (one driver goroutine each)")
	clients := flag.Int("clients", 0, "total closed-loop clients spread across the connections (0: -pipeline per connection)")
	pipeline := flag.Int("pipeline", 1, "requests in flight per connection when -clients is 0")
	readPct := flag.Int("readpct", 90, "percentage of Gets (the rest are Puts)")
	txnPct := flag.Int("txn", 0, "percentage of requests that are multi-op transfer Txn batches (the rest follow -readpct)")
	zipfS := flag.Float64("zipf", 0, "Zipf key-skew exponent (>1.0; 0: uniform)")
	keys := flag.Uint64("keys", 100_000, "keyspace size")
	dur := flag.Duration("dur", 2*time.Second, "measurement duration")
	warmup := flag.Duration("warmup", 0, "ramp-up before measurement; its samples are discarded")
	rate := flag.Int("rate", 0, "open loop: aggregate target requests/s, split across the active connections with the remainder spread 1 req/s each (0: closed loop)")
	seed := flag.Uint64("seed", 1, "rng seed")
	lat := flag.Bool("lat", false, "record per-request latency (p50/p99)")
	jsonOut := flag.Bool("json", false, "emit one JSON result object instead of text")
	flag.Parse()

	if *conns < 1 || *pipeline < 1 || *clients < 0 || *readPct < 0 || *readPct > 100 || *txnPct < 0 || *txnPct > 100 {
		fmt.Fprintln(os.Stderr, "bad flags: want -conns>=1, -pipeline>=1, -clients>=0, -readpct 0-100, -txn 0-100")
		os.Exit(2)
	}
	if *zipfS != 0 && *zipfS <= 1 {
		fmt.Fprintln(os.Stderr, "bad -zipf: the skew exponent must be > 1.0 (or 0 for uniform)")
		os.Exit(2)
	}

	// Per-connection windows: -clients distributed as evenly as possible,
	// or -pipeline everywhere.
	windows := make([]int, *conns)
	for i := range windows {
		windows[i] = *pipeline
	}
	if *clients > 0 {
		for i := range windows {
			windows[i] = *clients / *conns
			if i < *clients%*conns {
				windows[i]++
			}
		}
	}

	// Open-loop pacing: split -rate across the connections that have a
	// window, spreading the remainder one req/s at a time so the aggregate
	// hits the target exactly. A connection whose share rounds to zero stays
	// idle (it must not fall back to closed-loop injection).
	rates := make([]int, *conns)
	if *rate > 0 {
		active := 0
		for _, w := range windows {
			if w > 0 {
				active++
			}
		}
		base, extra := *rate/active, *rate%active
		j := 0
		for i := range windows {
			if windows[i] == 0 {
				continue
			}
			rates[i] = base
			if j < extra {
				rates[i]++
			}
			j++
		}
	}

	// Transfer transactions run over a small account region so contention is
	// real; seed the balances before any driver starts, so early transfers
	// aren't all underflow aborts.
	accounts := min(*keys, txnAccounts)
	if *txnPct > 0 {
		if err := seedAccounts(*addr, accounts); err != nil {
			fmt.Fprintln(os.Stderr, "txload: seeding accounts:", err)
			os.Exit(1)
		}
	}

	var (
		mu     sync.Mutex
		total  counts
		merged workload.Hist
		wg     sync.WaitGroup
	)
	start := time.Now()
	measureStart := start.Add(*warmup)
	deadline := start.Add(*warmup + *dur)
	for i := 0; i < *conns; i++ {
		if windows[i] == 0 || (*rate > 0 && rates[i] == 0) {
			continue // no window or no rate share: this one stays idle
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, h, got := drive(*addr, windows[i], i, *readPct, *txnPct, accounts,
				*zipfS, *keys, *seed, rates[i], *lat, measureStart, deadline)
			mu.Lock()
			total.ok += got.ok
			total.retry += got.retry
			total.draining += got.draining
			total.aborted += got.aborted
			total.errs += got.errs
			total.retries += got.retries
			total.unknown += got.unknown
			total.reconnects += got.reconnects
			if h != nil {
				merged.Merge(h)
			}
			mu.Unlock()
			if c != nil {
				c.Close()
			}
		}(i)
	}
	wg.Wait()
	el := time.Since(measureStart)
	if el > *dur {
		el = *dur // workers stop sending at the deadline; don't bill the tail drain
	}

	tput := float64(total.ok) / el.Seconds()
	p50, p99 := merged.Percentile(0.50), merged.Percentile(0.99)
	if *jsonOut {
		out := map[string]any{
			"conns": *conns, "clients": *clients, "pipeline": *pipeline,
			"readpct": *readPct, "txnpct": *txnPct, "zipf": *zipfS, "rate": *rate,
			"ok": total.ok, "retry": total.retry, "draining": total.draining,
			"aborted": total.aborted, "errors": total.errs,
			"retries": total.retries, "unknown": total.unknown, "reconnects": total.reconnects,
			"secs": el.Seconds(), "throughput": tput,
		}
		if *lat {
			out["p50_us"] = float64(p50) / 1e3
			out["p99_us"] = float64(p99) / 1e3
		}
		json.NewEncoder(os.Stdout).Encode(out)
	} else {
		fmt.Printf("txload: %d conns, ok=%d retry=%d retries=%d draining=%d aborted=%d unknown=%d errors=%d reconnects=%d in %.2fs — %.0f req/s",
			*conns, total.ok, total.retry, total.retries, total.draining, total.aborted,
			total.unknown, total.errs, total.reconnects, el.Seconds(), tput)
		if *lat {
			fmt.Printf(" p50=%v p99=%v", p50, p99)
		}
		fmt.Println()
	}
	if total.ok == 0 {
		fmt.Fprintln(os.Stderr, "txload: zero acknowledged requests")
		os.Exit(1)
	}
}

// txnAccounts caps the transfer-transaction account region: small enough to
// contend, large enough to shard. Stamp keys live in the region above it.
const txnAccounts = uint64(1024)

// txnSeedBalance is each account's starting balance. Large enough that a
// run's worth of net outflow rarely underflows (underflows abort cleanly).
const txnSeedBalance = uint64(1_000_000)

// seedAccounts puts the starting balance on every transfer account over one
// pipelined connection before the drivers start. Seed Puts are idempotent
// constants, so a window that is shed or loses its connection (including to
// an injected fault) is simply re-sent after a backoff.
func seedAccounts(addr string, accounts uint64) error {
	const window = 64
	const maxAttempts = 8
	rng := rand.New(rand.NewPCG(1, 0))
	c, err := server.Dial(addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer func() {
		if c != nil {
			c.Close()
		}
	}()
	drop := func() {
		c.Close()
		c = nil
	}
	for lo := uint64(0); lo < accounts; lo += window {
		hi := min(lo+window, accounts)
		var lastErr error
	attempt:
		for a := 0; ; a++ {
			if a == maxAttempts {
				return fmt.Errorf("seed window %d..%d: %w", lo, hi, lastErr)
			}
			if a > 0 {
				time.Sleep(retryBackoff(rng, a-1))
			}
			if c == nil {
				if c, err = server.Dial(addr, 5*time.Second); err != nil {
					lastErr = err
					continue
				}
			}
			for k := lo; k < hi; k++ {
				c.SendPut(k, txnSeedBalance)
			}
			if err := c.Flush(); err != nil {
				lastErr = err
				drop()
				continue
			}
			shed := false
			for k := lo; k < hi; k++ {
				r, err := c.Recv()
				if err != nil {
					lastErr = err
					drop()
					continue attempt
				}
				switch {
				case r.OK():
				case r.Status == server.StatusRetry || r.Status == server.StatusDraining:
					shed = true // note it, but keep the response stream in step
				default:
					return fmt.Errorf("seed put %d: status %d %s", k, r.Status, r.Err)
				}
			}
			if !shed {
				break
			}
			lastErr = fmt.Errorf("window shed by admission control")
		}
	}
	return nil
}

// reqDesc is one request held for its whole lifetime: in flight (the
// in-order FIFO the server's response stream is matched against), or queued
// for re-send after a shed response. Keeping the full request — not just a
// send timestamp — is what makes honoring StatusRetry possible.
type reqDesc struct {
	isTxn    bool
	isGet    bool
	key, val uint64
	ops      []server.TxnOp
	t0       time.Time // first send, for end-to-end latency (zero: not sampled)
	measured bool      // first sent inside the measurement window
	tries    int       // shed count so far, drives the backoff exponent
	nextAt   time.Time // earliest re-send time while queued for retry
}

// retryBackoff is the capped-exponential, jittered delay before re-send k
// (k=0 after the first shed): half deterministic plus a uniform random half,
// so drivers shed together don't storm back together.
func retryBackoff(rng *rand.Rand, k int) time.Duration {
	const base, cap = time.Millisecond, 100 * time.Millisecond
	d := base
	for i := 0; i < k && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	return d/2 + time.Duration(rng.Int64N(int64(d/2)+1))
}

// drive runs one connection's closed- or open-loop window until the
// deadline. Responses arrive in request order (a server guarantee), so the
// in-flight window is a FIFO of request descriptors. Shed requests
// (RETRY/DRAINING — explicitly not executed) are queued and re-sent after a
// jittered backoff, during which no fresh work is injected; a DRAINING
// response additionally recycles the connection once the window empties. A
// mid-flight connection failure redials with the same backoff and counts
// the in-flight requests as unknown. Samples and counts before measureStart
// are discarded; a sample belongs to the measured window if its request was
// first sent inside it, and a retried request's latency runs from its first
// send — backoff waits are part of the price the client paid.
func drive(addr string, window, tid, readPct, txnPct int, accounts uint64, zipfS float64, keys, seed uint64,
	connRate int, lat bool, measureStart, deadline time.Time) (*server.Conn, *workload.Hist, counts) {
	var got counts
	c, err := server.Dial(addr, 5*time.Second)
	if err != nil {
		got.errs++
		return nil, nil, got
	}
	rng := rand.New(rand.NewPCG(seed, uint64(tid)+1))
	draw := func() uint64 { return rng.Uint64N(keys) }
	if zipfS > 1 {
		z := rand.NewZipf(rng, zipfS, 1, keys-1)
		draw = z.Uint64
	}
	var h *workload.Hist
	if lat {
		h = &workload.Hist{}
	}

	pending := make([]*reqDesc, 0, window) // in flight, response order
	var retryq []*reqDesc                  // shed, waiting out a backoff
	recycle := false                       // server is draining: redial once the window empties
	var txSeq uint64

	newDesc := func(now time.Time) *reqDesc {
		d := &reqDesc{measured: !now.Before(measureStart)}
		if lat && d.measured {
			d.t0 = now
		}
		k := draw()
		if txnPct > 0 && rng.IntN(100) < txnPct {
			// A transfer: read the source, move one unit between two
			// accounts, stamp a per-connection sequence key. The op list is
			// the transaction's declared footprint, so sharded engines lock
			// (or latch) exactly these keys up front.
			from, to := k%accounts, draw()%accounts
			if from == to {
				to = (to + 1) % accounts
			}
			txSeq++
			d.isTxn = true
			d.ops = []server.TxnOp{
				{Kind: server.TxnRead, Key: from},
				server.AddDelta(from, -1),
				server.AddDelta(to, +1),
				{Kind: server.TxnWrite, Key: accounts + uint64(tid)%accounts, Arg: txSeq},
			}
		} else if rng.IntN(100) < readPct {
			d.isGet = true
			d.key = k
		} else {
			d.key, d.val = k, k*3+1
		}
		return d
	}
	writeDesc := func(d *reqDesc) {
		switch {
		case d.isTxn:
			c.SendTxn(d.ops)
		case d.isGet:
			c.SendGet(d.key)
		default:
			c.SendPut(d.key, d.val)
		}
		pending = append(pending, d)
	}

	// reconnect redials after an I/O failure, backing off between attempts.
	// Everything in flight has an ambiguous outcome — the server may have
	// executed it and lost only the acknowledgment — so those requests are
	// tallied as unknown and NOT re-sent (transfers aren't idempotent).
	reconnect := func() bool {
		for _, d := range pending {
			if d.measured {
				got.unknown++
			}
		}
		pending = pending[:0]
		c.Close()
		for k := 0; ; k++ {
			time.Sleep(retryBackoff(rng, k))
			if !time.Now().Before(deadline) || k >= 5 {
				got.errs++
				return false
			}
			if nc, err := server.Dial(addr, 5*time.Second); err == nil {
				c = nc
				got.reconnects++
				recycle = false
				return true
			}
		}
	}

	recv := func() bool {
		r, err := c.Recv()
		now := time.Now()
		d := pending[0]
		pending = pending[:copy(pending, pending[1:])]
		if err != nil {
			if d.measured {
				got.unknown++
			}
			return false // caller redials; the rest of the window is marked there
		}
		switch r.Status {
		case server.StatusRetry, server.StatusDraining:
			// Explicitly not executed: safe to re-send, after a backoff.
			if d.measured {
				if r.Status == server.StatusRetry {
					got.retry++
				} else {
					got.draining++
					recycle = true // this instance is going away; redial when drained
				}
			} else if r.Status == server.StatusDraining {
				recycle = true
			}
			d.nextAt = now.Add(retryBackoff(rng, d.tries))
			d.tries++
			retryq = append(retryq, d)
			return true
		}
		if !d.measured {
			return true
		}
		if lat && r.Status == server.StatusOK && !d.t0.IsZero() {
			h.Record(now.Sub(d.t0))
		}
		switch r.Status {
		case server.StatusOK:
			got.ok++
		case server.StatusAborted:
			got.aborted++
		default:
			got.errs++
		}
		return true
	}

	// Open-loop pacing: this connection's share of the aggregate rate.
	var interval time.Duration
	next := time.Now()
	if connRate > 0 {
		interval = time.Duration(int64(time.Second) / int64(connRate))
	}
	for {
		now := time.Now()
		if !now.Before(deadline) {
			break
		}
		sent := false
		for len(pending) < window {
			if len(retryq) > 0 {
				// Re-sends take priority over fresh work, and while the head
				// retry is still backing off nothing fresh is injected in its
				// place — shed load genuinely drops instead of shifting.
				d := retryq[0]
				if now.Before(d.nextAt) {
					break
				}
				retryq = retryq[:copy(retryq, retryq[1:])]
				got.retries++
				writeDesc(d)
				sent = true
				continue
			}
			if interval > 0 {
				if now.Before(next) {
					break
				}
				next = next.Add(interval)
			}
			writeDesc(newDesc(now))
			sent = true
			if interval == 0 && len(pending) < window {
				now = time.Now() // keep closed-loop stamps honest while filling
			}
		}
		if sent {
			if err := c.Flush(); err != nil {
				if !reconnect() {
					return c, h, got
				}
				continue
			}
		}
		if len(pending) == 0 {
			if recycle {
				// Drained the window of a draining server; move to a fresh
				// instance (or fail out) before re-sending the queue.
				if !reconnect() {
					return c, h, got
				}
				continue
			}
			// Ahead of schedule (open loop) or backing off (retry queue):
			// sleep until the next thing is due.
			wake := deadline
			if interval > 0 && next.Before(wake) {
				wake = next
			}
			if len(retryq) > 0 && retryq[0].nextAt.Before(wake) {
				wake = retryq[0].nextAt
			}
			time.Sleep(time.Until(wake))
			continue
		}
		if !recv() {
			if !reconnect() {
				return c, h, got
			}
		}
	}
	// Deadline passed: drain what's still in flight so the server isn't left
	// writing into a closed connection, but record nothing more.
	for len(pending) > 0 {
		if _, err := c.Recv(); err != nil {
			break
		}
		pending = pending[1:]
	}
	return c, h, got
}
