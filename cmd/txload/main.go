// Command txload drives a txserver over the internal/server wire protocol
// and reports end-to-end throughput and latency percentiles, reusing the
// same HDR histogram machinery as the in-process -lat tables so the numbers
// stay comparable.
//
// Each TCP connection is driven by one goroutine keeping a fixed window of
// requests in flight (closed loop). The window is -pipeline per connection,
// or -clients spread across the connections when set (so "-clients 1024
// -conns 128" models 1024 logical closed-loop clients on 128 pipelined
// connections). -rate switches to an open loop: requests are injected at a
// fixed aggregate rate, decoupled from completions, up to the window (at
// saturation the window caps injection and the server's RETRY shedding
// becomes visible in the counts). The op mix is -readpct Gets against Puts,
// keys drawn uniformly or Zipf-skewed; -warmup discards ramp-up samples
// from the histograms and counts.
//
// -txn folds multi-op transactions into the mix: that percentage of
// requests are transfer-style Txn batches (read + add/add transfer between
// two accounts + a write stamp) over a small account region of the
// keyspace, seeded with balance before the drivers start. Their footprints
// ride the wire protocol's op lists, so on sharded engines the server's
// batch scheduler pre-declares each transfer's key set — the cross-shard
// latch path under end-to-end network load. Underflowed transfers surface
// as ABORTED, which the counts report separately.
//
// Exits non-zero if the server acknowledged nothing (a smoke-test guard).
//
// Examples:
//
//	txload -conns 64 -pipeline 8 -dur 2s
//	txload -conns 1024 -pipeline 8 -readpct 90 -zipf 1.2 -lat
//	txload -clients 1024 -conns 128 -warmup 1s -dur 5s -lat -json
//	txload -rate 50000 -conns 64 -pipeline 16 -lat   # open loop
//	txload -txn 20 -conns 64 -pipeline 8 -lat        # 20% transfer txns
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"sync"
	"time"

	"medley/internal/server"
	"medley/internal/workload"
)

type counts struct {
	ok, retry, draining, aborted, errs uint64
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7433", "txserver address")
	conns := flag.Int("conns", 64, "TCP connections (one driver goroutine each)")
	clients := flag.Int("clients", 0, "total closed-loop clients spread across the connections (0: -pipeline per connection)")
	pipeline := flag.Int("pipeline", 1, "requests in flight per connection when -clients is 0")
	readPct := flag.Int("readpct", 90, "percentage of Gets (the rest are Puts)")
	txnPct := flag.Int("txn", 0, "percentage of requests that are multi-op transfer Txn batches (the rest follow -readpct)")
	zipfS := flag.Float64("zipf", 0, "Zipf key-skew exponent (>1.0; 0: uniform)")
	keys := flag.Uint64("keys", 100_000, "keyspace size")
	dur := flag.Duration("dur", 2*time.Second, "measurement duration")
	warmup := flag.Duration("warmup", 0, "ramp-up before measurement; its samples are discarded")
	rate := flag.Int("rate", 0, "open loop: aggregate target requests/s, split across the active connections with the remainder spread 1 req/s each (0: closed loop)")
	seed := flag.Uint64("seed", 1, "rng seed")
	lat := flag.Bool("lat", false, "record per-request latency (p50/p99)")
	jsonOut := flag.Bool("json", false, "emit one JSON result object instead of text")
	flag.Parse()

	if *conns < 1 || *pipeline < 1 || *clients < 0 || *readPct < 0 || *readPct > 100 || *txnPct < 0 || *txnPct > 100 {
		fmt.Fprintln(os.Stderr, "bad flags: want -conns>=1, -pipeline>=1, -clients>=0, -readpct 0-100, -txn 0-100")
		os.Exit(2)
	}
	if *zipfS != 0 && *zipfS <= 1 {
		fmt.Fprintln(os.Stderr, "bad -zipf: the skew exponent must be > 1.0 (or 0 for uniform)")
		os.Exit(2)
	}

	// Per-connection windows: -clients distributed as evenly as possible,
	// or -pipeline everywhere.
	windows := make([]int, *conns)
	for i := range windows {
		windows[i] = *pipeline
	}
	if *clients > 0 {
		for i := range windows {
			windows[i] = *clients / *conns
			if i < *clients%*conns {
				windows[i]++
			}
		}
	}

	// Open-loop pacing: split -rate across the connections that have a
	// window, spreading the remainder one req/s at a time so the aggregate
	// hits the target exactly. A connection whose share rounds to zero stays
	// idle (it must not fall back to closed-loop injection).
	rates := make([]int, *conns)
	if *rate > 0 {
		active := 0
		for _, w := range windows {
			if w > 0 {
				active++
			}
		}
		base, extra := *rate/active, *rate%active
		j := 0
		for i := range windows {
			if windows[i] == 0 {
				continue
			}
			rates[i] = base
			if j < extra {
				rates[i]++
			}
			j++
		}
	}

	// Transfer transactions run over a small account region so contention is
	// real; seed the balances before any driver starts, so early transfers
	// aren't all underflow aborts.
	accounts := min(*keys, txnAccounts)
	if *txnPct > 0 {
		if err := seedAccounts(*addr, accounts); err != nil {
			fmt.Fprintln(os.Stderr, "txload: seeding accounts:", err)
			os.Exit(1)
		}
	}

	var (
		mu     sync.Mutex
		total  counts
		merged workload.Hist
		wg     sync.WaitGroup
	)
	start := time.Now()
	measureStart := start.Add(*warmup)
	deadline := start.Add(*warmup + *dur)
	for i := 0; i < *conns; i++ {
		if windows[i] == 0 || (*rate > 0 && rates[i] == 0) {
			continue // no window or no rate share: this one stays idle
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, h, got := drive(*addr, windows[i], i, *readPct, *txnPct, accounts,
				*zipfS, *keys, *seed, rates[i], *lat, measureStart, deadline)
			mu.Lock()
			total.ok += got.ok
			total.retry += got.retry
			total.draining += got.draining
			total.aborted += got.aborted
			total.errs += got.errs
			if h != nil {
				merged.Merge(h)
			}
			mu.Unlock()
			if c != nil {
				c.Close()
			}
		}(i)
	}
	wg.Wait()
	el := time.Since(measureStart)
	if el > *dur {
		el = *dur // workers stop sending at the deadline; don't bill the tail drain
	}

	tput := float64(total.ok) / el.Seconds()
	p50, p99 := merged.Percentile(0.50), merged.Percentile(0.99)
	if *jsonOut {
		out := map[string]any{
			"conns": *conns, "clients": *clients, "pipeline": *pipeline,
			"readpct": *readPct, "txnpct": *txnPct, "zipf": *zipfS, "rate": *rate,
			"ok": total.ok, "retry": total.retry, "draining": total.draining,
			"aborted": total.aborted, "errors": total.errs,
			"secs": el.Seconds(), "throughput": tput,
		}
		if *lat {
			out["p50_us"] = float64(p50) / 1e3
			out["p99_us"] = float64(p99) / 1e3
		}
		json.NewEncoder(os.Stdout).Encode(out)
	} else {
		fmt.Printf("txload: %d conns, ok=%d retry=%d draining=%d aborted=%d errors=%d in %.2fs — %.0f req/s",
			*conns, total.ok, total.retry, total.draining, total.aborted, total.errs, el.Seconds(), tput)
		if *lat {
			fmt.Printf(" p50=%v p99=%v", p50, p99)
		}
		fmt.Println()
	}
	if total.ok == 0 {
		fmt.Fprintln(os.Stderr, "txload: zero acknowledged requests")
		os.Exit(1)
	}
}

// txnAccounts caps the transfer-transaction account region: small enough to
// contend, large enough to shard. Stamp keys live in the region above it.
const txnAccounts = uint64(1024)

// txnSeedBalance is each account's starting balance. Large enough that a
// run's worth of net outflow rarely underflows (underflows abort cleanly).
const txnSeedBalance = uint64(1_000_000)

// seedAccounts puts the starting balance on every transfer account over one
// pipelined connection before the drivers start.
func seedAccounts(addr string, accounts uint64) error {
	c, err := server.Dial(addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer c.Close()
	const window = 64
	for lo := uint64(0); lo < accounts; lo += window {
		hi := min(lo+window, accounts)
		for k := lo; k < hi; k++ {
			c.SendPut(k, txnSeedBalance)
		}
		if err := c.Flush(); err != nil {
			return err
		}
		for k := lo; k < hi; k++ {
			r, err := c.Recv()
			if err != nil {
				return err
			}
			if !r.OK() {
				return fmt.Errorf("seed put %d: status %d %s", k, r.Status, r.Err)
			}
		}
	}
	return nil
}

// drive runs one connection's closed- or open-loop window until the
// deadline. Responses arrive in request order (a server guarantee), so
// latency matching is a FIFO of send timestamps. Samples and counts before
// measureStart are discarded; a sample belongs to the measured window if
// its REQUEST was sent inside it.
func drive(addr string, window, tid, readPct, txnPct int, accounts uint64, zipfS float64, keys, seed uint64,
	connRate int, lat bool, measureStart, deadline time.Time) (*server.Conn, *workload.Hist, counts) {
	var got counts
	c, err := server.Dial(addr, 5*time.Second)
	if err != nil {
		got.errs++
		return nil, nil, got
	}
	rng := rand.New(rand.NewPCG(seed, uint64(tid)+1))
	draw := func() uint64 { return rng.Uint64N(keys) }
	if zipfS > 1 {
		z := rand.NewZipf(rng, zipfS, 1, keys-1)
		draw = z.Uint64
	}
	var h *workload.Hist
	if lat {
		h = &workload.Hist{}
	}

	// FIFO of send timestamps for the in-flight window (zero time: sent
	// during warm-up, discard its sample).
	stamps := make([]time.Time, 0, window)
	var txops []server.TxnOp
	var txSeq uint64
	send := func(now time.Time) {
		k := draw()
		if txnPct > 0 && rng.IntN(100) < txnPct {
			// A transfer: read the source, move one unit between two
			// accounts, stamp a per-connection sequence key. The op list is
			// the transaction's declared footprint, so sharded engines lock
			// (or latch) exactly these keys up front.
			from, to := k%accounts, draw()%accounts
			if from == to {
				to = (to + 1) % accounts
			}
			txSeq++
			txops = append(txops[:0],
				server.TxnOp{Kind: server.TxnRead, Key: from},
				server.AddDelta(from, -1),
				server.AddDelta(to, +1),
				server.TxnOp{Kind: server.TxnWrite, Key: accounts + uint64(tid)%accounts, Arg: txSeq},
			)
			c.SendTxn(txops)
		} else if rng.IntN(100) < readPct {
			c.SendGet(k)
		} else {
			c.SendPut(k, k*3+1)
		}
		if lat && !now.Before(measureStart) {
			stamps = append(stamps, now)
		} else {
			stamps = append(stamps, time.Time{})
		}
	}
	recv := func() bool {
		r, err := c.Recv()
		now := time.Now()
		t0 := stamps[0]
		stamps = stamps[:copy(stamps, stamps[1:])]
		if err != nil {
			got.errs++
			return false
		}
		measured := !t0.IsZero() || (!lat && !now.Before(measureStart))
		if !measured {
			return true
		}
		if lat && r.Status == server.StatusOK {
			h.Record(now.Sub(t0))
		}
		switch r.Status {
		case server.StatusOK:
			got.ok++
		case server.StatusRetry:
			got.retry++
		case server.StatusDraining:
			got.draining++
		case server.StatusAborted:
			got.aborted++
		default:
			got.errs++
		}
		return r.Status != server.StatusDraining
	}

	// Open-loop pacing: this connection's share of the aggregate rate.
	var interval time.Duration
	next := time.Now()
	if connRate > 0 {
		interval = time.Duration(int64(time.Second) / int64(connRate))
	}
	for {
		now := time.Now()
		if !now.Before(deadline) {
			break
		}
		sent := false
		for len(stamps) < window {
			if interval > 0 {
				if now.Before(next) {
					break
				}
				next = next.Add(interval)
			}
			send(now)
			sent = true
			if interval == 0 && len(stamps) < window {
				now = time.Now() // keep closed-loop stamps honest while filling
			}
		}
		if sent {
			if err := c.Flush(); err != nil {
				got.errs++
				return c, h, got
			}
		}
		if len(stamps) == 0 {
			// Open loop, ahead of schedule: sleep until the next injection.
			time.Sleep(time.Until(next))
			continue
		}
		if !recv() {
			return c, h, got
		}
	}
	// Deadline passed: drain what's still in flight so the server isn't left
	// writing into a closed connection, but record nothing more.
	for len(stamps) > 0 {
		if _, err := c.Recv(); err != nil {
			break
		}
		stamps = stamps[1:]
	}
	return c, h, got
}
