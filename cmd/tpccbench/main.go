// Command tpccbench regenerates Figure 9 of the Medley paper: throughput of
// the TPC-C newOrder + payment mix (1:1) over transactional tables,
// comparing backends resolved by name through the internal/txengine
// registry. The default series is the paper's — Medley, txMontage, OneFile,
// TDSL — plus the boosted lock-based map; -systems selects any row-capable
// subset. (LFTT cannot run TPC-C: it supports only static transactions, as
// the paper notes; asking for it fails with an explanation.)
//
// Examples:
//
//	tpccbench -dur 3s -warehouses 4 -threads 1,2,4,8,16
//	tpccbench -systems medley,boost
//	tpccbench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"medley/internal/bench"
	"medley/internal/pnvm"
	"medley/internal/tpcc"
	"medley/internal/txengine"
)

func main() {
	warehouses := flag.Int("warehouses", 2, "number of warehouses")
	systemsFlag := flag.String("systems", "", "comma-separated engine names (default: "+strings.Join(tpcc.DefaultEngines(), ",")+")")
	list := flag.Bool("list", false, "list registered engines and exit")
	threadsFlag := flag.String("threads", "", "comma-separated thread counts (default: host sweep)")
	dur := flag.Duration("dur", 2*time.Second, "measurement duration per point")
	epochLen := flag.Duration("epoch", 10*time.Millisecond, "txMontage epoch length")
	shards := flag.Int("shards", 0, "shard count for sharded engines (0: engine default)")
	noLatch := flag.Bool("nolatch", false, "disable key-granular cross-shard latching on sharded engines (whole-shard locks, the pre-latch behavior)")
	flag.Parse()

	// The non-fatal over-parallelism warning is emitted by the registry at
	// engine construction, deduped to once per run.
	if err := txengine.ValidateShardsFlag(*shards); err != nil {
		fmt.Fprintln(os.Stderr, "bad -shards:", err)
		os.Exit(2)
	}

	if *list {
		for _, b := range txengine.Builders() {
			note := ""
			if !b.Caps.Has(txengine.CapDynamicTx | txengine.CapRowMaps) {
				note = " (cannot run TPC-C)"
			}
			fmt.Printf("%-10s %s%s\n", b.Key, b.Doc, note)
		}
		return
	}

	systems := tpcc.DefaultEngines()
	if *systemsFlag != "" {
		systems = nil
		for _, p := range strings.Split(*systemsFlag, ",") {
			if p = strings.TrimSpace(p); p != "" {
				systems = append(systems, p)
			}
		}
	}
	// Fail fast on bad selections, before any measurement sweep runs.
	for _, name := range systems {
		if err := tpcc.CanRun(name); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	threads := bench.DefaultThreadSweep()
	if *threadsFlag != "" {
		threads = nil
		for _, p := range strings.Split(*threadsFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				fmt.Fprintln(os.Stderr, "bad -threads:", err)
				os.Exit(2)
			}
			threads = append(threads, v)
		}
	}

	cfg := tpcc.DefaultConfig(*warehouses)
	opt := tpcc.StoreOptions{Latencies: pnvm.DefaultLatencies(), EpochLen: *epochLen, Shards: *shards, NoLatch: *noLatch}
	fmt.Printf("# host: GOMAXPROCS=%d; warehouses=%d; dur=%v\n", runtime.GOMAXPROCS(0), *warehouses, *dur)
	fmt.Printf("\n## Figure 9 (TPC-C newOrder:payment 1:1)\n")
	fmt.Printf("%-12s %8s %14s %12s %10s %10s %10s %10s %10s %10s %10s %10s %10s\n", "system", "threads", "txn/s", "commits", "aborts", "retries", "xshard", "fphit", "fpmiss", "latchw", "latchfb", "snapread", "snapstale")

	for _, name := range systems {
		for _, th := range threads {
			st, err := tpcc.NewStore(name, opt)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			tpcc.Load(st, cfg)
			res := tpcc.Run(st, cfg, th, *dur)
			st.Close()
			fmt.Printf("%-12s %8d %14.0f %12d %10d %10d %10d %10d %10d %10d %10d %10d %10d\n",
				res.System, res.Threads, res.Throughput,
				res.Stats.Commits, res.Stats.Aborts, res.Stats.Retries, res.Stats.CrossShardRestarts,
				res.Stats.FootprintHits, res.Stats.FootprintMisses,
				res.Stats.LatchWaits, res.Stats.LatchFallbacks,
				res.Stats.SnapshotReads, res.Stats.SnapshotStale)
		}
	}
}
