// Command tpccbench regenerates Figure 9 of the Medley paper: throughput of
// the TPC-C newOrder + payment mix (1:1) over skiplist tables, comparing
// Medley, txMontage, OneFile, and TDSL across a thread sweep. (LFTT cannot
// run TPC-C: it supports only static transactions, as the paper notes.)
//
// Example:
//
//	tpccbench -dur 3s -warehouses 4 -threads 1,2,4,8,16
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"medley/internal/bench"
	"medley/internal/pnvm"
	"medley/internal/tpcc"
)

func main() {
	warehouses := flag.Int("warehouses", 2, "number of warehouses")
	threadsFlag := flag.String("threads", "", "comma-separated thread counts (default: host sweep)")
	dur := flag.Duration("dur", 2*time.Second, "measurement duration per point")
	epochLen := flag.Duration("epoch", 10*time.Millisecond, "txMontage epoch length")
	flag.Parse()

	threads := bench.DefaultThreadSweep()
	if *threadsFlag != "" {
		threads = nil
		for _, p := range strings.Split(*threadsFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				fmt.Fprintln(os.Stderr, "bad -threads:", err)
				os.Exit(2)
			}
			threads = append(threads, v)
		}
	}

	cfg := tpcc.DefaultConfig(*warehouses)
	lat := pnvm.DefaultLatencies()
	fmt.Printf("# host: GOMAXPROCS=%d; warehouses=%d; dur=%v\n", runtime.GOMAXPROCS(0), *warehouses, *dur)
	fmt.Printf("\n## Figure 9 (TPC-C newOrder:payment 1:1 over skiplists)\n")
	fmt.Printf("%-12s %8s %14s\n", "system", "threads", "txn/s")

	type mkStore struct {
		name string
		mk   func() tpcc.Store
	}
	stores := []mkStore{
		{"Medley", func() tpcc.Store { return tpcc.NewMedleyStore() }},
		{"txMontage", func() tpcc.Store {
			st := tpcc.NewTxMontageStore(lat)
			st.EpochSys().Start(*epochLen)
			return st
		}},
		{"OneFile", func() tpcc.Store { return tpcc.NewOneFileStore() }},
		{"TDSL", func() tpcc.Store { return tpcc.NewTDSLStore() }},
	}
	for _, ms := range stores {
		for _, th := range threads {
			st := ms.mk()
			tpcc.Load(st, cfg)
			res := tpcc.Run(st, cfg, th, *dur)
			if m, ok := st.(*tpcc.MedleyStore); ok && m.EpochSys() != nil {
				m.EpochSys().Stop()
			}
			st.Close()
			fmt.Printf("%-12s %8d %14.0f\n", res.System, res.Threads, res.Throughput)
		}
	}
}
