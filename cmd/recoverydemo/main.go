// Command recoverydemo walks through txMontage's failure-atomic
// persistence: it runs transactions over two persistent maps, syncs an
// epoch boundary, keeps running, crashes the simulated NVM device, recovers
// — and shows that the recovered state is a transaction-consistent cut at
// an epoch boundary (buffered durable strict serializability).
package main

import (
	"fmt"

	"medley/internal/core"
	"medley/internal/montage"
	"medley/internal/pnvm"
)

func main() {
	dev := pnvm.NewDefault()
	es := montage.NewEpochSys(dev)
	mgr := core.NewTxManager()
	montage.Attach(mgr, es)

	checking := montage.NewHashMap(es, montage.Uint64Codec(), 1024)
	savings := montage.NewSkipMap(es, montage.Uint64Codec())
	s := mgr.Session()

	// Open 8 account pairs with a 1000/1000 split; every transfer keeps
	// checking+savings == 2000 per account.
	for a := uint64(0); a < 8; a++ {
		_ = s.Run(func() error {
			checking.Put(s, a, 1000)
			savings.Put(s, a, 1000)
			return nil
		})
	}
	transfer := func(a uint64, amt uint64) {
		_ = s.Run(func() error {
			c, _ := checking.Get(s, a)
			v, _ := savings.Get(s, a)
			if c < amt {
				return nil
			}
			checking.Put(s, a, c-amt)
			savings.Put(s, a, v+amt)
			return nil
		})
	}
	for a := uint64(0); a < 8; a++ {
		transfer(a, 100*(a+1))
	}
	es.Sync() // persist everything up to here
	fmt.Println("synced: all transfers durable at epoch boundary", es.Current())

	// More transfers that will NOT be durable (no sync before the crash).
	for a := uint64(0); a < 8; a++ {
		transfer(a, 50)
	}
	fmt.Println("ran 8 more transfers without sync; crashing device...")

	dev.Crash()
	recs := montage.LiveRecords(dev.Recover())
	fmt.Printf("recovered %d live payloads\n", len(recs))

	// Recovery cannot tell which map a payload belonged to by itself; real
	// deployments tag payloads per structure. Here both maps share the key
	// space with distinct value parities, so rebuild by key count and
	// verify the invariant on totals.
	es2 := montage.NewEpochSys(dev)
	_ = es2
	byKey := map[uint64][]uint64{}
	for _, r := range recs {
		byKey[r.Key] = append(byKey[r.Key], montage.Uint64Codec().Dec(r.Val))
	}
	ok := true
	for a := uint64(0); a < 8; a++ {
		vals := byKey[a]
		if len(vals) != 2 {
			fmt.Printf("account %v: expected 2 payloads, got %d — NOT transaction-consistent\n", a, len(vals))
			ok = false
			continue
		}
		if vals[0]+vals[1] != 2000 {
			fmt.Printf("account %v: %v+%v != 2000 — split transaction recovered!\n", a, vals[0], vals[1])
			ok = false
			continue
		}
		fmt.Printf("account %v: checking+savings = %v+%v = 2000 ✓\n", a, vals[0], vals[1])
	}
	if ok {
		fmt.Println("recovered state is a consistent epoch-boundary cut (BDSS holds)")
	}
}
