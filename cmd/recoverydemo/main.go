// Command recoverydemo walks through failure-atomic persistence on any
// persistent engine of the txengine registry — the same Persister path the
// recovery conformance tests exercise. It runs transfer transactions over
// one persistent map, syncs a durable boundary, keeps running, crashes the
// engine's whole (simulated) NVM device fleet, rebuilds a fresh engine on
// the survivors, and shows that the merged recovery is a
// transaction-consistent cut: every account pair still sums to its opening
// balance (buffered durable strict serializability).
//
// With -engine txmontage-sharded the demo becomes the multi-device story:
// each shard owns its own epoch system and device, transfers routinely span
// shards, and recovery merges one dump per device at the minimum durable
// frontier — so even a crash landing between two shards' flushes never
// recovers half a transfer.
//
// Examples:
//
// -crash <point> moves the failure from the quiet spot between transactions
// to a named chaos point INSIDE the persistence machinery (see
// internal/chaos): the armed point crashes the device fleet mid-operation —
// mid-flush, mid-commit-record, mid-write-back — and the same audits must
// still hold. Exits 2 if the named point never fires.
//
// Examples:
//
//	recoverydemo                                   # txMontage, one device
//	recoverydemo -engine txmontage-sharded -shards 8
//	recoverydemo -engine ponefile                  # eager persistence: nothing lost
//	recoverydemo -engine txmontage-sharded -shards 4 -crash txmontage.advance.mid-shard
//	recoverydemo -engine ponefile -crash ponefile.commit.mark-volatile
package main

import (
	"flag"
	"fmt"
	"os"

	"medley/internal/chaos"
	"medley/internal/pnvm"
	"medley/internal/txengine"
)

const opening = uint64(1000) // per-account opening balance in each half

// Account a's two balances live at distinct keys of one map, so recovery
// audits a single recovered structure while the halves still hash to
// (usually) different shards on a sharded engine.
func checkingKey(a uint64) uint64 { return 2 * a }
func savingsKey(a uint64) uint64  { return 2*a + 1 }

func main() {
	engine := flag.String("engine", "txmontage", "persistent engine to demo (txmontage | txmontage-sharded | ponefile)")
	shards := flag.Int("shards", 0, "shard count for sharded engines (0: engine default)")
	accounts := flag.Uint64("accounts", 8, "account pairs to open")
	crashPoint := flag.String("crash", "", "chaos point to crash at during the unsynced phase (empty: crash between transactions)")
	flag.Parse()

	cfg := txengine.Config{Latencies: pnvm.DefaultLatencies(), Shards: *shards}
	eng, err := txengine.Build(*engine, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	p, ok := eng.(txengine.Persister)
	if !ok || len(p.Devices()) == 0 {
		fmt.Fprintf(os.Stderr, "engine %q is transient; pick a persistent one (txmontage, txmontage-sharded, ponefile)\n", *engine)
		os.Exit(2)
	}
	devs := p.Devices()
	spec := txengine.MapSpec{Kind: txengine.KindHash, Buckets: 1024}
	m, err := eng.NewUintMap(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	tx := eng.NewWorker(0)

	// Open the account pairs; every transfer below preserves
	// checking+savings == 2*opening per account.
	for a := uint64(0); a < *accounts; a++ {
		a := a
		must(tx.Run(func() error {
			m.Put(tx, checkingKey(a), opening)
			m.Put(tx, savingsKey(a), opening)
			return nil
		}))
	}
	transfer := func(a, amt uint64) {
		must(tx.Run(func() error {
			c, _ := m.Get(tx, checkingKey(a))
			if c < amt {
				return nil
			}
			s, _ := m.Get(tx, savingsKey(a))
			m.Put(tx, checkingKey(a), c-amt)
			m.Put(tx, savingsKey(a), s+amt)
			return nil
		}))
	}
	for a := uint64(0); a < *accounts; a++ {
		transfer(a, 100*(a%5+1))
	}
	p.Sync() // everything so far is durable on every device
	fmt.Printf("%s: %d accounts opened and shuffled; synced across %d device(s)\n",
		eng.Name(), *accounts, len(devs))

	// More transfers that are NOT synced: a buffered engine may lose them,
	// but only whole transactions at a time. With -crash armed, one of them
	// (or the sync that follows) dies mid-operation at the named point.
	if *crashPoint != "" {
		if err := chaos.Arm(*crashPoint, chaos.Fault{Kind: chaos.Crash, Action: func() {
			for _, d := range devs {
				d.Crash()
			}
		}}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	crashed := false
	ran := uint64(0)
	for a := uint64(0); a < *accounts && !crashed; a++ {
		a := a
		crashed = runToCrash(func() { transfer(a, 50) })
		if !crashed {
			ran++
		}
	}
	if *crashPoint != "" {
		if !crashed {
			// The point must be on the flush/advance path: force it with a sync.
			crashed = runToCrash(func() { p.Sync() })
		}
		if !crashed {
			fmt.Fprintf(os.Stderr, "-crash %s never fired (transfers and sync both completed)\n", *crashPoint)
			os.Exit(2)
		}
		chaos.DisarmAll()
		fmt.Printf("ran %d more transfers without sync; crashed mid-operation at %s\n", ran, *crashPoint)
		// The engine died mid-operation; it is not closed, just abandoned —
		// exactly what a process crash leaves behind.
	} else {
		fmt.Printf("ran %d more transfers without sync; crashing all %d device(s)...\n",
			*accounts, len(devs))
		eng.Close()
	}
	dumps := pnvm.DumpAll(devs)
	total := 0
	for _, d := range dumps {
		total += len(d)
	}
	fmt.Printf("recovered %d surviving records across %d dump(s)\n", total, len(dumps))

	// Post-crash world: a fresh engine over the same devices, one merged
	// logical map at an epoch-consistent cut.
	eng2, err := txengine.Build(*engine, txengine.Config{
		Latencies: pnvm.DefaultLatencies(), Shards: *shards, Devices: devs,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	rm, err := eng2.(txengine.Persister).RecoverUintMap(dumps, spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	tx2 := eng2.NewWorker(0)

	// Two audits gate the exit status. Conservation alone would pass
	// vacuously if the whole synced transfer were lost (opening balances
	// also sum right), so the durable-frontier audit additionally pins each
	// account to one of its two legitimate post-sync states: the synced
	// transfer applied, with the unsynced one either present or absent —
	// never rolled back past the sync.
	ok = true
	for a := uint64(0); a < *accounts; a++ {
		c, ok1 := rm.Get(tx2, checkingKey(a))
		s, ok2 := rm.Get(tx2, savingsKey(a))
		if !ok1 || !ok2 {
			fmt.Printf("account %v: a synced balance key was lost — NOT transaction-consistent\n", a)
			ok = false
			continue
		}
		if c+s != 2*opening {
			fmt.Printf("account %v: %v+%v != %v — split transaction recovered!\n", a, c, s, 2*opening)
			ok = false
			continue
		}
		amt := 100 * (a%5 + 1) // the synced transfer's amount (see above)
		switch c {
		case opening - amt:
			fmt.Printf("account %v: checking+savings = %v+%v = %v ✓ (synced transfer durable, unsynced dropped)\n", a, c, s, 2*opening)
		case opening - amt - 50:
			fmt.Printf("account %v: checking+savings = %v+%v = %v ✓ (both transfers survived)\n", a, c, s, 2*opening)
		default:
			fmt.Printf("account %v: checking %v is neither post-sync state (%v or %v) — a SYNCED transfer was lost\n",
				a, c, opening-amt, opening-amt-50)
			ok = false
		}
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "recovery audit FAILED")
		os.Exit(1)
	}
	fmt.Println("recovered state is a consistent epoch-boundary cut (BDSS holds)")
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runToCrash runs fn, converting a chaos crash panic — the simulated process
// death — into a true return. Any other panic propagates.
func runToCrash(fn func()) (crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := chaos.AsCrash(r); !ok {
				panic(r)
			}
			crashed = true
		}
	}()
	fn()
	return false
}
