// Command txserver serves one transactional uint64 map over the internal/
// server wire protocol (length-prefixed binary frames carrying Get, Put, and
// multi-op Txn batches with pre-declared footprints). Any registry engine
// with dynamic transactions can back it; the default is the sharded Medley
// runtime, where the batch scheduler's footprint hints let cross-shard
// transactions lock their shard set up front.
//
// Each connection gets a dedicated engine session and a FIFO request queue
// (the server side of the client's pipelining window). A token-based
// admission controller sheds excess load with an explicit RETRY status
// instead of queueing toward collapse. On engines with a snapshot tier,
// read-only work — Gets and all-Read Txn batches — is served through the
// read fast lane: cross-connection combiners answer many connections'
// pending reads from one pinned snapshot cut, no OCC, no admission tokens
// (-noreadlane reverts to the pure OCC path for A/B runs). SIGINT/SIGTERM
// triggers a graceful drain: in-flight requests finish, new ones are
// rejected with DRAINING, persistent engines sync a durable cut, and the
// process exits 0.
//
// Examples:
//
//	txserver                                   # medley-sharded on :7433
//	txserver -engine medley-sharded -shards 8 -batch 32
//	txserver -engine txmontage-sharded -shards 4   # persistent: drain syncs
//	txserver -engine medley -addr 127.0.0.1:9000 -tokens 2
//	txserver -noreadlane                       # A/B control: OCC-only reads
//	txserver -pprof 127.0.0.1:6060             # profiling endpoints
//	txserver -idletimeout 30s -writetimeout 5s # cut dead/stalled connections
//	txserver -chaos 'server.frame.write=torn@every=40'   # fault injection
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof serves the standard profiling endpoints
	"os"
	"os/signal"
	"syscall"
	"time"

	"medley/internal/chaos"
	"medley/internal/pnvm"
	"medley/internal/server"
	"medley/internal/txengine"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7433", "listen address")
	engine := flag.String("engine", "medley-sharded", "registry engine to host (needs dynamic transactions; see medleybench -list)")
	shards := flag.Int("shards", 0, "shard count for sharded engines (0: engine default)")
	batch := flag.Int("batch", 0, "max adjacent single-op requests coalesced into one hinted transaction (0: default; 1: off)")
	tokens := flag.Int("tokens", 0, "admission tokens: concurrent executing batches (0: 4×GOMAXPROCS)")
	admitWait := flag.Duration("admitwait", 0, "how long a batch waits for admission before RETRY (0: default; negative: shed immediately)")
	queue := flag.Int("queue", 0, "per-connection pipelining queue depth (0: default)")
	grace := flag.Duration("grace", 0, "drain grace for in-flight requests (0: default)")
	epochLen := flag.Duration("epoch", 10*time.Millisecond, "txMontage epoch length")
	noLatch := flag.Bool("nolatch", false, "disable key-granular cross-shard latching on sharded engines")
	noReadLane := flag.Bool("noreadlane", false, "disable the snapshot read fast lane (A/B control: every request runs OCC)")
	combiners := flag.Int("combiners", 0, "read-lane combiner stripes (0: host-sized default)")
	idleTimeout := flag.Duration("idletimeout", 0, "close connections idle longer than this between frames (0: never)")
	writeTimeout := flag.Duration("writetimeout", 0, "per-response write deadline (0: none)")
	chaosSpecs := flag.String("chaos", os.Getenv("MEDLEY_CHAOS"),
		"comma-separated fault specs to arm, name=kind[:arg][@after=N][@every=N][@times=N] (default: $MEDLEY_CHAOS)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty: off)")
	flag.Parse()

	if err := txengine.ValidateShardsFlag(*shards); err != nil {
		fmt.Fprintln(os.Stderr, "bad -shards:", err)
		os.Exit(2)
	}
	eng, err := txengine.Build(*engine, txengine.Config{
		Latencies: pnvm.DefaultLatencies(), EpochLen: *epochLen,
		Shards: *shards, NoLatch: *noLatch,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// Main owns the engine: it is closed below, after the drain completes and
	// the final stats are printed.
	// Arm any requested fault points before serving; a crash spec takes the
	// engine's device fleet down with the process when the engine persists.
	if *chaosSpecs != "" {
		if p, ok := eng.(txengine.Persister); ok {
			devs := p.Devices()
			chaos.SetCrashAction(func() {
				for _, d := range devs {
					d.Crash()
				}
			})
		}
		if err := chaos.ArmSpecs(*chaosSpecs); err != nil {
			eng.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("txserver: chaos armed: %s\n", *chaosSpecs)
	}
	s, err := server.New(eng, server.Options{
		BatchMax: *batch, Tokens: *tokens, AdmitWait: *admitWait,
		QueueDepth: *queue, DrainGrace: *grace,
		NoReadLane: *noReadLane, ReadCombiners: *combiners,
		IdleTimeout: *idleTimeout, WriteTimeout: *writeTimeout,
	})
	if err != nil {
		eng.Close()
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		eng.Close()
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("txserver: %s on %s (batch=%d tokens=%d readlane=%v)\n",
		eng.Name(), ln.Addr(), *batch, *tokens, s.ReadLaneEnabled())
	if *pprofAddr != "" {
		go func() {
			// DefaultServeMux carries the pprof handlers via the blank import.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "txserver: pprof:", err)
			}
		}()
		fmt.Printf("txserver: pprof on %s\n", *pprofAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		got := <-sig
		fmt.Printf("txserver: %v — draining\n", got)
		s.Drain()
	}()

	err = s.Serve(ln)
	// Serve returns as soon as the listener stops accepting — the drain
	// itself (in-flight requests, durable sync) may still be running in the
	// signal goroutine. Join it: Drain is idempotent and blocks until the
	// drain completes, so the report below and a zero exit really mean every
	// acknowledged commit is finished and durable.
	s.Drain()
	st := eng.Stats()
	c := s.Counters()
	fmt.Printf("txserver: engine commits=%d aborts=%d retries=%d xshard=%d fphit=%d latchw=%d\n",
		st.Commits, st.Aborts, st.Retries, st.CrossShardRestarts, st.FootprintHits, st.LatchWaits)
	fmt.Printf("txserver: server conns=%d requests=%d shed=%d drained=%d idleclosed=%d batches=%d batchedops=%d\n",
		c.Conns, c.Requests, c.Shed, c.Drained, c.IdleClosed, c.Batches, c.BatchedOps)
	fmt.Printf("txserver: readlane snapserved=%d combined=%d occserved=%d\n",
		c.SnapServed, c.Combined, c.OCCServed)
	eng.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("txserver: drained clean")
}
