// Command medleybench regenerates the microbenchmark figures of the Medley
// paper (PPoPP 2023): hash-table throughput (Figure 7), skiplist throughput
// (Figure 8), and skiplist latency (Figure 10) — and runs the cross-engine
// composition workloads of internal/workload (-workload). Backends are
// resolved by name through the internal/txengine registry; -systems selects
// a subset. Every throughput table includes the engine's uniform
// commit/abort/retry stats for the measured interval.
//
// Examples:
//
//	medleybench -figure 7                 # hash tables, all three ratios
//	medleybench -figure 8 -ratio 2:1:1    # skiplists, one ratio
//	medleybench -figure 8 -systems medley,lftt
//	medleybench -figure 7 -systems boost  # the boosted lock-based map
//	medleybench -figure 10                # latency: Original / TxOff / TxOn
//	medleybench -workload workqueue -systems medley,original
//	medleybench -workload all             # workqueue, cache, transfer
//	medleybench -workload transfer -systems medley-sharded -shards 8 -lat
//	medleybench -workload cache -zipf 1.6 -readpct 70 -accounts 64
//	medleybench -workload cache -readpct 95 -snapshot   # MVCC snapshot probes
//	medleybench -list                     # registered engines + workloads
//
// Scale 1.0 reproduces the paper's 1M-key / 0.5M-preload configuration;
// the default 0.1 keeps runs laptop-sized. Shapes, not absolute numbers,
// are the reproduction target (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"medley/internal/bench"
	"medley/internal/pnvm"
	"medley/internal/txengine"
	"medley/internal/workload"
)

func main() {
	figure := flag.String("figure", "7", "7 | 8 | 10 (also 10a/10b/10c)")
	wlFlag := flag.String("workload", "", "composition workload instead of a figure: workqueue | cache | transfer | all")
	ratio := flag.String("ratio", "", "get:insert:remove ratio (default: all of 0:1:1, 2:1:1, 18:1:1)")
	systemsFlag := flag.String("systems", "", "comma-separated engine names (default: every capable engine; see -list)")
	list := flag.Bool("list", false, "list registered engines and exit")
	threadsFlag := flag.String("threads", "", "comma-separated thread counts (default: host sweep)")
	dur := flag.Duration("dur", 2*time.Second, "measurement duration per point")
	warmup := flag.Duration("warmup", 0, "workloads: ramp-up before measurement; warm-up samples are discarded from txn/s and the latency percentiles")
	scale := flag.Float64("scale", 0.1, "keyspace scale (1.0 = paper's 1M keys)")
	epochLen := flag.Duration("epoch", 10*time.Millisecond, "txMontage epoch length")
	shards := flag.Int("shards", 0, "shard count for sharded engines (0: engine default); sweep by invoking once per count")
	zipfS := flag.Float64("zipf", 0, "Zipf skew exponent (>1.0; cache default 1.2; transfer: 0 keeps uniform draws)")
	readPct := flag.Int("readpct", -1, "cache workload: lookup percentage 0-100 (-1: default 90)")
	accounts := flag.Int("accounts", 0, "transfer workload: account count (0: 1024 scaled); fewer = hotter")
	lat := flag.Bool("lat", false, "workloads: measure per-transaction latency percentiles (p50/p99 columns)")
	snapshot := flag.Bool("snapshot", false, "cache workload: serve read probes as validation-free MVCC snapshot reads (engines with CapSnapshot only)")
	noHints := flag.Bool("nohints", false, "workloads: disable footprint hints on sharded engines (measure the discovery path)")
	noLatch := flag.Bool("nolatch", false, "disable key-granular cross-shard latching on sharded engines (whole-shard locks, the pre-latch behavior)")
	flag.Parse()

	checkShardsFlag(*shards)

	if *list {
		for _, b := range txengine.Builders() {
			fmt.Printf("%-10s %s\n", b.Key, b.Doc)
		}
		fmt.Println()
		for _, sc := range workload.Scenarios() {
			fmt.Printf("%-10s workload: %s (engines: %s)\n", sc.Key, sc.Doc, strings.Join(workload.Engines(sc.Key), ","))
		}
		return
	}

	ratios := parseRatios(*ratio)
	threads := parseThreads(*threadsFlag)
	opt := bench.Options{Latencies: pnvm.DefaultLatencies(), EpochLen: *epochLen, Shards: *shards, NoLatch: *noLatch}
	fmt.Printf("# host: GOMAXPROCS=%d; scale=%.2f; dur=%v\n", runtime.GOMAXPROCS(0), *scale, *dur)

	if *wlFlag != "" {
		if *zipfS != 0 && *zipfS <= 1 {
			fmt.Fprintln(os.Stderr, "bad -zipf: the skew exponent must be > 1.0 (or 0 for the default)")
			os.Exit(2)
		}
		if *readPct < -1 || *readPct > 100 {
			fmt.Fprintln(os.Stderr, "bad -readpct: want 0-100 (or -1 for the default 90)")
			os.Exit(2)
		}
		// Flag space (-1: default, 0: all updates) maps onto the library's
		// zero-value-is-default Config (0: default, negative: all updates).
		rp := 0
		switch {
		case *readPct == 0:
			rp = -1
		case *readPct > 0:
			rp = *readPct
		}
		cfg := workload.Config{
			Dur: *dur, Warmup: *warmup, Scale: *scale,
			Latencies: pnvm.DefaultLatencies(), EpochLen: *epochLen,
			Shards: *shards, NoLatch: *noLatch, ZipfS: *zipfS, ReadPct: rp,
			Accounts: *accounts, Latency: *lat, NoHints: *noHints,
			Snapshot: *snapshot,
		}
		runWorkloads(*wlFlag, *systemsFlag, threads, cfg)
		return
	}

	switch *figure {
	case "7", "8":
		kind := txengine.KindHash
		figName := "Figure 7 (hash tables)"
		if *figure == "8" {
			kind = txengine.KindSkip
			figName = "Figure 8 (skiplists)"
		}
		systems := bench.TxSystemsFor(kind)
		if *systemsFlag != "" {
			systems = splitList(*systemsFlag)
		}
		// Fail fast on bad selections, before any measurement sweep runs.
		for _, name := range systems {
			b, ok := txengine.Lookup(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown engine %q (see -list)\n", name)
				os.Exit(2)
			}
			if !b.Caps.Has(txengine.CapTx) {
				fmt.Fprintf(os.Stderr, "engine %q supports no transactions; it only appears in -figure 10's Original mode\n", name)
				os.Exit(2)
			}
			mapCap := txengine.CapHashMap
			if kind == txengine.KindSkip {
				mapCap = txengine.CapSkipMap
			}
			if !b.Caps.Has(mapCap) {
				fmt.Fprintf(os.Stderr, "engine %q has no %v map (figure %s needs one)\n", name, kind, *figure)
				os.Exit(2)
			}
		}
		for _, r := range ratios {
			wl := bench.PaperWorkload(r[0], r[1], r[2], *scale)
			fmt.Printf("\n## %s, get:insert:remove = %s\n", figName, wl.Ratio())
			fmt.Printf("%-16s %8s %14s %12s %10s %10s %10s %10s %10s %10s %10s\n", "system", "threads", "txn/s", "commits", "aborts", "retries", "xshard", "fphit", "fpmiss", "latchw", "latchfb")
			for _, name := range systems {
				for _, th := range threads {
					sys := mustSystem(name, kind, wl, opt)
					res := bench.RunThroughput(sys, wl, th, *dur)
					sys.Close()
					fmt.Printf("%-16s %8d %14.0f %12d %10d %10d %10d %10d %10d %10d %10d\n",
						res.System, res.Threads, res.Throughput,
						res.Stats.Commits, res.Stats.Aborts, res.Stats.Retries, res.Stats.CrossShardRestarts,
						res.Stats.FootprintHits, res.Stats.FootprintMisses,
						res.Stats.LatchWaits, res.Stats.LatchFallbacks)
				}
			}
		}
	case "10", "10a", "10b", "10c":
		if *systemsFlag != "" {
			// The latency figure's series (Original / Medley / txMontage per
			// panel) is fixed by the paper's methodology.
			fmt.Fprintln(os.Stderr, "-systems does not apply to -figure 10; its series is fixed (Original, Medley, txMontage)")
			os.Exit(2)
		}
		runLatency(*figure, ratios, *scale, *dur, opt)
	default:
		fmt.Fprintln(os.Stderr, "unknown -figure; want 7, 8, or 10")
		os.Exit(2)
	}
}

// checkShardsFlag fails fast on invalid -shards values (the registry would
// reject them anyway, but per-point). The non-fatal over-parallelism
// warning is emitted by the registry itself at engine construction, deduped
// to once per run.
func checkShardsFlag(shards int) {
	if err := txengine.ValidateShardsFlag(shards); err != nil {
		fmt.Fprintln(os.Stderr, "bad -shards:", err)
		os.Exit(2)
	}
}

func parseRatios(ratio string) [][3]int {
	ratios := [][3]int{{0, 1, 1}, {2, 1, 1}, {18, 1, 1}}
	if ratio == "" {
		return ratios
	}
	parts := strings.Split(ratio, ":")
	if len(parts) != 3 {
		fmt.Fprintln(os.Stderr, "bad -ratio; want g:i:r")
		os.Exit(2)
	}
	var r [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bad -ratio:", err)
			os.Exit(2)
		}
		r[i] = v
	}
	return [][3]int{r}
}

func parseThreads(threadsFlag string) []int {
	if threadsFlag == "" {
		return bench.DefaultThreadSweep()
	}
	var threads []int
	for _, p := range splitList(threadsFlag) {
		v, err := strconv.Atoi(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bad -threads:", err)
			os.Exit(2)
		}
		threads = append(threads, v)
	}
	return threads
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// runWorkloads drives the internal/workload scenarios: each selected
// workload over each selected engine at each thread count, with the
// engine's uniform stats, optional p50/p99 latency columns, and the
// scenario's audit counters per row. cfg carries everything but Threads.
func runWorkloads(wlFlag, systemsFlag string, threads []int, cfg workload.Config) {
	wls := splitList(wlFlag)
	if wlFlag == "all" {
		wls = workload.Names()
	}
	// Fail fast on bad selections, before the first (potentially long)
	// measurement sweep runs: unknown names always abort, as does an engine
	// that can host none of the selected workloads. An engine capable of
	// only some of several selected workloads has the incapable pairs
	// skipped with a notice, so `-workload all -systems onefile` runs the
	// map scenarios instead of dying on the queue one.
	for _, name := range wls {
		if _, ok := workload.Lookup(name); !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q (have %s)\n", name, strings.Join(workload.Names(), ", "))
			os.Exit(2)
		}
	}
	if systemsFlag != "" {
		for _, engine := range splitList(systemsFlag) {
			b, ok := txengine.Lookup(engine)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown engine %q (see -list)\n", engine)
				os.Exit(2)
			}
			var firstErr error
			capable := 0
			for _, name := range wls {
				sc, _ := workload.Lookup(name)
				err := sc.CanRun(b)
				if err == nil && cfg.Snapshot && !b.Caps.Has(txengine.CapSnapshot) {
					err = fmt.Errorf("engine %q cannot serve -snapshot reads (needs CapSnapshot)", engine)
				}
				if err == nil {
					capable++
				} else if firstErr == nil {
					firstErr = err
				}
			}
			if capable == 0 {
				fmt.Fprintln(os.Stderr, firstErr)
				os.Exit(2)
			}
		}
	}
	for _, name := range wls {
		sc, _ := workload.Lookup(name)
		systems := workload.Engines(name)
		if systemsFlag != "" {
			systems = nil
			for _, engine := range splitList(systemsFlag) {
				b, _ := txengine.Lookup(engine)
				if err := sc.CanRun(b); err != nil {
					fmt.Fprintf(os.Stderr, "# skipping %s on %s: %v\n", name, engine, err)
					continue
				}
				if cfg.Snapshot && !b.Caps.Has(txengine.CapSnapshot) {
					fmt.Fprintf(os.Stderr, "# skipping %s on %s: engine cannot serve -snapshot reads (needs CapSnapshot)\n", name, engine)
					continue
				}
				systems = append(systems, engine)
			}
		} else if cfg.Snapshot {
			kept := systems[:0]
			for _, engine := range systems {
				if b, _ := txengine.Lookup(engine); b.Caps.Has(txengine.CapSnapshot) {
					kept = append(kept, engine)
				} else {
					fmt.Fprintf(os.Stderr, "# skipping %s on %s: engine cannot serve -snapshot reads (needs CapSnapshot)\n", name, engine)
				}
			}
			systems = kept
		}
		fmt.Printf("\n## workload %s (%s)\n", name, sc.Doc)
		if cfg.Latency {
			fmt.Printf("%-12s %8s %14s %12s %10s %10s %10s %10s %10s %10s %10s %10s %10s %10s %10s %10s  %s\n",
				"system", "threads", "txn/s", "commits", "aborts", "retries", "fallbacks", "xshard", "fphit", "fpmiss", "latchw", "latchfb", "snapread", "snapstale", "p50", "p99", "audit")
		} else {
			fmt.Printf("%-12s %8s %14s %12s %10s %10s %10s %10s %10s %10s %10s %10s %10s %10s  %s\n",
				"system", "threads", "txn/s", "commits", "aborts", "retries", "fallbacks", "xshard", "fphit", "fpmiss", "latchw", "latchfb", "snapread", "snapstale", "audit")
		}
		for _, engine := range systems {
			for _, th := range threads {
				cfg := cfg
				cfg.Threads = th
				res, err := workload.Run(name, engine, cfg)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(2)
				}
				if cfg.Latency {
					fmt.Printf("%-12s %8d %14.0f %12d %10d %10d %10d %10d %10d %10d %10d %10d %10d %10d %10v %10v  %s\n",
						res.System, res.Threads, res.Throughput,
						res.Stats.Commits, res.Stats.Aborts, res.Stats.Retries, res.Stats.Fallbacks,
						res.Stats.CrossShardRestarts, res.Stats.FootprintHits, res.Stats.FootprintMisses,
						res.Stats.LatchWaits, res.Stats.LatchFallbacks,
						res.Stats.SnapshotReads, res.Stats.SnapshotStale,
						res.P50, res.P99, res.AuxString())
				} else {
					fmt.Printf("%-12s %8d %14.0f %12d %10d %10d %10d %10d %10d %10d %10d %10d %10d %10d  %s\n",
						res.System, res.Threads, res.Throughput,
						res.Stats.Commits, res.Stats.Aborts, res.Stats.Retries, res.Stats.Fallbacks,
						res.Stats.CrossShardRestarts, res.Stats.FootprintHits, res.Stats.FootprintMisses,
						res.Stats.LatchWaits, res.Stats.LatchFallbacks,
						res.Stats.SnapshotReads, res.Stats.SnapshotStale,
						res.AuxString())
				}
			}
		}
	}
}

func mustSystem(name string, kind txengine.MapKind, wl bench.Workload, opt bench.Options) bench.System {
	sys, err := bench.NewSystem(name, kind, wl, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	return sys
}

func runLatency(fig string, ratios [][3]int, scale float64, dur time.Duration, opt bench.Options) {
	// The paper measures at 40 threads (half the hyperthreads); use half of
	// GOMAXPROCS here.
	th := runtime.GOMAXPROCS(0) / 2
	if th < 1 {
		th = 1
	}
	fmt.Printf("\n## Figure 10 (skiplist latency at %d threads, ns/txn)\n", th)
	fmt.Printf("%-10s %-10s %-10s %12s\n", "panel", "mode", "ratio", "ns/txn")
	for _, r := range ratios {
		wl := bench.PaperWorkload(r[0], r[1], r[2], scale)
		if fig == "10" || fig == "10a" {
			// (a) DRAM: Original vs TxOff vs TxOn on the transient Medley list.
			o := mustSystem("original", txengine.KindSkip, wl, bench.Options{})
			res := bench.RunLatency(o, wl, bench.ModeOriginal, th, dur)
			fmt.Printf("%-10s %-10s %-10s %12.0f\n", "10a", "Original", wl.Ratio(), res.NsPerTx)
			o.Close()
			for _, mode := range []bench.LatencyMode{bench.ModeTxOff, bench.ModeTxOn} {
				sys := mustSystem("medley", txengine.KindSkip, wl, bench.Options{})
				res := bench.RunLatency(sys, wl, mode, th, dur)
				fmt.Printf("%-10s %-10s %-10s %12.0f\n", "10a", mode, wl.Ratio(), res.NsPerTx)
				sys.Close()
			}
		}
		if fig == "10" || fig == "10b" {
			// (b) payloads on NVM, persistence off: montage maps with free
			// write-back (epoch system idle) but NVM store latency charged.
			noPersist := bench.Options{Latencies: pnvm.Latencies{Write: opt.Latencies.Write}, EpochLen: time.Hour}
			for _, mode := range []bench.LatencyMode{bench.ModeTxOff, bench.ModeTxOn} {
				sys := mustSystem("txmontage", txengine.KindSkip, wl, noPersist)
				res := bench.RunLatency(sys, wl, mode, th, dur)
				fmt.Printf("%-10s %-10s %-10s %12.0f\n", "10b", mode, wl.Ratio(), res.NsPerTx)
				sys.Close()
			}
		}
		if fig == "10" || fig == "10c" {
			// (c) full persistence on.
			for _, mode := range []bench.LatencyMode{bench.ModeTxOff, bench.ModeTxOn} {
				sys := mustSystem("txmontage", txengine.KindSkip, wl, opt)
				res := bench.RunLatency(sys, wl, mode, th, dur)
				fmt.Printf("%-10s %-10s %-10s %12.0f\n", "10c", mode, wl.Ratio(), res.NsPerTx)
				sys.Close()
			}
		}
	}
}
