// Command medleybench regenerates the microbenchmark figures of the Medley
// paper (PPoPP 2023): hash-table throughput (Figure 7), skiplist throughput
// (Figure 8), and skiplist latency (Figure 10).
//
// Examples:
//
//	medleybench -figure 7                 # hash tables, all three ratios
//	medleybench -figure 8 -ratio 2:1:1    # skiplists, one ratio
//	medleybench -figure 10                # latency: Original / TxOff / TxOn
//	medleybench -figure 7 -dur 5s -scale 1.0 -threads 1,2,4,8,16
//
// Scale 1.0 reproduces the paper's 1M-key / 0.5M-preload configuration;
// the default 0.1 keeps runs laptop-sized. Shapes, not absolute numbers,
// are the reproduction target (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"medley/internal/bench"
	"medley/internal/pnvm"
)

func main() {
	figure := flag.String("figure", "7", "7 | 8 | 10 (also 10a/10b/10c)")
	ratio := flag.String("ratio", "", "get:insert:remove ratio (default: all of 0:1:1, 2:1:1, 18:1:1)")
	threadsFlag := flag.String("threads", "", "comma-separated thread counts (default: host sweep)")
	dur := flag.Duration("dur", 2*time.Second, "measurement duration per point")
	scale := flag.Float64("scale", 0.1, "keyspace scale (1.0 = paper's 1M keys)")
	epochLen := flag.Duration("epoch", 10*time.Millisecond, "txMontage epoch length")
	flag.Parse()

	ratios := [][3]int{{0, 1, 1}, {2, 1, 1}, {18, 1, 1}}
	if *ratio != "" {
		parts := strings.Split(*ratio, ":")
		if len(parts) != 3 {
			fmt.Fprintln(os.Stderr, "bad -ratio; want g:i:r")
			os.Exit(2)
		}
		var r [3]int
		for i, p := range parts {
			v, err := strconv.Atoi(p)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bad -ratio:", err)
				os.Exit(2)
			}
			r[i] = v
		}
		ratios = [][3]int{r}
	}

	threads := bench.DefaultThreadSweep()
	if *threadsFlag != "" {
		threads = nil
		for _, p := range strings.Split(*threadsFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				fmt.Fprintln(os.Stderr, "bad -threads:", err)
				os.Exit(2)
			}
			threads = append(threads, v)
		}
	}

	lat := pnvm.DefaultLatencies()
	fmt.Printf("# host: GOMAXPROCS=%d; scale=%.2f; dur=%v\n", runtime.GOMAXPROCS(0), *scale, *dur)

	switch *figure {
	case "7", "8":
		for _, r := range ratios {
			wl := bench.PaperWorkload(r[0], r[1], r[2], *scale)
			var mk []func() bench.System
			if *figure == "7" {
				mk = []func() bench.System{
					func() bench.System { return bench.NewMedleyHash(wl) },
					func() bench.System { return bench.NewTxMontageHash(wl, lat, *epochLen) },
					func() bench.System { return bench.NewOneFileHash(wl) },
					func() bench.System { return bench.NewPOneFileHash(wl, lat) },
				}
				fmt.Printf("\n## Figure 7 (hash tables), get:insert:remove = %s\n", wl.Ratio())
			} else {
				mk = []func() bench.System{
					func() bench.System { return bench.NewMedleySkip(wl) },
					func() bench.System { return bench.NewTxMontageSkip(wl, lat, *epochLen) },
					func() bench.System { return bench.NewOneFileSkip(wl) },
					func() bench.System { return bench.NewPOneFileSkip(wl, lat) },
					func() bench.System { return bench.NewTDSLSkip(wl) },
					func() bench.System { return bench.NewLFTTSkip(wl) },
				}
				fmt.Printf("\n## Figure 8 (skiplists), get:insert:remove = %s\n", wl.Ratio())
			}
			fmt.Printf("%-16s %8s %14s\n", "system", "threads", "txn/s")
			for _, newSys := range mk {
				for _, th := range threads {
					sys := newSys()
					res := bench.RunThroughput(sys, wl, th, *dur)
					sys.Close()
					fmt.Printf("%-16s %8d %14.0f\n", res.System, res.Threads, res.Throughput)
				}
			}
		}
	case "10", "10a", "10b", "10c":
		runLatency(*figure, ratios, *scale, *dur, lat, *epochLen)
	default:
		fmt.Fprintln(os.Stderr, "unknown -figure; want 7, 8, or 10")
		os.Exit(2)
	}
}

func runLatency(fig string, ratios [][3]int, scale float64, dur time.Duration, lat pnvm.Latencies, epochLen time.Duration) {
	// The paper measures at 40 threads (half the hyperthreads); use half of
	// GOMAXPROCS here.
	th := runtime.GOMAXPROCS(0) / 2
	if th < 1 {
		th = 1
	}
	fmt.Printf("\n## Figure 10 (skiplist latency at %d threads, ns/txn)\n", th)
	fmt.Printf("%-10s %-10s %-10s %12s\n", "panel", "mode", "ratio", "ns/txn")
	for _, r := range ratios {
		wl := bench.PaperWorkload(r[0], r[1], r[2], scale)
		if fig == "10" || fig == "10a" {
			// (a) DRAM: Original vs TxOff vs TxOn on the transient Medley list.
			o := bench.NewOriginalSkip(wl)
			res := bench.RunLatency(o, wl, bench.ModeOriginal, th, dur)
			fmt.Printf("%-10s %-10s %-10s %12.0f\n", "10a", "Original", wl.Ratio(), res.NsPerTx)
			o.Close()
			for _, mode := range []bench.LatencyMode{bench.ModeTxOff, bench.ModeTxOn} {
				sys := bench.NewMedleySkip(wl)
				res := bench.RunLatency(sys, wl, mode, th, dur)
				fmt.Printf("%-10s %-10s %-10s %12.0f\n", "10a", mode, wl.Ratio(), res.NsPerTx)
				sys.Close()
			}
		}
		if fig == "10" || fig == "10b" {
			// (b) payloads on NVM, persistence off: montage maps with free
			// write-back (epoch system idle) but NVM store latency charged.
			latNoPersist := pnvm.Latencies{Write: lat.Write}
			for _, mode := range []bench.LatencyMode{bench.ModeTxOff, bench.ModeTxOn} {
				sys := bench.NewTxMontageSkip(wl, latNoPersist, time.Hour)
				res := bench.RunLatency(sys, wl, mode, th, dur)
				fmt.Printf("%-10s %-10s %-10s %12.0f\n", "10b", mode, wl.Ratio(), res.NsPerTx)
				sys.Close()
			}
		}
		if fig == "10" || fig == "10c" {
			// (c) full persistence on.
			for _, mode := range []bench.LatencyMode{bench.ModeTxOff, bench.ModeTxOn} {
				sys := bench.NewTxMontageSkip(wl, lat, epochLen)
				res := bench.RunLatency(sys, wl, mode, th, dur)
				fmt.Printf("%-10s %-10s %-10s %12.0f\n", "10c", mode, wl.Ratio(), res.NsPerTx)
				sys.Close()
			}
		}
	}
}
