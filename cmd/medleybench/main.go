// Command medleybench regenerates the microbenchmark figures of the Medley
// paper (PPoPP 2023): hash-table throughput (Figure 7), skiplist throughput
// (Figure 8), and skiplist latency (Figure 10). Backends are resolved by
// name through the internal/txengine registry; -systems selects a subset.
//
// Examples:
//
//	medleybench -figure 7                 # hash tables, all three ratios
//	medleybench -figure 8 -ratio 2:1:1    # skiplists, one ratio
//	medleybench -figure 8 -systems medley,lftt
//	medleybench -figure 7 -systems boost  # the boosted lock-based map
//	medleybench -figure 10                # latency: Original / TxOff / TxOn
//	medleybench -list                     # registered engines
//
// Scale 1.0 reproduces the paper's 1M-key / 0.5M-preload configuration;
// the default 0.1 keeps runs laptop-sized. Shapes, not absolute numbers,
// are the reproduction target (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"medley/internal/bench"
	"medley/internal/pnvm"
	"medley/internal/txengine"
)

func main() {
	figure := flag.String("figure", "7", "7 | 8 | 10 (also 10a/10b/10c)")
	ratio := flag.String("ratio", "", "get:insert:remove ratio (default: all of 0:1:1, 2:1:1, 18:1:1)")
	systemsFlag := flag.String("systems", "", "comma-separated engine names (default: every capable engine; see -list)")
	list := flag.Bool("list", false, "list registered engines and exit")
	threadsFlag := flag.String("threads", "", "comma-separated thread counts (default: host sweep)")
	dur := flag.Duration("dur", 2*time.Second, "measurement duration per point")
	scale := flag.Float64("scale", 0.1, "keyspace scale (1.0 = paper's 1M keys)")
	epochLen := flag.Duration("epoch", 10*time.Millisecond, "txMontage epoch length")
	flag.Parse()

	if *list {
		for _, b := range txengine.Builders() {
			fmt.Printf("%-10s %s\n", b.Key, b.Doc)
		}
		return
	}

	ratios := parseRatios(*ratio)
	threads := parseThreads(*threadsFlag)
	opt := bench.Options{Latencies: pnvm.DefaultLatencies(), EpochLen: *epochLen}
	fmt.Printf("# host: GOMAXPROCS=%d; scale=%.2f; dur=%v\n", runtime.GOMAXPROCS(0), *scale, *dur)

	switch *figure {
	case "7", "8":
		kind := txengine.KindHash
		figName := "Figure 7 (hash tables)"
		if *figure == "8" {
			kind = txengine.KindSkip
			figName = "Figure 8 (skiplists)"
		}
		systems := bench.TxSystemsFor(kind)
		if *systemsFlag != "" {
			systems = splitList(*systemsFlag)
		}
		// Fail fast on bad selections, before any measurement sweep runs.
		for _, name := range systems {
			b, ok := txengine.Lookup(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown engine %q (see -list)\n", name)
				os.Exit(2)
			}
			if !b.Caps.Has(txengine.CapTx) {
				fmt.Fprintf(os.Stderr, "engine %q supports no transactions; it only appears in -figure 10's Original mode\n", name)
				os.Exit(2)
			}
			mapCap := txengine.CapHashMap
			if kind == txengine.KindSkip {
				mapCap = txengine.CapSkipMap
			}
			if !b.Caps.Has(mapCap) {
				fmt.Fprintf(os.Stderr, "engine %q has no %v map (figure %s needs one)\n", name, kind, *figure)
				os.Exit(2)
			}
		}
		for _, r := range ratios {
			wl := bench.PaperWorkload(r[0], r[1], r[2], *scale)
			fmt.Printf("\n## %s, get:insert:remove = %s\n", figName, wl.Ratio())
			fmt.Printf("%-16s %8s %14s\n", "system", "threads", "txn/s")
			for _, name := range systems {
				for _, th := range threads {
					sys := mustSystem(name, kind, wl, opt)
					res := bench.RunThroughput(sys, wl, th, *dur)
					sys.Close()
					fmt.Printf("%-16s %8d %14.0f\n", res.System, res.Threads, res.Throughput)
				}
			}
		}
	case "10", "10a", "10b", "10c":
		if *systemsFlag != "" {
			// The latency figure's series (Original / Medley / txMontage per
			// panel) is fixed by the paper's methodology.
			fmt.Fprintln(os.Stderr, "-systems does not apply to -figure 10; its series is fixed (Original, Medley, txMontage)")
			os.Exit(2)
		}
		runLatency(*figure, ratios, *scale, *dur, opt)
	default:
		fmt.Fprintln(os.Stderr, "unknown -figure; want 7, 8, or 10")
		os.Exit(2)
	}
}

func parseRatios(ratio string) [][3]int {
	ratios := [][3]int{{0, 1, 1}, {2, 1, 1}, {18, 1, 1}}
	if ratio == "" {
		return ratios
	}
	parts := strings.Split(ratio, ":")
	if len(parts) != 3 {
		fmt.Fprintln(os.Stderr, "bad -ratio; want g:i:r")
		os.Exit(2)
	}
	var r [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bad -ratio:", err)
			os.Exit(2)
		}
		r[i] = v
	}
	return [][3]int{r}
}

func parseThreads(threadsFlag string) []int {
	if threadsFlag == "" {
		return bench.DefaultThreadSweep()
	}
	var threads []int
	for _, p := range splitList(threadsFlag) {
		v, err := strconv.Atoi(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bad -threads:", err)
			os.Exit(2)
		}
		threads = append(threads, v)
	}
	return threads
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func mustSystem(name string, kind txengine.MapKind, wl bench.Workload, opt bench.Options) bench.System {
	sys, err := bench.NewSystem(name, kind, wl, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	return sys
}

func runLatency(fig string, ratios [][3]int, scale float64, dur time.Duration, opt bench.Options) {
	// The paper measures at 40 threads (half the hyperthreads); use half of
	// GOMAXPROCS here.
	th := runtime.GOMAXPROCS(0) / 2
	if th < 1 {
		th = 1
	}
	fmt.Printf("\n## Figure 10 (skiplist latency at %d threads, ns/txn)\n", th)
	fmt.Printf("%-10s %-10s %-10s %12s\n", "panel", "mode", "ratio", "ns/txn")
	for _, r := range ratios {
		wl := bench.PaperWorkload(r[0], r[1], r[2], scale)
		if fig == "10" || fig == "10a" {
			// (a) DRAM: Original vs TxOff vs TxOn on the transient Medley list.
			o := mustSystem("original", txengine.KindSkip, wl, bench.Options{})
			res := bench.RunLatency(o, wl, bench.ModeOriginal, th, dur)
			fmt.Printf("%-10s %-10s %-10s %12.0f\n", "10a", "Original", wl.Ratio(), res.NsPerTx)
			o.Close()
			for _, mode := range []bench.LatencyMode{bench.ModeTxOff, bench.ModeTxOn} {
				sys := mustSystem("medley", txengine.KindSkip, wl, bench.Options{})
				res := bench.RunLatency(sys, wl, mode, th, dur)
				fmt.Printf("%-10s %-10s %-10s %12.0f\n", "10a", mode, wl.Ratio(), res.NsPerTx)
				sys.Close()
			}
		}
		if fig == "10" || fig == "10b" {
			// (b) payloads on NVM, persistence off: montage maps with free
			// write-back (epoch system idle) but NVM store latency charged.
			noPersist := bench.Options{Latencies: pnvm.Latencies{Write: opt.Latencies.Write}, EpochLen: time.Hour}
			for _, mode := range []bench.LatencyMode{bench.ModeTxOff, bench.ModeTxOn} {
				sys := mustSystem("txmontage", txengine.KindSkip, wl, noPersist)
				res := bench.RunLatency(sys, wl, mode, th, dur)
				fmt.Printf("%-10s %-10s %-10s %12.0f\n", "10b", mode, wl.Ratio(), res.NsPerTx)
				sys.Close()
			}
		}
		if fig == "10" || fig == "10c" {
			// (c) full persistence on.
			for _, mode := range []bench.LatencyMode{bench.ModeTxOff, bench.ModeTxOn} {
				sys := mustSystem("txmontage", txengine.KindSkip, wl, opt)
				res := bench.RunLatency(sys, wl, mode, th, dur)
				fmt.Printf("%-10s %-10s %-10s %12.0f\n", "10c", mode, wl.Ratio(), res.NsPerTx)
				sys.Close()
			}
		}
	}
}
