// Package medley is a Go implementation of NBTC — NonBlocking Transaction
// Composition — and the Medley / txMontage systems from "Transactional
// Composition of Nonblocking Data Structures" (Cai, Wen & Scott,
// PPoPP 2023).
//
// Medley lets operations on independent nonblocking data structures compose
// into atomic, strictly serializable transactions while preserving their
// high concurrency and (obstruction-free) nonblocking liveness. Unlike a
// software transactional memory, it instruments only each operation's
// critical memory accesses — typically the single linearizing load or CAS —
// so composition costs roughly 2× a bare operation rather than the 3–10× of
// classic STM.
//
// # Quick start
//
//	mgr := medley.NewTxManager()
//	ht1 := medley.NewHashMap[uint64](1 << 20) // accounts
//	ht2 := medley.NewHashMap[uint64](1 << 20) // savings
//
//	s := mgr.Session() // one per goroutine
//	err := s.Run(func() error {
//	    v, ok := ht1.Get(s, acct)
//	    if !ok || v < amount {
//	        s.TxAbort()
//	        return ErrInsufficient // business abort: no retry
//	    }
//	    w, _ := ht2.Get(s, acct)
//	    ht1.Put(s, acct, v-amount)
//	    ht2.Put(s, acct, w+amount)
//	    return nil
//	})
//
// Conflicting transactions abort and are retried by Run with randomized
// backoff; errors other than the internal conflict error propagate to the
// caller exactly once.
//
// # Structures
//
// This module ships NBTC-transformed versions of five classic nonblocking
// structures (the same set the paper transforms):
//
//   - medley.NewHashMap — Michael's chained hash table (internal/structures/mhash)
//   - medley.NewSkipListMap — Fraser-style skiplist (internal/structures/fskiplist)
//   - medley.NewRotatingSkipListMap — rotating skiplist (internal/structures/rskiplist)
//   - medley.NewBSTMap — Natarajan & Mittal external BST (internal/structures/nmbst)
//   - medley.NewQueue — Michael & Scott FIFO queue (internal/structures/msqueue)
//
// All maps implement the shared Map interface; a TxManager must be shared
// by every structure participating in the same transactions.
//
// # Persistence (txMontage)
//
// Package internal/montage supplies nbMontage-style epoch-based periodic
// persistence over a simulated NVM device (internal/pnvm); attaching it to
// a TxManager upgrades Medley transactions to full ACID with buffered
// durable strict serializability. See examples/persistence.
//
// # Writing your own NBTC structure
//
// Use core.CASObj for every word holding a critical load or CAS, call
// NbtcLoad/NbtcCAS with the linearization/publication flags from the
// paper's methodology, register linearizing loads of read outcomes with
// Session.AddToReadSet, and defer post-critical cleanup with
// Session.AddToCleanups. The five structure packages are worked examples of
// the mechanical transform.
package medley

import (
	"cmp"

	"medley/internal/core"
	"medley/internal/structures/fskiplist"
	"medley/internal/structures/mhash"
	"medley/internal/structures/msqueue"
	"medley/internal/structures/nmbst"
	"medley/internal/structures/rskiplist"
	"medley/internal/txmap"
)

// TxManager owns transaction metadata shared among composable structures.
type TxManager = core.TxManager

// Session is a per-goroutine transaction handle.
type Session = core.Session

// Desc is an MCNS transaction descriptor.
type Desc = core.Desc

// CASObj is the augmented atomic word used to build NBTC structures.
type CASObj[T comparable] = core.CASObj[T]

// ReadTag identifies an observed value version for read-set validation.
type ReadTag = core.ReadTag

// ErrTxAborted is returned when a transaction does not commit.
var ErrTxAborted = core.ErrTxAborted

// NewTxManager creates a transaction manager. Share one instance among all
// structures that participate in the same transactions.
func NewTxManager() *TxManager { return core.NewTxManager() }

// Map is the uint64-keyed transactional map interface implemented by the
// hash table, the skiplists, and the BST.
type Map[V any] = txmap.Map[V]

// NewHashMap creates a transactional lock-free chained hash table with
// nbuckets chains (Michael, SPAA 2002; paper Fig. 2).
func NewHashMap[V any](nbuckets int) *mhash.Map[uint64, V] {
	return mhash.NewUint64[V](nbuckets)
}

// NewOrderedHashMap creates a hash table over any ordered key type with a
// caller-supplied hash function.
func NewOrderedHashMap[K cmp.Ordered, V any](nbuckets int, hash func(K) uint64) *mhash.Map[K, V] {
	return mhash.New[K, V](nbuckets, hash)
}

// NewSkipListMap creates a transactional Fraser-style lock-free skiplist.
func NewSkipListMap[K cmp.Ordered, V any]() *fskiplist.SkipList[K, V] {
	return fskiplist.New[K, V]()
}

// NewRotatingSkipListMap creates a transactional rotating skiplist (Dick,
// Fekete & Gramoli).
func NewRotatingSkipListMap[V any]() *rskiplist.SkipList[V] {
	return rskiplist.New[V]()
}

// NewBSTMap creates a transactional lock-free external binary search tree
// (Natarajan & Mittal, PPoPP 2014). Keys are uint64 below nmbst.MaxKey.
func NewBSTMap[V any]() *nmbst.Tree[V] {
	return nmbst.New[V]()
}

// NewQueue creates a transactional Michael & Scott FIFO queue.
func NewQueue[T any]() *msqueue.Queue[T] {
	return msqueue.New[T]()
}
